package pgssi_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"pgssi"
)

// Tests in this file drive the CSN commit-publication window with a
// deterministic interleaving harness, in the style of the read-vs-write
// window tests in interleaving_test.go. A commit (internal/mvcc) must
// assign its CSN and publish (xid → CSN) into the commit log as one
// atomic step for snapshotters; the fence is that both happen inside the
// commit-log shard's critical section, which every visibility lookup
// serializes behind. The Config.OnCSNPublish hook parks a chosen
// committer at the window (fenced: immediately before the atomic step;
// ablated: between assignment and publication), so the tests can:
//
//   - prove the fence: a transaction snapshotting inside the window
//     sees the in-flight commit fully or not at all — here, not at all,
//     for both keys the committer wrote, before AND after publication;
//   - reproduce the torn snapshot with the fence ablated
//     (Config.DisableCSNFencing): the same reader observes k1 from
//     before the commit and k2 from after it — a fractured read no
//     serial order explains.
//
// Both transactions run at RepeatableRead: snapshot atomicity is an
// MVCC-level contract, and at this level neither side takes SSI edge
// locks, so the parked committer cannot entangle the reader. (SSI would
// not mask the anomaly either — a torn read is a wr-dependency, which
// SIREAD tracking does not see.)

// csnPauser arms a one-shot pause in the OnCSNPublish hook.
type csnPauser struct {
	armed    atomic.Bool
	inWindow chan struct{}
	release  chan struct{}
}

func newCSNPauser() *csnPauser {
	return &csnPauser{inWindow: make(chan struct{}), release: make(chan struct{})}
}

func (p *csnPauser) hook(_, _ uint64) {
	if p.armed.CompareAndSwap(true, false) {
		close(p.inWindow)
		<-p.release
	}
}

// csnWindowDB builds a two-row database and returns it with the pauser
// wired into cfg.
func csnWindowDB(t *testing.T, cfg pgssi.Config) (*pgssi.DB, *csnPauser) {
	t.Helper()
	p := newCSNPauser()
	cfg.OnCSNPublish = p.hook
	db := pgssi.Open(cfg)
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	seed, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, seed.Insert("t", "k1", []byte("old1")))
	mustExec(t, seed.Insert("t", "k2", []byte("old2")))
	mustExec(t, seed.Commit())
	return db, p
}

// parkCommitInWindow starts a transaction that updates both keys and
// parks its commit at the assignment→publication window. It returns a
// channel closed when the commit completes.
func parkCommitInWindow(t *testing.T, db *pgssi.DB, p *csnPauser) chan struct{} {
	t.Helper()
	w, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, w.Update("t", "k1", []byte("new1")))
	mustExec(t, w.Update("t", "k2", []byte("new2")))
	p.armed.Store(true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := w.Commit(); err != nil {
			t.Errorf("writer commit: %v", err)
		}
	}()
	<-p.inWindow
	return done
}

func mustGetString(t *testing.T, tx *pgssi.Tx, key string) string {
	t.Helper()
	v, err := tx.Get("t", key)
	if err != nil {
		t.Fatalf("get %q: %v", key, err)
	}
	return string(v)
}

// TestCSNWindowFencedAllOrNothing: with the fence in place, a reader
// snapshotting inside the publication window includes the commit not at
// all — both keys read the old values, and re-reading after the commit
// publishes changes nothing, because the snapshot's CSN predates the
// commit's. A fresh snapshot then sees both new values.
func TestCSNWindowFencedAllOrNothing(t *testing.T) {
	db, p := csnWindowDB(t, pgssi.Config{})
	done := parkCommitInWindow(t, db, p)

	r, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustGetString(t, r, "k1"); got != "old1" {
		t.Fatalf("in-window read of k1 = %q, want old1", got)
	}
	close(p.release)
	<-done
	// Same snapshot, after publication: still nothing of the commit.
	if got := mustGetString(t, r, "k2"); got != "old2" {
		t.Fatalf("fenced snapshot saw the commit partially: k2 = %q, want old2", got)
	}
	if got := mustGetString(t, r, "k1"); got != "old1" {
		t.Fatalf("fenced snapshot changed its mind: k1 = %q, want old1", got)
	}
	mustExec(t, r.Commit())

	r2, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	if err != nil {
		t.Fatal(err)
	}
	if g1, g2 := mustGetString(t, r2, "k1"), mustGetString(t, r2, "k2"); g1 != "new1" || g2 != "new2" {
		t.Fatalf("post-commit snapshot = {%q, %q}, want both new", g1, g2)
	}
	mustExec(t, r2.Commit())
}

// TestCSNWindowTornReadWithFencingDisabled is the ablation: with
// DisableCSNFencing, the CSN is assigned outside the publication
// critical section, so a reader snapshotting inside the window carries
// a CSN that covers the in-flight commit before the commit log can
// resolve it. Reading k1
// before publication and k2 after yields old1/new2 from one snapshot —
// the fractured read the fence forbids. The same schedule with the
// fence (the test above) reads old1/old2.
func TestCSNWindowTornReadWithFencingDisabled(t *testing.T) {
	db, p := csnWindowDB(t, pgssi.Config{DisableCSNFencing: true})
	done := parkCommitInWindow(t, db, p)

	r, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	if err != nil {
		t.Fatal(err)
	}
	// Before publication the commit log still says in-progress: the
	// writer's versions are skipped.
	if got := mustGetString(t, r, "k1"); got != "old1" {
		t.Fatalf("in-window read of k1 = %q, want old1", got)
	}
	close(p.release)
	<-done
	// After publication the same snapshot's CSN covers the commit: the
	// lookup now resolves it visible. Torn.
	got2 := mustGetString(t, r, "k2")
	if got2 != "new2" {
		t.Fatalf("ablation lost the race shape: k2 = %q, want new2 (torn read)", got2)
	}
	// And k1, re-read, flips too — the snapshot is not a snapshot.
	if got1 := mustGetString(t, r, "k1"); got1 != "new1" {
		t.Fatalf("re-read of k1 = %q, want new1 under the ablation", got1)
	}
	mustExec(t, r.Commit())
}

// TestVacuumTruncatesCommitLogWithoutSerializable pins Vacuum's role as
// the level-independent commit-log truncation trigger: the epoch
// reclaimer only runs for serializable workloads, so a process using
// only weaker levels relies on Vacuum to keep the log bounded.
func TestVacuumTruncatesCommitLogWithoutSerializable(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
		if err != nil {
			t.Fatal(err)
		}
		mustExec(t, tx.Insert("t", fmt.Sprintf("k%03d", i), []byte("v")))
		mustExec(t, tx.Commit())
	}
	before := db.CommitLogSize()
	if before < 300 {
		t.Fatalf("commit log holds %d entries before vacuum, want >= 300", before)
	}
	db.Vacuum()
	// Everything is finished: only Vacuum's own pin transaction (its
	// record and aborted tombstone survive this pass — the pin was
	// still active when the floor was computed) may remain.
	if after := db.CommitLogSize(); after > 2 {
		t.Fatalf("commit log holds %d entries after vacuum, want <= 2", after)
	}
	// The rows are all live and still readable through the truncated
	// region of the log.
	tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustGetString(t, tx, "k000"); got != "v" {
		t.Fatalf("k000 = %q after truncation, want v", got)
	}
	mustExec(t, tx.Commit())
}
