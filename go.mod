module pgssi

// Kept dependency-free on purpose: the ssilint analyzer suite
// (internal/lint, cmd/ssilint) implements the vet vettool protocol on
// the standard library alone, so no golang.org/x/tools pin is needed —
// x/tools releases that still build on go 1.22 would otherwise have to
// be pinned and re-pinned as analysis APIs move.
go 1.22
