module pgssi

go 1.22
