package pgssi_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pgssi"
	"pgssi/internal/wal"
)

// Tests for the engine features of §4 (safe snapshots, deferrable
// transactions), §6 (memory bounds), and §7 (two-phase commit,
// replication, savepoints), plus general engine behaviour.

func kvDB(t *testing.T, cfg pgssi.Config) *pgssi.DB {
	t.Helper()
	db := pgssi.Open(cfg)
	mustExec(t, db.CreateTable("kv"))
	seed, err := db.Begin(pgssi.TxOptions{})
	mustExec(t, err)
	for i := 0; i < 10; i++ {
		mustExec(t, seed.Insert("kv", fmt.Sprintf("k%d", i), []byte("v")))
	}
	mustExec(t, seed.Commit())
	return db
}

func TestBasicCRUDAndVisibility(t *testing.T) {
	db := kvDB(t, pgssi.Config{})
	tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	mustExec(t, err)
	if _, err := tx.Get("kv", "nope"); !errors.Is(err, pgssi.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	mustExec(t, tx.Insert("kv", "new", []byte("1")))
	v, err := tx.Get("kv", "new")
	mustExec(t, err)
	if string(v) != "1" {
		t.Fatalf("own write = %q", v)
	}
	mustExec(t, tx.Update("kv", "new", []byte("2")))
	mustExec(t, tx.Delete("kv", "new"))
	if _, err := tx.Get("kv", "new"); !errors.Is(err, pgssi.ErrNotFound) {
		t.Fatalf("own delete should hide row, got %v", err)
	}
	mustExec(t, tx.Commit())
	if err := tx.Commit(); !errors.Is(err, pgssi.ErrTxDone) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestReadOnlyTxRejectsWrites(t *testing.T) {
	db := kvDB(t, pgssi.Config{})
	tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable, ReadOnly: true})
	mustExec(t, err)
	if err := tx.Update("kv", "k1", []byte("x")); !errors.Is(err, pgssi.ErrReadOnlyTx) {
		t.Fatalf("want ErrReadOnlyTx, got %v", err)
	}
	tx.Rollback()
}

func TestReadCommittedFollowsUpdates(t *testing.T) {
	db := kvDB(t, pgssi.Config{})
	rc, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.ReadCommitted})
	mustExec(t, err)
	v1, err := rc.Get("kv", "k1")
	mustExec(t, err)
	if string(v1) != "v" {
		t.Fatalf("v1 = %q", v1)
	}
	// Another transaction updates and commits; READ COMMITTED sees it
	// on the next statement (fresh snapshot per statement).
	other, err := db.Begin(pgssi.TxOptions{})
	mustExec(t, err)
	mustExec(t, other.Update("kv", "k1", []byte("w")))
	mustExec(t, other.Commit())
	v2, err := rc.Get("kv", "k1")
	mustExec(t, err)
	if string(v2) != "w" {
		t.Fatalf("READ COMMITTED should see the new value, got %q", v2)
	}
	// And its own update does not fail on the concurrent committed
	// update (it retries with a fresh snapshot).
	mustExec(t, rc.Update("kv", "k1", []byte("x")))
	mustExec(t, rc.Commit())
}

func TestRepeatableReadStableSnapshot(t *testing.T) {
	db := kvDB(t, pgssi.Config{})
	rr, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	mustExec(t, err)
	v1, _ := rr.Get("kv", "k1")
	other, _ := db.Begin(pgssi.TxOptions{})
	mustExec(t, other.Update("kv", "k1", []byte("w")))
	mustExec(t, other.Commit())
	v2, _ := rr.Get("kv", "k1")
	if string(v1) != string(v2) {
		t.Fatalf("repeatable read changed mid-transaction: %q vs %q", v1, v2)
	}
	rr.Rollback()
}

func TestSavepointRollbackRestoresWrites(t *testing.T) {
	db := kvDB(t, pgssi.Config{})
	tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	mustExec(t, err)
	mustExec(t, tx.Update("kv", "k1", []byte("outer")))
	mustExec(t, tx.Savepoint("sp1"))
	mustExec(t, tx.Update("kv", "k1", []byte("inner")))
	mustExec(t, tx.Insert("kv", "subrow", []byte("inner")))
	v, _ := tx.Get("kv", "k1")
	if string(v) != "inner" {
		t.Fatalf("pre-rollback value = %q", v)
	}
	mustExec(t, tx.RollbackToSavepoint("sp1"))
	v, err = tx.Get("kv", "k1")
	mustExec(t, err)
	if string(v) != "outer" {
		t.Fatalf("after rollback-to-savepoint, value = %q, want outer", v)
	}
	if _, err := tx.Get("kv", "subrow"); !errors.Is(err, pgssi.ErrNotFound) {
		t.Fatalf("subxact insert should be undone, got %v", err)
	}
	// The savepoint still exists; write again and roll back again.
	mustExec(t, tx.Update("kv", "k1", []byte("inner2")))
	mustExec(t, tx.RollbackToSavepoint("sp1"))
	v, _ = tx.Get("kv", "k1")
	if string(v) != "outer" {
		t.Fatalf("second rollback, value = %q", v)
	}
	mustExec(t, tx.ReleaseSavepoint("sp1"))
	mustExec(t, tx.Commit())
	check, _ := db.Begin(pgssi.TxOptions{})
	v, _ = check.Get("kv", "k1")
	if string(v) != "outer" {
		t.Fatalf("committed value = %q, want outer", v)
	}
	check.Rollback()
}

func TestSavepointRollbackReleasesWriteLock(t *testing.T) {
	db := kvDB(t, pgssi.Config{})
	tx, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	mustExec(t, tx.Savepoint("sp"))
	mustExec(t, tx.Update("kv", "k2", []byte("locked")))
	mustExec(t, tx.RollbackToSavepoint("sp"))
	// The tuple write lock must be gone: another transaction can
	// update k2 without blocking on tx.
	done := make(chan error, 1)
	go func() {
		o, err := db.Begin(pgssi.TxOptions{})
		if err != nil {
			done <- err
			return
		}
		if err := o.Update("kv", "k2", []byte("other")); err != nil {
			done <- err
			return
		}
		done <- o.Commit()
	}()
	select {
	case err := <-done:
		mustExec(t, err)
	case <-time.After(2 * time.Second):
		t.Fatal("writer blocked on a rolled-back subtransaction's lock")
	}
	tx.Rollback()
}

func TestSIREADLockSurvivesSavepointRollback(t *testing.T) {
	// §7.3: SIREAD locks acquired inside a rolled-back subtransaction
	// are retained, because the data read may have been externalized.
	db := kvDB(t, pgssi.Config{})
	tx, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	mustExec(t, tx.Savepoint("sp"))
	if _, err := tx.Get("kv", "k3"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, tx.RollbackToSavepoint("sp"))
	// A concurrent writer of k3 must still pick up the conflict: build
	// a write-skew 2-cycle through k3/k4 and check someone aborts.
	other, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	if _, err := other.Get("kv", "k4"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, other.Update("kv", "k3", []byte("x"))) // other → ... tx read k3
	err1 := tx.Update("kv", "k4", []byte("y"))         // tx writes what other read
	var err2 error
	if err1 == nil {
		err1 = tx.Commit()
	} else {
		tx.Rollback()
	}
	err2 = other.Commit()
	if (err1 == nil) == (err2 == nil) {
		t.Fatalf("write skew through a rolled-back subtransaction's read must abort one txn: %v / %v", err1, err2)
	}
}

func TestTwoPhaseCommitLifecycle(t *testing.T) {
	db := kvDB(t, pgssi.Config{})
	tx, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	mustExec(t, tx.Update("kv", "k1", []byte("2pc")))
	mustExec(t, tx.Prepare("gid-1"))
	// Prepared transactions accept no further work.
	if err := tx.Update("kv", "k2", []byte("x")); !errors.Is(err, pgssi.ErrPrepared) {
		t.Fatalf("want ErrPrepared, got %v", err)
	}
	// Effects invisible until COMMIT PREPARED.
	check, _ := db.Begin(pgssi.TxOptions{})
	v, _ := check.Get("kv", "k1")
	if string(v) != "v" {
		t.Fatalf("prepared effects leaked: %q", v)
	}
	check.Rollback()
	if got := db.PreparedTransactions(); len(got) != 1 || got[0] != "gid-1" {
		t.Fatalf("prepared list = %v", got)
	}
	mustExec(t, db.CommitPrepared("gid-1"))
	check2, _ := db.Begin(pgssi.TxOptions{})
	v, _ = check2.Get("kv", "k1")
	if string(v) != "2pc" {
		t.Fatalf("after COMMIT PREPARED, value = %q", v)
	}
	check2.Rollback()
}

func TestRollbackPrepared(t *testing.T) {
	db := kvDB(t, pgssi.Config{})
	tx, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	mustExec(t, tx.Update("kv", "k1", []byte("doomed")))
	mustExec(t, tx.Prepare("gid-2"))
	mustExec(t, db.RollbackPrepared("gid-2"))
	check, _ := db.Begin(pgssi.TxOptions{})
	v, _ := check.Get("kv", "k1")
	if string(v) != "v" {
		t.Fatalf("rolled-back prepared txn leaked: %q", v)
	}
	check.Rollback()
}

func TestCrashRecoveryConservativeFlags(t *testing.T) {
	// §7.1: after recovery, a prepared transaction is assumed to have
	// conflicts both in and out; a reader of its writes is doomed.
	db := kvDB(t, pgssi.Config{})
	tx, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	mustExec(t, tx.Update("kv", "k1", []byte("2pc")))
	mustExec(t, tx.Prepare("gid-3"))
	mustExec(t, db.SimulateCrashRecovery())
	// Reading the old version of k1 creates reader → prepared, which
	// with the conservative flags is a dangerous structure.
	r, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	_, err := r.Get("kv", "k1")
	if !pgssi.IsSerializationFailure(err) {
		t.Fatalf("reader of recovered-prepared data should be doomed, got %v", err)
	}
	r.Rollback()
	mustExec(t, db.CommitPrepared("gid-3"))
	check, _ := db.Begin(pgssi.TxOptions{})
	v, _ := check.Get("kv", "k1")
	if string(v) != "2pc" {
		t.Fatalf("value after recovery commit = %q", v)
	}
	check.Rollback()
}

func TestDeferrableWaitsForWriters(t *testing.T) {
	db := kvDB(t, pgssi.Config{})
	w, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	mustExec(t, w.Update("kv", "k1", []byte("x")))

	started := make(chan struct{})
	got := make(chan *pgssi.Tx, 1)
	go func() {
		close(started)
		tx, err := db.Begin(pgssi.TxOptions{
			Isolation: pgssi.Serializable, ReadOnly: true, Deferrable: true,
		})
		if err != nil {
			t.Error(err)
		}
		got <- tx
	}()
	<-started
	select {
	case <-got:
		t.Fatal("deferrable transaction must wait for the concurrent writer")
	case <-time.After(100 * time.Millisecond):
	}
	mustExec(t, w.Commit())
	select {
	case tx := <-got:
		if !tx.OnSafeSnapshot() {
			t.Fatal("deferrable transaction must run on a safe snapshot")
		}
		// It sees the writer's commit (fresh snapshot after retry) or
		// a safe earlier one; either way it can read freely.
		if _, err := tx.Get("kv", "k1"); err != nil {
			t.Fatal(err)
		}
		mustExec(t, tx.Commit())
	case <-time.After(2 * time.Second):
		t.Fatal("deferrable transaction did not proceed after writers finished")
	}
}

func TestDeferrableRequiresReadOnlySerializable(t *testing.T) {
	db := kvDB(t, pgssi.Config{})
	if _, err := db.Begin(pgssi.TxOptions{Deferrable: true}); err == nil {
		t.Fatal("DEFERRABLE without READ ONLY must be rejected")
	}
}

func TestMemoryBoundUnderLongRunningReader(t *testing.T) {
	// §6: a long-running transaction must not let SSI state grow
	// without bound; the lock table stays within its budget and old
	// committed transactions get summarized.
	cfg := pgssi.Config{MaxPredicateLocks: 500, MaxCommittedXacts: 16}
	db := kvDB(t, cfg)
	pin, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	if _, err := pin.Get("kv", "k1"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				err := db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
					if _, err := tx.Get("kv", fmt.Sprintf("k%d", i%10)); err != nil {
						return err
					}
					return tx.Insert("kv", key, []byte("x"))
				})
				if err != nil && !pgssi.IsSerializationFailure(err) {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := db.SSIStats()
	if st.Summarized == 0 {
		t.Fatal("expected summarization under a committed-transaction budget of 16")
	}
	if int(st.LocksCurrent) > cfg.MaxPredicateLocks+16 {
		t.Fatalf("lock table %d exceeds budget %d", st.LocksCurrent, cfg.MaxPredicateLocks)
	}
	pin.Rollback()
}

func TestReplicaSerializableReadsOnlyOnSafeSnapshots(t *testing.T) {
	walLog := wal.NewLog()
	db := pgssi.Open(pgssi.Config{})
	mustExec(t, db.CreateTable("kv"))
	db.AttachWAL(walLog)

	rep, err := pgssi.NewReplica(walLog, []string{"kv"})
	mustExec(t, err)
	defer rep.Close()

	for i := 0; i < 3; i++ {
		err := db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
			return tx.Insert("kv", fmt.Sprintf("k%d", i), []byte("v"))
		})
		mustExec(t, err)
	}
	rep.WaitApplied(walLog.Len())

	tx, err := rep.BeginReadOnly(pgssi.ReplicaTxOptions{Serializable: true, WaitSafe: true})
	mustExec(t, err)
	n := 0
	mustExec(t, tx.Scan("kv", "", "", func(string, []byte) bool { n++; return true }))
	if n != 3 {
		t.Fatalf("replica saw %d rows, want 3", n)
	}
	mustExec(t, tx.Commit())
}

func TestWALEmitsSafeSnapshotMarkers(t *testing.T) {
	walLog := wal.NewLog()
	db := pgssi.Open(pgssi.Config{})
	mustExec(t, db.CreateTable("kv"))
	db.AttachWAL(walLog)
	err := db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
		return tx.Insert("kv", "a", []byte("1"))
	})
	mustExec(t, err)
	recs := walLog.Records()
	if len(recs) != 2 {
		t.Fatalf("expected commit + marker, got %d records", len(recs))
	}
	if recs[0].SafeSnapshot || !recs[1].SafeSnapshot {
		t.Fatalf("expected marker after the commit record: %+v", recs)
	}
}

func TestVacuumShrinksVersionChains(t *testing.T) {
	db := kvDB(t, pgssi.Config{})
	for i := 0; i < 20; i++ {
		err := db.RunTx(pgssi.TxOptions{}, func(tx *pgssi.Tx) error {
			return tx.Update("kv", "k1", []byte(fmt.Sprintf("%d", i)))
		})
		mustExec(t, err)
	}
	if removed := db.Vacuum(); removed < 19 {
		t.Fatalf("vacuum removed %d versions, want >= 19", removed)
	}
	check, _ := db.Begin(pgssi.TxOptions{})
	v, _ := check.Get("kv", "k1")
	if string(v) != "19" {
		t.Fatalf("value after vacuum = %q", v)
	}
	check.Rollback()
}

func TestRunTxRetriesUntilCommit(t *testing.T) {
	db := kvDB(t, pgssi.Config{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				err := db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
					v, err := tx.Get("kv", "k0")
					if err != nil {
						return err
					}
					return tx.Update("kv", "k0", append([]byte{}, v...))
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestSecondaryIndexMaintenance(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	mustExec(t, db.CreateTable("people"))
	mustExec(t, db.CreateIndex("people", "by_city", func(_ string, v []byte) (string, bool) {
		return string(v), true // value is the city
	}))
	err := db.RunTx(pgssi.TxOptions{}, func(tx *pgssi.Tx) error {
		mustExec(t, tx.Insert("people", "ann", []byte("boston")))
		mustExec(t, tx.Insert("people", "bob", []byte("madison")))
		mustExec(t, tx.Insert("people", "cam", []byte("boston")))
		return nil
	})
	mustExec(t, err)
	tx, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	var got []string
	mustExec(t, tx.ScanIndex("people", "by_city", "boston", "boston\xff", func(k string, _ []byte) bool {
		got = append(got, k)
		return true
	}))
	if len(got) != 2 {
		t.Fatalf("index scan found %v", got)
	}
	// Update moves bob to boston; a stale madison entry must not
	// surface him, and a boston scan must find him.
	mustExec(t, tx.Update("people", "bob", []byte("boston")))
	var madison []string
	mustExec(t, tx.ScanIndex("people", "by_city", "madison", "madison\xff", func(k string, _ []byte) bool {
		madison = append(madison, k)
		return true
	}))
	if len(madison) != 0 {
		t.Fatalf("stale index entry surfaced: %v", madison)
	}
	got = got[:0]
	mustExec(t, tx.ScanIndex("people", "by_city", "boston", "boston\xff", func(k string, _ []byte) bool {
		got = append(got, k)
		return true
	}))
	if len(got) != 3 {
		t.Fatalf("after update, boston scan found %v", got)
	}
	mustExec(t, tx.Commit())
}

func TestPhantomPreventionOnRangeScan(t *testing.T) {
	// A serializable scan of a range conflicts with a concurrent
	// insert into that range (index-gap SIREAD locking, §5.2.1).
	db := kvDB(t, pgssi.Config{})
	scanner, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	n := 0
	mustExec(t, scanner.Scan("kv", "k", "l", func(string, []byte) bool { n++; return true }))
	// Make the scanner read/write so the cycle can close.
	mustExec(t, scanner.Insert("kv", "scanner-marker", []byte("x")))

	inserter, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	// The inserter reads something the scanner wrote region-wise: scan
	// the region containing scanner's marker.
	m := 0
	mustExec(t, inserter.Scan("kv", "scanner", "scannes", func(string, []byte) bool { m++; return true }))
	insErr := inserter.Insert("kv", "k5x", []byte("phantom")) // lands in scanner's range
	var commitScanner, commitInserter error
	if insErr == nil {
		commitInserter = inserter.Commit()
	} else {
		inserter.Rollback()
		commitInserter = insErr
	}
	commitScanner = scanner.Commit()
	if (commitScanner == nil) == (commitInserter == nil) {
		t.Fatalf("phantom write skew must abort exactly one txn: scanner=%v inserter=%v",
			commitScanner, commitInserter)
	}
}
