package pgssi_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"pgssi"
	"pgssi/internal/wal"
)

// TestWALCommitRecordOrdering hammers concurrent committers and aborters
// and then audits the in-memory log against the ordering invariants the
// replica's resume contract depends on (Stream.SubscribeFrom filters by
// sequence, so any out-of-order append becomes a silently dropped commit
// after a reconnect):
//
//   - commit records appear in strictly increasing sequence order;
//   - a safe-snapshot marker is never appended below a commit record
//     already in the log, and marker sequences never regress;
//   - a commit record appended after a marker carries a higher sequence
//     (the marker really did cover everything before it).
func TestWALCommitRecordOrdering(t *testing.T) {
	walLog := wal.NewLog()
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	mustExec(t, db.CreateTable("kv"))
	db.AttachWAL(walLog)

	const writers, aborters, iters = 8, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
					return tx.Put("kv", fmt.Sprintf("w%d", w), []byte{byte(i)})
				})
			}
		}(w)
	}
	// Aborters race the committers into the abort-path marker emission.
	for a := 0; a < aborters; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
				if err != nil {
					return
				}
				tx.Put("kv", fmt.Sprintf("doomed%d", a), []byte("x"))
				tx.Rollback()
			}
		}(a)
	}
	wg.Wait()

	var lastCommit, lastMarker uint64
	for i, rec := range walLog.Records() {
		seq := uint64(rec.Seq)
		if rec.SafeSnapshot {
			if seq < lastCommit {
				t.Fatalf("record %d: marker at seq %d below commit record seq %d already in the log", i, seq, lastCommit)
			}
			if seq < lastMarker {
				t.Fatalf("record %d: marker sequence regressed %d -> %d", i, lastMarker, seq)
			}
			lastMarker = seq
		} else {
			if seq <= lastCommit {
				t.Fatalf("record %d: commit seq %d appended after commit seq %d", i, seq, lastCommit)
			}
			if seq <= lastMarker {
				t.Fatalf("record %d: commit seq %d appended after a marker at seq %d claimed to cover it", i, seq, lastMarker)
			}
			lastCommit = seq
		}
	}
}

// TestReplicaRejectsStaleMarker pins the replica-side defense for safe
// snapshots: a marker whose sequence is below an applied commit (or a
// previous safe point) must not declare the current position safe and
// must not regress SafeSeq — only a marker at or past everything applied
// certifies a safe snapshot.
func TestReplicaRejectsStaleMarker(t *testing.T) {
	log := wal.NewLog()
	rep, err := pgssi.NewReplica(log, []string{"kv"})
	mustExec(t, err)
	defer rep.Close()

	log.Append(wal.Record{Seq: 1, Xid: 1, Ops: []wal.Op{{Table: "kv", Key: "a", Value: []byte("1")}}})
	log.Append(wal.Record{Seq: 2, Xid: 2, Ops: []wal.Op{{Table: "kv", Key: "b", Value: []byte("2")}}})
	log.Append(wal.Record{Seq: 1, SafeSnapshot: true}) // stale: below commit 2
	mustExec(t, rep.WaitApplied(3))
	if rep.SafeSeq() != 0 {
		t.Fatalf("stale marker set SafeSeq=%d, want 0", rep.SafeSeq())
	}
	if _, err := rep.BeginReadOnly(pgssi.ReplicaTxOptions{Serializable: true}); !errors.Is(err, pgssi.ErrNotSafePoint) {
		t.Fatalf("serializable begin at a stale marker = %v, want ErrNotSafePoint", err)
	}

	// A marker at the applied position is honored.
	log.Append(wal.Record{Seq: 2, SafeSnapshot: true})
	mustExec(t, rep.WaitApplied(4))
	if rep.SafeSeq() != 2 {
		t.Fatalf("SafeSeq=%d after current marker, want 2", rep.SafeSeq())
	}
	tx, err := rep.BeginReadOnly(pgssi.ReplicaTxOptions{Serializable: true})
	mustExec(t, err)
	if !tx.OnSafeSnapshot() {
		t.Fatal("serializable replica read not on a safe snapshot")
	}
	mustExec(t, tx.Rollback())

	// A later stale marker must not regress the safe position.
	log.Append(wal.Record{Seq: 1, SafeSnapshot: true})
	mustExec(t, rep.WaitApplied(5))
	if rep.SafeSeq() != 2 {
		t.Fatalf("stale marker regressed SafeSeq to %d, want 2", rep.SafeSeq())
	}
}

// TestReplicaMarkerDoesNotAdvanceResume pins the resume-position rule:
// markers (and schema records) may legitimately carry sequences ahead of
// the last commit record — read-only commits consume sequence numbers
// without emitting records — so only commit records may advance
// AppliedSeq. If the marker below advanced it to 3, a reconnect would
// call SubscribeFrom(3) and permanently filter out commits 2 and 3
// should they exist. The marker is still a valid safe point.
func TestReplicaMarkerDoesNotAdvanceResume(t *testing.T) {
	log := wal.NewLog()
	rep, err := pgssi.NewReplica(log, []string{"kv"})
	mustExec(t, err)
	defer rep.Close()

	log.Append(wal.Record{Seq: 1, Xid: 1, Ops: []wal.Op{{Table: "kv", Key: "a", Value: []byte("1")}}})
	log.Append(wal.Record{Seq: 3, SafeSnapshot: true})
	mustExec(t, rep.WaitApplied(2))
	if rep.AppliedSeq() != 1 {
		t.Fatalf("AppliedSeq=%d, want 1: only commit records may advance the resume position", rep.AppliedSeq())
	}
	if rep.SafeSeq() != 3 {
		t.Fatalf("SafeSeq=%d, want 3", rep.SafeSeq())
	}
	tx, err := rep.BeginReadOnly(pgssi.ReplicaTxOptions{Serializable: true})
	mustExec(t, err)
	defer tx.Rollback()
	if !tx.OnSafeSnapshot() {
		t.Fatal("marker ahead of the last commit record should still be a safe snapshot")
	}
}
