// Command dbt2 regenerates Figure 5: DBT-2++ throughput vs read-only
// fraction under SI, SSI, SSI without read-only optimizations, and S2PL,
// for the in-memory (5a) and simulated disk-bound (5b) configurations.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"pgssi"
	"pgssi/internal/workload"
)

func main() {
	config := flag.String("config", "memory", `"memory" (Figure 5a) or "disk" (Figure 5b)`)
	warehouses := flag.Int("warehouses", 0, "warehouse count (default: 4 memory, 8 disk)")
	workers := flag.Int("workers", 0, "workers (default: 4 memory, 16 disk)")
	dur := flag.Duration("duration", 2*time.Second, "measurement duration per point")
	flag.Parse()

	var cfg pgssi.Config
	wh, wk := 4, 4
	includeNoRO := true
	if *config == "disk" {
		cfg = pgssi.Config{IODelay: 100 * time.Microsecond, CacheMissRatio: 0.3}
		wh, wk = 8, 16
		includeNoRO = false // Figure 5b omits the no-r/o series
	}
	if *warehouses > 0 {
		wh = *warehouses
	}
	if *workers > 0 {
		wk = *workers
	}

	b := workload.DefaultDBT2(wh)
	rows, err := b.Figure5(cfg, []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}, workload.RunOptions{
		Workers: wk, Duration: *dur, Seed: 2,
	}, includeNoRO)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Figure 5%s — DBT-2++ throughput normalized to SI (%d warehouses, %d workers)\n",
		map[string]string{"memory": "a", "disk": "b"}[*config], wh, wk)
	fmt.Printf("%8s  %12s  %8s  %12s  %8s  %10s\n", "r/o frac", "SI (txn/s)", "SSI", "SSI no r/o", "S2PL", "SSI fail%")
	for _, r := range rows {
		noRO := "-"
		if includeNoRO {
			noRO = fmt.Sprintf("%.2fx", r.SSINoRO)
		}
		fmt.Printf("%7.0f%%  %12.0f  %7.2fx  %12s  %7.2fx  %9.3f%%\n",
			r.ROFraction*100, r.SI, r.SSI, noRO, r.S2PL, r.SSIFailPct)
	}
}
