// Command deferrable regenerates the §8.4 experiment: the latency for a
// SERIALIZABLE READ ONLY DEFERRABLE transaction to obtain a safe snapshot
// while a DBT-2++ workload runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"pgssi"
	"pgssi/internal/workload"
)

func main() {
	warehouses := flag.Int("warehouses", 4, "DBT-2++ scale factor")
	workers := flag.Int("workers", 8, "background workers")
	dur := flag.Duration("duration", 5*time.Second, "background run duration")
	interval := flag.Duration("interval", 50*time.Millisecond, "delay between deferrable probes")
	flag.Parse()

	db := pgssi.Open(pgssi.Config{})
	b := workload.DefaultDBT2(*warehouses)
	if err := b.Setup(db); err != nil {
		log.Fatal(err)
	}

	res, bg := workload.MeasureDeferrable(db, b.Mix(0.08), workload.RunOptions{
		Level: pgssi.Serializable, Workers: *workers, Duration: *dur, Seed: 4,
	}, *interval, nil)

	fmt.Printf("background: %s\n", bg)
	fmt.Printf("deferrable safe-snapshot latency over %d samples:\n", len(res.Samples))
	fmt.Printf("  median %v   p90 %v   max %v\n", res.Median, res.P90, res.Max)
	fmt.Println("(paper §8.4: median 1.98 s, p90 6 s, max 20 s against a much")
	fmt.Println(" larger disk-bound system; the reproduction target is latency of")
	fmt.Println(" the order of a few concurrent-transaction lifetimes)")
}
