// Command rubis regenerates Figure 6: RUBiS bidding-mix throughput and
// serialization failure rates under SI, SSI, and S2PL.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"pgssi/internal/workload"
)

func main() {
	users := flag.Int("users", 1000, "registered users")
	items := flag.Int("items", 2000, "active auctions")
	cats := flag.Int("categories", 20, "item categories")
	workers := flag.Int("workers", 4, "closed-loop workers")
	dur := flag.Duration("duration", 3*time.Second, "measurement duration")
	flag.Parse()

	rows, err := workload.Figure6(&workload.RUBiS{
		Users: *users, Items: *items, Categories: *cats,
	}, workload.RunOptions{Workers: *workers, Duration: *dur, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 6 — RUBiS bidding mix (85% read-only)")
	fmt.Printf("%-20s  %14s  %22s\n", "", "Throughput", "Serialization failures")
	for _, r := range rows {
		fmt.Printf("%-20s  %10.0f/s  %21.3f%%\n", r.Level, r.Throughput, r.FailurePct)
	}
}
