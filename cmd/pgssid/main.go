// Command pgssid serves a pgssi database over TCP using the
// length-prefixed wire protocol (docs/protocol.md): one session per
// connection, read/write deadlines, a connection limit, and graceful
// drain on SIGTERM/SIGINT (stop accepting, refuse new Begins, let
// in-flight transactions finish or abort after -drain-timeout, then
// close and quiesce the engine).
//
// With -replicate-from it runs as a read-only replica instead: it
// streams the named primary's WAL (reconnecting and resuming from its
// applied position on any interruption), applies it locally, and serves
// the same protocol restricted to read-only transactions — serializable
// ones run on safe snapshots only (docs/wal.md, "Replication").
//
// Example:
//
//	pgssid -addr :6432 -tables kv -preload 1000000
//	pgssid -addr :6433 -replicate-from 127.0.0.1:6432
//	pgload -addr :6432 -replicas 127.0.0.1:6433 -readfrac 0.9 -rate 3000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"pgssi"
	"pgssi/internal/server"
	"pgssi/internal/wal"
	"pgssi/internal/wire"
	"pgssi/internal/workload"
)

func main() {
	var (
		addr         = flag.String("addr", ":6432", "listen address")
		tables       = flag.String("tables", "kv", "comma-separated tables to create at startup")
		preload      = flag.Int("preload", 0, "rows to preload into the first table (keys k00000000..)")
		valueSize    = flag.Int("valuesize", 16, "preloaded value size in bytes")
		maxConns     = flag.Int("maxconns", 1024, "connection limit (0 = unlimited)")
		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "per-request read deadline")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-response write deadline")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain bound for in-flight transactions")
		partitions   = flag.Int("partitions", 0, "SIREAD lock table partitions (0 = default)")
		dataDir      = flag.String("data", "", "data directory for the durable WAL (empty = in-memory, nothing survives restart)")
		fsyncMode    = flag.String("fsync", "batch", "fsync mode with -data: always, batch, or off")
		ckptEvery    = flag.Int64("checkpoint-every", 0, "with -data: checkpoint and GC the WAL every this many bytes of log growth (0 = never)")
		replFrom     = flag.String("replicate-from", "", "primary's address: run as a read-only replica of it (schema and data arrive via the stream)")
	)
	flag.Parse()
	log.SetPrefix("pgssid: ")
	log.SetFlags(0)

	srvCfg := server.Config{
		MaxConns:     *maxConns,
		IdleTimeout:  *idleTimeout,
		WriteTimeout: *writeTimeout,
		DrainTimeout: *drainTimeout,
		Logf:         log.Printf,
	}
	if *replFrom != "" {
		if *dataDir != "" || *preload > 0 {
			log.Fatal("-replicate-from is incompatible with -data and -preload: a replica's state comes from the stream")
		}
		// Tables normally arrive as schema records in the stream; -tables
		// pre-creates them for primaries whose in-memory WAL carries no
		// schema records.
		var names []string
		for _, t := range strings.Split(*tables, ",") {
			if t = strings.TrimSpace(t); t != "" {
				names = append(names, t)
			}
		}
		rep, err := pgssi.NewReplica(&wire.ReplicaSource{Addr: *replFrom, DialTimeout: 10 * time.Second, Logf: log.Printf}, names)
		if err != nil {
			log.Fatal(err)
		}
		srv := server.NewReplicaServer(rep, srvCfg)
		srv.DrainOnSignal()
		log.Printf("replica of %s listening on %s (tables=%s)", *replFrom, *addr, *tables)
		if err := srv.ListenAndServe(*addr); err != nil && err != server.ErrServerClosed {
			log.Fatal(err)
		}
		rep.Close()
		applied, aerr := rep.AppliedRecords()
		if aerr != nil {
			log.Printf("replica halted: %v", aerr)
			os.Exit(1)
		}
		log.Printf("drained at %d applied records (seq %d, safe %d), bye", applied, rep.AppliedSeq(), rep.SafeSeq())
		os.Exit(0)
	}

	if *ckptEvery > 0 && *dataDir == "" {
		log.Fatal("-checkpoint-every requires -data: only the durable WAL checkpoints")
	}
	cfg := pgssi.Config{Partitions: *partitions}
	var db *pgssi.DB
	if *dataDir != "" {
		mode, err := wal.ParseFsyncMode(*fsyncMode)
		if err != nil {
			log.Fatal(err)
		}
		cfg.FsyncMode = mode
		cfg.CheckpointEvery = *ckptEvery
		start := time.Now()
		db, err = pgssi.OpenDir(*dataDir, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if n := db.WALRecoveredRecords(); n > 0 {
			log.Printf("recovered %d WAL records from %s in %s (fsync=%s)", n, *dataDir, time.Since(start).Round(time.Millisecond), mode)
		} else {
			log.Printf("initialized %s (fsync=%s)", *dataDir, mode)
		}
	} else {
		db = pgssi.Open(cfg)
		// Replication streams the WAL, so an in-memory primary needs one
		// too — the log retains the full history (and its fan-out buffers)
		// in memory, which is the same durability trade the rest of the
		// in-memory mode already makes.
		db.AttachWAL(wal.NewLog())
	}
	names := strings.Split(*tables, ",")
	for _, t := range names {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		if err := db.CreateTable(t); err != nil {
			// After recovery the table is already there; that is not an
			// error on restart.
			if *dataDir != "" && strings.Contains(err.Error(), "already exists") {
				continue
			}
			log.Fatal(err)
		}
	}
	// A recovered database already holds its data; preloading again would
	// overwrite it (and double startup time).
	if *preload > 0 && db.WALRecoveredRecords() > 0 {
		log.Printf("skipping preload: recovered data present")
		*preload = 0
	}
	if *preload > 0 {
		start := time.Now()
		if err := preloadTable(db, strings.TrimSpace(names[0]), *preload, *valueSize); err != nil {
			log.Fatal(err)
		}
		log.Printf("preloaded %d rows into %q in %s", *preload, names[0], time.Since(start).Round(time.Millisecond))
	}

	srv := server.New(db, srvCfg)
	srv.DrainOnSignal()
	log.Printf("listening on %s (tables=%s preload=%d maxconns=%d)", *addr, *tables, *preload, *maxConns)
	err := srv.ListenAndServe(*addr)
	if err != nil && err != server.ErrServerClosed {
		log.Fatal(err)
	}
	db.Close()
	log.Printf("drained, bye")
	os.Exit(0)
}

// preloadTable inserts rows in chunked ReadCommitted transactions (no
// SSI bookkeeping needed for a single-writer bulk load).
func preloadTable(db *pgssi.DB, table string, rows, valueSize int) error {
	value := []byte(strings.Repeat("v", max(valueSize, 1)))
	const chunk = 5000
	for lo := 0; lo < rows; lo += chunk {
		hi := min(lo+chunk, rows)
		err := db.RunTx(pgssi.TxOptions{Isolation: pgssi.ReadCommitted}, func(tx *pgssi.Tx) error {
			for i := lo; i < hi; i++ {
				if err := tx.Insert(table, workload.LoadKey(i), value); err != nil {
					return fmt.Errorf("preload %s: %w", workload.LoadKey(i), err)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
