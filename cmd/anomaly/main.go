// Command anomaly runs randomized concurrent workloads at a chosen
// isolation level and checks the committed histories against the full
// multiversion serialization graph, reporting any dependency cycles —
// a command-line version of the repository's serializability oracle.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"strconv"
	"sync"

	"pgssi"
	"pgssi/internal/graphcheck"
)

func main() {
	levelName := flag.String("level", "serializable", "serializable | snapshot | s2pl")
	trials := flag.Int("trials", 20, "independent trials")
	workers := flag.Int("workers", 8, "concurrent workers per trial")
	txns := flag.Int("txns", 50, "transactions per worker")
	keys := flag.Int("keys", 5, "distinct keys (smaller = hotter)")
	flag.Parse()

	var level pgssi.IsolationLevel
	switch *levelName {
	case "serializable":
		level = pgssi.Serializable
	case "snapshot":
		level = pgssi.RepeatableRead
	case "s2pl":
		level = pgssi.SerializableS2PL
	default:
		log.Fatalf("unknown level %q", *levelName)
	}

	cycles := 0
	for trial := 0; trial < *trials; trial++ {
		txnsRec := runTrial(level, *workers, *txns, *keys, uint64(trial))
		g, err := graphcheck.Build(txnsRec)
		if err != nil {
			log.Fatal(err)
		}
		if cyc := g.Cycle(); cyc != nil {
			cycles++
			fmt.Printf("trial %2d: CYCLE %v  (%d committed txns)\n", trial, cyc, len(txnsRec))
		} else {
			fmt.Printf("trial %2d: serializable (%d committed txns)\n", trial, len(txnsRec))
		}
	}
	fmt.Printf("\n%s: %d/%d trials produced serialization cycles\n", level, cycles, *trials)
	if level == pgssi.Serializable && cycles > 0 {
		log.Fatal("BUG: SERIALIZABLE admitted a non-serializable execution")
	}
}

func runTrial(level pgssi.IsolationLevel, workers, txnsPer, nKeys int, seed uint64) []graphcheck.Txn {
	db := pgssi.Open(pgssi.Config{})
	if err := db.CreateTable("t"); err != nil {
		log.Fatal(err)
	}
	setup, _ := db.Begin(pgssi.TxOptions{})
	for i := 0; i < nKeys; i++ {
		_ = setup.Insert("t", key(i), []byte("0"))
	}
	_ = setup.Commit()

	var mu sync.Mutex
	var out []graphcheck.Txn
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, uint64(w)))
			for i := 0; i < txnsPer; i++ {
				for {
					rec, ok := oneTxn(db, level, rng, nKeys)
					if ok {
						if rec.ID != 0 {
							mu.Lock()
							out = append(out, rec)
							mu.Unlock()
						}
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return out
}

func key(i int) string { return fmt.Sprintf("k%02d", i) }

func oneTxn(db *pgssi.DB, level pgssi.IsolationLevel, rng *rand.Rand, nKeys int) (graphcheck.Txn, bool) {
	tx, err := db.Begin(pgssi.TxOptions{Isolation: level})
	if err != nil {
		log.Fatal(err)
	}
	var ops []graphcheck.Op
	reads := 2 + rng.IntN(2)
	writes := 1 + rng.IntN(reads)
	perm := rng.Perm(nKeys)
	for j := 0; j < reads && j < nKeys; j++ {
		k := key(perm[j])
		v, err := tx.Get("t", k)
		if err != nil {
			tx.Rollback()
			return graphcheck.Txn{}, !pgssi.IsSerializationFailure(err)
		}
		saw, _ := strconv.ParseUint(string(v), 10, 64)
		ops = append(ops, graphcheck.Op{Key: k, Saw: graphcheck.Version(saw)})
	}
	for j := reads - writes; j < reads && j < nKeys; j++ {
		k := key(perm[j])
		if err := tx.Update("t", k, []byte(strconv.FormatUint(tx.ID(), 10))); err != nil {
			tx.Rollback()
			return graphcheck.Txn{}, !pgssi.IsSerializationFailure(err)
		}
		ops = append(ops, graphcheck.Op{Key: k, Write: true})
	}
	if err := tx.Commit(); err != nil {
		return graphcheck.Txn{}, !pgssi.IsSerializationFailure(err)
	}
	return graphcheck.Txn{ID: tx.ID(), Ops: ops}, true
}
