// Command ssilint machine-checks the engine's concurrency and resource
// invariants: the //ssi:lock acquisition order, the constructor
// close-on-error discipline, and exhaustiveness of switches over the
// wire-stable enums. See docs/invariants.md.
//
// It runs two ways:
//
//	go build -o ssilint ./cmd/ssilint && go vet -vettool=./ssilint ./...
//	    The vet driver feeds it one pre-compiled package at a time
//	    (including test variants) via the vet config protocol; this is
//	    what CI runs, and it caches like any other vet.
//
//	go run ./cmd/ssilint ./...
//	    Standalone: loads packages itself via `go list` (non-test files
//	    only). Handy during development; `make lint` wraps the vettool
//	    form.
//
// The tool is stdlib-only on purpose — the build pins no
// golang.org/x/tools version — so the `go vet -vettool` contract
// (-V=full, -flags, and the JSON config file) is implemented here
// directly.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"pgssi/internal/lint"
	"pgssi/internal/lint/load"
)

func main() {
	args := os.Args[1:]
	// The vet driver's tool handshake: `ssilint -V=full` must print a
	// version line carrying a content hash (it keys vet's result
	// cache), and `ssilint -flags` must describe supported analyzer
	// flags as JSON (we add none).
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			fmt.Printf("ssilint version devel buildID=%s\n", selfID())
			return
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return
		case a == "-h" || a == "-help" || a == "--help":
			usage()
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  ssilint [packages]         analyze packages (default ./...)
  ssilint vet.cfg            vet-tool mode (driven by go vet -vettool)
  ssilint -V=full | -flags   vet driver handshake
`)
}

// selfID returns a content hash of this executable, so rebuilding the
// tool invalidates go vet's cached results.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// runStandalone loads packages with go list and analyzes them.
func runStandalone(patterns []string) int {
	pkgs, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssilint:", err)
		return 1
	}
	found := 0
	for _, p := range pkgs {
		diags, err := lint.Run(lint.Analyzers(), p.Fset, p.Files, p.Types, p.Info)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssilint:", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			found++
		}
	}
	if found > 0 {
		return 2
	}
	return 0
}

// vetConfig mirrors the JSON written by cmd/go for a vet tool (see
// buildVetConfig in cmd/go/internal/work/exec.go).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	GoVersion   string

	VetxOnly   bool
	VetxOutput string

	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the single package unit described by cfgPath,
// following the vet tool contract: diagnostics to stderr in
// file:line:col form with exit status 2, the vetx output file written
// regardless (we export no facts, but the driver caches the file).
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssilint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ssilint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("ssilint-novetx\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "ssilint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: ssilint exports no inter-package facts, so
		// there is nothing to compute.
		return 0
	}
	if cfg.Compiler != "" && cfg.Compiler != runtime.Compiler {
		// Export data below is read with this toolchain's importer.
		fmt.Fprintf(os.Stderr, "ssilint: unsupported compiler %q\n", cfg.Compiler)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssilint:", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, runtime.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	info := lint.NewTypesInfo()
	conf := types.Config{Importer: imp}
	if v := cfg.GoVersion; v != "" {
		conf.GoVersion = v
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ssilint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := lint.Run(lint.Analyzers(), fset, files, tpkg, info)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssilint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
