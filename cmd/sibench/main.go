// Command sibench regenerates Figure 4: SIBENCH throughput for SSI,
// SSI without read-only optimizations, and S2PL, normalized to snapshot
// isolation, as a function of table size.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"pgssi"
	"pgssi/internal/workload"
)

func main() {
	sizes := flag.String("sizes", "10,100,1000,10000", "comma-separated table sizes")
	workers := flag.Int("workers", 4, "closed-loop worker goroutines")
	dur := flag.Duration("duration", 2*time.Second, "measurement duration per point")
	partitions := flag.Int("partitions", 0, "SIREAD lock-table partitions (0 = engine default, 1 = single mutex)")
	scanRows := flag.Int("scanrows", 0, "cap each query transaction's scan at this many rows (0 = full-table scans)")
	perRow := flag.Bool("perrow", false, "use the legacy per-row scan read path instead of the page-grained batch")
	flag.Parse()

	var rows []int
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad size %q: %v", s, err)
		}
		rows = append(rows, n)
	}

	series, err := workload.Figure4Scan(rows, *scanRows, pgssi.Config{Partitions: *partitions, DisableScanBatch: *perRow}, workload.RunOptions{
		Workers: *workers, Duration: *dur, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 4 — SIBENCH throughput normalized to SI")
	fmt.Printf("%8s  %12s  %8s  %12s  %8s\n", "rows", "SI (txn/s)", "SSI", "SSI no r/o", "S2PL")
	for _, row := range series {
		fmt.Printf("%8d  %12.0f  %7.2fx  %11.2fx  %7.2fx\n",
			row.Rows, row.SI, row.SSI, row.SSINoRO, row.S2PL)
	}
}
