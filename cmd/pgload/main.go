// Command pgload drives a pgssid server with open-loop load: arrivals
// at a fixed or Poisson rate (not closed-loop workers, so queueing
// collapse is visible instead of hidden), zipfian key skew over a large
// keyspace, and HDR-style latency reporting (p50/p99/p999 measured from
// each arrival's scheduled time, queueing delay included).
//
// With -replicas it drives a replication fleet: writes go to the
// primary, and a -readfrac share of arrivals are read-only
// transactions routed by a lag-aware router (internal/router) to the
// replica with a recent-enough safe snapshot — serializable reads on a
// replica always begin deferrable, landing exactly on a safe snapshot,
// with primary fallback when every replica is stale past -maxlag for
// longer than -waitsafe.
//
// Example, against `pgssid -preload 1000000`:
//
//	pgload -addr :6432 -rate 3000 -duration 30s -keys 1000000 -zipf 1.1
//	pgload -addr :6432 -replicas :6433,:6434 -readfrac 0.9 -rate 3000
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"strings"
	"time"

	"pgssi"
	"pgssi/internal/router"
	"pgssi/internal/wire"
	"pgssi/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:6432", "server address")
		replicas  = flag.String("replicas", "", "comma-separated replica addresses (enables lag-aware read routing)")
		readFrac  = flag.Float64("readfrac", 0, "fraction of arrivals that are read-only transactions (routable to replicas)")
		maxLag    = flag.Uint64("maxlag", 1000, "staleness bound: replicas lagging more commits than this receive no reads")
		waitSafe  = flag.Duration("waitsafe", 100*time.Millisecond, "how long a read waits for an eligible replica before falling back to the primary")
		rate      = flag.Float64("rate", 2000, "offered arrival rate (txn/s)")
		duration  = flag.Duration("duration", 10*time.Second, "load duration")
		arrival   = flag.String("arrival", "poisson", "arrival process: poisson or fixed")
		conns     = flag.Int("conns", 16, "client connections per fleet member (transactions in flight share these)")
		keys      = flag.Int("keys", 1_000_000, "keyspace size (must match the server's -preload)")
		zipfS     = flag.Float64("zipf", 1.1, "zipfian skew exponent (<=1 = uniform)")
		reads     = flag.Int("reads", 2, "gets per transaction")
		writes    = flag.Int("writes", 1, "puts per read-write transaction")
		valueSize = flag.Int("valuesize", 16, "written value size in bytes")
		isolation = flag.String("iso", "serializable", "isolation: serializable, repeatableread, readcommitted, s2pl")
		retries   = flag.Int("retries", 3, "serialization-failure retries per arrival")
		pending   = flag.Int("maxpending", 4096, "max transactions in flight before arrivals are dropped")
		seed      = flag.Uint64("seed", 1, "rng seed")
		histPath  = flag.String("hist", "", "write the latency histogram to this file")
		table     = flag.String("table", "kv", "target table")
		wait      = flag.Duration("wait", 60*time.Second, "how long to retry the initial connection (server may still be preloading)")
	)
	flag.Parse()
	log.SetPrefix("pgload: ")
	log.SetFlags(0)

	level, err := parseIsolation(*isolation)
	if err != nil {
		log.Fatal(err)
	}
	arr := workload.ArrivalPoisson
	switch *arrival {
	case "poisson":
	case "fixed":
		arr = workload.ArrivalFixed
	default:
		log.Fatalf("unknown arrival process %q", *arrival)
	}
	var replAddrs []string
	for _, a := range strings.Split(*replicas, ",") {
		if a = strings.TrimSpace(a); a != "" {
			replAddrs = append(replAddrs, a)
		}
	}
	if len(replAddrs) > 0 && *readFrac <= 0 {
		log.Printf("note: -replicas without -readfrac > 0 sends no reads to the replicas")
	}

	deadline := time.Now().Add(*wait)
	// Per-slot connection pools: slot i owns one connection to every
	// fleet member, so a transaction's handles stay on the connection
	// that began it regardless of where the router sends it.
	clients := dialPool(*addr, *conns, deadline)
	defer closePool(clients)
	repClients := make([][]*wire.Client, len(replAddrs))
	for r, a := range replAddrs {
		repClients[r] = dialPool(a, *conns, deadline)
		defer closePool(repClients[r])
	}

	// The router polls fleet positions over dedicated connections.
	var rt *router.Router
	if len(replAddrs) > 0 {
		statusFunc := func(a string) router.StatusFunc {
			c := dialPool(a, 1, deadline)[0]
			return func() (uint64, uint64, bool) {
				applied, safe, st := c.ReplicaStatus()
				return applied, safe, st.OK()
			}
		}
		members := make([]router.Member, len(replAddrs))
		for r, a := range replAddrs {
			members[r] = router.Member{Name: a, Status: statusFunc(a)}
		}
		rt = router.New(
			router.Member{Name: *addr, Status: statusFunc(*addr)},
			members,
			router.Config{MaxLag: *maxLag, WaitSafe: *waitSafe, PollInterval: 10 * time.Millisecond},
		)
		defer rt.Close()
	}

	writeJob := workload.KVJob{
		Table:     *table,
		Keys:      *keys,
		ZipfS:     *zipfS,
		Reads:     *reads,
		Writes:    *writes,
		ValueSize: *valueSize,
		Isolation: level,
	}
	readJob := writeJob
	readJob.Writes = 0
	replicaReadJob := readJob
	replicaReadJob.Deferrable = true // land on a safe snapshot, never fail between markers

	// One transaction body per (slot, member, kind); an arrival checks a
	// slot out for its whole transaction (waiting for one counts toward
	// its latency, as queueing should).
	txnWrite := make([]func(*rand.Rand) error, *conns)
	txnRead := make([]func(*rand.Rand) error, *conns)
	txnReplica := make([][]func(*rand.Rand) error, *conns)
	for i := 0; i < *conns; i++ {
		txnWrite[i] = writeJob.Txn(clients[i])
		txnRead[i] = readJob.Txn(clients[i])
		txnReplica[i] = make([]func(*rand.Rand) error, len(replAddrs))
		for r := range replAddrs {
			txnReplica[i][r] = replicaReadJob.Txn(repClients[r][i])
		}
	}
	pool := make(chan int, *conns)
	for i := 0; i < *conns; i++ {
		pool <- i
	}

	log.Printf("driving %s (+%d replicas): rate=%.0f/s %s arrivals, %s, keys=%d zipf=%.2f, %d reads + %d writes per txn, readfrac=%.2f, iso=%s, %d conns/member",
		*addr, len(replAddrs), *rate, arr, *duration, *keys, *zipfS, *reads, *writes, *readFrac, level, *conns)
	res := workload.RunOpenLoop(workload.OpenLoopOptions{
		Rate:       *rate,
		Duration:   *duration,
		Arrival:    arr,
		MaxPending: *pending,
		MaxRetries: *retries,
		Seed:       *seed,
	}, func(rng *rand.Rand) error {
		i := <-pool
		defer func() { pool <- i }()
		if *readFrac <= 0 || rng.Float64() >= *readFrac {
			return txnWrite[i](rng)
		}
		if rt != nil {
			if r := rt.Pick(true); r >= 0 {
				err := txnReplica[i][r](rng)
				if err == nil {
					return nil
				}
				// The replica refused or failed mid-read (halted, draining,
				// connection lost): serve this arrival from the primary
				// rather than failing it.
			}
		}
		return txnRead[i](rng)
	})

	fmt.Println(res)
	if rt != nil {
		st := rt.Stats()
		fmt.Printf("routing: replica=%d primary=%d fallbacks=%d\n", st.ReplicaBegins, st.PrimaryBegins, st.Fallbacks)
	}
	for _, c := range clients {
		if err := c.Err(); err != nil {
			log.Printf("connection error: %v", err)
			break
		}
	}
	if *histPath != "" {
		f, err := os.Create(*histPath)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := res.Hist.WriteTo(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("histogram written to %s", *histPath)
	}
	if res.Errors > 0 {
		log.Fatalf("%d non-retryable errors", res.Errors)
	}
}

// dialPool dials n connections to addr, retrying each until deadline
// (the server may still be preloading or catching up).
func dialPool(addr string, n int, deadline time.Time) []*wire.Client {
	clients := make([]*wire.Client, n)
	for i := range clients {
		for {
			c, err := wire.Dial(addr, wire.DialOptions{Timeout: 30 * time.Second})
			if err == nil {
				if st := c.Ping(); st.OK() {
					clients[i] = c
					break
				}
				c.Close()
			}
			if time.Now().After(deadline) {
				log.Fatalf("cannot reach %s: %v", addr, err)
			}
			time.Sleep(250 * time.Millisecond)
		}
	}
	return clients
}

// closePool closes every connection in a pool.
func closePool(clients []*wire.Client) {
	for _, c := range clients {
		c.Close()
	}
}

func parseIsolation(s string) (pgssi.IsolationLevel, error) {
	switch s {
	case "serializable", "ssi":
		return pgssi.Serializable, nil
	case "repeatableread", "si":
		return pgssi.RepeatableRead, nil
	case "readcommitted", "rc":
		return pgssi.ReadCommitted, nil
	case "s2pl", "2pl":
		return pgssi.SerializableS2PL, nil
	default:
		return 0, fmt.Errorf("unknown isolation level %q", s)
	}
}
