// Command pgload drives a pgssid server with open-loop load: arrivals
// at a fixed or Poisson rate (not closed-loop workers, so queueing
// collapse is visible instead of hidden), zipfian key skew over a large
// keyspace, and HDR-style latency reporting (p50/p99/p999 measured from
// each arrival's scheduled time, queueing delay included).
//
// Example, against `pgssid -preload 1000000`:
//
//	pgload -addr :6432 -rate 3000 -duration 30s -keys 1000000 -zipf 1.1
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"time"

	"pgssi"
	"pgssi/internal/wire"
	"pgssi/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:6432", "server address")
		rate      = flag.Float64("rate", 2000, "offered arrival rate (txn/s)")
		duration  = flag.Duration("duration", 10*time.Second, "load duration")
		arrival   = flag.String("arrival", "poisson", "arrival process: poisson or fixed")
		conns     = flag.Int("conns", 16, "client connections (transactions in flight share these)")
		keys      = flag.Int("keys", 1_000_000, "keyspace size (must match the server's -preload)")
		zipfS     = flag.Float64("zipf", 1.1, "zipfian skew exponent (<=1 = uniform)")
		reads     = flag.Int("reads", 2, "gets per transaction")
		writes    = flag.Int("writes", 1, "puts per transaction")
		valueSize = flag.Int("valuesize", 16, "written value size in bytes")
		isolation = flag.String("iso", "serializable", "isolation: serializable, repeatableread, readcommitted, s2pl")
		retries   = flag.Int("retries", 3, "serialization-failure retries per arrival")
		pending   = flag.Int("maxpending", 4096, "max transactions in flight before arrivals are dropped")
		seed      = flag.Uint64("seed", 1, "rng seed")
		histPath  = flag.String("hist", "", "write the latency histogram to this file")
		table     = flag.String("table", "kv", "target table")
		wait      = flag.Duration("wait", 60*time.Second, "how long to retry the initial connection (server may still be preloading)")
	)
	flag.Parse()
	log.SetPrefix("pgload: ")
	log.SetFlags(0)

	level, err := parseIsolation(*isolation)
	if err != nil {
		log.Fatal(err)
	}
	arr := workload.ArrivalPoisson
	switch *arrival {
	case "poisson":
	case "fixed":
		arr = workload.ArrivalFixed
	default:
		log.Fatalf("unknown arrival process %q", *arrival)
	}

	// Dial the pool, retrying while the server preloads.
	clients := make([]*wire.Client, *conns)
	deadline := time.Now().Add(*wait)
	for i := range clients {
		for {
			c, err := wire.Dial(*addr, wire.DialOptions{Timeout: 30 * time.Second})
			if err == nil {
				if st := c.Ping(); st.OK() {
					clients[i] = c
					break
				}
				c.Close()
			}
			if time.Now().After(deadline) {
				log.Fatalf("cannot reach %s: %v", *addr, err)
			}
			time.Sleep(250 * time.Millisecond)
		}
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	job := workload.KVJob{
		Table:     *table,
		Keys:      *keys,
		ZipfS:     *zipfS,
		Reads:     *reads,
		Writes:    *writes,
		ValueSize: *valueSize,
		Isolation: level,
	}
	// One transaction body per connection; an arrival checks a
	// connection out for its whole transaction (waiting for one counts
	// toward its latency, as queueing should).
	txns := make([]func(*rand.Rand) error, len(clients))
	for i, c := range clients {
		txns[i] = job.Txn(c)
	}
	pool := make(chan int, len(clients))
	for i := range clients {
		pool <- i
	}

	log.Printf("driving %s: rate=%.0f/s %s arrivals, %s, keys=%d zipf=%.2f, %d reads + %d writes per txn, iso=%s, %d conns",
		*addr, *rate, arr, *duration, *keys, *zipfS, *reads, *writes, level, *conns)
	res := workload.RunOpenLoop(workload.OpenLoopOptions{
		Rate:       *rate,
		Duration:   *duration,
		Arrival:    arr,
		MaxPending: *pending,
		MaxRetries: *retries,
		Seed:       *seed,
	}, func(rng *rand.Rand) error {
		i := <-pool
		defer func() { pool <- i }()
		return txns[i](rng)
	})

	fmt.Println(res)
	for _, c := range clients {
		if err := c.Err(); err != nil {
			log.Printf("connection error: %v", err)
			break
		}
	}
	if *histPath != "" {
		f, err := os.Create(*histPath)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := res.Hist.WriteTo(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("histogram written to %s", *histPath)
	}
	if res.Errors > 0 {
		log.Fatalf("%d non-retryable errors", res.Errors)
	}
}

func parseIsolation(s string) (pgssi.IsolationLevel, error) {
	switch s {
	case "serializable", "ssi":
		return pgssi.Serializable, nil
	case "repeatableread", "si":
		return pgssi.RepeatableRead, nil
	case "readcommitted", "rc":
		return pgssi.ReadCommitted, nil
	case "s2pl", "2pl":
		return pgssi.SerializableS2PL, nil
	default:
		return 0, fmt.Errorf("unknown isolation level %q", s)
	}
}
