package pgssi_test

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync"
	"testing"
	"time"

	"pgssi"
	"pgssi/internal/graphcheck"
)

// This file contains the repository's strongest correctness evidence: a
// randomized concurrent workload whose committed histories are checked
// offline against the full multiversion serialization graph (wr, ww, and
// rw edges — §3.1). Any cycle would mean the Serializable level admitted
// a non-serializable execution. The same harness run under snapshot
// isolation regularly produces cycles, confirming the oracle has teeth.

// historyRecorder accumulates committed transaction histories.
type historyRecorder struct {
	mu   sync.Mutex
	txns []graphcheck.Txn
}

func (h *historyRecorder) add(t graphcheck.Txn) {
	h.mu.Lock()
	h.txns = append(h.txns, t)
	h.mu.Unlock()
}

// runRandomHistory drives workers concurrent read-modify-write
// transactions over nKeys keys at the given isolation level and returns
// the committed histories. Values hold the version tag (the writer's
// xid; "0" initially) so reads observe exact versions.
func runRandomHistory(t *testing.T, level pgssi.IsolationLevel, workers, txnsPerWorker, nKeys int, scanFraction float64, seed uint64) []graphcheck.Txn {
	t.Helper()
	db := pgssi.Open(pgssi.Config{})
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	setup, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nKeys; i++ {
		if err := setup.Insert("t", keyName(i), []byte("0")); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	rec := &historyRecorder{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, uint64(w)))
			for i := 0; i < txnsPerWorker; i++ {
				for attempt := 0; attempt < 50; attempt++ {
					ok := runOneRandomTxn(t, db, level, rng, nKeys, scanFraction, rec)
					if ok {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return rec.txns
}

func keyName(i int) string { return fmt.Sprintf("k%03d", i) }

// runOneRandomTxn runs a single transaction; returns false if it was
// aborted with a serialization failure (retry).
func runOneRandomTxn(t *testing.T, db *pgssi.DB, level pgssi.IsolationLevel, rng *rand.Rand, nKeys int, scanFraction float64, rec *historyRecorder) bool {
	tx, err := db.Begin(pgssi.TxOptions{Isolation: level})
	if err != nil {
		t.Error(err)
		return true
	}
	var ops []graphcheck.Op
	fail := func(err error) bool {
		tx.Rollback()
		if pgssi.IsSerializationFailure(err) {
			return false
		}
		t.Errorf("unexpected error: %v", err)
		return true
	}

	if rng.Float64() < scanFraction {
		// Read-only scan transaction: observes every key's version.
		err := tx.Scan("t", "", "", func(k string, v []byte) bool {
			ops = append(ops, graphcheck.Op{Key: k, Saw: parseVersion(t, v)})
			return true
		})
		if err != nil {
			return fail(err)
		}
	} else {
		// Read-modify-write over a few random keys: read phase first,
		// then a scheduling pause, then the writes. The pause widens
		// the window in which two transactions have both read
		// overlapping keys but not yet written disjoint ones — the
		// write-skew shape of §2.1.1.
		reads := 2 + rng.IntN(3)
		if reads > nKeys {
			reads = nKeys
		}
		writes := 1 + rng.IntN(reads)
		perm := rng.Perm(nKeys)
		for j := 0; j < reads; j++ {
			k := keyName(perm[j])
			v, err := tx.Get("t", k)
			if err != nil {
				return fail(err)
			}
			ops = append(ops, graphcheck.Op{Key: k, Saw: parseVersion(t, v)})
		}
		time.Sleep(time.Duration(rng.IntN(200)) * time.Microsecond)
		// Write the *last* keys read so concurrent transactions tend
		// to write disjoint subsets of a shared read set.
		for j := reads - writes; j < reads; j++ {
			k := keyName(perm[j])
			if err := tx.Update("t", k, []byte(strconv.FormatUint(tx.ID(), 10))); err != nil {
				return fail(err)
			}
			ops = append(ops, graphcheck.Op{Key: k, Write: true})
		}
	}
	if err := tx.Commit(); err != nil {
		if pgssi.IsSerializationFailure(err) {
			return false
		}
		t.Errorf("commit: %v", err)
		return true
	}
	rec.add(graphcheck.Txn{ID: tx.ID(), Ops: ops})
	return true
}

func parseVersion(t *testing.T, v []byte) graphcheck.Version {
	n, err := strconv.ParseUint(string(v), 10, 64)
	if err != nil {
		t.Fatalf("bad version tag %q: %v", v, err)
	}
	return graphcheck.Version(n)
}

func TestSerializableHistoriesAreAcyclic(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized history check skipped in -short mode")
	}
	for trial := 0; trial < 8; trial++ {
		txns := runRandomHistory(t, pgssi.Serializable, 8, 60, 6, 0.2, uint64(1000+trial))
		g, err := graphcheck.Build(txns)
		if err != nil {
			t.Fatal(err)
		}
		if cyc := g.Cycle(); cyc != nil {
			t.Fatalf("trial %d: SERIALIZABLE admitted a non-serializable history; cycle %v over %d txns",
				trial, cyc, len(txns))
		}
		if order := g.SerialOrder(); order == nil {
			t.Fatalf("trial %d: acyclic graph must have a serial order", trial)
		}
	}
}

func TestSnapshotIsolationHistoriesCanCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized history check skipped in -short mode")
	}
	// Confirm the oracle detects anomalies: under plain snapshot
	// isolation with high contention, at least one of many trials
	// should produce a dependency cycle (write skew). This guards
	// against a vacuous acyclicity test above.
	for trial := 0; trial < 40; trial++ {
		txns := runRandomHistory(t, pgssi.RepeatableRead, 8, 40, 4, 0.1, uint64(2000+trial))
		g, err := graphcheck.Build(txns)
		if err != nil {
			t.Fatal(err)
		}
		if g.Cycle() != nil {
			return // anomaly observed, oracle works
		}
	}
	t.Fatal("no SI anomaly observed in 40 trials; the checker may be vacuous")
}

func TestS2PLHistoriesAreAcyclic(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized history check skipped in -short mode")
	}
	for trial := 0; trial < 4; trial++ {
		txns := runRandomHistory(t, pgssi.SerializableS2PL, 6, 40, 6, 0.2, uint64(3000+trial))
		g, err := graphcheck.Build(txns)
		if err != nil {
			t.Fatal(err)
		}
		if cyc := g.Cycle(); cyc != nil {
			t.Fatalf("trial %d: S2PL admitted a non-serializable history; cycle %v", trial, cyc)
		}
	}
}
