package pgssi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newSessionDB(t *testing.T, tables ...string) *DB {
	t.Helper()
	db := Open(Config{})
	t.Cleanup(func() { db.Close() })
	for _, tbl := range tables {
		if err := db.CreateTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestSessionBasics(t *testing.T) {
	db := newSessionDB(t, "kv")
	s := db.NewSession()

	h, st := s.Begin(Serializable, false, false)
	if !st.OK() || h == 0 {
		t.Fatalf("begin: h=%d st=%v", h, st)
	}
	if st := s.Insert(h, "kv", "a", []byte("1")); !st.OK() {
		t.Fatalf("insert: %v", st)
	}
	if st := s.Insert(h, "kv", "a", []byte("x")); st != StatusDuplicateKey {
		t.Fatalf("dup insert: %v", st)
	}
	if st := s.Put(h, "kv", "a", []byte("2")); !st.OK() {
		t.Fatalf("put existing: %v", st)
	}
	if st := s.Put(h, "kv", "b", []byte("3")); !st.OK() {
		t.Fatalf("put new (upsert): %v", st)
	}
	v, st := s.Get(h, "kv", "a")
	if !st.OK() || string(v) != "2" {
		t.Fatalf("get: %q %v", v, st)
	}
	rows, st := s.Scan(h, "kv", "", "", 0)
	if !st.OK() || len(rows) != 2 {
		t.Fatalf("scan: %v %v", st, rows)
	}
	if st := s.Delete(h, "kv", "b"); !st.OK() {
		t.Fatalf("delete: %v", st)
	}
	if _, st := s.Get(h, "kv", "b"); st != StatusNotFound {
		t.Fatalf("get deleted: %v", st)
	}
	if _, st := s.Get(h, "none", "a"); st != StatusNoTable {
		t.Fatalf("get no table: %v", st)
	}
	if s.Open() != 1 {
		t.Fatalf("Open() = %d, want 1", s.Open())
	}
	if st := s.Commit(h); !st.OK() {
		t.Fatalf("commit: %v", st)
	}
	if s.Open() != 0 {
		t.Fatalf("Open() after commit = %d", s.Open())
	}

	// The handle is gone after commit.
	if _, st := s.Get(h, "kv", "a"); st != StatusInvalidHandle {
		t.Fatalf("get on committed handle: %v", st)
	}
	if st := s.Rollback(h); st != StatusInvalidHandle {
		t.Fatalf("rollback committed handle: %v", st)
	}
	if _, st := s.Get(0, "kv", "a"); st != StatusInvalidHandle {
		t.Fatalf("zero handle: %v", st)
	}
}

func TestSessionReadOnly(t *testing.T) {
	db := newSessionDB(t, "kv")
	s := db.NewSession()
	h, st := s.Begin(Serializable, true, false)
	if !st.OK() {
		t.Fatal(st)
	}
	if st := s.Put(h, "kv", "a", []byte("1")); st != StatusReadOnlyTx {
		t.Fatalf("write in read-only tx: %v", st)
	}
	if st := s.Commit(h); !st.OK() {
		t.Fatal(st)
	}
}

func TestSessionSavepoints(t *testing.T) {
	db := newSessionDB(t, "kv")
	s := db.NewSession()
	h, _ := s.Begin(Serializable, false, false)
	s.Insert(h, "kv", "keep", []byte("1"))
	if st := s.Savepoint(h, "sp"); !st.OK() {
		t.Fatalf("savepoint: %v", st)
	}
	s.Insert(h, "kv", "drop", []byte("2"))
	if st := s.RollbackToSavepoint(h, "sp"); !st.OK() {
		t.Fatalf("rollback to sp: %v", st)
	}
	if st := s.ReleaseSavepoint(h, "missing"); st != StatusNoSavepoint {
		t.Fatalf("release missing sp: %v", st)
	}
	if st := s.Commit(h); !st.OK() {
		t.Fatal(st)
	}
	h, _ = s.Begin(ReadCommitted, true, false)
	if _, st := s.Get(h, "kv", "keep"); !st.OK() {
		t.Fatalf("keep lost: %v", st)
	}
	if _, st := s.Get(h, "kv", "drop"); st != StatusNotFound {
		t.Fatalf("drop survived: %v", st)
	}
	s.Commit(h)
}

// TestSessionWriteSkew runs write skew through two in-process sessions:
// exactly one must fail with StatusSerializationFailure.
func TestSessionWriteSkew(t *testing.T) {
	db := newSessionDB(t, "oncall")
	setup := db.NewSession()
	h, _ := setup.Begin(ReadCommitted, false, false)
	setup.Insert(h, "oncall", "alice", []byte("on"))
	setup.Insert(h, "oncall", "bob", []byte("on"))
	if st := setup.Commit(h); !st.OK() {
		t.Fatal(st)
	}

	s1, s2 := db.NewSession(), db.NewSession()
	h1, _ := s1.Begin(Serializable, false, false)
	h2, _ := s2.Begin(Serializable, false, false)
	for _, k := range []string{"alice", "bob"} {
		if _, st := s1.Get(h1, "oncall", k); !st.OK() {
			t.Fatal(st)
		}
		if _, st := s2.Get(h2, "oncall", k); !st.OK() {
			t.Fatal(st)
		}
	}
	st1 := s1.Update(h1, "oncall", "alice", []byte("off"))
	st2 := s2.Update(h2, "oncall", "bob", []byte("off"))
	if st1.OK() {
		st1 = s1.Commit(h1)
	} else {
		s1.Rollback(h1)
	}
	if st2.OK() {
		st2 = s2.Commit(h2)
	} else {
		s2.Rollback(h2)
	}
	failures := 0
	for _, st := range []Status{st1, st2} {
		if st == StatusSerializationFailure {
			failures++
		} else if st != StatusOK {
			t.Fatalf("unexpected status %v (st1=%v st2=%v)", st, st1, st2)
		}
	}
	if failures != 1 {
		t.Fatalf("want exactly 1 serialization failure, got %d (st1=%v st2=%v)", failures, st1, st2)
	}
}

// TestSessionRetryable: serialization failures are the retryable ones.
func TestSessionRetryable(t *testing.T) {
	if !StatusSerializationFailure.Retryable() {
		t.Fatal("serialization failure must be retryable")
	}
	for _, st := range []Status{StatusOK, StatusNotFound, StatusDuplicateKey, StatusInvalidHandle, StatusShuttingDown} {
		if st.Retryable() {
			t.Fatalf("%v must not be retryable", st)
		}
	}
}

// TestStatusRoundTrip: Status→error→Status is the identity for every
// code that maps to an error, and StatusOf inverts Err.
func TestStatusRoundTrip(t *testing.T) {
	for st := StatusOK; st <= StatusInternal; st++ {
		err := st.Err()
		if st == StatusOK {
			if err != nil {
				t.Fatalf("StatusOK.Err() = %v", err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("%v.Err() = nil", st)
		}
		// StatusInvalidRequest and StatusInternal have no sentinel of
		// their own; their errors legitimately map back to StatusInternal.
		if got := StatusOf(err); got != st && st != StatusInternal && st != StatusInvalidRequest {
			t.Fatalf("StatusOf(%v.Err()) = %v", st, got)
		}
		if st.String() == "" {
			t.Fatalf("status %d has no name", uint8(st))
		}
	}
	if StatusOf(nil) != StatusOK {
		t.Fatal("StatusOf(nil)")
	}
	if StatusOf(fmt.Errorf("unknown")) != StatusInternal {
		t.Fatal("StatusOf(unknown error)")
	}
}

// TestSessionClose rolls back open handles but leaves the session
// usable.
func TestSessionClose(t *testing.T) {
	db := newSessionDB(t, "kv")
	s := db.NewSession()
	h, _ := s.Begin(Serializable, false, false)
	s.Insert(h, "kv", "doomed", []byte("1"))
	h2, _ := s.Begin(Serializable, false, false)
	if s.Open() != 2 {
		t.Fatalf("Open() = %d", s.Open())
	}
	s.Close()
	if s.Open() != 0 {
		t.Fatalf("Open() after Close = %d", s.Open())
	}
	if _, st := s.Get(h, "kv", "doomed"); st != StatusInvalidHandle {
		t.Fatalf("handle survived Close: %v", st)
	}
	if st := s.Commit(h2); st != StatusInvalidHandle {
		t.Fatalf("handle survived Close: %v", st)
	}
	// The session itself is still usable after Close.
	h3, st := s.Begin(ReadCommitted, true, false)
	if !st.OK() {
		t.Fatalf("begin after Close: %v", st)
	}
	if _, st := s.Get(h3, "kv", "doomed"); st != StatusNotFound {
		t.Fatalf("doomed write survived session Close: %v", st)
	}
	s.Commit(h3)
}

// TestSessionConcurrent exercises the session's own locking: many
// goroutines, each with its own handle, under -race.
func TestSessionConcurrent(t *testing.T) {
	db := newSessionDB(t, "kv")
	s := db.NewSession()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				h, st := s.Begin(Serializable, false, false)
				if !st.OK() {
					t.Errorf("begin: %v", st)
					return
				}
				key := fmt.Sprintf("g%d-%d", g, i)
				if st := s.Put(h, "kv", key, []byte("v")); !st.OK() {
					s.Rollback(h)
					continue
				}
				if st := s.Commit(h); st != StatusOK && st != StatusSerializationFailure {
					t.Errorf("commit: %v", st)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRunTxAttemptsBounded: a transaction body that always fails with a
// serialization error stops after MaxAttempts and surfaces both the
// exhaustion sentinel and the retryability of the underlying cause.
func TestRunTxAttemptsBounded(t *testing.T) {
	db := newSessionDB(t, "kv")
	calls := 0
	attempts, err := db.RunTxAttempts(TxOptions{MaxAttempts: 3, RetryBackoff: 1}, func(tx *Tx) error {
		calls++
		return ErrSerialization
	})
	if calls != 3 || attempts != 3 {
		t.Fatalf("calls=%d attempts=%d, want 3", calls, attempts)
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if !IsSerializationFailure(err) {
		t.Fatalf("exhausted error should still report as serialization failure: %v", err)
	}

	// Success on a later attempt reports the attempt count and no error.
	calls = 0
	attempts, err = db.RunTxAttempts(TxOptions{MaxAttempts: 5, RetryBackoff: 1}, func(tx *Tx) error {
		calls++
		if calls < 3 {
			return ErrSerialization
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("attempts=%d err=%v, want 3/nil", attempts, err)
	}

	// Non-retryable errors do not consume extra attempts.
	calls = 0
	sentinel := errors.New("boom")
	attempts, err = db.RunTxAttempts(TxOptions{MaxAttempts: 5}, func(tx *Tx) error {
		calls++
		return sentinel
	})
	if calls != 1 || attempts != 1 || !errors.Is(err, sentinel) {
		t.Fatalf("calls=%d attempts=%d err=%v", calls, attempts, err)
	}
}

// TestDBClose: Begin after Close fails with ErrClosed; Close is
// idempotent; transactions begun before Close can still finish.
func TestDBClose(t *testing.T) {
	db := Open(Config{})
	if err := db.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin(TxOptions{Isolation: Serializable})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("kv", "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := db.Begin(TxOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Begin after Close: %v, want ErrClosed", err)
	}
	if err := db.RunTx(TxOptions{}, func(tx *Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("RunTx after Close: %v, want ErrClosed", err)
	}
	// The in-flight transaction still completes.
	if err := tx.Commit(); err != nil {
		t.Fatalf("in-flight commit after Close: %v", err)
	}
}

// TestTxPutUpsert: Put inserts when missing and updates when present,
// at the Tx layer directly.
func TestTxPutUpsert(t *testing.T) {
	db := newSessionDB(t, "kv")
	err := db.RunTx(TxOptions{Isolation: Serializable}, func(tx *Tx) error {
		if err := tx.Put("kv", "k", []byte("1")); err != nil {
			return fmt.Errorf("put new: %w", err)
		}
		if err := tx.Put("kv", "k", []byte("2")); err != nil {
			return fmt.Errorf("put existing: %w", err)
		}
		v, err := tx.Get("kv", "k")
		if err != nil || string(v) != "2" {
			return fmt.Errorf("get: %q %v", v, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
