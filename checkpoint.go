package pgssi

import (
	"fmt"
	"sort"

	"pgssi/internal/mvcc"
	"pgssi/internal/wal"
)

// Checkpointing: bound the durable log by folding the database state at
// a safe-snapshot marker into a checkpoint file, then GCing every
// segment fully covered by it (wal.DurableLog.WriteCheckpoint).
//
// The trigger runs inside the safe-snapshot marker path
// (maybeEmitMarkerLocked, under db.walMu at a quiescent instant), which
// is what makes the checkpoint sequence sound: the marker at seq C
// guarantees no read/write transaction spans C, so a snapshot taken at
// that instant — while still holding walMu, before any later commit can
// publish — captures exactly the state a replica or recovery replaying
// through C must reach. The snapshot is pinned by an ordinary read-only
// transaction so vacuum cannot reclaim the versions the checkpoint
// writer is about to stream, and the writing happens on a background
// goroutine so the primary keeps serving.

// Checkpoint-writer batching: row images are packed into multi-op
// records so one huge table does not produce one huge frame (the frame
// cap is wal.MaxRecordSize) nor one frame per row.
const (
	ckptBatchOps   = 1024
	ckptBatchBytes = 1 << 20
)

// Checkpoint writes a checkpoint of the durable WAL at the next
// safe-snapshot point and garbage-collects every log segment fully
// covered by it, blocking until the checkpoint is durable (or has
// failed). If a checkpoint is already in flight its result is shared;
// if nothing has committed since the last checkpoint, that checkpoint's
// info is returned without writing a new one. Returns an error if the
// DB has no durable WAL or nothing has ever committed.
func (db *DB) Checkpoint() (wal.CheckpointInfo, error) {
	if db.durable == nil {
		return wal.CheckpointInfo{}, fmt.Errorf("pgssi: checkpoint requires a durable WAL (OpenDir)")
	}
	if db.closed.Load() {
		return wal.CheckpointInfo{}, ErrClosed
	}
	if db.mvcc.CurrentSeq() == 0 {
		return wal.CheckpointInfo{}, fmt.Errorf("pgssi: nothing to checkpoint (no commits)")
	}
	ch := make(chan ckptResult, 1)
	db.ckptMu.Lock()
	db.ckptWaiters = append(db.ckptWaiters, ch)
	db.ckptMu.Unlock()
	// Nudge: if the system is quiescent right now, the marker path fires
	// the trigger immediately; otherwise the next quiescent instant
	// (every commit and abort re-checks) starts the checkpoint.
	db.walMu.Lock()
	db.maybeEmitMarkerLocked()
	db.walMu.Unlock()
	res := <-ch
	return res.info, res.err
}

// checkpointWanted reports whether a quiescent instant should start (or
// resolve) a checkpoint: a manual waiter is parked, or the size trigger
// has tripped. Used by the abort path's cheap pre-check, which would
// otherwise skip the walMu section when no marker is owed.
func (db *DB) checkpointWanted() bool {
	if db.durable == nil || db.closed.Load() {
		return false
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	if db.ckptRunning {
		return false
	}
	if len(db.ckptWaiters) > 0 {
		return true
	}
	return db.cfg.CheckpointEvery > 0 &&
		db.durable.Stats().BytesWritten-db.ckptLastBytes >= db.cfg.CheckpointEvery
}

// maybeStartCheckpointLocked is the checkpoint trigger. Caller holds
// db.walMu and has established the quiescent instant at commit sequence
// seq (a safe-snapshot marker at seq is in the log). If a checkpoint is
// wanted and none is running, it pins the snapshot HERE — under walMu,
// so no later commit can publish before the pin exists — and hands the
// writing to a background goroutine.
func (db *DB) maybeStartCheckpointLocked(seq uint64) {
	if db.durable == nil {
		return
	}
	if db.closed.Load() {
		// Catches a waiter that registered after Close's own drain: no
		// further quiescent instant will come, so fail it here.
		db.failCheckpointWaiters(ErrClosed)
		return
	}
	db.ckptMu.Lock()
	if db.ckptRunning {
		db.ckptMu.Unlock()
		return
	}
	want := len(db.ckptWaiters) > 0
	if !want && db.cfg.CheckpointEvery > 0 {
		want = db.durable.Stats().BytesWritten-db.ckptLastBytes >= db.cfg.CheckpointEvery
	}
	if !want {
		db.ckptMu.Unlock()
		return
	}
	if seq <= db.ckptLastSeq {
		// Nothing has committed since the last checkpoint: it already
		// captures this state, so resolve the manual waiters with it
		// rather than writing a byte-identical successor (the wal layer
		// would reject the duplicate sequence anyway).
		waiters := db.ckptWaiters
		db.ckptWaiters = nil
		db.ckptMu.Unlock()
		info, ok := db.durable.CheckpointInfo()
		res := ckptResult{info: info}
		if !ok {
			res.err = wal.ErrNoCheckpoint
		}
		for _, w := range waiters {
			w <- res
		}
		return
	}
	db.ckptRunning = true
	db.ckptMu.Unlock()

	// Pin the marker's snapshot with an ordinary read-only transaction.
	// Begin under walMu is safe (walMu precedes the mvcc locks in the
	// lock order) and necessary: once walMu is released a later commit
	// could publish, and a snapshot taken then would no longer be the
	// marker's.
	tx, err := db.Begin(TxOptions{Isolation: RepeatableRead, ReadOnly: true})
	if err != nil {
		db.finishCheckpoint(wal.CheckpointInfo{}, err, false)
		return
	}
	go db.runCheckpoint(seq, tx)
}

// runCheckpoint streams the pinned snapshot into a checkpoint file and
// GCs covered segments (wal.DurableLog.WriteCheckpoint), then releases
// the pin and resolves every parked waiter.
func (db *DB) runCheckpoint(seq uint64, tx *Tx) {
	info, err := db.writeCheckpointRecords(seq, tx)
	// Update the watermarks BEFORE releasing the pin: the Rollback below
	// re-enters the marker path (the pin was the last active
	// transaction), and the trigger must see the finished checkpoint —
	// otherwise it would immediately start another.
	db.finishCheckpoint(info, err, err == nil)
	tx.Rollback()
}

// writeCheckpointRecords drives wal.DurableLog.WriteCheckpoint: schema
// records first, then every table's visible rows at the pinned
// snapshot, packed into batched multi-op records.
func (db *DB) writeCheckpointRecords(seq uint64, tx *Tx) (wal.CheckpointInfo, error) {
	db.mu.RLock()
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	db.mu.RUnlock()
	sort.Strings(names)

	return db.durable.WriteCheckpoint(mvcc.SeqNo(seq), func(emit func(wal.Record) error) error {
		for _, name := range names {
			if err := emit(wal.Record{CreateTable: name}); err != nil {
				return err
			}
		}
		for _, name := range names {
			var ops []wal.Op
			var batch int
			flush := func() error {
				if len(ops) == 0 {
					return nil
				}
				err := emit(wal.Record{Ops: ops})
				ops, batch = nil, 0
				return err
			}
			var emitErr error
			serr := tx.Scan(name, "", "", func(key string, value []byte) bool {
				ops = append(ops, wal.Op{Table: name, Key: key, Value: value})
				batch += len(key) + len(value)
				if len(ops) >= ckptBatchOps || batch >= ckptBatchBytes {
					emitErr = flush()
				}
				return emitErr == nil
			})
			if emitErr != nil {
				return emitErr
			}
			if serr != nil {
				return serr
			}
			if err := flush(); err != nil {
				return err
			}
		}
		return nil
	})
}

// finishCheckpoint publishes a checkpoint attempt's outcome: on success
// the watermarks advance; on failure with no manual waiter the byte
// watermark still advances so the size trigger cannot hot-loop retrying
// a persistently failing (e.g. poisoned) log — the next attempt waits
// for another CheckpointEvery bytes or an explicit DB.Checkpoint. All
// parked waiters are resolved either way.
func (db *DB) finishCheckpoint(info wal.CheckpointInfo, err error, ok bool) {
	db.ckptMu.Lock()
	if ok {
		db.ckptLastSeq = uint64(info.Seq)
	}
	db.ckptLastBytes = db.durable.Stats().BytesWritten
	waiters := db.ckptWaiters
	db.ckptWaiters = nil
	db.ckptRunning = false
	db.ckptMu.Unlock()
	for _, w := range waiters {
		w <- ckptResult{info: info, err: err}
	}
}

// failCheckpointWaiters resolves every parked DB.Checkpoint waiter with
// err. Close calls it so a waiter parked on a database that will never
// see another quiescent instant does not block forever.
func (db *DB) failCheckpointWaiters(err error) {
	db.ckptMu.Lock()
	waiters := db.ckptWaiters
	db.ckptWaiters = nil
	db.ckptMu.Unlock()
	for _, w := range waiters {
		w <- ckptResult{err: err}
	}
}

// CheckpointInfo reports the durable WAL's newest checkpoint, if any.
func (db *DB) CheckpointInfo() (wal.CheckpointInfo, bool) {
	if db.durable == nil {
		return wal.CheckpointInfo{}, false
	}
	return db.durable.CheckpointInfo()
}
