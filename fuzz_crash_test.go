package pgssi_test

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"pgssi"
	"pgssi/internal/wal"
)

// TestFuzzCrashRecoveryPrefix is the seeded history fuzzer's
// crash-recovery mode: each seeded history runs against a durable
// (OpenDir) database whose filesystem is a wal.FaultFS that silently
// drops every fsync after a seeded point — the lying-disk model, so the
// client sees every commit acknowledged while only a prefix of the log
// actually reaches the platter. The process state is then dropped
// (Crash truncates each file to its synced length, exactly what the
// page cache loses), the directory is reopened, and the recovered state
// is validated against the client-side oracle: it must equal the fold
// of some PREFIX of the committed transactions in acknowledgement
// order. A state explained by no prefix means recovery resurrected,
// lost, or tore a transaction in the middle of the sequence.
//
// (Acknowledgement order and WAL order coincide here because the fuzz
// scheduler is single-threaded: each commit's durability wait returns
// before the next commit starts. The WAL's dependency-ordering argument
// is what makes prefix folding meaningful in the first place.)
func TestFuzzCrashRecoveryPrefix(t *testing.T) {
	histories := 120
	if testing.Short() {
		histories = 30
	}
	if *slowFuzz {
		histories = 3000
	}
	for seed := 1; seed <= histories; seed++ {
		runCrashHistory(t, uint64(seed))
	}
}

func runCrashHistory(t *testing.T, seed uint64) {
	t.Helper()
	dir := t.TempDir()
	ffs := wal.NewFaultFS()
	db, err := pgssi.OpenDir(dir, pgssi.Config{
		WALFS:     ffs,
		FsyncMode: pgssi.FsyncAlways,
	})
	if err != nil {
		t.Fatalf("seed %d: open: %v", seed, err)
	}
	if err := db.CreateTable("t"); err != nil {
		t.Fatalf("seed %d: create table: %v", seed, err)
	}
	// The crash point: after a seeded number of further fsyncs, the disk
	// starts lying. crashRng is separate from the history's rng so the
	// schedule stays identical to the in-memory fuzzer's for this seed.
	// A typical history takes roughly 5–15 fsyncs (table creation, seed
	// rows, each commit, quiescence markers), so this range lands the
	// crash inside the history on most seeds and past it on some —
	// both the truncated and the fully-recovered cases stay covered.
	crashRng := rand.New(rand.NewPCG(seed, 0xc4a5))
	ffs.DropSyncsAfter(crashRng.IntN(14))

	var acked []ackedCommit
	_, cyc := runFuzzHistoryOn(t, seed, pgssi.Serializable, db, &acked)
	if cyc != nil {
		t.Fatalf("seed %d: committed SSI execution has dependency cycle %v", seed, cyc)
	}

	// Quiesce the flusher so Crash races no in-flight write: a waited
	// append drains everything enqueued before it (single flusher, FIFO).
	_ = db.DurableWAL().Append(wal.Record{SafeSnapshot: true}).Wait()
	if err := ffs.Crash(); err != nil {
		t.Fatalf("seed %d: crash: %v", seed, err)
	}
	// The dead process's DB is simply abandoned — no Close, like a kill.

	re, err := pgssi.OpenDir(dir, pgssi.Config{})
	if err != nil {
		t.Fatalf("seed %d: recovery: %v", seed, err)
	}
	defer re.Close()
	recovered := readFuzzState(t, re)

	// Oracle: the recovered state must equal the fold of some prefix of
	// the acknowledged commits. Prefix 0 is the empty database (even the
	// table creation was lost).
	state := map[string]string{}
	if matchesFuzzState(recovered, state) {
		return
	}
	for i, c := range acked {
		for k, v := range c.writes {
			state[k] = v
		}
		if matchesFuzzState(recovered, state) {
			t.Logf("seed %d: recovered prefix of %d/%d commits", seed, i+1, len(acked))
			return
		}
	}
	t.Fatalf("seed %d: recovered state %v matches no prefix of the %d acknowledged commits %v",
		seed, recovered, len(acked), ackedSummary(acked))
}

// TestFuzzCrashRecoveryCheckpointTorn drives the crash point INTO the
// checkpoint itself: each seeded history runs to completion on an
// honest disk (every acknowledged commit is truly durable), then the
// disk starts lying partway into the checkpoint — after a seeded number
// of fsyncs, landing the "power loss" before the checkpoint file is
// durable, between it and the manifest, or during segment GC. Whatever
// the stage, reopening must recover EXACTLY the full fold of the
// acknowledged commits: a checkpoint may be lost wholesale (it was
// never acknowledged), but it must never take a durable commit with it
// — GC'd segments whose removal never hit the platter must come back.
func TestFuzzCrashRecoveryCheckpointTorn(t *testing.T) {
	histories := 60
	if testing.Short() {
		histories = 15
	}
	if *slowFuzz {
		histories = 1500
	}
	for seed := 1; seed <= histories; seed++ {
		runCheckpointCrashHistory(t, uint64(seed))
	}
}

func runCheckpointCrashHistory(t *testing.T, seed uint64) {
	t.Helper()
	dir := t.TempDir()
	ffs := wal.NewFaultFS()
	db, err := pgssi.OpenDir(dir, pgssi.Config{
		WALFS:          ffs,
		FsyncMode:      pgssi.FsyncAlways,
		WALSegmentSize: 512, // several rotations per history: the GC set is non-empty
	})
	if err != nil {
		t.Fatalf("seed %d: open: %v", seed, err)
	}
	if err := db.CreateTable("t"); err != nil {
		t.Fatalf("seed %d: create table: %v", seed, err)
	}
	var acked []ackedCommit
	_, cyc := runFuzzHistoryOn(t, seed, pgssi.Serializable, db, &acked)
	if cyc != nil {
		t.Fatalf("seed %d: committed SSI execution has dependency cycle %v", seed, cyc)
	}

	// Everything acknowledged so far is durable. Now the disk lies: the
	// next 0..6 fsyncs succeed, every later one is silently dropped —
	// WriteCheckpoint takes roughly that many (checkpoint file, its dir
	// entry, the barrier, the manifest, the GC dir sync), so the crash
	// point sweeps the whole checkpoint protocol across seeds.
	crashRng := rand.New(rand.NewPCG(seed, 0x5eed))
	ffs.DropSyncsAfter(crashRng.IntN(7))
	if _, err := db.Checkpoint(); err != nil && db.CurrentSeq() > 0 {
		t.Fatalf("seed %d: checkpoint: %v", seed, err)
	}
	if err := ffs.Crash(); err != nil {
		t.Fatalf("seed %d: crash: %v", seed, err)
	}
	// The dead process's DB is abandoned — no Close, like a kill.

	re, err := pgssi.OpenDir(dir, pgssi.Config{})
	if err != nil {
		t.Fatalf("seed %d: recovery: %v", seed, err)
	}
	defer re.Close()
	recovered := readFuzzState(t, re)

	// Unlike the lying-mid-history fuzzer, every commit here was durably
	// acknowledged before the disk started lying, so the oracle is the
	// FULL fold, not just some prefix.
	state := map[string]string{}
	for _, c := range acked {
		for k, v := range c.writes {
			state[k] = v
		}
	}
	if !matchesFuzzState(recovered, state) {
		t.Fatalf("seed %d: torn checkpoint lost durable commits: recovered %v, want fold of all %d acked commits %v",
			seed, recovered, len(acked), ackedSummary(acked))
	}
}

// readFuzzState reads every fuzz key from the recovered database; a
// missing table reads as the empty state.
func readFuzzState(t *testing.T, db *pgssi.DB) map[string]string {
	t.Helper()
	state := make(map[string]string)
	tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead, ReadOnly: true})
	if err != nil {
		t.Fatalf("begin on recovered db: %v", err)
	}
	defer tx.Rollback()
	for _, k := range fuzzKeys {
		v, err := tx.Get("t", k)
		switch {
		case err == nil:
			state[k] = string(v)
		case errors.Is(err, pgssi.ErrNotFound) || errors.Is(err, pgssi.ErrNoTable):
			// absent
		default:
			t.Fatalf("get %q on recovered db: %v", k, err)
		}
	}
	return state
}

func matchesFuzzState(got, want map[string]string) bool {
	if len(got) != len(want) {
		return false
	}
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	return true
}

func ackedSummary(acked []ackedCommit) []string {
	out := make([]string, 0, len(acked))
	for _, c := range acked {
		keys := make([]string, 0, len(c.writes))
		for k := range c.writes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out = append(out, fmt.Sprintf("t%d%v", c.id, keys))
	}
	return out
}
