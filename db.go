// Package pgssi is a multiversion transactional storage engine with a
// true SERIALIZABLE isolation level implemented via Serializable Snapshot
// Isolation, reproducing "Serializable Snapshot Isolation in PostgreSQL"
// (Ports & Grittner, VLDB 2012).
//
// The engine provides four isolation levels mirroring the paper's
// landscape: ReadCommitted, RepeatableRead (plain snapshot isolation,
// PostgreSQL's pre-9.1 "SERIALIZABLE"), Serializable (SSI), and
// SerializableS2PL (the strict two-phase locking baseline of §8).
//
// A quick taste:
//
//	db := pgssi.Open(pgssi.Config{})
//	db.CreateTable("doctors")
//	tx, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
//	v, err := tx.Get("doctors", "alice")
//	...
//	err = tx.Commit() // may return a serialization failure: retry
//
// Transactions aborted with a serialization failure
// (IsSerializationFailure(err)) should simply be retried; see RunTx.
//
// Besides the error-based Tx API above, the engine exposes a
// transport-agnostic session layer: DB.NewSession returns a Session, a
// handle-based facade (begin/get/scan/put/delete/commit/rollback by
// transaction handle) that reports outcomes as typed Status codes
// instead of Go errors. The session layer is what a network front-end
// serves — cmd/pgssid speaks it over TCP using the length-prefixed
// binary protocol of internal/wire (see docs/protocol.md), and
// internal/wire.Client is a remote Session with the same method set —
// and the open-loop load generator (internal/workload, cmd/pgload)
// drives either implementation interchangeably.
//
// A DB that is no longer needed should be shut down with Close, which
// quiesces the background epoch reclaimer and rejects new transactions.
package pgssi

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"pgssi/internal/btree"
	"pgssi/internal/core"
	"pgssi/internal/mvcc"
	"pgssi/internal/s2pl"
	"pgssi/internal/storage"
	"pgssi/internal/waitgraph"
	"pgssi/internal/wal"
)

// IsolationLevel selects a transaction's concurrency control regime.
type IsolationLevel int

// Isolation levels.
const (
	// Serializable is SSI: snapshot isolation plus runtime detection
	// of dangerous structures (the paper's contribution). The default.
	Serializable IsolationLevel = iota
	// RepeatableRead is plain snapshot isolation — what PostgreSQL
	// called SERIALIZABLE before 9.1.
	RepeatableRead
	// ReadCommitted takes a fresh snapshot before every statement.
	ReadCommitted
	// SerializableS2PL provides serializability with strict two-phase
	// locking, the comparison baseline of §8.
	SerializableS2PL
)

// String implements fmt.Stringer.
func (l IsolationLevel) String() string {
	switch l {
	case Serializable:
		return "serializable"
	case RepeatableRead:
		return "repeatable read"
	case ReadCommitted:
		return "read committed"
	case SerializableS2PL:
		return "serializable (2PL)"
	default:
		return fmt.Sprintf("IsolationLevel(%d)", int(l))
	}
}

// TxOptions configure Begin.
type TxOptions struct {
	Isolation IsolationLevel
	// ReadOnly declares the transaction READ ONLY. Serializable
	// read-only transactions benefit from the §4 optimizations.
	ReadOnly bool
	// Deferrable, with ReadOnly and Serializable, makes Begin block
	// until a safe snapshot is available (§4.3); the transaction then
	// runs entirely free of SSI overhead and cannot abort.
	Deferrable bool
	// MaxAttempts bounds RunTx's serialization-failure retry loop
	// (0 = DefaultMaxAttempts). Ignored by Begin.
	MaxAttempts int
	// RetryBackoff is the base of RunTx's jittered exponential backoff
	// between retries (0 = DefaultRetryBackoff, negative = no backoff).
	// Ignored by Begin.
	RetryBackoff time.Duration
}

// Config configures a DB. The zero value is a sensible in-memory
// configuration.
type Config struct {
	// IODelay, if nonzero, simulates a storage device: each heap page
	// access that misses the simulated buffer cache sleeps this long.
	// Together with CacheMissRatio it reproduces the paper's
	// disk-bound benchmark configuration (Figure 5b).
	IODelay time.Duration
	// CacheMissRatio is the probability in [0,1] that a page access
	// pays IODelay.
	CacheMissRatio float64

	// MaxPredicateLocks bounds the SIREAD lock table; beyond it, locks
	// are promoted to relation granularity (graceful degradation, §6).
	MaxPredicateLocks int
	// MaxCommittedXacts bounds fully-tracked committed transactions;
	// beyond it the oldest is summarized (§6.2).
	MaxCommittedXacts int
	// PromoteTupleToPage and PromotePageToRel are the per-transaction
	// granularity-promotion thresholds (§5.2.1).
	PromoteTupleToPage int
	PromotePageToRel   int
	// Partitions is the number of hash partitions for the SIREAD lock
	// table (PostgreSQL's NUM_PREDICATELOCK_PARTITIONS analogue).
	// Rounded up to a power of two; defaults to 16. Set to 1 to
	// reproduce a single-mutex lock table for comparison.
	Partitions int

	// DisableCommitOrderingOpt turns off the commit-ordering
	// optimization of §3.3.1 (ablation: original SSI abort rule).
	DisableCommitOrderingOpt bool
	// DisableReadOnlyOpt turns off the §4 read-only optimizations
	// (the "SSI no r/o opt" series in Figures 4 and 5).
	DisableReadOnlyOpt bool

	// DisableLifecycleFencing reopens the transaction-lifecycle windows
	// that the fine-grained Begin/Commit locking keeps closed: Begin's
	// snapshot-ordering step, the read-only safety registration, and
	// the pre-commit check's atomicity with the commit-sequence
	// assignment. Test-only ablation: with it set, a commit racing a
	// lifecycle window can be missed by the safe-snapshot bookkeeping
	// or the dangerous-structure check, and the epoch reclaimer can
	// prematurely drop committed SIREAD locks. Never set it in
	// production.
	DisableLifecycleFencing bool
	// OnBegin, if non-nil, is invoked during every Serializable
	// transaction Begin's snapshot-ordering step with the new
	// transaction's id (other isolation levels never enter the SSI
	// lifecycle). Test-only interleaving hook used by the deterministic
	// lifecycle harness.
	OnBegin func(xid uint64)
	// OnPreCommit, if non-nil, is invoked between a Serializable
	// transaction's passing pre-commit check and its commit-sequence
	// assignment, inside the commit critical section (outside it under
	// DisableLifecycleFencing). Test-only interleaving hook.
	OnPreCommit func(xid uint64)

	// DisableCSNSnapshots selects the legacy xmin/xmax/in-progress-set
	// MVCC snapshot representation instead of the default CSN scheme:
	// every TakeSnapshot copies the active-transaction set under a
	// global mutex that Begin/Commit/Abort serialize on, where a CSN
	// snapshot is a single atomic counter read (see internal/mvcc).
	// Ablation knob for A/B benchmarking; semantics are identical.
	DisableCSNSnapshots bool
	// DisableCSNFencing reopens the window between a commit's CSN
	// assignment and its commit-log publication, which the CSN scheme
	// normally fences into one atomic step (see internal/mvcc).
	// Test-only ablation: with it set, a snapshot taken inside the
	// window can see that commit partially (torn snapshot). Never set
	// it in production.
	DisableCSNFencing bool
	// OnCSNPublish, if non-nil, is invoked during every commit at the
	// CSN assignment→publication window (CSN snapshot mode only; never
	// called with DisableCSNSnapshots). Fenced, the window is
	// degenerate: the hook runs immediately before the atomic
	// assignment+publication step and seq is 0 — no CSN exists yet.
	// With DisableCSNFencing it runs inside the reopened window and seq
	// is the assigned CSN. Test-only interleaving hook used by the
	// CSN-window harness.
	OnCSNPublish func(xid, seq uint64)
	// CommitLogPartitions is the number of hash shards in the MVCC
	// commit log. Rounded up to a power of two; defaults to 64.
	CommitLogPartitions int

	// DisableScanBatch routes Tx.Scan and Tx.ScanIndex through the
	// legacy per-row read path — one page-latch acquisition and one
	// lock-manager call per row — instead of the page-grained batch
	// path (storage.ReadPageBatch + core.AcquireTupleLockBatch), which
	// latches each heap page once and registers the page's SIREAD locks
	// in one batch. Semantics are identical; this is the A/B ablation
	// knob for the scan benchmarks and the fuzzer's batching axis.
	DisableScanBatch bool

	// LatchPartitions is the number of shards in each table's per-page
	// read latch table (the engine's analogue of PostgreSQL's buffer
	// content lock for SSI; see internal/storage/latch.go). Rounded up
	// to a power of two; defaults to 64.
	LatchPartitions int
	// DisableReadLatch disables the per-page read latch, reopening the
	// detection window between a read's MVCC visibility check and its
	// SIREAD-lock insertion. Test-only ablation: with it set, a writer
	// racing a reader can miss an rw-antidependency and admit a
	// non-serializable execution. Never set it in production.
	DisableReadLatch bool
	// OnRead, if non-nil, is invoked on every heap read between the
	// MVCC visibility check and SIREAD registration. Test-only
	// interleaving hook used by the deterministic race harness; with
	// the latch enabled it runs while the page latch is held.
	OnRead func(table, key string)

	// DisableDurableWAL makes OpenDir behave like Open: no segment
	// files, no recovery, no fsync on commit. Ablation knob for A/B
	// against the durable commit path; the in-memory log-shipping WAL
	// (AttachWAL) is unaffected either way.
	DisableDurableWAL bool
	// FsyncMode selects how commit acknowledgement relates to fsync
	// when the durable WAL is open: FsyncBatch (default) group-commits
	// behind a short gather window, FsyncAlways syncs every flush
	// batch, FsyncOff never waits for the disk (contention benchmarks).
	FsyncMode FsyncMode
	// WALSegmentSize is the durable WAL's segment rotation threshold
	// (default wal.DefaultSegmentSize).
	WALSegmentSize int64
	// WALGroupWindow is the FsyncBatch gather delay (default
	// wal.DefaultGroupWindow).
	WALGroupWindow time.Duration
	// WALFS overrides the durable WAL's filesystem; nil means the OS
	// filesystem. Test-only: the fault-injection suites inject a
	// wal.FaultFS here.
	WALFS wal.FS
	// CheckpointEvery, if positive, checkpoints the durable WAL (and
	// GCs fully-covered segments) roughly every CheckpointEvery bytes of
	// log growth, at the next safe-snapshot point after the threshold is
	// crossed. Zero means checkpoints happen only via DB.Checkpoint.
	CheckpointEvery int64
}

// FsyncMode re-exports wal.FsyncMode for Config.
type FsyncMode = wal.FsyncMode

// Fsync modes (see wal.FsyncMode).
const (
	FsyncBatch  = wal.FsyncBatch
	FsyncAlways = wal.FsyncAlways
	FsyncOff    = wal.FsyncOff
)

func (c Config) storageConfig() storage.Config {
	return storage.Config{
		IODelay:          c.IODelay,
		CacheMissRatio:   c.CacheMissRatio,
		LatchPartitions:  c.LatchPartitions,
		DisableReadLatch: c.DisableReadLatch,
		Hooks:            storage.Hooks{OnRead: c.OnRead},
	}
}

func (c Config) mvccConfig() mvcc.Config {
	cfg := mvcc.Config{
		DisableCSNSnapshots: c.DisableCSNSnapshots,
		DisableCSNFencing:   c.DisableCSNFencing,
		LogPartitions:       c.CommitLogPartitions,
	}
	if h := c.OnCSNPublish; h != nil {
		cfg.OnCSNPublish = func(xid mvcc.TxID, seq mvcc.SeqNo) { h(uint64(xid), uint64(seq)) }
	}
	return cfg
}

func (c Config) ssiConfig() core.Config {
	cfg := core.Config{
		MaxPredicateLocks:        c.MaxPredicateLocks,
		MaxCommittedXacts:        c.MaxCommittedXacts,
		PromoteTupleToPage:       c.PromoteTupleToPage,
		PromotePageToRel:         c.PromotePageToRel,
		Partitions:               c.Partitions,
		DisableCommitOrderingOpt: c.DisableCommitOrderingOpt,
		DisableReadOnlyOpt:       c.DisableReadOnlyOpt,
		DisableLifecycleFencing:  c.DisableLifecycleFencing,
	}
	if h := c.OnBegin; h != nil {
		cfg.OnBegin = func(xid mvcc.TxID) { h(uint64(xid)) }
	}
	if h := c.OnPreCommit; h != nil {
		cfg.OnPreCommit = func(xid mvcc.TxID) { h(uint64(xid)) }
	}
	return cfg
}

// IndexKeyFunc derives a secondary-index key from a row; ok=false skips
// indexing the row (partial index).
type IndexKeyFunc func(key string, value []byte) (indexKey string, ok bool)

type secondaryIndex struct {
	name string
	tree *btree.Tree
	fn   IndexKeyFunc
}

type tableInfo struct {
	name string
	heap *storage.Table
	// pk indexes every key ever inserted (dead entries are filtered by
	// heap visibility and removed by vacuum), with stable leaf pages
	// for SIREAD gap locking.
	pk *btree.Tree
	// pkName is the lock-target relation name of the primary index.
	pkName string
	mu     sync.RWMutex //ssi:lock level=25 name=pgssi.table
	second map[string]*secondaryIndex
}

// DB is the database engine.
type DB struct {
	cfg    Config
	closed atomic.Bool
	mvcc   *mvcc.Manager
	ssi    *core.Manager
	s2pl   *s2pl.Manager
	wg     *waitgraph.Graph

	mu     sync.RWMutex //ssi:lock level=20 name=pgssi.tables
	tables map[string]*tableInfo

	prepMu   sync.Mutex //ssi:lock level=30 name=pgssi.prepared
	prepared map[string]*Tx

	// walMu orders WAL sink appends with commit publication: a
	// committer with writes holds it across mvcc.Commit AND the append
	// (see publishCommit), so records land in the log in commit-sequence
	// order and safe-snapshot markers are only emitted after every
	// commit record they cover. Lock order: ssi locks → walMu → mvcc
	// shard locks → wal log locks; nothing takes walMu while holding a
	// lock later in that chain.
	walMu sync.Mutex //ssi:lock level=40 name=pgssi.wal
	// walLog is the attached in-memory log-shipping sink (AttachWAL),
	// nil when detached. Atomic so the no-sink fast paths (aborts,
	// no-write commits) can check it without taking walMu; it is only
	// written under walMu.
	walLog atomic.Pointer[wal.Log]
	// markerSeq is the highest commit sequence a safe-snapshot marker
	// has been emitted at. Only written by maybeEmitMarkerLocked under
	// walMu (the unlocked loads are pre-checks), which keeps marker
	// sequences in the log monotone.
	markerSeq atomic.Uint64

	// durable is the on-disk WAL, non-nil only for OpenDir without
	// DisableDurableWAL; walPending carries each committing
	// transaction's pre-encoded record from walPrepare (on the
	// committer's goroutine, outside all locks) to walCommitHook
	// (inside the MVCC commit publication critical section), keyed by
	// xid. See recovery.go.
	durable    *wal.DurableLog
	walPending sync.Map

	// recoveredRecords is the OpenDir recovery count: checkpoint records
	// plus the replayed log suffix. Written once before the DB accepts
	// traffic.
	recoveredRecords int

	// Checkpoint trigger state (see checkpoint.go). ckptMu guards the
	// waiter list, the single-flight flag, and the last-checkpoint
	// watermarks. Lock order: walMu → ckptMu → wal log locks (the
	// trigger runs inside the marker path and reads durable.Stats under
	// it); it is never held across checkpoint I/O — the checkpoint
	// itself is written by a background goroutine (runCheckpoint).
	ckptMu        sync.Mutex //ssi:lock level=45 name=pgssi.ckpt
	ckptWaiters   []chan ckptResult
	ckptRunning   bool
	ckptLastSeq   uint64
	ckptLastBytes int64
}

// ckptResult resolves a DB.Checkpoint waiter.
type ckptResult struct {
	info wal.CheckpointInfo
	err  error
}

// Open creates an empty database.
func Open(cfg Config) *DB {
	m := mvcc.New(cfg.mvccConfig())
	return &DB{
		cfg:      cfg,
		mvcc:     m,
		ssi:      core.NewManager(m, cfg.ssiConfig()),
		s2pl:     s2pl.NewManager(),
		wg:       waitgraph.New(),
		tables:   make(map[string]*tableInfo),
		prepared: make(map[string]*Tx),
	}
}

// CreateTable creates a table with a primary B+-tree index over its keys.
// Creating an existing table is an error. With the durable WAL open, the
// creation is logged and made durable before CreateTable returns, so a
// restart rebuilds the schema before replaying row changes (secondary
// indexes are not logged; recreate them after OpenDir).
func (db *DB) CreateTable(name string) error {
	db.mu.Lock()
	if _, ok := db.tables[name]; ok {
		db.mu.Unlock()
		return fmt.Errorf("pgssi: table %q already exists", name)
	}
	db.tables[name] = &tableInfo{
		name:   name,
		heap:   storage.NewTable(name, db.cfg.storageConfig()),
		pk:     btree.New(),
		pkName: "i." + name + ".pk",
		second: make(map[string]*secondaryIndex),
	}
	db.mu.Unlock()
	if db.durable != nil {
		if err := db.durable.Append(wal.Record{Seq: db.mvcc.CurrentSeq(), CreateTable: name}).Wait(); err != nil {
			// The creation never became durable (closed or poisoned
			// log): undo the in-memory entry so the failure is not
			// followed by a lying "already exists" on retry. A
			// concurrent writer that raced into the table loses it too
			// — its commit fails on the same poisoned log.
			db.mu.Lock()
			delete(db.tables, name)
			db.mu.Unlock()
			return fmt.Errorf("pgssi: create table %q: %w", name, err)
		}
	}
	return nil
}

// CreateIndex adds a secondary index named idx on table, keyed by fn.
// Entries are stored as fn(row) + "\x00" + primary key, so non-unique
// index keys are supported. The table must currently be empty of
// committed rows (create indexes before loading, as the benchmarks do).
func (db *DB) CreateIndex(table, idx string, fn IndexKeyFunc) error {
	ti, err := db.table(table)
	if err != nil {
		return err
	}
	ti.mu.Lock()
	defer ti.mu.Unlock()
	if _, ok := ti.second[idx]; ok {
		return fmt.Errorf("pgssi: index %q already exists on %q", idx, table)
	}
	ti.second[idx] = &secondaryIndex{name: "i." + table + "." + idx, tree: btree.New(), fn: fn}
	return nil
}

func (db *DB) table(name string) (*tableInfo, error) {
	db.mu.RLock()
	ti, ok := db.tables[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return ti, nil
}

func (ti *tableInfo) index(name string) (*secondaryIndex, error) {
	ti.mu.RLock()
	si, ok := ti.second[name]
	ti.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q on %q", ErrNoIndex, name, ti.name)
	}
	return si, nil
}

// secondaries returns the table's secondary indexes.
func (ti *tableInfo) secondaries() []*secondaryIndex {
	ti.mu.RLock()
	defer ti.mu.RUnlock()
	out := make([]*secondaryIndex, 0, len(ti.second))
	for _, si := range ti.second {
		out = append(out, si)
	}
	return out
}

// SSIStats returns the SSI manager's counters.
func (db *DB) SSIStats() core.Stats { return db.ssi.Stats() }

// S2PLStats returns the heavyweight lock manager's counters.
func (db *DB) S2PLStats() s2pl.Stats { return db.s2pl.Stats() }

// ActiveTransactions returns the number of in-progress transactions.
func (db *DB) ActiveTransactions() int { return db.mvcc.ActiveCount() }

// CommitLogSize returns the number of entries currently retained in the
// MVCC commit log (observability: bounded by the epoch reclaimer's
// background truncation and, for non-serializable workloads, by Vacuum).
func (db *DB) CommitLogSize() int { return db.mvcc.LogSize() }

// AttachWAL directs commit records (and safe-snapshot markers) to log,
// enabling log-shipping replication (§7.2).
func (db *DB) AttachWAL(log *wal.Log) {
	db.walMu.Lock()
	defer db.walMu.Unlock()
	db.walLog.Store(log)
}

// WALStream returns the stream replicas subscribe to: the durable log
// when one is open, else an attached in-memory log, else nil (this
// database emits no WAL and cannot feed a replica). The server's
// replication endpoint serves exactly this stream.
func (db *DB) WALStream() wal.Stream {
	if db.durable != nil {
		return db.durable
	}
	if log := db.walLog.Load(); log != nil {
		return log
	}
	return nil
}

// CurrentSeq returns the newest assigned commit sequence number: the
// primary's position in its own history, against which a router
// measures replica lag.
func (db *DB) CurrentSeq() uint64 { return uint64(db.mvcc.CurrentSeq()) }

// Retry-loop defaults for RunTx (see TxOptions.MaxAttempts and
// TxOptions.RetryBackoff).
const (
	// DefaultMaxAttempts is the RunTx retry bound when
	// TxOptions.MaxAttempts is zero. Generous — under SSI's safe-retry
	// rules an immediate retry usually succeeds — but finite, so a
	// pathological conflict cycle surfaces as ErrRetriesExhausted
	// instead of spinning unbounded.
	DefaultMaxAttempts = 64
	// DefaultRetryBackoff is the base of the jittered exponential
	// backoff between retries when TxOptions.RetryBackoff is zero.
	DefaultRetryBackoff = 50 * time.Microsecond
	// maxRetryBackoff caps the exponential backoff.
	maxRetryBackoff = 10 * time.Millisecond
)

// RunTx runs fn in a transaction with the given options, retrying on
// serialization failures — the "middleware layer that automatically
// retries transactions" the paper assumes (§3). fn may be invoked
// multiple times; it must not keep side effects across attempts. Any
// other error rolls back and is returned.
//
// The retry loop is bounded (TxOptions.MaxAttempts, default
// DefaultMaxAttempts) with jittered exponential backoff between
// attempts (TxOptions.RetryBackoff); on exhaustion it returns an error
// matching both ErrRetriesExhausted and ErrSerialization. Use
// RunTxAttempts to additionally observe how many attempts were made.
func (db *DB) RunTx(opts TxOptions, fn func(tx *Tx) error) error {
	_, err := db.RunTxAttempts(opts, fn)
	return err
}

// RunTxAttempts is RunTx, additionally reporting the number of attempts
// made (≥ 1 unless Begin itself failed).
func (db *DB) RunTxAttempts(opts TxOptions, fn func(tx *Tx) error) (attempts int, err error) {
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	backoff := opts.RetryBackoff
	if backoff == 0 {
		backoff = DefaultRetryBackoff
	}
	for attempts = 1; ; attempts++ {
		tx, berr := db.Begin(opts)
		if berr != nil {
			return attempts - 1, berr
		}
		err = fn(tx)
		if err == nil {
			err = tx.Commit()
			if err == nil {
				return attempts, nil
			}
		} else {
			tx.Rollback()
		}
		if !IsSerializationFailure(err) {
			return attempts, err
		}
		if attempts >= maxAttempts {
			return attempts, &retriesExhaustedError{attempts: attempts, last: err}
		}
		if backoff > 0 {
			// Exponential backoff with ±50% jitter, capped: spreads a
			// conflicting herd apart without parking anyone for long.
			d := backoff << uint(min(attempts-1, 20))
			if d > maxRetryBackoff {
				d = maxRetryBackoff
			}
			time.Sleep(d/2 + rand.N(d))
		}
	}
}

// Close shuts the database down: new transactions are rejected with
// ErrClosed, the SSI epoch reclaimer is stopped (after a final
// synchronous reclamation pass, so a quiesced DB retains no background
// goroutine), and the WAL attachment is flushed and detached. In-flight
// transactions may still commit or roll back, but their deferred
// cleanup is not reclaimed; drain them first (as cmd/pgssid's graceful
// shutdown does). Close is idempotent.
func (db *DB) Close() error {
	if !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Stop the reclaimer: waits for a running background pass to finish
	// and prevents new spawns, then runs one final synchronous pass so
	// everything already reclaimable is dropped.
	db.ssi.Close()
	// Flush the WAL sinks: emit a final safe-snapshot marker if the
	// system is quiescent and one is owed (a replica consuming the log
	// can then serve serializable reads up to the shutdown point, §7.2)
	// and detach the in-memory attachment.
	db.walMu.Lock()
	db.maybeEmitMarkerLocked()
	db.walLog.Store(nil)
	db.walMu.Unlock()
	// Flush and close the durable WAL: the final flush syncs even in
	// FsyncOff mode, so a cleanly closed database is durable regardless
	// of fsync policy. Commits still in flight past this point fail
	// their durability wait with wal.ErrClosed. Parked DB.Checkpoint
	// waiters are failed too — a closed database will never reach
	// another quiescent instant to serve them (an in-flight checkpoint
	// writer resolves against the closing log on its own).
	if db.durable != nil {
		err := db.durable.Close()
		db.failCheckpointWaiters(ErrClosed)
		return err
	}
	return nil
}

// Vacuum removes dead tuple versions no longer visible to any possible
// snapshot, prunes fully-dead keys from primary indexes, and drops
// aborted commit-log tombstones the sweep has orphaned.
//
// The horizon snapshot is pinned by a throwaway transaction for the
// duration of the sweep: a standalone snapshot would otherwise race the
// epoch reclaimer's commit-log truncation (internal/mvcc AutoTruncate),
// which is only safe with respect to snapshots held by active
// transactions.
func (db *DB) Vacuum() int {
	pin := db.mvcc.Begin()
	defer db.mvcc.Abort(pin)
	horizon := db.mvcc.TakeSnapshot()
	// Aborted xids below the oldest transaction active now cannot gain
	// new heap references; after the sweep prunes every chain, their
	// commit-log tombstones are unreachable and can be dropped.
	abortedFloor := db.mvcc.OldestActiveXID()
	removed := 0
	db.mu.RLock()
	tables := make([]*tableInfo, 0, len(db.tables))
	for _, ti := range db.tables {
		tables = append(tables, ti)
	}
	db.mu.RUnlock()
	for _, ti := range tables {
		removed += ti.heap.Vacuum(horizon, db.mvcc)
	}
	db.mvcc.DropAbortedBelow(abortedFloor)
	// Advance the commit-log truncation floor here too: the epoch
	// reclaimer only runs for serializable workloads, so Vacuum is the
	// level-independent trigger that keeps the log bounded for
	// RepeatableRead/ReadCommitted/S2PL-only processes.
	db.mvcc.AutoTruncate()
	return removed
}
