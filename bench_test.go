package pgssi_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"pgssi"
	"pgssi/internal/workload"
)

// This file regenerates every figure and table of the paper's evaluation
// (§8) as Go benchmarks. Each sub-benchmark is one point of a figure:
// one (workload parameter, concurrency control) pair, reporting committed
// transactions per second and the serialization failure percentage via
// b.ReportMetric. EXPERIMENTS.md records a full run and compares the
// shapes against the paper.
//
// Durations are deliberately short so `go test -bench=.` completes in
// minutes; set PGSSI_BENCH_MS (per-point milliseconds) for longer, less
// noisy runs.

func benchDuration() time.Duration {
	if ms := os.Getenv("PGSSI_BENCH_MS"); ms != "" {
		var n int
		if _, err := fmt.Sscanf(ms, "%d", &n); err == nil && n > 0 {
			return time.Duration(n) * time.Millisecond
		}
	}
	return 400 * time.Millisecond
}

var benchLevels = []struct {
	name  string
	level pgssi.IsolationLevel
	cfg   pgssi.Config
}{
	{"SI", pgssi.RepeatableRead, pgssi.Config{}},
	{"SSI", pgssi.Serializable, pgssi.Config{}},
	{"SSI-noROopt", pgssi.Serializable, pgssi.Config{DisableReadOnlyOpt: true}},
	{"S2PL", pgssi.SerializableS2PL, pgssi.Config{}},
}

func reportResult(b *testing.B, res workload.Result) {
	b.ReportMetric(res.Throughput, "txn/s")
	b.ReportMetric(100*res.FailureRate, "fail%")
	if res.Errors > 0 {
		b.Fatalf("%d hard errors", res.Errors)
	}
}

// BenchmarkFigure4 is the SIBENCH sweep of §8.1: transaction throughput
// vs table size for SI, SSI, SSI without the read-only optimizations,
// and S2PL. Normalize each size's series to its SI point to recover the
// figure's y-axis.
func BenchmarkFigure4(b *testing.B) {
	for _, rows := range []int{10, 100, 1000, 10000} {
		for _, lv := range benchLevels {
			b.Run(fmt.Sprintf("rows=%d/%s", rows, lv.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					si := workload.SIBench{Rows: rows}
					res, err := si.Run(lv.cfg, workload.RunOptions{
						Level: lv.level, Workers: 4, Duration: benchDuration(), Seed: 4,
					})
					if err != nil {
						b.Fatal(err)
					}
					reportResult(b, res)
				}
			})
		}
	}
}

// benchmarkFigure5 runs the DBT-2++ read-only-fraction sweep of §8.2
// under the given storage configuration.
func benchmarkFigure5(b *testing.B, base pgssi.Config, warehouses, workers int) {
	for _, ro := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		for _, lv := range benchLevels {
			cfg := base
			cfg.DisableReadOnlyOpt = lv.cfg.DisableReadOnlyOpt
			b.Run(fmt.Sprintf("ro=%.0f%%/%s", ro*100, lv.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					db := pgssi.Open(cfg)
					w := workload.DefaultDBT2(warehouses)
					if err := w.Setup(db); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					res := workload.RunClosedLoop(db, w.Mix(ro), workload.RunOptions{
						Level: lv.level, Workers: workers, Duration: benchDuration(), Seed: 5,
					})
					reportResult(b, res)
				}
			})
		}
	}
}

// BenchmarkFigure5a is the in-memory DBT-2++ configuration (paper: 25
// warehouses on tmpfs, 4 threads; scaled here to 4 warehouses).
func BenchmarkFigure5a(b *testing.B) {
	benchmarkFigure5(b, pgssi.Config{}, 4, 4)
}

// BenchmarkFigure5b is the disk-bound DBT-2++ configuration (paper: 150
// warehouses on a RAID array, 36 threads; reproduced with a simulated
// per-page I/O delay and more workers than cores so transactions overlap
// under I/O waits).
func BenchmarkFigure5b(b *testing.B) {
	benchmarkFigure5(b, pgssi.Config{IODelay: 100 * time.Microsecond, CacheMissRatio: 0.3}, 8, 16)
}

// BenchmarkFigure6 is the RUBiS bidding-mix table of §8.3: absolute
// throughput and serialization failure rate for SI, SSI, and S2PL.
func BenchmarkFigure6(b *testing.B) {
	for _, lv := range benchLevels {
		if lv.name == "SSI-noROopt" {
			continue // Figure 6 has three rows
		}
		b.Run(lv.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := pgssi.Open(lv.cfg)
				r := &workload.RUBiS{Users: 500, Items: 1000, Categories: 20}
				if err := r.Setup(db); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res := workload.RunClosedLoop(db, r.Mix(), workload.RunOptions{
					Level: lv.level, Workers: 4, Duration: benchDuration(), Seed: 6,
				})
				reportResult(b, res)
			}
		})
	}
}

// BenchmarkDeferrable is the §8.4 experiment: latency to acquire a safe
// snapshot for a SERIALIZABLE READ ONLY DEFERRABLE transaction while the
// DBT-2++ mix (standard 8% read-only) runs.
func BenchmarkDeferrable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := pgssi.Open(pgssi.Config{})
		w := workload.DefaultDBT2(2)
		if err := w.Setup(db); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, bg := workload.MeasureDeferrable(db, w.Mix(0.08), workload.RunOptions{
			Level: pgssi.Serializable, Workers: 8, Duration: 4 * benchDuration(), Seed: 8,
		}, 20*time.Millisecond, nil)
		if bg.Errors > 0 {
			b.Fatalf("%d hard errors", bg.Errors)
		}
		b.ReportMetric(float64(res.Median.Microseconds())/1000, "median-ms")
		b.ReportMetric(float64(res.P90.Microseconds())/1000, "p90-ms")
		b.ReportMetric(float64(res.Max.Microseconds())/1000, "max-ms")
		b.ReportMetric(float64(len(res.Samples)), "samples")
	}
}

// BenchmarkAblationCommitOrdering quantifies the §3.3.1 commit-ordering
// optimization: SIBENCH at a contended size, with and without it, the
// difference showing up as false-positive aborts.
func BenchmarkAblationCommitOrdering(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  pgssi.Config
	}{
		{"with-commit-ordering", pgssi.Config{}},
		{"basic-SSI", pgssi.Config{DisableCommitOrderingOpt: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				si := workload.SIBench{Rows: 50}
				res, err := si.Run(mode.cfg, workload.RunOptions{
					Level: pgssi.Serializable, Workers: 8, Duration: benchDuration(), Seed: 10,
				})
				if err != nil {
					b.Fatal(err)
				}
				reportResult(b, res)
			}
		})
	}
}

// BenchmarkAblationSummarization sweeps the committed-transaction budget
// (§6.2): smaller budgets force summarization, trading memory for
// false-positive aborts. The long-running reader prevents cleanup, as in
// the paper's motivating scenario.
func BenchmarkAblationSummarization(b *testing.B) {
	for _, budget := range []int{8, 64, 1 << 14} {
		b.Run(fmt.Sprintf("maxCommitted=%d", budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := pgssi.Config{MaxCommittedXacts: budget}
				db := pgssi.Open(cfg)
				si := workload.SIBench{Rows: 200}
				if err := si.Setup(db); err != nil {
					b.Fatal(err)
				}
				// A long-running reader pins cleanup for the whole
				// measurement interval.
				pin, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := pin.Get("sibench", "k000000"); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res := workload.RunClosedLoop(db, si.Mix(), workload.RunOptions{
					Level: pgssi.Serializable, Workers: 4, Duration: benchDuration(), Seed: 11,
				})
				b.StopTimer()
				pin.Rollback()
				b.StartTimer()
				reportResult(b, res)
				st := db.SSIStats()
				b.ReportMetric(float64(st.Summarized), "summarized")
			}
		})
	}
}

// BenchmarkLockManager measures raw SIREAD lock-path overhead: the cost
// a Serializable point read pays over a snapshot-isolation read.
func BenchmarkLockManager(b *testing.B) {
	for _, lv := range []struct {
		name  string
		level pgssi.IsolationLevel
	}{{"SI-read", pgssi.RepeatableRead}, {"SSI-read", pgssi.Serializable}} {
		b.Run(lv.name, func(b *testing.B) {
			db := pgssi.Open(pgssi.Config{})
			si := workload.SIBench{Rows: 1000}
			if err := si.Setup(db); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, err := db.Begin(pgssi.TxOptions{Isolation: lv.level})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tx.Get("sibench", fmt.Sprintf("k%06d", i%1000)); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLockManagerParallel measures lock-table contention: parallel
// workers each run Serializable transactions of 8 point reads over a
// shared table, with the SIREAD lock table at 1 partition (the old
// single-mutex scheme) versus the partitioned default. The §8 contention
// analysis predicts the single partition serializes every read of every
// worker on one mutex.
//
// The scan shapes drive the same contended table through the range-scan
// read path — a 128-row scan per transaction, page-grained batch versus
// the per-row ablation (Config.DisableScanBatch) — so the lock path's
// O(pages) vs O(rows) behaviour shows up in this benchmark's mutex
// profile next to the point-read shape (profile one shape at a time:
// `-bench 'BenchmarkLockManagerParallel/partitions=16/scan128-batch'`).
func BenchmarkLockManagerParallel(b *testing.B) {
	const readsPerTxn = 8
	for _, parts := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("partitions=%d", parts), func(b *testing.B) {
			db := pgssi.Open(pgssi.Config{Partitions: parts})
			si := workload.SIBench{Rows: 1000}
			if err := si.Setup(db); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
					if err != nil {
						b.Fatal(err)
					}
					for r := 0; r < readsPerTxn; r++ {
						i++
						if _, err := tx.Get("sibench", fmt.Sprintf("k%06d", i%1000)); err != nil {
							b.Fatal(err)
						}
					}
					if err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
		for _, mode := range []struct {
			name   string
			perRow bool
		}{{"batch", false}, {"perrow", true}} {
			b.Run(fmt.Sprintf("partitions=%d/scan128-%s", parts, mode.name), func(b *testing.B) {
				db := pgssi.Open(pgssi.Config{Partitions: parts, DisableScanBatch: mode.perRow})
				si := workload.SIBench{Rows: 1000}
				if err := si.Setup(db); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := 0
					for pb.Next() {
						tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
						if err != nil {
							b.Error(err)
							return
						}
						i++
						lo := fmt.Sprintf("k%06d", (i*128)%872)
						hi := fmt.Sprintf("k%06d", (i*128)%872+128)
						n := 0
						if err := tx.Scan("sibench", lo, hi, func(string, []byte) bool {
							n++
							return true
						}); err != nil {
							b.Error(err)
							return
						}
						if n != 128 {
							b.Errorf("scan saw %d rows, want 128", n)
							return
						}
						if err := tx.Commit(); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkPartitionSweep is the SIBENCH sweep of the lock-table
// partition count: the full update/query mix at a contended size with
// ≥4 workers, 1 partition versus the partitioned default.
func BenchmarkPartitionSweep(b *testing.B) {
	for _, parts := range []int{1, 16} {
		for _, workers := range []int{4, 8} {
			b.Run(fmt.Sprintf("partitions=%d/workers=%d", parts, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					si := workload.SIBench{Rows: 1000}
					res, err := si.Run(pgssi.Config{Partitions: parts}, workload.RunOptions{
						Level: pgssi.Serializable, Workers: workers, Duration: benchDuration(), Seed: 12,
					})
					if err != nil {
						b.Fatal(err)
					}
					reportResult(b, res)
				}
			})
		}
	}
}

// BenchmarkScanParallel measures the serializable scan read path:
// parallel workers each run one whole-table Serializable scan per
// transaction, page-grained batch (the default: one shared page latch +
// one batched lock-manager call per heap page) versus the legacy
// per-row ablation (Config.DisableScanBatch: one latch + one CheckRead
// per row). The rows axis controls how many heap pages a scan crosses
// (64 rows ≈ 1 page, 1000 ≈ 16). The nightly workflow archives this
// benchmark with a mutex profile next to the lock-contention,
// lifecycle, and snapshot artifacts.
func BenchmarkScanParallel(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  pgssi.Config
	}{
		{"batch", pgssi.Config{}},
		{"perrow", pgssi.Config{DisableScanBatch: true}},
	} {
		for _, rows := range []int{64, 1000} {
			b.Run(fmt.Sprintf("%s/rows=%d", mode.name, rows), func(b *testing.B) {
				db := pgssi.Open(mode.cfg)
				si := workload.SIBench{Rows: rows}
				if err := si.Setup(db); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
						if err != nil {
							b.Error(err)
							return
						}
						n := 0
						if err := tx.Scan("sibench", "", "", func(string, []byte) bool {
							n++
							return true
						}); err != nil {
							b.Error(err)
							return
						}
						if n != rows {
							b.Errorf("scan saw %d rows, want %d", n, rows)
							return
						}
						if err := tx.Commit(); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkSnapshotParallel measures snapshot-path contention: parallel
// workers run single-read transactions — every transaction pays one
// Begin, one TakeSnapshot, one visibility-checked read, and one Commit —
// while a pool of long-running transactions stays open, so the legacy
// representation pays its O(active) in-progress copy under the global
// MVCC mutex on every snapshot and the CSN representation pays one
// atomic load. The csn/legacy pair is the A/B for the
// DisableCSNSnapshots ablation; the nightly workflow archives this
// benchmark with a mutex profile next to the lock-contention and
// lifecycle ones.
func BenchmarkSnapshotParallel(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  pgssi.Config
	}{
		{"csn", pgssi.Config{}},
		{"legacy", pgssi.Config{DisableCSNSnapshots: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db := pgssi.Open(mode.cfg)
			si := workload.SIBench{Rows: 1000}
			if err := si.Setup(db); err != nil {
				b.Fatal(err)
			}
			// A standing pool of open transactions: the active set the
			// legacy snapshot copies on every statement.
			const pinned = 64
			pins := make([]*pgssi.Tx, pinned)
			for i := range pins {
				tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
				if err != nil {
					b.Fatal(err)
				}
				pins[i] = tx
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
					if err != nil {
						b.Error(err)
						return
					}
					i++
					if _, err := tx.Get("sibench", fmt.Sprintf("k%06d", i%1000)); err != nil {
						b.Error(err)
						return
					}
					if err := tx.Commit(); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			for _, tx := range pins {
				tx.Rollback()
			}
		})
	}
}

// BenchmarkLifecycleParallel measures transaction-lifecycle contention:
// parallel workers run begin/commit-only serializable transactions (no
// reads, no writes), so every contended nanosecond is Begin/Commit —
// the residual bottleneck §8's analysis predicts once lock acquisition
// is partitioned. The nightly workflow archives this benchmark with a
// mutex profile next to the lock-contention ones, so lifecycle
// contention is tracked release over release like lock contention is.
func BenchmarkLifecycleParallel(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts pgssi.TxOptions
	}{
		{"rw", pgssi.TxOptions{Isolation: pgssi.Serializable}},
		{"declared-ro", pgssi.TxOptions{Isolation: pgssi.Serializable, ReadOnly: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db := pgssi.Open(pgssi.Config{})
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					tx, err := db.Begin(mode.opts)
					if err != nil {
						b.Error(err)
						return
					}
					if err := tx.Commit(); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
	// Closed-loop variant through the workload harness, with a
	// read-only slice in the mix so fenced and unfenced begins contend
	// with each other the way a real mixed workload makes them.
	b.Run("mix-ro=10%", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := pgssi.Open(pgssi.Config{})
			res := workload.RunClosedLoop(db, workload.LifecycleMix(0.1), workload.RunOptions{
				Level: pgssi.Serializable, Workers: 4, Duration: benchDuration(), Seed: 13,
			})
			reportResult(b, res)
		}
	})
}
