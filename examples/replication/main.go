// Replication: log-shipping replication with safe-snapshot markers
// (§7.2). A master streams commit records to a standby; the standby runs
// serializable read-only transactions only at safe-snapshot points in the
// stream, and snapshot-isolation reads anywhere.
package main

import (
	"fmt"
	"log"

	"pgssi"
	"pgssi/internal/wal"
)

func main() {
	walLog := wal.NewLog()

	master := pgssi.Open(pgssi.Config{})
	if err := master.CreateTable("kv"); err != nil {
		log.Fatal(err)
	}
	master.AttachWAL(walLog)

	replica, err := pgssi.NewReplica(walLog, []string{"kv"})
	if err != nil {
		log.Fatal(err)
	}
	defer replica.Close()

	// Commit a few transactions on the master. With no concurrency,
	// each commit is followed by a safe-snapshot marker.
	for i := 0; i < 5; i++ {
		err := master.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
			k := fmt.Sprintf("key%d", i)
			return tx.Insert("kv", k, []byte(fmt.Sprintf("value%d", i)))
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Wait for the standby to apply everything (5 commits + markers).
	if err := replica.WaitApplied(walLog.Len()); err != nil {
		log.Fatal(err)
	}
	applied, err := replica.AppliedRecords()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replica applied", applied, "WAL records")

	// A serializable read-only transaction on the standby: allowed
	// because the stream position is a safe snapshot.
	rtx, err := replica.BeginReadOnly(pgssi.ReplicaTxOptions{Serializable: true, WaitSafe: true})
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	err = rtx.Scan("kv", "", "", func(k string, v []byte) bool {
		fmt.Printf("  standby read %s = %s\n", k, v)
		n++
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rtx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("standby serializable read-only txn saw", n, "rows on a safe snapshot")
}
