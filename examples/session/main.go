// Session-layer walkthrough: the handle-based, status-coded facade
// that transports speak (cmd/pgssid serves exactly this API over TCP;
// wire.Client mirrors it call for call). Compare examples/quickstart,
// which uses the in-process *Tx API directly — the session layer is
// the same engine behind handles and one-byte Status results instead
// of Go errors, so a client can branch on outcomes without string
// matching, the way PostgreSQL clients branch on SQLSTATE.
package main

import (
	"fmt"
	"log"

	"pgssi"
)

func main() {
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()

	sess := db.NewSession()

	// DDL and transaction control are all status-coded.
	if st := sess.CreateTable("oncall"); !st.OK() {
		log.Fatalf("create table: %v", st)
	}

	// Seed two rows. A handle names the transaction; the session owns
	// the *Tx behind it.
	h, st := sess.Begin(pgssi.Serializable, false, false)
	if !st.OK() {
		log.Fatalf("begin: %v", st)
	}
	for _, who := range []string{"alice", "bob"} {
		if st := sess.Insert(h, "oncall", who, []byte("on")); !st.OK() {
			log.Fatalf("insert %s: %v", who, st)
		}
	}
	if st := sess.Commit(h); !st.OK() {
		log.Fatalf("commit: %v", st)
	}

	// The canonical write-skew pair through two sessions: each reads
	// both rows, then updates the one the other read. SSI aborts
	// exactly one with StatusSerializationFailure — which Retryable()
	// reports, so the retry loop needs no error inspection.
	s1, s2 := db.NewSession(), db.NewSession()
	h1, _ := s1.Begin(pgssi.Serializable, false, false)
	h2, _ := s2.Begin(pgssi.Serializable, false, false)
	for _, who := range []string{"alice", "bob"} {
		s1.Get(h1, "oncall", who)
		s2.Get(h2, "oncall", who)
	}
	st1 := s1.Update(h1, "oncall", "alice", []byte("off"))
	st2 := s2.Update(h2, "oncall", "bob", []byte("off"))
	if st1.OK() {
		st1 = s1.Commit(h1)
	} else {
		s1.Rollback(h1)
	}
	if st2.OK() {
		st2 = s2.Commit(h2)
	} else {
		s2.Rollback(h2)
	}
	fmt.Printf("write skew: session 1 → %v, session 2 → %v\n", st1, st2)
	if st1.Retryable() == st2.Retryable() {
		log.Fatal("expected exactly one serialization failure")
	}

	// Read the outcome back through a read-only handle and a scan.
	h, st = sess.Begin(pgssi.Serializable, true, false)
	if !st.OK() {
		log.Fatalf("begin ro: %v", st)
	}
	rows, st := sess.Scan(h, "oncall", "", "", 0)
	if !st.OK() {
		log.Fatalf("scan: %v", st)
	}
	for _, kv := range rows {
		fmt.Printf("  %-6s %s\n", kv.Key, kv.Value)
	}
	sess.Commit(h)
}
