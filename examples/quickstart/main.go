// Quickstart: open a database, create a table, and run serializable
// transactions with automatic retry — the recommended usage pattern.
package main

import (
	"fmt"
	"log"

	"pgssi"
)

func main() {
	db := pgssi.Open(pgssi.Config{})
	if err := db.CreateTable("accounts"); err != nil {
		log.Fatal(err)
	}

	// Load initial balances in one transaction.
	err := db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
		for _, acct := range []string{"alice", "bob", "carol"} {
			if err := tx.Insert("accounts", acct, []byte("100")); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Transfer with full serializability. RunTx retries automatically
	// on serialization failures, the way PostgreSQL applications use a
	// retry loop around SQLSTATE 40001.
	transfer := func(from, to string, amount int) error {
		return db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
			src, err := tx.Get("accounts", from)
			if err != nil {
				return err
			}
			dst, err := tx.Get("accounts", to)
			if err != nil {
				return err
			}
			s, d := atoi(src), atoi(dst)
			if s < amount {
				return fmt.Errorf("insufficient funds in %s", from)
			}
			if err := tx.Update("accounts", from, itoa(s-amount)); err != nil {
				return err
			}
			return tx.Update("accounts", to, itoa(d+amount))
		})
	}

	if err := transfer("alice", "bob", 30); err != nil {
		log.Fatal(err)
	}
	if err := transfer("bob", "carol", 50); err != nil {
		log.Fatal(err)
	}

	// A read-only serializable transaction; with no concurrent writers
	// it runs on a safe snapshot with zero SSI overhead (§4.2).
	tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable, ReadOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("balances (on safe snapshot:", tx.OnSafeSnapshot(), ")")
	total := 0
	err = tx.Scan("accounts", "", "", func(k string, v []byte) bool {
		fmt.Printf("  %-6s %s\n", k, v)
		total += atoi(v)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("total:", total)
}

func atoi(b []byte) int {
	n := 0
	for _, c := range b {
		n = n*10 + int(c-'0')
	}
	return n
}

func itoa(n int) []byte { return []byte(fmt.Sprint(n)) }
