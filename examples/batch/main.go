// Batch: the three-transaction batch-processing anomaly of §2.1.2
// (Figure 2) — a receipts table and a control row with the current batch
// number. The REPORT transaction is read-only, yet its presence makes the
// execution non-serializable under snapshot isolation; SSI detects the
// dangerous structure and aborts one transaction.
package main

import (
	"fmt"
	"log"

	"pgssi"
)

func setup() *pgssi.DB {
	db := pgssi.Open(pgssi.Config{})
	for _, t := range []string{"control", "receipts"} {
		if err := db.CreateTable(t); err != nil {
			log.Fatal(err)
		}
	}
	err := db.RunTx(pgssi.TxOptions{}, func(tx *pgssi.Tx) error {
		return tx.Insert("control", "batch", []byte("1"))
	})
	if err != nil {
		log.Fatal(err)
	}
	return db
}

func run(level pgssi.IsolationLevel) {
	db := setup()
	fmt.Printf("--- %v ---\n", level)

	// T2 (NEW-RECEIPT) reads the current batch number...
	t2, _ := db.Begin(pgssi.TxOptions{Isolation: level})
	batch, err := t2.Get("control", "batch")
	if err != nil {
		log.Fatal(err)
	}

	// ...then T3 (CLOSE-BATCH) increments it and commits.
	t3, _ := db.Begin(pgssi.TxOptions{Isolation: level})
	if err := t3.Update("control", "batch", []byte("2")); err != nil {
		log.Fatal(err)
	}
	if err := t3.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("CLOSE-BATCH committed: current batch is now 2")

	// T1 (REPORT) starts after the batch closed: it totals batch 1,
	// which serializability says can never change afterwards.
	t1, _ := db.Begin(pgssi.TxOptions{Isolation: level, ReadOnly: true})
	count := 0
	scanErr := t1.Scan("receipts", "1|", "1|\xff", func(string, []byte) bool {
		count++
		return true
	})
	var reportErr error
	if scanErr != nil {
		reportErr = scanErr
		t1.Rollback()
	} else {
		reportErr = t1.Commit()
	}
	fmt.Printf("REPORT for closed batch 1: %d receipts (%s)\n", count, status(reportErr))

	// T2 now inserts its receipt tagged with the batch number it read
	// (1 — the batch the report already totaled!) and tries to commit.
	insErr := t2.Insert("receipts", "1|r001", []byte("amount=42;batch="+string(batch)))
	if insErr == nil {
		insErr = t2.Commit()
	} else {
		t2.Rollback()
	}
	fmt.Printf("NEW-RECEIPT into batch 1: %s\n", status(insErr))

	// What does the database say now?
	check, _ := db.Begin(pgssi.TxOptions{})
	final := 0
	_ = check.Scan("receipts", "1|", "1|\xff", func(string, []byte) bool { final++; return true })
	check.Rollback()
	fmt.Printf("batch-1 receipts now: %d", final)
	if final != count {
		fmt.Printf("  ← the closed batch changed after its report: anomaly!")
	}
	fmt.Println()
	fmt.Println()
}

func status(err error) string {
	if err == nil {
		return "committed"
	}
	if pgssi.IsSerializationFailure(err) {
		return "ABORTED by SSI (retry): " + err.Error()
	}
	return err.Error()
}

func main() {
	fmt.Println("Batch processing anomaly (Figure 2): a read-only REPORT makes")
	fmt.Println("an otherwise-serializable pair of transactions anomalous.")
	fmt.Println()
	run(pgssi.RepeatableRead)
	run(pgssi.Serializable)
}
