// Doctors: the write-skew example of §2.1.1 (Figure 1), run side by side
// under snapshot isolation and under SSI. Each transaction checks that at
// least two doctors are on call and, if so, takes one off call. Under SI
// both commit and the invariant breaks; under SERIALIZABLE one aborts.
package main

import (
	"fmt"
	"log"

	"pgssi"
)

func setup() *pgssi.DB {
	db := pgssi.Open(pgssi.Config{})
	if err := db.CreateTable("doctors"); err != nil {
		log.Fatal(err)
	}
	err := db.RunTx(pgssi.TxOptions{}, func(tx *pgssi.Tx) error {
		if err := tx.Insert("doctors", "alice", []byte("oncall")); err != nil {
			return err
		}
		return tx.Insert("doctors", "bob", []byte("oncall"))
	})
	if err != nil {
		log.Fatal(err)
	}
	return db
}

func onCallCount(tx *pgssi.Tx) (int, error) {
	n := 0
	err := tx.Scan("doctors", "", "", func(_ string, v []byte) bool {
		if string(v) == "oncall" {
			n++
		}
		return true
	})
	return n, err
}

// takeOffCall runs Figure 1's transaction body for the named doctor.
func takeOffCall(tx *pgssi.Tx, who string) error {
	n, err := onCallCount(tx)
	if err != nil {
		return err
	}
	if n >= 2 {
		return tx.Update("doctors", who, []byte("off"))
	}
	return nil
}

func run(level pgssi.IsolationLevel) {
	db := setup()
	t1, _ := db.Begin(pgssi.TxOptions{Isolation: level})
	t2, _ := db.Begin(pgssi.TxOptions{Isolation: level})

	// The Figure 1 interleaving: both read before either writes.
	err1 := takeOffCall(t1, "alice")
	err2 := takeOffCall(t2, "bob")
	if err1 == nil {
		err1 = t1.Commit()
	} else {
		t1.Rollback()
	}
	if err2 == nil {
		err2 = t2.Commit()
	} else {
		t2.Rollback()
	}

	check, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	n, _ := onCallCount(check)
	check.Rollback()

	fmt.Printf("%-22s T1: %-60v\n", level.String(), errStr(err1))
	fmt.Printf("%-22s T2: %-60v\n", "", errStr(err2))
	fmt.Printf("%-22s doctors on call afterwards: %d", "", n)
	if n == 0 {
		fmt.Printf("  ← invariant violated (silent write skew)")
	}
	fmt.Println()
	fmt.Println()
}

func errStr(err error) string {
	if err == nil {
		return "committed"
	}
	return err.Error()
}

func main() {
	fmt.Println("Write skew (Figure 1): two doctors on call, each transaction")
	fmt.Println("removes one if at least two are on call.")
	fmt.Println()
	run(pgssi.RepeatableRead) // snapshot isolation: anomaly commits
	run(pgssi.Serializable)   // SSI: one transaction aborts
}
