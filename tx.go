package pgssi

import (
	"fmt"

	"pgssi/internal/core"
	"pgssi/internal/mvcc"
	"pgssi/internal/wal"
)

// Tx is a transaction. A Tx must be used from one goroutine at a time
// (concurrency comes from running many transactions, not from sharing
// one). Every Tx must be finished with Commit, Rollback, or the
// two-phase-commit calls; transactions that fail any operation with a
// serialization failure remain rollback-only and their Commit fails.
type Tx struct {
	db       *DB
	xid      mvcc.TxID
	level    IsolationLevel
	readOnly bool
	// snap is the transaction snapshot; nil for ReadCommitted and
	// SerializableS2PL, which use per-statement snapshots.
	snap *mvcc.Snapshot
	// x is the SSI bookkeeping, non-nil only for Serializable.
	x *core.Xact

	// writes tracks this transaction's write set, newest version last,
	// for own-write detection, savepoint rollback, and WAL emission.
	writes map[writeKey][]writeVersion

	// savepoints is the stack of active savepoints; subSeq issues
	// subtransaction IDs (§7.3).
	savepoints []savepoint
	subSeq     int32

	done     bool
	prepared bool
	gid      string
	prepSt   core.PreparedState

	// replicaSafe is stamped by Replica.BeginReadOnly while it holds the
	// replica's apply mutex: true iff the snapshot was taken exactly at a
	// safe-snapshot marker. Replica transactions have no SSI state (x is
	// nil), so OnSafeSnapshot reports safety through this flag instead.
	replicaSafe bool
}

type writeKey struct{ table, key string }

type writeVersion struct {
	subID   int32
	value   []byte
	deleted bool
}

type savepoint struct {
	name  string
	subID int32
}

// Begin starts a transaction. With Deferrable+ReadOnly+Serializable it
// blocks until a safe snapshot is available (§4.3) and returns a
// transaction that runs entirely without SSI overhead and cannot abort.
func (db *DB) Begin(opts TxOptions) (*Tx, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	// A poisoned durable log can never acknowledge another commit:
	// refuse new transactions up front (ErrWALPoisoned) instead of
	// letting each one run to a walFinish that is guaranteed to fail.
	if db.durable != nil {
		if perr := db.durable.PoisonErr(); perr != nil {
			return nil, fmt.Errorf("%w: %v", ErrWALPoisoned, perr)
		}
	}
	if opts.Deferrable {
		if !opts.ReadOnly || opts.Isolation != Serializable {
			return nil, fmt.Errorf("pgssi: DEFERRABLE requires a SERIALIZABLE READ ONLY transaction")
		}
		return db.beginDeferrable()
	}
	tx := &Tx{
		db:       db,
		xid:      db.mvcc.Begin(),
		level:    opts.Isolation,
		readOnly: opts.ReadOnly,
		writes:   make(map[writeKey][]writeVersion),
	}
	switch opts.Isolation {
	case Serializable:
		tx.x, tx.snap = db.ssi.Begin(tx.xid, db.mvcc.TakeSnapshot, opts.ReadOnly, false)
	case RepeatableRead:
		tx.snap = db.mvcc.TakeSnapshot()
	case ReadCommitted, SerializableS2PL:
		// Per-statement snapshots.
	default:
		db.mvcc.Abort(tx.xid)
		return nil, fmt.Errorf("pgssi: unknown isolation level %v", opts.Isolation)
	}
	return tx, nil
}

// beginDeferrable implements BEGIN TRANSACTION READ ONLY, DEFERRABLE:
// take a snapshot, wait for all concurrent read/write transactions to
// finish, and retry with a fresh snapshot if any of them rendered it
// unsafe (§4.3).
func (db *DB) beginDeferrable() (*Tx, error) {
	for {
		xid := db.mvcc.Begin()
		x, snap := db.ssi.Begin(xid, db.mvcc.TakeSnapshot, true, true)
		if db.ssi.SafeVerdict(x) {
			return &Tx{
				db:       db,
				xid:      xid,
				level:    Serializable,
				readOnly: true,
				snap:     snap,
				x:        x,
				writes:   make(map[writeKey][]writeVersion),
			}, nil
		}
		db.ssi.Abort(x)
		db.mvcc.Abort(xid)
	}
}

// ID returns the transaction's xid (diagnostics only).
func (tx *Tx) ID() uint64 { return uint64(tx.xid) }

// Isolation returns the transaction's isolation level.
func (tx *Tx) Isolation() IsolationLevel { return tx.level }

// OnSafeSnapshot reports whether a Serializable read-only transaction is
// currently running on a safe snapshot (no SSI overhead, cannot abort).
// On a primary this is the SSI layer's verdict; on a replica it reports
// whether the snapshot was taken exactly at a safe-snapshot marker.
func (tx *Tx) OnSafeSnapshot() bool {
	return tx.replicaSafe || (tx.x != nil && tx.x.Safe())
}

// snapshot returns the snapshot for the next statement.
func (tx *Tx) snapshot() *mvcc.Snapshot {
	if tx.snap != nil {
		return tx.snap
	}
	return tx.db.mvcc.TakeSnapshot()
}

// currentSubID returns the subtransaction ID writes are tagged with.
func (tx *Tx) currentSubID() int32 {
	if n := len(tx.savepoints); n > 0 {
		return tx.savepoints[n-1].subID
	}
	return 0
}

// inSubxact reports whether an unreleased savepoint scope is open, which
// disables the drop-SIREAD-on-own-write optimization (§7.3).
func (tx *Tx) inSubxact() bool { return len(tx.savepoints) > 0 }

// owns reports whether the transaction holds a live own-write of key.
func (tx *Tx) owns(table, key string) bool {
	vs := tx.writes[writeKey{table, key}]
	if len(vs) == 0 {
		return false
	}
	return !vs[len(vs)-1].deleted
}

// recordWrite appends a write-set entry.
func (tx *Tx) recordWrite(table, key string, value []byte, deleted bool) {
	wk := writeKey{table, key}
	tx.writes[wk] = append(tx.writes[wk], writeVersion{
		subID:   tx.currentSubID(),
		value:   value,
		deleted: deleted,
	})
}

// checkUsable validates the transaction state for a new statement.
func (tx *Tx) checkUsable(write bool) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.prepared {
		return ErrPrepared
	}
	if write && tx.readOnly {
		return ErrReadOnlyTx
	}
	return nil
}

// Commit finishes the transaction. Under Serializable the pre-commit
// serialization check may fail, in which case the transaction is rolled
// back and a serialization failure is returned: retry the transaction.
//
// With the durable WAL open (OpenDir), Commit returns only after the
// transaction's record is on disk per the configured fsync mode: the
// record is encoded before the commit-sequence assignment, its log
// position is reserved inside the MVCC publication critical section
// (see recovery.go), and the committer then waits for the group-commit
// fsync that covers it.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.prepared {
		return ErrPrepared
	}
	pend, perr := tx.db.walPrepare(tx)
	if perr != nil {
		// The WAL cannot accept the commit record (e.g. oversize):
		// abort before publication, so the commit is neither visible
		// nor acknowledged.
		tx.rollbackLocked()
		return perr
	}
	switch tx.level {
	case Serializable:
		err := tx.db.ssi.Commit(tx.x, func() mvcc.SeqNo {
			return tx.db.publishCommit(tx)
		})
		if err != nil {
			tx.db.walAbandon(tx)
			tx.rollbackLocked()
			return serializationFailure("pre-commit dangerous structure check")
		}
	case RepeatableRead, ReadCommitted:
		tx.db.publishCommit(tx)
	case SerializableS2PL:
		tx.db.publishCommit(tx)
		tx.db.s2pl.ReleaseAll(tx.xid)
	}
	tx.done = true
	return tx.db.walFinish(pend)
}

// Rollback aborts the transaction. Rolling back a finished transaction
// returns ErrTxDone; rolling back a prepared transaction is done with
// RollbackPrepared.
func (tx *Tx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.prepared {
		return ErrPrepared
	}
	tx.rollbackLocked()
	return nil
}

func (tx *Tx) rollbackLocked() {
	tx.db.mvcc.Abort(tx.xid)
	if tx.x != nil {
		tx.db.ssi.Abort(tx.x)
	}
	if tx.level == SerializableS2PL {
		tx.db.s2pl.ReleaseAll(tx.xid)
	}
	tx.done = true
	tx.db.emitAbortSafePoint()
}

// publishCommit makes tx's commit visible (mvcc.Commit) and appends its
// record to any attached WAL sink in commit-sequence order.
//
// For a transaction with writes, the sequence assignment and the append
// happen inside one db.walMu critical section: walMu is taken BEFORE
// mvcc.Commit, so two committers cannot publish in one order and append
// in the other, and an observer holding walMu that sees ActiveCount()==0
// knows every assigned sequence's commit record is already in the log
// (every logging committer appends before releasing walMu; no-write
// commits append nothing). That invariant is what makes the safe-snapshot
// markers emitted by maybeEmitMarkerLocked sound, and it keeps the
// in-memory log consistent with Stream.SubscribeFrom's resume contract
// (a replica resuming after sequence S must never find a commit ≤ S
// appended later). The durable path's walCommitHook reserves its log
// position inside the MVCC publication critical section, which walMu now
// also covers, so the durable log is append-ordered across shards too.
//
// No-write commits skip walMu around mvcc.Commit entirely — they have
// nothing to append — and only take it afterwards if they may have made
// the system quiescent and owe the stream a marker.
func (db *DB) publishCommit(tx *Tx) mvcc.SeqNo {
	sink := db.durable != nil || db.walLog.Load() != nil
	if !sink || len(tx.writes) == 0 {
		seq := db.mvcc.Commit(tx.xid)
		if sink && db.mvcc.ActiveCount() == 0 {
			db.walMu.Lock()
			db.maybeEmitMarkerLocked()
			db.walMu.Unlock()
		}
		return seq
	}
	db.walMu.Lock()
	defer db.walMu.Unlock()
	seq := db.mvcc.Commit(tx.xid)
	if log := db.walLog.Load(); log != nil {
		rec := db.buildWALRecord(tx)
		rec.Seq = seq
		log.Append(rec)
	}
	db.maybeEmitMarkerLocked()
	return seq
}

// maybeEmitMarkerLocked appends a safe-snapshot marker at the current
// commit sequence to every attached WAL sink if the system is quiescent
// and no marker at or past that sequence was already emitted. Caller
// holds db.walMu, which makes the markerSeq check-and-advance atomic
// with the append: marker sequences in the log never decrease, and a
// marker is always appended after every commit record it covers (see
// publishCommit's ordering invariant). markerSeq is only written here,
// under walMu, so a plain store suffices.
//
// The marker is valid even if no-write commits advanced the sequence
// past the last logged record: a transaction beginning after this
// quiescent instant takes a snapshot at or past seq, so no
// rw-antidependency can reach out of the marker's snapshot (§7.2).
func (db *DB) maybeEmitMarkerLocked() {
	if db.mvcc.ActiveCount() != 0 {
		return
	}
	seq := db.mvcc.CurrentSeq()
	if seq == 0 {
		return
	}
	if uint64(seq) > db.markerSeq.Load() {
		db.markerSeq.Store(uint64(seq))
		if log := db.walLog.Load(); log != nil {
			log.Append(wal.Record{Seq: seq, SafeSnapshot: true})
		}
		if db.durable != nil {
			db.durable.Append(wal.Record{Seq: seq, SafeSnapshot: true})
		}
	}
	// Every quiescent instant is a legal checkpoint point — including
	// one whose marker was deduplicated above (the marker at seq is
	// already in the log, which is all the checkpoint needs).
	db.maybeStartCheckpointLocked(uint64(seq))
}

// emitAbortSafePoint emits a safe-snapshot marker when an abort leaves
// the system quiescent. A snapshot is safe once every concurrent
// transaction has completed — committed or aborted (§7.2). Without
// this, a commit trailed by a doomed concurrent transaction (the
// serialization-failure loser, say) never gets its marker, and a
// replica's wait-for-safe blocks until unrelated write traffic shows
// up. The unlocked pre-checks keep the common abort cheap; the
// authoritative check-and-append runs under walMu so a stale marker can
// never be appended after a newer commit or marker.
func (db *DB) emitAbortSafePoint() {
	if db.durable == nil && db.walLog.Load() == nil {
		return
	}
	if db.mvcc.ActiveCount() != 0 {
		return
	}
	if uint64(db.mvcc.CurrentSeq()) <= db.markerSeq.Load() && !db.checkpointWanted() {
		// No marker owed and no checkpoint wanted: skip the walMu
		// section entirely (the common abort).
		return
	}
	db.walMu.Lock()
	db.maybeEmitMarkerLocked()
	db.walMu.Unlock()
}

// Savepoint establishes a savepoint with the given name, starting a new
// subtransaction scope (§7.3).
func (tx *Tx) Savepoint(name string) error {
	if err := tx.checkUsable(false); err != nil {
		return err
	}
	tx.subSeq++
	tx.savepoints = append(tx.savepoints, savepoint{name: name, subID: tx.subSeq})
	return nil
}

// ReleaseSavepoint releases name and any savepoints nested inside it,
// merging their effects into the enclosing scope.
func (tx *Tx) ReleaseSavepoint(name string) error {
	if err := tx.checkUsable(false); err != nil {
		return err
	}
	for i := len(tx.savepoints) - 1; i >= 0; i-- {
		if tx.savepoints[i].name == name {
			tx.savepoints = tx.savepoints[:i]
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrNoSavepoint, name)
}

// RollbackToSavepoint discards all changes made since the savepoint was
// established, releasing the write locks those changes held. SIREAD
// locks acquired in the subtransaction are retained, because data read
// inside it may have been externalized (§7.3). The savepoint itself
// remains established, as in SQL.
func (tx *Tx) RollbackToSavepoint(name string) error {
	if err := tx.checkUsable(false); err != nil {
		return err
	}
	idx := -1
	for i := len(tx.savepoints) - 1; i >= 0; i-- {
		if tx.savepoints[i].name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: %q", ErrNoSavepoint, name)
	}
	sp := tx.savepoints[idx]
	for wk, vs := range tx.writes {
		keep := vs[:0]
		for _, v := range vs {
			if v.subID < sp.subID {
				keep = append(keep, v)
			}
		}
		if len(keep) == len(vs) {
			continue
		}
		ti, err := tx.db.table(wk.table)
		if err != nil {
			continue
		}
		ti.heap.UndoSubxact(wk.key, tx.xid, sp.subID)
		if len(keep) == 0 {
			delete(tx.writes, wk)
		} else {
			tx.writes[wk] = keep
		}
	}
	tx.savepoints = tx.savepoints[:idx+1]
	return nil
}
