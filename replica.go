package pgssi

import (
	"errors"
	"sync"

	"pgssi/internal/wal"
)

// Replica is a log-shipping standby (§7.2): it applies the master's WAL
// records into its own MVCC storage and serves read-only transactions.
// Serializable read-only transactions on the replica are only allowed on
// safe snapshots, identified by markers in the log stream — exactly the
// design the paper proposes for lifting PostgreSQL 9.1's restriction.
// Weaker-isolation (snapshot) reads are allowed at any applied position,
// matching "they can simply run at a weaker isolation level".
type Replica struct {
	db     *DB
	cancel func()

	mu       sync.Mutex
	cond     *sync.Cond
	applied  int // records applied
	safeAt   int // applied position of the last safe-snapshot marker
	appliedS uint64
	stopped  bool
}

// ErrNotSafePoint is returned by BeginReadOnly(WaitSafe: false) when the
// replica's applied position is not currently a safe snapshot.
var ErrNotSafePoint = errors.New("pgssi: replica is not at a safe snapshot point")

// ReplicaTxOptions configure a replica read-only transaction.
type ReplicaTxOptions struct {
	// Serializable requests true serializability; the transaction must
	// run on a safe snapshot.
	Serializable bool
	// WaitSafe makes Begin block until the next safe-snapshot marker
	// arrives (like a DEFERRABLE transaction); otherwise Begin fails
	// with ErrNotSafePoint if the current position is not safe.
	WaitSafe bool
}

// NewReplica creates a standby that replays log and mirrors the schema of
// the given tables. The log may be the in-memory wal.Log or a durable
// wal.DurableLog (DB.DurableWAL) — a durable stream replays everything
// on disk first, so a replica attached to a restarted master catches up
// from the beginning of the log; tables recorded in the stream are
// created automatically.
func NewReplica(log wal.Stream, tables []string) (*Replica, error) {
	db := Open(Config{})
	for _, t := range tables {
		if err := db.CreateTable(t); err != nil {
			return nil, err
		}
	}
	r := &Replica{db: db}
	r.cond = sync.NewCond(&r.mu)
	ch, cancel := log.Subscribe()
	r.cancel = cancel
	go r.applyLoop(ch)
	return r, nil
}

// applyLoop applies records in order. Each transaction record is applied
// as a local snapshot-isolation transaction, giving replica readers MVCC
// snapshots for free, just as WAL replay on a PostgreSQL standby
// maintains MVCC state.
func (r *Replica) applyLoop(ch <-chan wal.Record) {
	for rec := range ch {
		r.mu.Lock()
		if r.stopped {
			r.mu.Unlock()
			return
		}
		if !rec.SafeSnapshot {
			r.applyRecord(rec)
		}
		r.applied++
		r.appliedS = uint64(rec.Seq)
		if rec.SafeSnapshot {
			r.safeAt = r.applied
		}
		r.cond.Broadcast()
		r.mu.Unlock()
	}
	r.mu.Lock()
	r.stopped = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

// applyRecord applies one transaction's ops (or one schema record).
// Caller holds r.mu, which also serializes appliers against
// snapshot-taking readers.
func (r *Replica) applyRecord(rec wal.Record) {
	if rec.CreateTable != "" {
		if _, err := r.db.table(rec.CreateTable); err != nil {
			_ = r.db.CreateTable(rec.CreateTable)
		}
		return
	}
	tx, err := r.db.Begin(TxOptions{Isolation: RepeatableRead})
	if err != nil {
		return
	}
	for _, op := range rec.Ops {
		switch {
		case op.Delete:
			_ = tx.Delete(op.Table, op.Key)
		default:
			if err := tx.Update(op.Table, op.Key, op.Value); err != nil {
				_ = tx.Insert(op.Table, op.Key, op.Value)
			}
		}
	}
	_ = tx.Commit()
}

// BeginReadOnly starts a read-only transaction on the replica. With
// Serializable it runs only on a safe snapshot: if the replica is not at
// a marker, it waits for the next one (WaitSafe) or fails
// (ErrNotSafePoint). The returned transaction is an ordinary snapshot
// transaction — a safe snapshot needs no SSI tracking, which is the whole
// point (§4.2).
func (r *Replica) BeginReadOnly(opts ReplicaTxOptions) (*Tx, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if opts.Serializable {
		if r.applied != r.safeAt || r.applied == 0 {
			if !opts.WaitSafe {
				return nil, ErrNotSafePoint
			}
			for (r.applied != r.safeAt || r.applied == 0) && !r.stopped {
				r.cond.Wait()
			}
			if r.stopped {
				return nil, errors.New("pgssi: replica stopped")
			}
		}
	}
	// r.mu is held: no record can be applied between the safety check
	// and the snapshot, so the snapshot lands exactly on the marker.
	return r.db.Begin(TxOptions{Isolation: RepeatableRead, ReadOnly: true})
}

// AppliedRecords returns how many WAL records have been applied.
func (r *Replica) AppliedRecords() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// WaitApplied blocks until at least n records have been applied.
func (r *Replica) WaitApplied(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.applied < n && !r.stopped {
		r.cond.Wait()
	}
}

// Close detaches the replica from the log.
func (r *Replica) Close() {
	r.mu.Lock()
	r.stopped = true
	r.cond.Broadcast()
	r.mu.Unlock()
	r.cancel()
}
