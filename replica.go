package pgssi

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pgssi/internal/mvcc"
	"pgssi/internal/wal"
)

// Replica is a log-shipping standby (§7.2): it applies the master's WAL
// records into its own MVCC storage and serves read-only transactions.
// Serializable read-only transactions on the replica are only allowed on
// safe snapshots, identified by markers in the log stream — exactly the
// design the paper proposes for lifting PostgreSQL 9.1's restriction.
// Weaker-isolation (snapshot) reads are allowed at any applied position,
// matching "they can simply run at a weaker isolation level".
//
// The record source may be in process (the in-memory wal.Log, a
// DB.DurableWAL) or remote (internal/wire's ReplicaSource, streaming
// from a pgssid master over TCP). When the source's channel closes —
// the subscriber fell behind the fan-out buffer, the master restarted,
// or the network dropped — the replica re-subscribes from its applied
// commit-sequence position and catches up; records it already applied
// are never applied twice (Stream.SubscribeFrom's contract, plus
// boundary dedup here for the marker/schema records that share a
// sequence number with the commit they follow).
//
// An apply error is fatal to the replica: the apply loop halts, the
// error is recorded, and every subsequent BeginReadOnly, AppliedRecords,
// WaitApplied, and session Begin reports it. A replica that cannot
// apply the stream has diverged from the master; continuing to serve
// "safe" snapshots from it would be silent corruption.
type Replica struct {
	db     *DB
	src    wal.Stream
	tables []string // pre-created tables, replayed into a re-seeded engine too
	stopCh chan struct{}
	done   chan struct{}

	mu         sync.Mutex //ssi:lock level=15 name=pgssi.replica
	cond       *sync.Cond
	applied    int    // records applied
	safeAt     int    // applied position of the last safe-snapshot marker
	appliedSeq uint64 // commit sequence of the newest applied record
	safeSeq    uint64 // commit sequence at the last safe-snapshot marker
	err        error  // first fatal failure (apply error or permanent source refusal); the replica is halted once set
	stopped    bool
}

// ErrNotSafePoint is returned by BeginReadOnly(WaitSafe: false) when the
// replica's applied position is not currently a safe snapshot.
var ErrNotSafePoint = errors.New("pgssi: replica is not at a safe snapshot point")

// ErrReplicaHalted wraps the failure that halted the replica — the
// first apply error, or a permanent refusal from the record source
// (wal.SourceErrorer): the replica has stopped applying the stream and
// refuses to serve until rebuilt.
var ErrReplicaHalted = errors.New("pgssi: replica halted")

// ReplicaTxOptions configure a replica read-only transaction.
type ReplicaTxOptions struct {
	// Serializable requests true serializability; the transaction must
	// run on a safe snapshot.
	Serializable bool
	// WaitSafe makes Begin block until the next safe-snapshot marker
	// arrives (like a DEFERRABLE transaction); otherwise Begin fails
	// with ErrNotSafePoint if the current position is not safe.
	WaitSafe bool
}

// NewReplica creates a standby that replays log and mirrors the schema of
// the given tables. The log may be the in-memory wal.Log, a durable
// wal.DurableLog (DB.DurableWAL), or a network source (wire's
// ReplicaSource); tables recorded in the stream are created
// automatically. A fresh replica on an uncheckpointed stream catches up
// from the beginning of the log; when the source's history has been
// truncated by checkpoint GC (wal.ErrSeqTruncated) the replica seeds
// itself from the source's newest checkpoint instead
// (wal.CheckpointSource) and resumes from the checkpoint sequence.
func NewReplica(log wal.Stream, tables []string) (*Replica, error) {
	db := Open(Config{})
	for _, t := range tables {
		if err := db.CreateTable(t); err != nil {
			// Close the engine on the error path or its epoch-reclaimer
			// goroutine (and everything else Open started) leaks.
			db.Close()
			return nil, err
		}
	}
	r := &Replica{
		db:     db,
		src:    log,
		tables: append([]string(nil), tables...),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	go r.run()
	return r, nil
}

// run drives the subscribe / apply / re-subscribe cycle until the
// replica is closed or halts on an apply error. Each re-subscription
// resumes from the applied commit-sequence position, so a dropped
// source (network partition, master restart, fan-out overflow) costs
// only the records not yet applied.
func (r *Replica) run() {
	defer close(r.done)
	backoff := time.Millisecond
	for attempt := 0; ; attempt++ {
		r.mu.Lock()
		if r.stopped || r.err != nil {
			r.mu.Unlock()
			return
		}
		after := mvcc.SeqNo(r.appliedSeq)
		before := r.applied
		r.mu.Unlock()

		ch, cancel, serr := r.subscribe(after)
		if errors.Is(serr, wal.ErrSeqTruncated) {
			// The source GC'd the records between our position and its
			// checkpoint: the gap is real and waiting cannot fill it.
			// Re-seed from the source's checkpoint and resume from the
			// checkpoint sequence (also the fresh-replica bootstrap path
			// against a primary whose early segments are long gone).
			if rerr := r.reseed(); rerr != nil {
				r.mu.Lock()
				if r.err == nil {
					r.err = fmt.Errorf("%w: re-seed after truncated resume: %v", ErrReplicaHalted, rerr)
				}
				r.cond.Broadcast()
				r.mu.Unlock()
				return
			}
			backoff = time.Millisecond
			continue
		}
		if serr == nil {
			alive := r.applyLoop(ch, attempt > 0)
			cancel()
			if !alive {
				return
			}
		}
		// serr != nil falls through to the permanent-error check and the
		// backoff, exactly like a channel that closed immediately.

		// A source that reports a permanent failure (e.g. wire's
		// ReplicaSource after the primary refused replication outright)
		// can never feed this replica: halt with the error surfaced
		// instead of retrying forever while looking healthy.
		if se, ok := r.src.(wal.SourceErrorer); ok {
			if perr := se.PermanentErr(); perr != nil {
				r.mu.Lock()
				if r.err == nil {
					r.err = fmt.Errorf("%w: source refused replication: %v", ErrReplicaHalted, perr)
				}
				r.cond.Broadcast()
				r.mu.Unlock()
				return
			}
		}

		// The channel closed: the source is gone or dropped us. Back off
		// (resetting whenever the last attempt made progress) and retry.
		r.mu.Lock()
		progressed := r.applied > before
		r.mu.Unlock()
		if progressed {
			backoff = time.Millisecond
		}
		select {
		case <-r.stopCh:
			return
		case <-time.After(backoff):
		}
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// subscribe resumes the stream from after, preferring the
// truncation-aware variant: a source that implements wal.CheckedStream
// reports wal.ErrSeqTruncated when `after` fell below its GC floor,
// which run turns into a checkpoint re-seed. Plain sources (the
// in-memory wal.Log) cannot truncate and never fail.
func (r *Replica) subscribe(after mvcc.SeqNo) (<-chan wal.Record, func(), error) {
	if cs, ok := r.src.(wal.CheckedStream); ok {
		return cs.SubscribeFromChecked(after)
	}
	ch, cancel := r.src.SubscribeFrom(after)
	return ch, cancel, nil
}

// reseed rebuilds the replica's engine from the source's newest
// checkpoint: a fresh engine is loaded off to the side (readers keep
// serving the old state), then swapped in under r.mu with the applied
// position advanced to the checkpoint sequence. The checkpoint sits on
// a safe-snapshot marker by construction, so the seeded position is
// immediately safe for serializable reads.
func (r *Replica) reseed() error {
	cs, ok := r.src.(wal.CheckpointSource)
	if !ok {
		return fmt.Errorf("source cannot serve a checkpoint: %w", wal.ErrNoCheckpoint)
	}
	db := Open(Config{})
	for _, t := range r.tables {
		if err := db.CreateTable(t); err != nil {
			db.Close()
			return err
		}
	}
	applied := 0
	info, err := cs.ReplayCheckpoint(func(rec wal.Record) error {
		if rec.SafeSnapshot {
			return nil
		}
		applied++
		return applyStreamRecord(db, rec)
	})
	if err != nil {
		db.Close()
		return err
	}
	r.mu.Lock()
	if r.stopped || r.err != nil {
		r.mu.Unlock()
		db.Close()
		return nil // the run loop exits on its next check
	}
	old := r.db
	r.db = db
	r.applied += applied
	r.safeAt = r.applied
	r.appliedSeq = uint64(info.Seq)
	r.safeSeq = uint64(info.Seq)
	r.cond.Broadcast()
	r.mu.Unlock()
	// Readers that began on the old engine finish on its frozen state;
	// Close only rejects new transactions.
	old.Close()
	return nil
}

// applyLoop applies records in order until the channel closes (returns
// true: caller should re-subscribe) or the replica stops or halts
// (returns false). Each transaction record is applied as a local
// snapshot-isolation transaction, giving replica readers MVCC snapshots
// for free, just as WAL replay on a PostgreSQL standby maintains MVCC
// state. resume marks a re-subscription: boundary records that share
// the resume sequence and were already applied are deduplicated.
func (r *Replica) applyLoop(ch <-chan wal.Record, resume bool) bool {
	for {
		var rec wal.Record
		var ok bool
		select {
		case rec, ok = <-ch:
			if !ok {
				return true
			}
		case <-r.stopCh:
			return false
		}

		r.mu.Lock()
		if r.stopped || r.err != nil {
			r.mu.Unlock()
			return false
		}
		if resume && r.duplicateLocked(rec) {
			r.mu.Unlock()
			continue
		}
		if !rec.SafeSnapshot {
			if err := r.applyRecord(rec); err != nil {
				r.err = fmt.Errorf("%w: record seq %d: %v", ErrReplicaHalted, rec.Seq, err)
				r.cond.Broadcast()
				r.mu.Unlock()
				return false
			}
		}
		r.applied++
		switch {
		case rec.SafeSnapshot:
			// A marker certifies a safe snapshot only at or past
			// everything applied so far: a stale marker (sequence below
			// an applied commit, or below the last safe point — possible
			// only from a reordered or misbehaving source, since the
			// primary emits markers monotonically after the commits they
			// cover) must not declare this position safe or regress
			// safeSeq. It is counted as applied but otherwise ignored.
			if s := uint64(rec.Seq); s >= r.appliedSeq && s >= r.safeSeq {
				r.safeAt = r.applied
				r.safeSeq = s
			}
		case rec.CreateTable != "":
			// Schema records carry the sequence of the last commit they
			// follow, stamped outside the commit ordering; they must not
			// advance the resume position (see below).
		default:
			// Only commit records advance appliedSeq — the resume
			// position handed to SubscribeFrom. Markers and schema
			// records may carry sequences ahead of the last applied
			// commit record (read-only commits consume sequence numbers
			// without emitting records); advancing the resume position on
			// them would filter out commits the replica never applied.
			if s := uint64(rec.Seq); s > r.appliedSeq {
				r.appliedSeq = s
			}
		}
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

// duplicateLocked reports whether rec is a resume-boundary redelivery:
// SubscribeFrom must redeliver marker/schema records that share the
// resume sequence (they may postdate what the replica has applied), so
// a reconnecting replica sees the ones it already handled again.
// Commits are never duplicated (unique CSNs, filtered by Seq > after).
// Caller holds r.mu.
func (r *Replica) duplicateLocked(rec wal.Record) bool {
	if rec.SafeSnapshot {
		// Already marked safe at this sequence: re-marking is a no-op.
		return uint64(rec.Seq) <= r.safeSeq && r.applied == r.safeAt && r.applied > 0
	}
	if rec.CreateTable != "" {
		if uint64(rec.Seq) > r.appliedSeq {
			return false
		}
		_, err := r.db.table(rec.CreateTable)
		return err == nil
	}
	return false
}

// applyRecord applies one transaction's ops (or one schema record),
// reporting any failure — a failed apply means the replica has diverged
// and must halt rather than keep serving. Caller holds r.mu, which also
// serializes appliers against snapshot-taking readers.
func (r *Replica) applyRecord(rec wal.Record) error {
	return applyStreamRecord(r.db, rec)
}

// applyStreamRecord applies one stream record to db (the replica's live
// engine, or the fresh engine a re-seed is loading).
func applyStreamRecord(db *DB, rec wal.Record) error {
	if rec.CreateTable != "" {
		if _, err := db.table(rec.CreateTable); err == nil {
			return nil // pre-created via NewReplica's tables argument
		}
		return db.CreateTable(rec.CreateTable)
	}
	tx, err := db.Begin(TxOptions{Isolation: RepeatableRead})
	if err != nil {
		return err
	}
	for _, op := range rec.Ops {
		switch {
		case op.Delete:
			// A commit record carries each key's final version: a key
			// both inserted and deleted in one transaction logs a delete
			// for a row the replica never saw, so ErrNotFound is the one
			// tolerable outcome (recovery replay tolerates it the same
			// way).
			if err := tx.Delete(op.Table, op.Key); err != nil && !errors.Is(err, ErrNotFound) {
				tx.Rollback()
				return err
			}
		default:
			if err := tx.Put(op.Table, op.Key, op.Value); err != nil {
				tx.Rollback()
				return err
			}
		}
	}
	return tx.Commit()
}

// BeginReadOnly starts a read-only transaction on the replica. With
// Serializable it runs only on a safe snapshot: if the replica is not at
// a marker, it waits for the next one (WaitSafe) or fails
// (ErrNotSafePoint). The returned transaction is an ordinary snapshot
// transaction — a safe snapshot needs no SSI tracking, which is the whole
// point (§4.2). A halted replica fails every begin with the recorded
// apply error (errors.Is(err, ErrReplicaHalted)).
func (r *Replica) BeginReadOnly(opts ReplicaTxOptions) (*Tx, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return nil, r.err
	}
	if r.stopped {
		return nil, fmt.Errorf("pgssi: replica stopped: %w", ErrClosed)
	}
	if opts.Serializable {
		if r.applied != r.safeAt || r.applied == 0 {
			if !opts.WaitSafe {
				return nil, ErrNotSafePoint
			}
			for (r.applied != r.safeAt || r.applied == 0) && !r.stopped && r.err == nil {
				r.cond.Wait()
			}
			if r.err != nil {
				return nil, r.err
			}
			if r.stopped {
				return nil, fmt.Errorf("pgssi: replica stopped: %w", ErrClosed)
			}
		}
	}
	// r.mu is held: no record can be applied between the safety check
	// and the snapshot, so the snapshot lands exactly on the marker.
	tx, err := r.db.Begin(TxOptions{Isolation: RepeatableRead, ReadOnly: true})
	if err != nil {
		return nil, err
	}
	tx.replicaSafe = r.applied == r.safeAt && r.applied > 0
	return tx, nil
}

// NewSession returns a session serving this replica: Begin maps onto
// BeginReadOnly (Serializable requires a safe snapshot; the deferrable
// flag selects WaitSafe), non-read-only transactions are refused with
// ErrReadOnlyTx, and DDL is refused — schema arrives via the stream.
// It is the session a replica-mode pgssid serves to its clients.
func (r *Replica) NewSession() *Session {
	return &Session{
		begin: func(opts TxOptions) (*Tx, error) {
			if !opts.ReadOnly {
				return nil, fmt.Errorf("pgssi: replica is read-only: %w", ErrReadOnlyTx)
			}
			return r.BeginReadOnly(ReplicaTxOptions{
				Serializable: opts.Isolation == Serializable,
				WaitSafe:     opts.Deferrable,
			})
		},
		ddl: func(string) error {
			return fmt.Errorf("pgssi: replica is read-only: %w", ErrReadOnlyTx)
		},
		txs: make(map[Handle]*Tx),
	}
}

// AppliedRecords returns how many WAL records have been applied, and the
// apply error if the replica has halted — a halted replica's count is
// frozen at the divergence point and must not be mistaken for lag.
func (r *Replica) AppliedRecords() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied, r.err
}

// AppliedSeq returns the commit sequence number of the newest applied
// record: the replica's durable position in the master's history, and
// the router's lag signal. Unlike the applied-record count it is
// comparable across reconnects and master restarts.
func (r *Replica) AppliedSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.appliedSeq
}

// SafeSeq returns the commit sequence number at the last safe-snapshot
// marker: the position serializable read-only transactions run at.
func (r *Replica) SafeSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.safeSeq
}

// Err returns the apply error that halted the replica, or nil.
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// WaitApplied blocks until at least n records have been applied,
// returning early with the apply error if the replica halts first.
func (r *Replica) WaitApplied(n int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.applied < n && !r.stopped && r.err == nil {
		r.cond.Wait()
	}
	if r.err != nil {
		return r.err
	}
	if r.applied < n {
		return fmt.Errorf("pgssi: replica stopped: %w", ErrClosed)
	}
	return nil
}

// Close detaches the replica from the log and shuts its engine down.
func (r *Replica) Close() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.cond.Broadcast()
	r.mu.Unlock()
	close(r.stopCh)
	<-r.done
	r.db.Close()
}
