package pgssi

import (
	"errors"
	"fmt"

	"pgssi/internal/core"
	"pgssi/internal/storage"
	"pgssi/internal/waitgraph"
)

// Sentinel errors returned by the engine. Use errors.Is to test for them;
// IsSerializationFailure additionally groups every retryable concurrency
// failure the way PostgreSQL's SQLSTATE 40001 does.
var (
	// ErrSerialization reports that the transaction was aborted to
	// preserve serializability (SSI dangerous structure, snapshot
	// isolation first-updater-wins conflict, or deadlock victim).
	// Retrying the transaction is expected to succeed; under SSI the
	// safe-retry rules of §5.4 guarantee the retry cannot fail with
	// the same conflict except in the two-phase-commit corner case.
	ErrSerialization = errors.New("pgssi: could not serialize access due to read/write dependencies among transactions")
	// ErrNotFound reports that the key has no visible version.
	ErrNotFound = errors.New("pgssi: key not found")
	// ErrDuplicateKey reports an insert of an existing key.
	ErrDuplicateKey = errors.New("pgssi: duplicate key")
	// ErrTxDone reports use of a finished transaction.
	ErrTxDone = errors.New("pgssi: transaction has already been committed or rolled back")
	// ErrReadOnlyTx reports a write attempted in a READ ONLY transaction.
	ErrReadOnlyTx = errors.New("pgssi: cannot execute write in a read-only transaction")
	// ErrNoTable reports an operation against an unknown table.
	ErrNoTable = errors.New("pgssi: no such table")
	// ErrNoIndex reports an operation against an unknown index.
	ErrNoIndex = errors.New("pgssi: no such index")
	// ErrPrepared reports an operation invalid on a prepared transaction.
	ErrPrepared = errors.New("pgssi: transaction is prepared")
	// ErrNoSavepoint reports a rollback to an unknown savepoint.
	ErrNoSavepoint = errors.New("pgssi: no such savepoint")
	// ErrClosed reports an operation against a closed DB.
	ErrClosed = errors.New("pgssi: database is closed")
	// ErrInvalidHandle reports a session operation on an unknown
	// transaction handle.
	ErrInvalidHandle = errors.New("pgssi: invalid transaction handle")
	// ErrRetriesExhausted reports that RunTx gave up after its bounded
	// number of serialization-failure retries. It wraps the last
	// failure, so IsSerializationFailure still reports true — the
	// caller may apply its own, slower retry policy.
	ErrRetriesExhausted = errors.New("pgssi: transaction retries exhausted")
	// ErrWALPoisoned reports that the durable WAL has taken a sticky
	// flush failure: no commit can be made durable until the directory
	// is reopened, so Begin refuses new transactions with this error
	// rather than letting them run toward a guaranteed-failing commit.
	ErrWALPoisoned = errors.New("pgssi: durable WAL poisoned, durability lost")
)

// IsSerializationFailure reports whether err is a retryable concurrency
// failure: an SSI serialization failure, a snapshot-isolation write
// conflict, or a deadlock abort. Applications (or a retry middleware, as
// §3 assumes) should retry the transaction.
func IsSerializationFailure(err error) bool {
	return errors.Is(err, ErrSerialization)
}

// serializationError wraps a concrete cause in ErrSerialization.
type serializationError struct {
	cause string
}

func (e *serializationError) Error() string {
	return fmt.Sprintf("%v (%s)", ErrSerialization, e.cause)
}

func (e *serializationError) Is(target error) bool {
	return target == ErrSerialization
}

func serializationFailure(cause string) error {
	return &serializationError{cause: cause}
}

// retriesExhaustedError is returned by RunTx when the bounded retry loop
// gives up; it matches both ErrRetriesExhausted and (via the wrapped
// last failure) ErrSerialization.
type retriesExhaustedError struct {
	attempts int
	last     error
}

func (e *retriesExhaustedError) Error() string {
	return fmt.Sprintf("%v after %d attempts: %v", ErrRetriesExhausted, e.attempts, e.last)
}

func (e *retriesExhaustedError) Is(target error) bool { return target == ErrRetriesExhausted }

func (e *retriesExhaustedError) Unwrap() error { return e.last }

// mapStorageErr converts storage-layer errors into engine errors.
func mapStorageErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, storage.ErrNotFound):
		return ErrNotFound
	case errors.Is(err, storage.ErrDuplicateKey):
		return ErrDuplicateKey
	case errors.Is(err, storage.ErrWriteConflict):
		return serializationFailure("concurrent update")
	case errors.Is(err, waitgraph.ErrDeadlock):
		return serializationFailure("deadlock detected")
	case errors.Is(err, core.ErrSerializationFailure):
		return serializationFailure("rw-antidependency dangerous structure")
	default:
		return err
	}
}
