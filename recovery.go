package pgssi

import (
	"errors"
	"fmt"

	"pgssi/internal/mvcc"
	"pgssi/internal/wal"
)

// Durable WAL wiring: OpenDir recovery on the way in, and the commit
// path's append-before-acknowledge on the way out.
//
// The commit path is split in three so the WAL append order is
// consistent with commit dependencies:
//
//   - walPrepare (committer goroutine, outside all locks) encodes the
//     transaction's record with a placeholder sequence number and parks
//     it in db.walPending under the transaction's xid.
//   - walCommitHook (mvcc.Config.OnCommitPublish) runs inside the MVCC
//     commit publication critical section, where the CSN is assigned and
//     the commit becomes visible: it stamps the CSN into the parked
//     record and reserves its log position. Because no snapshot can
//     observe the commit before this point, a transaction that read this
//     one's writes always reserves a later position — every log prefix
//     is dependency-closed, so recovery of any prefix yields a
//     transaction-consistent state. The publication itself runs under
//     db.walMu (see publishCommit in tx.go), so positions are reserved
//     in commit-sequence order across commit-log shards.
//   - walFinish (committer goroutine again) waits for the record's group
//     commit fsync before Commit returns — the durability contract: an
//     acknowledged commit survives a crash.
//
// Aborts (including SSI pre-commit failures) call walAbandon; the hook
// never fires for them, so nothing reaches the log.

// OpenDir opens a database backed by a durable WAL in dir, running crash
// recovery first: the newest complete checkpoint (if any) is loaded, then
// the surviving post-checkpoint log records are replayed into storage (in
// log order, stopping at the first torn or corrupt record — see
// docs/wal.md) before the DB accepts traffic. Tables recorded in the log
// are recreated automatically; secondary indexes are not logged and must
// be recreated by the caller after OpenDir, before loading. With
// cfg.DisableDurableWAL, OpenDir is exactly Open.
func OpenDir(dir string, cfg Config) (*DB, error) {
	db := Open(cfg)
	if cfg.DisableDurableWAL {
		return db, nil
	}
	wl, err := wal.OpenDir(dir, wal.Config{
		SegmentSize: cfg.WALSegmentSize,
		Fsync:       cfg.FsyncMode,
		GroupWindow: cfg.WALGroupWindow,
		FS:          cfg.WALFS,
	})
	if err != nil {
		db.Close()
		return nil, err
	}
	// Load the checkpoint, then replay the suffix, both before installing
	// the log on the DB: replayed transactions run down the ordinary
	// commit path, and with db.durable still nil they do not re-log
	// themselves.
	ckptRecords, err := db.loadCheckpoint(wl)
	if err != nil {
		wl.Close()
		db.Close()
		return nil, fmt.Errorf("pgssi: checkpoint load: %w", err)
	}
	if err := db.replayWAL(wl); err != nil {
		wl.Close()
		db.Close()
		return nil, fmt.Errorf("pgssi: WAL replay: %w", err)
	}
	// Seed the engine's sequence state from the recovered log position.
	// Replay runs replayed commits through the ordinary commit path, so
	// the CSN counter already moved — but with a checkpoint the counter
	// only counted the replayed suffix, leaving it below the recovered
	// high-water mark; a new commit would then reuse a logged CSN.
	db.mvcc.AdvanceSeq(mvcc.SeqNo(wl.RecoveredMaxSeq()))
	db.markerSeq.Store(wl.RecoveredMarkerSeq())
	db.recoveredRecords = ckptRecords + wl.RecoveredRecords()
	// Seed the checkpoint trigger's watermarks so a reopened database
	// does not immediately re-checkpoint state the recovered checkpoint
	// already covers.
	if info, ok := wl.CheckpointInfo(); ok {
		db.ckptLastSeq = uint64(info.Seq)
	}
	db.ckptLastBytes = wl.Stats().BytesWritten
	db.durable = wl
	db.mvcc.SetOnCommitPublish(db.walCommitHook)
	return db, nil
}

// loadCheckpoint folds the newest complete checkpoint's records into the
// (empty) database, returning how many records it applied (0 if no
// checkpoint exists).
func (db *DB) loadCheckpoint(wl *wal.DurableLog) (int, error) {
	info, err := wl.ReplayCheckpoint(db.applyRecoveredRecord)
	if errors.Is(err, wal.ErrNoCheckpoint) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return info.Records, nil
}

// replayWAL applies every recovered post-checkpoint record to the
// database. Each commit record is applied as one snapshot-isolation
// transaction, so a replayed prefix is exactly the state those
// transactions produced.
func (db *DB) replayWAL(wl *wal.DurableLog) error {
	return wl.Replay(db.applyRecoveredRecord)
}

// applyRecoveredRecord folds one recovered record (from a checkpoint or
// the log suffix) into storage through the ordinary commit path.
func (db *DB) applyRecoveredRecord(rec wal.Record) error {
	switch {
	case rec.SafeSnapshot:
		return nil
	case rec.CreateTable != "":
		if _, err := db.table(rec.CreateTable); err == nil {
			return nil
		}
		return db.CreateTable(rec.CreateTable)
	default:
		tx, err := db.Begin(TxOptions{Isolation: RepeatableRead})
		if err != nil {
			return err
		}
		for _, op := range rec.Ops {
			if _, terr := db.table(op.Table); terr != nil {
				// A pre-schema-logging log, or a table whose
				// create-table record was cut off with its tail:
				// recreate it so the row data is not lost.
				if cerr := db.CreateTable(op.Table); cerr != nil {
					tx.Rollback()
					return cerr
				}
			}
			if op.Delete {
				if derr := tx.Delete(op.Table, op.Key); derr != nil && !errors.Is(derr, ErrNotFound) {
					tx.Rollback()
					return derr
				}
			} else if perr := tx.Put(op.Table, op.Key, op.Value); perr != nil {
				tx.Rollback()
				return perr
			}
		}
		return tx.Commit()
	}
}

// walPrepare encodes tx's commit record ahead of the commit-sequence
// assignment and parks it for walCommitHook. Returns (nil, nil) —
// nothing will be logged — when the WAL is not durable or the
// transaction wrote nothing. A record the log cannot accept (its frame
// would exceed wal.MaxRecordSize, which recovery could never read back)
// fails here, BEFORE the commit is published: the transaction must
// abort rather than commit in memory only.
func (db *DB) walPrepare(tx *Tx) (*wal.Pending, error) {
	if db.durable == nil || len(tx.writes) == 0 {
		return nil, nil
	}
	p := db.durable.PrepareRecord(db.buildWALRecord(tx))
	if err := p.Err(); err != nil {
		return nil, fmt.Errorf("pgssi: commit record: %w", err)
	}
	db.walPending.Store(tx.xid, p)
	return p, nil
}

// buildWALRecord assembles tx's commit record from its write set.
func (db *DB) buildWALRecord(tx *Tx) wal.Record {
	rec := wal.Record{Xid: tx.xid}
	for wk, vs := range tx.writes {
		last := vs[len(vs)-1]
		rec.Ops = append(rec.Ops, wal.Op{
			Table:  wk.table,
			Key:    wk.key,
			Value:  last.value,
			Delete: last.deleted,
		})
	}
	return rec
}

// walValidate checks that tx's writes can be logged at all (the frame
// size cap), without encoding or parking anything. Prepare calls it so
// a transaction that could never be made durable is rejected before the
// transaction manager records a yes-vote — CommitPrepared must not be
// the first place the oversize surfaces.
func (db *DB) walValidate(tx *Tx) error {
	if db.durable == nil || len(tx.writes) == 0 {
		return nil
	}
	if err := wal.ValidateRecord(db.buildWALRecord(tx)); err != nil {
		return fmt.Errorf("pgssi: commit record: %w", err)
	}
	return nil
}

// walCommitHook is the mvcc.Config.OnCommitPublish hook: it reserves the
// committing transaction's log position inside the publication critical
// section. Cheap by construction — patch eight bytes, append to the
// flush queue — all encoding happened in walPrepare and all I/O happens
// on the WAL flusher goroutine.
func (db *DB) walCommitHook(xid mvcc.TxID, seq mvcc.SeqNo) {
	v, ok := db.walPending.LoadAndDelete(xid)
	if !ok {
		return
	}
	db.durable.Enqueue(v.(*wal.Pending), seq)
}

// walAbandon discards a parked record whose transaction did not commit.
func (db *DB) walAbandon(tx *Tx) {
	if db.durable != nil {
		db.walPending.Delete(tx.xid)
	}
}

// walFinish completes the durable commit path after the MVCC commit
// published: wait out the group-commit fsync covering tx's record (the
// safe-snapshot marker, if the commit left the system quiescent, was
// already emitted by publishCommit; markers are never waited on). A
// durability failure is returned to the committer — the commit is
// visible in memory, but the log is poisoned and every later commit
// will fail the same way.
func (db *DB) walFinish(pend *wal.Pending) error {
	if pend == nil {
		return nil
	}
	return pend.Wait()
}

// WALRecoveredRecords reports how many records OpenDir recovered:
// checkpoint records plus the replayed post-checkpoint log suffix (0 for
// a fresh directory or a non-durable DB).
func (db *DB) WALRecoveredRecords() int {
	return db.recoveredRecords
}

// WALStats returns the durable WAL's counters (zero value for a
// non-durable DB). Stats.Appends/Stats.Fsyncs is the group-commit
// amortization ratio.
func (db *DB) WALStats() wal.Stats {
	if db.durable == nil {
		return wal.Stats{}
	}
	return db.durable.Stats()
}

// DurableWAL returns the on-disk WAL, or nil if the DB was not opened
// with one. Replicas subscribe to it directly (it implements
// wal.Stream).
func (db *DB) DurableWAL() *wal.DurableLog { return db.durable }
