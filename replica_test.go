package pgssi_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"pgssi"
	"pgssi/internal/wal"
)

// TestReplicaHaltsOnApplyError pins the apply-error contract: the first
// failing apply halts the replica, and the error surfaces from every
// observable — never a silently stale read.
func TestReplicaHaltsOnApplyError(t *testing.T) {
	log := wal.NewLog()
	rep, err := pgssi.NewReplica(log, nil)
	mustExec(t, err)
	defer rep.Close()

	// A commit against a table the replica does not have fails to apply.
	log.Append(wal.Record{Seq: 1, Xid: 1, Ops: []wal.Op{{Table: "missing", Key: "k", Value: []byte("v")}}})

	deadline := time.Now().Add(5 * time.Second)
	for rep.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("replica did not halt on the failing apply")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(rep.Err(), pgssi.ErrReplicaHalted) {
		t.Fatalf("halt error = %v, want ErrReplicaHalted", rep.Err())
	}
	if _, err := rep.BeginReadOnly(pgssi.ReplicaTxOptions{}); !errors.Is(err, pgssi.ErrReplicaHalted) {
		t.Fatalf("BeginReadOnly on halted replica = %v, want ErrReplicaHalted", err)
	}
	n, err := rep.AppliedRecords()
	if !errors.Is(err, pgssi.ErrReplicaHalted) {
		t.Fatalf("AppliedRecords on halted replica = %v, want ErrReplicaHalted", err)
	}
	if n != 0 {
		t.Fatalf("halted replica applied %d records, want 0 (frozen at divergence)", n)
	}
	if err := rep.WaitApplied(1); !errors.Is(err, pgssi.ErrReplicaHalted) {
		t.Fatalf("WaitApplied on halted replica = %v, want ErrReplicaHalted", err)
	}

	// Appending more records must not revive it.
	log.Append(wal.Record{Seq: 2, Xid: 2, SafeSnapshot: true})
	time.Sleep(10 * time.Millisecond)
	if n, _ := rep.AppliedRecords(); n != 0 {
		t.Fatalf("halted replica kept applying (%d records)", n)
	}
}

// TestNewReplicaErrorPathClosesEngine pins the construction error path:
// a failed NewReplica must not leak its engine's background goroutines
// (the epoch reclaimer, most notably).
func TestNewReplicaErrorPathClosesEngine(t *testing.T) {
	log := wal.NewLog()
	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		// Duplicate table names make the second CreateTable fail.
		if _, err := pgssi.NewReplica(log, []string{"kv", "kv"}); err == nil {
			t.Fatal("NewReplica with duplicate tables succeeded")
		}
	}
	// Engine shutdown is synchronous in Close, but give the runtime a
	// moment to reap anything in flight before counting.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d across 50 failed NewReplica calls: engine leaked",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplicaSeqPositions pins AppliedSeq/SafeSeq: they track the
// master's commit sequence and converge at quiescence.
func TestReplicaSeqPositions(t *testing.T) {
	walLog := wal.NewLog()
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	mustExec(t, db.CreateTable("kv"))
	db.AttachWAL(walLog)

	rep, err := pgssi.NewReplica(walLog, []string{"kv"})
	mustExec(t, err)
	defer rep.Close()
	if rep.AppliedSeq() != 0 || rep.SafeSeq() != 0 {
		t.Fatalf("fresh replica at %d/%d, want 0/0", rep.AppliedSeq(), rep.SafeSeq())
	}

	for i := 0; i < 3; i++ {
		mustExec(t, db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
			return tx.Insert("kv", fmt.Sprintf("k%d", i), []byte("v"))
		}))
	}
	mustExec(t, rep.WaitApplied(walLog.Len()))
	if rep.AppliedSeq() != 3 || rep.SafeSeq() != 3 {
		t.Fatalf("replica at %d/%d after 3 commits, want 3/3", rep.AppliedSeq(), rep.SafeSeq())
	}
}

// TestAbortCompletesSafeSnapshot pins the liveness fix for wait-for-
// safe: a commit that happens while another transaction is in flight
// gets no marker, and if that other transaction then ABORTS, the abort
// must complete the safe point (§7.2 — a snapshot is safe once
// concurrent transactions complete, however they end). Without the
// abort-path marker the deferrable begin below blocks forever.
func TestAbortCompletesSafeSnapshot(t *testing.T) {
	walLog := wal.NewLog()
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	mustExec(t, db.CreateTable("kv"))
	db.AttachWAL(walLog)

	rep, err := pgssi.NewReplica(walLog, []string{"kv"})
	mustExec(t, err)
	defer rep.Close()

	// loser is concurrent with the commit of winner, so winner's commit
	// emits no safe-snapshot marker.
	loser, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	mustExec(t, err)
	mustExec(t, loser.Put("kv", "doomed", []byte("x")))
	mustExec(t, db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
		return tx.Put("kv", "winner", []byte("1"))
	}))

	// The replica applies the commit but has no safe point past it yet.
	mustExec(t, rep.WaitApplied(1))
	if rep.SafeSeq() >= rep.AppliedSeq() {
		t.Fatalf("expected replica past its safe point (applied %d, safe %d)", rep.AppliedSeq(), rep.SafeSeq())
	}

	begun := make(chan error, 1)
	go func() {
		tx, err := rep.BeginReadOnly(pgssi.ReplicaTxOptions{Serializable: true, WaitSafe: true})
		if err == nil {
			defer tx.Rollback()
			if !tx.OnSafeSnapshot() {
				err = errors.New("deferrable begin returned a non-safe snapshot")
			} else if v, gerr := tx.Get("kv", "winner"); gerr != nil || string(v) != "1" {
				err = fmt.Errorf("safe snapshot missing the winner commit: %q, %v", v, gerr)
			}
		}
		begun <- err
	}()
	select {
	case err := <-begun:
		t.Fatalf("wait-for-safe returned before the concurrent transaction finished: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	// The abort is what makes the snapshot safe.
	mustExec(t, loser.Rollback())
	select {
	case err := <-begun:
		mustExec(t, err)
	case <-time.After(5 * time.Second):
		t.Fatal("abort did not complete the safe point: wait-for-safe still blocked")
	}
}

// TestReplicaWaitSafeUnderWorkload hammers wait-for-safe begins while
// the master runs a concurrent write workload; every begin must land on
// a safe snapshot. Run under -race this also exercises the apply-loop /
// reader synchronization.
func TestReplicaWaitSafeUnderWorkload(t *testing.T) {
	walLog := wal.NewLog()
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	mustExec(t, db.CreateTable("kv"))
	db.AttachWAL(walLog)

	rep, err := pgssi.NewReplica(walLog, []string{"kv"})
	mustExec(t, err)
	defer rep.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
					return tx.Put("kv", fmt.Sprintf("w%d", w), []byte{byte(i)})
				})
			}
		}(w)
	}

	for i := 0; i < 100; i++ {
		tx, err := rep.BeginReadOnly(pgssi.ReplicaTxOptions{Serializable: true, WaitSafe: true})
		mustExec(t, err)
		if !tx.OnSafeSnapshot() {
			t.Fatalf("begin %d: serializable replica read not on a safe snapshot", i)
		}
		if err := tx.Scan("kv", "", "", func(string, []byte) bool { return true }); err != nil {
			t.Fatalf("begin %d scan: %v", i, err)
		}
		mustExec(t, tx.Commit())
	}
	close(stop)
	wg.Wait()
}

// TestReplicaSessionRefusesWrites pins the replica session contract
// over the shared session surface.
func TestReplicaSessionRefusesWrites(t *testing.T) {
	walLog := wal.NewLog()
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	mustExec(t, db.CreateTable("kv"))
	db.AttachWAL(walLog)
	mustExec(t, db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
		return tx.Insert("kv", "k", []byte("v"))
	}))

	rep, err := pgssi.NewReplica(walLog, []string{"kv"})
	mustExec(t, err)
	defer rep.Close()
	mustExec(t, rep.WaitApplied(2))

	sess := rep.NewSession()
	defer sess.Close()
	if _, st := sess.Begin(pgssi.Serializable, false, false); st != pgssi.StatusReadOnlyTx {
		t.Fatalf("read-write begin on replica session: %v", st)
	}
	if st := sess.CreateTable("t2"); st != pgssi.StatusReadOnlyTx {
		t.Fatalf("ddl on replica session: %v", st)
	}
	h, st := sess.Begin(pgssi.Serializable, true, true)
	if !st.OK() {
		t.Fatalf("read-only begin: %v", st)
	}
	if v, st := sess.Get(h, "kv", "k"); !st.OK() || string(v) != "v" {
		t.Fatalf("get = %q, %v", v, st)
	}
	if st := sess.Put(h, "kv", "k", []byte("w")); st != pgssi.StatusReadOnlyTx {
		t.Fatalf("put in read-only txn: %v", st)
	}
	if st := sess.Commit(h); !st.OK() {
		t.Fatalf("commit: %v", st)
	}
}
