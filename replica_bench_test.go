package pgssi_test

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"pgssi"
	"pgssi/internal/router"
	"pgssi/internal/wal"
)

// BenchmarkReplicaFleetRead measures routed serializable read-only
// throughput against a primary plus N streaming replicas, the read-
// scaling claim of the replication tier: replicas=0 is the single-node
// baseline (every read on the primary), replicas=1/3 route reads to
// safe snapshots on the fleet. A light write trickle keeps the WAL
// moving so markers and lag are real, not a frozen snapshot.
//
// On a single-CPU runner the fleet shares one core with the primary, so
// wall-clock scaling understates what distinct machines would show; the
// routing split (reported as replica-share) is the portion of reads the
// primary no longer serves.
func BenchmarkReplicaFleetRead(b *testing.B) {
	for _, n := range []int{0, 1, 3} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			benchFleetRead(b, n)
		})
	}
}

func benchFleetRead(b *testing.B, replicas int) {
	const keys = 4096
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	if err := db.CreateTable("kv"); err != nil {
		b.Fatal(err)
	}
	walLog := wal.NewLog()
	db.AttachWAL(walLog)
	for i := 0; i < keys; i += 128 {
		err := db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
			for j := i; j < i+128; j++ {
				if err := tx.Insert("kv", fmt.Sprintf("k%06d", j), []byte("v0")); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}

	var members []router.Member
	for r := 0; r < replicas; r++ {
		rep, err := pgssi.NewReplica(walLog, []string{"kv"})
		if err != nil {
			b.Fatal(err)
		}
		defer rep.Close()
		if err := rep.WaitApplied(walLog.Len()); err != nil {
			b.Fatal(err)
		}
		members = append(members, router.Member{
			Name:    fmt.Sprintf("r%d", r),
			Backend: rep.NewSession(),
			Status:  router.ReplicaStatus(rep),
		})
	}
	rt := router.New(
		router.Member{Name: "primary", Backend: db.NewSession(), Status: router.PrimaryStatus(db)},
		members,
		router.Config{MaxLag: 1 << 20},
	)
	defer rt.Close()

	// Write trickle: one writer advancing the WAL throughout the
	// measurement so replicas are applying, not idle.
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		rng := rand.New(rand.NewSource(1))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
				return tx.Put("kv", fmt.Sprintf("k%06d", rng.Intn(keys)), []byte(fmt.Sprintf("v%d", i)))
			})
		}
	}()

	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sess := rt.NewSession()
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			h, st := sess.Begin(pgssi.Serializable, true, true)
			if !st.OK() {
				b.Fatalf("begin: %v", st)
			}
			for r := 0; r < 8; r++ {
				k := fmt.Sprintf("k%06d", rng.Intn(keys))
				if _, st := sess.Get(h, "kv", k); !st.OK() && st != pgssi.StatusNotFound {
					b.Fatalf("get %s: %v", k, st)
				}
			}
			if st := sess.Commit(h); !st.OK() {
				b.Fatalf("commit: %v", st)
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-writerDone

	stats := rt.Stats()
	total := stats.ReplicaBegins + stats.PrimaryBegins
	if total > 0 {
		b.ReportMetric(float64(stats.ReplicaBegins)/float64(total), "replica-share")
	}
	b.ReportMetric(float64(stats.Fallbacks), "fallbacks")
}
