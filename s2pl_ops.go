package pgssi

import (
	"pgssi/internal/btree"
	"pgssi/internal/core"
	"pgssi/internal/s2pl"
)

// Strict two-phase locking operation paths (§8's baseline). Reads take
// shared locks on the tuples they read and on the index leaf pages they
// traverse (index-range locking for phantom prevention); writes take
// exclusive locks; intention locks are taken at relation level. All
// locks are held until commit or abort. Reads see the latest committed
// state via per-statement snapshots, which is safe because the data read
// is lock-protected against concurrent modification.
//
// S2PL transactions are intended to run against a database where every
// transaction uses S2PL, as in the paper's benchmark configurations;
// mixing them with snapshot-based transactions provides each regime's
// guarantees only against its own kind.

// s2plTuple is the lock target for a row under 2PL. Unlike SIREAD tuple
// locks it is not qualified by heap page: logical-row locking is what a
// classic lock manager does.
func s2plTuple(table, key string) core.Target {
	return core.TupleTarget(table, 0, key)
}

func (tx *Tx) s2plAcquire(t core.Target, mode s2pl.Mode) error {
	if err := tx.db.s2pl.Acquire(tx.xid, t, mode); err != nil {
		return mapStorageErr(err)
	}
	return nil
}

func (tx *Tx) s2plGet(ti *tableInfo, key string) ([]byte, error) {
	if err := tx.s2plAcquire(core.RelationTarget(ti.name), s2pl.ModeIS); err != nil {
		return nil, err
	}
	// Lock the leaf page first (covers the gap if the key is absent),
	// then the tuple. Re-check the leaf after locking in case of a
	// concurrent split.
	if err := tx.s2plLockLeaf(ti.pk, ti.pkName, key, s2pl.ModeS); err != nil {
		return nil, err
	}
	if err := tx.s2plAcquire(s2plTuple(ti.name, key), s2pl.ModeS); err != nil {
		return nil, err
	}
	snap := tx.db.mvcc.TakeSnapshot()
	res := ti.heap.Get(key, snap, tx.xid, tx.db.mvcc)
	if res.Tuple == nil {
		return nil, ErrNotFound
	}
	return res.Tuple.Value, nil
}

// s2plLockLeaf locks the index leaf page that holds (or would hold) key,
// looping until the lock covers the current leaf (a split may move the
// key between lookup and lock acquisition).
func (tx *Tx) s2plLockLeaf(tree *btree.Tree, rel, key string, mode s2pl.Mode) error {
	for {
		_, _, leaf := tree.Lookup(key, nil)
		if err := tx.s2plAcquire(core.PageTarget(rel, int64(leaf)), mode); err != nil {
			return err
		}
		_, _, again := tree.Lookup(key, nil)
		if again == leaf {
			return nil
		}
	}
}

func (tx *Tx) s2plInsert(ti *tableInfo, key string, value []byte) error {
	if err := tx.s2plAcquire(core.RelationTarget(ti.name), s2pl.ModeIX); err != nil {
		return err
	}
	if err := tx.s2plLockLeaf(ti.pk, ti.pkName, key, s2pl.ModeX); err != nil {
		return err
	}
	if err := tx.s2plAcquire(s2plTuple(ti.name, key), s2pl.ModeX); err != nil {
		return err
	}
	snap := tx.db.mvcc.TakeSnapshot()
	if _, err := ti.heap.Insert(key, value, tx.xid, tx.currentSubID(), snap, tx.db.mvcc, tx.db.wg); err != nil {
		return mapStorageErr(err)
	}
	_, _, splits := ti.pk.Insert(key, "")
	for _, sp := range splits {
		tx.db.s2pl.PageSplit(ti.pkName, core.PageTarget(ti.pkName, int64(sp.Left)), core.PageTarget(ti.pkName, int64(sp.Right)))
	}
	if err := tx.insertSecondaries(ti, key, value); err != nil {
		return err
	}
	tx.recordWrite(ti.name, key, value, false)
	return nil
}

func (tx *Tx) s2plUpdate(ti *tableInfo, key string, value []byte, del bool) error {
	if err := tx.s2plAcquire(core.RelationTarget(ti.name), s2pl.ModeIX); err != nil {
		return err
	}
	if err := tx.s2plAcquire(s2plTuple(ti.name, key), s2pl.ModeX); err != nil {
		return err
	}
	snap := tx.db.mvcc.TakeSnapshot()
	var err error
	if del {
		_, err = ti.heap.Delete(key, tx.xid, tx.currentSubID(), snap, tx.db.mvcc, tx.db.wg, nil)
	} else {
		_, err = ti.heap.Update(key, value, tx.xid, tx.currentSubID(), snap, tx.db.mvcc, tx.db.wg, nil)
	}
	if err != nil {
		return mapStorageErr(err)
	}
	if !del {
		if err := tx.insertSecondaries(ti, key, value); err != nil {
			return err
		}
	}
	tx.recordWrite(ti.name, key, value, del)
	return nil
}

// s2plScan implements index-range scans under 2PL: it locks every leaf
// page in the range in shared mode (looping to a fixpoint, since pages
// observed can change until they are locked), then locks each matching
// tuple, then reads. mapEntry converts an index entry (key, stored
// value) into the primary key to fetch.
func (tx *Tx) s2plScan(ti *tableInfo, tree *btree.Tree, rel, lo, hi string, mapEntry func(entryKey, val string) (string, bool), fn func(key string, value []byte) bool) error {
	if err := tx.s2plAcquire(core.RelationTarget(ti.name), s2pl.ModeIS); err != nil {
		return err
	}
	locked := make(map[btree.PageID]bool)
	for {
		pages := tree.Range(lo, hi, nil, func(string, string) bool { return true })
		progress := false
		for _, p := range pages {
			if !locked[p] {
				if err := tx.s2plAcquire(core.PageTarget(rel, int64(p)), s2pl.ModeS); err != nil {
					return err
				}
				locked[p] = true
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Pages are stable now: collect entries and lock tuples.
	type entry struct{ pk string }
	var entries []entry
	tree.Range(lo, hi, nil, func(k, v string) bool {
		if pk, ok := mapEntry(k, v); ok {
			entries = append(entries, entry{pk})
		}
		return true
	})
	for _, e := range entries {
		if err := tx.s2plAcquire(s2plTuple(ti.name, e.pk), s2pl.ModeS); err != nil {
			return err
		}
	}
	snap := tx.db.mvcc.TakeSnapshot()
	for _, e := range entries {
		res := ti.heap.Get(e.pk, snap, tx.xid, tx.db.mvcc)
		if res.Tuple == nil {
			continue
		}
		if !fn(e.pk, res.Tuple.Value) {
			break
		}
	}
	return nil
}
