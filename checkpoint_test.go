package pgssi_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pgssi"
	"pgssi/internal/wal"
)

func ckptPut(t *testing.T, db *pgssi.DB, key, val string) {
	t.Helper()
	err := db.RunTx(pgssi.TxOptions{Isolation: pgssi.RepeatableRead}, func(tx *pgssi.Tx) error {
		return tx.Put("t", key, []byte(val))
	})
	if err != nil {
		t.Fatalf("put %s: %v", key, err)
	}
}

func walFilesIn(t *testing.T, dir, suffix string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), suffix) {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestDBCheckpointCompactsRecovery is the engine-level round trip: a
// history of repeated overwrites, a manual checkpoint, a short suffix,
// and a reopen that must see every row while replaying only the
// checkpoint image plus the suffix — not the full history.
func TestDBCheckpointCompactsRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := pgssi.OpenDir(dir, pgssi.Config{FsyncMode: pgssi.FsyncBatch, WALSegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	// 200 commits over 10 keys: the log holds 200 records, the state 10.
	const commits, keys = 200, 10
	for i := 0; i < commits; i++ {
		ckptPut(t, db, fmt.Sprintf("k%02d", i%keys), fmt.Sprintf("v%03d", i))
	}
	segsBefore := len(walFilesIn(t, dir, ".wal"))
	if segsBefore < 4 {
		t.Fatalf("want >= 4 segments before checkpoint, got %d", segsBefore)
	}

	info, err := db.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// The image batches row images, so record count is small: at least
	// the schema record plus one batch of rows.
	if info.Seq == 0 || info.Records < 2 {
		t.Fatalf("checkpoint info = %+v, want seq > 0 and >= 2 records (schema + row batch)", info)
	}
	st := db.WALStats()
	if st.Checkpoints != 1 || st.SegmentsGCed == 0 || st.GCFloorSeq == 0 {
		t.Fatalf("stats after checkpoint: %+v", st)
	}
	if got := len(walFilesIn(t, dir, ".wal")); got >= segsBefore {
		t.Fatalf("GC removed nothing: %d segments before, %d after", segsBefore, got)
	}
	// A second checkpoint with no intervening commits resolves against
	// the existing one instead of blocking or erroring.
	again, err := db.Checkpoint()
	if err != nil || again.Seq != info.Seq {
		t.Fatalf("idempotent re-checkpoint = %+v, %v, want seq %d", again, err, info.Seq)
	}

	// A short suffix after the checkpoint.
	for i := 0; i < 5; i++ {
		ckptPut(t, db, fmt.Sprintf("s%d", i), "suffix")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := pgssi.OpenDir(dir, pgssi.Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	// Recovery folded the checkpoint image plus the 5-commit suffix —
	// nowhere near the 200-commit history.
	if n := re.WALRecoveredRecords(); n < 2+5 || n >= commits/2 {
		t.Fatalf("recovered %d records, want checkpoint image + suffix, far below %d", n, commits)
	}
	if ci, ok := re.CheckpointInfo(); !ok || ci.Seq != info.Seq {
		t.Fatalf("reopened CheckpointInfo = %+v ok=%v, want seq %d", ci, ok, info.Seq)
	}
	tx, err := re.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	for k := 0; k < keys; k++ {
		// Final overwrite of key k in the loop above: the largest i < 200
		// with i % keys == k.
		want := fmt.Sprintf("v%03d", commits-keys+k)
		got, err := tx.Get("t", fmt.Sprintf("k%02d", k))
		if err != nil || string(got) != want {
			t.Fatalf("k%02d after recovery = %q, %v, want %q", k, got, err, want)
		}
	}
	for i := 0; i < 5; i++ {
		if got, err := tx.Get("t", fmt.Sprintf("s%d", i)); err != nil || string(got) != "suffix" {
			t.Fatalf("suffix row s%d = %q, %v", i, got, err)
		}
	}
	// New commits must take sequence numbers beyond the recovered
	// history, not reuse logged ones.
	seqBefore := re.CurrentSeq()
	ckptPut(t, re, "post", "recovery")
	if re.CurrentSeq() <= seqBefore {
		t.Fatalf("CurrentSeq did not advance past recovered history: %d -> %d", seqBefore, re.CurrentSeq())
	}
}

// TestCheckpointEveryAutoTrigger: with CheckpointEvery set, a sustained
// write load must checkpoint and GC on its own, keeping the segment
// count bounded instead of growing with history.
func TestCheckpointEveryAutoTrigger(t *testing.T) {
	dir := t.TempDir()
	db, err := pgssi.OpenDir(dir, pgssi.Config{
		FsyncMode:       pgssi.FsyncBatch,
		WALSegmentSize:  2048,
		CheckpointEvery: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	val := strings.Repeat("x", 64)
	deadline := time.Now().Add(15 * time.Second)
	i := 0
	for db.WALStats().Checkpoints < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no automatic checkpoint after %d commits: %+v", i, db.WALStats())
		}
		ckptPut(t, db, fmt.Sprintf("k%02d", i%16), val)
		i++
	}
	st := db.WALStats()
	if st.SegmentsGCed == 0 || st.GCFloorSeq == 0 || st.CheckpointSeq == 0 {
		t.Fatalf("auto checkpoints never GC'd: %+v", st)
	}
	// The oldest on-disk segment must sit above segment 1: the early log
	// has been truncated away.
	segs := walFilesIn(t, dir, ".wal")
	if len(segs) == 0 || segs[0] <= fmt.Sprintf("%016d.wal", 1) {
		t.Fatalf("first segment still on disk after GC: %v", segs)
	}
	// And the data survived it all.
	tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if got, err := tx.Get("t", "k00"); err != nil || len(got) == 0 {
		t.Fatalf("k00 after auto-checkpoint: %q, %v", got, err)
	}
}

// failFS injects open/create failures into an otherwise real
// filesystem, to drive pgssi.OpenDir down its error paths.
type failFS struct {
	wal.FS
	failCreate    atomic.Bool
	opens         atomic.Int32
	failOpenAfter atomic.Int32 // fail the (n+1)th and later Opens; -1 = never
}

func newFailFS() *failFS {
	f := &failFS{FS: wal.NewFaultFS()}
	f.failOpenAfter.Store(-1)
	return f
}

func (f *failFS) Create(name string) (wal.File, error) {
	if f.failCreate.Load() {
		return nil, errors.New("failFS: create refused")
	}
	return f.FS.Create(name)
}

func (f *failFS) Open(name string) (wal.File, error) {
	if limit := f.failOpenAfter.Load(); limit >= 0 && f.opens.Add(1) > limit {
		return nil, errors.New("failFS: open refused")
	}
	return f.FS.Open(name)
}

// TestOpenDirFailureLeaksNothing pins the OpenDir error paths: whether
// the WAL fails to open or recovery fails mid-replay, the half-built
// engine (and its background goroutines) must be torn down, not leaked.
func TestOpenDirFailureLeaksNothing(t *testing.T) {
	base := t.TempDir()
	// Seed a directory with real history so reopen has something to
	// scan, load, and replay.
	seed := filepath.Join(base, "seed")
	db, err := pgssi.OpenDir(seed, pgssi.Config{FsyncMode: pgssi.FsyncAlways, WALSegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ckptPut(t, db, fmt.Sprintf("k%02d", i), "v")
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 30; i++ {
		ckptPut(t, db, fmt.Sprintf("k%02d", i), "v")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	goroutines := runtime.NumGoroutine()
	sawFailure := false

	// Path 1: the WAL itself fails to open (segment creation refused on
	// a fresh directory).
	{
		ffs := newFailFS()
		ffs.failCreate.Store(true)
		_, err := pgssi.OpenDir(filepath.Join(base, "fresh"), pgssi.Config{WALFS: ffs})
		if err == nil {
			t.Fatal("OpenDir succeeded with create refused")
		}
		sawFailure = true
	}

	// Path 2 sweep: fail the k-th file open during recovery, for every k
	// up to more opens than recovery performs. Each attempt either fails
	// cleanly or succeeds (recovery tolerating the damage) — and either
	// way must release every goroutine it started.
	recoveryFailures := 0
	for k := int32(0); k <= 8; k++ {
		ffs := newFailFS()
		ffs.failOpenAfter.Store(k)
		re, err := pgssi.OpenDir(seed, pgssi.Config{WALFS: ffs})
		if err != nil {
			recoveryFailures++
			continue
		}
		re.Close()
	}
	if !sawFailure || recoveryFailures == 0 {
		t.Fatalf("injected failures did not fire (create=%v, recovery=%d): the sweep is vacuous",
			sawFailure, recoveryFailures)
	}

	// goleak-style: the count must settle back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutines {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines grew from %d to %d across failed OpenDirs: engine leaked\n%s",
				goroutines, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPoisonedWALSurfacesAtBegin: once the WAL is poisoned, new
// transactions are refused up front with ErrWALPoisoned — at Begin, and
// as StatusDurabilityLost at the session surface — instead of letting
// work proceed to a doomed commit.
func TestPoisonedWALSurfacesAtBegin(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS()
	db, err := pgssi.OpenDir(dir, pgssi.Config{WALFS: ffs, FsyncMode: pgssi.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	ckptPut(t, db, "a", "1")

	ffs.FailSyncs(errors.New("disk on fire"))
	err = db.RunTx(pgssi.TxOptions{Isolation: pgssi.RepeatableRead}, func(tx *pgssi.Tx) error {
		return tx.Put("t", "b", []byte("2"))
	})
	if err == nil {
		t.Fatal("commit acknowledged over a failed fsync")
	}
	ffs.FailSyncs(nil)

	if !db.WALStats().Poisoned {
		t.Fatalf("WALStats not poisoned: %+v", db.WALStats())
	}
	if _, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead}); !errors.Is(err, pgssi.ErrWALPoisoned) {
		t.Fatalf("Begin on poisoned WAL = %v, want ErrWALPoisoned", err)
	}
	s := db.NewSession()
	defer s.Close()
	if _, st := s.Begin(pgssi.Serializable, false, false); st != pgssi.StatusDurabilityLost {
		t.Fatalf("Session.Begin on poisoned WAL = %v, want StatusDurabilityLost", st)
	}
	if got := pgssi.StatusDurabilityLost.Err(); !errors.Is(got, pgssi.ErrWALPoisoned) {
		t.Fatalf("StatusDurabilityLost.Err() = %v", got)
	}
	// A checkpoint must also refuse: GC over a poisoned log could drop
	// the only durable copy of acknowledged commits.
	if _, err := db.Checkpoint(); err == nil {
		t.Fatal("Checkpoint succeeded on a poisoned WAL")
	}
}

// TestReplicaReseedFromDurableLog: a fresh replica attaching to a
// primary whose log has already been GC'd must detect the truncated
// resume position, seed itself from the checkpoint, and then follow the
// live stream — in-process, no network.
func TestReplicaReseedFromDurableLog(t *testing.T) {
	dir := t.TempDir()
	db, err := pgssi.OpenDir(dir, pgssi.Config{FsyncMode: pgssi.FsyncBatch, WALSegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ckptPut(t, db, fmt.Sprintf("k%02d", i%10), fmt.Sprintf("v%02d", i))
	}
	info, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	st := db.WALStats()
	if st.GCFloorSeq == 0 {
		t.Fatalf("checkpoint GC'd nothing, the reseed path won't trigger: %+v", st)
	}
	// Resuming from zero is now below the floor.
	if _, _, err := db.DurableWAL().SubscribeFromChecked(0); !errors.Is(err, wal.ErrSeqTruncated) {
		t.Fatalf("SubscribeFromChecked(0) after GC = %v, want ErrSeqTruncated", err)
	}

	rep, err := pgssi.NewReplica(db.DurableWAL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	want := db.CurrentSeq()
	deadline := time.Now().Add(10 * time.Second)
	for rep.AppliedSeq() < want {
		if rep.Err() != nil {
			t.Fatalf("replica halted instead of re-seeding: %v", rep.Err())
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at seq %d, want %d", rep.AppliedSeq(), want)
		}
		time.Sleep(time.Millisecond)
	}
	if rep.AppliedSeq() < uint64(info.Seq) || rep.SafeSeq() < uint64(info.Seq) {
		t.Fatalf("reseeded replica positions applied=%d safe=%d, want >= checkpoint seq %d",
			rep.AppliedSeq(), rep.SafeSeq(), info.Seq)
	}

	// Live commits after the reseed still flow.
	for i := 0; i < 5; i++ {
		ckptPut(t, db, fmt.Sprintf("live%d", i), "after-reseed")
	}
	want = db.CurrentSeq()
	for rep.AppliedSeq() < want {
		if time.Now().After(deadline) {
			t.Fatalf("replica did not follow live stream past reseed: at %d, want %d", rep.AppliedSeq(), want)
		}
		time.Sleep(time.Millisecond)
	}

	// Row-for-row convergence on a safe snapshot.
	tx, err := rep.BeginReadOnly(pgssi.ReplicaTxOptions{Serializable: true, WaitSafe: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if !tx.OnSafeSnapshot() {
		t.Fatal("reseeded replica read not on a safe snapshot")
	}
	ptx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ptx.Rollback()
	rows := 0
	if err := ptx.Scan("t", "", "", func(k string, v []byte) bool {
		got, gerr := tx.Get("t", k)
		if gerr != nil || string(got) != string(v) {
			t.Fatalf("replica diverged at %q: %q (%v) vs primary %q", k, got, gerr, v)
		}
		rows++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if rows == 0 {
		t.Fatal("primary scan saw no rows: the convergence check is vacuous")
	}
}
