package pgssi_test

import (
	"errors"
	"strings"
	"testing"

	"pgssi"
	"pgssi/internal/wal"
)

// Tests for the engine-level halves of the WAL write-side contracts: a
// commit the log can never accept (oversize record) must fail BEFORE it
// is published or acknowledged, and a CreateTable whose durable append
// fails must not leave a memory-only table behind.

func TestCommitOversizeRecordFailsCleanly(t *testing.T) {
	dir := t.TempDir()
	db, err := pgssi.OpenDir(dir, pgssi.Config{FsyncMode: pgssi.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}

	tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("t", "big", make([]byte, wal.MaxRecordSize)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, wal.ErrRecordTooLarge) {
		t.Fatalf("oversize commit = %v, want ErrRecordTooLarge", err)
	}
	// The failed commit was never published: the key is invisible, and
	// the log is not poisoned — ordinary commits still work.
	tx2, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Get("t", "big"); !errors.Is(err, pgssi.ErrNotFound) {
		t.Fatalf("aborted oversize commit visible: Get err = %v", err)
	}
	if err := tx2.Put("t", "small", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("commit after oversize rejection: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := pgssi.OpenDir(dir, pgssi.Config{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	rtx, err := re.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rtx.Rollback()
	if _, err := rtx.Get("t", "big"); !errors.Is(err, pgssi.ErrNotFound) {
		t.Fatalf("oversize key resurrected by recovery: %v", err)
	}
	if v, err := rtx.Get("t", "small"); err != nil || string(v) != "v" {
		t.Fatalf("acknowledged commit lost: %q, %v", v, err)
	}
}

func TestPrepareOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	db, err := pgssi.OpenDir(dir, pgssi.Config{FsyncMode: pgssi.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("t", "big", make([]byte, wal.MaxRecordSize)); err != nil {
		t.Fatal(err)
	}
	// The yes-vote must be refused up front: CommitPrepared is promised
	// to succeed, and this record can never be logged.
	if err := tx.Prepare("g1"); !errors.Is(err, wal.ErrRecordTooLarge) {
		t.Fatalf("oversize Prepare = %v, want ErrRecordTooLarge", err)
	}
	if gids := db.PreparedTransactions(); len(gids) != 0 {
		t.Fatalf("rejected transaction left prepared: %v", gids)
	}
	if err := tx.Rollback(); !errors.Is(err, pgssi.ErrTxDone) {
		t.Fatalf("rejected transaction not rolled back: %v", err)
	}
}

func TestCreateTableUndoneOnWALFailure(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS()
	db, err := pgssi.OpenDir(dir, pgssi.Config{WALFS: ffs, FsyncMode: pgssi.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("a"); err != nil {
		t.Fatal(err)
	}
	ffs.FailSyncs(errors.New("disk on fire"))
	err = db.CreateTable("b")
	if err == nil {
		t.Fatal("CreateTable acknowledged despite fsync failure")
	}
	if strings.Contains(err.Error(), "already exists") {
		t.Fatalf("wrong error: %v", err)
	}
	// The poisoned log refuses new transactions outright — nothing it
	// admits could ever durably commit.
	if _, terr := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead}); !errors.Is(terr, pgssi.ErrWALPoisoned) {
		t.Fatalf("Begin on poisoned WAL = %v, want ErrWALPoisoned", terr)
	}
	if !db.WALStats().Poisoned {
		t.Fatal("WALStats().Poisoned = false on a poisoned log")
	}
	// The non-durable table must not linger in memory: a retry must
	// report the real (sticky) failure, not a lying "already exists".
	if err := db.CreateTable("b"); err == nil || strings.Contains(err.Error(), "already exists") {
		t.Fatalf("retry after failed CreateTable: %v", err)
	}
}
