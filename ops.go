package pgssi

import (
	"errors"

	"pgssi/internal/btree"
	"pgssi/internal/core"
	"pgssi/internal/mvcc"
	"pgssi/internal/s2pl"
	"pgssi/internal/storage"
)

// storageTuple aliases the heap tuple type for callback signatures.
type storageTuple = storage.Tuple

// This file implements the data operations. Each operation has two
// concurrency-control paths: the MVCC path (ReadCommitted /
// RepeatableRead / Serializable, where Serializable adds the SSI hooks of
// §5.2) and the strict two-phase locking path (§8's baseline).
//
// Serializable reads and writes run their SSI lock-manager steps inside
// the storage layer's per-page read latch (storage/latch.go): reads
// insert their SIREAD lock in the storage.Table.Read callback, writes
// probe the SIREAD table in the Update/Delete check callback. Holding
// the latch across {visibility check, SIREAD insertion} on the read
// side and {xmax stamp, lock-table probe} on the write side guarantees
// every rw-antidependency on a heap tuple is seen by at least one side,
// the way PostgreSQL's buffer page lock does. MVCC conflict-out
// *flagging* may safely happen after the latch is released (scans batch
// it): once the writer is visible in the version chain the conflict can
// always be recovered from MVCC data (§5.2), and the writer stays
// tracked while any concurrent reader is active.
//
// Point reads (Get) take the latch and register per row. Scans run at
// page grain instead: storage.ReadPageBatch groups the range result by
// the heap page of each row's visible version, holds that page's shared
// latch across the whole page's visibility checks, and the engine
// registers the page's SIREAD locks in one core.AcquireTupleLockBatch
// call before the latch drops — the same atomicity unit, amortized from
// O(rows) to O(pages) lock-path acquisitions (§5.2.1's granularity
// hierarchy is what makes the page the natural batch unit; a batch
// never spans pages). Config.DisableScanBatch restores the per-row
// path for A/B comparison.

// Get returns the value of key in table visible to the transaction, or
// ErrNotFound. Under Serializable it acquires a SIREAD lock on the tuple
// (or on the index gap, if the key is absent) and flags MVCC-derived
// rw-conflicts.
func (tx *Tx) Get(table, key string) ([]byte, error) {
	if err := tx.checkUsable(false); err != nil {
		return nil, err
	}
	ti, err := tx.db.table(table)
	if err != nil {
		return nil, err
	}
	if tx.level == SerializableS2PL {
		return tx.s2plGet(ti, key)
	}
	snap := tx.snapshot()
	// Traverse the index, taking the leaf-page SIREAD lock during the
	// traversal (see btree.Lookup): PostgreSQL likewise predicate-locks
	// every leaf page an index scan reads, which is what covers the
	// gap when the key is absent.
	tracking := tx.x != nil && !tx.x.Safe()
	var onPage func(btree.PageID)
	if tracking {
		onPage = func(p btree.PageID) {
			tx.db.ssi.AcquirePageLock(tx.x, ti.pkName, int64(p))
		}
	}
	ti.pk.Lookup(key, onPage)
	var value []byte
	found := false
	// The SSI read check runs in the Read callback, i.e. under the read
	// latch of the page holding the visible version: the SIREAD lock is
	// registered before any writer of that page can stamp the tuple and
	// probe the lock table. Non-tracking reads skip the latch — they
	// register nothing, so they have nothing to lose to the window.
	err = ti.heap.Read(key, snap, tx.xid, tx.db.mvcc, tracking, func(res storage.ReadResult) error {
		if tx.x != nil {
			if res.Tuple != nil {
				if err := tx.db.ssi.CheckRead(tx.x, table, res.Tuple.Page, key, res.ConflictOut, tx.owns(table, key)); err != nil {
					return err
				}
			} else if err := tx.db.ssi.CheckScanConflicts(tx.x, res.ConflictOut); err != nil {
				return err
			}
		}
		if res.Tuple != nil {
			found = true
			value = res.Tuple.Value
		}
		return nil
	})
	if err != nil {
		return nil, mapStorageErr(err)
	}
	if !found {
		return nil, ErrNotFound
	}
	return value, nil
}

// Insert adds a new row. Fails with ErrDuplicateKey if a visible (or
// concurrently committed) row exists.
func (tx *Tx) Insert(table, key string, value []byte) error {
	if err := tx.checkUsable(true); err != nil {
		return err
	}
	ti, err := tx.db.table(table)
	if err != nil {
		return err
	}
	if tx.level == SerializableS2PL {
		return tx.s2plInsert(ti, key, value)
	}
	snap := tx.snapshot()
	_, err = ti.heap.Insert(key, value, tx.xid, tx.currentSubID(), snap, tx.db.mvcc, tx.db.wg)
	if err != nil {
		return mapStorageErr(err)
	}
	page, _, splits := ti.pk.Insert(key, "")
	for _, sp := range splits {
		tx.db.ssi.PageSplit(ti.pkName, int64(sp.Left), int64(sp.Right))
	}
	if tx.x != nil {
		// Heap inserts are checked at relation granularity (new
		// tuples cannot carry tuple locks); phantom conflicts are
		// caught by the index-page check.
		if err := tx.db.ssi.CheckWrite(tx.x, table, -1, ""); err != nil {
			return mapStorageErr(err)
		}
		if err := tx.db.ssi.CheckIndexInsert(tx.x, ti.pkName, int64(page)); err != nil {
			return mapStorageErr(err)
		}
	}
	if err := tx.insertSecondaries(ti, key, value); err != nil {
		return err
	}
	tx.recordWrite(table, key, value, false)
	return nil
}

// insertSecondaries maintains secondary-index entries for (key, value).
func (tx *Tx) insertSecondaries(ti *tableInfo, key string, value []byte) error {
	for _, si := range ti.secondaries() {
		ik, ok := si.fn(key, value)
		if !ok {
			continue
		}
		entry := ik + "\x00" + key
		page, added, splits := si.tree.Insert(entry, key)
		for _, sp := range splits {
			tx.db.ssi.PageSplit(si.name, int64(sp.Left), int64(sp.Right))
			if tx.level == SerializableS2PL {
				tx.db.s2pl.PageSplit(si.name, core.PageTarget(si.name, int64(sp.Left)), core.PageTarget(si.name, int64(sp.Right)))
			}
		}
		if !added {
			continue
		}
		if tx.x != nil {
			if err := tx.db.ssi.CheckIndexInsert(tx.x, si.name, int64(page)); err != nil {
				return mapStorageErr(err)
			}
		}
		if tx.level == SerializableS2PL {
			if err := tx.db.s2pl.Acquire(tx.xid, core.PageTarget(si.name, int64(page)), s2pl.ModeX); err != nil {
				return mapStorageErr(err)
			}
		}
	}
	return nil
}

// Put upserts: it updates key if a visible row exists and inserts it
// otherwise — the primitive the session layer (and the wire protocol's
// OpPut) exposes. A concurrent insert racing the not-found→insert step
// surfaces through the usual rules (duplicate key at this snapshot, or
// a serialization failure from first-updater-wins), so the loop below
// only follows the one benign hop.
func (tx *Tx) Put(table, key string, value []byte) error {
	err := tx.Update(table, key, value)
	if errors.Is(err, ErrNotFound) {
		return tx.Insert(table, key, value)
	}
	return err
}

// Update replaces the value of an existing row, following snapshot
// isolation's first-updater-wins rule (blocking on an in-progress writer,
// then failing with a serialization error if it committed).
func (tx *Tx) Update(table, key string, value []byte) error {
	if err := tx.checkUsable(true); err != nil {
		return err
	}
	ti, err := tx.db.table(table)
	if err != nil {
		return err
	}
	if tx.level == SerializableS2PL {
		return tx.s2plUpdate(ti, key, value, false)
	}
	snap := tx.snapshot()
	check := tx.writeCheck(table, key)
	_, serr := ti.heap.Update(key, value, tx.xid, tx.currentSubID(), snap, tx.db.mvcc, tx.db.wg, check)
	if serr != nil {
		if tx.level == ReadCommitted {
			// READ COMMITTED follows the update chain with a fresh
			// snapshot rather than failing (EvalPlanQual).
			return tx.readCommittedRetry(func() error {
				if _, e := ti.heap.Update(key, value, tx.xid, tx.currentSubID(), tx.db.mvcc.TakeSnapshot(), tx.db.mvcc, tx.db.wg, check); e != nil {
					return e
				}
				return tx.finishUpdate(ti, table, key, value)
			}, serr)
		}
		return mapStorageErr(serr)
	}
	return tx.finishUpdate(ti, table, key, value)
}

// writeCheck returns the SSI write check a serializable transaction runs
// inside the heap write path, under the superseded version's page latch
// (storage/latch.go): the finest-to-coarsest SIREAD probe, followed by
// the §7.3 drop of the transaction's own tuple SIREAD lock, which is
// safe because the tuple write lock (the just-stamped xmax) now protects
// the read. Returns nil for non-serializable transactions.
func (tx *Tx) writeCheck(table, key string) func(storage.WriteResult) error {
	if tx.x == nil {
		return nil
	}
	return func(wr storage.WriteResult) error {
		if err := tx.db.ssi.CheckWrite(tx.x, table, wr.OldPage, key); err != nil {
			return err
		}
		if !tx.inSubxact() {
			// §7.3: safe to drop our SIREAD lock once we hold the
			// tuple write lock — except inside a subtransaction,
			// where a savepoint rollback could release the write
			// lock and leave the read unprotected.
			tx.db.ssi.DropOwnTupleLock(tx.x, table, wr.OldPage, key)
		}
		return nil
	}
}

func (tx *Tx) finishUpdate(ti *tableInfo, table, key string, value []byte) error {
	if err := tx.insertSecondaries(ti, key, value); err != nil {
		return err
	}
	tx.recordWrite(table, key, value, false)
	return nil
}

// readCommittedRetry retries op with fresh snapshots a bounded number of
// times; fallback is returned if the conflict never clears.
func (tx *Tx) readCommittedRetry(op func() error, fallback error) error {
	for i := 0; i < 64; i++ {
		err := op()
		if err == nil {
			return nil
		}
		if !IsSerializationFailure(mapStorageErr(err)) {
			return mapStorageErr(err)
		}
	}
	return mapStorageErr(fallback)
}

// Delete removes the visible version of key.
func (tx *Tx) Delete(table, key string) error {
	if err := tx.checkUsable(true); err != nil {
		return err
	}
	ti, err := tx.db.table(table)
	if err != nil {
		return err
	}
	if tx.level == SerializableS2PL {
		return tx.s2plUpdate(ti, key, nil, true)
	}
	snap := tx.snapshot()
	if _, serr := ti.heap.Delete(key, tx.xid, tx.currentSubID(), snap, tx.db.mvcc, tx.db.wg, tx.writeCheck(table, key)); serr != nil {
		return mapStorageErr(serr)
	}
	tx.recordWrite(table, key, nil, true)
	return nil
}

// Scan invokes fn for every visible row with lo <= key < hi (hi == ""
// means unbounded) in key order. Returning false stops the scan. Under
// Serializable the scan SIREAD-locks every index leaf page it traverses
// (phantom protection) and every tuple it reads.
func (tx *Tx) Scan(table, lo, hi string, fn func(key string, value []byte) bool) error {
	if err := tx.checkUsable(false); err != nil {
		return err
	}
	ti, err := tx.db.table(table)
	if err != nil {
		return err
	}
	if tx.level == SerializableS2PL {
		return tx.s2plScan(ti, ti.pk, ti.pkName, lo, hi, func(entryKey, pk string) (string, bool) {
			return entryKey, true
		}, fn)
	}
	snap := tx.snapshot()
	tracking := tx.x != nil && !tx.x.Safe()
	var onPage func(btree.PageID)
	if tracking {
		onPage = func(p btree.PageID) {
			tx.db.ssi.AcquirePageLock(tx.x, ti.pkName, int64(p))
		}
	}
	var keys []string
	ti.pk.Range(lo, hi, onPage, func(k, _ string) bool {
		keys = append(keys, k)
		return true
	})
	if tx.db.cfg.DisableScanBatch {
		return tx.scanRowsPerRow(ti, table, keys, snap, tracking, fn)
	}
	return tx.scanRowsBatched(ti, table, keys, snap, tracking, fn)
}

// scanRowsBatched is the page-grained scan read path: the btree range
// result is grouped by the heap page of each row's visible version
// (storage.ReadPageBatch), each page is latched once in shared mode,
// and the page's surviving SIREAD inserts go to the lock manager as ONE
// batch (core.AcquireTupleLockBatch) before the latch drops — the PR 2
// {visibility, registration} atomicity preserved per page, at O(pages)
// lock-path acquisitions instead of O(rows). MVCC conflict-out sets are
// still flagged once per scan afterwards (safe out of the latch, see
// the file comment), and rows are delivered after all checks so fn
// never runs under a latch.
func (tx *Tx) scanRowsBatched(ti *tableInfo, table string, keys []string, snap *mvcc.Snapshot, tracking bool, fn func(key string, value []byte) bool) error {
	if len(keys) == 0 {
		return nil
	}
	vals := make([][]byte, len(keys))
	found := make([]bool, len(keys))
	var conflicts []mvcc.TxID
	err := ti.heap.ReadPageBatch(keys, snap, tx.xid, tx.db.mvcc, tracking, tx.batchReader(table, &conflicts, func(idx int, value []byte) {
		vals[idx] = value
		found[idx] = true
	}))
	if err != nil {
		return mapStorageErr(err)
	}
	if tx.x != nil {
		if err := tx.db.ssi.CheckScanConflicts(tx.x, conflicts); err != nil {
			return mapStorageErr(err)
		}
	}
	for i, k := range keys {
		if found[i] && !fn(k, vals[i]) {
			break
		}
	}
	return nil
}

// batchReader builds the storage.ReadPageBatch callback shared by Scan
// and ScanIndex's batch paths: it collects each page's MVCC
// conflict-out sets, registers the page's surviving SIREAD locks in one
// AcquireTupleLockBatch call while the page latch is held (skipping
// keys the transaction wrote itself), and hands each visible row to
// setVal with its input-slice index. Once the lock manager reports a
// relation-granularity lock covers the table, the remaining pages'
// registrations are skipped — the lock set only ever coarsens, so the
// answer stays true for the rest of the scan.
func (tx *Tx) batchReader(table string, conflicts *[]mvcc.TxID, setVal func(idx int, value []byte)) func(page int64, items []storage.BatchItem) error {
	var lockKeys []string
	relCovered := false
	return func(page int64, items []storage.BatchItem) error {
		switch {
		case tx.x == nil:
		case relCovered || page < 0:
			// Covered (or an unlatched invisible-key group): nothing to
			// register, only the MVCC conflicts matter.
			for i := range items {
				*conflicts = append(*conflicts, items[i].Res.ConflictOut...)
			}
		default:
			lockKeys = lockKeys[:0]
			for i := range items {
				it := &items[i]
				*conflicts = append(*conflicts, it.Res.ConflictOut...)
				if it.Res.Tuple != nil && !tx.owns(table, it.Key) {
					lockKeys = append(lockKeys, it.Key)
				}
			}
			if len(lockKeys) > 0 {
				covered, err := tx.db.ssi.AcquireTupleLockBatch(tx.x, table, page, lockKeys)
				if err != nil {
					return err
				}
				relCovered = covered
			}
		}
		for i := range items {
			it := &items[i]
			if it.Res.Tuple != nil {
				setVal(it.Idx, it.Res.Tuple.Value)
			}
		}
		return nil
	}
}

// scanRowsPerRow is the legacy per-row scan read path (one latched Read
// and one CheckRead per row), kept behind Config.DisableScanBatch as
// the A/B ablation for the batched path above.
func (tx *Tx) scanRowsPerRow(ti *tableInfo, table string, keys []string, snap *mvcc.Snapshot, tracking bool, fn func(key string, value []byte) bool) error {
	// Each row's SIREAD lock is inserted in the Read callback, under
	// that row's page latch; the MVCC conflict-out sets are flagged in
	// one batch afterwards (one SSI-mutex critical section per scan,
	// and only when a conflict exists — deferring the flagging out of
	// the latch is safe, see the file comment). Rows are delivered
	// after all checks so fn never runs under a latch.
	type row struct {
		key   string
		value []byte
	}
	var rows []row
	var conflicts []mvcc.TxID
	for _, k := range keys {
		err := ti.heap.Read(k, snap, tx.xid, tx.db.mvcc, tracking, func(res storage.ReadResult) error {
			if tx.x != nil {
				conflicts = append(conflicts, res.ConflictOut...)
			}
			if res.Tuple == nil {
				return nil
			}
			if tx.x != nil {
				if err := tx.db.ssi.CheckRead(tx.x, table, res.Tuple.Page, k, nil, tx.owns(table, k)); err != nil {
					return err
				}
			}
			rows = append(rows, row{k, res.Tuple.Value})
			return nil
		})
		if err != nil {
			return mapStorageErr(err)
		}
	}
	if tx.x != nil {
		if err := tx.db.ssi.CheckScanConflicts(tx.x, conflicts); err != nil {
			return mapStorageErr(err)
		}
	}
	for _, r := range rows {
		if !fn(r.key, r.value) {
			break
		}
	}
	return nil
}

// ScanIndex scans the secondary index idx of table for lo <= indexKey <
// hi, invoking fn with the primary key and row value. Because index
// entries are retained for every row version, each hit is rechecked
// against the visible row before delivery.
func (tx *Tx) ScanIndex(table, idx, lo, hi string, fn func(key string, value []byte) bool) error {
	if err := tx.checkUsable(false); err != nil {
		return err
	}
	ti, err := tx.db.table(table)
	if err != nil {
		return err
	}
	si, err := ti.index(idx)
	if err != nil {
		return err
	}
	// Entries are ik+"\x00"+pk; translate the range bounds.
	elo := lo
	ehi := hi
	if ehi != "" {
		// Entries for index key K sort as K+"\x00"+pk < K+"\x01", so
		// the exclusive bound carries over directly.
	}
	if tx.level == SerializableS2PL {
		return tx.s2plScan(ti, si.tree, si.name, elo, ehi, func(entryKey, pk string) (string, bool) {
			return pk, true
		}, tx.recheckWrap(ti, si, lo, hi, fn))
	}
	snap := tx.snapshot()
	tracking := tx.x != nil && !tx.x.Safe()
	var onPage func(btree.PageID)
	if tracking {
		onPage = func(p btree.PageID) {
			tx.db.ssi.AcquirePageLock(tx.x, si.name, int64(p))
		}
	}
	var hits []indexHit
	si.tree.Range(elo, ehi, onPage, func(entryKey, pk string) bool {
		ik := entryKey
		if n := len(pk); len(entryKey) > n && entryKey[len(entryKey)-n-1] == 0 {
			ik = entryKey[:len(entryKey)-n-1]
		}
		hits = append(hits, indexHit{ik, pk})
		return true
	})
	if tx.db.cfg.DisableScanBatch {
		return tx.scanIndexPerRow(ti, table, si, hits, snap, tracking, fn)
	}
	// Page-grained batch path, as in Scan. Index entries are retained
	// for every row version, so the same primary key can appear under
	// several (stale) index keys; one visibility-checked read per unique
	// pk covers them all — the SIREAD lock is taken under the page latch
	// even for hits the recheck filters out (the read happened, so the
	// version must stay protected), and each hit is rechecked against
	// the visible row it resolved to.
	pks := make([]string, 0, len(hits))
	pos := make(map[string]int, len(hits))
	for _, h := range hits {
		if _, ok := pos[h.pk]; !ok {
			pos[h.pk] = len(pks)
			pks = append(pks, h.pk)
		}
	}
	vals := make([][]byte, len(pks))
	found := make([]bool, len(pks))
	var conflicts []mvcc.TxID
	err = ti.heap.ReadPageBatch(pks, snap, tx.xid, tx.db.mvcc, tracking, tx.batchReader(table, &conflicts, func(idx int, value []byte) {
		vals[idx] = value
		found[idx] = true
	}))
	if err != nil {
		return mapStorageErr(err)
	}
	if tx.x != nil {
		if err := tx.db.ssi.CheckScanConflicts(tx.x, conflicts); err != nil {
			return mapStorageErr(err)
		}
	}
	for _, h := range hits {
		p := pos[h.pk]
		if !found[p] {
			continue
		}
		ik, ok := si.fn(h.pk, vals[p])
		if !ok || ik != h.ik {
			continue
		}
		if !fn(h.pk, vals[p]) {
			break
		}
	}
	return nil
}

// indexHit is one secondary-index range entry: the index key it was
// filed under and the primary key it names.
type indexHit struct{ ik, pk string }

// scanIndexPerRow is the legacy per-row index-scan read path — the
// ScanIndex analogue of scanRowsPerRow, kept behind
// Config.DisableScanBatch as the A/B ablation for the batched path.
func (tx *Tx) scanIndexPerRow(ti *tableInfo, table string, si *secondaryIndex, hits []indexHit, snap *mvcc.Snapshot, tracking bool, fn func(key string, value []byte) bool) error {
	type row struct {
		pk    string
		value []byte
	}
	var rows []row
	var conflicts []mvcc.TxID
	for _, h := range hits {
		err := ti.heap.Read(h.pk, snap, tx.xid, tx.db.mvcc, tracking, func(res storage.ReadResult) error {
			if tx.x != nil {
				conflicts = append(conflicts, res.ConflictOut...)
			}
			if res.Tuple == nil {
				return nil
			}
			// The SIREAD lock is taken under the page latch even for
			// rows the recheck below filters out: the read happened,
			// so the version must stay protected (as in Scan).
			if tx.x != nil {
				if err := tx.db.ssi.CheckRead(tx.x, table, res.Tuple.Page, h.pk, nil, tx.owns(table, h.pk)); err != nil {
					return err
				}
			}
			// Recheck: the visible version must still match the
			// index key.
			ik, ok := si.fn(h.pk, res.Tuple.Value)
			if !ok || ik != h.ik {
				return nil
			}
			rows = append(rows, row{h.pk, res.Tuple.Value})
			return nil
		})
		if err != nil {
			return mapStorageErr(err)
		}
	}
	if tx.x != nil {
		if err := tx.db.ssi.CheckScanConflicts(tx.x, conflicts); err != nil {
			return mapStorageErr(err)
		}
	}
	for _, r := range rows {
		if !fn(r.pk, r.value) {
			break
		}
	}
	return nil
}

// recheckWrap adapts a user scan callback for the S2PL index-scan path,
// applying the stale-entry recheck.
func (tx *Tx) recheckWrap(ti *tableInfo, si *secondaryIndex, lo, hi string, fn func(key string, value []byte) bool) func(key string, value []byte) bool {
	return func(pk string, value []byte) bool {
		ik, ok := si.fn(pk, value)
		if !ok || ik < lo || (hi != "" && ik >= hi) {
			return true
		}
		return fn(pk, value)
	}
}

// SeqScan invokes fn for every visible row of table in unspecified order.
// Under Serializable it takes a relation-granularity SIREAD lock; under
// S2PL a shared relation lock.
func (tx *Tx) SeqScan(table string, fn func(key string, value []byte) bool) error {
	if err := tx.checkUsable(false); err != nil {
		return err
	}
	ti, err := tx.db.table(table)
	if err != nil {
		return err
	}
	if tx.level == SerializableS2PL {
		if err := tx.db.s2pl.Acquire(tx.xid, core.RelationTarget(table), s2pl.ModeS); err != nil {
			return mapStorageErr(err)
		}
		snap := tx.db.mvcc.TakeSnapshot()
		ti.heap.ForEach(snap, tx.xid, tx.db.mvcc, func(tu *storageTuple) bool {
			return fn(tu.Key, tu.Value)
		})
		return nil
	}
	snap := tx.snapshot()
	if tx.x != nil && !tx.x.Safe() {
		tx.db.ssi.AcquireRelationLock(tx.x, table)
	}
	conflicts := ti.heap.ForEach(snap, tx.xid, tx.db.mvcc, func(tu *storageTuple) bool {
		return fn(tu.Key, tu.Value)
	})
	if tx.x != nil {
		if err := tx.db.ssi.CheckScanConflicts(tx.x, conflicts); err != nil {
			return mapStorageErr(err)
		}
	}
	return nil
}
