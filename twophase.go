package pgssi

import (
	"fmt"

	"pgssi/internal/mvcc"
)

// Two-phase commit (§7.1). PREPARE TRANSACTION makes a transaction's
// fate durable without making its effects visible; COMMIT PREPARED is
// then guaranteed to succeed. Under SSI the pre-commit serialization
// check runs at prepare time, because a prepared transaction can never be
// chosen as an abort victim; the transaction's SIREAD locks are part of
// the persisted state and survive crash recovery, with conservative
// conflict flags replacing the lost dependency graph.

// Prepare performs the first phase of two-phase commit under the global
// identifier gid. After Prepare the transaction accepts no further
// operations; finish it with DB.CommitPrepared or DB.RollbackPrepared.
// Under Serializable, a failed pre-commit check rolls the transaction
// back and returns a serialization failure.
func (tx *Tx) Prepare(gid string) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.prepared {
		return ErrPrepared
	}
	if tx.level == SerializableS2PL {
		return fmt.Errorf("pgssi: two-phase commit is not supported under S2PL")
	}
	tx.db.prepMu.Lock()
	if _, dup := tx.db.prepared[gid]; dup {
		tx.db.prepMu.Unlock()
		return fmt.Errorf("pgssi: prepared transaction %q already exists", gid)
	}
	tx.db.prepMu.Unlock()
	if err := tx.db.walValidate(tx); err != nil {
		// The WAL can never accept this transaction's commit record
		// (oversize), so a yes-vote would be a lie: roll back now.
		tx.rollbackLocked()
		return err
	}
	if tx.x != nil {
		st, err := tx.db.ssi.Prepare(tx.x)
		if err != nil {
			tx.rollbackLocked()
			return serializationFailure("pre-prepare dangerous structure check")
		}
		tx.prepSt = st
	}
	tx.prepared = true
	tx.gid = gid
	tx.db.prepMu.Lock()
	tx.db.prepared[gid] = tx
	tx.db.prepMu.Unlock()
	return nil
}

// takePrepared removes and returns the prepared transaction gid.
func (db *DB) takePrepared(gid string) (*Tx, error) {
	db.prepMu.Lock()
	defer db.prepMu.Unlock()
	tx, ok := db.prepared[gid]
	if !ok {
		return nil, fmt.Errorf("pgssi: no prepared transaction %q", gid)
	}
	delete(db.prepared, gid)
	return tx, nil
}

// CommitPrepared commits the prepared transaction gid. It cannot fail
// with a serialization error: the check already ran at Prepare.
func (db *DB) CommitPrepared(gid string) error {
	tx, err := db.takePrepared(gid)
	if err != nil {
		return err
	}
	pend, perr := db.walPrepare(tx)
	if perr != nil {
		// Unreachable when Prepare validated the record (the write set
		// is frozen after Prepare); restore the prepared entry so the
		// transaction manager can still decide its fate.
		db.prepMu.Lock()
		db.prepared[gid] = tx
		db.prepMu.Unlock()
		return perr
	}
	if tx.x != nil {
		if err := db.ssi.CommitPrepared(tx.x, func() mvcc.SeqNo {
			return db.publishCommit(tx)
		}); err != nil {
			db.walAbandon(tx)
			return err
		}
	} else {
		db.publishCommit(tx)
	}
	tx.done = true
	tx.prepared = false
	return db.walFinish(pend)
}

// RollbackPrepared rolls back the prepared transaction gid (a user or
// transaction-manager decision; SSI itself never aborts a prepared
// transaction).
func (db *DB) RollbackPrepared(gid string) error {
	tx, err := db.takePrepared(gid)
	if err != nil {
		return err
	}
	tx.prepared = false
	tx.rollbackLocked()
	return nil
}

// PreparedTransactions returns the global identifiers of transactions in
// the prepared state.
func (db *DB) PreparedTransactions() []string {
	db.prepMu.Lock()
	defer db.prepMu.Unlock()
	gids := make([]string, 0, len(db.prepared))
	for gid := range db.prepared {
		gids = append(gids, gid)
	}
	return gids
}

// SimulateCrashRecovery models a crash and restart with prepared
// transactions on disk: every prepared transaction's in-memory SSI state
// (its dependency graph edges) is discarded and rebuilt from the
// persisted lock list, with the conservative assumption of §7.1 that it
// has rw-antidependencies both in and out. Active non-prepared
// transactions must have been finished first — a real crash would have
// killed them.
func (db *DB) SimulateCrashRecovery() error {
	db.prepMu.Lock()
	defer db.prepMu.Unlock()
	if n := db.mvcc.ActiveCount(); n != len(db.prepared) {
		return fmt.Errorf("pgssi: %d active transactions but %d prepared; finish others before simulating a crash", n, len(db.prepared))
	}
	for _, tx := range db.prepared {
		if tx.x == nil {
			continue
		}
		db.ssi.Abort(tx.x)
		tx.x = db.ssi.RecoverPrepared(tx.prepSt, tx.snap.SeqNo)
	}
	return nil
}
