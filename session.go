package pgssi

import (
	"errors"
	"sync"
)

// Status is the session layer's typed result code. The handle-based
// Session API reports every expected transactional outcome — including
// serialization failures, which in-process callers see as Go errors —
// as a Status, so transports can carry it as a single byte and clients
// can branch on it without string matching (the way PostgreSQL clients
// branch on SQLSTATE). The numeric values are part of the wire protocol
// (docs/protocol.md) and must not be renumbered.
//
//ssi:enum
type Status uint8

// Status codes. StatusNetwork is client-side only: it is never sent on
// the wire and reports a transport failure on the connection (the
// wire.Client keeps the underlying error).
const (
	StatusOK Status = iota
	StatusNotFound
	StatusSerializationFailure
	StatusDuplicateKey
	StatusTxDone
	StatusReadOnlyTx
	StatusNoTable
	StatusNoIndex
	StatusNoSavepoint
	StatusPrepared
	StatusInvalidHandle
	StatusInvalidRequest
	StatusShuttingDown
	StatusInternal
	StatusNetwork
	StatusNotSafe
	StatusReplicaHalted
	StatusNoReplication
	// StatusDurabilityLost reports a poisoned durable WAL: the server's
	// log took a sticky flush failure, no commit can be made durable,
	// and Begin refuses new transactions until the operator restarts
	// the process (reopening the directory).
	StatusDurabilityLost
	// StatusSeqTruncated reports a replication resume position below
	// the primary's checkpoint GC floor: the records needed to resume
	// were garbage-collected, and the subscriber must re-seed from a
	// checkpoint (FetchCheckpoint) instead of resuming.
	StatusSeqTruncated
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not found"
	case StatusSerializationFailure:
		return "serialization failure"
	case StatusDuplicateKey:
		return "duplicate key"
	case StatusTxDone:
		return "transaction done"
	case StatusReadOnlyTx:
		return "read-only transaction"
	case StatusNoTable:
		return "no such table"
	case StatusNoIndex:
		return "no such index"
	case StatusNoSavepoint:
		return "no such savepoint"
	case StatusPrepared:
		return "transaction is prepared"
	case StatusInvalidHandle:
		return "invalid transaction handle"
	case StatusInvalidRequest:
		return "invalid request"
	case StatusShuttingDown:
		return "shutting down"
	case StatusInternal:
		return "internal error"
	case StatusNetwork:
		return "network error"
	case StatusNotSafe:
		return "not at a safe snapshot"
	case StatusReplicaHalted:
		return "replica halted"
	case StatusNoReplication:
		return "replication unavailable"
	case StatusDurabilityLost:
		return "durability lost (WAL poisoned)"
	case StatusSeqTruncated:
		return "resume position truncated by checkpoint GC"
	default:
		return "unknown status"
	}
}

// OK reports whether the status is StatusOK.
func (s Status) OK() bool { return s == StatusOK }

// Retryable reports whether the status is a retryable concurrency
// failure: retry the whole transaction in a new handle.
func (s Status) Retryable() bool { return s == StatusSerializationFailure }

// Err converts the status back into the engine's sentinel error space
// (nil for StatusOK), so status-based callers can reuse error-based
// helpers like IsSerializationFailure.
func (s Status) Err() error {
	switch s {
	case StatusOK:
		return nil
	case StatusNotFound:
		return ErrNotFound
	case StatusSerializationFailure:
		return ErrSerialization
	case StatusDuplicateKey:
		return ErrDuplicateKey
	case StatusTxDone:
		return ErrTxDone
	case StatusReadOnlyTx:
		return ErrReadOnlyTx
	case StatusNoTable:
		return ErrNoTable
	case StatusNoIndex:
		return ErrNoIndex
	case StatusNoSavepoint:
		return ErrNoSavepoint
	case StatusPrepared:
		return ErrPrepared
	case StatusInvalidHandle:
		return ErrInvalidHandle
	case StatusShuttingDown:
		return ErrClosed
	case StatusNotSafe:
		return ErrNotSafePoint
	case StatusReplicaHalted:
		return ErrReplicaHalted
	case StatusDurabilityLost:
		return ErrWALPoisoned
	default:
		return errors.New("pgssi: " + s.String())
	}
}

// StatusOf maps an engine error to its Status (StatusOK for nil,
// StatusInternal for errors outside the sentinel set).
func StatusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case IsSerializationFailure(err):
		return StatusSerializationFailure
	case errors.Is(err, ErrNotFound):
		return StatusNotFound
	case errors.Is(err, ErrDuplicateKey):
		return StatusDuplicateKey
	case errors.Is(err, ErrTxDone):
		return StatusTxDone
	case errors.Is(err, ErrReadOnlyTx):
		return StatusReadOnlyTx
	case errors.Is(err, ErrNoTable):
		return StatusNoTable
	case errors.Is(err, ErrNoIndex):
		return StatusNoIndex
	case errors.Is(err, ErrNoSavepoint):
		return StatusNoSavepoint
	case errors.Is(err, ErrPrepared):
		return StatusPrepared
	case errors.Is(err, ErrInvalidHandle):
		return StatusInvalidHandle
	case errors.Is(err, ErrNotSafePoint):
		return StatusNotSafe
	case errors.Is(err, ErrReplicaHalted):
		return StatusReplicaHalted
	case errors.Is(err, ErrWALPoisoned):
		return StatusDurabilityLost
	case errors.Is(err, ErrClosed):
		return StatusShuttingDown
	default:
		return StatusInternal
	}
}

// Handle names a transaction within a Session. Handles are never reused
// within a session; operations on an unknown handle return
// StatusInvalidHandle.
type Handle uint64

// KV is one row of a scan result.
type KV struct {
	Key   string
	Value []byte
}

// Session is the transport-agnostic session layer: a handle-based facade
// over DB/Tx whose operations report outcomes as Status codes instead of
// Go errors. It is the surface a network front-end serves (cmd/pgssid
// speaks exactly this API over TCP; internal/wire carries it) and is
// equally usable in process — the open-loop workload driver
// (internal/workload) runs against either.
//
// A Session may hold any number of concurrent transactions, one per
// handle. The Session itself is safe for concurrent use; each individual
// handle must be driven by one goroutine at a time (the usual Tx rule).
type Session struct {
	// begin and ddl are the session's only couplings to its backing
	// store: a primary session begins transactions on the DB directly,
	// while a replica session (Replica.NewSession) maps Begin onto
	// safe-snapshot read-only transactions and refuses DDL. Everything
	// else in the session layer is handle bookkeeping over *Tx, which is
	// identical on both.
	begin func(TxOptions) (*Tx, error)
	ddl   func(name string) error

	mu   sync.Mutex //ssi:lock level=10 name=pgssi.session
	next Handle
	txs  map[Handle]*Tx
}

// NewSession returns a new session over the database.
func (db *DB) NewSession() *Session {
	return &Session{begin: db.Begin, ddl: db.CreateTable, txs: make(map[Handle]*Tx)}
}

// lookup resolves a handle.
func (s *Session) lookup(h Handle) (*Tx, Status) {
	s.mu.Lock()
	tx, ok := s.txs[h]
	s.mu.Unlock()
	if !ok {
		return nil, StatusInvalidHandle
	}
	return tx, StatusOK
}

// drop removes a finished handle.
func (s *Session) drop(h Handle) {
	s.mu.Lock()
	delete(s.txs, h)
	s.mu.Unlock()
}

// Begin starts a transaction and returns its handle. The deferrable
// flag requires level == Serializable and readOnly (as in BEGIN
// TRANSACTION READ ONLY, DEFERRABLE) and may block until a safe
// snapshot is available.
func (s *Session) Begin(level IsolationLevel, readOnly, deferrable bool) (Handle, Status) {
	tx, err := s.begin(TxOptions{Isolation: level, ReadOnly: readOnly, Deferrable: deferrable})
	if err != nil {
		switch {
		case errors.Is(err, ErrClosed):
			return 0, StatusShuttingDown
		case errors.Is(err, ErrNotSafePoint):
			return 0, StatusNotSafe
		case errors.Is(err, ErrReplicaHalted):
			return 0, StatusReplicaHalted
		case errors.Is(err, ErrReadOnlyTx):
			return 0, StatusReadOnlyTx
		case errors.Is(err, ErrWALPoisoned):
			return 0, StatusDurabilityLost
		default:
			return 0, StatusInvalidRequest
		}
	}
	s.mu.Lock()
	s.next++
	h := s.next
	s.txs[h] = tx
	s.mu.Unlock()
	return h, StatusOK
}

// Get returns the value of key in table, or StatusNotFound.
func (s *Session) Get(h Handle, table, key string) ([]byte, Status) {
	tx, st := s.lookup(h)
	if !st.OK() {
		return nil, st
	}
	v, err := tx.Get(table, key)
	return v, StatusOf(err)
}

// Put upserts key in table (see Tx.Put).
func (s *Session) Put(h Handle, table, key string, value []byte) Status {
	tx, st := s.lookup(h)
	if !st.OK() {
		return st
	}
	return StatusOf(tx.Put(table, key, value))
}

// Insert adds a new row; StatusDuplicateKey if a visible row exists.
func (s *Session) Insert(h Handle, table, key string, value []byte) Status {
	tx, st := s.lookup(h)
	if !st.OK() {
		return st
	}
	return StatusOf(tx.Insert(table, key, value))
}

// Update replaces an existing row; StatusNotFound if there is none.
func (s *Session) Update(h Handle, table, key string, value []byte) Status {
	tx, st := s.lookup(h)
	if !st.OK() {
		return st
	}
	return StatusOf(tx.Update(table, key, value))
}

// Delete removes the visible version of key.
func (s *Session) Delete(h Handle, table, key string) Status {
	tx, st := s.lookup(h)
	if !st.OK() {
		return st
	}
	return StatusOf(tx.Delete(table, key))
}

// Scan returns up to limit visible rows with lo <= key < hi in key order
// (hi == "" means unbounded, limit <= 0 means unlimited).
func (s *Session) Scan(h Handle, table, lo, hi string, limit int) ([]KV, Status) {
	tx, st := s.lookup(h)
	if !st.OK() {
		return nil, st
	}
	var rows []KV
	err := tx.Scan(table, lo, hi, func(k string, v []byte) bool {
		rows = append(rows, KV{Key: k, Value: v})
		return limit <= 0 || len(rows) < limit
	})
	if err != nil {
		return nil, StatusOf(err)
	}
	return rows, StatusOK
}

// Commit finishes the transaction and releases its handle. On
// StatusSerializationFailure the transaction has been rolled back and
// the handle released: retry with a fresh Begin.
func (s *Session) Commit(h Handle) Status {
	tx, st := s.lookup(h)
	if !st.OK() {
		return st
	}
	err := tx.Commit()
	// The handle is released on every outcome except "still usable"
	// states (a prepared transaction keeps its handle until the 2PC
	// resolution APIs are used in process).
	if err == nil || IsSerializationFailure(err) || errors.Is(err, ErrTxDone) {
		s.drop(h)
	}
	return StatusOf(err)
}

// Rollback aborts the transaction and releases its handle.
func (s *Session) Rollback(h Handle) Status {
	tx, st := s.lookup(h)
	if !st.OK() {
		return st
	}
	err := tx.Rollback()
	if err == nil || errors.Is(err, ErrTxDone) {
		s.drop(h)
	}
	return StatusOf(err)
}

// Savepoint establishes a savepoint in the transaction.
func (s *Session) Savepoint(h Handle, name string) Status {
	tx, st := s.lookup(h)
	if !st.OK() {
		return st
	}
	return StatusOf(tx.Savepoint(name))
}

// ReleaseSavepoint releases a savepoint.
func (s *Session) ReleaseSavepoint(h Handle, name string) Status {
	tx, st := s.lookup(h)
	if !st.OK() {
		return st
	}
	return StatusOf(tx.ReleaseSavepoint(name))
}

// RollbackToSavepoint rolls back to a savepoint.
func (s *Session) RollbackToSavepoint(h Handle, name string) Status {
	tx, st := s.lookup(h)
	if !st.OK() {
		return st
	}
	return StatusOf(tx.RollbackToSavepoint(name))
}

// CreateTable creates a table (DDL is not transactional; the handle
// argument is absent on purpose). Replica sessions refuse it with
// StatusReadOnlyTx: schema arrives via the replication stream.
func (s *Session) CreateTable(name string) Status {
	err := s.ddl(name)
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, ErrReadOnlyTx):
		return StatusReadOnlyTx
	case errors.Is(err, ErrClosed):
		return StatusShuttingDown
	default:
		// The primary's only other failure mode today: duplicate table.
		return StatusDuplicateKey
	}
}

// Open returns the number of transactions currently open in the session.
// The server's graceful drain uses it to decide when a connection is
// quiescent.
func (s *Session) Open() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.txs)
}

// Close rolls back every open transaction and releases all handles. The
// session remains usable (a connection reset, not a shutdown).
func (s *Session) Close() {
	s.mu.Lock()
	txs := make([]*Tx, 0, len(s.txs))
	for _, tx := range s.txs {
		txs = append(txs, tx)
	}
	s.txs = make(map[Handle]*Tx)
	s.mu.Unlock()
	for _, tx := range txs {
		tx.Rollback()
	}
}
