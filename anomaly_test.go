package pgssi_test

import (
	"errors"
	"strings"
	"testing"

	"pgssi"
)

// Tests in this file reproduce the paper's §2.1 anomaly examples and
// verify that snapshot isolation admits them while the SSI-based
// Serializable level rejects them.

func newDoctorsDB(t *testing.T) *pgssi.DB {
	t.Helper()
	db := pgssi.Open(pgssi.Config{})
	if err := db.CreateTable("doctors"); err != nil {
		t.Fatal(err)
	}
	seed, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, seed.Insert("doctors", "alice", []byte("oncall")))
	mustExec(t, seed.Insert("doctors", "bob", []byte("oncall")))
	mustExec(t, seed.Commit())
	return db
}

func mustExec(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// countOnCall counts doctors currently on call in tx.
func countOnCall(t *testing.T, tx *pgssi.Tx) int {
	t.Helper()
	n := 0
	err := tx.Scan("doctors", "", "", func(_ string, v []byte) bool {
		if string(v) == "oncall" {
			n++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// runWriteSkew executes the Figure 1 interleaving at the given isolation
// level and returns the two commit errors.
func runWriteSkew(t *testing.T, db *pgssi.DB, level pgssi.IsolationLevel) (err1, err2 error) {
	t.Helper()
	t1, err := db.Begin(pgssi.TxOptions{Isolation: level})
	mustExec(t, err)
	t2, err := db.Begin(pgssi.TxOptions{Isolation: level})
	mustExec(t, err)

	if countOnCall(t, t1) >= 2 {
		mustExec(t, t1.Update("doctors", "alice", []byte("off")))
	}
	if countOnCall(t, t2) >= 2 {
		if err := t2.Update("doctors", "bob", []byte("off")); err != nil {
			t2.Rollback()
			err1 = t1.Commit()
			return err1, err
		}
	}
	err1 = t1.Commit()
	err2 = t2.Commit()
	return err1, err2
}

func TestWriteSkewAllowedUnderSnapshotIsolation(t *testing.T) {
	db := newDoctorsDB(t)
	err1, err2 := runWriteSkew(t, db, pgssi.RepeatableRead)
	if err1 != nil || err2 != nil {
		t.Fatalf("snapshot isolation should admit write skew: %v / %v", err1, err2)
	}
	// The invariant "at least one doctor on call" is now violated —
	// exactly the silent corruption §2.1.1 describes.
	check, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	if n := countOnCall(t, check); n != 0 {
		t.Fatalf("expected the anomaly to leave 0 doctors on call, got %d", n)
	}
	check.Rollback()
}

func TestWriteSkewPreventedUnderSerializable(t *testing.T) {
	db := newDoctorsDB(t)
	err1, err2 := runWriteSkew(t, db, pgssi.Serializable)
	if (err1 == nil) == (err2 == nil) {
		t.Fatalf("exactly one transaction should fail: err1=%v err2=%v", err1, err2)
	}
	failed := err1
	if failed == nil {
		failed = err2
	}
	if !pgssi.IsSerializationFailure(failed) {
		t.Fatalf("failure should be a serialization failure, got %v", failed)
	}
	check, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	if n := countOnCall(t, check); n != 1 {
		t.Fatalf("invariant broken: %d doctors on call, want 1", n)
	}
	check.Rollback()
}

func TestWriteSkewSafeRetry(t *testing.T) {
	db := newDoctorsDB(t)
	err1, err2 := runWriteSkew(t, db, pgssi.Serializable)
	if (err1 == nil) == (err2 == nil) {
		t.Fatalf("exactly one transaction should fail: err1=%v err2=%v", err1, err2)
	}
	// Retrying the failed transaction immediately must succeed (§5.4):
	// it is no longer concurrent with the committed one.
	victim := "bob"
	if err1 != nil {
		victim = "alice"
	}
	retry, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	mustExec(t, err)
	if countOnCall(t, retry) >= 2 {
		mustExec(t, retry.Update("doctors", victim, []byte("off")))
	}
	if err := retry.Commit(); err != nil {
		t.Fatalf("immediate retry failed again: %v", err)
	}
}

// batchDB sets up the §2.1.2 receipts schema: a control row holding the
// current batch number and a receipts table keyed batch|id.
func batchDB(t *testing.T) *pgssi.DB {
	t.Helper()
	db := pgssi.Open(pgssi.Config{})
	mustExec(t, db.CreateTable("control"))
	mustExec(t, db.CreateTable("receipts"))
	seed, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	mustExec(t, err)
	mustExec(t, seed.Insert("control", "batch", []byte("1")))
	mustExec(t, seed.Commit())
	return db
}

// runBatchAnomaly executes the Figure 2 interleaving:
//
//	T2 (NEW-RECEIPT) reads batch=1;
//	T3 (CLOSE-BATCH) increments to 2, commits;
//	T1 (REPORT) reads batch=2, scans batch-1 receipts, commits;
//	T2 inserts its batch-1 receipt, commits.
//
// It returns the errors of T1's commit, T2's insert+commit, and the
// number of batch-1 receipts T1 saw.
func runBatchAnomaly(t *testing.T, db *pgssi.DB, level pgssi.IsolationLevel, reportReadsControl bool) (reportErr, receiptErr error, seen int) {
	t.Helper()
	t2, err := db.Begin(pgssi.TxOptions{Isolation: level})
	mustExec(t, err)
	if _, err := t2.Get("control", "batch"); err != nil {
		t.Fatal(err)
	}

	t3, err := db.Begin(pgssi.TxOptions{Isolation: level})
	mustExec(t, err)
	if err := t3.Update("control", "batch", []byte("2")); err != nil {
		t.Fatalf("close-batch update: %v", err)
	}
	mustExec(t, t3.Commit())

	t1, err := db.Begin(pgssi.TxOptions{Isolation: level, ReadOnly: true})
	mustExec(t, err)
	if reportReadsControl {
		if _, err := t1.Get("control", "batch"); err != nil {
			t.Fatal(err)
		}
	}
	scanErr := t1.Scan("receipts", "1|", "1|\xff", func(string, []byte) bool {
		seen++
		return true
	})
	if scanErr != nil {
		reportErr = scanErr
		t1.Rollback()
	} else {
		reportErr = t1.Commit()
	}

	receiptErr = t2.Insert("receipts", "1|r1", []byte("42"))
	if receiptErr == nil {
		receiptErr = t2.Commit()
	} else {
		t2.Rollback()
	}
	return reportErr, receiptErr, seen
}

func TestBatchAnomalyAllowedUnderSnapshotIsolation(t *testing.T) {
	db := batchDB(t)
	reportErr, receiptErr, seen := runBatchAnomaly(t, db, pgssi.RepeatableRead, true)
	if reportErr != nil || receiptErr != nil {
		t.Fatalf("SI should admit the batch anomaly: %v / %v", reportErr, receiptErr)
	}
	if seen != 0 {
		t.Fatalf("report should have seen 0 receipts, saw %d", seen)
	}
	// The receipt exists now even though the batch-1 report ran after
	// the batch closed: the invariant of §2.1.2 is violated.
	check, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	if _, err := check.Get("receipts", "1|r1"); err != nil {
		t.Fatalf("receipt should exist: %v", err)
	}
	check.Rollback()
}

func TestBatchAnomalyPreventedUnderSerializable(t *testing.T) {
	db := batchDB(t)
	reportErr, receiptErr, _ := runBatchAnomaly(t, db, pgssi.Serializable, true)
	if reportErr == nil && receiptErr == nil {
		t.Fatal("SSI must abort one of the transactions in the Figure 2 interleaving")
	}
	failed := reportErr
	if failed == nil {
		failed = receiptErr
	}
	if !pgssi.IsSerializationFailure(failed) {
		t.Fatalf("expected serialization failure, got %v", failed)
	}
}

func TestBatchWithoutReportIsSerializableUnderSSI(t *testing.T) {
	// §3.3: with the read-only T1 removed, the execution has a single
	// rw-antidependency (T2 → T3) and is serializable as ⟨T2, T3⟩; SSI
	// must allow it even though S2PL or OCC would not.
	db := batchDB(t)
	t2, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	mustExec(t, err)
	if _, err := t2.Get("control", "batch"); err != nil {
		t.Fatal(err)
	}
	t3, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	mustExec(t, err)
	mustExec(t, t3.Update("control", "batch", []byte("2")))
	mustExec(t, t3.Commit())
	mustExec(t, t2.Insert("receipts", "1|r1", []byte("42")))
	if err := t2.Commit(); err != nil {
		t.Fatalf("single antidependency must not abort: %v", err)
	}
}

func TestReadOnlyOptimizationAvoidsFalsePositive(t *testing.T) {
	// §3.3.1 / §4.1: if the REPORT takes its snapshot *before*
	// CLOSE-BATCH commits and reads only the receipts table, the
	// execution is serializable as ⟨T1, T2, T3⟩. The commit-ordering
	// check alone would still spuriously abort; the read-only snapshot
	// ordering rule (Theorem 3) clears it because T3 commits after
	// T1's snapshot.
	for _, disable := range []bool{false, true} {
		db := pgssi.Open(pgssi.Config{DisableReadOnlyOpt: disable})
		mustExec(t, db.CreateTable("control"))
		mustExec(t, db.CreateTable("receipts"))
		seed, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
		mustExec(t, seed.Insert("control", "batch", []byte("1")))
		mustExec(t, seed.Commit())

		// T1 (REPORT, declared read-only) takes its snapshot first
		// and reads only receipts.
		t1, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable, ReadOnly: true})
		mustExec(t, err)
		seen := 0
		scanErr := t1.Scan("receipts", "1|", "1|\xff", func(string, []byte) bool { seen++; return true })

		// T2 reads the control row and inserts a receipt.
		t2, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
		mustExec(t, err)
		_, gerr := t2.Get("control", "batch")
		mustExec(t, gerr)
		insErr := t2.Insert("receipts", "1|r1", []byte("42"))

		// T3 closes the batch and commits first.
		t3, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
		mustExec(t, err)
		upErr := t3.Update("control", "batch", []byte("2"))
		commit3 := t3.Commit()

		commit2 := t2.Commit()
		var commit1 error
		if scanErr == nil {
			commit1 = t1.Commit()
		} else {
			t1.Rollback()
		}

		failures := 0
		for _, e := range []error{scanErr, insErr, upErr, commit1, commit2, commit3} {
			if e != nil && pgssi.IsSerializationFailure(e) {
				failures++
			} else if e != nil {
				t.Fatalf("unexpected error: %v", e)
			}
		}
		if !disable && failures != 0 {
			t.Fatalf("read-only optimization should avoid any abort, got %d failures", failures)
		}
		if disable && failures == 0 {
			t.Fatalf("without the read-only optimization this dangerous structure should abort")
		}
	}
}

// TestWriteSkewPreventedUnderS2PL completes the §2.1.1 example's
// coverage across all three regimes (SI admits it, SSI detects it, S2PL
// blocks it): under strict two-phase locking the two on-call scans hold
// shared tuple locks, each update then needs an exclusive lock the other
// transaction's shared lock denies, and the resulting deadlock aborts
// exactly one transaction. The interleaving of Figure 1 cannot commit on
// both sides.
func TestWriteSkewPreventedUnderS2PL(t *testing.T) {
	db := newDoctorsDB(t)
	t1, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.SerializableS2PL})
	mustExec(t, err)
	t2, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.SerializableS2PL})
	mustExec(t, err)

	n1 := countOnCall(t, t1)
	n2 := countOnCall(t, t2)

	// T1's update blocks on T2's shared lock; run it in a goroutine so
	// T2's update can form (and break) the deadlock.
	err1Ch := make(chan error, 1)
	go func() {
		err1Ch <- func() error {
			if n1 >= 2 {
				if err := t1.Update("doctors", "alice", []byte("off")); err != nil {
					t1.Rollback()
					return err
				}
			}
			return t1.Commit()
		}()
	}()

	var err2 error
	if n2 >= 2 {
		err2 = t2.Update("doctors", "bob", []byte("off"))
	}
	if err2 == nil {
		err2 = t2.Commit()
	} else {
		t2.Rollback()
	}
	err1 := <-err1Ch

	if (err1 == nil) == (err2 == nil) {
		t.Fatalf("deadlock detection should abort exactly one transaction: err1=%v err2=%v", err1, err2)
	}
	failed := err1
	if failed == nil {
		failed = err2
	}
	if !pgssi.IsSerializationFailure(failed) {
		t.Fatalf("deadlock abort should be a retryable serialization failure, got %v", failed)
	}
	check, _ := db.Begin(pgssi.TxOptions{Isolation: pgssi.SerializableS2PL})
	if n := countOnCall(t, check); n != 1 {
		t.Fatalf("invariant broken under S2PL: %d doctors on call, want 1", n)
	}
	check.Rollback()
}

// TestBatchAnomalyPreventedUnderS2PL completes the §2.1.2 example's
// coverage: under S2PL the Figure 2 interleaving cannot even be
// scheduled. CLOSE-BATCH's update of the control row blocks behind
// NEW-RECEIPT's shared lock until the receipt transaction commits, which
// forces the serial order ⟨NEW-RECEIPT, CLOSE-BATCH, REPORT⟩ — so the
// batch-1 report always includes the batch-1 receipt.
func TestBatchAnomalyPreventedUnderS2PL(t *testing.T) {
	db := batchDB(t)

	// T2 (NEW-RECEIPT) reads the current batch, taking a shared lock.
	t2, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.SerializableS2PL})
	mustExec(t, err)
	if _, err := t2.Get("control", "batch"); err != nil {
		t.Fatal(err)
	}

	// T3 (CLOSE-BATCH) tries to advance the batch: blocks on T2.
	t3done := make(chan error, 1)
	go func() {
		t3, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.SerializableS2PL})
		if err != nil {
			t3done <- err
			return
		}
		if err := t3.Update("control", "batch", []byte("2")); err != nil {
			t3.Rollback()
			t3done <- err
			return
		}
		t3done <- t3.Commit()
	}()

	// Lock semantics guarantee T3 cannot have finished; this check is
	// best-effort (it can only pass spuriously, never fail spuriously,
	// if the goroutine has not been scheduled yet).
	select {
	case err := <-t3done:
		t.Fatalf("CLOSE-BATCH finished (%v) despite NEW-RECEIPT's shared lock", err)
	default:
	}

	mustExec(t, t2.Insert("receipts", "1|r1", []byte("42")))
	mustExec(t, t2.Commit())
	mustExec(t, <-t3done)

	// T1 (REPORT) now reads batch 2 and must see the batch-1 receipt.
	t1, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.SerializableS2PL})
	mustExec(t, err)
	b, err := t1.Get("control", "batch")
	mustExec(t, err)
	if string(b) != "2" {
		t.Fatalf("report read batch %q, want 2", b)
	}
	seen := 0
	mustExec(t, t1.Scan("receipts", "1|", "1|\xff", func(string, []byte) bool {
		seen++
		return true
	}))
	mustExec(t, t1.Commit())
	if seen != 1 {
		t.Fatalf("report saw %d batch-1 receipts, want 1 — the §2.1.2 anomaly leaked through S2PL", seen)
	}
}

func TestSerializationErrorWording(t *testing.T) {
	db := newDoctorsDB(t)
	_, err2 := runWriteSkew(t, db, pgssi.Serializable)
	if err2 == nil {
		return
	}
	if !errors.Is(err2, pgssi.ErrSerialization) {
		t.Fatalf("error should wrap ErrSerialization: %v", err2)
	}
	if !strings.Contains(err2.Error(), "serialize") {
		t.Fatalf("error text should mention serialization: %v", err2)
	}
}
