package pgssi_test

import (
	"bufio"
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pgssi"
)

// Kill-and-reopen crash harness. Each iteration re-executes the test
// binary as a child process that opens a durable database in a fresh
// directory and hammers it with small transactions, reporting each
// attempt on stdout (one line per event, atomic under PIPE_BUF):
//
//	I <id>   intent: the transaction is about to run
//	C <id>   its Commit returned success (the durability ack)
//	A <id>   it was rolled back (deliberately, or by the engine)
//
// The parent SIGKILLs the child at a random moment mid-workload —
// landing anywhere, including between a group-commit fsync and the
// ack, or mid-record in a segment write, leaving a torn tail — then
// reopens the directory and checks the durability contract:
//
//   - every acknowledged transaction (C) is fully present;
//   - every rolled-back transaction (A) is fully absent;
//   - an in-flight transaction (I with no verdict) is all-or-nothing;
//   - recovery itself never fails or panics, whatever the torn state.
//
// Each transaction writes two keys (a<id>, b<id>), so "fully" is a real
// atomicity check: recovering one key of a transaction without the
// other is a torn commit.
//
// Half the iterations run the child in checkpoint-heavy mode (tiny
// segments, aggressive -checkpoint-every), so the SIGKILL also lands
// inside checkpoint writes and segment GC; the recovered state must
// honor the same contract from a checkpoint plus the log suffix, or
// from the previous manifest when the kill tore the newest checkpoint.
var crashIters = flag.Int("crash-iters", 20, "kill-and-reopen crash harness iterations (nightly soak raises this)")

const (
	crashChildEnv = "PGSSI_CRASH_CHILD"
	crashDirEnv   = "PGSSI_CRASH_DIR"
	crashCkptEnv  = "PGSSI_CRASH_CKPT"
	crashTable    = "kv"
)

func TestMain(m *testing.M) {
	if os.Getenv(crashChildEnv) == "1" {
		crashChildMain()
		return
	}
	os.Exit(m.Run())
}

// crashChildMain is the workload process: it runs until killed.
func crashChildMain() {
	dir := os.Getenv(crashDirEnv)
	if dir == "" {
		fmt.Fprintln(os.Stderr, "crash child: no data dir")
		os.Exit(1)
	}
	cfg := pgssi.Config{FsyncMode: pgssi.FsyncBatch}
	if os.Getenv(crashCkptEnv) == "1" {
		// Checkpoint-heavy mode: tiny segments and an aggressive trigger,
		// so the SIGKILL regularly lands mid-checkpoint or mid-GC and
		// recovery must fall back to the previous manifest.
		cfg.WALSegmentSize = 8 << 10
		cfg.CheckpointEvery = 16 << 10
	}
	db, err := pgssi.OpenDir(dir, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash child: open: %v\n", err)
		os.Exit(1)
	}
	if err := db.CreateTable(crashTable); err != nil && !strings.Contains(err.Error(), "already exists") {
		fmt.Fprintf(os.Stderr, "crash child: create table: %v\n", err)
		os.Exit(1)
	}
	var out sync.Mutex
	emit := func(verdict byte, id uint64) {
		out.Lock()
		fmt.Fprintf(os.Stdout, "%c %d\n", verdict, id)
		out.Unlock()
	}
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w uint64) {
			defer wg.Done()
			for n := uint64(0); ; n++ {
				id := w*1_000_000 + n
				emit('I', id)
				tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
				if err != nil {
					fmt.Fprintf(os.Stderr, "crash child: begin: %v\n", err)
					os.Exit(1)
				}
				ak, bk := crashKeys(id)
				if err := tx.Insert(crashTable, ak, []byte(crashValue(id, "a"))); err != nil {
					fmt.Fprintf(os.Stderr, "crash child: insert: %v\n", err)
					os.Exit(1)
				}
				if err := tx.Insert(crashTable, bk, []byte(crashValue(id, "b"))); err != nil {
					fmt.Fprintf(os.Stderr, "crash child: insert: %v\n", err)
					os.Exit(1)
				}
				// Every fifth transaction rolls back on purpose: the
				// uncommitted-must-stay-dead half of the contract.
				if n%5 == 4 {
					tx.Rollback()
					emit('A', id)
					continue
				}
				if err := tx.Commit(); err != nil {
					if pgssi.IsSerializationFailure(err) {
						emit('A', id)
						continue
					}
					fmt.Fprintf(os.Stderr, "crash child: commit: %v\n", err)
					os.Exit(1)
				}
				emit('C', id)
			}
		}(uint64(w))
	}
	wg.Wait()
}

func crashKeys(id uint64) (string, string) {
	return fmt.Sprintf("a%08d", id), fmt.Sprintf("b%08d", id)
}

func crashValue(id uint64, half string) string {
	return fmt.Sprintf("%s:%d", half, id)
}

func TestCrashKillAndReopen(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness spawns child processes; skipped in -short")
	}
	iters := *crashIters
	if *slowFuzz && iters == 20 {
		iters = 200
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), 0xdead))
	var totalCommits, totalKilledInFlight int
	for i := 0; i < iters; i++ {
		// Odd iterations run the checkpoint-heavy child: the kill can land
		// mid-checkpoint-write or mid-GC, and recovery must come up from
		// the previous manifest with the same durability contract.
		c, inflight := runCrashIteration(t, exe, i, rng, i%2 == 1)
		totalCommits += c
		totalKilledInFlight += inflight
	}
	if totalCommits == 0 {
		t.Fatal("no iteration produced a single acknowledged commit: the harness is vacuous")
	}
	t.Logf("%d iterations: %d acknowledged commits verified, %d in-flight at kill", iters, totalCommits, totalKilledInFlight)
}

// runCrashIteration spawns one child, kills it mid-workload, reopens
// its directory, and verifies the durability contract. It returns how
// many acknowledged commits were verified present and how many
// transactions were in flight (no verdict) at the kill.
func runCrashIteration(t *testing.T, exe string, iter int, rng *rand.Rand, checkpointed bool) (commits, inflight int) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), fmt.Sprintf("crash%03d", iter))

	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), crashChildEnv+"=1", crashDirEnv+"="+dir)
	if checkpointed {
		cmd.Env = append(cmd.Env, crashCkptEnv+"=1")
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Drain the child's event stream. verdicts holds the last state per
	// transaction id ('I' upgraded to 'C' or 'A').
	verdicts := make(map[uint64]byte)
	var mu sync.Mutex
	var sawCommit atomic.Bool
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			var verdict byte
			var id uint64
			if _, err := fmt.Sscanf(sc.Text(), "%c %d", &verdict, &id); err != nil {
				continue // partial final line at the kill point
			}
			mu.Lock()
			if verdict != 'I' || verdicts[id] == 0 {
				verdicts[id] = verdict
			}
			mu.Unlock()
			if verdict == 'C' {
				sawCommit.Store(true)
			}
		}
	}()

	// Let the workload reach at least one acknowledged commit, then
	// kill at a random point in the next stretch of work.
	deadline := time.Now().Add(20 * time.Second)
	for !sawCommit.Load() {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("iteration %d: no commit within 20s; child stderr: %s", iter, stderr.String())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(time.Duration(rng.IntN(120)) * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("iteration %d: kill: %v", iter, err)
	}
	err = cmd.Wait()
	<-drained
	if err == nil || stderr.Len() > 0 {
		// A clean exit means the child hit an internal error and quit
		// before the kill (its stderr says why).
		t.Fatalf("iteration %d: child did not die by SIGKILL (err=%v): %s", iter, err, stderr.String())
	}

	// Recovery must succeed on whatever torn state the kill left.
	db, err := pgssi.OpenDir(dir, pgssi.Config{})
	if err != nil {
		t.Fatalf("iteration %d: recovery failed: %v", iter, err)
	}
	defer db.Close()

	tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead, ReadOnly: true})
	if err != nil {
		t.Fatalf("iteration %d: begin on recovered db: %v", iter, err)
	}
	defer tx.Rollback()
	present := func(id uint64) (bool, bool) {
		ak, bk := crashKeys(id)
		av, aerr := tx.Get(crashTable, ak)
		bv, berr := tx.Get(crashTable, bk)
		if aerr != nil && !errors.Is(aerr, pgssi.ErrNotFound) && !errors.Is(aerr, pgssi.ErrNoTable) {
			t.Fatalf("iteration %d: get %s: %v", iter, ak, aerr)
		}
		if berr != nil && !errors.Is(berr, pgssi.ErrNotFound) && !errors.Is(berr, pgssi.ErrNoTable) {
			t.Fatalf("iteration %d: get %s: %v", iter, bk, berr)
		}
		if aerr == nil && string(av) != crashValue(id, "a") {
			t.Fatalf("iteration %d: %s holds %q, want %q", iter, ak, av, crashValue(id, "a"))
		}
		if berr == nil && string(bv) != crashValue(id, "b") {
			t.Fatalf("iteration %d: %s holds %q, want %q", iter, bk, bv, crashValue(id, "b"))
		}
		return aerr == nil, berr == nil
	}
	mu.Lock()
	defer mu.Unlock()
	for id, verdict := range verdicts {
		a, b := present(id)
		switch verdict {
		case 'C':
			if !a || !b {
				t.Fatalf("iteration %d: acknowledged transaction %d lost (a=%v b=%v): the durability contract is broken", iter, id, a, b)
			}
			commits++
		case 'A':
			if a || b {
				t.Fatalf("iteration %d: rolled-back transaction %d resurrected (a=%v b=%v)", iter, id, a, b)
			}
		case 'I':
			if a != b {
				t.Fatalf("iteration %d: in-flight transaction %d recovered torn (a=%v b=%v)", iter, id, a, b)
			}
			inflight++
		}
	}
	return commits, inflight
}
