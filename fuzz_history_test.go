package pgssi_test

import (
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"strconv"
	"testing"

	"pgssi"
	"pgssi/internal/graphcheck"
)

// A randomized serializability fuzzer: seeded generation of small
// concurrent histories (3–5 transactions over 4 keys, mixed Get / Scan /
// Put / Delete), executed at the Serializable level with a random
// interleaving, with every committed transaction's reads and writes
// recorded and the resulting multiversion history graph checked for
// cycles by the internal/graphcheck offline oracle. Any cycle among
// committed SSI transactions is a serializability bug.
//
// The driver is single-threaded and steps transactions according to a
// seeded schedule, which keeps every history fully deterministic and
// reproducible from its seed. Write-write blocking (a write to a key
// held by another in-flight writer would park the scheduler on the
// tuple lock) is sidestepped by degrading such a write to a read; the
// in-progress-blocking path is exercised by the concurrency stress
// tests instead. First-updater-wins conflicts against *committed*
// writers, all rw-antidependency shapes, and doomed-transaction aborts
// occur naturally and frequently.
//
// The generated mix also covers the lifecycle paths the plain
// read/write shape never reaches:
//
//   - declared READ ONLY transactions (writes degrade to reads), whose
//     safety watches resolve mid-schedule as concurrent read/write
//     transactions finish — exercising markSafeLocked, the mid-run
//     SIREAD drop, and the safe-snapshot read path under concurrency;
//   - two-phase transactions that Prepare at the end of their program
//     and only CommitPrepared (or occasionally RollbackPrepared) at a
//     later schedule step, so other transactions' conflict checks run
//     against the prepared state in between;
//   - on some seeds, one SERIALIZABLE READ ONLY DEFERRABLE transaction
//     running on a background goroutine (its Begin blocks for a safe
//     snapshot, so it cannot be stepped by the deterministic
//     scheduler). Its interleaving is timing-dependent, but its reads
//     record exactly the versions observed, so the oracle validation
//     is unaffected.
//
// Values encode their writer so reads can name the version they saw:
// transaction h writes strconv(h), the seed data is "0" (graphcheck's
// initial version). Deletes are modelled as delete+reinsert inside the
// same transaction — a real tx.Delete exercising the tombstone write
// path, followed by a reinsert so the key stays readable — and recorded
// as a single write, which keeps read-modify-write histories well-formed
// for graphcheck.Build.

var slowFuzz = flag.Bool("slow", false, "run the fuzzer with its long budget (nightly CI)")

var fuzzKeys = [4]string{"a", "b", "c", "d"}

// TestFuzzSerializableHistories validates every seeded history under
// BOTH snapshot representations — the default CSN scheme and the legacy
// xmin/xmax/in-progress sets (Config.DisableCSNSnapshots) — asserting a
// cycle-free committed execution for each and identical per-transaction
// commit/abort verdicts between the two: any *systematic* verdict
// divergence is a semantic difference between the snapshot
// representations, exactly what the CSN migration must not introduce.
//
// Verdicts are not perfectly run-to-run deterministic even under one
// representation: the epoch reclaimer's background passes (PR 3) race
// the schedule, and on a few seeds whether a pass lands inside a
// particular window decides whether a committed transaction's edges are
// still present at a later pre-commit check (both outcomes are
// serializable; the oracle accepts either). A mismatch between the two
// representations is therefore only a failure if it is systematic: on
// mismatch the comparison re-runs both representations and accepts the
// seed iff either one reproduces the other's verdict vector, proving
// the reachable-outcome sets intersect — timing variance reproduces
// across representations, a semantic divergence never does.
func TestFuzzSerializableHistories(t *testing.T) {
	histories := 1000
	if testing.Short() {
		histories = 150
	}
	if *slowFuzz {
		histories = 20000
	}
	run := func(seed int, cfg pgssi.Config, label string) []bool {
		verdicts, cyc := runFuzzHistory(t, uint64(seed), pgssi.Serializable, cfg)
		if cyc != nil {
			t.Fatalf("seed %d (%s): committed SSI execution has dependency cycle %v", seed, label, cyc)
		}
		return verdicts
	}
	for seed := 1; seed <= histories; seed++ {
		// The scan read path alternates by seed between the page-grained
		// batch (default) and the legacy per-row ablation, so every run
		// of the fuzzer validates oracle parity under both snapshot
		// representations with batching on AND off. Both representations
		// of one seed use the same setting — the cross-representation
		// verdict comparison must vary exactly one axis.
		perRow := seed%2 == 0
		csnCfg := pgssi.Config{DisableScanBatch: perRow}
		legacy := pgssi.Config{DisableCSNSnapshots: true, DisableScanBatch: perRow}
		csnVerdicts := run(seed, csnCfg, "csn")
		legacyVerdicts := run(seed, legacy, "legacy")
		if verdictsEqual(csnVerdicts, legacyVerdicts) {
			continue
		}
		// Timing or semantics? The reachable-outcome sets of the two
		// representations must intersect: it suffices that EITHER
		// representation reproduces the other's vector — that exhibits
		// one verdict vector reachable under both. (Requiring both
		// directions is too strict: timing-sensitive seeds produce the
		// same outcome vectors under both representations but with
		// skewed probabilities, and a ~10%-minority outcome routinely
		// evades a dozen retries.) A semantic divergence — an outcome
		// vector reachable under exactly one representation — leaves
		// the sets disjoint and fails both directions every retry.
		const retries = 12
		crossed := false
		for r := 0; r < retries && !crossed; r++ {
			crossed = verdictsEqual(run(seed, csnCfg, "csn retry"), legacyVerdicts) ||
				verdictsEqual(run(seed, legacy, "legacy retry"), csnVerdicts)
		}
		if !crossed {
			t.Fatalf("seed %d: systematic verdict divergence between snapshot representations: csn=%v legacy=%v (neither reproduced the other in %d retries)",
				seed, csnVerdicts, legacyVerdicts, retries)
		}
	}
}

func verdictsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFuzzOracleDetectsSnapshotIsolationAnomalies is the oracle's
// self-test: the same seeded histories run at plain snapshot isolation
// (RepeatableRead) must produce dependency cycles — write skew — in some
// of them. If the recorder or graph builder ever went blind, this test
// would catch it before the Serializable run above became vacuous.
func TestFuzzOracleDetectsSnapshotIsolationAnomalies(t *testing.T) {
	cycles := 0
	const histories = 300
	for seed := 1; seed <= histories; seed++ {
		if _, cyc := runFuzzHistory(t, uint64(seed), pgssi.RepeatableRead, pgssi.Config{}); cyc != nil {
			cycles++
		}
	}
	if cycles == 0 {
		t.Fatalf("no dependency cycle in %d snapshot-isolation histories: the oracle or recorder lost its teeth", histories)
	}
	t.Logf("oracle found cycles in %d/%d snapshot-isolation histories", cycles, histories)
}

// fop is one generated operation.
type fop struct {
	kind int // 0 = Get, 1 = Scan, 2 = Put, 3 = Delete(+reinsert)
	key  string
}

// ftxn is one fuzz transaction's runtime state and recorded history.
type ftxn struct {
	tx        *pgssi.Tx
	id        uint64
	prog      []fop
	next      int
	ops       []graphcheck.Op
	wrote     map[string]bool
	readOnly  bool
	twoPC     bool
	prepared  bool
	aborted   bool
	committed bool
}

// ackedCommit records one committed transaction's acknowledged write
// set, in commit-acknowledgement order — the oracle sequence for the
// crash-recovery mode: a recovered state must equal the fold of some
// prefix of these.
type ackedCommit struct {
	id     uint64
	writes map[string]string
}

// runFuzzHistory executes one seeded history at the given isolation
// level under the given engine configuration. It returns the committed
// verdict of each scheduled transaction (indexed by transaction id - 1)
// and any dependency cycle among the committed transactions (nil for a
// serializable outcome).
func runFuzzHistory(t *testing.T, seed uint64, level pgssi.IsolationLevel, cfg pgssi.Config) ([]bool, []uint64) {
	t.Helper()
	db := pgssi.Open(cfg)
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	return runFuzzHistoryOn(t, seed, level, db, nil)
}

// runFuzzHistoryOn runs the seeded history against an existing database
// with table "t" already created (the crash-recovery mode passes a
// durable OpenDir database). When acked is non-nil, every committed
// transaction's write set is appended in commit-acknowledgement order.
func runFuzzHistoryOn(t *testing.T, seed uint64, level pgssi.IsolationLevel, db *pgssi.DB, acked *[]ackedCommit) ([]bool, []uint64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0x5551))
	init, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range fuzzKeys {
		mustExec(t, init.Insert("t", k, []byte("0")))
	}
	mustExec(t, init.Commit())
	if acked != nil {
		w := make(map[string]string, len(fuzzKeys))
		for _, k := range fuzzKeys {
			w[k] = "0"
		}
		*acked = append(*acked, ackedCommit{id: 0, writes: w})
	}

	ntxns := 3 + rng.IntN(3)
	txns := make([]*ftxn, ntxns)
	for i := range txns {
		nops := 2 + rng.IntN(4)
		prog := make([]fop, nops)
		for j := range prog {
			prog[j] = fop{kind: rng.IntN(4), key: fuzzKeys[rng.IntN(len(fuzzKeys))]}
		}
		f := &ftxn{id: uint64(i + 1), prog: prog, wrote: make(map[string]bool)}
		// Lifecycle mix: ~20% declared read-only, ~17% two-phase
		// (Serializable only — 2PC under SSI is what moves the
		// pre-commit check to Prepare).
		switch roll := rng.IntN(12); {
		case roll < 2:
			f.readOnly = true
		case roll < 4 && level == pgssi.Serializable:
			f.twoPC = true
		}
		tx, err := db.Begin(pgssi.TxOptions{Isolation: level, ReadOnly: f.readOnly})
		if err != nil {
			t.Fatal(err)
		}
		f.tx = tx
		txns[i] = f
	}

	// On some seeds, one deferrable read-only transaction runs on a
	// background goroutine: its Begin blocks until a safe snapshot is
	// available, which resolves as the scheduled transactions finish.
	var deferrable *ftxn
	var deferrableDone chan struct{}
	if level == pgssi.Serializable && rng.IntN(3) == 0 {
		deferrable = &ftxn{id: uint64(ntxns + 1), wrote: make(map[string]bool)}
		deferrableDone = make(chan struct{})
		go func() {
			defer close(deferrableDone)
			tx, err := db.Begin(pgssi.TxOptions{
				Isolation: pgssi.Serializable, ReadOnly: true, Deferrable: true,
			})
			if err != nil {
				t.Errorf("seed %d: deferrable begin: %v", seed, err)
				return
			}
			if !tx.OnSafeSnapshot() {
				t.Errorf("seed %d: deferrable transaction not on a safe snapshot", seed)
			}
			for _, k := range fuzzKeys {
				v, err := tx.Get("t", k)
				if err != nil {
					t.Errorf("seed %d: deferrable get %q: %v", seed, k, err)
					return
				}
				deferrable.ops = append(deferrable.ops, graphcheck.Op{Key: k, Saw: parseFuzzVersion(t, v)})
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("seed %d: deferrable commit: %v", seed, err)
				return
			}
			deferrable.committed = true
		}()
	}

	// activeWriter names the in-flight transaction holding each key's
	// tuple write lock, so the scheduler never dispatches a write that
	// would block on it.
	activeWriter := make(map[string]*ftxn)
	remaining := ntxns
	for remaining > 0 {
		f := txns[rng.IntN(ntxns)]
		if f.aborted || f.committed {
			continue
		}
		if f.next == len(f.prog) {
			if fuzzFinish(t, db, f, rng, activeWriter, acked) {
				remaining--
			}
			continue
		}
		op := f.prog[f.next]
		f.next++
		fuzzStep(t, seed, f, op, activeWriter)
		if f.aborted {
			remaining--
		}
	}
	if deferrable != nil {
		<-deferrableDone
	}

	var committed []graphcheck.Txn
	verdicts := make([]bool, ntxns)
	for i, f := range txns {
		verdicts[i] = f.committed
		if f.committed {
			committed = append(committed, graphcheck.Txn{ID: f.id, Ops: f.ops})
		}
	}
	if deferrable != nil && deferrable.committed {
		committed = append(committed, graphcheck.Txn{ID: deferrable.id, Ops: deferrable.ops})
	}
	g, err := graphcheck.Build(committed)
	if err != nil {
		t.Fatalf("seed %d: malformed recorded history: %v", seed, err)
	}
	return verdicts, g.Cycle()
}

// fuzzAbort rolls the transaction back and releases its write claims.
func fuzzAbort(f *ftxn, activeWriter map[string]*ftxn, rolledBack bool) {
	if !rolledBack {
		f.tx.Rollback()
	}
	f.aborted = true
	for k, w := range activeWriter {
		if w == f {
			delete(activeWriter, k)
		}
	}
}

// fuzzFinish advances a transaction that exhausted its program toward
// its end state and reports whether it finished for good. Plain
// transactions commit (a serialization failure aborts them instead).
// Two-phase transactions Prepare on their first finish step and stay
// schedulable: the scheduler returns to them later for CommitPrepared —
// which, after a successful Prepare, must never fail — or an occasional
// RollbackPrepared. Between the two steps other transactions run their
// conflict checks against the prepared state.
func fuzzFinish(t *testing.T, db *pgssi.DB, f *ftxn, rng *rand.Rand, activeWriter map[string]*ftxn, acked *[]ackedCommit) bool {
	t.Helper()
	// recordAck captures the committed write set at acknowledgement time
	// (every write of transaction f carries the value fmt.Sprint(f.id) —
	// deletes reinsert — so the set is just the keys written).
	recordAck := func() {
		if acked == nil || len(f.wrote) == 0 {
			return
		}
		w := make(map[string]string, len(f.wrote))
		for k := range f.wrote {
			w[k] = fmt.Sprint(f.id)
		}
		*acked = append(*acked, ackedCommit{id: f.id, writes: w})
	}
	gid := fmt.Sprintf("fuzz-%d", f.id)
	if f.twoPC && !f.prepared {
		if err := f.tx.Prepare(gid); err != nil {
			if !pgssi.IsSerializationFailure(err) {
				t.Fatalf("prepare: %v", err)
			}
			// Prepare rolled the transaction back itself.
			fuzzAbort(f, activeWriter, true)
			return true
		}
		f.prepared = true
		return false
	}
	if f.prepared {
		if rng.IntN(8) == 0 {
			if err := db.RollbackPrepared(gid); err != nil {
				t.Fatalf("rollback prepared: %v", err)
			}
			fuzzAbort(f, activeWriter, true)
			return true
		}
		if err := db.CommitPrepared(gid); err != nil {
			t.Fatalf("commit prepared: %v", err)
		}
		f.committed = true
		recordAck()
		for k, w := range activeWriter {
			if w == f {
				delete(activeWriter, k)
			}
		}
		return true
	}
	if err := f.tx.Commit(); err != nil {
		if !pgssi.IsSerializationFailure(err) {
			t.Fatalf("commit: %v", err)
		}
		// Commit rolled the transaction back itself.
		fuzzAbort(f, activeWriter, true)
		return true
	}
	f.committed = true
	recordAck()
	for k, w := range activeWriter {
		if w == f {
			delete(activeWriter, k)
		}
	}
	return true
}

// fuzzGet reads key, records the version observed, and returns false if
// the transaction aborted.
func fuzzGet(t *testing.T, f *ftxn, key string, activeWriter map[string]*ftxn) bool {
	t.Helper()
	v, err := f.tx.Get("t", key)
	if err != nil {
		if pgssi.IsSerializationFailure(err) {
			fuzzAbort(f, activeWriter, false)
			return false
		}
		// Keys are never absent (deletes reinsert), so any other
		// error is an engine bug the fuzzer just found.
		t.Fatalf("get %q: %v", key, err)
	}
	f.ops = append(f.ops, graphcheck.Op{Key: key, Saw: parseFuzzVersion(t, v)})
	return true
}

func parseFuzzVersion(t *testing.T, v []byte) graphcheck.Version {
	t.Helper()
	n, err := strconv.ParseUint(string(v), 10, 64)
	if err != nil {
		t.Fatalf("unparseable version value %q", v)
	}
	return graphcheck.Version(n)
}

func fuzzStep(t *testing.T, seed uint64, f *ftxn, op fop, activeWriter map[string]*ftxn) {
	t.Helper()
	val := []byte(fmt.Sprint(f.id))
	// Degrade a write to a read when the transaction is declared READ
	// ONLY, when it would block on another in-flight writer, or when it
	// would be this transaction's second write to the key (which
	// graphcheck's read-modify-write model cannot express).
	if op.kind >= 2 && (f.readOnly || f.wrote[op.key] || (activeWriter[op.key] != nil && activeWriter[op.key] != f)) {
		op.kind = 0
	}
	switch op.kind {
	case 0: // Get
		fuzzGet(t, f, op.key, activeWriter)
	case 1: // Scan all keys
		var rows [][2]string
		err := f.tx.Scan("t", "", "", func(k string, v []byte) bool {
			rows = append(rows, [2]string{k, string(v)})
			return true
		})
		if err != nil {
			if pgssi.IsSerializationFailure(err) {
				fuzzAbort(f, activeWriter, false)
				return
			}
			t.Fatalf("seed %d: scan: %v", seed, err)
		}
		for _, r := range rows {
			f.ops = append(f.ops, graphcheck.Op{Key: r[0], Saw: parseFuzzVersion(t, []byte(r[1]))})
		}
	case 2: // Put: read-modify-write
		if !fuzzGet(t, f, op.key, activeWriter) {
			return
		}
		if err := f.tx.Update("t", op.key, val); err != nil {
			if pgssi.IsSerializationFailure(err) {
				fuzzAbort(f, activeWriter, false)
				return
			}
			t.Fatalf("seed %d: update %q: %v", seed, op.key, err)
		}
		f.ops = append(f.ops, graphcheck.Op{Key: op.key, Write: true})
		f.wrote[op.key] = true
		activeWriter[op.key] = f
	case 3: // Delete + reinsert, recorded as one write
		if !fuzzGet(t, f, op.key, activeWriter) {
			return
		}
		if err := f.tx.Delete("t", op.key); err != nil {
			if pgssi.IsSerializationFailure(err) {
				fuzzAbort(f, activeWriter, false)
				return
			}
			t.Fatalf("seed %d: delete %q: %v", seed, op.key, err)
		}
		if err := f.tx.Insert("t", op.key, val); err != nil {
			if pgssi.IsSerializationFailure(err) || errors.Is(err, pgssi.ErrDuplicateKey) {
				fuzzAbort(f, activeWriter, false)
				return
			}
			t.Fatalf("seed %d: reinsert %q: %v", seed, op.key, err)
		}
		f.ops = append(f.ops, graphcheck.Op{Key: op.key, Write: true})
		f.wrote[op.key] = true
		activeWriter[op.key] = f
	}
}
