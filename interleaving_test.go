package pgssi_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"pgssi"
)

// Tests in this file drive the read-vs-write detection window with a
// deterministic interleaving harness. The engine's Serializable level
// computes a read's MVCC conflict-out set and inserts its SIREAD lock in
// separate steps; the per-page read latch (internal/storage/latch.go)
// makes the pair atomic with respect to writers of the same page. The
// Config.OnRead hook pauses a chosen reader exactly between the two
// steps, so the tests can:
//
//   - reproduce the missed rw-antidependency on the unlatched code path
//     (Config.DisableReadLatch): a writer slips its CheckWrite probe
//     into the window, both transactions commit, and write skew is
//     admitted under SERIALIZABLE — the §2.1.1 silent corruption;
//   - prove the latch closes it: the same interleaving cannot be
//     scheduled (the writer blocks on the latch until the reader's
//     SIREAD lock is registered), and exactly one transaction aborts
//     with a serialization failure.
//
// The absent-key/gap case has no such window — the index leaf gap lock
// is taken under the btree tree lock before the heap read — and the
// tests document that by asserting detection with the latch both on and
// off.

// readPauser arms a one-shot pause in the OnRead hook for a single key.
type readPauser struct {
	key      string
	armed    atomic.Bool
	inWindow chan struct{}
	release  chan struct{}
}

func newReadPauser() *readPauser {
	return &readPauser{
		inWindow: make(chan struct{}),
		release:  make(chan struct{}),
	}
}

// arm makes the next heap read of key pause. Call before the reader
// goroutine starts.
func (p *readPauser) arm(key string) {
	p.key = key
	p.armed.Store(true)
}

func (p *readPauser) hook(_, key string) {
	if key == p.key && p.armed.CompareAndSwap(true, false) {
		close(p.inWindow)
		<-p.release
	}
}

// windowDB builds a two-row database whose rows land on distinct heap
// pages (64 filler rows push k2 onto the next page), so the latch held
// by a paused reader of k1 does not incidentally block reads of k2.
func windowDB(t *testing.T, cfg pgssi.Config) *pgssi.DB {
	t.Helper()
	db := pgssi.Open(cfg)
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	seed, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, seed.Insert("t", "k1", []byte("on")))
	for i := 0; i < 64; i++ {
		mustExec(t, seed.Insert("t", fmt.Sprintf("filler%02d", i), []byte("x")))
	}
	mustExec(t, seed.Insert("t", "k2", []byte("on")))
	mustExec(t, seed.Commit())
	return db
}

// readKey reads one key either through the point-read path (Get) or the
// index-scan path (Scan), the two paths whose SIREAD registration the
// latch must make atomic with the visibility check.
func readKey(tx *pgssi.Tx, key string, viaScan bool) ([]byte, error) {
	if !viaScan {
		return tx.Get("t", key)
	}
	var val []byte
	found := false
	err := tx.Scan("t", key, key+"\x00", func(_ string, v []byte) bool {
		val, found = v, true
		return true
	})
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, pgssi.ErrNotFound
	}
	return val, nil
}

// driveWindowWriteSkew drives the canonical write-skew interleaving
// with T1 parked in the detection window of its read of k1:
//
//	T1: read k1 … [window] …            … write k2, commit
//	T2:            read k2, write k1, commit
//
// With the latch disabled T2 commits entirely inside T1's window; with
// it enabled T2 blocks on the page latch until T1's SIREAD lock is in
// the table. Returns the first error of each transaction.
func driveWindowWriteSkew(t *testing.T, db *pgssi.DB, p *readPauser, disableLatch, viaScan bool) (err1, err2 error) {
	t.Helper()
	t1, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	mustExec(t, err)
	t2, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	mustExec(t, err)

	p.arm("k1")
	t2start := make(chan struct{})
	t2finished := make(chan struct{})
	t1finished := make(chan struct{})
	var t1err, t2err error

	go func() {
		defer close(t1finished)
		t1err = func() error {
			if _, err := readKey(t1, "k1", viaScan); err != nil {
				t1.Rollback()
				return err
			}
			// Keep the canonical order: T1 resumes its writes only
			// after T2 is done (in the unlatched run T2 is already
			// done when the pause lifts).
			<-t2finished
			if err := t1.Update("t", "k2", []byte("off")); err != nil {
				t1.Rollback()
				return err
			}
			return t1.Commit()
		}()
	}()

	go func() {
		defer close(t2finished)
		<-t2start
		t2err = func() error {
			if _, err := readKey(t2, "k2", viaScan); err != nil {
				t2.Rollback()
				return err
			}
			if err := t2.Update("t", "k1", []byte("off")); err != nil {
				t2.Rollback()
				return err
			}
			return t2.Commit()
		}()
	}()

	<-p.inWindow
	close(t2start)
	if disableLatch {
		// The open window: the writer must be able to run to commit
		// while the reader is paused between its visibility check and
		// its SIREAD insertion.
		<-t2finished
	} else {
		// The latch excludes the writer for as long as the reader
		// holds the page. (A false pass here would need T2 to finish;
		// a slow scheduler can only make the select take the safe
		// timeout arm.)
		select {
		case <-t2finished:
			t.Fatal("writer committed while reader held the page latch")
		case <-time.After(50 * time.Millisecond):
		}
	}
	close(p.release)
	<-t1finished
	<-t2finished
	return t1err, t2err
}

// onCount counts rows of value "on" among k1, k2.
func onCount(t *testing.T, db *pgssi.DB) int {
	t.Helper()
	check, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	mustExec(t, err)
	defer check.Rollback()
	n := 0
	for _, k := range []string{"k1", "k2"} {
		v, err := check.Get("t", k)
		if err != nil {
			t.Fatal(err)
		}
		if string(v) == "on" {
			n++
		}
	}
	return n
}

func TestDetectionWindowWriteSkew(t *testing.T) {
	// The Scan case runs through BOTH scan read paths: the page-grained
	// batch path (the default — visibility and SIREAD registration for
	// the whole page happen under one shared latch, registration before
	// the latch drops) and the legacy per-row path
	// (Config.DisableScanBatch). The batch path must preserve the PR 2
	// atomicity exactly: with the latch ablated the same missed
	// antidependency reappears through the batched code, and with it
	// enabled the writer provably blocks until the batch's registration
	// is in the table.
	for _, via := range []struct {
		name    string
		viaScan bool
		perRow  bool
	}{{"Get", false, false}, {"Scan-batch", true, false}, {"Scan-perrow", true, true}} {
		t.Run(via.name, func(t *testing.T) {
			t.Run("latch-disabled-misses-antidependency", func(t *testing.T) {
				// The regression PR 2 fixed, reproduced: with the
				// latch ablated, T2's CheckWrite runs in T1's window,
				// sees neither T1's SIREAD lock nor a conflicting
				// version, and the rw-antidependency T1 → T2 is lost.
				// Both transactions commit and the write-skew anomaly
				// survives SERIALIZABLE.
				err1, err2 := runWindowWriteSkewCheck(t, true, via.viaScan, via.perRow)
				if err1 != nil || err2 != nil {
					t.Fatalf("expected the unlatched engine to miss the conflict and commit both: err1=%v err2=%v", err1, err2)
				}
			})
			t.Run("latch-enabled-detects", func(t *testing.T) {
				err1, err2 := runWindowWriteSkewCheck(t, false, via.viaScan, via.perRow)
				if (err1 == nil) == (err2 == nil) {
					t.Fatalf("exactly one transaction should fail: err1=%v err2=%v", err1, err2)
				}
				failed := err1
				if failed == nil {
					failed = err2
				}
				if !pgssi.IsSerializationFailure(failed) {
					t.Fatalf("failure should be a serialization failure, got %v", failed)
				}
			})
		})
	}
}

// runWindowWriteSkewCheck runs the interleaving and verifies the final
// state matches the commit outcome: the invariant "at least one of k1,
// k2 is on" is broken exactly when both transactions committed.
func runWindowWriteSkewCheck(t *testing.T, disableLatch, viaScan, perRow bool) (err1, err2 error) {
	t.Helper()
	p := newReadPauser()
	db := windowDB(t, pgssi.Config{DisableReadLatch: disableLatch, DisableScanBatch: perRow, OnRead: p.hook})
	err1, err2 = driveWindowWriteSkew(t, db, p, disableLatch, viaScan)
	aborted := 0
	for _, e := range []error{err1, err2} {
		if e != nil {
			if !pgssi.IsSerializationFailure(e) {
				t.Fatalf("unexpected error: %v", e)
			}
			aborted++
		}
	}
	if n := onCount(t, db); (aborted == 0) != (n == 0) {
		t.Fatalf("final state inconsistent with outcome: %d aborts, %d rows on", aborted, n)
	}
	return err1, err2
}

// TestDetectionWindowWriterFirst is the opposite commit order: the
// writer's update and commit land entirely before the reader's
// visibility check, so the conflict is inferred from MVCC data (§5.2's
// "if the write happens first" case) and detection cannot depend on the
// latch. Exactly one transaction must abort with the latch on or off.
func TestDetectionWindowWriterFirst(t *testing.T) {
	for _, via := range []struct {
		name    string
		viaScan bool
	}{{"Get", false}, {"Scan", true}} {
		for _, disable := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/latch-disabled=%v", via.name, disable), func(t *testing.T) {
				db := windowDB(t, pgssi.Config{DisableReadLatch: disable})
				t1, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
				mustExec(t, err)
				t2, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
				mustExec(t, err)

				// T2 runs to completion first (T1's snapshot already
				// taken, so the transactions are concurrent).
				var err2 error
				if _, err := readKey(t2, "k2", via.viaScan); err != nil {
					t.Fatal(err)
				}
				if err := t2.Update("t", "k1", []byte("off")); err != nil {
					err2 = err
					t2.Rollback()
				} else {
					err2 = t2.Commit()
				}
				mustExec(t, err2)

				// T1's read of k1 now sees T2's committed, invisible
				// version: conflict out via MVCC.
				var err1 error
				if _, err := readKey(t1, "k1", via.viaScan); err != nil {
					err1 = err
					t1.Rollback()
				} else if err := t1.Update("t", "k2", []byte("off")); err != nil {
					err1 = err
					t1.Rollback()
				} else {
					err1 = t1.Commit()
				}
				if err1 == nil {
					t.Fatal("T1 must abort: T2 → T1 → T2 is a cycle with T2 committed")
				}
				if !pgssi.IsSerializationFailure(err1) {
					t.Fatalf("expected serialization failure, got %v", err1)
				}
				if n := onCount(t, db); n != 1 {
					t.Fatalf("invariant broken: %d rows on, want 1", n)
				}
			})
		}
	}
}

// TestDetectionWindowGapInsert covers the absent-key/gap case: two
// transactions each probe a missing key and insert the other's key. The
// gap path has no detection window — the index leaf gap lock is taken
// under the btree tree lock before the heap read — so the antidependency
// cycle is caught with the latch disabled as well, with the reader
// paused in the same hook window. The paused reader holds no page latch
// (there is no visible version), so the writer completes in both modes.
func TestDetectionWindowGapInsert(t *testing.T) {
	for _, disable := range []bool{false, true} {
		t.Run(fmt.Sprintf("latch-disabled=%v", disable), func(t *testing.T) {
			p := newReadPauser()
			db := windowDB(t, pgssi.Config{DisableReadLatch: disable, OnRead: p.hook})
			t1, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
			mustExec(t, err)
			t2, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
			mustExec(t, err)

			p.arm("g1")
			t1finished := make(chan struct{})
			t2finished := make(chan struct{})
			var err1, err2 error
			go func() {
				defer close(t1finished)
				err1 = func() error {
					if _, err := t1.Get("t", "g1"); !errors.Is(err, pgssi.ErrNotFound) {
						return fmt.Errorf("gap probe: got %v, want ErrNotFound", err)
					}
					<-t2finished
					if err := t1.Insert("t", "g2", []byte("v")); err != nil {
						t1.Rollback()
						return err
					}
					return t1.Commit()
				}()
			}()

			<-p.inWindow
			// T2 commits entirely while T1 is paused after its gap
			// probe: the index gap lock T1 took before the pause is
			// what T2's CheckIndexInsert must find.
			go func() {
				defer close(t2finished)
				err2 = func() error {
					if _, err := t2.Get("t", "g2"); !errors.Is(err, pgssi.ErrNotFound) {
						return fmt.Errorf("gap probe: got %v, want ErrNotFound", err)
					}
					if err := t2.Insert("t", "g1", []byte("v")); err != nil {
						t2.Rollback()
						return err
					}
					return t2.Commit()
				}()
			}()
			<-t2finished
			close(p.release)
			<-t1finished

			if (err1 == nil) == (err2 == nil) {
				t.Fatalf("exactly one transaction should fail: err1=%v err2=%v", err1, err2)
			}
			failed := err1
			if failed == nil {
				failed = err2
			}
			if !pgssi.IsSerializationFailure(failed) {
				t.Fatalf("failure should be a serialization failure, got %v", failed)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Lifecycle interleaving harness (PR 3).
//
// The lifecycle refactor decomposed the global SSI mutex: Begin registers
// through a sharded registry with a snapshot-ordering step, conflict-free
// commits run under only their own edge lock, and cleanup moved to an
// epoch reclaimer. Each narrowed critical section is falsifiable the same
// way the PR 2 read latch is: Config.OnBegin and Config.OnPreCommit park
// a transaction inside the window, and Config.DisableLifecycleFencing
// reopens it. With fencing enabled the tests prove the racing transaction
// provably blocks and the anomaly cannot be scheduled; with it disabled
// the same schedule admits a concrete serializability violation.

// lifecyclePauser arms a one-shot pause in a lifecycle hook, either for
// a specific xid or (xid == 0) for the next invocation.
type lifecyclePauser struct {
	xid      atomic.Uint64
	armed    atomic.Bool
	inWindow chan struct{}
	release  chan struct{}
}

func newLifecyclePauser() *lifecyclePauser {
	return &lifecyclePauser{
		inWindow: make(chan struct{}),
		release:  make(chan struct{}),
	}
}

// arm makes the next hook invocation for xid pause (xid 0 = any).
func (p *lifecyclePauser) arm(xid uint64) {
	p.xid.Store(xid)
	p.armed.Store(true)
}

func (p *lifecyclePauser) hook(xid uint64) {
	if want := p.xid.Load(); want != 0 && want != xid {
		return
	}
	if p.armed.CompareAndSwap(true, false) {
		close(p.inWindow)
		<-p.release
	}
}

// TestLifecyclePreCommitWindowWriteSkew drives write skew against the
// pre-commit window: T1 passes its pre-commit serialization check and is
// parked before its commit-sequence assignment, while T2 builds the
// closing rw-antidependency cycle (T2 reads what T1 wrote, writes what
// T1 read) and commits, dooming T1.
//
//	T1: read k1, write k2, [check passes — window] … assign seq, finish
//	T2:                    read k2, write k1, commit (dooms T1)
//
// With fencing, the check and the assignment are one critical section
// (T1 holds its edge lock across the window, since it is conflict-free
// at check time), so T2's conflict flagging provably blocks until T1 is
// committed and exactly one transaction fails. With the fencing
// disabled, T1 commits despite the doom and the write-skew anomaly
// survives SERIALIZABLE.
func TestLifecyclePreCommitWindowWriteSkew(t *testing.T) {
	t.Run("fencing-disabled-misses-doom", func(t *testing.T) {
		err1, err2, on := runLifecyclePreCommitWindow(t, true)
		if err1 != nil || err2 != nil {
			t.Fatalf("expected the unfenced engine to commit both: err1=%v err2=%v", err1, err2)
		}
		if on != 0 {
			t.Fatalf("write skew admitted but invariant intact: %d rows on, want 0", on)
		}
	})
	t.Run("fencing-blocks-and-detects", func(t *testing.T) {
		err1, err2, on := runLifecyclePreCommitWindow(t, false)
		if (err1 == nil) == (err2 == nil) {
			t.Fatalf("exactly one transaction should fail: err1=%v err2=%v", err1, err2)
		}
		failed := err1
		if failed == nil {
			failed = err2
		}
		if !pgssi.IsSerializationFailure(failed) {
			t.Fatalf("failure should be a serialization failure, got %v", failed)
		}
		if on != 1 {
			t.Fatalf("one transaction aborted: %d rows on, want 1", on)
		}
	})
}

func runLifecyclePreCommitWindow(t *testing.T, disableFencing bool) (err1, err2 error, on int) {
	t.Helper()
	p := newLifecyclePauser()
	db := windowDB(t, pgssi.Config{
		DisableLifecycleFencing: disableFencing,
		OnPreCommit:             p.hook,
	})
	t1, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	mustExec(t, err)
	t2, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
	mustExec(t, err)

	if _, err := t1.Get("t", "k1"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Update("t", "k2", []byte("off")); err != nil {
		t.Fatal(err)
	}
	p.arm(t1.ID())
	t1done := make(chan struct{})
	go func() {
		defer close(t1done)
		err1 = t1.Commit()
	}()
	<-p.inWindow

	t2done := make(chan struct{})
	go func() {
		defer close(t2done)
		err2 = func() error {
			if _, err := t2.Get("t", "k2"); err != nil {
				t2.Rollback()
				return err
			}
			if err := t2.Update("t", "k1", []byte("off")); err != nil {
				t2.Rollback()
				return err
			}
			return t2.Commit()
		}()
	}()

	if disableFencing {
		// The reopened window: T2 must be able to run to commit while
		// T1 sits between its passed check and its commit.
		<-t2done
	} else {
		// T1 holds its commit critical section across the window; T2's
		// first conflict against T1 (its read of k2 sees T1's
		// uncommitted version) must block on it.
		select {
		case <-t2done:
			t.Fatal("T2 finished while T1 held its commit critical section")
		case <-time.After(50 * time.Millisecond):
		}
	}
	close(p.release)
	<-t1done
	<-t2done
	return err1, err2, onCount(t, db)
}

// TestLifecycleReadOnlyBeginWindow drives the §4.2 safe-snapshot
// bookkeeping against Begin's window between snapshot acquisition and
// safety-watcher registration. The schedule makes RO's snapshot
// genuinely unsafe: a read/write transaction X (with an rw-conflict out
// to T3, which committed before RO's snapshot) commits inside RO's
// begin window.
//
//	T3: write k1, commit (C1)                 [X → T3 flagged first]
//	X:  read k1 … write k2 …                  … commit (out-conflict C1)
//	RO:              snapshot [window] register-watchers, read k1, k2
//
// With fencing, Begin holds the snapshot and the watcher scan in one
// critical section: X's commit provably blocks until RO is watching it,
// the verdict resolves to unsafe, and RO's subsequent read of k2 — a
// dangerous structure RO → X → T3 with T3 committed before RO's
// snapshot — correctly aborts RO. With the fencing disabled, X's commit
// escapes the bookkeeping, RO is wrongly marked safe (it drops SSI
// tracking entirely), and it silently observes the impossible state
// {k1 from T3, k2 pre-X}: RO must follow T3 (it saw T3's write),
// precede X (it missed X's write), yet X precedes T3 in every serial
// order (X read k1 before T3 changed it) — a cycle.
func TestLifecycleReadOnlyBeginWindow(t *testing.T) {
	for _, disable := range []bool{false, true} {
		t.Run(fmt.Sprintf("fencing-disabled=%v", disable), func(t *testing.T) {
			p := newLifecyclePauser()
			db := windowDB(t, pgssi.Config{
				DisableLifecycleFencing: disable,
				OnBegin:                 p.hook,
			})
			x, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
			mustExec(t, err)
			t3, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
			mustExec(t, err)

			// X reads k1, then T3 overwrites it and commits: X → T3.
			if _, err := x.Get("t", "k1"); err != nil {
				t.Fatal(err)
			}
			if err := t3.Update("t", "k1", []byte("t3")); err != nil {
				t.Fatal(err)
			}
			mustExec(t, t3.Commit())
			// X writes, so its commit matters for snapshot safety.
			if err := x.Update("t", "k2", []byte("x")); err != nil {
				t.Fatal(err)
			}

			// RO begins and parks in the lifecycle window.
			p.arm(0)
			var ro *pgssi.Tx
			roBegun := make(chan struct{})
			go func() {
				defer close(roBegun)
				var err error
				ro, err = db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable, ReadOnly: true})
				if err != nil {
					t.Error(err)
				}
			}()
			<-p.inWindow

			// X commits inside RO's begin window.
			xdone := make(chan struct{})
			var xerr error
			go func() {
				defer close(xdone)
				xerr = x.Commit()
			}()
			if disable {
				// The reopened window: X's commit completes while RO is
				// between its snapshot and its watcher registration.
				<-xdone
			} else {
				// RO's fenced Begin holds the critical section; X's
				// commit must block on it.
				select {
				case <-xdone:
					t.Fatal("X committed while RO held its begin critical section")
				case <-time.After(50 * time.Millisecond):
				}
			}
			close(p.release)
			<-roBegun
			<-xdone
			mustExec(t, xerr)

			v1, err1 := ro.Get("t", "k1")
			if disable {
				// Missed verdict: RO believes its snapshot is safe and
				// observes the impossible state.
				if !ro.OnSafeSnapshot() {
					t.Fatal("unfenced begin should wrongly mark the snapshot safe")
				}
				mustExec(t, err1)
				v2, err2 := ro.Get("t", "k2")
				mustExec(t, err2)
				if string(v1) != "t3" || string(v2) != "on" {
					t.Fatalf("expected the anomalous pair {k1=t3, k2=on}, got {k1=%s, k2=%s}", v1, v2)
				}
				mustExec(t, ro.Commit())
				return
			}
			// Fenced: the verdict is unsafe, RO keeps full SSI tracking,
			// and the dangerous structure RO → X → T3 aborts RO when it
			// tries to read around X's write.
			if ro.OnSafeSnapshot() {
				t.Fatal("fenced begin must resolve the snapshot unsafe")
			}
			mustExec(t, err1)
			_, err2 := ro.Get("t", "k2")
			if err2 == nil {
				ro.Rollback()
				t.Fatal("RO's read of k2 must abort: RO → X → T3 with T3 committed before RO's snapshot")
			}
			if !pgssi.IsSerializationFailure(err2) {
				t.Fatalf("expected serialization failure, got %v", err2)
			}
			ro.Rollback()
		})
	}
}
