package pgssi_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"pgssi"
)

// BenchmarkGroupCommit measures the durable commit path under parallel
// committers for each fsync mode. The figure of merit for batch mode is
// commits/fsync: how many concurrent committers piggyback on a single
// group fsync. always pins it at ~1 (every commit pays its own sync),
// off removes syncs entirely and bounds the WAL's non-durability cost.
// Nightly CI archives this with -benchmem.
// BenchmarkRecovery measures OpenDir on a directory holding a fixed
// history of overwrites, with and without a checkpoint taken before the
// "crash". Without one, recovery replays the whole log and scales with
// history; with one, it loads the compact image plus a short suffix and
// stays flat however long the history grows — the tentpole claim of
// checkpointing. recovered/open reports how many records each reopen
// actually folded. Nightly CI archives this with -benchmem.
func BenchmarkRecovery(b *testing.B) {
	const commits, keys, suffix = 2000, 50, 20
	build := func(b *testing.B, checkpoint bool) string {
		dir := b.TempDir()
		db, err := pgssi.OpenDir(dir, pgssi.Config{FsyncMode: pgssi.FsyncOff, WALSegmentSize: 64 << 10})
		if err != nil {
			b.Fatal(err)
		}
		if err := db.CreateTable("t"); err != nil {
			b.Fatal(err)
		}
		put := func(i int) {
			err := db.RunTx(pgssi.TxOptions{Isolation: pgssi.RepeatableRead}, func(tx *pgssi.Tx) error {
				return tx.Put("t", fmt.Sprintf("k%04d", i%keys), []byte(fmt.Sprintf("v%08d", i)))
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < commits-suffix; i++ {
			put(i)
		}
		if checkpoint {
			if _, err := db.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		for i := commits - suffix; i < commits; i++ {
			put(i)
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	for _, ckpt := range []bool{false, true} {
		name := "nocheckpoint"
		if ckpt {
			name = "checkpoint"
		}
		b.Run(name, func(b *testing.B) {
			dir := build(b, ckpt)
			var recovered int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db, err := pgssi.OpenDir(dir, pgssi.Config{})
				if err != nil {
					b.Fatal(err)
				}
				recovered = db.WALRecoveredRecords()
				db.Close()
			}
			b.StopTimer()
			b.ReportMetric(float64(recovered), "recovered/open")
		})
	}
}

func BenchmarkGroupCommit(b *testing.B) {
	modes := []struct {
		name string
		mode pgssi.FsyncMode
	}{
		{"always", pgssi.FsyncAlways},
		{"batch", pgssi.FsyncBatch},
		{"off", pgssi.FsyncOff},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			db, err := pgssi.OpenDir(b.TempDir(), pgssi.Config{FsyncMode: m.mode})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if err := db.CreateTable("t"); err != nil {
				b.Fatal(err)
			}
			var ctr atomic.Uint64
			val := []byte("group-commit-payload")
			// Group commit needs many committers in flight at once;
			// RunParallel's default (GOMAXPROCS goroutines) leaves batch
			// mode with nothing to batch on small machines.
			b.SetParallelism(16)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					id := ctr.Add(1)
					tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
					if err != nil {
						b.Error(err)
						return
					}
					if err := tx.Insert("t", fmt.Sprintf("k%016d", id), val); err != nil {
						b.Error(err)
						return
					}
					if err := tx.Commit(); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			st := db.WALStats()
			if st.Fsyncs > 0 {
				b.ReportMetric(float64(b.N)/float64(st.Fsyncs), "commits/fsync")
			}
			b.ReportMetric(float64(st.Fsyncs), "fsyncs")
			b.ReportMetric(float64(st.BytesWritten)/float64(b.N), "walB/commit")
		})
	}
}
