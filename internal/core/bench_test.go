package core

import (
	"fmt"
	"strconv"
	"testing"

	"pgssi/internal/mvcc"
)

// BenchmarkLockAcquireParallel isolates the SIREAD acquisition path —
// no engine, storage, or MVCC overhead — with parallel goroutines each
// running their own transaction over a shared Manager, at 1 partition
// versus the partitioned default. On multi-core hardware this is where
// the PredicateLockHashPartitionLock decomposition shows up directly;
// on fewer cores, compare mutex-contention profiles instead.
func BenchmarkLockAcquireParallel(b *testing.B) {
	for _, parts := range []int{1, 16} {
		b.Run(fmt.Sprintf("partitions=%d", parts), func(b *testing.B) {
			mv := mvcc.NewManager()
			mgr := NewManager(mv, Config{Partitions: parts})
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				x, _ := mgr.Begin(mv.Begin(), mv.TakeSnapshot, false, false)
				i := 0
				for pb.Next() {
					i++
					page := int64(i % 64)
					key := strconv.Itoa(i % 1024)
					if err := mgr.CheckRead(x, "t", page, key, nil, false); err != nil {
						b.Error(err)
						return
					}
				}
				mv.Abort(x.XID)
				mgr.Abort(x)
			})
		})
	}
}

// BenchmarkLifecycleBeginCommitParallel isolates the SSI lifecycle —
// Begin against the sharded registry and the conflict-free commit fast
// path — with no engine, storage, or read overhead, the lifecycle
// analogue of BenchmarkLockAcquireParallel. Transactions have no edges,
// so commits should never touch the conflict-graph mutex.
func BenchmarkLifecycleBeginCommitParallel(b *testing.B) {
	mv := mvcc.NewManager()
	mgr := NewManager(mv, Config{})
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			xid := mv.Begin()
			x, _ := mgr.Begin(xid, mv.TakeSnapshot, false, false)
			if err := mgr.Commit(x, func() mvcc.SeqNo { return mv.Commit(xid) }); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
