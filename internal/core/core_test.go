package core

import (
	"errors"
	"testing"

	"pgssi/internal/mvcc"
)

// harness wires a core.Manager to an mvcc.Manager with convenience
// helpers mirroring the engine's call sequences.
type harness struct {
	t   *testing.T
	mv  *mvcc.Manager
	mgr *Manager
}

func newHarness(t *testing.T, cfg Config) *harness {
	mv := mvcc.NewManager()
	return &harness{t: t, mv: mv, mgr: NewManager(mv, cfg)}
}

func (h *harness) begin(readOnly bool) *Xact {
	xid := h.mv.Begin()
	x, _ := h.mgr.Begin(xid, h.mv.TakeSnapshot, readOnly, false)
	return x
}

func (h *harness) commit(x *Xact) error {
	err := h.mgr.Commit(x, func() mvcc.SeqNo { return h.mv.Commit(x.XID) })
	if err != nil {
		h.mv.Abort(x.XID)
		h.mgr.Abort(x)
	}
	return err
}

func (h *harness) abort(x *Xact) {
	h.mv.Abort(x.XID)
	h.mgr.Abort(x)
}

// read simulates reading key on (rel, page) with the given MVCC conflicts.
func (h *harness) read(x *Xact, rel string, page int64, key string, conflicts ...mvcc.TxID) error {
	return h.mgr.CheckRead(x, rel, page, key, conflicts, false)
}

// write simulates writing key whose old version lives on (rel, page).
func (h *harness) write(x *Xact, rel string, page int64, key string) error {
	return h.mgr.CheckWrite(x, rel, page, key)
}

func TestSIREADLockAcquireAndConflict(t *testing.T) {
	h := newHarness(t, Config{})
	r := h.begin(false)
	w := h.begin(false)
	if err := h.read(r, "t", 1, "a"); err != nil {
		t.Fatal(err)
	}
	if !h.mgr.HoldsLock(r, TupleTarget("t", 1, "a")) {
		t.Fatal("reader must hold tuple SIREAD lock")
	}
	if err := h.write(w, "t", 1, "a"); err != nil {
		t.Fatal(err)
	}
	// Single antidependency: both commit fine.
	if err := h.commit(w); err != nil {
		t.Fatal(err)
	}
	if err := h.commit(r); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSkewPivotDoomedAtT3Commit(t *testing.T) {
	h := newHarness(t, Config{})
	t1 := h.begin(false)
	t2 := h.begin(false)
	// t1 reads a and b; t2 reads a and b.
	for _, x := range []*Xact{t1, t2} {
		if err := h.read(x, "t", 1, "a"); err != nil {
			t.Fatal(err)
		}
		if err := h.read(x, "t", 1, "b"); err != nil {
			t.Fatal(err)
		}
	}
	// t1 writes a (edge t2 → t1); t2 writes b (edge t1 → t2).
	if err := h.write(t1, "t", 1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := h.write(t2, "t", 1, "b"); err != nil {
		t.Fatal(err)
	}
	// First committer wins; the other must fail.
	if err := h.commit(t1); err != nil {
		t.Fatalf("first commit should succeed: %v", err)
	}
	if err := h.commit(t2); !errors.Is(err, ErrSerializationFailure) {
		t.Fatalf("second commit must fail with serialization failure, got %v", err)
	}
}

func TestTwoCycleDetectedWhenEdgeArrivesAfterCommit(t *testing.T) {
	// Regression for the strict-inequality bug found by the
	// randomized history checker: T_b commits with only an incoming
	// edge, then the closing edge T_b → T_a arrives while T_a is
	// active. T1 == T3 == T_b, which must not be dismissed as
	// "T1 committed before T3".
	h := newHarness(t, Config{})
	ta := h.begin(false)
	tb := h.begin(false)
	if err := h.read(ta, "t", 1, "k1"); err != nil {
		t.Fatal(err)
	}
	if err := h.read(tb, "t", 1, "k2"); err != nil {
		t.Fatal(err)
	}
	// tb writes k1 → edge ta → tb.
	if err := h.write(tb, "t", 1, "k1"); err != nil {
		t.Fatal(err)
	}
	if err := h.commit(tb); err != nil {
		t.Fatal(err)
	}
	// ta writes k2 → edge tb → ta, closing the 2-cycle. ta must fail
	// here or at commit.
	err := h.write(ta, "t", 1, "k2")
	if err == nil {
		err = h.commit(ta)
	}
	if !errors.Is(err, ErrSerializationFailure) {
		t.Fatalf("2-cycle must abort ta, got %v", err)
	}
}

func TestCommitOrderingAvoidsFalsePositive(t *testing.T) {
	// Dangerous structure T1 → T2 → T3 where T1 commits before T3:
	// with the commit-ordering optimization nobody aborts (the cycle
	// cannot close); with it disabled, someone does.
	run := func(disable bool) int {
		h := newHarness(t, Config{DisableCommitOrderingOpt: disable})
		t1 := h.begin(false)
		t2 := h.begin(false)
		t3 := h.begin(false)
		failures := 0
		step := func(err error) {
			if errors.Is(err, ErrSerializationFailure) {
				failures++
			} else if err != nil {
				t.Fatal(err)
			}
		}
		step(h.read(t1, "t", 1, "a"))  // T1 reads a
		step(h.read(t2, "t", 1, "b"))  // T2 reads b
		step(h.write(t2, "t", 1, "a")) // edge T1 → T2
		step(h.write(t3, "t", 1, "b")) // edge T2 → T3
		step(h.commit(t1))             // T1 commits first
		step(h.commit(t3))             // then T3
		step(h.commit(t2))             // pivot last
		return failures
	}
	if n := run(false); n != 0 {
		t.Fatalf("commit ordering should clear this structure, got %d failures", n)
	}
	if n := run(true); n == 0 {
		t.Fatal("basic SSI should abort on this structure")
	}
}

func TestTuplePromotionToPage(t *testing.T) {
	h := newHarness(t, Config{PromoteTupleToPage: 3})
	x := h.begin(false)
	for i := 0; i < 5; i++ {
		key := string(rune('a' + i))
		if err := h.read(x, "t", 7, key); err != nil {
			t.Fatal(err)
		}
	}
	if !h.mgr.HoldsLock(x, PageTarget("t", 7)) {
		t.Fatal("tuple locks should have been promoted to a page lock")
	}
	if h.mgr.HoldsLock(x, TupleTarget("t", 7, "a")) {
		t.Fatal("tuple locks should be gone after promotion")
	}
	// A write on any tuple of that page still conflicts.
	w := h.begin(false)
	if err := h.write(w, "t", 7, "zz"); err != nil {
		t.Fatal(err)
	}
	if err := h.commit(w); err != nil {
		t.Fatal(err)
	}
	// x now has an out-conflict; the page lock did its job if a
	// dangerous structure check can see the edge. Simplest probe: x
	// writing something read by a third txn and committing after w
	// forms the pivot.
	h.abort(x)
}

func TestPagePromotionToRelation(t *testing.T) {
	h := newHarness(t, Config{PromotePageToRel: 2})
	x := h.begin(false)
	for p := int64(1); p <= 4; p++ {
		h.mgr.AcquirePageLock(x, "t", p)
	}
	if !h.mgr.HoldsLock(x, RelationTarget("t")) {
		t.Fatal("page locks should have been promoted to a relation lock")
	}
	w := h.begin(false)
	if err := h.write(w, "t", 99, "anything"); err != nil {
		t.Fatal(err)
	}
	h.mgr.mu.Lock()
	_, hasEdge := x.outConflicts[w]
	h.mgr.mu.Unlock()
	if !hasEdge {
		t.Fatal("relation lock must catch writes anywhere in the relation")
	}
	h.abort(x)
	h.abort(w)
}

func TestCapacityBoundTriggersPromotion(t *testing.T) {
	h := newHarness(t, Config{MaxPredicateLocks: 10, PromoteTupleToPage: 1 << 20, PromotePageToRel: 1 << 20})
	x := h.begin(false)
	for i := 0; i < 100; i++ {
		if err := h.read(x, "t", int64(i), string(rune(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.mgr.LockCount(); got > 11 {
		t.Fatalf("lock table exceeded its bound: %d", got)
	}
	if !h.mgr.HoldsLock(x, RelationTarget("t")) {
		t.Fatal("capacity pressure should consolidate to a relation lock")
	}
	st := h.mgr.Stats()
	if st.CapacityPromotions == 0 {
		t.Fatal("expected capacity promotions to be counted")
	}
	h.abort(x)
}

func TestPageSplitPropagatesLocks(t *testing.T) {
	h := newHarness(t, Config{})
	x := h.begin(false)
	h.mgr.AcquirePageLock(x, "idx", 1)
	h.mgr.PageSplit("idx", 1, 2)
	if !h.mgr.HoldsLock(x, PageTarget("idx", 2)) {
		t.Fatal("split must copy page locks to the right sibling")
	}
	h.abort(x)
}

func TestDropOwnTupleLock(t *testing.T) {
	h := newHarness(t, Config{})
	x := h.begin(false)
	if err := h.read(x, "t", 1, "a"); err != nil {
		t.Fatal(err)
	}
	h.mgr.DropOwnTupleLock(x, "t", 1, "a")
	if h.mgr.HoldsLock(x, TupleTarget("t", 1, "a")) {
		t.Fatal("lock should be dropped")
	}
	h.abort(x)
}

func TestSafeSnapshotImmediateWhenNoWriters(t *testing.T) {
	h := newHarness(t, Config{})
	ro := h.begin(true)
	if !h.mgr.SafeVerdict(ro) {
		t.Fatal("snapshot with no concurrent read/write transactions is immediately safe")
	}
	if !ro.Safe() {
		t.Fatal("transaction should be marked safe")
	}
	// Safe transactions take no locks.
	if err := h.read(ro, "t", 1, "a"); err != nil {
		t.Fatal(err)
	}
	if h.mgr.HoldsLock(ro, TupleTarget("t", 1, "a")) {
		t.Fatal("safe transaction must not take SIREAD locks")
	}
	if err := h.commit(ro); err != nil {
		t.Fatal(err)
	}
}

func TestSafeSnapshotAfterConcurrentWritersFinish(t *testing.T) {
	h := newHarness(t, Config{})
	w := h.begin(false)
	ro := h.begin(true)
	if h.mgr.VerdictKnown(ro) {
		t.Fatal("verdict must be pending while a writer is active")
	}
	// Reads before the verdict still take locks.
	if err := h.read(ro, "t", 1, "a"); err != nil {
		t.Fatal(err)
	}
	if !h.mgr.HoldsLock(ro, TupleTarget("t", 1, "a")) {
		t.Fatal("locks are kept until the snapshot is known safe")
	}
	if err := h.commit(w); err != nil {
		t.Fatal(err)
	}
	if !h.mgr.SafeVerdict(ro) {
		t.Fatal("snapshot should be safe: the writer committed without a conflict out to a pre-snapshot commit")
	}
	if h.mgr.HoldsLock(ro, TupleTarget("t", 1, "a")) {
		t.Fatal("locks must be dropped once the snapshot is safe")
	}
	if err := h.commit(ro); err != nil {
		t.Fatal(err)
	}
}

func TestUnsafeSnapshotDetected(t *testing.T) {
	h := newHarness(t, Config{})
	// t3 commits first; t2 (concurrent with ro) then develops a
	// conflict out to t3 and commits → ro's snapshot is unsafe.
	t3 := h.begin(false)
	t2 := h.begin(false)
	if err := h.read(t2, "t", 1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := h.write(t3, "t", 1, "x"); err != nil { // edge t2 → t3
		t.Fatal(err)
	}
	if err := h.commit(t3); err != nil {
		t.Fatal(err)
	}
	// t2 must itself write: only a read/write transaction can be the
	// pivot of a dangerous structure involving the read-only snapshot.
	if err := h.write(t2, "t", 5, "w"); err != nil {
		t.Fatal(err)
	}
	ro := h.begin(true) // snapshot taken after t3's commit, t2 active
	if err := h.commit(t2); err != nil {
		t.Fatal(err)
	}
	if h.mgr.SafeVerdict(ro) {
		t.Fatal("snapshot must be unsafe: t2 committed with a conflict out to t3, which committed before ro's snapshot")
	}
	if err := h.commit(ro); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyWithoutWritesTreatedAsReadOnlyAtCommit(t *testing.T) {
	h := newHarness(t, Config{})
	x := h.begin(false)
	if x.ReadOnly() {
		t.Fatal("active undeclared transaction is not known read-only")
	}
	if err := h.commit(x); err != nil {
		t.Fatal(err)
	}
	if !x.ReadOnly() {
		t.Fatal("committed without writes: read-only by §4.1's definition")
	}
}

func TestSummarizationPreservesConflictInDetection(t *testing.T) {
	// §6.2 case 1: a committed transaction's SIREAD lock must survive
	// summarization (via the dummy transaction) so that
	// T_committed → T_active → T3 structures are still caught.
	h := newHarness(t, Config{MaxCommittedXacts: 1})
	r := h.begin(false)
	if err := h.read(r, "t", 1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := h.write(r, "t", 1, "r-own"); err != nil { // make it read/write
		t.Fatal(err)
	}
	// Keep an old transaction open so committed state cannot be
	// cleaned, forcing summarization when capacity (1) is exceeded.
	pin := h.begin(false)
	if err := h.commit(r); err != nil {
		t.Fatal(err)
	}
	filler := h.begin(false)
	if err := h.write(filler, "t", 9, "junk"); err != nil {
		t.Fatal(err)
	}
	if err := h.commit(filler); err != nil {
		t.Fatal(err)
	}
	if h.mgr.Stats().Summarized == 0 {
		t.Fatal("expected the oldest committed transaction to be summarized")
	}
	// An active transaction writing what r read must pick up a
	// summary conflict in.
	w := h.begin(false)
	if err := h.write(w, "t", 1, "a"); err != nil {
		t.Fatal(err)
	}
	h.mgr.mu.Lock()
	si := w.summaryConflictIn
	h.mgr.mu.Unlock()
	if !si {
		t.Fatal("write to a summarized transaction's read set must set summaryConflictIn")
	}
	// Now give w a conflict out to a committed transaction → pivot
	// with summary-in must fail at commit.
	r2 := h.begin(false)
	if err := h.read(r2, "t", 5, "z"); err != nil {
		t.Fatal(err)
	}
	if err := h.write(w, "t", 5, "z"); err != nil { // r2 → w
		t.Fatal(err)
	}
	_ = r2
	// w is now T2 with summary conflict in (T1 committed) and we
	// close T2 → T3 by having w read something a new committed txn
	// wrote... simpler: commit w before anything else — no T3, no
	// failure expected.
	if err := h.commit(w); err != nil {
		t.Fatalf("no dangerous structure yet: %v", err)
	}
	h.abort(pin)
	h.abort(r2)
}

func TestSummaryConflictOutViaMVCCLookup(t *testing.T) {
	// §6.2 case 2: an active transaction reading a version created by
	// a summarized committed transaction must learn about the writer's
	// earliest out-conflict commit from the summary table.
	h := newHarness(t, Config{MaxCommittedXacts: 1})
	pin := h.begin(false) // prevents cleanup, forces summarization

	// tw is a read/write transaction with a conflict out to tc, which
	// commits first: tw is a committed pivot-half.
	tc := h.begin(false)
	tw := h.begin(false)
	if err := h.read(tw, "t", 2, "c"); err != nil {
		t.Fatal(err)
	}
	if err := h.write(tc, "t", 2, "c"); err != nil { // tw → tc
		t.Fatal(err)
	}
	if err := h.commit(tc); err != nil {
		t.Fatal(err)
	}
	if err := h.write(tw, "t", 3, "w"); err != nil {
		t.Fatal(err)
	}
	if err := h.commit(tw); err != nil {
		t.Fatal(err)
	}
	// Force summarization of tw (and possibly tc).
	for i := 0; i < 3; i++ {
		f := h.begin(false)
		if err := h.write(f, "junk", int64(i), "x"); err != nil {
			t.Fatal(err)
		}
		if err := h.commit(f); err != nil {
			t.Fatal(err)
		}
	}
	if h.mgr.SummaryTableSize() == 0 {
		t.Fatal("expected summarized transactions in the summary table")
	}
	// A new reader whose snapshot predates nothing reads tw's version
	// via MVCC: engine reports conflict-out to tw.XID. Since tw had a
	// conflict out to tc (committed before the reader's... actually
	// committed long ago), the structure reader → tw → tc has T3 = tc
	// committed before both — dangerous only if the reader is not
	// read-only-cleared. The reader here is read/write, so it must be
	// doomed immediately (tw committed: abort T1 = caller).
	rd := h.begin(false)
	err := h.mgr.CheckRead(rd, "t", 3, "w", []mvcc.TxID{tw.XID}, false)
	if !errors.Is(err, ErrSerializationFailure) {
		t.Fatalf("summarized pivot structure must doom the reader, got %v", err)
	}
	h.abort(rd)
	h.abort(pin)
}

func TestCleanupReleasesCommittedState(t *testing.T) {
	h := newHarness(t, Config{})
	x := h.begin(false)
	if err := h.read(x, "t", 1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := h.write(x, "t", 1, "b"); err != nil {
		t.Fatal(err)
	}
	if err := h.commit(x); err != nil {
		t.Fatal(err)
	}
	// No other transaction is active: a reclaim pass (cleanup is
	// deferred to the epoch reclaimer) must remove all trace of it.
	h.mgr.ReclaimNow()
	if n := h.mgr.TrackedXacts(); n != 0 {
		t.Fatalf("tracked xacts = %d, want 0 after cleanup", n)
	}
	if n := h.mgr.LockCount(); n != 0 {
		t.Fatalf("lock count = %d, want 0 after cleanup", n)
	}
}

func TestPreparedTransactionCannotBeVictim(t *testing.T) {
	// §7.1: Tactive → Tprepared → Tcommitted must abort Tactive, the
	// only abortable party — the case where safe retry cannot be
	// guaranteed.
	h := newHarness(t, Config{})
	t1 := h.begin(false) // the active reader
	t2 := h.begin(false) // will prepare (the pivot)
	t3 := h.begin(false)

	// t2 writes "a" while still active.
	if err := h.write(t2, "t", 2, "a"); err != nil {
		t.Fatal(err)
	}
	// Build t2 → t3 and commit t3 first.
	if err := h.read(t2, "t", 1, "b"); err != nil {
		t.Fatal(err)
	}
	if err := h.write(t3, "t", 1, "b"); err != nil { // t2 → t3
		t.Fatal(err)
	}
	if err := h.commit(t3); err != nil {
		t.Fatal(err)
	}
	// t2 prepares: its pre-commit check passes (no in-conflict yet,
	// and it did not commit before t3 — but with no T1 there is no
	// dangerous structure).
	if _, err := h.mgr.Prepare(t2); err != nil {
		t.Fatal(err)
	}
	// t1 reads the old version of "a" (t2's write is invisible): the
	// MVCC conflict-out creates t1 → t2, completing a dangerous
	// structure whose pivot is prepared. t1 must be doomed.
	err := h.mgr.CheckRead(t1, "t", 2, "a", []mvcc.TxID{t2.XID}, false)
	if !errors.Is(err, ErrSerializationFailure) {
		t.Fatalf("active reader must be doomed when the pivot is prepared, got %v", err)
	}
	h.abort(t1)
	if err := h.mgr.CommitPrepared(t2, func() mvcc.SeqNo { return h.mv.Commit(t2.XID) }); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverPreparedIsConservative(t *testing.T) {
	h := newHarness(t, Config{})
	x := h.begin(false)
	if err := h.read(x, "t", 1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := h.write(x, "t", 1, "b"); err != nil {
		t.Fatal(err)
	}
	st, err := h.mgr.Prepare(x)
	if err != nil {
		t.Fatal(err)
	}
	// Crash: rebuild from persisted state.
	h.mgr.Abort(x)
	rx := h.mgr.RecoverPrepared(st, 0)
	if !rx.Prepared() {
		t.Fatal("recovered transaction must be prepared")
	}
	// Its SIREAD locks are back.
	if !h.mgr.HoldsLock(rx, TupleTarget("t", 1, "a")) {
		t.Fatal("recovered transaction must hold its persisted locks")
	}
	// Conservative flags: any new conflict in against it (making it a
	// pivot with assumed conflict out) dooms the other party.
	r := h.begin(false)
	if err := h.read(r, "t", 9, "q"); err != nil {
		t.Fatal(err)
	}
	// Simulate rx writing q is impossible post-crash; instead check
	// that a reader of rx's (assumed) writes is doomed: reading a
	// version created by rx flags reader → rx with rx's conservative
	// out-conflict (seq 1, committed before everything).
	err = h.mgr.CheckRead(r, "t", 1, "b", []mvcc.TxID{rx.XID}, false)
	if !errors.Is(err, ErrSerializationFailure) {
		t.Fatalf("conservative recovery must doom the reader, got %v", err)
	}
	h.abort(r)
	if err := h.mgr.CommitPrepared(rx, func() mvcc.SeqNo { return h.mv.Commit(rx.XID) }); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	h := newHarness(t, Config{})
	x := h.begin(false)
	if err := h.read(x, "t", 1, "a"); err != nil {
		t.Fatal(err)
	}
	st := h.mgr.Stats()
	if st.LocksAcquired == 0 || st.LocksPeak == 0 {
		t.Fatalf("lock stats not counted: %+v", st)
	}
	// LockCount counts the table itself; the LocksCurrent gauge must
	// agree with it (guards against counter drift).
	if got, want := h.mgr.LockCount(), int(st.LocksCurrent); got != want {
		t.Fatalf("lock table count %d disagrees with LocksCurrent gauge %d", got, want)
	}
	h.abort(x)
	if h.mgr.LockCount() != 0 {
		t.Fatal("abort must release locks")
	}
	if cur := h.mgr.Stats().LocksCurrent; cur != 0 {
		t.Fatalf("LocksCurrent gauge = %d after abort, want 0", cur)
	}
}
