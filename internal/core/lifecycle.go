package core

import (
	"pgssi/internal/mvcc"
)

// This file implements the transaction lifecycle: the pre-commit
// serialization-failure check (§5.4), commit processing with safe-snapshot
// resolution (§4.2), and abort processing. Cleanup of committed
// transactions (§6.1) and summarization (§6.2) live in reclaim.go.

// Commit atomically performs the pre-commit serialization check and, if
// it passes, commits the transaction: commitFn is invoked inside the
// commit critical section to assign the commit sequence number
// (typically mvcc.Commit). If the check fails, ErrSerializationFailure
// is returned, no commit happens, and the caller must abort the
// transaction.
//
// Performing the check and the commit in one critical section prevents a
// window in which a new conflict could form against a transaction that
// already passed its check, mirroring PostgreSQL's use of
// SerializableXactHashLock around both. The critical section is chosen
// by what the transaction accumulated:
//
//   - A transaction with no conflict edges, no summary flags, and no
//     safety watchers commits under only its own edge lock. Conflict
//     flaggers take the edge locks of both endpoints before mutating
//     edge state, so they either complete before the eligibility check
//     here (the commit then takes the slow path) or observe the
//     transaction already committed and apply the committed-transaction
//     rules. The linearization point is the edge-lock critical section.
//   - Anything else serializes on the conflict-graph mutex, where the
//     full dangerous-structure check runs.
//
// Cleanup and summarization are NOT part of either critical section any
// more; they are deferred to the epoch reclaimer (reclaim.go).
func (m *Manager) Commit(x *Xact, commitFn func() mvcc.SeqNo) error {
	if m.cfg.DisableLifecycleFencing {
		return m.commitUnfenced(x, commitFn)
	}

	x.edgeMu.Lock()
	if m.fastCommitEligibleLocked(x) {
		m.preCommitHook(x.XID)
		seq := commitFn()
		x.markCommittedLocked(seq)
		x.edgeMu.Unlock()
		m.finishCommitFast(x)
		return nil
	}
	x.edgeMu.Unlock()

	m.mu.Lock()
	if err := m.preCommitCheckLocked(x); err != nil {
		m.mu.Unlock()
		return err
	}
	m.preCommitHook(x.XID)
	seq := commitFn()
	n := m.finishCommitLocked(x, seq)
	m.mu.Unlock()
	m.afterCommit(n)
	return nil
}

// commitUnfenced is the DisableLifecycleFencing ablation of Commit: the
// pre-commit check and the commit-sequence assignment run in separate
// critical sections, with the OnPreCommit hook in the reopened window
// and no re-check afterwards. A dangerous structure completed in the
// window — including one that dooms this transaction — is missed, and
// the transaction commits anyway. The second half still takes the
// proper locks (the ablation reopens the logical window, it does not
// introduce data races).
func (m *Manager) commitUnfenced(x *Xact, commitFn func() mvcc.SeqNo) error {
	x.edgeMu.Lock()
	fast := m.fastCommitEligibleLocked(x)
	x.edgeMu.Unlock()
	if !fast {
		m.mu.Lock()
		err := m.preCommitCheckLocked(x)
		m.mu.Unlock()
		if err != nil {
			return err
		}
	}
	m.preCommitHook(x.XID)
	m.mu.Lock()
	seq := commitFn()
	n := m.finishCommitLocked(x, seq)
	m.mu.Unlock()
	m.afterCommit(n)
	return nil
}

// fastCommitEligibleLocked reports whether x can commit on the edge-lock
// fast path: nothing about it can participate in a dangerous structure
// or a safe-snapshot verdict, so its pre-commit check is trivially
// empty. Caller holds x.edgeMu. Any state that would make this false is
// only set while holding x.edgeMu (by conflict flaggers, the read-only
// safety scan, or summarization), so the answer cannot be invalidated
// between this check and the commit transition in the same critical
// section. Dooms reach a transaction only through edges, so the map
// checks subsume the doomed check; it is kept as a cheap backstop.
func (m *Manager) fastCommitEligibleLocked(x *Xact) bool {
	return len(x.inConflicts) == 0 && len(x.outConflicts) == 0 &&
		!x.summaryConflictIn && x.earliestOutConflictCommit == 0 &&
		len(x.watchingROs) == 0 && len(x.possibleUnsafe) == 0 &&
		x.safeCh == nil && !x.prepared && !x.aborted &&
		!x.safe.Load() && !x.doomed.Load()
}

// finishCommitFast completes a fast-path commit after the edge-lock
// critical section: lock-set freeze, retire-queue insertion, and
// registry deactivation. The retire-before-deactivate order matters —
// see registerROWatchesLocked.
func (m *Manager) finishCommitFast(x *Xact) {
	x.lockMu.Lock()
	x.lockingDone = true
	x.lockMu.Unlock()
	if x.wrote {
		m.roSweepValid.Store(false)
	}
	n := m.retire(x)
	m.deactivateXact(x)
	m.afterCommit(n)
}

// preCommitCheckLocked is PreCommit_CheckForSerializationFailure: it
// looks for dangerous structures in which the committing transaction is
// T3 (committing first, so the pivot must be doomed — §5.4 rule 1/2) or
// the pivot itself (self-abort, rule 2/3 fallback). Caller holds m.mu.
func (m *Manager) preCommitCheckLocked(x *Xact) error {
	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	if x.safe.Load() {
		return nil
	}

	// Case 1: x is T3 for some pivot P with P → x. If P has not
	// committed, x would be the first of the structure to commit;
	// abort P now unless a T1 committed before x clears it.
	for pivot := range x.inConflicts {
		if pivot.committed || pivot.aborted || pivot.doomed.Load() {
			continue
		}
		danger := pivot.summaryConflictIn
		if !danger {
			for t1 := range pivot.inConflicts {
				if t1 == x {
					// Two-transaction cycle x → P → x
					// (write skew): always dangerous.
					danger = true
					break
				}
				if !m.cfg.DisableCommitOrderingOpt && t1.committed {
					// T1 committed before T3 (= x, still
					// committing): structure cleared.
					continue
				}
				if !m.cfg.DisableReadOnlyOpt && t1.ReadOnly() && !t1.committed {
					// Active read-only T1 took its snapshot
					// before x commits, so T3 cannot have
					// committed before T1's snapshot.
					continue
				}
				if !m.cfg.DisableReadOnlyOpt && t1.ReadOnly() && t1.committed {
					// Committed read-only T1: dangerous only
					// if x committed before its snapshot —
					// impossible, x is committing now.
					continue
				}
				danger = true
				break
			}
		}
		if !danger {
			continue
		}
		if !pivot.prepared {
			// Doom the pivot (safe-retry rule 2): when retried it
			// will not be concurrent with the committed x.
			if err := m.doomVictimLocked(pivot, x); err != nil {
				return err
			}
			continue
		}
		// Pivot prepared (§7.1): cannot abort it. Abort an active T1
		// if any, else abort x itself.
		aborted := false
		for t1 := range pivot.inConflicts {
			if t1 != x && !t1.committed && !t1.prepared {
				if err := m.doomVictimLocked(t1, x); err != nil {
					return err
				}
				aborted = true
				break
			}
		}
		if !aborted {
			return m.doomVictimLocked(x, x)
		}
	}

	// Case 2: x is the pivot, with a conflict in and a committed (or
	// prepared) conflict out.
	if len(x.inConflicts) > 0 || x.summaryConflictIn {
		if s3 := x.earliestOutConflictCommit; s3 != 0 {
			if err := m.checkPivotLocked(x, s3, x); err != nil {
				return err
			}
		}
		for t3 := range x.outConflicts {
			if t3.prepared && !t3.committed {
				if err := m.checkPivotPreparedT3Locked(x, x); err != nil {
					return err
				}
				break
			}
		}
		if m.cfg.DisableCommitOrderingOpt && len(x.outConflicts) > 0 {
			// Basic SSI: both flags set is enough to abort.
			return m.doomVictimLocked(x, x)
		}
	}

	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	return nil
}

// finishCommitLocked marks x committed with sequence number seq,
// propagates the out-conflict commit info to its readers, resolves
// safe-snapshot watchers, and retires x for the epoch reclaimer. It
// returns the retire-queue length for the caller's pressure policy.
// Caller holds m.mu but no edge locks.
func (m *Manager) finishCommitLocked(x *Xact, seq mvcc.SeqNo) int {
	x.edgeMu.Lock()
	x.markCommittedLocked(seq)
	x.edgeMu.Unlock()
	// A committed transaction keeps its SIREAD locks until cleanup but
	// must not grow its lock set.
	x.lockMu.Lock()
	x.lockingDone = true
	x.lockMu.Unlock()
	if x.wrote {
		m.roSweepValid.Store(false)
	}

	// Every reader r with r → x now has a committed out-conflict;
	// record the earliest such commit (§6.1).
	for r := range x.inConflicts {
		r.edgeMu.Lock()
		if r.earliestOutConflictCommit == 0 || seq < r.earliestOutConflictCommit {
			r.earliestOutConflictCommit = seq
		}
		r.edgeMu.Unlock()
	}

	// Resolve read-only snapshot safety (§4.2): x's fate is now known
	// to every read-only transaction that was watching it.
	for ro := range x.watchingROs {
		ro.edgeMu.Lock()
		delete(ro.possibleUnsafe, x)
		undecided := len(ro.possibleUnsafe) == 0 && !ro.unsafe && !ro.safe.Load()
		ro.edgeMu.Unlock()
		if x.wrote && x.earliestOutConflictCommit != 0 && x.earliestOutConflictCommit <= ro.SnapshotSeq {
			// x committed with an rw-conflict out to a transaction
			// that committed before ro's snapshot: unsafe.
			m.markUnsafeLocked(ro)
			continue
		}
		if undecided {
			m.markSafeLocked(ro)
		}
	}
	x.edgeMu.Lock()
	x.watchingROs = nil
	x.edgeMu.Unlock()

	// Retire for the epoch reclaimer; the transaction stays in the
	// registry's tracked map (conflict lookups must still find it)
	// until reclaimed or summarized.
	n := m.retire(x)
	m.deactivateXact(x)
	return n
}

// Abort releases all SSI state for x. The engine calls it after marking
// the transaction aborted in the MVCC layer (or when a serialization
// failure dooms it).
func (m *Manager) Abort(x *Xact) {
	m.mu.Lock()
	if x.aborted {
		m.mu.Unlock()
		return
	}
	x.edgeMu.Lock()
	x.aborted = true
	x.prepared = false
	x.edgeMu.Unlock()
	m.dropXact(x)
	m.releaseLocksLocked(x)
	// §5.3: conflicts involving an aborted transaction can be removed.
	for w := range x.outConflicts {
		w.edgeMu.Lock()
		delete(w.inConflicts, x)
		w.edgeMu.Unlock()
	}
	for r := range x.inConflicts {
		r.edgeMu.Lock()
		delete(r.outConflicts, x)
		r.edgeMu.Unlock()
	}
	x.edgeMu.Lock()
	x.outConflicts = nil
	x.inConflicts = nil
	x.edgeMu.Unlock()
	// Detach safe-snapshot bookkeeping.
	for rw := range x.possibleUnsafe {
		rw.edgeMu.Lock()
		delete(rw.watchingROs, x)
		rw.edgeMu.Unlock()
	}
	x.edgeMu.Lock()
	x.possibleUnsafe = nil
	x.edgeMu.Unlock()
	for ro := range x.watchingROs {
		ro.edgeMu.Lock()
		delete(ro.possibleUnsafe, x)
		undecided := len(ro.possibleUnsafe) == 0 && !ro.unsafe && !ro.safe.Load()
		ro.edgeMu.Unlock()
		if undecided {
			m.markSafeLocked(ro)
		}
	}
	x.edgeMu.Lock()
	x.watchingROs = nil
	x.edgeMu.Unlock()
	if !x.unsafe && !x.safe.Load() {
		// Unblock any deferrable waiter; verdict is moot.
		x.unsafe = true
		if x.safeCh != nil {
			close(x.safeCh)
		}
	}
	m.mu.Unlock()
	// An abort can be what advances the reclamation horizon (the
	// aborted transaction may have pinned the oldest epoch).
	m.retireMu.Lock()
	hasRetired := len(m.retired) > 0
	m.retireMu.Unlock()
	if hasRetired {
		m.wakeReclaimer()
	}
}

// dropCommittedBatchLocked fully releases a batch of committed
// transactions' state once no active snapshot can observe them,
// sweeping each lock-table partition at most once for all the victims'
// SIREAD locks (a per-transaction release takes a partition mutex per
// lock, which contends with the mutex-free acquire path — see the
// batch-path rules in partition.go). Caller holds m.mu (the reclaimer);
// the edge locks are taken per endpoint.
func (m *Manager) dropCommittedBatchLocked(cs []*Xact) {
	if len(cs) == 0 {
		return
	}
	var byPart map[uint64][]removal
	for _, c := range cs {
		byPart = m.collectLocksLocked(c, byPart)
	}
	m.flushRemovalsLocked(byPart)
	for _, c := range cs {
		m.dropEdgesLocked(c)
		m.dropXact(c)
	}
}

// dropEdgesLocked removes a finished transaction's conflict edges from
// both endpoints. Caller holds m.mu; the edge locks are taken per
// endpoint.
func (m *Manager) dropEdgesLocked(c *Xact) {
	for w := range c.outConflicts {
		w.edgeMu.Lock()
		delete(w.inConflicts, c)
		w.edgeMu.Unlock()
	}
	for r := range c.inConflicts {
		r.edgeMu.Lock()
		delete(r.outConflicts, c)
		r.edgeMu.Unlock()
	}
	c.edgeMu.Lock()
	c.outConflicts = nil
	c.inConflicts = nil
	c.edgeMu.Unlock()
}

// summarizeLocked consolidates a committed transaction (popped from the
// retire queue by summarizeOnPressure) into the dummy OldCommitted
// transaction (§6.2): its SIREAD locks move to the dummy (tagged with
// its commit seq), its earliest out-conflict commit is recorded in the
// summary table, and its graph edges are replaced by summary flags on
// the survivors. Caller holds m.mu.
func (m *Manager) summarizeLocked(c *Xact) {
	m.stats.Summarized++

	// The summary table: xid → commit seq of the earliest transaction
	// c had a conflict out to (zero if none).
	m.summary[c.XID] = c.earliestOutConflictCommit

	// Reassign SIREAD locks to the dummy transaction, inserting the
	// dummy's lock before removing c's so concurrent write checks never
	// see the target momentarily unheld.
	c.lockMu.Lock()
	c.lockingDone = true
	for t := range c.locks {
		m.insertDummyLockLocked(t, c.CommitSeq)
		m.removeLockXLocked(c, t)
	}
	c.tuplesOnPage = nil
	c.pagesOnRel = nil
	c.lockMu.Unlock()

	// Readers of c keep their recorded earliestOutConflictCommit;
	// writers conflicting with c gain the summary-conflict-in flag.
	for r := range c.inConflicts {
		r.edgeMu.Lock()
		delete(r.outConflicts, c)
		r.edgeMu.Unlock()
	}
	for w := range c.outConflicts {
		w.edgeMu.Lock()
		delete(w.inConflicts, c)
		if !w.committed && !w.aborted {
			w.summaryConflictIn = true
		}
		w.edgeMu.Unlock()
	}
	c.edgeMu.Lock()
	c.outConflicts = nil
	c.inConflicts = nil
	c.edgeMu.Unlock()
	m.dropXact(c)
}

// doomVictimLocked dooms victim, falling back per the safe-retry rules if
// the victim cannot be aborted. caller receives ErrSerializationFailure
// when it is the chosen victim.
func (m *Manager) doomVictimLocked(victim, caller *Xact) error {
	if victim.committed || victim.prepared {
		if caller != victim && !caller.committed && !caller.prepared {
			return m.doomLocked(caller, caller)
		}
		return nil
	}
	return m.doomLocked(victim, caller)
}
