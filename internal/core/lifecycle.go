package core

import (
	"math"

	"pgssi/internal/mvcc"
)

// This file implements the transaction lifecycle: the pre-commit
// serialization-failure check (§5.4), commit processing with safe-snapshot
// resolution (§4.2), abort processing, aggressive cleanup of committed
// transactions (§6.1), and summarization (§6.2).

// Commit atomically performs the pre-commit serialization check and, if
// it passes, commits the transaction: commitFn is invoked under the SSI
// mutex to assign the commit sequence number (typically mvcc.Commit).
// If the check fails, ErrSerializationFailure is returned, no commit
// happens, and the caller must abort the transaction.
//
// Performing the check and the commit in one critical section prevents a
// window in which a new conflict could form against a transaction that
// already passed its check, mirroring PostgreSQL's use of
// SerializableXactHashLock around both.
func (m *Manager) Commit(x *Xact, commitFn func() mvcc.SeqNo) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.preCommitCheckLocked(x); err != nil {
		return err
	}
	seq := commitFn()
	m.finishCommitLocked(x, seq)
	return nil
}

// preCommitCheckLocked is PreCommit_CheckForSerializationFailure: it
// looks for dangerous structures in which the committing transaction is
// T3 (committing first, so the pivot must be doomed — §5.4 rule 1/2) or
// the pivot itself (self-abort, rule 2/3 fallback).
func (m *Manager) preCommitCheckLocked(x *Xact) error {
	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	if x.safe.Load() {
		return nil
	}

	// Case 1: x is T3 for some pivot P with P → x. If P has not
	// committed, x would be the first of the structure to commit;
	// abort P now unless a T1 committed before x clears it.
	for pivot := range x.inConflicts {
		if pivot.committed || pivot.aborted || pivot.doomed.Load() {
			continue
		}
		danger := pivot.summaryConflictIn
		if !danger {
			for t1 := range pivot.inConflicts {
				if t1 == x {
					// Two-transaction cycle x → P → x
					// (write skew): always dangerous.
					danger = true
					break
				}
				if !m.cfg.DisableCommitOrderingOpt && t1.committed {
					// T1 committed before T3 (= x, still
					// committing): structure cleared.
					continue
				}
				if !m.cfg.DisableReadOnlyOpt && t1.ReadOnly() && !t1.committed {
					// Active read-only T1 took its snapshot
					// before x commits, so T3 cannot have
					// committed before T1's snapshot.
					continue
				}
				if !m.cfg.DisableReadOnlyOpt && t1.ReadOnly() && t1.committed {
					// Committed read-only T1: dangerous only
					// if x committed before its snapshot —
					// impossible, x is committing now.
					continue
				}
				danger = true
				break
			}
		}
		if !danger {
			continue
		}
		if !pivot.prepared {
			// Doom the pivot (safe-retry rule 2): when retried it
			// will not be concurrent with the committed x.
			if err := m.doomVictimLocked(pivot, x); err != nil {
				return err
			}
			continue
		}
		// Pivot prepared (§7.1): cannot abort it. Abort an active T1
		// if any, else abort x itself.
		aborted := false
		for t1 := range pivot.inConflicts {
			if t1 != x && !t1.committed && !t1.prepared {
				if err := m.doomVictimLocked(t1, x); err != nil {
					return err
				}
				aborted = true
				break
			}
		}
		if !aborted {
			return m.doomVictimLocked(x, x)
		}
	}

	// Case 2: x is the pivot, with a conflict in and a committed (or
	// prepared) conflict out.
	if len(x.inConflicts) > 0 || x.summaryConflictIn {
		if s3 := x.earliestOutConflictCommit; s3 != 0 {
			if err := m.checkPivotLocked(x, s3, x); err != nil {
				return err
			}
		}
		for t3 := range x.outConflicts {
			if t3.prepared && !t3.committed {
				if err := m.checkPivotPreparedT3Locked(x, x); err != nil {
					return err
				}
				break
			}
		}
		if m.cfg.DisableCommitOrderingOpt && len(x.outConflicts) > 0 {
			// Basic SSI: both flags set is enough to abort.
			return m.doomVictimLocked(x, x)
		}
	}

	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	return nil
}

// finishCommitLocked marks x committed with sequence number seq,
// propagates the out-conflict commit info to its readers, resolves
// safe-snapshot watchers, and triggers cleanup and summarization.
func (m *Manager) finishCommitLocked(x *Xact, seq mvcc.SeqNo) {
	x.committed = true
	x.prepared = false
	x.CommitSeq = seq
	delete(m.active, x)
	// A committed transaction keeps its SIREAD locks until cleanup but
	// must not grow its lock set.
	x.lockMu.Lock()
	x.lockingDone = true
	x.lockMu.Unlock()
	if x.wrote {
		m.roSweepValid = false
	}

	// Every reader r with r → x now has a committed out-conflict;
	// record the earliest such commit (§6.1).
	for r := range x.inConflicts {
		if r.earliestOutConflictCommit == 0 || seq < r.earliestOutConflictCommit {
			r.earliestOutConflictCommit = seq
		}
	}

	// Resolve read-only snapshot safety (§4.2): x's fate is now known
	// to every read-only transaction that was watching it.
	for ro := range x.watchingROs {
		delete(ro.possibleUnsafe, x)
		if x.wrote && x.earliestOutConflictCommit != 0 && x.earliestOutConflictCommit <= ro.SnapshotSeq {
			// x committed with an rw-conflict out to a transaction
			// that committed before ro's snapshot: unsafe.
			m.markUnsafeLocked(ro)
			continue
		}
		if len(ro.possibleUnsafe) == 0 && !ro.unsafe && !ro.safe.Load() {
			m.markSafeLocked(ro)
		}
	}
	x.watchingROs = nil

	// If x is itself read-only its SSI state is no longer useful to
	// anyone once it commits — a committed read-only transaction can
	// only be T1 of a structure, which its SIREAD locks already
	// detect. Keep locks, drop nothing special here; cleanup below
	// handles expiry.
	m.committed = append(m.committed, x)

	m.clearOldLocked()
	for len(m.committed) > m.cfg.MaxCommittedXacts {
		m.summarizeOldestLocked()
	}
}

// Abort releases all SSI state for x. The engine calls it after marking
// the transaction aborted in the MVCC layer (or when a serialization
// failure dooms it).
func (m *Manager) Abort(x *Xact) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if x.aborted {
		return
	}
	x.aborted = true
	x.prepared = false
	delete(m.active, x)
	m.releaseLocksLocked(x)
	// §5.3: conflicts involving an aborted transaction can be removed.
	for w := range x.outConflicts {
		delete(w.inConflicts, x)
	}
	for r := range x.inConflicts {
		delete(r.outConflicts, x)
	}
	x.outConflicts = nil
	x.inConflicts = nil
	// Detach safe-snapshot bookkeeping.
	for rw := range x.possibleUnsafe {
		delete(rw.watchingROs, x)
	}
	x.possibleUnsafe = nil
	for ro := range x.watchingROs {
		delete(ro.possibleUnsafe, x)
		if len(ro.possibleUnsafe) == 0 && !ro.unsafe && !ro.safe.Load() {
			m.markSafeLocked(ro)
		}
	}
	x.watchingROs = nil
	if !x.unsafe && !x.safe.Load() {
		// Unblock any deferrable waiter; verdict is moot.
		x.unsafe = true
		if x.safeCh != nil {
			close(x.safeCh)
		}
	}
	delete(m.xacts, x.XID)
	m.clearOldLocked()
}

// clearOldLocked is ClearOldPredicateLocks (§6.1): committed transactions
// whose locks can no longer matter — because no active transaction is
// concurrent with them — are fully released. Additionally, when only
// read-only transactions remain active, all committed transactions'
// SIREAD locks and conflict-in lists are discarded.
func (m *Manager) clearOldLocked() {
	minSeq := mvcc.SeqNo(math.MaxUint64)
	allRO := true
	for x := range m.active {
		if x.SnapshotSeq < minSeq {
			minSeq = x.SnapshotSeq
		}
		if !x.declaredRO {
			allRO = false
		}
	}

	for len(m.committed) > 0 && m.committed[0].CommitSeq <= minSeq {
		c := m.committed[0]
		m.committed = m.committed[1:]
		m.dropCommittedLocked(c)
		m.stats.CleanedXacts++
	}

	// Dummy (summarized) locks expire on the same condition.
	m.expireDummyLocksLocked(minSeq)

	if len(m.active) > 0 && allRO && !m.cfg.DisableReadOnlyOpt && !m.roSweepValid {
		// §6.1: with only read-only transactions active, no future
		// write can conflict with a committed transaction's reads,
		// and committed transactions' conflict-in lists can only
		// matter if an active read/write transaction writes to
		// something they read — which cannot happen. The sweep is
		// valid until a read/write transaction begins or commits.
		for _, c := range m.committed {
			m.releaseLocksLocked(c)
			for r := range c.inConflicts {
				delete(r.outConflicts, c)
			}
			c.inConflicts = nil
		}
		m.roSweepValid = true
	}
}

// dropCommittedLocked fully releases a committed transaction's state.
func (m *Manager) dropCommittedLocked(c *Xact) {
	m.releaseLocksLocked(c)
	for w := range c.outConflicts {
		delete(w.inConflicts, c)
	}
	for r := range c.inConflicts {
		delete(r.outConflicts, c)
	}
	c.outConflicts = nil
	c.inConflicts = nil
	delete(m.xacts, c.XID)
}

// summarizeOldestLocked consolidates the oldest tracked committed
// transaction into the dummy OldCommitted transaction (§6.2): its SIREAD
// locks move to the dummy (tagged with its commit seq), its earliest
// out-conflict commit is recorded in the summary table, and its graph
// edges are replaced by summary flags on the survivors.
func (m *Manager) summarizeOldestLocked() {
	if len(m.committed) == 0 {
		return
	}
	c := m.committed[0]
	m.committed = m.committed[1:]
	m.stats.Summarized++

	// The summary table: xid → commit seq of the earliest transaction
	// c had a conflict out to (zero if none).
	m.summary[c.XID] = c.earliestOutConflictCommit

	// Reassign SIREAD locks to the dummy transaction, inserting the
	// dummy's lock before removing c's so concurrent write checks never
	// see the target momentarily unheld.
	c.lockMu.Lock()
	c.lockingDone = true
	for t := range c.locks {
		m.insertDummyLockLocked(t, c.CommitSeq)
		m.removeLockXLocked(c, t)
	}
	c.tuplesOnPage = nil
	c.pagesOnRel = nil
	c.lockMu.Unlock()

	// Readers of c keep their recorded earliestOutConflictCommit;
	// writers conflicting with c gain the summary-conflict-in flag.
	for r := range c.inConflicts {
		delete(r.outConflicts, c)
	}
	for w := range c.outConflicts {
		delete(w.inConflicts, c)
		if !w.committed && !w.aborted {
			w.summaryConflictIn = true
		}
	}
	c.outConflicts = nil
	c.inConflicts = nil
	delete(m.xacts, c.XID)
}

// doomVictimLocked dooms victim, falling back per the safe-retry rules if
// the victim cannot be aborted. caller receives ErrSerializationFailure
// when it is the chosen victim.
func (m *Manager) doomVictimLocked(victim, caller *Xact) error {
	if victim.committed || victim.prepared {
		if caller != victim && !caller.committed && !caller.prepared {
			return m.doomLocked(caller, caller)
		}
		return nil
	}
	return m.doomLocked(victim, caller)
}
