package core

import (
	"sync"

	"pgssi/internal/mvcc"
)

// This file implements the hash-partitioned SIREAD lock table, the
// analogue of PostgreSQL's PredicateLockHashPartitionLock array. The
// table is sharded by Target into Config.Partitions shards, each with
// its own mutex, so lock acquisition and release — the hottest path in
// the system, taken once per tuple read — do not serialize on the
// global SSI mutex.
//
// Lock ordering (deadlock freedom and correctness rule):
//
//  0. Storage-layer locks (internal/storage): a heap shard mutex, then
//     a per-page read latch (storage/latch.go). The engine's read and
//     write paths enter this package while holding a page latch — the
//     latch is what makes a read's {visibility check, SIREAD insert}
//     and a write's {xmax stamp, CheckWrite probe} atomic units — so
//     every lock below nests strictly inside the storage locks. No
//     code path in this package may call into internal/storage or
//     otherwise acquire a storage lock.
//  1. Manager.mu — transaction lifecycle, the rw-antidependency graph,
//     the committed-transaction FIFO, the summary table, and safe-
//     snapshot bookkeeping.
//  2. Xact.lockMu — one transaction's own lock bookkeeping (its lock
//     set and granularity-promotion counters).
//  3. lockPartition.mu — one shard of the target → holders table and
//     of the summarized dummy transaction's lock tags.
//
// A thread may acquire these only outer-to-inner (mu before lockMu
// before a partition mutex), holds at most one Xact.lockMu and at most
// one partition mutex at a time, and never acquires an outer lock
// while holding an inner one. Cross-partition operations (PageSplit,
// PromoteRelationLocks, summarization, cleanup) serialize through
// Manager.mu and then visit partitions one at a time, so they need no
// ordering among partition mutexes.
//
// Two invariants keep conflict detection correct without a global
// lock-table mutex (§5.2.1 with concurrent granularity promotion):
//
//   - Promotion inserts the coarser lock BEFORE removing the finer
//     locks it replaces, so at every instant at least one granularity
//     covering the read is present in the table.
//   - Writers check granularities finest to coarsest (tuple, page,
//     relation; see CheckWrite). Together with the previous invariant,
//     any interleaving of a write check with a concurrent promotion
//     sees the lock at one level or another: if the finer lock is
//     already gone, the coarser one was inserted before the writer
//     reached that coarser level.

// lockPartition is one shard of the SIREAD lock table.
type lockPartition struct {
	mu sync.Mutex
	// locks maps target → holders, for targets hashing to this shard.
	locks map[Target]map[*Xact]struct{}
	// dummySeqs records, per target held by the summarized dummy
	// transaction, the latest commit sequence number of any absorbed
	// holder, for cleanup (§6.2).
	dummySeqs map[Target]mvcc.SeqNo
}

func newLockPartitions(n int) []lockPartition {
	parts := make([]lockPartition, n)
	for i := range parts {
		parts[i].locks = make(map[Target]map[*Xact]struct{})
		parts[i].dummySeqs = make(map[Target]mvcc.SeqNo)
	}
	return parts
}

// partition returns the shard responsible for t, by FNV-1a hash of the
// full target tag (relation, level, page, key).
func (m *Manager) partition(t Target) *lockPartition {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(t.Rel); i++ {
		h ^= uint64(t.Rel[i])
		h *= prime64
	}
	h ^= uint64(uint8(t.Level))
	h *= prime64
	h ^= uint64(t.Page)
	h *= prime64
	for i := 0; i < len(t.Key); i++ {
		h ^= uint64(t.Key[i])
		h *= prime64
	}
	return &m.parts[h&m.partMask]
}

// bumpLocksCurrent adjusts the live-lock gauge and maintains the peak.
func (m *Manager) bumpLocksCurrent(delta int64) {
	cur := m.locksCurrent.Add(delta)
	if delta <= 0 {
		return
	}
	for {
		peak := m.locksPeak.Load()
		if cur <= peak || m.locksPeak.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// insertDummyLockLocked records a SIREAD lock held by the summarized
// dummy transaction, remembering the latest commit seq of any holder so
// the lock can eventually be cleaned up (§6.2). Caller holds m.mu
// (dummy locks are only created by lifecycle and structural operations,
// which all serialize through the SSI mutex).
func (m *Manager) insertDummyLockLocked(t Target, seq mvcc.SeqNo) {
	p := m.partition(t)
	p.mu.Lock()
	defer p.mu.Unlock()
	holders := p.locks[t]
	if holders == nil {
		holders = make(map[*Xact]struct{})
		p.locks[t] = holders
	}
	if _, ok := holders[m.oldCommitted]; !ok {
		holders[m.oldCommitted] = struct{}{}
		m.bumpLocksCurrent(1)
	}
	if seq > p.dummySeqs[t] {
		p.dummySeqs[t] = seq
	}
}

// removeDummyLockLocked removes the dummy transaction's lock on t.
// Caller holds m.mu.
func (m *Manager) removeDummyLockLocked(t Target) {
	p := m.partition(t)
	p.mu.Lock()
	defer p.mu.Unlock()
	m.removeDummyPartLocked(p, t)
}

// removeDummyPartLocked removes the dummy transaction's lock on t,
// which must hash to p. Caller holds m.mu and p.mu.
func (m *Manager) removeDummyPartLocked(p *lockPartition, t Target) {
	if _, ok := p.dummySeqs[t]; !ok {
		return
	}
	delete(p.dummySeqs, t)
	if holders, ok := p.locks[t]; ok {
		if _, held := holders[m.oldCommitted]; held {
			delete(holders, m.oldCommitted)
			m.locksCurrent.Add(-1)
		}
		if len(holders) == 0 {
			delete(p.locks, t)
		}
	}
}

// expireDummyLocksLocked drops every dummy lock whose absorbed holders
// all committed at or before minSeq (§6.1). Caller holds m.mu.
func (m *Manager) expireDummyLocksLocked(minSeq mvcc.SeqNo) {
	for i := range m.parts {
		p := &m.parts[i]
		p.mu.Lock()
		for t, seq := range p.dummySeqs {
			if seq <= minSeq {
				m.removeDummyPartLocked(p, t)
			}
		}
		p.mu.Unlock()
	}
}
