package core

import (
	"sync"

	"pgssi/internal/mvcc"
)

// This file implements the hash-partitioned SIREAD lock table, the
// analogue of PostgreSQL's PredicateLockHashPartitionLock array. The
// table is sharded by Target into Config.Partitions shards, each with
// its own mutex, so lock acquisition and release — the hottest path in
// the system, taken once per tuple read — do not serialize on the
// global SSI mutex.
//
// Lock ordering (deadlock freedom and correctness rule):
//
//  0. Storage-layer locks (internal/storage): a heap shard mutex, then
//     a per-page read latch (storage/latch.go). The engine's read and
//     write paths enter this package while holding a page latch — the
//     latch is what makes a read's {visibility check, SIREAD insert}
//     and a write's {xmax stamp, CheckWrite probe} atomic units — so
//     every lock below nests strictly inside the storage locks. No
//     code path in this package may call into internal/storage or
//     otherwise acquire a storage lock.
//  1. Manager.mu — the conflict-graph mutex: rw-antidependency
//     flagging, dangerous-structure traversal, the pre-commit check of
//     edge-bearing transactions, read-only safety registration and
//     resolution, the summary table, and reclamation/summarization of
//     committed state. (Begin and conflict-free commits do NOT take
//     it; see levels 2a–2c.)
//  2a. xactShard.mu — one shard of the active-transaction registry
//     (registry.go). Begin takes only this; mu-holders take shards one
//     at a time for lookups and scans.
//  2b. Xact.edgeMu — one transaction's edge lock, guarding its
//     conflict-edge and safety-watch maps and its lifecycle flags
//     against the commit fast path. A thread holding Manager.mu may
//     hold several edge locks at once, in any order (mu serializes all
//     multi-holders); a thread NOT holding Manager.mu may hold at most
//     ONE — its own transaction's, on the conflict-free commit fast
//     path. That single-lock discipline is what makes pair ordering
//     unnecessary.
//  2c. Manager.retireMu — the epoch reclaimer's retire queue
//     (reclaim.go). Leaf with respect to 2a/2b: never held together
//     with a shard or edge lock. (Whole reclaim passes additionally
//     serialize on reclaimer.passMu, which sits ABOVE Manager.mu and
//     is only ever taken with no other lock held.)
//  3. Xact.lockMu — one transaction's own lock bookkeeping (its lock
//     set and granularity-promotion counters).
//  4. lockPartition.mu — one shard of the target → holders table and
//     of the summarized dummy transaction's lock tags.
//
// A thread may acquire these only outer-to-inner, holds at most one
// Xact.lockMu and at most one partition mutex at a time, and never
// acquires an outer lock while holding an inner one. The level-2 locks
// are mutually unordered; a thread holds locks from at most one of 2a,
// 2b, 2c at a time (the read-only safety scan collects candidates from
// the shards and the retire queue first, releasing them, and only then
// takes edge locks). The mvcc.Manager's locks (entered via snapFn /
// commitFn callbacks and via fate lookups) are leaves that may be taken
// from under mu or an edge lock: a commit-log shard RWMutex (one at a
// time; CSN assignment and commit-log publication share one shard
// critical section, so a fate lookup can at worst block momentarily on
// a mid-publication commit), the truncation mutex, and — legacy
// snapshot mode only — the mvcc global mutex.
// Cross-partition operations (PageSplit, PromoteRelationLocks,
// summarization, reclamation) serialize through Manager.mu and then
// visit partitions one at a time, so they need no ordering among
// partition mutexes.
//
// Reclamation epochs: committed transactions are not cleaned up inside
// commit any more. A transaction pins the epoch of its snapshot in the
// registry before taking it (Begin's snapshot-ordering step); commits
// retire into Manager.retired; and the background reclaimer drops a
// retired transaction's SIREAD locks and edges only once every pinned
// epoch has passed its commit sequence (reclaim.go). The lock table
// consequences: a holder found in a partition may be committed (locks
// outlive commit until the horizon passes, as §5.2 requires), and
// dummy-lock expiry uses the same horizon.
//
// Snapshot-vs-reclaimer epoch rule for the MVCC commit log: the same
// reclaimer pass also truncates the commit log (mvcc.AutoTruncate), but
// against mvcc's OWN horizon — the minimum begin-time published CSN
// over all active MVCC transactions at every isolation level, not this
// package's registry horizon, which covers only serializable
// transactions. A committed xid is truncated only once every present or
// future snapshot resolves it visible; snapshots not pinned by an
// active MVCC transaction (DB.Vacuum's horizon) must create one for the
// duration of use. Aborted xids survive truncation as tombstones until
// the heap is vacuumed clean of them (mvcc.DropAbortedBelow).
//
// Two invariants keep conflict detection correct without a global
// lock-table mutex (§5.2.1 with concurrent granularity promotion):
//
//   - Promotion inserts the coarser lock BEFORE removing the finer
//     locks it replaces, so at every instant at least one granularity
//     covering the read is present in the table.
//   - Writers check granularities finest to coarsest (tuple, page,
//     relation; see CheckWrite). Together with the previous invariant,
//     any interleaving of a write check with a concurrent promotion
//     sees the lock at one level or another: if the finer lock is
//     already gone, the coarser one was inserted before the writer
//     reached that coarser level.
//
// Batch paths (PR 5). The page-grained scan read path batches SIREAD
// acquisition (AcquireTupleLockBatch) and the reclaimer batches release
// (flushRemovalsLocked); both follow the same outer-to-inner order with
// two refinements:
//
//   - A lock batch NEVER spans heap pages. The engine's scan groups the
//     btree range result by the heap page of each row's visible version
//     (storage.ReadPageBatch) and registers one page's tuples per call,
//     from inside that page's shared read latch — so the PR 2 atomicity
//     unit {visibility check, SIREAD registration} stays per page, and
//     the level-0 rule (storage latch outside all core locks) is
//     unchanged. Within a batch, x.lockMu is taken ONCE and the
//     surviving inserts are grouped so each partition mutex is taken at
//     most once — still one partition mutex at a time, so the ordering
//     argument is unaffected; promotion bookkeeping runs once at batch
//     end.
//   - Batched release defers the partition-side holder removal: a
//     reclaim pass freezes each victim's lock set under its lockMu
//     (setting lockingDone and clearing x.locks), then sweeps each
//     partition once for the whole batch. In the window between the
//     two steps the lock table transiently contains holders whose own
//     lock set is already empty. That desync is invisible: the entire
//     pass holds Manager.mu, and every reader of another transaction's
//     holder entries — CheckWrite's probes, PageSplit,
//     PromoteRelationLocks, summarization — also requires Manager.mu,
//     while mutex-free paths (acquire, DropOwnTupleLock) touch only
//     their own transaction's entries.
//
// Finished-transaction insert audit (PR 5): insertLockXLocked has no
// lockingDone guard, and PageSplit / PromoteRelationLocks call it for
// holders that may already be committed — deliberately, since a
// committed transaction's SIREAD locks must follow page splits until
// reclamation (§5.2). This cannot leak a lock past release: every
// release path (Abort, markSafeLocked, the reclaimer's drop, the §6.1
// read-only sweep, and summarization) runs under Manager.mu, and
// PageSplit / PromoteRelationLocks hold Manager.mu across {holder-set
// snapshot, insert} — so either the release ran first (the transaction
// is no longer a holder anywhere and receives nothing) or the insert
// lands first and the release, which drains x.locks in the same
// critical-section regime, removes it. Mutex-free acquire paths are
// fenced per-transaction instead: lockingDone is set and checked under
// x.lockMu. The quiesce regression test
// TestPageSplitQuiesceAccounting pins the LockCount == LocksCurrent
// consequence.

// lockPartition is one shard of the SIREAD lock table. Its mutex is
// the innermost of the package's annotated locks — the acquisition
// order is machine-checked by ssilint against the canonical level
// table in docs/invariants.md.
type lockPartition struct {
	mu sync.Mutex //ssi:lock level=50 name=core.partition
	// locks maps target → holders, for targets hashing to this shard.
	locks map[Target]map[*Xact]struct{}
	// dummySeqs records, per target held by the summarized dummy
	// transaction, the latest commit sequence number of any absorbed
	// holder, for cleanup (§6.2).
	dummySeqs map[Target]mvcc.SeqNo
}

func newLockPartitions(n int) []lockPartition {
	parts := make([]lockPartition, n)
	for i := range parts {
		parts[i].locks = make(map[Target]map[*Xact]struct{})
		parts[i].dummySeqs = make(map[Target]mvcc.SeqNo)
	}
	return parts
}

// partitionIndex returns the index of the shard responsible for t, by
// FNV-1a hash of the full target tag (relation, level, page, key).
func (m *Manager) partitionIndex(t Target) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(t.Rel); i++ {
		h ^= uint64(t.Rel[i])
		h *= prime64
	}
	h ^= uint64(uint8(t.Level))
	h *= prime64
	h ^= uint64(t.Page)
	h *= prime64
	for i := 0; i < len(t.Key); i++ {
		h ^= uint64(t.Key[i])
		h *= prime64
	}
	return h & m.partMask
}

// partition returns the shard responsible for t.
func (m *Manager) partition(t Target) *lockPartition {
	return &m.parts[m.partitionIndex(t)]
}

// bumpLocksCurrent adjusts the live-lock gauge and maintains the peak.
func (m *Manager) bumpLocksCurrent(delta int64) {
	cur := m.locksCurrent.Add(delta)
	if delta <= 0 {
		return
	}
	for {
		peak := m.locksPeak.Load()
		if cur <= peak || m.locksPeak.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// insertDummyLockLocked records a SIREAD lock held by the summarized
// dummy transaction, remembering the latest commit seq of any holder so
// the lock can eventually be cleaned up (§6.2). Caller holds m.mu
// (dummy locks are only created by lifecycle and structural operations,
// which all serialize through the SSI mutex).
func (m *Manager) insertDummyLockLocked(t Target, seq mvcc.SeqNo) {
	p := m.partition(t)
	p.mu.Lock()
	defer p.mu.Unlock()
	holders := p.locks[t]
	if holders == nil {
		holders = make(map[*Xact]struct{})
		p.locks[t] = holders
	}
	if _, ok := holders[m.oldCommitted]; !ok {
		holders[m.oldCommitted] = struct{}{}
		m.bumpLocksCurrent(1)
	}
	if seq > p.dummySeqs[t] {
		p.dummySeqs[t] = seq
	}
}

// removeDummyLockLocked removes the dummy transaction's lock on t.
// Caller holds m.mu.
func (m *Manager) removeDummyLockLocked(t Target) {
	p := m.partition(t)
	p.mu.Lock()
	defer p.mu.Unlock()
	m.removeDummyPartLocked(p, t)
}

// removeDummyPartLocked removes the dummy transaction's lock on t,
// which must hash to p. Caller holds m.mu and p.mu.
func (m *Manager) removeDummyPartLocked(p *lockPartition, t Target) {
	if _, ok := p.dummySeqs[t]; !ok {
		return
	}
	delete(p.dummySeqs, t)
	if holders, ok := p.locks[t]; ok {
		if _, held := holders[m.oldCommitted]; held {
			delete(holders, m.oldCommitted)
			m.locksCurrent.Add(-1)
		}
		if len(holders) == 0 {
			delete(p.locks, t)
		}
	}
}

// expireDummyLocksLocked drops every dummy lock whose absorbed holders
// all committed at or before minSeq (§6.1). Caller holds m.mu.
func (m *Manager) expireDummyLocksLocked(minSeq mvcc.SeqNo) {
	for i := range m.parts {
		p := &m.parts[i]
		p.mu.Lock()
		for t, seq := range p.dummySeqs {
			if seq <= minSeq {
				m.removeDummyPartLocked(p, t)
			}
		}
		p.mu.Unlock()
	}
}
