package core

import (
	"sync"
)

// Epoch-based deferred reclamation of committed-transaction state.
//
// Commit used to run ClearOldPredicateLocks (§6.1) and summarization
// (§6.2) inside its critical section: every commit paid an O(active)
// horizon scan plus a sweep of all lock-table partitions' dummy tags
// while holding the global SSI mutex. Both now run here, off the commit
// path. The scheme is a classic epoch reclaimer:
//
//   - the global epoch is the MVCC commit-sequence counter;
//   - a transaction pins the epoch of its snapshot by publishing a
//     snapshot bound into the registry before the snapshot is taken
//     (registry.go);
//   - a committed transaction retires at epoch CommitSeq, entering the
//     retire queue (Manager.retired, kept sorted by commit seq);
//   - once the horizon — the minimum pinned epoch — passes a retired
//     transaction's commit seq, no present or future snapshot can
//     observe it and its SIREAD locks and graph edges are dropped.
//
// The reclaimer goroutine is spawned lazily when a wake finds work and
// exits as soon as the queue is drained, so an idle Manager holds no
// goroutine and a quiesced one can be garbage collected. Retirement
// wakes it every reclaimBatch commits (amortizing the horizon scan)
// and on any commit that leaves no transaction active; aborts wake it
// directly because an abort can be what advances the
// horizon. ReclaimNow runs a synchronous pass for tests and quiesce
// points. Summarization stays synchronous on overflow pressure
// (lifecycle.go) — the §6.2 memory bound must hold even if the
// reclaimer is starved.

// reclaimBatch is how many retirements accumulate between background
// reclaim passes.
const reclaimBatch = 64

// reclaimer tracks the lazily-spawned background pass.
type reclaimer struct {
	mu      sync.Mutex //ssi:lock level=15 name=core.reclaimer
	running bool
	pending bool
	// closed permanently disables background passes (Manager.Close):
	// wakeReclaimer becomes a no-op and a running loop exits at its
	// next iteration. idle is broadcast whenever running goes false.
	closed bool
	idle   *sync.Cond
	// passMu serializes whole reclaim passes: a pass pops retired
	// entries and then drops their state in separate critical sections,
	// and without pass-level mutual exclusion ReclaimNow could return
	// while a concurrent background pass still holds popped entries it
	// has not dropped yet.
	passMu sync.Mutex //ssi:lock level=10 name=core.reclaimPass
}

// wakeReclaimer requests a background pass, spawning the goroutine if
// none is running. After Close it is a no-op.
func (m *Manager) wakeReclaimer() {
	r := &m.rec
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.pending = true
	if !r.running {
		r.running = true
		go m.reclaimLoop()
	}
	r.mu.Unlock()
}

func (m *Manager) reclaimLoop() {
	for {
		r := &m.rec
		r.mu.Lock()
		if !r.pending || r.closed {
			r.pending = false
			r.running = false
			if r.idle != nil {
				r.idle.Broadcast()
			}
			r.mu.Unlock()
			return
		}
		r.pending = false
		r.mu.Unlock()
		m.reclaimPass()
	}
}

// Close stops the background reclaimer permanently: it waits for any
// running pass to finish, prevents new spawns, and runs one final
// synchronous pass so everything already reclaimable is dropped. Part of
// DB.Close's quiesce; in-process users who Open a DB and discard it
// without Close merely leave an idle (lazily-spawned, already-exited)
// reclaimer behind, but a server must stop it deterministically.
func (m *Manager) Close() {
	r := &m.rec
	r.mu.Lock()
	r.closed = true
	if r.idle == nil {
		r.idle = sync.NewCond(&r.mu)
	}
	for r.running {
		r.idle.Wait()
	}
	r.mu.Unlock()
	m.ReclaimNow()
}

// ReclaimNow runs one synchronous reclamation pass: everything whose
// epoch has passed the horizon is dropped before it returns. Tests call
// it at quiesce points; it is also safe to call concurrently with a
// running background pass.
func (m *Manager) ReclaimNow() {
	m.reclaimPass()
}

// reclaimPass drops every retired transaction no active snapshot can
// observe, expires dummy locks on the same horizon, runs the §6.1
// only-read-only-transactions sweep when it applies, and then advances
// the MVCC commit-log truncation floor (the clog analogue of this
// reclamation: internal/mvcc AutoTruncate computes its own horizon over
// *all* MVCC transactions, not just serializable ones, so weaker-level
// snapshots are safe too).
//
// The horizon is computed before taking mu; it can only be stale in the
// conservative direction (a transaction that commits or aborts during
// the scan keeps its bound in the minimum, and one that registers after
// the scan has a bound at or above the scan-time commit seq, so nothing
// it can observe is below the stale horizon).
func (m *Manager) reclaimPass() {
	m.reclaimGraphPass()
	// Outside every SSI lock: AutoTruncate takes only mvcc-internal
	// (leaf) locks, but there is no reason to hold m.mu across it.
	m.mvcc.AutoTruncate()
}

func (m *Manager) reclaimGraphPass() {
	m.rec.passMu.Lock()
	defer m.rec.passMu.Unlock()

	minSeq, allRO, nActive := m.epochHorizon()

	m.mu.Lock()
	defer m.mu.Unlock()

	m.retireMu.Lock()
	cut := 0
	for cut < len(m.retired) && m.retired[cut].CommitSeq <= minSeq {
		cut++
	}
	reclaim := m.retired[:cut:cut]
	m.retired = append([]*Xact(nil), m.retired[cut:]...)
	m.retireMu.Unlock()

	m.dropCommittedBatchLocked(reclaim)
	m.stats.CleanedXacts += int64(len(reclaim))
	m.expireDummyLocksLocked(minSeq)

	// The all-read-only gate must be recomputed now that m.mu is held:
	// the horizon scan above ran before it, and a read/write
	// transaction could have begun AND committed (fast path, no m.mu)
	// in between — retiring into the queue this sweep is about to
	// strip while a transaction concurrent with it is still active.
	// Rechecking under m.mu closes that: any read/write transaction
	// active now flips allRO off, one that begins after this recheck
	// has (by the bound protocol) a snapshot at or above every commit
	// currently retired, and it cannot write before the sweep ends —
	// CheckWrite needs m.mu.
	_, allRO, nActive = m.epochHorizon()
	if nActive > 0 && allRO && !m.cfg.DisableReadOnlyOpt && !m.roSweepValid.Load() {
		// §6.1: with only read-only transactions active, no future write
		// can conflict with a committed transaction's reads, and a
		// committed transaction's conflict-in list can only matter if an
		// active read/write transaction writes something it read — which
		// cannot happen. The sweep stays valid until a read/write
		// transaction begins or commits (roSweepValid is cleared there).
		m.retireMu.Lock()
		swept := append([]*Xact(nil), m.retired...)
		m.retireMu.Unlock()
		var byPart map[uint64][]removal
		for _, c := range swept {
			byPart = m.collectLocksLocked(c, byPart)
		}
		m.flushRemovalsLocked(byPart)
		for _, c := range swept {
			for r := range c.inConflicts {
				r.edgeMu.Lock()
				delete(r.outConflicts, c)
				r.edgeMu.Unlock()
			}
			c.edgeMu.Lock()
			c.inConflicts = nil
			c.edgeMu.Unlock()
		}
		m.roSweepValid.Store(true)
	}
}

// retire inserts a committed transaction into the retire queue, keeping
// it sorted by commit sequence (commits arrive nearly in order, so the
// insertion point is almost always the tail). It returns the queue
// length so callers can apply pressure policies. Retirement happens
// BEFORE the transaction leaves the registry's active set: at every
// instant a serializable transaction is findable in the active set or
// the retire queue (or both), which the read-only safety scan relies on.
func (m *Manager) retire(x *Xact) int {
	m.retireMu.Lock()
	i := len(m.retired)
	for i > 0 && m.retired[i-1].CommitSeq > x.CommitSeq {
		i--
	}
	m.retired = append(m.retired, nil)
	copy(m.retired[i+1:], m.retired[i:])
	m.retired[i] = x
	n := len(m.retired)
	m.retireMu.Unlock()
	return n
}

// afterCommit runs a committed transaction's deferred lifecycle work,
// outside every lock: retire-queue pressure handling and reclaimer
// wake-ups. Besides the batch wake, a commit that leaves the system
// quiescent (no active transaction) always wakes the reclaimer —
// otherwise a burst of fewer than reclaimBatch commits followed by
// idleness would retain its transactions, SIREAD locks, and expired
// dummy locks indefinitely.
func (m *Manager) afterCommit(retiredLen int) {
	if retiredLen > m.cfg.MaxCommittedXacts {
		m.summarizeOnPressure()
		return
	}
	if retiredLen%reclaimBatch == 0 || m.activeCount.Load() == 0 {
		m.wakeReclaimer()
	}
}

// summarizeOnPressure enforces the §6.2 memory bound synchronously: it
// first reclaims whatever the horizon already allows (mirroring the old
// cleanup-then-summarize order, so reclaimable transactions are not
// needlessly summarized), then folds the oldest retired transactions
// into the dummy OldCommitted transaction until the queue is back
// within budget.
func (m *Manager) summarizeOnPressure() {
	m.reclaimPass()
	// The victims are dequeued under m.mu (not just retireMu): the
	// read-only safety scan relies on every committed transaction
	// being findable in the active set, the retire queue, or the
	// summary table while it holds m.mu, so a transaction must not sit
	// dequeued-but-unsummarized outside that mutex.
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retireMu.Lock()
	over := len(m.retired) - m.cfg.MaxCommittedXacts
	var victims []*Xact
	if over > 0 {
		victims = m.retired[:over:over]
		m.retired = append([]*Xact(nil), m.retired[over:]...)
	}
	m.retireMu.Unlock()
	for _, c := range victims {
		m.summarizeLocked(c)
	}
}
