// Package core implements Serializable Snapshot Isolation as described in
// "Serializable Snapshot Isolation in PostgreSQL" (Ports & Grittner, VLDB
// 2012). It is the analogue of PostgreSQL's predicate.c: a lock manager
// holding only SIREAD locks at tuple / page / relation granularity, and
// per-transaction tracking of rw-antidependencies with dangerous-structure
// detection.
//
// The package provides:
//
//   - SIREAD lock acquisition with multigranularity promotion (§5.2.1);
//   - rw-antidependency flagging from both directions: write-after-read
//     via the SIREAD table, read-after-write via MVCC conflict-out data
//     supplied by the storage layer (§5.2);
//   - dangerous-structure detection with the commit-ordering optimization
//     (§3.3.1) and the read-only snapshot ordering rule (Theorem 3, §4.1);
//   - safe-retry victim selection (§5.4);
//   - safe snapshots and deferrable transactions (§4.2, §4.3);
//   - bounded memory via aggressive cleanup of committed transactions and
//     summarization into a dummy transaction plus an xid → earliest
//     out-conflict commit table (§6);
//   - two-phase commit support with conservative recovery (§7.1).
//
// Concurrency control is decomposed along the lines §8 of the paper
// suggests once the single SerializableXactHashLock becomes the
// bottleneck:
//
//   - the SIREAD lock table is sharded into Config.Partitions hash
//     partitions (partition.go), so per-read lock acquisition never
//     takes a global mutex;
//   - transaction lifecycle runs against a sharded active-transaction
//     registry (registry.go): Begin registers with an atomic
//     snapshot-ordering step and takes no global mutex, and a commit
//     with no conflict edges or safety watchers commits under only its
//     own per-transaction edge lock;
//   - cleanup and summarization of committed transactions run in an
//     epoch-based background reclaimer (reclaim.go), off the commit
//     critical section;
//   - Manager.mu remains only as the conflict-graph mutex: conflict
//     flagging, dangerous-structure traversal, the pre-commit check of
//     edge-bearing transactions, and read-only safety registration
//     serialize there.
//
// The full lock-ordering rule is documented in partition.go.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pgssi/internal/mvcc"
)

// ErrSerializationFailure is returned when a transaction must abort to
// preserve serializability (a dangerous structure of two adjacent
// rw-antidependencies was detected and this transaction was chosen as the
// victim). The transaction can be retried; the safe-retry rules of §5.4
// guarantee an immediate retry will not fail with the same conflict,
// except in the two-phase-commit case described in §7.1.
var ErrSerializationFailure = errors.New("could not serialize access due to read/write dependencies among transactions")

// Level is a predicate-lock granularity.
type Level int8

// Granularities, coarsest first. Writers check each level in this order
// (coarsest to finest), which §5.2.1 notes is required for correctness
// with concurrent granularity promotion.
const (
	LevelRelation Level = iota
	LevelPage
	LevelTuple
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelRelation:
		return "relation"
	case LevelPage:
		return "page"
	case LevelTuple:
		return "tuple"
	default:
		return fmt.Sprintf("Level(%d)", int8(l))
	}
}

// Target names a lockable object: a relation, a page of a relation, or a
// tuple (identified by key, qualified by the page holding the version
// that was read). Index gap locks are page-level targets whose Rel is the
// index name.
type Target struct {
	Rel   string
	Level Level
	Page  int64
	Key   string
}

// String implements fmt.Stringer.
func (t Target) String() string {
	switch t.Level {
	case LevelRelation:
		return fmt.Sprintf("%s", t.Rel)
	case LevelPage:
		return fmt.Sprintf("%s/p%d", t.Rel, t.Page)
	default:
		return fmt.Sprintf("%s/p%d/%q", t.Rel, t.Page, t.Key)
	}
}

// RelationTarget returns the relation-granularity target for rel.
func RelationTarget(rel string) Target {
	return Target{Rel: rel, Level: LevelRelation}
}

// PageTarget returns the page-granularity target for (rel, page).
func PageTarget(rel string, page int64) Target {
	return Target{Rel: rel, Level: LevelPage, Page: page}
}

// TupleTarget returns the tuple-granularity target for key on (rel, page).
func TupleTarget(rel string, page int64, key string) Target {
	return Target{Rel: rel, Level: LevelTuple, Page: page, Key: key}
}

// Config tunes the SSI manager. The zero value is usable; unset limits
// get generous defaults.
type Config struct {
	// MaxPredicateLocks bounds the SIREAD lock table. When an
	// acquisition would exceed it, the acquiring transaction's locks on
	// the target relation are promoted to relation granularity,
	// trading precision for space (graceful degradation, §6).
	MaxPredicateLocks int
	// MaxCommittedXacts bounds the number of committed transactions
	// tracked in full. Beyond it, the oldest committed transaction is
	// summarized into the dummy OldCommitted transaction (§6.2).
	MaxCommittedXacts int
	// PromoteTupleToPage is the number of tuple locks on one page a
	// transaction may hold before they are consolidated into a single
	// page lock.
	PromoteTupleToPage int
	// PromotePageToRel is the number of page locks on one relation a
	// transaction may hold before promotion to a relation lock.
	PromotePageToRel int
	// DisableCommitOrderingOpt turns off the commit-ordering
	// optimization of §3.3.1 (ablation A1): every dangerous structure
	// aborts, regardless of commit order.
	DisableCommitOrderingOpt bool
	// DisableReadOnlyOpt turns off the §4 read-only optimizations
	// (ablation A2, the "SSI no r/o opt" series in Figures 4 and 5):
	// no snapshot-ordering filter, no safe snapshots.
	DisableReadOnlyOpt bool
	// Partitions is the number of hash partitions the SIREAD lock
	// table is divided into, the analogue of PostgreSQL's
	// NUM_PREDICATELOCK_PARTITIONS. It also sizes the active-transaction
	// registry shards. Rounded up to a power of two; defaults to 16.
	// Set to 1 to reproduce the single-mutex table.
	Partitions int

	// DisableLifecycleFencing reopens the lifecycle windows that the
	// fine-grained Begin/Commit locking must keep closed. Test-only
	// ablation; never set it in production. With it set:
	//
	//   - Begin takes its snapshot BEFORE registering in the active
	//     registry (instead of publishing a snapshot bound first), so
	//     the epoch reclaimer can prematurely drop committed state the
	//     new transaction is concurrent with;
	//   - a read-only Begin registers its safety watchers in a separate
	//     critical section from its snapshot, so a read/write
	//     transaction committing in between escapes the bookkeeping and
	//     the safe-snapshot verdict can be wrong;
	//   - Commit assigns the commit sequence in a separate critical
	//     section from the pre-commit check, so a dangerous structure
	//     completed in between (including a doom of the committer) is
	//     missed.
	DisableLifecycleFencing bool
	// OnBegin, if non-nil, is invoked during Begin's snapshot-ordering
	// step with the transaction's xid: after registration and before
	// the snapshot is taken (for fenced read-only begins, between the
	// snapshot and the safety-watcher registration, inside the critical
	// section; with DisableLifecycleFencing, inside the reopened
	// window). Test-only interleaving hook; it must not call back into
	// the Manager.
	OnBegin func(xid mvcc.TxID)
	// OnPreCommit, if non-nil, is invoked between a passing pre-commit
	// serialization check and the commit-sequence assignment, while the
	// commit's critical section (Manager.mu, or the transaction's edge
	// lock on the conflict-free fast path) is held — except under
	// DisableLifecycleFencing, where it runs in the reopened window
	// with no lock held. Test-only interleaving hook; it must not call
	// back into the Manager.
	OnPreCommit func(xid mvcc.TxID)
}

func (c Config) withDefaults() Config {
	if c.MaxPredicateLocks <= 0 {
		c.MaxPredicateLocks = 1 << 20
	}
	if c.MaxCommittedXacts <= 0 {
		c.MaxCommittedXacts = 1 << 14
	}
	if c.PromoteTupleToPage <= 0 {
		c.PromoteTupleToPage = 16
	}
	if c.PromotePageToRel <= 0 {
		c.PromotePageToRel = 32
	}
	if c.Partitions <= 0 {
		c.Partitions = 16
	}
	// Round up to a power of two so partition selection is a mask.
	n := 1
	for n < c.Partitions {
		n <<= 1
	}
	c.Partitions = n
	return c
}

// Stats are cumulative counters exposed for benchmarks and tests.
type Stats struct {
	LocksAcquired      int64
	LocksCurrent       int64
	LocksPeak          int64
	TuplePromotions    int64
	PagePromotions     int64
	CapacityPromotions int64
	ConflictsFlagged   int64
	DangerousAborts    int64
	SelfAborts         int64
	VictimAborts       int64
	Summarized         int64
	SafeSnapshots      int64
	ImmediatelySafe    int64
	CleanedXacts       int64
}

// Xact is the SSI bookkeeping for one serializable transaction —
// PostgreSQL's SERIALIZABLEXACT. Conflict-graph state (the edge maps,
// watch maps, and lifecycle flags below) follows the edge-lock protocol
// documented in partition.go: mutations hold Manager.mu AND the owning
// transaction's edgeMu; reads hold either. Lock bookkeeping is guarded
// by lockMu; the atomic fields are noted below.
type Xact struct {
	// XID is the MVCC transaction ID.
	XID mvcc.TxID
	// SnapshotSeq is the commit-sequence counter value when the
	// transaction took its snapshot. Transaction T committed before
	// this snapshot iff T.CommitSeq <= SnapshotSeq. It is assigned
	// during Begin and immutable afterwards; code that can observe a
	// transaction mid-Begin (the epoch reclaimer) must use
	// snapshotBound instead.
	SnapshotSeq mvcc.SeqNo
	// snapshotBound is a monotone lower bound on SnapshotSeq, published
	// atomically before the transaction is registered and refined to
	// the exact value once the snapshot is taken. It is the
	// transaction's pinned reclamation epoch (registry.go).
	snapshotBound atomic.Uint64
	// CommitSeq is assigned at commit; zero while running. Written
	// under edgeMu (markCommittedLocked).
	CommitSeq mvcc.SeqNo

	declaredRO bool
	deferrable bool
	wrote      bool
	committed  bool
	prepared   bool
	aborted    bool
	// doomed marks the transaction as chosen for abort; its next
	// operation or its commit will fail with ErrSerializationFailure.
	// It is set only under the Manager's mutex but read atomically by
	// the mutex-free read path; the pre-commit check, which runs under
	// the mutex (or the edge lock on the conflict-free fast path), is
	// the authoritative observation.
	doomed atomic.Bool
	// safe marks a read-only transaction running on a safe snapshot:
	// it takes no SIREAD locks and cannot abort (§4.2). It is atomic
	// so the engine's hot paths can check it without the SSI mutex.
	safe atomic.Bool
	// partiallyReleased is set when a read-only transaction became
	// safe mid-run and dropped its locks and conflicts.
	partiallyReleased bool

	// edgeMu is the transaction's edge lock. It guards the maps and
	// flags above and below against the conflict-free commit fast path,
	// which runs without Manager.mu: every mutation of this
	// transaction's edge/watch maps or its committed/aborted/prepared
	// flags holds both Manager.mu and edgeMu, while the fast path's
	// eligibility check and commit transition hold only edgeMu. A
	// thread not holding Manager.mu may hold at most ONE edge lock (its
	// own); holding several requires Manager.mu (see partition.go).
	edgeMu sync.Mutex //ssi:lock level=30 name=core.edge multi=under:core.ssi
	// inConflicts holds transactions R with an rw-antidependency
	// R → this (R read an object this transaction wrote).
	inConflicts map[*Xact]struct{}
	// outConflicts holds transactions W with this → W (this
	// transaction read an object W wrote).
	outConflicts map[*Xact]struct{}
	// summaryConflictIn records that some summarized committed
	// transaction had an rw-conflict in to this one; the identity no
	// longer matters (§6.2).
	summaryConflictIn bool
	// earliestOutConflictCommit is the commit sequence number of the
	// earliest-committing transaction this one has a conflict out to,
	// including summarized and cleaned-up ones (§6.1). Zero if no out
	// conflict has committed.
	earliestOutConflictCommit mvcc.SeqNo

	// lockMu guards the transaction's own lock bookkeeping below. It
	// nests inside Manager.mu and outside the partition mutexes (see
	// partition.go for the full ordering rule).
	lockMu sync.Mutex //ssi:lock level=40 name=core.txnLocks
	// locks is this transaction's SIREAD lock set.
	locks map[Target]struct{}
	// tuplesOnPage counts tuple locks per (rel, page) for promotion.
	tuplesOnPage map[Target]int
	// pagesOnRel counts page locks per relation for promotion.
	pagesOnRel map[string]int
	// lockingDone bars further lock acquisition: set when the
	// transaction finishes, is summarized, or moves onto a safe
	// snapshot. Structural propagation (PageSplit) bypasses it, since
	// committed transactions' existing locks must still follow splits.
	lockingDone bool

	// possibleUnsafe, on a read-only transaction, is the set of
	// concurrent read/write transactions whose fate determines whether
	// this snapshot is safe (§4.2). Guarded like the edge maps.
	possibleUnsafe map[*Xact]struct{}
	// watchingROs, on a read/write transaction, is the set of
	// read-only transactions that listed it in possibleUnsafe.
	// Guarded like the edge maps.
	watchingROs map[*Xact]struct{}
	// safeCh is closed once the safe/unsafe verdict for a read-only
	// transaction's snapshot is known.
	safeCh chan struct{}
	// unsafe is the verdict (valid once safeCh is closed).
	unsafe bool
}

// ReadOnly reports whether the transaction is known read-only: either
// declared so, or finished without writing (§4.1's definition).
func (x *Xact) ReadOnly() bool {
	return x.declaredRO || ((x.committed || x.aborted) && !x.wrote)
}

// Doomed reports whether the transaction has been chosen as an abort
// victim. Exposed for tests.
func (x *Xact) Doomed() bool { return x.doomed.Load() }

// Safe reports whether the transaction is running on a safe snapshot.
func (x *Xact) Safe() bool { return x.safe.Load() }

// markCommittedLocked flips the transaction to committed with the given
// sequence number. Caller holds x.edgeMu (the flags are read under edge
// locks by conflict flaggers racing the commit fast path).
func (x *Xact) markCommittedLocked(seq mvcc.SeqNo) {
	x.committed = true
	x.prepared = false
	x.CommitSeq = seq
}

// Manager is the SSI state machine shared by all serializable
// transactions of one database.
type Manager struct {
	// mu is the conflict-graph mutex: it guards rw-antidependency
	// flagging, dangerous-structure traversal, the pre-commit check of
	// edge-bearing transactions, read-only safety registration and
	// resolution, the summary table, and stats. Transaction lifecycle
	// is NOT globally serialized here any more: Begin uses the sharded
	// registry below, and conflict-free commits use only their own
	// Xact.edgeMu. The SIREAD lock table lives in the hash partitions.
	mu   sync.Mutex //ssi:lock level=20 name=core.ssi
	cfg  Config
	mvcc *mvcc.Manager

	// parts is the partitioned SIREAD lock table (see partition.go);
	// partMask selects a shard from a target hash (len(parts) is a
	// power of two).
	parts    []lockPartition
	partMask uint64

	// xshards is the sharded active-transaction registry (registry.go);
	// xshardMask selects a shard from an xid. activeCount mirrors the
	// total active-set size so lifecycle paths can detect quiescence
	// without a shard scan.
	xshards     []xactShard
	xshardMask  uint64
	activeCount atomic.Int64

	// roSweepValid records that the §6.1 only-read-only-transactions
	// sweep has already run and no read/write transaction has begun
	// or committed since. Atomic: cleared by the unfenced Begin path.
	roSweepValid atomic.Bool

	// retireMu guards retired, the queue of committed transactions
	// awaiting epoch reclamation (reclaim.go), sorted by CommitSeq.
	retireMu sync.Mutex //ssi:lock level=30 name=core.retire
	retired  []*Xact

	// oldCommitted is the dummy transaction that absorbs summarized
	// transactions' SIREAD locks (§6.2). The per-target latest commit
	// seq of absorbed holders lives in each partition's dummySeqs.
	oldCommitted *Xact
	// summary maps a summarized committed transaction's xid to the
	// commit sequence number of the earliest transaction it had a
	// conflict out to (zero if none) — the "single 64-bit integer per
	// transaction" table of §6.2. Guarded by mu.
	summary map[mvcc.TxID]mvcc.SeqNo

	// rec is the background reclaimer's bookkeeping (reclaim.go).
	rec reclaimer

	// stats holds the counters maintained under mu; the lock-path
	// counters below are atomics because the lock path does not take
	// mu. Stats() assembles the full picture.
	stats              Stats
	locksAcquired      atomic.Int64
	locksCurrent       atomic.Int64
	locksPeak          atomic.Int64
	tuplePromotions    atomic.Int64
	pagePromotions     atomic.Int64
	capacityPromotions atomic.Int64
}

// NewManager returns an SSI manager layered over the given MVCC manager.
func NewManager(m *mvcc.Manager, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	mgr := &Manager{
		cfg:        cfg,
		mvcc:       m,
		parts:      newLockPartitions(cfg.Partitions),
		partMask:   uint64(cfg.Partitions - 1),
		xshards:    newXactShards(cfg.Partitions),
		xshardMask: uint64(cfg.Partitions - 1),
		summary:    make(map[mvcc.TxID]mvcc.SeqNo),
	}
	mgr.oldCommitted = &Xact{committed: true}
	return mgr
}

// Stats returns a snapshot of the cumulative counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	st := m.stats
	m.mu.Unlock()
	st.LocksAcquired = m.locksAcquired.Load()
	st.LocksCurrent = m.locksCurrent.Load()
	st.LocksPeak = m.locksPeak.Load()
	if st.LocksPeak < st.LocksCurrent {
		// The peak CAS trails the gauge increment; keep the
		// gauge ≤ peak invariant in the snapshot.
		st.LocksPeak = st.LocksCurrent
	}
	st.TuplePromotions = m.tuplePromotions.Load()
	st.PagePromotions = m.pagePromotions.Load()
	st.CapacityPromotions = m.capacityPromotions.Load()
	return st
}

// LockCount returns the number of SIREAD lock (target, holder) pairs
// currently in the table, including the dummy transaction's. It counts
// the table itself rather than reporting the LocksCurrent gauge, so
// counter drift cannot go unnoticed (tests assert the two agree).
func (m *Manager) LockCount() int {
	n := 0
	for i := range m.parts {
		p := &m.parts[i]
		p.mu.Lock()
		for _, holders := range p.locks {
			n += len(holders)
		}
		p.mu.Unlock()
	}
	return n
}

// SummaryTableSize returns the number of summarized-transaction entries.
func (m *Manager) SummaryTableSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.summary)
}

// beginHook invokes the OnBegin interleaving hook, if configured.
func (m *Manager) beginHook(xid mvcc.TxID) {
	if h := m.cfg.OnBegin; h != nil {
		h(xid)
	}
}

// preCommitHook invokes the OnPreCommit interleaving hook, if configured.
func (m *Manager) preCommitHook(xid mvcc.TxID) {
	if h := m.cfg.OnPreCommit; h != nil {
		h(xid)
	}
}

// Begin registers a serializable transaction with the given xid. snapFn
// is invoked to take the transaction's snapshot.
//
// The common (read/write or undeclared) path takes no global mutex. Its
// snapshot-ordering step makes registration atomic enough for the epoch
// reclaimer: the transaction publishes a snapshot bound (the current
// commit sequence) and registers in its registry shard BEFORE taking the
// snapshot, so at every instant the reclaimer either sees the
// transaction with a conservative epoch pin or can prove the snapshot
// will be too new to observe anything reclaimed.
//
// Declared read-only transactions (with the §4 optimizations enabled)
// take the fenced path under the conflict-graph mutex: the snapshot and
// the safety-watcher registration must be one atomic step with respect
// to read/write commits, or a commit in between could escape the §4.2
// bookkeeping. Begin records the set of concurrent read/write
// serializable transactions whose fates decide snapshot safety; if there
// are none, the snapshot is immediately safe.
func (m *Manager) Begin(xid mvcc.TxID, snapFn func() *mvcc.Snapshot, readOnly, deferrable bool) (*Xact, *mvcc.Snapshot) {
	x := &Xact{
		XID:        xid,
		declaredRO: readOnly,
		deferrable: deferrable,
	}
	if readOnly && !m.cfg.DisableReadOnlyOpt {
		return x, m.beginReadOnly(x, snapFn)
	}

	var snap *mvcc.Snapshot
	if m.cfg.DisableLifecycleFencing {
		// Ablation: the naive order — snapshot first, registration
		// after. In the window between them the transaction pins no
		// epoch, so the reclaimer can drop committed SIREAD locks and
		// edges the new snapshot is still concurrent with (premature
		// reclamation; see the lifecycle interleaving tests).
		snap = snapFn()
		m.beginHook(xid)
		x.SnapshotSeq = snap.SeqNo
		x.snapshotBound.Store(uint64(snap.SeqNo))
		m.registerXact(x)
	} else {
		x.snapshotBound.Store(uint64(m.mvcc.CurrentSeq()))
		m.registerXact(x)
		m.beginHook(xid)
		snap = snapFn()
		x.SnapshotSeq = snap.SeqNo
		x.snapshotBound.Store(uint64(snap.SeqNo))
	}
	if !readOnly {
		m.roSweepValid.Store(false)
	} else {
		// DisableReadOnlyOpt: the verdict is always "unsafe"; there is
		// no channel to close because none was created.
		x.unsafe = true
	}
	return x, snap
}

// beginReadOnly is the fenced Begin path for declared read-only
// transactions with the §4 optimizations enabled.
func (m *Manager) beginReadOnly(x *Xact, snapFn func() *mvcc.Snapshot) *mvcc.Snapshot {
	x.safeCh = make(chan struct{})
	if m.cfg.DisableLifecycleFencing {
		// Ablation: snapshot and watcher registration in separate
		// critical sections, with the interleaving hook in the reopened
		// window. A read/write transaction committing in the window has
		// left the active set by the time the scan below runs, and the
		// ablated scan does not consult the retire queue — its fate
		// escapes the safety bookkeeping entirely.
		m.mu.Lock()
		snap := snapFn()
		x.SnapshotSeq = snap.SeqNo
		x.snapshotBound.Store(uint64(snap.SeqNo))
		m.registerXact(x)
		m.mu.Unlock()
		m.beginHook(x.XID)
		m.mu.Lock()
		m.registerROWatchesLocked(x, false)
		m.mu.Unlock()
		return snap
	}
	m.mu.Lock()
	x.snapshotBound.Store(uint64(m.mvcc.CurrentSeq()))
	m.registerXact(x)
	snap := snapFn()
	x.SnapshotSeq = snap.SeqNo
	x.snapshotBound.Store(uint64(snap.SeqNo))
	m.beginHook(x.XID)
	m.registerROWatchesLocked(x, true)
	m.mu.Unlock()
	return snap
}

// registerROWatchesLocked records, for read-only transaction x, the set
// of concurrent read/write transactions whose fates decide whether x's
// snapshot is safe (§4.2). Caller holds m.mu.
//
// Because conflict-free read/write transactions commit without m.mu,
// "concurrent and uncommitted" cannot be read off the active set alone:
// a transaction that committed after x's snapshot may already have left
// it. Commits retire into the queue BEFORE deactivating (reclaim.go),
// and reclamation and summarization require m.mu — so scanning the
// active set and then the retire queue, all under m.mu, sees every
// read/write transaction whose commit sequence postdates x's snapshot.
// Candidates found already committed are evaluated inline with the same
// rule finishCommitLocked applies when a watched transaction commits.
// includeRetired is false only under the DisableLifecycleFencing
// ablation, which deliberately skips the retire-queue scan.
func (m *Manager) registerROWatchesLocked(x *Xact, includeRetired bool) {
	cands := m.activeXacts()
	if includeRetired {
		// Only commits that postdate x's snapshot can decide its
		// safety; the queue is sorted by CommitSeq, so scan just that
		// suffix instead of up to MaxCommittedXacts entries.
		m.retireMu.Lock()
		i := sort.Search(len(m.retired), func(i int) bool {
			return m.retired[i].CommitSeq > x.SnapshotSeq
		})
		cands = append(cands, m.retired[i:]...)
		m.retireMu.Unlock()
	}
	seen := make(map[*Xact]struct{}, len(cands))
	unsafe := false
	for _, c := range cands {
		if unsafe {
			// Verdict already decided; registering more watchers would
			// only be undone by markUnsafeLocked below.
			break
		}
		if c == x || c.declaredRO {
			continue
		}
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		c.edgeMu.Lock()
		switch {
		case c.aborted:
			// Fate known, irrelevant.
		case c.committed:
			// c committed between x's snapshot and this scan (or is
			// awaiting reclamation from before — then CommitSeq <=
			// SnapshotSeq filters it): apply the §4.2 rule directly.
			if c.CommitSeq > x.SnapshotSeq && c.wrote &&
				c.earliestOutConflictCommit != 0 && c.earliestOutConflictCommit <= x.SnapshotSeq {
				unsafe = true
			}
		default:
			if x.possibleUnsafe == nil {
				x.possibleUnsafe = make(map[*Xact]struct{})
			}
			x.possibleUnsafe[c] = struct{}{}
			if c.watchingROs == nil {
				c.watchingROs = make(map[*Xact]struct{})
			}
			c.watchingROs[x] = struct{}{}
		}
		c.edgeMu.Unlock()
	}
	if unsafe {
		m.markUnsafeLocked(x)
		return
	}
	if len(x.possibleUnsafe) == 0 {
		m.markSafeLocked(x)
		m.stats.ImmediatelySafe++
	}
}

// markSafeLocked transitions a read-only transaction onto a safe
// snapshot: it drops all SSI state and runs as plain snapshot isolation
// from here on. Caller holds m.mu but no edge locks.
func (m *Manager) markSafeLocked(x *Xact) {
	if x.safe.Load() {
		return
	}
	x.safe.Store(true)
	x.unsafe = false
	m.stats.SafeSnapshots++
	// Release SIREAD locks and conflict edges: a transaction on a safe
	// snapshot can never be part of a dangerous structure.
	m.releaseLocksLocked(x)
	for w := range x.outConflicts {
		w.edgeMu.Lock()
		delete(w.inConflicts, x)
		w.edgeMu.Unlock()
	}
	x.edgeMu.Lock()
	x.outConflicts = nil
	x.partiallyReleased = true
	x.edgeMu.Unlock()
	if x.safeCh != nil {
		close(x.safeCh)
	}
}

// markUnsafeLocked records the "unsafe snapshot" verdict. Caller holds
// m.mu but no edge locks.
func (m *Manager) markUnsafeLocked(x *Xact) {
	if x.safe.Load() || x.unsafe {
		return
	}
	x.unsafe = true
	// Detach from remaining watched transactions.
	for rw := range x.possibleUnsafe {
		rw.edgeMu.Lock()
		delete(rw.watchingROs, x)
		rw.edgeMu.Unlock()
	}
	x.edgeMu.Lock()
	x.possibleUnsafe = nil
	x.edgeMu.Unlock()
	if x.safeCh != nil {
		close(x.safeCh)
	}
}

// SafeVerdict blocks until the safety of x's snapshot is decided and
// returns true if the snapshot is safe. Deferrable transactions call this
// before running any query (§4.3); it is also used by tests.
func (m *Manager) SafeVerdict(x *Xact) bool {
	if x.safeCh != nil {
		<-x.safeCh
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return x.safe.Load()
}

// VerdictKnown reports whether the safety verdict for x is already
// decided, without blocking.
func (m *Manager) VerdictKnown(x *Xact) bool {
	if x.safeCh == nil {
		return true
	}
	select {
	case <-x.safeCh:
		return true
	default:
		return false
	}
}
