// Package core implements Serializable Snapshot Isolation as described in
// "Serializable Snapshot Isolation in PostgreSQL" (Ports & Grittner, VLDB
// 2012). It is the analogue of PostgreSQL's predicate.c: a lock manager
// holding only SIREAD locks at tuple / page / relation granularity, and
// per-transaction tracking of rw-antidependencies with dangerous-structure
// detection.
//
// The package provides:
//
//   - SIREAD lock acquisition with multigranularity promotion (§5.2.1);
//   - rw-antidependency flagging from both directions: write-after-read
//     via the SIREAD table, read-after-write via MVCC conflict-out data
//     supplied by the storage layer (§5.2);
//   - dangerous-structure detection with the commit-ordering optimization
//     (§3.3.1) and the read-only snapshot ordering rule (Theorem 3, §4.1);
//   - safe-retry victim selection (§5.4);
//   - safe snapshots and deferrable transactions (§4.2, §4.3);
//   - bounded memory via aggressive cleanup of committed transactions and
//     summarization into a dummy transaction plus an xid → earliest
//     out-conflict commit table (§6);
//   - two-phase commit support with conservative recovery (§7.1).
//
// Concurrency control is split in two, mirroring PostgreSQL's
// SerializableXactHashLock / PredicateLockHashPartitionLock division
// (§8 identifies the single lock as the contention point at high core
// counts). Transaction lifecycle and the rw-antidependency graph are
// guarded by the single Manager.mu; the SIREAD lock table is sharded
// into Config.Partitions hash partitions, each with its own mutex, so
// the per-read lock acquisition path never takes the global mutex. The
// full lock-ordering rule (Manager.mu → Xact.lockMu → partition mutex,
// outer to inner, never interleaved) and the promotion invariants that
// keep multigranularity locking correct across partitions are
// documented in partition.go.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pgssi/internal/mvcc"
)

// ErrSerializationFailure is returned when a transaction must abort to
// preserve serializability (a dangerous structure of two adjacent
// rw-antidependencies was detected and this transaction was chosen as the
// victim). The transaction can be retried; the safe-retry rules of §5.4
// guarantee an immediate retry will not fail with the same conflict,
// except in the two-phase-commit case described in §7.1.
var ErrSerializationFailure = errors.New("could not serialize access due to read/write dependencies among transactions")

// Level is a predicate-lock granularity.
type Level int8

// Granularities, coarsest first. Writers check each level in this order
// (coarsest to finest), which §5.2.1 notes is required for correctness
// with concurrent granularity promotion.
const (
	LevelRelation Level = iota
	LevelPage
	LevelTuple
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelRelation:
		return "relation"
	case LevelPage:
		return "page"
	case LevelTuple:
		return "tuple"
	default:
		return fmt.Sprintf("Level(%d)", int8(l))
	}
}

// Target names a lockable object: a relation, a page of a relation, or a
// tuple (identified by key, qualified by the page holding the version
// that was read). Index gap locks are page-level targets whose Rel is the
// index name.
type Target struct {
	Rel   string
	Level Level
	Page  int64
	Key   string
}

// String implements fmt.Stringer.
func (t Target) String() string {
	switch t.Level {
	case LevelRelation:
		return fmt.Sprintf("%s", t.Rel)
	case LevelPage:
		return fmt.Sprintf("%s/p%d", t.Rel, t.Page)
	default:
		return fmt.Sprintf("%s/p%d/%q", t.Rel, t.Page, t.Key)
	}
}

// RelationTarget returns the relation-granularity target for rel.
func RelationTarget(rel string) Target {
	return Target{Rel: rel, Level: LevelRelation}
}

// PageTarget returns the page-granularity target for (rel, page).
func PageTarget(rel string, page int64) Target {
	return Target{Rel: rel, Level: LevelPage, Page: page}
}

// TupleTarget returns the tuple-granularity target for key on (rel, page).
func TupleTarget(rel string, page int64, key string) Target {
	return Target{Rel: rel, Level: LevelTuple, Page: page, Key: key}
}

// Config tunes the SSI manager. The zero value is usable; unset limits
// get generous defaults.
type Config struct {
	// MaxPredicateLocks bounds the SIREAD lock table. When an
	// acquisition would exceed it, the acquiring transaction's locks on
	// the target relation are promoted to relation granularity,
	// trading precision for space (graceful degradation, §6).
	MaxPredicateLocks int
	// MaxCommittedXacts bounds the number of committed transactions
	// tracked in full. Beyond it, the oldest committed transaction is
	// summarized into the dummy OldCommitted transaction (§6.2).
	MaxCommittedXacts int
	// PromoteTupleToPage is the number of tuple locks on one page a
	// transaction may hold before they are consolidated into a single
	// page lock.
	PromoteTupleToPage int
	// PromotePageToRel is the number of page locks on one relation a
	// transaction may hold before promotion to a relation lock.
	PromotePageToRel int
	// DisableCommitOrderingOpt turns off the commit-ordering
	// optimization of §3.3.1 (ablation A1): every dangerous structure
	// aborts, regardless of commit order.
	DisableCommitOrderingOpt bool
	// DisableReadOnlyOpt turns off the §4 read-only optimizations
	// (ablation A2, the "SSI no r/o opt" series in Figures 4 and 5):
	// no snapshot-ordering filter, no safe snapshots.
	DisableReadOnlyOpt bool
	// Partitions is the number of hash partitions the SIREAD lock
	// table is divided into, the analogue of PostgreSQL's
	// NUM_PREDICATELOCK_PARTITIONS. Rounded up to a power of two;
	// defaults to 16. Set to 1 to reproduce the single-mutex table.
	Partitions int
}

func (c Config) withDefaults() Config {
	if c.MaxPredicateLocks <= 0 {
		c.MaxPredicateLocks = 1 << 20
	}
	if c.MaxCommittedXacts <= 0 {
		c.MaxCommittedXacts = 1 << 14
	}
	if c.PromoteTupleToPage <= 0 {
		c.PromoteTupleToPage = 16
	}
	if c.PromotePageToRel <= 0 {
		c.PromotePageToRel = 32
	}
	if c.Partitions <= 0 {
		c.Partitions = 16
	}
	// Round up to a power of two so partition selection is a mask.
	n := 1
	for n < c.Partitions {
		n <<= 1
	}
	c.Partitions = n
	return c
}

// Stats are cumulative counters exposed for benchmarks and tests.
type Stats struct {
	LocksAcquired      int64
	LocksCurrent       int64
	LocksPeak          int64
	TuplePromotions    int64
	PagePromotions     int64
	CapacityPromotions int64
	ConflictsFlagged   int64
	DangerousAborts    int64
	SelfAborts         int64
	VictimAborts       int64
	Summarized         int64
	SafeSnapshots      int64
	ImmediatelySafe    int64
	CleanedXacts       int64
}

// Xact is the SSI bookkeeping for one serializable transaction —
// PostgreSQL's SERIALIZABLEXACT. Fields are protected by the Manager's
// mutex, except the lock bookkeeping guarded by lockMu and the atomic
// flags noted below.
type Xact struct {
	// XID is the MVCC transaction ID.
	XID mvcc.TxID
	// SnapshotSeq is the commit-sequence counter value when the
	// transaction took its snapshot. Transaction T committed before
	// this snapshot iff T.CommitSeq <= SnapshotSeq.
	SnapshotSeq mvcc.SeqNo
	// CommitSeq is assigned at commit; zero while running.
	CommitSeq mvcc.SeqNo

	declaredRO bool
	deferrable bool
	wrote      bool
	committed  bool
	prepared   bool
	aborted    bool
	// doomed marks the transaction as chosen for abort; its next
	// operation or its commit will fail with ErrSerializationFailure.
	// It is set only under the Manager's mutex but read atomically by
	// the mutex-free read path; the pre-commit check, which runs under
	// the mutex, is the authoritative observation.
	doomed atomic.Bool
	// safe marks a read-only transaction running on a safe snapshot:
	// it takes no SIREAD locks and cannot abort (§4.2). It is atomic
	// so the engine's hot paths can check it without the SSI mutex.
	safe atomic.Bool
	// partiallyReleased is set when a read-only transaction became
	// safe mid-run and dropped its locks and conflicts.
	partiallyReleased bool

	// inConflicts holds transactions R with an rw-antidependency
	// R → this (R read an object this transaction wrote).
	inConflicts map[*Xact]struct{}
	// outConflicts holds transactions W with this → W (this
	// transaction read an object W wrote).
	outConflicts map[*Xact]struct{}
	// summaryConflictIn records that some summarized committed
	// transaction had an rw-conflict in to this one; the identity no
	// longer matters (§6.2).
	summaryConflictIn bool
	// earliestOutConflictCommit is the commit sequence number of the
	// earliest-committing transaction this one has a conflict out to,
	// including summarized and cleaned-up ones (§6.1). Zero if no out
	// conflict has committed.
	earliestOutConflictCommit mvcc.SeqNo

	// lockMu guards the transaction's own lock bookkeeping below. It
	// nests inside Manager.mu and outside the partition mutexes (see
	// partition.go for the full ordering rule).
	lockMu sync.Mutex
	// locks is this transaction's SIREAD lock set.
	locks map[Target]struct{}
	// tuplesOnPage counts tuple locks per (rel, page) for promotion.
	tuplesOnPage map[Target]int
	// pagesOnRel counts page locks per relation for promotion.
	pagesOnRel map[string]int
	// lockingDone bars further lock acquisition: set when the
	// transaction finishes, is summarized, or moves onto a safe
	// snapshot. Structural propagation (PageSplit) bypasses it, since
	// committed transactions' existing locks must still follow splits.
	lockingDone bool

	// possibleUnsafe, on a read-only transaction, is the set of
	// concurrent read/write transactions whose fate determines whether
	// this snapshot is safe (§4.2).
	possibleUnsafe map[*Xact]struct{}
	// watchingROs, on a read/write transaction, is the set of
	// read-only transactions that listed it in possibleUnsafe.
	watchingROs map[*Xact]struct{}
	// safeCh is closed once the safe/unsafe verdict for a read-only
	// transaction's snapshot is known.
	safeCh chan struct{}
	// unsafe is the verdict (valid once safeCh is closed).
	unsafe bool
}

// ReadOnly reports whether the transaction is known read-only: either
// declared so, or finished without writing (§4.1's definition).
func (x *Xact) ReadOnly() bool {
	return x.declaredRO || ((x.committed || x.aborted) && !x.wrote)
}

// Doomed reports whether the transaction has been chosen as an abort
// victim. Exposed for tests.
func (x *Xact) Doomed() bool { return x.doomed.Load() }

// Safe reports whether the transaction is running on a safe snapshot.
func (x *Xact) Safe() bool { return x.safe.Load() }

// Manager is the SSI state machine shared by all serializable
// transactions of one database.
type Manager struct {
	// mu guards transaction lifecycle and rw-antidependency state: the
	// xact maps, the conflict graph, the committed FIFO, the summary
	// table, and safe-snapshot bookkeeping. The SIREAD lock table is
	// NOT under mu; it lives in the hash partitions below.
	mu   sync.Mutex
	cfg  Config
	mvcc *mvcc.Manager

	// parts is the partitioned SIREAD lock table (see partition.go);
	// partMask selects a shard from a target hash (len(parts) is a
	// power of two).
	parts    []lockPartition
	partMask uint64

	// xacts maps xid → tracked transaction (active, prepared, or
	// committed-and-still-tracked).
	xacts map[mvcc.TxID]*Xact
	// active is the subset of xacts that has neither committed nor
	// aborted. Cleanup and read-only safety registration iterate this
	// set, which stays small, instead of the full tracked map.
	active map[*Xact]struct{}
	// roSweepValid records that the §6.1 only-read-only-transactions
	// sweep has already run and no read/write transaction has begun
	// or committed since.
	roSweepValid bool
	// committed is the FIFO of committed transactions still tracked in
	// full, oldest first.
	committed []*Xact
	// oldCommitted is the dummy transaction that absorbs summarized
	// transactions' SIREAD locks (§6.2). The per-target latest commit
	// seq of absorbed holders lives in each partition's dummySeqs.
	oldCommitted *Xact
	// summary maps a summarized committed transaction's xid to the
	// commit sequence number of the earliest transaction it had a
	// conflict out to (zero if none) — the "single 64-bit integer per
	// transaction" table of §6.2.
	summary map[mvcc.TxID]mvcc.SeqNo

	// stats holds the counters maintained under mu; the lock-path
	// counters below are atomics because the lock path does not take
	// mu. Stats() assembles the full picture.
	stats              Stats
	locksAcquired      atomic.Int64
	locksCurrent       atomic.Int64
	locksPeak          atomic.Int64
	tuplePromotions    atomic.Int64
	pagePromotions     atomic.Int64
	capacityPromotions atomic.Int64
}

// NewManager returns an SSI manager layered over the given MVCC manager.
func NewManager(m *mvcc.Manager, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	mgr := &Manager{
		cfg:      cfg,
		mvcc:     m,
		parts:    newLockPartitions(cfg.Partitions),
		partMask: uint64(cfg.Partitions - 1),
		xacts:    make(map[mvcc.TxID]*Xact),
		active:   make(map[*Xact]struct{}),
		summary:  make(map[mvcc.TxID]mvcc.SeqNo),
	}
	mgr.oldCommitted = &Xact{committed: true}
	return mgr
}

// Stats returns a snapshot of the cumulative counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	st := m.stats
	m.mu.Unlock()
	st.LocksAcquired = m.locksAcquired.Load()
	st.LocksCurrent = m.locksCurrent.Load()
	st.LocksPeak = m.locksPeak.Load()
	if st.LocksPeak < st.LocksCurrent {
		// The peak CAS trails the gauge increment; keep the
		// gauge ≤ peak invariant in the snapshot.
		st.LocksPeak = st.LocksCurrent
	}
	st.TuplePromotions = m.tuplePromotions.Load()
	st.PagePromotions = m.pagePromotions.Load()
	st.CapacityPromotions = m.capacityPromotions.Load()
	return st
}

// TrackedXacts returns the number of transactions currently tracked
// (active + committed-in-full). Exposed for memory-bound tests.
func (m *Manager) TrackedXacts() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.xacts)
}

// LockCount returns the number of SIREAD lock (target, holder) pairs
// currently in the table, including the dummy transaction's. It counts
// the table itself rather than reporting the LocksCurrent gauge, so
// counter drift cannot go unnoticed (tests assert the two agree).
func (m *Manager) LockCount() int {
	n := 0
	for i := range m.parts {
		p := &m.parts[i]
		p.mu.Lock()
		for _, holders := range p.locks {
			n += len(holders)
		}
		p.mu.Unlock()
	}
	return n
}

// SummaryTableSize returns the number of summarized-transaction entries.
func (m *Manager) SummaryTableSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.summary)
}

// Begin registers a serializable transaction with the given xid. snapFn
// is invoked under the SSI mutex to take the transaction's snapshot, so
// registration and snapshot are atomic with respect to serializable
// commits (which also run under the mutex): the read-only safety
// bookkeeping cannot miss a concurrent read/write transaction that
// commits in between.
//
// For read-only transactions Begin records the set of concurrent
// read/write serializable transactions whose fates decide snapshot
// safety; if there are none, the snapshot is immediately safe (§4.2).
func (m *Manager) Begin(xid mvcc.TxID, snapFn func() *mvcc.Snapshot, readOnly, deferrable bool) (*Xact, *mvcc.Snapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := snapFn()
	// Conflict and lock maps are allocated lazily: most transactions
	// acquire only a handful of locks and no conflicts, and safe
	// read-only transactions none at all.
	x := &Xact{
		XID:         xid,
		SnapshotSeq: snap.SeqNo,
		declaredRO:  readOnly,
		deferrable:  deferrable,
	}
	m.xacts[xid] = x
	m.active[x] = struct{}{}
	if !readOnly {
		m.roSweepValid = false
	}
	if readOnly && !m.cfg.DisableReadOnlyOpt {
		x.safeCh = make(chan struct{})
		for other := range m.active {
			if other == x || other.declaredRO {
				continue
			}
			if x.possibleUnsafe == nil {
				x.possibleUnsafe = make(map[*Xact]struct{})
			}
			x.possibleUnsafe[other] = struct{}{}
			if other.watchingROs == nil {
				other.watchingROs = make(map[*Xact]struct{})
			}
			other.watchingROs[x] = struct{}{}
		}
		if len(x.possibleUnsafe) == 0 {
			m.markSafeLocked(x)
			m.stats.ImmediatelySafe++
		}
	} else if readOnly && m.cfg.DisableReadOnlyOpt {
		// With the optimization disabled the verdict is always
		// "unsafe"; there is no channel to close because none was
		// created.
		x.unsafe = true
	}
	return x, snap
}

// markSafeLocked transitions a read-only transaction onto a safe
// snapshot: it drops all SSI state and runs as plain snapshot isolation
// from here on. Caller holds m.mu.
func (m *Manager) markSafeLocked(x *Xact) {
	if x.safe.Load() {
		return
	}
	x.safe.Store(true)
	x.unsafe = false
	m.stats.SafeSnapshots++
	// Release SIREAD locks and conflict edges: a transaction on a safe
	// snapshot can never be part of a dangerous structure.
	m.releaseLocksLocked(x)
	for w := range x.outConflicts {
		delete(w.inConflicts, x)
	}
	x.outConflicts = nil
	x.partiallyReleased = true
	if x.safeCh != nil {
		close(x.safeCh)
	}
}

// markUnsafeLocked records the "unsafe snapshot" verdict. Caller holds m.mu.
func (m *Manager) markUnsafeLocked(x *Xact) {
	if x.safe.Load() || x.unsafe {
		return
	}
	x.unsafe = true
	// Detach from remaining watched transactions.
	for rw := range x.possibleUnsafe {
		delete(rw.watchingROs, x)
	}
	x.possibleUnsafe = nil
	if x.safeCh != nil {
		close(x.safeCh)
	}
}

// SafeVerdict blocks until the safety of x's snapshot is decided and
// returns true if the snapshot is safe. Deferrable transactions call this
// before running any query (§4.3); it is also used by tests.
func (m *Manager) SafeVerdict(x *Xact) bool {
	if x.safeCh != nil {
		<-x.safeCh
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return x.safe.Load()
}

// VerdictKnown reports whether the safety verdict for x is already
// decided, without blocking.
func (m *Manager) VerdictKnown(x *Xact) bool {
	if x.safeCh == nil {
		return true
	}
	select {
	case <-x.safeCh:
		return true
	default:
		return false
	}
}
