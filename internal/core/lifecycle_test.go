package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"pgssi/internal/mvcc"
)

// Deterministic interleaving tests for Begin's snapshot-ordering step —
// the epoch pin that keeps the background reclaimer from dropping
// committed state a starting transaction is still concurrent with. The
// OnBegin hook parks a transaction inside Begin; with fencing the
// transaction is already registered with a conservative snapshot bound
// when it parks, so a reclaim pass in the window must keep every
// committed transaction it could be concurrent with. With
// DisableLifecycleFencing the naive order (snapshot first, registration
// last) is restored and the same schedule reclaims the committed
// write-skew partner prematurely: both rw-antidependency edges are
// lost, both transactions commit, and the cycle is admitted.

// beginPauser parks Begin of a chosen xid in the OnBegin hook.
type beginPauser struct {
	xid      atomic.Uint64
	inWindow chan struct{}
	release  chan struct{}
}

func newBeginPauser() *beginPauser {
	return &beginPauser{inWindow: make(chan struct{}), release: make(chan struct{})}
}

func (p *beginPauser) hook(xid mvcc.TxID) {
	if p.xid.CompareAndSwap(uint64(xid), 0) {
		close(p.inWindow)
		<-p.release
	}
}

// driveBeginWindowReclaim runs the schedule common to both tests below:
//
//	C: read k1, write k2, commit        [entirely inside X's window]
//	   … reclaim pass …                 [ditto]
//	X: begin … [window] … read k2 (MVCC conflict-out names C), write k1
//
// X's snapshot predates C's commit on the ablated path (snapshot taken
// before the park) and is taken under a registered bound on the fenced
// path, so in both modes the interesting question is what the reclaim
// pass inside the window did to C. Returns X, C, and whether C's SSI
// state was still present after the in-window reclaim pass.
func driveBeginWindowReclaim(t *testing.T, h *harness, p *beginPauser) (x, c *Xact, cSurvived bool) {
	t.Helper()
	xid := h.mv.Begin()
	p.xid.Store(uint64(xid))
	begun := make(chan struct{})
	go func() {
		defer close(begun)
		x, _ = h.mgr.Begin(xid, h.mv.TakeSnapshot, false, false)
	}()
	<-p.inWindow

	// C runs entirely inside X's begin window: the canonical write-skew
	// partner (reads k1, writes k2).
	c = h.begin(false)
	if err := h.read(c, "t", 1, "k1"); err != nil {
		t.Fatal(err)
	}
	if err := h.write(c, "t", 2, "k2"); err != nil {
		t.Fatal(err)
	}
	if err := h.commit(c); err != nil {
		t.Fatal(err)
	}
	// The reclaim pass races X's parked Begin.
	h.mgr.ReclaimNow()
	cSurvived = h.mgr.HoldsLock(c, TupleTarget("t", 1, "k1"))
	if _, tracked := h.mgr.lookupXact(c.XID); tracked != cSurvived {
		t.Fatalf("registry and lock table disagree about C: tracked=%v, lock held=%v", tracked, cSurvived)
	}

	close(p.release)
	<-begun
	return x, c, cSurvived
}

func TestLifecycleBeginEpochPinsReclaim(t *testing.T) {
	p := newBeginPauser()
	h := newHarness(t, Config{OnBegin: p.hook})
	seedKeys(t, h)

	x, c, cSurvived := driveBeginWindowReclaim(t, h, p)
	// Fenced Begin registered X with a snapshot bound before parking:
	// the bound predates C's commit, so the reclaimer must keep C.
	if !cSurvived {
		t.Fatal("reclaim pass dropped a committed transaction while a registered Begin was parked before its snapshot")
	}
	// The fenced order takes X's snapshot after the park, so X is NOT
	// concurrent with C (its snapshot sees C's commit) and a later
	// reclaim pass may now drop C — the pin is released, not leaked.
	if x.SnapshotSeq < c.CommitSeq {
		t.Fatalf("fenced Begin's snapshot (%d) must postdate the in-window commit (%d)", x.SnapshotSeq, c.CommitSeq)
	}
	h.abort(x)
	h.mgr.ReclaimNow()
	if n := h.mgr.TrackedXacts(); n != 0 {
		t.Fatalf("epoch pin leaked: %d transactions still tracked after quiesce", n)
	}
}

func TestLifecycleBeginWindowPrematureReclaim(t *testing.T) {
	p := newBeginPauser()
	h := newHarness(t, Config{OnBegin: p.hook, DisableLifecycleFencing: true})
	seedKeys(t, h)

	x, c, cSurvived := driveBeginWindowReclaim(t, h, p)
	// The ablated Begin took its snapshot before parking and registered
	// nothing: the reclaim pass saw no active snapshot and dropped C —
	// premature reclamation, X's snapshot is still concurrent with C.
	if cSurvived {
		t.Fatal("ablated Begin still pinned the reclaim horizon; the window did not reopen")
	}
	if x.SnapshotSeq >= c.CommitSeq {
		t.Fatalf("ablation lost the race shape: X's snapshot (%d) should predate C's commit (%d)", x.SnapshotSeq, c.CommitSeq)
	}
	// X completes the write-skew cycle: its read of k2 sees C's write
	// as an MVCC conflict-out, and its write of k1 probes C's SIREAD
	// lock. Both edges land in reclaimed state and are lost, so X
	// commits — the anomaly C → X → C survives SERIALIZABLE.
	if err := h.mgr.CheckRead(x, "t", 2, "k2", []mvcc.TxID{c.XID}, false); err != nil {
		t.Fatalf("conflict-out against the reclaimed C should be silently dropped, got %v", err)
	}
	if err := h.write(x, "t", 1, "k1"); err != nil {
		t.Fatalf("write check against C's reclaimed SIREAD lock should find nothing, got %v", err)
	}
	if err := h.commit(x); err != nil {
		t.Fatalf("the ablation should let X commit and admit the write-skew cycle, got %v", err)
	}

	// Control: the identical conflict pattern against a still-tracked
	// committed transaction is caught (the edges, not the checker,
	// were lost above).
	h2 := newHarness(t, Config{})
	seedKeys(t, h2)
	x2 := h2.begin(false)
	c2 := h2.begin(false)
	if err := h2.read(c2, "t", 1, "k1"); err != nil {
		t.Fatal(err)
	}
	if err := h2.write(c2, "t", 2, "k2"); err != nil {
		t.Fatal(err)
	}
	if err := h2.commit(c2); err != nil {
		t.Fatal(err)
	}
	err := h2.mgr.CheckRead(x2, "t", 2, "k2", []mvcc.TxID{c2.XID}, false)
	if err == nil {
		err = h2.write(x2, "t", 1, "k1")
	}
	if err == nil {
		err = h2.commit(x2)
	}
	if !errors.Is(err, ErrSerializationFailure) {
		t.Fatalf("control: the same cycle with C tracked must abort X, got %v", err)
	}
}

// seedKeys gives the harness manager a committed baseline transaction so
// xids and commit seqs start above zero.
func seedKeys(t *testing.T, h *harness) {
	t.Helper()
	seed := h.begin(false)
	if err := h.write(seed, "t", 1, "seed"); err != nil {
		t.Fatal(err)
	}
	if err := h.commit(seed); err != nil {
		t.Fatal(err)
	}
	h.mgr.ReclaimNow()
}

// TestLifecycleIdleCommitDrainsReclaimer pins the quiescent-commit wake:
// a commit that leaves no transaction active must trigger a background
// reclaim on its own — without it, bursts shorter than the reclaim
// batch would retain their transactions and SIREAD locks until the next
// unrelated activity (or forever).
func TestLifecycleIdleCommitDrainsReclaimer(t *testing.T) {
	h := newHarness(t, Config{})
	x := h.begin(false)
	if err := h.read(x, "t", 1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := h.write(x, "t", 1, "b"); err != nil {
		t.Fatal(err)
	}
	if err := h.commit(x); err != nil {
		t.Fatal(err)
	}
	// Deliberately no ReclaimNow: the background pass must drain.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if h.mgr.TrackedXacts() == 0 && h.mgr.LockCount() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("background reclaimer never drained an idle manager: %d tracked, %d locks",
		h.mgr.TrackedXacts(), h.mgr.LockCount())
}
