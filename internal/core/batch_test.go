package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync"
	"testing"
)

// Tests for the page-grained batch acquisition path
// (AcquireTupleLockBatch), the PageSplit promotion-threshold bugfix,
// and the finished-transaction lock-accounting invariant the PR 5
// audit documented in partition.go.

func batchAcquire(t *testing.T, h *harness, x *Xact, rel string, page int64, keys ...string) bool {
	t.Helper()
	covered, err := h.mgr.AcquireTupleLockBatch(x, rel, page, keys)
	if err != nil {
		t.Fatalf("AcquireTupleLockBatch: %v", err)
	}
	return covered
}

func TestAcquireTupleLockBatchBasics(t *testing.T) {
	h := newHarness(t, Config{})
	x := h.begin(false)
	if covered := batchAcquire(t, h, x, "t", 1, "a", "b", "c"); covered {
		t.Fatal("no relation lock exists yet")
	}
	for _, k := range []string{"a", "b", "c"} {
		if !h.mgr.HoldsLock(x, TupleTarget("t", 1, k)) {
			t.Fatalf("missing tuple lock on %q", k)
		}
	}
	if got, want := h.mgr.LockCount(), 3; got != want {
		t.Fatalf("LockCount = %d, want %d", got, want)
	}
	// Re-batching the same keys (plus one new) inserts only the new one.
	batchAcquire(t, h, x, "t", 1, "a", "b", "c", "d")
	if got, want := h.mgr.LockCount(), 4; got != want {
		t.Fatalf("LockCount after dup batch = %d, want %d", got, want)
	}
	if gauge := int(h.mgr.Stats().LocksCurrent); gauge != 4 {
		t.Fatalf("LocksCurrent gauge = %d, want 4", gauge)
	}
	if err := h.commit(x); err != nil {
		t.Fatal(err)
	}
	assertQuiesced(t, h)
}

func TestAcquireTupleLockBatchCoveredByCoarserLock(t *testing.T) {
	h := newHarness(t, Config{})
	x := h.begin(false)
	h.mgr.AcquirePageLock(x, "t", 1)
	batchAcquire(t, h, x, "t", 1, "a", "b")
	if h.mgr.HoldsLock(x, TupleTarget("t", 1, "a")) {
		t.Fatal("page lock must cover the batch; no tuple locks expected")
	}
	h.mgr.AcquireRelationLock(x, "t")
	if covered := batchAcquire(t, h, x, "t", 2, "c"); !covered {
		t.Fatal("relation lock must report the batch covered")
	}
	if h.mgr.HoldsLock(x, TupleTarget("t", 2, "c")) {
		t.Fatal("relation lock must cover the batch; no tuple locks expected")
	}
	h.abort(x)
}

func TestAcquireTupleLockBatchThresholdTakesPageLockDirectly(t *testing.T) {
	h := newHarness(t, Config{PromoteTupleToPage: 4})
	x := h.begin(false)
	keys := make([]string, 6)
	for i := range keys {
		keys[i] = strconv.Itoa(i)
	}
	batchAcquire(t, h, x, "t", 1, keys...)
	if !h.mgr.HoldsLock(x, PageTarget("t", 1)) {
		t.Fatal("batch over the tuple→page threshold must hold the page lock")
	}
	for _, k := range keys {
		if h.mgr.HoldsLock(x, TupleTarget("t", 1, k)) {
			t.Fatalf("tuple lock on %q must not survive the direct page promotion", k)
		}
	}
	if got := h.mgr.Stats().TuplePromotions; got != 1 {
		t.Fatalf("TuplePromotions = %d, want 1", got)
	}
	h.abort(x)
	assertQuiesced(t, h)
}

func TestAcquireTupleLockBatchThresholdAccumulatesAcrossBatches(t *testing.T) {
	h := newHarness(t, Config{PromoteTupleToPage: 4})
	x := h.begin(false)
	batchAcquire(t, h, x, "t", 1, "a", "b", "c")
	if h.mgr.HoldsLock(x, PageTarget("t", 1)) {
		t.Fatal("below threshold: no page lock yet")
	}
	// 3 existing + 2 new > 4: the second batch crosses the threshold.
	batchAcquire(t, h, x, "t", 1, "d", "e")
	if !h.mgr.HoldsLock(x, PageTarget("t", 1)) {
		t.Fatal("accumulated batches crossing the threshold must promote")
	}
	if h.mgr.HoldsLock(x, TupleTarget("t", 1, "a")) {
		t.Fatal("prior tuple locks must be consolidated into the page lock")
	}
	h.abort(x)
}

func TestAcquireTupleLockBatchCapacityPromotesToRelation(t *testing.T) {
	h := newHarness(t, Config{MaxPredicateLocks: 3, PromoteTupleToPage: 100})
	x := h.begin(false)
	batchAcquire(t, h, x, "t", 1, "a", "b", "c")
	if covered := batchAcquire(t, h, x, "t", 2, "d", "e"); !covered {
		t.Fatal("capacity promotion must report relation coverage")
	}
	if !h.mgr.HoldsLock(x, RelationTarget("t")) {
		t.Fatal("capacity bound must consolidate into a relation lock")
	}
	if got := h.mgr.Stats().CapacityPromotions; got != 1 {
		t.Fatalf("CapacityPromotions = %d, want 1", got)
	}
	h.abort(x)
	assertQuiesced(t, h)
}

func TestAcquireTupleLockBatchDoomedAndFinished(t *testing.T) {
	h := newHarness(t, Config{})
	x := h.begin(false)
	x.doomed.Store(true)
	if _, err := h.mgr.AcquireTupleLockBatch(x, "t", 1, []string{"a"}); !errors.Is(err, ErrSerializationFailure) {
		t.Fatalf("doomed batch = %v, want serialization failure", err)
	}
	h.abort(x)

	y := h.begin(false)
	if err := h.commit(y); err != nil {
		t.Fatal(err)
	}
	// A finished transaction's lock set must not grow (lockingDone).
	if _, err := h.mgr.AcquireTupleLockBatch(y, "t", 1, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if h.mgr.HoldsLock(y, TupleTarget("t", 1, "a")) {
		t.Fatal("committed transaction acquired a fresh lock through the batch path")
	}
	assertQuiesced(t, h)
}

// TestBatchRegisteredReadsDetectWriteSkew replays the canonical write
// skew with both readers registering through the batch path: the
// batched SIREAD locks must be exactly as visible to CheckWrite as
// per-row ones, so exactly one transaction aborts.
func TestBatchRegisteredReadsDetectWriteSkew(t *testing.T) {
	h := newHarness(t, Config{})
	t1 := h.begin(false)
	t2 := h.begin(false)
	batchAcquire(t, h, t1, "t", 1, "a", "b")
	batchAcquire(t, h, t2, "t", 1, "a", "b")
	if err := h.write(t1, "t", 1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := h.write(t2, "t", 1, "b"); err != nil {
		t.Fatal(err)
	}
	err1 := h.commit(t1)
	err2 := h.commit(t2)
	if (err1 == nil) == (err2 == nil) {
		t.Fatalf("exactly one of the batch readers must abort: err1=%v err2=%v", err1, err2)
	}
}

// TestPageSplitAppliesPageToRelPromotion pins the PR 5 bugfix: a
// transaction accumulating page locks purely through index splits must
// hit the §5.2.1 page→relation threshold exactly as if it had acquired
// them organically. Before the fix, PageSplit incremented pagesOnRel as
// "bookkeeping only" and never applied the threshold, so split-heavy
// transactions evaded relation promotion until their next organic
// acquire — the capacity bound leaked.
func TestPageSplitAppliesPageToRelPromotion(t *testing.T) {
	h := newHarness(t, Config{PromotePageToRel: 2})
	x := h.begin(false)
	h.mgr.AcquirePageLock(x, "i", 1)
	// Splits 1→2 and 2→3 propagate x's lock to each new right sibling;
	// the second propagation pushes pagesOnRel to 3 > 2.
	h.mgr.PageSplit("i", 1, 2)
	if h.mgr.HoldsLock(x, RelationTarget("i")) {
		t.Fatal("promoted too early: threshold is 2 pages")
	}
	if !h.mgr.HoldsLock(x, PageTarget("i", 2)) {
		t.Fatal("split must propagate the lock to the right sibling")
	}
	h.mgr.PageSplit("i", 2, 3)
	if !h.mgr.HoldsLock(x, RelationTarget("i")) {
		t.Fatal("split-accumulated page locks must trigger relation promotion")
	}
	for _, p := range []int64{1, 2, 3} {
		if h.mgr.HoldsLock(x, PageTarget("i", p)) {
			t.Fatalf("page lock %d must be consolidated into the relation lock", p)
		}
	}
	if got := h.mgr.Stats().PagePromotions; got != 1 {
		t.Fatalf("PagePromotions = %d, want 1", got)
	}
	// Later splits of pages the relation lock covers add nothing.
	h.mgr.PageSplit("i", 3, 4)
	if got, want := h.mgr.LockCount(), 1; got != want {
		t.Fatalf("LockCount = %d, want only the relation lock", got)
	}
	if err := h.commit(x); err != nil {
		t.Fatal(err)
	}
	assertQuiesced(t, h)
}

// TestPageSplitQuiesceAccounting is the regression test for the PR 5
// finished-transaction audit (partition.go): PageSplit and
// PromoteRelationLocks insert locks for holders that may already be
// committed, fenced only by m.mu against the reclaimer's release path.
// If that fencing were wrong, a finished transaction could receive a
// fresh lock after its release drained x.locks — a lock the table would
// keep forever. Split churn races commits, aborts, and a ReclaimNow
// hammer; at quiesce the table must be empty with the gauge agreeing.
func TestPageSplitQuiesceAccounting(t *testing.T) {
	h := newHarness(t, Config{Partitions: 8, PromotePageToRel: 4})
	const workers = 6
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Split churn: left pages the workers lock, right pages fresh.
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := int64(100)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for p := int64(0); p < 8; p++ {
				h.mgr.PageSplit("t", p, next)
				next++
			}
			h.mgr.PromoteRelationLocks("ddl")
		}
	}()
	// Reclaim hammer: passes racing the splits' lock insertion for
	// committed holders.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			h.mgr.ReclaimNow()
		}
	}()

	var workerWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func(seed uint64) {
			defer workerWG.Done()
			rng := rand.New(rand.NewPCG(seed, 3))
			for i := 0; i < 120; i++ {
				x := h.begin(false)
				failed := false
				for j := 0; j < 6 && !failed; j++ {
					page := int64(rng.IntN(8))
					switch rng.IntN(3) {
					case 0:
						h.mgr.AcquirePageLock(x, "t", page)
					case 1:
						h.mgr.AcquirePageLock(x, "ddl", int64(rng.IntN(4)))
					default:
						keys := []string{strconv.Itoa(rng.IntN(8)), strconv.Itoa(8 + rng.IntN(8))}
						if _, err := h.mgr.AcquireTupleLockBatch(x, "t", page, keys); err != nil {
							failed = true
						}
					}
				}
				if failed || rng.IntN(8) == 0 {
					h.abort(x)
					continue
				}
				if err := h.commit(x); err != nil && !errors.Is(err, ErrSerializationFailure) {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(uint64(w + 1))
	}
	workerWG.Wait()
	close(stop)
	wg.Wait()
	assertQuiesced(t, h)
}

// TestBatchAcquireStress races the batch insert path against everything
// that can touch the same targets concurrently: CheckWrite probes over
// the batched keys, tuple→page and page→relation promotion (low
// thresholds), PageSplit copying locks across partitions, and the
// epoch reclaimer. Run under -race this is the batch analogue of
// TestCheckReadBatchStress; the quiesce assertion pins the accounting.
func TestBatchAcquireStress(t *testing.T) {
	for _, parts := range []int{1, 8} {
		t.Run(fmt.Sprintf("partitions=%d", parts), func(t *testing.T) {
			h := newHarness(t, Config{
				Partitions:         parts,
				PromoteTupleToPage: 3,
				PromotePageToRel:   3,
			})
			const (
				workers    = 8
				txnsPerWkr = 120
			)
			var workerWG sync.WaitGroup
			for w := 0; w < workers; w++ {
				workerWG.Add(1)
				go func(seed uint64) {
					defer workerWG.Done()
					rng := rand.New(rand.NewPCG(seed, 17))
					for i := 0; i < txnsPerWkr; i++ {
						x := h.begin(false)
						failed := false
						for j := 0; j < 4 && !failed; j++ {
							page := int64(rng.IntN(8))
							nkeys := 1 + rng.IntN(5) // straddles the promotion threshold
							keys := make([]string, 0, nkeys)
							for k := 0; k < nkeys; k++ {
								keys = append(keys, strconv.Itoa(rng.IntN(16)))
							}
							if _, err := h.mgr.AcquireTupleLockBatch(x, "t", page, keys); err != nil {
								failed = true
								break
							}
							if rng.IntN(3) == 0 {
								if err := h.mgr.CheckWrite(x, "t", page, strconv.Itoa(rng.IntN(16))); err != nil {
									failed = true
									break
								}
							}
						}
						if failed {
							h.abort(x)
							continue
						}
						if err := h.commit(x); err != nil && !errors.Is(err, ErrSerializationFailure) {
							t.Errorf("commit: %v", err)
							return
						}
					}
				}(uint64(w + 1))
			}
			stop := make(chan struct{})
			var structWG sync.WaitGroup
			structWG.Add(1)
			go func() {
				defer structWG.Done()
				next := int64(1000)
				for {
					select {
					case <-stop:
						return
					default:
					}
					for p := int64(0); p < 8; p++ {
						h.mgr.PageSplit("t", p, next)
						next++
					}
				}
			}()
			workerWG.Wait()
			close(stop)
			structWG.Wait()
			assertQuiesced(t, h)
		})
	}
}
