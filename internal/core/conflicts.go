package core

import (
	"pgssi/internal/mvcc"
)

// This file implements rw-antidependency flagging and dangerous-structure
// detection (§5.2, §5.3), including the commit-ordering optimization
// (§3.3.1), the read-only snapshot ordering rule (Theorem 3), and the
// safe-retry victim selection rules (§5.4).

// CheckRead processes a read by x. conflictOut is the MVCC-derived list
// of concurrent writer transaction IDs supplied by the storage layer
// (creators of invisible newer versions and concurrent deleters); each is
// an rw-antidependency x → writer (the "write happens first" case of
// §5.2). If ownWrite is true, x already holds the tuple write lock and no
// SIREAD lock is needed. Returns ErrSerializationFailure if x was doomed
// or becomes the victim of a dangerous structure discovered here.
//
// The engine computes conflictOut during the MVCC read and inserts the
// SIREAD lock here, in separate calls; what makes the pair atomic with
// respect to CheckWrite is that both run under the storage layer's
// per-page read latch (storage/latch.go), the analogue of the buffer
// page lock PostgreSQL holds across the visibility check and the
// predicate-lock insertion. Callers on the heap read path must invoke
// CheckRead from inside storage.Table.Read's callback; CheckWrite is
// correspondingly invoked from the Update/Delete check callback, after
// the xmax stamp and under the same latch, so a writer can never probe
// the lock table in a window where a concurrent reader's lock is
// missing and its version stamp is not yet visible.
func (m *Manager) CheckRead(x *Xact, rel string, page int64, key string, conflictOut []mvcc.TxID, ownWrite bool) error {
	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	if x.safe.Load() {
		// Safe snapshot: plain snapshot isolation, no tracking (§4.2).
		return nil
	}
	if len(conflictOut) == 0 {
		// Hot path: a read with no MVCC conflicts only touches the
		// partitioned lock table, never the conflict graph, so the
		// global SSI mutex is not needed. A doom set concurrently is
		// picked up at the next conflict-bearing operation or at the
		// pre-commit check, which runs under the mutex.
		if !ownWrite && key != "" {
			m.acquire(x, TupleTarget(rel, page, key))
		}
		if x.doomed.Load() {
			return ErrSerializationFailure
		}
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	for _, w := range conflictOut {
		if err := m.flagConflictOutLocked(x, w); err != nil {
			return err
		}
	}
	if !ownWrite && key != "" {
		m.acquire(x, TupleTarget(rel, page, key))
	}
	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	return nil
}

// CheckScanConflicts processes the MVCC conflict-out set of a scan that
// already acquired its page or relation locks separately.
func (m *Manager) CheckScanConflicts(x *Xact, conflictOut []mvcc.TxID) error {
	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	if x.safe.Load() || len(conflictOut) == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	for _, w := range conflictOut {
		if err := m.flagConflictOutLocked(x, w); err != nil {
			return err
		}
	}
	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	return nil
}

// flagConflictOutLocked records the rw-antidependency x → writerXID,
// where the writer's version was invisible to x's snapshot. The writer
// may be active, committed-and-tracked, summarized, or not serializable
// at all (ran at a weaker level), each handled per §5.2/§6.2.
func (m *Manager) flagConflictOutLocked(x *Xact, writer mvcc.TxID) error {
	if writer == x.XID {
		return nil
	}
	if w, ok := m.lookupXact(writer); ok {
		return m.onConflictDetectedLocked(x, w, x)
	}
	if outSeq, ok := m.summary[writer]; ok {
		// The writer was summarized (§6.2 second case): we know only
		// its commit seq and the earliest commit among its
		// out-conflicts.
		wCommit := m.mvcc.CommitSeq(writer)
		return m.conflictWithSummarizedWriterLocked(x, wCommit, outSeq)
	}
	// Writer is not (or no longer) a tracked serializable transaction.
	// If it was serializable it has been fully cleaned up, which only
	// happens once no active transaction is concurrent with it — so it
	// cannot be part of a dangerous structure involving x. If it ran
	// at a weaker isolation level it is outside SSI's scope.
	return nil
}

// conflictWithSummarizedWriterLocked handles x → W where W is a
// summarized committed transaction with commit seq wCommit and earliest
// out-conflict commit seq outSeq (zero if none).
func (m *Manager) conflictWithSummarizedWriterLocked(x *Xact, wCommit, outSeq mvcc.SeqNo) error {
	// Track x's earliest committed out-conflict.
	if x.earliestOutConflictCommit == 0 || wCommit < x.earliestOutConflictCommit {
		x.earliestOutConflictCommit = wCommit
	}
	m.stats.ConflictsFlagged++
	// Structure (a): x (T1) → W (T2, committed) → T3 committed at
	// outSeq. Dangerous if T3 committed first.
	if outSeq != 0 {
		if m.dangerousLocked(x, wCommit, outSeq) {
			// T2 committed: the only abortable party is x (rule 3).
			return m.doomLocked(x, x)
		}
	}
	// Structure (b): T1 ∈ x.inConflicts → x (T2) → W (T3, committed).
	if err := m.checkPivotLocked(x, wCommit, x); err != nil {
		return err
	}
	return nil
}

// onConflictDetectedLocked records the edge r → w between two tracked
// transactions and runs the detection-time dangerous-structure checks —
// the analogue of PostgreSQL's OnConflictDetected. caller is the
// transaction performing the operation (r for reads, w for writes), so
// errors can be delivered to the right party.
//
// Both endpoints' edge locks are held for the whole call (permitted:
// the caller holds m.mu; see the ordering rule in partition.go). That
// is what fences conflict flagging against the edge-lock commit fast
// path: a conflict-free endpoint racing its own commit either commits
// first — then its committed flag and CommitSeq are visible here and
// the committed-transaction rules apply, exactly as if the flagging had
// serialized after the commit on a global mutex — or the edge is
// inserted first and the endpoint's eligibility check sees it and takes
// the slow path through the full pre-commit check.
//
//ssi:holds core.ssi
func (m *Manager) onConflictDetectedLocked(r, w, caller *Xact) error {
	if r == w {
		return nil
	}
	r.edgeMu.Lock()
	w.edgeMu.Lock()
	defer func() {
		w.edgeMu.Unlock()
		r.edgeMu.Unlock()
	}()
	if r.safe.Load() || r.aborted || w.aborted {
		return nil
	}
	if _, dup := r.outConflicts[w]; !dup {
		if r.outConflicts == nil {
			r.outConflicts = make(map[*Xact]struct{})
		}
		if w.inConflicts == nil {
			w.inConflicts = make(map[*Xact]struct{})
		}
		r.outConflicts[w] = struct{}{}
		w.inConflicts[r] = struct{}{}
		m.stats.ConflictsFlagged++
	}
	if w.committed && (r.earliestOutConflictCommit == 0 || w.CommitSeq < r.earliestOutConflictCommit) {
		r.earliestOutConflictCommit = w.CommitSeq
	}

	if m.cfg.DisableCommitOrderingOpt {
		// Ablation A1 reproduces Cahill's basic SSI: any transaction
		// with both an incoming and an outgoing rw-antidependency is
		// aborted as soon as the second edge appears, without
		// considering commit order.
		return m.basicSSICheckLocked(r, w, caller)
	}

	// Structure (a): r = T1, w = T2 (pivot), T3 = w's earliest
	// committed out-conflict. Dangerous only if T3 committed first
	// (before both r's and w's commits) and, when r is read-only, T3
	// committed before r's snapshot (Theorem 3).
	if s3 := w.earliestOutConflictCommit; s3 != 0 {
		ok := true
		if w.committed && s3 > w.CommitSeq {
			ok = false // T2 committed before T3: not first
		}
		// Note the strict comparison: in a length-2 cycle T1 and T3
		// are the same transaction (s3 == r.CommitSeq), and "T1
		// committed before T3" must then be false.
		if ok && r.committed && s3 > r.CommitSeq {
			ok = false // T1 committed before T3
		}
		if ok && m.readOnlySafeLocked(r, s3) {
			ok = false
		}
		if ok {
			// Victim per §5.4: prefer the pivot T2; if it cannot
			// be aborted, T1.
			if !w.committed && !w.prepared {
				return m.doomLocked(w, caller)
			}
			if !r.committed && !r.prepared {
				return m.doomLocked(r, caller)
			}
			// Both unabortable with T3 committed first should be
			// impossible at detection time (one of them is
			// executing the operation that created the edge).
		}
	}

	// Structure (b): T1 ∈ r.inConflicts, r = T2 (pivot), w = T3. Only
	// dangerous once T3 commits; if w is still active the pre-commit
	// check on w will catch it. Prepared w is treated as
	// committed-first conservatively (it can no longer abort).
	if w.committed {
		if err := m.checkPivotLocked(r, w.CommitSeq, caller); err != nil {
			return err
		}
	} else if w.prepared {
		if err := m.checkPivotPreparedT3Locked(r, caller); err != nil {
			return err
		}
	}
	return nil
}

// basicSSICheckLocked implements the original SSI abort rule (no commit
// ordering): whichever of r, w has both conflict directions is aborted,
// preferring the pivot itself, then the other party if the pivot cannot
// be aborted.
func (m *Manager) basicSSICheckLocked(r, w, caller *Xact) error {
	pair := [2]*Xact{w, r}
	for i, p := range pair {
		hasIn := len(p.inConflicts) > 0 || p.summaryConflictIn
		hasOut := len(p.outConflicts) > 0 || p.earliestOutConflictCommit != 0
		if !hasIn || !hasOut {
			continue
		}
		victim := p
		if victim.committed || victim.prepared {
			victim = pair[1-i]
		}
		if victim.committed || victim.prepared {
			continue
		}
		if err := m.doomLocked(victim, caller); err != nil {
			return err
		}
	}
	return nil
}

// dangerousLocked applies the commit-ordering and read-only filters to a
// candidate structure T1 = t1, T2 committed at t2Commit (0 if active),
// T3 committed at s3. It reports whether the structure requires an abort.
func (m *Manager) dangerousLocked(t1 *Xact, t2Commit, s3 mvcc.SeqNo) bool {
	if !m.cfg.DisableCommitOrderingOpt {
		if t2Commit != 0 && s3 > t2Commit {
			return false
		}
		// Strict: T1 may be the same transaction as T3 (2-cycles),
		// in which case it did not commit "before" T3.
		if t1.committed && s3 > t1.CommitSeq {
			return false
		}
	}
	return !m.readOnlySafeLocked(t1, s3)
}

// readOnlySafeLocked applies the read-only snapshot ordering rule of
// §4.1: a dangerous structure whose T1 is read-only is a false positive
// unless T3 committed before T1 took its snapshot.
func (m *Manager) readOnlySafeLocked(t1 *Xact, t3Commit mvcc.SeqNo) bool {
	if m.cfg.DisableReadOnlyOpt {
		return false
	}
	if !t1.ReadOnly() {
		return false
	}
	return t3Commit > t1.SnapshotSeq
}

// checkPivotLocked checks pivot = T2 against a newly committed (or
// discovered-committed) T3 with commit seq s3, scanning T1 candidates in
// pivot.inConflicts plus the summarized-conflict-in flag. If a dangerous
// structure is confirmed, the pivot is doomed (safe-retry rule 2); caller
// receives the error if it is the victim.
func (m *Manager) checkPivotLocked(pivot *Xact, s3 mvcc.SeqNo, caller *Xact) error {
	if pivot.committed || pivot.aborted || pivot.doomed.Load() {
		// A committed pivot with a dangerous structure is handled at
		// its own pre-commit check or at detection time; nothing to
		// do here.
		return nil
	}
	danger := false
	if pivot.summaryConflictIn {
		// T1 identity lost: conservatively dangerous (§6.2).
		danger = true
	}
	if !danger {
		for t1 := range pivot.inConflicts {
			if t1 == pivot {
				continue
			}
			if !m.cfg.DisableCommitOrderingOpt && t1.committed && t1.CommitSeq < s3 {
				continue // T1 committed strictly before T3: safe
			}
			if m.readOnlySafeLocked(t1, s3) {
				continue
			}
			danger = true
			break
		}
	}
	if !danger {
		return nil
	}
	if !pivot.prepared {
		return m.doomLocked(pivot, caller)
	}
	// The pivot has prepared and cannot abort (§7.1): abort an active
	// T1 instead; safe retry cannot be guaranteed.
	for t1 := range pivot.inConflicts {
		if !t1.committed && !t1.prepared {
			return m.doomLocked(t1, caller)
		}
	}
	return nil
}

// checkPivotPreparedT3Locked handles the case where T3 has prepared but
// not yet committed. Since a prepared transaction is guaranteed to
// commit, and the pivot and T1 candidates have not committed, T3 will be
// the first to commit: treat the structure as dangerous now.
func (m *Manager) checkPivotPreparedT3Locked(pivot *Xact, caller *Xact) error {
	if pivot.committed || pivot.aborted || pivot.doomed.Load() {
		return nil
	}
	danger := pivot.summaryConflictIn
	if !danger {
		for t1 := range pivot.inConflicts {
			if t1 == pivot {
				continue
			}
			if t1.committed {
				continue // committed before T3's future commit
			}
			// A read-only T1 took its snapshot before T3's future
			// commit, so Theorem 3 clears it.
			if !m.cfg.DisableReadOnlyOpt && t1.ReadOnly() {
				continue
			}
			danger = true
			break
		}
	}
	if !danger {
		return nil
	}
	if !pivot.prepared {
		return m.doomLocked(pivot, caller)
	}
	for t1 := range pivot.inConflicts {
		if !t1.committed && !t1.prepared {
			return m.doomLocked(t1, caller)
		}
	}
	return nil
}

// doomLocked marks victim for abort. If the victim is the transaction
// whose operation triggered the check, the error is returned so the
// operation fails immediately; otherwise the victim discovers its fate at
// its next operation or commit.
func (m *Manager) doomLocked(victim, caller *Xact) error {
	if victim.committed {
		return nil
	}
	if !victim.doomed.Load() {
		victim.doomed.Store(true)
		m.stats.DangerousAborts++
		if victim == caller {
			m.stats.SelfAborts++
		} else {
			m.stats.VictimAborts++
		}
	}
	if victim == caller {
		return ErrSerializationFailure
	}
	return nil
}

// CheckWrite processes a write by x to the tuple key whose superseded
// version lives on (rel, page) — PostgreSQL's
// CheckForSerializableConflictIn. It searches for SIREAD locks held by
// other transactions at relation, page, and tuple granularity, in that
// order (coarsest to finest, §5.2.1), flagging holder → x
// rw-antidependencies. Inserts pass page < 0 and check only the relation
// level here; their phantom conflicts are found via index-page checks in
// CheckIndexInsert.
func (m *Manager) CheckWrite(x *Xact, rel string, page int64, key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	x.wrote = true
	// Check finest to coarsest (tuple, page, relation). Combined with
	// promotion inserting the coarser lock before removing the finer
	// ones, this guarantees a reader concurrently promoting its locks
	// is seen at one granularity or another (see partition.go).
	targets := make([]Target, 0, 3)
	if page >= 0 {
		if key != "" {
			targets = append(targets, TupleTarget(rel, page, key))
		}
		targets = append(targets, PageTarget(rel, page))
	}
	targets = append(targets, RelationTarget(rel))
	for _, t := range targets {
		if err := m.checkTargetWriteLocked(x, t); err != nil {
			return err
		}
	}
	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	return nil
}

// CheckIndexInsert processes the insertion of an index entry on leaf page
// of index idx: any SIREAD gap lock on that page or on the whole index
// flags a reader → x conflict (phantom detection).
func (m *Manager) CheckIndexInsert(x *Xact, idx string, page int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	x.wrote = true
	// Finest to coarsest, as in CheckWrite.
	if err := m.checkTargetWriteLocked(x, PageTarget(idx, page)); err != nil {
		return err
	}
	if err := m.checkTargetWriteLocked(x, RelationTarget(idx)); err != nil {
		return err
	}
	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	return nil
}

// checkTargetWriteLocked flags reader → x for every SIREAD holder of t.
// Caller holds m.mu, which pins every holder's SIREAD locks (abort,
// reclamation, and summarization all require m.mu, so no holder leaves
// the table between the snapshot below and the flagging; a holder may
// commit on the edge-lock fast path, which keeps its locks and is
// fenced by onConflictDetectedLocked's edge-pair locking). The
// partition mutex is held only while snapshotting the holder set, since
// flagging can itself mutate the lock table via dooms.
func (m *Manager) checkTargetWriteLocked(x *Xact, t Target) error {
	p := m.partition(t)
	p.mu.Lock()
	holders := p.locks[t]
	readers := make([]*Xact, 0, len(holders))
	for r := range holders {
		if r != x {
			readers = append(readers, r)
		}
	}
	p.mu.Unlock()
	for _, r := range readers {
		if r == m.oldCommitted {
			// A summarized committed transaction read this object
			// (§6.2 first case): x gains a conflict in from an
			// unknown committed transaction.
			if !x.summaryConflictIn {
				x.summaryConflictIn = true
				m.stats.ConflictsFlagged++
			}
			// This may complete a dangerous structure
			// T_committed → x → T3 if x already has a committed
			// out-conflict.
			if s3 := x.earliestOutConflictCommit; s3 != 0 {
				if err := m.checkPivotLocked(x, s3, x); err != nil {
					return err
				}
			}
			continue
		}
		if err := m.onConflictDetectedLocked(r, x, x); err != nil {
			return err
		}
	}
	return nil
}

// MarkWrote records that x performed a write without going through
// CheckWrite (used by engine paths that batch the check).
func (m *Manager) MarkWrote(x *Xact) {
	m.mu.Lock()
	defer m.mu.Unlock()
	x.wrote = true
}

// ReadItem describes one row observed by a scan, for CheckReadBatch.
type ReadItem struct {
	// Page and Key identify the tuple version read; Key == "" means a
	// row with MVCC conflicts but no visible version (no tuple lock).
	Page int64
	Key  string
	// ConflictOut is the MVCC conflict-out set for this row.
	ConflictOut []mvcc.TxID
	// OwnWrite suppresses the SIREAD lock (the transaction holds the
	// tuple write lock).
	OwnWrite bool
}

// CheckReadBatch processes all rows of a scan in one critical section —
// semantically identical to calling CheckRead per row. A scan with no
// MVCC conflicts (the common case) never takes the SSI mutex: it holds
// the transaction's own lockMu across the batch and touches only the
// lock-table partitions.
//
// The engine's heap scan path does not use this entry point: a batch
// spanning many heap pages cannot run under a single per-page read
// latch. Scans instead group rows BY page (storage.ReadPageBatch) and
// register each page's SIREAD locks through AcquireTupleLockBatch from
// inside that page's latch, batching the MVCC conflict flagging
// separately (CheckScanConflicts). CheckReadBatch remains for callers
// that batch reads whose atomicity is established by other means (and
// is exercised directly by the concurrency stress tests).
func (m *Manager) CheckReadBatch(x *Xact, rel string, items []ReadItem) error {
	if len(items) == 0 {
		return nil
	}
	if x.safe.Load() {
		return nil
	}
	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	hasConflicts := false
	for i := range items {
		if len(items[i].ConflictOut) > 0 {
			hasConflicts = true
			break
		}
	}
	if !hasConflicts {
		x.lockMu.Lock()
		for i := range items {
			it := &items[i]
			if !it.OwnWrite && it.Key != "" {
				m.acquireXLocked(x, TupleTarget(rel, it.Page, it.Key))
			}
		}
		x.lockMu.Unlock()
		if x.doomed.Load() {
			return ErrSerializationFailure
		}
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	for i := range items {
		it := &items[i]
		for _, w := range it.ConflictOut {
			if err := m.flagConflictOutLocked(x, w); err != nil {
				return err
			}
		}
		if !it.OwnWrite && it.Key != "" {
			m.acquire(x, TupleTarget(rel, it.Page, it.Key))
		}
	}
	if x.doomed.Load() {
		return ErrSerializationFailure
	}
	return nil
}
