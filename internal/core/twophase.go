package core

import (
	"errors"

	"pgssi/internal/mvcc"
)

// Two-phase commit support (§7.1). PREPARE runs the pre-commit
// serialization check (a prepared transaction can no longer be aborted,
// so the check must happen before preparing) and produces a durable
// record of the transaction's SIREAD locks. After a crash, recovered
// prepared transactions are conservatively assumed to have
// rw-antidependencies both in and out, because the dependency graph
// itself is not persisted.

// ErrNotPrepared is returned when finishing a transaction that was never
// prepared.
var ErrNotPrepared = errors.New("core: transaction is not prepared")

// PreparedState is the durable SSI state of a prepared transaction: the
// lock targets it holds. It is what PostgreSQL writes to the two-phase
// state file.
type PreparedState struct {
	XID   mvcc.TxID
	Locks []Target
}

// Prepare runs the pre-commit serialization-failure check and, if it
// passes, marks x prepared and returns the state to persist. A prepared
// transaction's SIREAD locks remain active and new conflicts against it
// can still be flagged, but it can no longer be chosen as an abort victim.
func (m *Manager) Prepare(x *Xact) (PreparedState, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.preCommitCheckLocked(x); err != nil {
		return PreparedState{}, err
	}
	// The prepared flag is read by conflict flaggers under the edge
	// lock (it disqualifies the commit fast path and changes victim
	// selection), so it is written under it too.
	x.edgeMu.Lock()
	x.prepared = true
	x.edgeMu.Unlock()
	x.lockMu.Lock()
	st := PreparedState{XID: x.XID, Locks: make([]Target, 0, len(x.locks))}
	for t := range x.locks {
		st.Locks = append(st.Locks, t)
	}
	x.lockMu.Unlock()
	return st, nil
}

// CommitPrepared commits a prepared transaction. commitFn assigns the
// commit sequence number under the SSI mutex. Unlike Commit, no
// serialization check runs here: it already ran at Prepare, and a
// prepared transaction is guaranteed to be committable.
func (m *Manager) CommitPrepared(x *Xact, commitFn func() mvcc.SeqNo) error {
	m.mu.Lock()
	if !x.prepared {
		m.mu.Unlock()
		return ErrNotPrepared
	}
	seq := commitFn()
	n := m.finishCommitLocked(x, seq)
	m.mu.Unlock()
	m.afterCommit(n)
	return nil
}

// AbortPrepared rolls back a prepared transaction (ROLLBACK PREPARED is
// a user decision; SSI itself never aborts a prepared transaction).
func (m *Manager) AbortPrepared(x *Xact) error {
	m.mu.Lock()
	prepared := x.prepared
	m.mu.Unlock()
	if !prepared {
		return ErrNotPrepared
	}
	m.Abort(x)
	return nil
}

// RecoverPrepared reconstitutes a prepared transaction after a crash from
// its persisted state. Because the rw-antidependency graph is not
// persisted, the recovered transaction is conservatively assumed to have
// conflicts both in and out (§7.1): summaryConflictIn is set, and its
// earliest out-conflict commit is set to the most pessimistic value so
// any future in-conflict completes a dangerous structure.
func (m *Manager) RecoverPrepared(st PreparedState, snapshotSeq mvcc.SeqNo) *Xact {
	m.mu.Lock()
	defer m.mu.Unlock()
	x := &Xact{
		XID:         st.XID,
		SnapshotSeq: snapshotSeq,
		wrote:       true,
		prepared:    true,
	}
	x.summaryConflictIn = true
	x.earliestOutConflictCommit = 1
	x.snapshotBound.Store(uint64(snapshotSeq))
	m.registerXact(x)
	x.lockMu.Lock()
	for _, t := range st.Locks {
		m.insertLockXLocked(x, t)
	}
	x.lockMu.Unlock()
	return x
}

// Prepared reports whether x is in the prepared state.
func (x *Xact) Prepared() bool { return x.prepared }
