package core

import (
	"testing"
)

// TestManagerClose: after Close the reclaimer never respawns, a wake is
// a no-op, and the final synchronous pass has dropped everything the
// horizon allows.
func TestManagerClose(t *testing.T) {
	h := newHarness(t, Config{})

	// Generate retired state: committed readers whose SIREAD locks wait
	// on the reclaimer.
	for i := 0; i < 3*reclaimBatch; i++ {
		x := h.begin(false)
		if err := h.read(x, "t", int64(i), "k"); err != nil {
			t.Fatal(err)
		}
		if err := h.commit(x); err != nil {
			t.Fatal(err)
		}
	}

	h.mgr.Close()

	// Close's final pass ran with nothing active: every retired
	// transaction is past the horizon and its locks are gone.
	if n := h.mgr.LockCount(); n != 0 {
		t.Fatalf("%d SIREAD locks survived Close", n)
	}

	r := &h.mgr.rec
	r.mu.Lock()
	running, closed := r.running, r.closed
	r.mu.Unlock()
	if running {
		t.Fatal("reclaimer loop still running after Close")
	}
	if !closed {
		t.Fatal("reclaimer not marked closed")
	}

	// A wake after Close must not respawn the loop.
	h.mgr.wakeReclaimer()
	r.mu.Lock()
	running = r.running
	r.mu.Unlock()
	if running {
		t.Fatal("wakeReclaimer respawned the loop after Close")
	}

	// Close is idempotent.
	h.mgr.Close()

	// ReclaimNow (the synchronous path) still works after Close — the
	// engine may quiesce more state later.
	h.mgr.ReclaimNow()
}

// TestManagerCloseConcurrent closes while commits are still retiring
// work, under -race: Close must wait out the running pass and never
// deadlock.
func TestManagerCloseConcurrent(t *testing.T) {
	h := newHarness(t, Config{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4*reclaimBatch; i++ {
			x := h.begin(false)
			if h.read(x, "t", int64(i%7), "k") != nil {
				h.abort(x)
				continue
			}
			if err := h.commit(x); err != nil {
				continue
			}
		}
	}()
	<-done
	h.mgr.Close()
	if n := h.mgr.LockCount(); n != 0 {
		t.Fatalf("%d locks survived", n)
	}
}
