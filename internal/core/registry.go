package core

import (
	"math"
	"sync"

	"pgssi/internal/mvcc"
)

// This file implements the sharded active-transaction registry that
// replaced the global xact map guarded by Manager.mu. Begin registers a
// transaction by locking only the shard its xid hashes to, so starting a
// transaction does not serialize on commits or on other begins.
//
// The registry also defines the reclamation epoch used by the background
// reclaimer (reclaim.go). Every transaction publishes a snapshot *bound*
// — a monotone lower bound on its snapshot's commit-sequence number —
// into an atomic BEFORE it becomes visible in a shard, and refines it to
// the exact snapshot sequence once the snapshot is taken. The reclaimer
// computes the horizon as the minimum bound over all registered active
// transactions; because registration precedes the snapshot (Begin's
// snapshot-ordering step), a transaction that is between registration
// and snapshot acquisition is already visible with a conservative bound,
// and committed state it could still observe is never reclaimed. The
// DisableLifecycleFencing ablation inverts that order and makes the
// premature reclamation reproducible (see lifecycle_test harnesses).

// xactShard is one shard of the registry.
type xactShard struct {
	mu sync.Mutex //ssi:lock level=30 name=core.xactShard
	// tracked maps xid → transaction for every transaction the SSI layer
	// still knows about: active, prepared, or committed-awaiting-reclaim.
	tracked map[mvcc.TxID]*Xact
	// active is the subset of tracked that has neither committed nor
	// aborted (prepared transactions are active).
	active map[*Xact]struct{}
}

func newXactShards(n int) []xactShard {
	shards := make([]xactShard, n)
	for i := range shards {
		shards[i].tracked = make(map[mvcc.TxID]*Xact)
		shards[i].active = make(map[*Xact]struct{})
	}
	return shards
}

func (m *Manager) xshard(xid mvcc.TxID) *xactShard {
	return &m.xshards[uint64(xid)&m.xshardMask]
}

// registerXact publishes x in the registry (tracked and active). The
// caller must have stored x's snapshot bound first: from the moment this
// returns, the reclaimer may read it.
func (m *Manager) registerXact(x *Xact) {
	s := m.xshard(x.XID)
	s.mu.Lock()
	s.tracked[x.XID] = x
	s.active[x] = struct{}{}
	s.mu.Unlock()
	m.activeCount.Add(1)
}

// deactivateXact removes x from the active set but keeps it tracked
// (committed transactions stay visible to conflict lookups until the
// reclaimer or summarization drops them).
func (m *Manager) deactivateXact(x *Xact) {
	s := m.xshard(x.XID)
	s.mu.Lock()
	_, wasActive := s.active[x]
	delete(s.active, x)
	s.mu.Unlock()
	if wasActive {
		m.activeCount.Add(-1)
	}
}

// dropXact removes x from the registry entirely.
func (m *Manager) dropXact(x *Xact) {
	s := m.xshard(x.XID)
	s.mu.Lock()
	_, wasActive := s.active[x]
	delete(s.active, x)
	delete(s.tracked, x.XID)
	s.mu.Unlock()
	if wasActive {
		m.activeCount.Add(-1)
	}
}

// lookupXact returns the tracked transaction with the given xid.
func (m *Manager) lookupXact(xid mvcc.TxID) (*Xact, bool) {
	s := m.xshard(xid)
	s.mu.Lock()
	x, ok := s.tracked[xid]
	s.mu.Unlock()
	return x, ok
}

// activeXacts snapshots the active set, one shard at a time. The result
// can be stale the moment it returns; callers (the read-only safety scan
// and the reclaimer) tolerate that by construction — see the bound
// protocol above and the retire-before-deactivate ordering in
// lifecycle.go.
func (m *Manager) activeXacts() []*Xact {
	var out []*Xact
	for i := range m.xshards {
		s := &m.xshards[i]
		s.mu.Lock()
		for x := range s.active {
			out = append(out, x)
		}
		s.mu.Unlock()
	}
	return out
}

// epochHorizon computes the reclamation horizon: the minimum snapshot
// bound over all active transactions (MaxUint64 if none), whether every
// active transaction is declared read-only, and the active count.
// Committed state with CommitSeq <= the horizon cannot be observed by
// any present or future transaction: present actives have published
// bounds <= their snapshots, and any transaction registered after this
// scan takes its snapshot after registering, hence at or above the
// commit sequence current at scan time.
func (m *Manager) epochHorizon() (minSeq mvcc.SeqNo, allRO bool, nActive int) {
	minSeq = mvcc.SeqNo(math.MaxUint64)
	allRO = true
	for i := range m.xshards {
		s := &m.xshards[i]
		s.mu.Lock()
		for x := range s.active {
			nActive++
			if b := mvcc.SeqNo(x.snapshotBound.Load()); b < minSeq {
				minSeq = b
			}
			if !x.declaredRO {
				allRO = false
			}
		}
		s.mu.Unlock()
	}
	return minSeq, allRO, nActive
}

// TrackedXacts returns the number of transactions currently tracked
// (active + committed-awaiting-reclaim). Exposed for memory-bound tests;
// run ReclaimNow first to get a post-quiescence count.
func (m *Manager) TrackedXacts() int {
	n := 0
	for i := range m.xshards {
		s := &m.xshards[i]
		s.mu.Lock()
		n += len(s.tracked)
		s.mu.Unlock()
	}
	return n
}
