package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"pgssi/internal/mvcc"
)

// Concurrency stress tests for the partitioned SIREAD lock table. Run
// under -race these exercise every cross-lock interaction the partition
// scheme introduces: mutex-free tuple acquisition racing granularity
// promotion, PageSplit copying locks across partitions while holders
// acquire and release, DropOwnTupleLock racing end-of-transaction
// cleanup, DDL-style PromoteRelationLocks sweeping all partitions, and
// read-only transactions whose safe-snapshot transition drops their
// locks mid-read.

func TestPartitionedLockTableStress(t *testing.T) {
	for _, parts := range []int{1, 8} {
		t.Run(fmt.Sprintf("partitions=%d", parts), func(t *testing.T) {
			h := newHarness(t, Config{
				Partitions:         parts,
				PromoteTupleToPage: 3,
				PromotePageToRel:   3,
			})
			const (
				workers     = 8
				txnsPerWkr  = 150
				readsPerTxn = 12
			)

			var workerWG sync.WaitGroup
			for w := 0; w < workers; w++ {
				workerWG.Add(1)
				go func(seed uint64) {
					defer workerWG.Done()
					rng := rand.New(rand.NewPCG(seed, 99))
					for i := 0; i < txnsPerWkr; i++ {
						readOnly := rng.IntN(8) == 0
						x := h.begin(readOnly)
						failed := false
						for j := 0; j < readsPerTxn; j++ {
							page := int64(rng.IntN(8))
							key := strconv.Itoa(rng.IntN(16))
							if err := h.mgr.CheckRead(x, "t", page, key, nil, false); err != nil {
								failed = true
								break
							}
							if !readOnly && rng.IntN(4) == 0 {
								// Write a tuple this or another worker
								// reads, then drop our own SIREAD lock
								// on it (§7.3) — racing other workers'
								// cleanup and the splitter.
								if err := h.mgr.CheckWrite(x, "t", page, key); err != nil {
									failed = true
									break
								}
								h.mgr.DropOwnTupleLock(x, "t", page, key)
							}
							if rng.IntN(8) == 0 {
								h.mgr.AcquirePageLock(x, "ddl", int64(rng.IntN(4)))
							}
						}
						if failed {
							h.abort(x)
							continue
						}
						if err := h.commit(x); err != nil && !errors.Is(err, ErrSerializationFailure) {
							t.Errorf("commit: %v", err)
							return
						}
					}
				}(uint64(w + 1))
			}

			// Structural churn concurrent with the workers: page splits
			// whose left and right pages hash to different partitions,
			// and full-relation promotion sweeps.
			stop := make(chan struct{})
			var structWG sync.WaitGroup
			structWG.Add(1)
			go func() {
				defer structWG.Done()
				next := int64(1000)
				for {
					select {
					case <-stop:
						return
					default:
					}
					for p := int64(0); p < 8; p++ {
						h.mgr.PageSplit("t", p, next)
						next++
					}
					h.mgr.PromoteRelationLocks("ddl")
				}
			}()

			workerWG.Wait()
			close(stop)
			structWG.Wait()

			// Quiesced: no transaction is active, so a reclaim pass must
			// drop all tracked state, and the gauge must agree with a
			// real count of the table (LockCount walks the partitions).
			assertQuiesced(t, h)
		})
	}
}

// assertQuiesced runs a synchronous reclaim pass and asserts that no
// transaction state survives: nothing tracked, no locks in the table,
// and the LocksCurrent gauge agreeing with a real count.
func assertQuiesced(t *testing.T, h *harness) {
	t.Helper()
	h.mgr.ReclaimNow()
	if n := h.mgr.TrackedXacts(); n != 0 {
		t.Fatalf("tracked xacts after quiesce = %d, want 0", n)
	}
	real := h.mgr.LockCount()
	if gauge := int(h.mgr.Stats().LocksCurrent); real != gauge {
		t.Fatalf("lock table count %d disagrees with LocksCurrent gauge %d", real, gauge)
	}
	if real != 0 {
		t.Fatalf("locks leaked after quiesce: %d", real)
	}
}

// TestCheckReadBatchStress covers the scan path's batch entry point
// under -race: workers issue CheckReadBatch calls whose items mix
// conflict-free rows (the lockMu-only fast path), rows with MVCC
// conflict-out sets naming other workers' transactions (the SSI-mutex
// path), own-write suppressions, and key-less conflict-only items —
// racing writers running CheckWrite over the same targets, granularity
// promotion (low thresholds), and PageSplit churn.
func TestCheckReadBatchStress(t *testing.T) {
	h := newHarness(t, Config{
		Partitions:         8,
		PromoteTupleToPage: 3,
		PromotePageToRel:   4,
	})
	const (
		workers    = 8
		txnsPerWkr = 120
	)
	// recentXIDs is a lock-free ring of transaction IDs other workers
	// may cite as MVCC conflict-out writers: some will be active, some
	// committed-and-tracked, some cleaned up — all states
	// flagConflictOutLocked must handle.
	var recentXIDs [16]atomic.Uint64

	var workerWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func(seed uint64) {
			defer workerWG.Done()
			rng := rand.New(rand.NewPCG(seed, 7))
			for i := 0; i < txnsPerWkr; i++ {
				x := h.begin(false)
				recentXIDs[rng.IntN(len(recentXIDs))].Store(uint64(x.XID))
				failed := false
				for b := 0; b < 3 && !failed; b++ {
					items := make([]ReadItem, 0, 8)
					for j := 0; j < 8; j++ {
						it := ReadItem{
							Page: int64(rng.IntN(6)),
							Key:  strconv.Itoa(rng.IntN(12)),
						}
						switch rng.IntN(6) {
						case 0:
							// Conflict-bearing row.
							if xid := recentXIDs[rng.IntN(len(recentXIDs))].Load(); xid != 0 {
								it.ConflictOut = []mvcc.TxID{mvcc.TxID(xid)}
							}
						case 1:
							// Row with conflicts but no visible
							// version: no SIREAD lock to take.
							it.Key = ""
							if xid := recentXIDs[rng.IntN(len(recentXIDs))].Load(); xid != 0 {
								it.ConflictOut = []mvcc.TxID{mvcc.TxID(xid)}
							}
						case 2:
							it.OwnWrite = true
						}
						items = append(items, it)
					}
					if err := h.mgr.CheckReadBatch(x, "t", items); err != nil {
						failed = true
						break
					}
					if rng.IntN(3) == 0 {
						page := int64(rng.IntN(6))
						key := strconv.Itoa(rng.IntN(12))
						if err := h.mgr.CheckWrite(x, "t", page, key); err != nil {
							failed = true
						}
					}
				}
				if failed {
					h.abort(x)
					continue
				}
				if err := h.commit(x); err != nil && !errors.Is(err, ErrSerializationFailure) {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(uint64(w + 1))
	}

	stop := make(chan struct{})
	var structWG sync.WaitGroup
	structWG.Add(1)
	go func() {
		defer structWG.Done()
		next := int64(1000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for p := int64(0); p < 6; p++ {
				h.mgr.PageSplit("t", p, next)
				next++
			}
		}
	}()

	workerWG.Wait()
	close(stop)
	structWG.Wait()

	assertQuiesced(t, h)
}

// TestTwoPhaseCommitStress races the §7.1 two-phase path against
// concurrent read/write transactions under -race: workers read and
// write, then Prepare; a successful Prepare must make CommitPrepared
// infallible even while other workers' CheckWrite calls flag new
// conflicts against the prepared transaction's still-active SIREAD
// locks (exercising the prepared-pivot and prepared-T3 branches of the
// dangerous-structure checks). A slice of prepared transactions are
// rolled back instead, covering AbortPrepared cleanup.
func TestTwoPhaseCommitStress(t *testing.T) {
	h := newHarness(t, Config{Partitions: 8, PromoteTupleToPage: 4})
	const (
		workers    = 8
		txnsPerWkr = 120
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 31))
			for i := 0; i < txnsPerWkr; i++ {
				x := h.begin(false)
				failed := false
				for j := 0; j < 4; j++ {
					page := int64(rng.IntN(4))
					key := strconv.Itoa(rng.IntN(8))
					if err := h.mgr.CheckRead(x, "t", page, key, nil, false); err != nil {
						failed = true
						break
					}
					if rng.IntN(2) == 0 {
						if err := h.mgr.CheckWrite(x, "t", page, key); err != nil {
							failed = true
							break
						}
					}
				}
				if failed {
					h.abort(x)
					continue
				}
				if rng.IntN(2) == 0 {
					// Plain one-phase commit in the mix.
					if err := h.commit(x); err != nil && !errors.Is(err, ErrSerializationFailure) {
						t.Errorf("commit: %v", err)
						return
					}
					continue
				}
				if _, err := h.mgr.Prepare(x); err != nil {
					if !errors.Is(err, ErrSerializationFailure) {
						t.Errorf("prepare: %v", err)
						return
					}
					h.abort(x)
					continue
				}
				// Let other workers' conflict checks observe the
				// prepared state before the second phase.
				runtime.Gosched()
				if rng.IntN(8) == 0 {
					h.mv.Abort(x.XID)
					if err := h.mgr.AbortPrepared(x); err != nil {
						t.Errorf("abort prepared: %v", err)
						return
					}
					continue
				}
				// A prepared transaction is guaranteed committable:
				// CommitPrepared must never fail.
				if err := h.mgr.CommitPrepared(x, func() mvcc.SeqNo { return h.mv.Commit(x.XID) }); err != nil {
					t.Errorf("commit prepared: %v", err)
					return
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()

	assertQuiesced(t, h)
}

// TestConcurrentPromotionVsWriteCheck hammers the specific §5.2.1
// interleaving the partition scheme must preserve: one transaction's
// tuple locks being promoted to a page lock while another transaction's
// write check walks the granularities. The write must never miss the
// reader entirely — every writer either sees a lock (and gains the
// rw-antidependency edge) at some granularity or dooms/aborts.
func TestConcurrentPromotionVsWriteCheck(t *testing.T) {
	h := newHarness(t, Config{Partitions: 8, PromoteTupleToPage: 2})
	const rounds = 400
	for i := 0; i < rounds; i++ {
		r := h.begin(false)
		w := h.begin(false)
		// The reader's tuple lock on "0" is in place before the writer
		// starts; a second lock brings the page to the promotion
		// threshold.
		for j := 0; j < 2; j++ {
			if err := h.mgr.CheckRead(r, "t", 1, strconv.Itoa(j), nil, false); err != nil {
				t.Fatalf("round %d: %v", i, err)
			}
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			// Reads past the threshold replace the tuple locks
			// (including "0") with a page lock, concurrently with the
			// writer's granularity walk.
			for j := 2; j < 5; j++ {
				if err := h.mgr.CheckRead(r, "t", 1, strconv.Itoa(j), nil, false); err != nil {
					return
				}
			}
		}()
		errCh := make(chan error, 1)
		go func() {
			defer wg.Done()
			errCh <- h.mgr.CheckWrite(w, "t", 1, "0")
		}()
		wg.Wait()
		if err := <-errCh; err != nil && !errors.Is(err, ErrSerializationFailure) {
			t.Fatalf("round %d: %v", i, err)
		}
		// The reader held a lock covering "0" (tuple or, mid-promotion,
		// page) at every instant of the writer's check, so the edge
		// r → w must have been recorded regardless of interleaving.
		h.mgr.mu.Lock()
		_, hasEdge := r.outConflicts[w]
		h.mgr.mu.Unlock()
		if !hasEdge {
			t.Fatalf("round %d: writer missed reader's lock during promotion", i)
		}
		h.abort(r)
		h.abort(w)
	}
}

// TestLifecycleReclaimStress is -race coverage for the epoch-based
// lifecycle: background reclaim passes (the natural batch wakes plus a
// ReclaimNow hammer) race pressure summarization, late CheckWrite
// probes against summarized dummy locks, commits on both the edge-lock
// fast path and the conflict-graph slow path, and Abort. A tiny
// MaxCommittedXacts forces constant summarization, and a pin
// transaction holds the reclamation horizon for each wave so retired
// state piles up and must be summarized rather than reclaimed. Each
// wave ends at a quiesce point where the lock table, the LocksCurrent
// gauge, the registry, and the summary table are asserted consistent;
// the stats accessors are also hammered mid-run so -race sees every
// reader/writer pairing.
func TestLifecycleReclaimStress(t *testing.T) {
	h := newHarness(t, Config{
		Partitions:         8,
		MaxCommittedXacts:  4,
		PromoteTupleToPage: 3,
	})
	const (
		waves      = 3
		workers    = 8
		txnsPerWkr = 80
	)
	for wave := 0; wave < waves; wave++ {
		// The pin's snapshot predates every commit in this wave, so
		// nothing the wave retires can be reclaimed until it aborts —
		// overflow must go through summarization.
		pin := h.begin(false)
		if err := h.mgr.CheckRead(pin, "t", 0, "pin", nil, false); err != nil {
			t.Fatal(err)
		}

		stop := make(chan struct{})
		var hammerWG sync.WaitGroup
		hammerWG.Add(1)
		go func() {
			defer hammerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.mgr.ReclaimNow()
				_ = h.mgr.LockCount()
				_ = h.mgr.TrackedXacts()
				_ = h.mgr.SummaryTableSize()
				_ = h.mgr.Stats()
			}
		}()

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(seed, uint64(wave)+1))
				for i := 0; i < txnsPerWkr; i++ {
					x := h.begin(false)
					failed := false
					for j := 0; j < 4 && !failed; j++ {
						page := int64(rng.IntN(4))
						key := strconv.Itoa(rng.IntN(8))
						if err := h.mgr.CheckRead(x, "t", page, key, nil, false); err != nil {
							failed = true
							break
						}
						if rng.IntN(3) == 0 {
							// Late write probes: many of these targets'
							// SIREAD holders have been summarized, so
							// the probe hits the dummy transaction's
							// locks and the summary-conflict-in path.
							if err := h.mgr.CheckWrite(x, "t", page, key); err != nil {
								failed = true
								break
							}
						}
					}
					if failed || rng.IntN(10) == 0 {
						h.abort(x)
						continue
					}
					if err := h.commit(x); err != nil && !errors.Is(err, ErrSerializationFailure) {
						t.Errorf("commit: %v", err)
						return
					}
				}
			}(uint64(w + 1))
		}
		wg.Wait()
		h.abort(pin)
		close(stop)
		hammerWG.Wait()

		// Wave quiesce: everything reclaimable must reclaim, the gauge
		// must match a real count, and every summarization must have
		// left exactly one summary-table entry.
		assertQuiesced(t, h)
		st := h.mgr.Stats()
		if n := int64(h.mgr.SummaryTableSize()); n != st.Summarized {
			t.Fatalf("summary table has %d entries but %d transactions were summarized", n, st.Summarized)
		}
		if st.Summarized == 0 {
			t.Fatal("pressure summarization never ran; the stress lost its teeth")
		}
	}
}
