package core

import (
	"pgssi/internal/mvcc"
)

// This file implements the SSI lock manager of §5.2.1: SIREAD-only locks
// at relation / page / tuple granularity, with promotion to coarser
// granularities both for per-transaction thresholds and for global
// capacity. The lock table itself is sharded into hash partitions (see
// partition.go for the layout and the lock-ordering rules); the
// acquisition and release paths below run without the global SSI mutex,
// taking only the owning transaction's lockMu and one partition mutex
// at a time.

// AcquireTupleLock records a SIREAD lock for x on the tuple identified by
// key, whose read version lives on (rel, page).
func (m *Manager) AcquireTupleLock(x *Xact, rel string, page int64, key string) {
	m.acquire(x, TupleTarget(rel, page, key))
}

// AcquirePageLock records a SIREAD lock on a heap or index page. Index
// range scans lock the leaf pages they traverse, which is what detects
// phantoms (§5.2.1).
func (m *Manager) AcquirePageLock(x *Xact, rel string, page int64) {
	m.acquire(x, PageTarget(rel, page))
}

// AcquireRelationLock records a relation-granularity SIREAD lock, used
// for sequential scans and as the fallback for index types without
// predicate-lock support (§7.4).
func (m *Manager) AcquireRelationLock(x *Xact, rel string) {
	m.acquire(x, RelationTarget(rel))
}

// acquire adds a SIREAD lock for x on t without touching the global SSI
// mutex. Callers may hold m.mu (the batch and conflict paths do); the
// ordering mu → lockMu → partition mutex permits that.
func (m *Manager) acquire(x *Xact, t Target) {
	if x.safe.Load() {
		// Safe-snapshot transactions take no SIREAD locks (§4.2).
		return
	}
	x.lockMu.Lock()
	defer x.lockMu.Unlock()
	m.acquireXLocked(x, t)
}

// acquireXLocked adds a SIREAD lock, skipping it if a coarser lock
// already covers the target, and promoting granularity when thresholds
// or the global capacity are exceeded. Caller holds x.lockMu.
func (m *Manager) acquireXLocked(x *Xact, t Target) {
	if x.lockingDone {
		// The transaction finished, was summarized, or moved onto a
		// safe snapshot: its lock set must not grow again.
		return
	}
	if m.coveredXLocked(x, t) {
		return
	}
	if _, dup := x.locks[t]; dup {
		return
	}
	// Enforce the global capacity bound by consolidating this
	// transaction's locks on the relation into a relation lock. The
	// gauge is read without any table-wide lock, so brief overshoot by
	// a few entries under concurrency is possible and acceptable.
	if int(m.locksCurrent.Load()) >= m.cfg.MaxPredicateLocks && t.Level != LevelRelation {
		m.capacityPromotions.Add(1)
		m.promoteToRelationXLocked(x, t.Rel)
		return
	}
	m.insertLockXLocked(x, t)

	switch t.Level {
	case LevelTuple:
		pk := PageTarget(t.Rel, t.Page)
		if x.tuplesOnPage == nil {
			x.tuplesOnPage = make(map[Target]int)
		}
		x.tuplesOnPage[pk]++
		if x.tuplesOnPage[pk] > m.cfg.PromoteTupleToPage {
			m.tuplePromotions.Add(1)
			m.promoteToPageXLocked(x, t.Rel, t.Page)
		}
	case LevelPage:
		if x.pagesOnRel == nil {
			x.pagesOnRel = make(map[string]int)
		}
		x.pagesOnRel[t.Rel]++
		if x.pagesOnRel[t.Rel] > m.cfg.PromotePageToRel {
			m.pagePromotions.Add(1)
			m.promoteToRelationXLocked(x, t.Rel)
		}
	}
}

// coveredXLocked reports whether x already holds a coarser lock covering
// t. Caller holds x.lockMu.
func (m *Manager) coveredXLocked(x *Xact, t Target) bool {
	if t.Level == LevelRelation {
		return false
	}
	if _, ok := x.locks[RelationTarget(t.Rel)]; ok {
		return true
	}
	if t.Level == LevelTuple {
		if _, ok := x.locks[PageTarget(t.Rel, t.Page)]; ok {
			return true
		}
	}
	return false
}

// insertLockXLocked adds (t, x) to the lock table and x's lock set.
// Caller holds x.lockMu; the partition mutex is taken here.
func (m *Manager) insertLockXLocked(x *Xact, t Target) {
	// x.locks and the partition's holder set are kept in sync under
	// x.lockMu, so the transaction's own set doubles as the dup check.
	if _, ok := x.locks[t]; ok {
		return
	}
	p := m.partition(t)
	p.mu.Lock()
	holders := p.locks[t]
	if holders == nil {
		holders = make(map[*Xact]struct{})
		p.locks[t] = holders
	}
	holders[x] = struct{}{}
	p.mu.Unlock()
	if x.locks == nil {
		x.locks = make(map[Target]struct{})
	}
	x.locks[t] = struct{}{}
	m.locksAcquired.Add(1)
	m.bumpLocksCurrent(1)
}

// removeLockXLocked removes (t, x) from the lock table and x's lock set.
// Caller holds x.lockMu.
func (m *Manager) removeLockXLocked(x *Xact, t Target) {
	if _, ok := x.locks[t]; !ok {
		return
	}
	delete(x.locks, t)
	p := m.partition(t)
	p.mu.Lock()
	if holders, ok := p.locks[t]; ok {
		delete(holders, x)
		if len(holders) == 0 {
			delete(p.locks, t)
		}
	}
	p.mu.Unlock()
	m.locksCurrent.Add(-1)
}

// promoteToPageXLocked replaces x's tuple locks on (rel, page) with a
// single page lock. The page lock is inserted BEFORE the tuple locks are
// removed so that a concurrent writer, which checks granularities finest
// to coarsest, can never observe a window with no covering lock (see
// partition.go). Caller holds x.lockMu.
func (m *Manager) promoteToPageXLocked(x *Xact, rel string, page int64) {
	m.insertLockXLocked(x, PageTarget(rel, page))
	for t := range x.locks {
		if t.Level == LevelTuple && t.Rel == rel && t.Page == page {
			m.removeLockXLocked(x, t)
		}
	}
	delete(x.tuplesOnPage, PageTarget(rel, page))
	if x.pagesOnRel == nil {
		x.pagesOnRel = make(map[string]int)
	}
	x.pagesOnRel[rel]++
	if x.pagesOnRel[rel] > m.cfg.PromotePageToRel {
		m.promoteToRelationXLocked(x, rel)
	}
}

// promoteToRelationXLocked replaces all of x's locks on rel with a single
// relation lock, inserting the coarse lock before removing the fine ones
// (same no-uncovered-window invariant as promoteToPageXLocked). Caller
// holds x.lockMu.
func (m *Manager) promoteToRelationXLocked(x *Xact, rel string) {
	m.insertLockXLocked(x, RelationTarget(rel))
	for t := range x.locks {
		if t.Rel == rel && t.Level != LevelRelation {
			m.removeLockXLocked(x, t)
			if t.Level == LevelTuple {
				delete(x.tuplesOnPage, PageTarget(t.Rel, t.Page))
			}
		}
	}
	delete(x.pagesOnRel, rel)
}

// releaseLocksLocked removes every SIREAD lock x holds and bars new
// acquisitions. Caller holds m.mu; x.lockMu is taken here.
func (m *Manager) releaseLocksLocked(x *Xact) {
	x.lockMu.Lock()
	defer x.lockMu.Unlock()
	x.lockingDone = true
	for t := range x.locks {
		m.removeLockXLocked(x, t)
	}
	x.tuplesOnPage = nil
	x.pagesOnRel = nil
}

// DropOwnTupleLock implements the optimization of §7.3: a transaction may
// drop its SIREAD lock on a tuple it subsequently writes, because the
// tuple write lock (the in-progress xmax) outlives it. The engine must
// not call this inside a subtransaction, where a savepoint rollback could
// release the write lock and leave the read unprotected.
func (m *Manager) DropOwnTupleLock(x *Xact, rel string, page int64, key string) {
	x.lockMu.Lock()
	defer x.lockMu.Unlock()
	m.removeLockXLocked(x, TupleTarget(rel, page, key))
}

// PageSplit propagates SIREAD locks held on a split index leaf page to
// the new right sibling, the analogue of PredicateLockPageSplit. Without
// this, entries moved to the new page would escape their gap locks. The
// left and right pages may hash to different partitions; the operation
// serializes through m.mu (so no holder can be cleaned up mid-copy) and
// visits one partition at a time.
func (m *Manager) PageSplit(rel string, left, right int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	lt := PageTarget(rel, left)
	rt := PageTarget(rel, right)

	lp := m.partition(lt)
	lp.mu.Lock()
	holders := make([]*Xact, 0, len(lp.locks[lt]))
	for x := range lp.locks[lt] {
		if x != m.oldCommitted {
			holders = append(holders, x)
		}
	}
	dummySeq, hasDummy := lp.dummySeqs[lt]
	lp.mu.Unlock()

	for _, x := range holders {
		x.lockMu.Lock()
		m.insertLockXLocked(x, rt)
		if x.pagesOnRel == nil {
			x.pagesOnRel = make(map[string]int)
		}
		x.pagesOnRel[rel]++ // promotion bookkeeping only
		x.lockMu.Unlock()
	}
	if hasDummy {
		m.insertDummyLockLocked(rt, dummySeq)
	}
}

// PromoteRelationLocks promotes every fine-grained SIREAD lock on rel to
// relation granularity for its holder. PostgreSQL does this when DDL
// statements such as CLUSTER or ALTER TABLE rewrite a table, invalidating
// physical tuple and page identities (§5.2.1); the engine exposes it via
// Table rewrite operations. Like PageSplit, it spans partitions and so
// serializes through m.mu.
func (m *Manager) PromoteRelationLocks(rel string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	affected := make(map[*Xact]struct{})
	dummySeq := mvcc.InvalidSeqNo
	var dummyTargets []Target
	for i := range m.parts {
		p := &m.parts[i]
		p.mu.Lock()
		for t, hs := range p.locks {
			if t.Rel != rel || t.Level == LevelRelation {
				continue
			}
			for x := range hs {
				if x == m.oldCommitted {
					if s := p.dummySeqs[t]; s > dummySeq {
						dummySeq = s
					}
					dummyTargets = append(dummyTargets, t)
					continue
				}
				affected[x] = struct{}{}
			}
		}
		p.mu.Unlock()
	}
	for x := range affected {
		x.lockMu.Lock()
		m.promoteToRelationXLocked(x, rel)
		x.lockMu.Unlock()
	}
	if dummySeq != mvcc.InvalidSeqNo {
		// Move the dummy transaction's fine locks up as well, coarse
		// lock first.
		m.insertDummyLockLocked(RelationTarget(rel), dummySeq)
		for _, t := range dummyTargets {
			m.removeDummyLockLocked(t)
		}
	}
}

// HoldsLock reports whether x holds a SIREAD lock exactly on t (no
// coarser-cover check). Exposed for tests.
func (m *Manager) HoldsLock(x *Xact, t Target) bool {
	x.lockMu.Lock()
	defer x.lockMu.Unlock()
	_, ok := x.locks[t]
	return ok
}
