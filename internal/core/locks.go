package core

import (
	"pgssi/internal/mvcc"
)

// This file implements the SSI lock manager of §5.2.1: SIREAD-only locks
// at relation / page / tuple granularity, with promotion to coarser
// granularities both for per-transaction thresholds and for global
// capacity. The lock table itself is sharded into hash partitions (see
// partition.go for the layout and the lock-ordering rules); the
// acquisition and release paths below run without the global SSI mutex,
// taking only the owning transaction's lockMu and one partition mutex
// at a time.

// AcquireTupleLock records a SIREAD lock for x on the tuple identified by
// key, whose read version lives on (rel, page).
func (m *Manager) AcquireTupleLock(x *Xact, rel string, page int64, key string) {
	m.acquire(x, TupleTarget(rel, page, key))
}

// AcquirePageLock records a SIREAD lock on a heap or index page. Index
// range scans lock the leaf pages they traverse, which is what detects
// phantoms (§5.2.1).
func (m *Manager) AcquirePageLock(x *Xact, rel string, page int64) {
	m.acquire(x, PageTarget(rel, page))
}

// AcquireRelationLock records a relation-granularity SIREAD lock, used
// for sequential scans and as the fallback for index types without
// predicate-lock support (§7.4).
func (m *Manager) AcquireRelationLock(x *Xact, rel string) {
	m.acquire(x, RelationTarget(rel))
}

// acquire adds a SIREAD lock for x on t without touching the global SSI
// mutex. Callers may hold m.mu (the batch and conflict paths do); the
// ordering mu → lockMu → partition mutex permits that.
func (m *Manager) acquire(x *Xact, t Target) {
	if x.safe.Load() {
		// Safe-snapshot transactions take no SIREAD locks (§4.2).
		return
	}
	x.lockMu.Lock()
	defer x.lockMu.Unlock()
	m.acquireXLocked(x, t)
}

// acquireXLocked adds a SIREAD lock, skipping it if a coarser lock
// already covers the target, and promoting granularity when thresholds
// or the global capacity are exceeded. Caller holds x.lockMu.
func (m *Manager) acquireXLocked(x *Xact, t Target) {
	if x.lockingDone {
		// The transaction finished, was summarized, or moved onto a
		// safe snapshot: its lock set must not grow again.
		return
	}
	if m.coveredXLocked(x, t) {
		return
	}
	if _, dup := x.locks[t]; dup {
		return
	}
	// Enforce the global capacity bound by consolidating this
	// transaction's locks on the relation into a relation lock. The
	// gauge is read without any table-wide lock, so brief overshoot by
	// a few entries under concurrency is possible and acceptable.
	if int(m.locksCurrent.Load()) >= m.cfg.MaxPredicateLocks && t.Level != LevelRelation {
		m.capacityPromotions.Add(1)
		m.promoteToRelationXLocked(x, t.Rel)
		return
	}
	m.insertLockXLocked(x, t)

	switch t.Level {
	case LevelTuple:
		pk := PageTarget(t.Rel, t.Page)
		if x.tuplesOnPage == nil {
			x.tuplesOnPage = make(map[Target]int)
		}
		x.tuplesOnPage[pk]++
		if x.tuplesOnPage[pk] > m.cfg.PromoteTupleToPage {
			m.tuplePromotions.Add(1)
			m.promoteToPageXLocked(x, t.Rel, t.Page)
		}
	case LevelPage:
		if x.pagesOnRel == nil {
			x.pagesOnRel = make(map[string]int)
		}
		x.pagesOnRel[t.Rel]++
		if x.pagesOnRel[t.Rel] > m.cfg.PromotePageToRel {
			m.pagePromotions.Add(1)
			m.promoteToRelationXLocked(x, t.Rel)
		}
	}
}

// coveredXLocked reports whether x already holds a coarser lock covering
// t. Caller holds x.lockMu.
func (m *Manager) coveredXLocked(x *Xact, t Target) bool {
	if t.Level == LevelRelation {
		return false
	}
	if _, ok := x.locks[RelationTarget(t.Rel)]; ok {
		return true
	}
	if t.Level == LevelTuple {
		if _, ok := x.locks[PageTarget(t.Rel, t.Page)]; ok {
			return true
		}
	}
	return false
}

// AcquireTupleLockBatch records SIREAD locks for x on a batch of tuples
// whose read versions share one heap page — semantically identical to
// calling AcquireTupleLock per key, but O(1) in lock-path acquisitions
// where the per-row path is O(rows): x.lockMu is taken once for the
// whole batch, the covered/dup checks run against x's own lock set in
// that single critical section, the surviving inserts are grouped so
// each partition mutex is taken at most once, and promotion bookkeeping
// runs once at batch end. A batch must never span heap pages: the
// engine calls this from inside the page's shared read latch
// (storage.ReadPageBatch), which is what keeps the PR 2
// {visibility, registration} atomicity per page (see partition.go).
//
// It returns relCovered=true when x holds (or, via promotion, just
// acquired) a relation-granularity lock on rel. Lock sets only ever
// coarsen, so a scan can cache that answer and skip the remaining
// pages' batches entirely. The error is ErrSerializationFailure iff x
// has been doomed.
func (m *Manager) AcquireTupleLockBatch(x *Xact, rel string, page int64, keys []string) (relCovered bool, err error) {
	if x.doomed.Load() {
		return false, ErrSerializationFailure
	}
	if x.safe.Load() {
		// Safe-snapshot transactions take no SIREAD locks (§4.2).
		return false, nil
	}
	x.lockMu.Lock()
	relCovered = m.acquireTupleBatchXLocked(x, rel, page, keys)
	x.lockMu.Unlock()
	if x.doomed.Load() {
		return relCovered, ErrSerializationFailure
	}
	return relCovered, nil
}

// acquireTupleBatchXLocked is AcquireTupleLockBatch's critical section.
// Caller holds x.lockMu.
func (m *Manager) acquireTupleBatchXLocked(x *Xact, rel string, page int64, keys []string) (relCovered bool) {
	if x.lockingDone {
		return false
	}
	if _, ok := x.locks[RelationTarget(rel)]; ok {
		return true
	}
	pk := PageTarget(rel, page)
	if _, ok := x.locks[pk]; ok {
		return false
	}
	// Survivors: keys not already tuple-locked by x.
	targets := make([]Target, 0, len(keys))
	for _, k := range keys {
		t := TupleTarget(rel, page, k)
		if _, dup := x.locks[t]; !dup {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		return false
	}
	// Global capacity bound, batch-wise: same trigger as the per-row
	// path (gauge already at the bound), with the same tolerance for
	// brief overshoot under concurrency.
	if int(m.locksCurrent.Load()) >= m.cfg.MaxPredicateLocks {
		m.capacityPromotions.Add(1)
		m.promoteToRelationXLocked(x, rel)
		return true
	}
	// Tuple→page threshold, applied once for the batch: if the batch
	// would cross it, take the page lock directly instead of inserting
	// tuple locks that promotion would immediately remove. Coverage is
	// identical (the page lock covers every tuple in the batch).
	if x.tuplesOnPage == nil {
		x.tuplesOnPage = make(map[Target]int)
	}
	if x.tuplesOnPage[pk]+len(targets) > m.cfg.PromoteTupleToPage {
		m.tuplePromotions.Add(1)
		m.promoteToPageXLocked(x, rel, page)
		_, relCovered = x.locks[RelationTarget(rel)]
		return relCovered
	}
	// Group the surviving inserts by partition; take each partition
	// mutex exactly once, still one at a time (ordering rule unchanged).
	type partBatch struct {
		p  *lockPartition
		ts []Target
	}
	groups := make([]partBatch, 0, 8)
outer:
	for _, t := range targets {
		p := m.partition(t)
		for i := range groups {
			if groups[i].p == p {
				groups[i].ts = append(groups[i].ts, t)
				continue outer
			}
		}
		groups = append(groups, partBatch{p: p, ts: []Target{t}})
	}
	if x.locks == nil {
		x.locks = make(map[Target]struct{}, len(targets))
	}
	// n counts actual holder-set insertions, not batch entries: a key
	// duplicated within one batch hashes to the same target and must
	// move the gauge once (the engine passes dup-free key sets, but the
	// accounting must not depend on that).
	n := 0
	for gi := range groups {
		g := &groups[gi]
		g.p.mu.Lock()
		for _, t := range g.ts {
			holders := g.p.locks[t]
			if holders == nil {
				holders = make(map[*Xact]struct{})
				g.p.locks[t] = holders
			}
			if _, dup := holders[x]; !dup {
				holders[x] = struct{}{}
				n++
			}
		}
		g.p.mu.Unlock()
		for _, t := range g.ts {
			x.locks[t] = struct{}{}
		}
	}
	m.locksAcquired.Add(int64(n))
	m.bumpLocksCurrent(int64(n))
	x.tuplesOnPage[pk] += n
	return false
}

// insertLockXLocked adds (t, x) to the lock table and x's lock set,
// reporting whether a new lock was inserted (false on dup). Caller
// holds x.lockMu; the partition mutex is taken here.
func (m *Manager) insertLockXLocked(x *Xact, t Target) bool {
	// x.locks and the partition's holder set are kept in sync under
	// x.lockMu, so the transaction's own set doubles as the dup check.
	if _, ok := x.locks[t]; ok {
		return false
	}
	p := m.partition(t)
	p.mu.Lock()
	holders := p.locks[t]
	if holders == nil {
		holders = make(map[*Xact]struct{})
		p.locks[t] = holders
	}
	holders[x] = struct{}{}
	p.mu.Unlock()
	if x.locks == nil {
		x.locks = make(map[Target]struct{})
	}
	x.locks[t] = struct{}{}
	m.locksAcquired.Add(1)
	m.bumpLocksCurrent(1)
	return true
}

// removeLockXLocked removes (t, x) from the lock table and x's lock set.
// Caller holds x.lockMu.
func (m *Manager) removeLockXLocked(x *Xact, t Target) {
	if _, ok := x.locks[t]; !ok {
		return
	}
	delete(x.locks, t)
	p := m.partition(t)
	p.mu.Lock()
	if holders, ok := p.locks[t]; ok {
		delete(holders, x)
		if len(holders) == 0 {
			delete(p.locks, t)
		}
	}
	p.mu.Unlock()
	m.locksCurrent.Add(-1)
}

// promoteToPageXLocked replaces x's tuple locks on (rel, page) with a
// single page lock. The page lock is inserted BEFORE the tuple locks are
// removed so that a concurrent writer, which checks granularities finest
// to coarsest, can never observe a window with no covering lock (see
// partition.go). Caller holds x.lockMu.
func (m *Manager) promoteToPageXLocked(x *Xact, rel string, page int64) {
	m.insertLockXLocked(x, PageTarget(rel, page))
	for t := range x.locks {
		if t.Level == LevelTuple && t.Rel == rel && t.Page == page {
			m.removeLockXLocked(x, t)
		}
	}
	delete(x.tuplesOnPage, PageTarget(rel, page))
	if x.pagesOnRel == nil {
		x.pagesOnRel = make(map[string]int)
	}
	x.pagesOnRel[rel]++
	if x.pagesOnRel[rel] > m.cfg.PromotePageToRel {
		m.promoteToRelationXLocked(x, rel)
	}
}

// promoteToRelationXLocked replaces all of x's locks on rel with a single
// relation lock, inserting the coarse lock before removing the fine ones
// (same no-uncovered-window invariant as promoteToPageXLocked). Caller
// holds x.lockMu.
func (m *Manager) promoteToRelationXLocked(x *Xact, rel string) {
	m.insertLockXLocked(x, RelationTarget(rel))
	for t := range x.locks {
		if t.Rel == rel && t.Level != LevelRelation {
			m.removeLockXLocked(x, t)
			if t.Level == LevelTuple {
				delete(x.tuplesOnPage, PageTarget(t.Rel, t.Page))
			}
		}
	}
	delete(x.pagesOnRel, rel)
}

// removal is one (target, holder) pair queued for batched deletion from
// the lock table, grouped by partition index (see flushRemovalsLocked).
type removal struct {
	t Target
	x *Xact
}

// collectLocksLocked freezes x's lock set — setting lockingDone and
// clearing the per-transaction bookkeeping — and queues its (target, x)
// pairs into byPart for a later flushRemovalsLocked, allocating the map
// lazily (pass nil for the first transaction of a batch) and returning
// it. Until the flush, the lock table transiently holds entries for a
// transaction whose own set is empty; caller must hold m.mu across
// collect+flush, which makes the desync unobservable (see the
// batch-path rules in partition.go).
func (m *Manager) collectLocksLocked(x *Xact, byPart map[uint64][]removal) map[uint64][]removal {
	x.lockMu.Lock()
	if len(x.locks) > 0 && byPart == nil {
		byPart = make(map[uint64][]removal, 8)
	}
	x.lockingDone = true
	for t := range x.locks {
		i := m.partitionIndex(t)
		byPart[i] = append(byPart[i], removal{t, x})
	}
	x.locks = nil
	x.tuplesOnPage = nil
	x.pagesOnRel = nil
	x.lockMu.Unlock()
	return byPart
}

// flushRemovalsLocked deletes the queued (target, holder) pairs from
// the lock table, taking each partition mutex exactly once for the
// whole batch — the release-side mirror of AcquireTupleLockBatch's
// insert grouping. Caller holds m.mu.
func (m *Manager) flushRemovalsLocked(byPart map[uint64][]removal) {
	for i, rs := range byPart {
		p := &m.parts[i]
		p.mu.Lock()
		for _, r := range rs {
			if holders, ok := p.locks[r.t]; ok {
				if _, held := holders[r.x]; held {
					delete(holders, r.x)
					m.locksCurrent.Add(-1)
					if len(holders) == 0 {
						delete(p.locks, r.t)
					}
				}
			}
		}
		p.mu.Unlock()
	}
}

// releaseLocksLocked removes every SIREAD lock x holds and bars new
// acquisitions, sweeping each lock-table partition at most once.
// Caller holds m.mu; x.lockMu is taken here.
func (m *Manager) releaseLocksLocked(x *Xact) {
	m.flushRemovalsLocked(m.collectLocksLocked(x, nil))
}

// DropOwnTupleLock implements the optimization of §7.3: a transaction may
// drop its SIREAD lock on a tuple it subsequently writes, because the
// tuple write lock (the in-progress xmax) outlives it. The engine must
// not call this inside a subtransaction, where a savepoint rollback could
// release the write lock and leave the read unprotected.
func (m *Manager) DropOwnTupleLock(x *Xact, rel string, page int64, key string) {
	x.lockMu.Lock()
	defer x.lockMu.Unlock()
	m.removeLockXLocked(x, TupleTarget(rel, page, key))
}

// PageSplit propagates SIREAD locks held on a split index leaf page to
// the new right sibling, the analogue of PredicateLockPageSplit. Without
// this, entries moved to the new page would escape their gap locks. The
// left and right pages may hash to different partitions; the operation
// serializes through m.mu (so no holder can be cleaned up mid-copy) and
// visits one partition at a time.
func (m *Manager) PageSplit(rel string, left, right int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	lt := PageTarget(rel, left)
	rt := PageTarget(rel, right)

	lp := m.partition(lt)
	lp.mu.Lock()
	holders := make([]*Xact, 0, len(lp.locks[lt]))
	for x := range lp.locks[lt] {
		if x != m.oldCommitted {
			holders = append(holders, x)
		}
	}
	dummySeq, hasDummy := lp.dummySeqs[lt]
	lp.mu.Unlock()

	for _, x := range holders {
		x.lockMu.Lock()
		if !m.coveredXLocked(x, rt) && m.insertLockXLocked(x, rt) {
			if x.pagesOnRel == nil {
				x.pagesOnRel = make(map[string]int)
			}
			x.pagesOnRel[rel]++
			// Apply the §5.2.1 capacity bound here too: a transaction
			// accumulating page locks through index splits must hit the
			// page→relation threshold exactly as if it had acquired
			// them organically, or the promotion bookkeeping leaks
			// (split-derived locks counted but never consolidated). The
			// mu → lockMu → partition order permits the promotion from
			// under m.mu.
			if x.pagesOnRel[rel] > m.cfg.PromotePageToRel {
				m.pagePromotions.Add(1)
				m.promoteToRelationXLocked(x, rel)
			}
		}
		x.lockMu.Unlock()
	}
	if hasDummy {
		m.insertDummyLockLocked(rt, dummySeq)
	}
}

// PromoteRelationLocks promotes every fine-grained SIREAD lock on rel to
// relation granularity for its holder. PostgreSQL does this when DDL
// statements such as CLUSTER or ALTER TABLE rewrite a table, invalidating
// physical tuple and page identities (§5.2.1); the engine exposes it via
// Table rewrite operations. Like PageSplit, it spans partitions and so
// serializes through m.mu.
func (m *Manager) PromoteRelationLocks(rel string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	affected := make(map[*Xact]struct{})
	dummySeq := mvcc.InvalidSeqNo
	var dummyTargets []Target
	for i := range m.parts {
		p := &m.parts[i]
		p.mu.Lock()
		for t, hs := range p.locks {
			if t.Rel != rel || t.Level == LevelRelation {
				continue
			}
			for x := range hs {
				if x == m.oldCommitted {
					if s := p.dummySeqs[t]; s > dummySeq {
						dummySeq = s
					}
					dummyTargets = append(dummyTargets, t)
					continue
				}
				affected[x] = struct{}{}
			}
		}
		p.mu.Unlock()
	}
	for x := range affected {
		x.lockMu.Lock()
		m.promoteToRelationXLocked(x, rel)
		x.lockMu.Unlock()
	}
	if dummySeq != mvcc.InvalidSeqNo {
		// Move the dummy transaction's fine locks up as well, coarse
		// lock first.
		m.insertDummyLockLocked(RelationTarget(rel), dummySeq)
		for _, t := range dummyTargets {
			m.removeDummyLockLocked(t)
		}
	}
}

// HoldsLock reports whether x holds a SIREAD lock exactly on t (no
// coarser-cover check). Exposed for tests.
func (m *Manager) HoldsLock(x *Xact, t Target) bool {
	x.lockMu.Lock()
	defer x.lockMu.Unlock()
	_, ok := x.locks[t]
	return ok
}
