package core

import (
	"pgssi/internal/mvcc"
)

// This file implements the SSI lock manager of §5.2.1: SIREAD-only locks
// at relation / page / tuple granularity, with promotion to coarser
// granularities both for per-transaction thresholds and for global
// capacity, and the write-side conflict check that walks granularities
// coarsest to finest.

// AcquireTupleLock records a SIREAD lock for x on the tuple identified by
// key, whose read version lives on (rel, page).
func (m *Manager) AcquireTupleLock(x *Xact, rel string, page int64, key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.acquireLocked(x, TupleTarget(rel, page, key))
}

// AcquirePageLock records a SIREAD lock on a heap or index page. Index
// range scans lock the leaf pages they traverse, which is what detects
// phantoms (§5.2.1).
func (m *Manager) AcquirePageLock(x *Xact, rel string, page int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.acquireLocked(x, PageTarget(rel, page))
}

// AcquireRelationLock records a relation-granularity SIREAD lock, used
// for sequential scans and as the fallback for index types without
// predicate-lock support (§7.4).
func (m *Manager) AcquireRelationLock(x *Xact, rel string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.acquireLocked(x, RelationTarget(rel))
}

// acquireLocked adds a SIREAD lock, skipping it if a coarser lock already
// covers the target, and promoting granularity when thresholds or the
// global capacity are exceeded. Caller holds m.mu.
func (m *Manager) acquireLocked(x *Xact, t Target) {
	if x.safe.Load() || x.committed || x.aborted {
		// Safe-snapshot transactions take no SIREAD locks (§4.2).
		return
	}
	if m.coveredLocked(x, t) {
		return
	}
	if _, dup := x.locks[t]; dup {
		return
	}
	// Enforce the global capacity bound by consolidating this
	// transaction's locks on the relation into a relation lock.
	if int(m.stats.LocksCurrent) >= m.cfg.MaxPredicateLocks && t.Level != LevelRelation {
		m.stats.CapacityPromotions++
		m.promoteToRelationLocked(x, t.Rel)
		return
	}
	m.insertLockLocked(x, t)

	switch t.Level {
	case LevelTuple:
		pk := PageTarget(t.Rel, t.Page)
		if x.tuplesOnPage == nil {
			x.tuplesOnPage = make(map[Target]int)
		}
		x.tuplesOnPage[pk]++
		if x.tuplesOnPage[pk] > m.cfg.PromoteTupleToPage {
			m.stats.TuplePromotions++
			m.promoteToPageLocked(x, t.Rel, t.Page)
		}
	case LevelPage:
		if x.pagesOnRel == nil {
			x.pagesOnRel = make(map[string]int)
		}
		x.pagesOnRel[t.Rel]++
		if x.pagesOnRel[t.Rel] > m.cfg.PromotePageToRel {
			m.stats.PagePromotions++
			m.promoteToRelationLocked(x, t.Rel)
		}
	}
}

// coveredLocked reports whether x already holds a coarser lock covering t.
func (m *Manager) coveredLocked(x *Xact, t Target) bool {
	if t.Level == LevelRelation {
		return false
	}
	if _, ok := x.locks[RelationTarget(t.Rel)]; ok {
		return true
	}
	if t.Level == LevelTuple {
		if _, ok := x.locks[PageTarget(t.Rel, t.Page)]; ok {
			return true
		}
	}
	return false
}

// insertLockLocked adds (t, x) to the lock table and x's lock set.
func (m *Manager) insertLockLocked(x *Xact, t Target) {
	holders := m.locks[t]
	if holders == nil {
		holders = make(map[*Xact]struct{})
		m.locks[t] = holders
	}
	if _, ok := holders[x]; ok {
		return
	}
	holders[x] = struct{}{}
	if x.locks == nil {
		x.locks = make(map[Target]struct{})
	}
	x.locks[t] = struct{}{}
	m.stats.LocksAcquired++
	m.stats.LocksCurrent++
	if m.stats.LocksCurrent > m.stats.LocksPeak {
		m.stats.LocksPeak = m.stats.LocksCurrent
	}
}

// removeLockLocked removes (t, x) from the lock table and x's lock set.
func (m *Manager) removeLockLocked(x *Xact, t Target) {
	if _, ok := x.locks[t]; !ok {
		return
	}
	delete(x.locks, t)
	if holders, ok := m.locks[t]; ok {
		delete(holders, x)
		if len(holders) == 0 {
			delete(m.locks, t)
		}
	}
	m.stats.LocksCurrent--
}

// promoteToPageLocked replaces x's tuple locks on (rel, page) with a
// single page lock.
func (m *Manager) promoteToPageLocked(x *Xact, rel string, page int64) {
	for t := range x.locks {
		if t.Level == LevelTuple && t.Rel == rel && t.Page == page {
			m.removeLockLocked(x, t)
		}
	}
	delete(x.tuplesOnPage, PageTarget(rel, page))
	m.insertLockLocked(x, PageTarget(rel, page))
	if x.pagesOnRel == nil {
		x.pagesOnRel = make(map[string]int)
	}
	x.pagesOnRel[rel]++
	if x.pagesOnRel[rel] > m.cfg.PromotePageToRel {
		m.promoteToRelationLocked(x, rel)
	}
}

// promoteToRelationLocked replaces all of x's locks on rel with a single
// relation lock.
func (m *Manager) promoteToRelationLocked(x *Xact, rel string) {
	for t := range x.locks {
		if t.Rel == rel && t.Level != LevelRelation {
			m.removeLockLocked(x, t)
			if t.Level == LevelTuple {
				delete(x.tuplesOnPage, PageTarget(t.Rel, t.Page))
			}
		}
	}
	delete(x.pagesOnRel, rel)
	m.insertLockLocked(x, RelationTarget(rel))
}

// releaseLocksLocked removes every SIREAD lock x holds.
func (m *Manager) releaseLocksLocked(x *Xact) {
	for t := range x.locks {
		m.removeLockLocked(x, t)
	}
	x.tuplesOnPage = nil
	x.pagesOnRel = nil
}

// DropOwnTupleLock implements the optimization of §7.3: a transaction may
// drop its SIREAD lock on a tuple it subsequently writes, because the
// tuple write lock (the in-progress xmax) outlives it. The engine must
// not call this inside a subtransaction, where a savepoint rollback could
// release the write lock and leave the read unprotected.
func (m *Manager) DropOwnTupleLock(x *Xact, rel string, page int64, key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.removeLockLocked(x, TupleTarget(rel, page, key))
}

// PageSplit propagates SIREAD locks held on a split index leaf page to
// the new right sibling, the analogue of PredicateLockPageSplit. Without
// this, entries moved to the new page would escape their gap locks.
func (m *Manager) PageSplit(rel string, left, right int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	lt := PageTarget(rel, left)
	rt := PageTarget(rel, right)
	if holders, ok := m.locks[lt]; ok {
		for x := range holders {
			if x == m.oldCommitted {
				m.insertDummyLockLocked(rt, m.oldCommittedSeqs[lt])
				continue
			}
			m.insertLockLocked(x, rt)
			if x.pagesOnRel == nil {
				x.pagesOnRel = make(map[string]int)
			}
			x.pagesOnRel[rel]++ // promotion bookkeeping only
		}
	}
	if seq, ok := m.oldCommittedSeqs[lt]; ok {
		m.insertDummyLockLocked(rt, seq)
	}
}

// PromoteRelationLocks promotes every fine-grained SIREAD lock on rel to
// relation granularity for its holder. PostgreSQL does this when DDL
// statements such as CLUSTER or ALTER TABLE rewrite a table, invalidating
// physical tuple and page identities (§5.2.1); the engine exposes it via
// Table rewrite operations.
func (m *Manager) PromoteRelationLocks(rel string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var affected []*Xact
	dummySeq := mvcc.InvalidSeqNo
	for t, holders := range m.locks {
		if t.Rel != rel || t.Level == LevelRelation {
			continue
		}
		for x := range holders {
			if x == m.oldCommitted {
				if s := m.oldCommittedSeqs[t]; s > dummySeq {
					dummySeq = s
				}
				continue
			}
			affected = append(affected, x)
		}
	}
	for _, x := range affected {
		m.promoteToRelationLocked(x, rel)
	}
	if dummySeq != mvcc.InvalidSeqNo {
		// Move the dummy transaction's fine locks up as well.
		for t := range m.oldCommittedSeqs {
			if t.Rel == rel && t.Level != LevelRelation {
				m.removeDummyLockLocked(t)
			}
		}
		m.insertDummyLockLocked(RelationTarget(rel), dummySeq)
	}
}

// insertDummyLockLocked records a SIREAD lock held by the summarized
// dummy transaction, remembering the latest commit seq of any holder so
// the lock can eventually be cleaned up (§6.2).
func (m *Manager) insertDummyLockLocked(t Target, seq mvcc.SeqNo) {
	holders := m.locks[t]
	if holders == nil {
		holders = make(map[*Xact]struct{})
		m.locks[t] = holders
	}
	if _, ok := holders[m.oldCommitted]; !ok {
		holders[m.oldCommitted] = struct{}{}
		m.stats.LocksCurrent++
		if m.stats.LocksCurrent > m.stats.LocksPeak {
			m.stats.LocksPeak = m.stats.LocksCurrent
		}
	}
	if seq > m.oldCommittedSeqs[t] {
		m.oldCommittedSeqs[t] = seq
	}
}

// removeDummyLockLocked removes the dummy transaction's lock on t.
func (m *Manager) removeDummyLockLocked(t Target) {
	if _, ok := m.oldCommittedSeqs[t]; !ok {
		return
	}
	delete(m.oldCommittedSeqs, t)
	if holders, ok := m.locks[t]; ok {
		if _, held := holders[m.oldCommitted]; held {
			delete(holders, m.oldCommitted)
			m.stats.LocksCurrent--
		}
		if len(holders) == 0 {
			delete(m.locks, t)
		}
	}
}

// HoldsLock reports whether x holds a SIREAD lock exactly on t (no
// coarser-cover check). Exposed for tests.
func (m *Manager) HoldsLock(x *Xact, t Target) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := x.locks[t]
	return ok
}
