// Package btree implements a B+-tree over string keys with stable leaf
// page identifiers. The SSI lock manager (internal/core) takes SIREAD
// locks on the leaf pages a scan visits — PostgreSQL 9.1's page-granular
// index-range locking (§5.2.1) — so the tree reports which leaf pages
// each operation touched, and page splits are surfaced to the caller so
// predicate locks can be propagated to the new right sibling, mirroring
// PredicateLockPageSplit.
//
// Keys are unique. Non-unique secondary indexes are built by suffixing
// the primary key onto the index key, the standard composite-key trick.
//
// For the absent-key/gap case the tree lock itself plays the role the
// per-page read latch (internal/storage/latch.go) plays for heap
// tuples: Lookup and Range invoke their onPage callback — where the
// engine takes the leaf-page SIREAD gap lock — while the tree lock is
// held, and before the heap read, so an insert (which runs its
// CheckIndexInsert probe after taking the tree's write lock) either
// sees the gap lock or has already placed its heap version where the
// reader's visibility check reports it as a conflict. There is no
// check-then-register window on the gap path.
package btree

import (
	"sort"
	"sync"
)

// degree is the maximum number of keys per node; nodes split when they
// exceed it. Chosen small enough that realistic tables span many leaf
// pages, giving page-granularity locking something to do.
const degree = 64

// PageID identifies a leaf page. IDs are never reused.
type PageID int64

// Split records that a leaf page split during an insert: locks held on
// Left must be duplicated onto Right (PredicateLockPageSplit).
type Split struct {
	Left, Right PageID
}

type node struct {
	// keys are the separator keys (internal) or entry keys (leaf).
	keys []string
	// children is nil for leaves.
	children []*node
	// vals parallels keys in leaves.
	vals []string
	// page is the leaf page ID; zero for internal nodes.
	page PageID
	// next links leaves left-to-right.
	next *node
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is a concurrency-safe B+-tree. A single RWMutex guards the whole
// tree; PostgreSQL's per-page latching is unnecessary here because the
// interesting concurrency control happens a level up.
type Tree struct {
	mu       sync.RWMutex //ssi:lock level=10 name=btree.tree
	root     *node
	nextPage PageID
	size     int
}

// New returns an empty tree.
func New() *Tree {
	t := &Tree{nextPage: 1}
	t.root = &node{page: t.allocPage()}
	return t
}

func (t *Tree) allocPage() PageID {
	p := t.nextPage
	t.nextPage++
	return p
}

// Len returns the number of entries.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Lookup returns the value stored under key and the leaf page that holds
// (or would hold) the key. The page is returned even on a miss so the
// caller can SIREAD-lock the gap and detect phantom inserts.
//
// If onPage is non-nil it is invoked with the leaf page while the tree
// lock is still held. Acquiring the SIREAD gap lock inside the callback
// closes the race in which an insert lands on the page (and runs its
// conflict check) between the lookup and the lock acquisition — the
// moral equivalent of PostgreSQL acquiring the predicate lock while
// holding the index page latch.
func (t *Tree) Lookup(key string, onPage func(PageID)) (val string, ok bool, page PageID) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf() {
		n = n.children[childIndex(n.keys, key)]
	}
	if onPage != nil {
		onPage(n.page)
	}
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true, n.page
	}
	return "", false, n.page
}

// Insert stores key → val, replacing any existing value. It returns the
// leaf page that received the entry, whether the key was newly added, and
// any splits performed (leaf splits first, so callers can propagate
// predicate locks).
func (t *Tree) Insert(key, val string) (page PageID, added bool, splits []Split) {
	t.mu.Lock()
	defer t.mu.Unlock()
	page, added, splits = t.insert(t.root, key, val)
	if len(t.root.keys) > degree {
		// Split the root: the old root becomes the left child.
		old := t.root
		mid, right, sp := t.splitNode(old)
		t.root = &node{
			keys:     []string{mid},
			children: []*node{old, right},
		}
		if sp != nil {
			splits = append(splits, *sp)
		}
	}
	if added {
		t.size++
	}
	return page, added, splits
}

func (t *Tree) insert(n *node, key, val string) (PageID, bool, []Split) {
	if n.leaf() {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = val
			return n.page, false, nil
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, "")
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		return n.page, true, nil
	}
	ci := childIndex(n.keys, key)
	child := n.children[ci]
	page, added, splits := t.insert(child, key, val)
	if len(child.keys) > degree {
		mid, right, sp := t.splitNode(child)
		n.keys = append(n.keys, "")
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = mid
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = right
		if sp != nil {
			splits = append(splits, *sp)
			// The entry may have landed on the new right page.
			if page == sp.Left && right.leaf() {
				if i := sort.SearchStrings(right.keys, key); i < len(right.keys) && right.keys[i] == key {
					page = right.page
				}
			}
		}
	}
	return page, added, splits
}

// splitNode splits an over-full node in half, returning the separator
// key, the new right sibling, and (for leaves) the split record.
func (t *Tree) splitNode(n *node) (string, *node, *Split) {
	mid := len(n.keys) / 2
	right := &node{}
	if n.leaf() {
		right.page = t.allocPage()
		right.keys = append(right.keys, n.keys[mid:]...)
		right.vals = append(right.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		right.next = n.next
		n.next = right
		return right.keys[0], right, &Split{Left: n.page, Right: right.page}
	}
	sep := n.keys[mid]
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right, nil
}

// Delete removes key if present, returning the leaf page it occupied (or
// would occupy) and whether a removal happened. Leaves are not merged;
// PostgreSQL handles page deletion by moving predicate locks, but an
// append-mostly simulation does not need reclamation for correctness.
func (t *Tree) Delete(key string) (page PageID, removed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for !n.leaf() {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		t.size--
		return n.page, true
	}
	return n.page, false
}

// Range invokes fn for each entry with lo <= key < hi in ascending order
// (hi == "" means unbounded) and returns the leaf pages visited,
// including the page containing the first key past the range — locking
// that page covers the gap beyond the last returned entry, which is what
// makes phantom inserts at the range boundary detectable. fn returning
// false stops the scan early.
//
// onPage, if non-nil, is invoked for each visited leaf page under the
// tree lock, before any of that page's entries are delivered; see Lookup
// for why gap locks must be taken there.
func (t *Tree) Range(lo, hi string, onPage func(PageID), fn func(key, val string) bool) []PageID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf() {
		n = n.children[childIndex(n.keys, lo)]
	}
	var pages []PageID
	stopped := false
	for n != nil {
		pages = append(pages, n.page)
		if onPage != nil {
			onPage(n.page)
		}
		i := sort.SearchStrings(n.keys, lo)
		for ; i < len(n.keys); i++ {
			if hi != "" && n.keys[i] >= hi {
				return pages
			}
			if !fn(n.keys[i], n.vals[i]) {
				stopped = true
				break
			}
		}
		if stopped {
			return pages
		}
		n = n.next
	}
	return pages
}

// AllPages returns the IDs of every leaf page, left to right. A
// full-index scan locks all of them (callers typically promote to a
// relation lock instead).
func (t *Tree) AllPages() []PageID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	var pages []PageID
	for ; n != nil; n = n.next {
		pages = append(pages, n.page)
	}
	return pages
}

// childIndex returns the child slot to descend into for key.
func childIndex(keys []string, key string) int {
	// Child i holds keys in [keys[i-1], keys[i]); descend right on
	// equality so leaf separator invariants hold.
	return sort.Search(len(keys), func(i int) bool { return key < keys[i] })
}

// CheckInvariants verifies ordering, fanout, and leaf-chain consistency,
// returning a description of the first violation found, or "". It exists
// for the property-based tests.
func (t *Tree) CheckInvariants() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return checkNode(t.root, "", "", t.root)
}

func checkNode(n *node, lo, hi string, root *node) string {
	if len(n.keys) > degree {
		return "node exceeds degree"
	}
	for i := 1; i < len(n.keys); i++ {
		if n.keys[i-1] >= n.keys[i] {
			return "keys out of order"
		}
	}
	for i, k := range n.keys {
		if lo != "" && k < lo {
			return "key below subtree lower bound"
		}
		if hi != "" && k >= hi && n.leaf() {
			return "leaf key at or above subtree upper bound"
		}
		_ = i
	}
	if n.leaf() {
		if len(n.keys) != len(n.vals) {
			return "leaf keys/vals length mismatch"
		}
		if n.page == 0 {
			return "leaf missing page id"
		}
		return ""
	}
	if len(n.children) != len(n.keys)+1 {
		return "internal fanout mismatch"
	}
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = n.keys[i-1]
		}
		if i < len(n.keys) {
			chi = n.keys[i]
		}
		if msg := checkNode(c, clo, chi, root); msg != "" {
			return msg
		}
	}
	return ""
}
