package btree

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	_, ok, page := tr.Lookup("x", nil)
	if ok {
		t.Fatal("lookup in empty tree must miss")
	}
	if page == 0 {
		t.Fatal("even a miss must name the gap page")
	}
	pages := tr.Range("", "", nil, func(string, string) bool { t.Fatal("no entries expected"); return false })
	if len(pages) != 1 {
		t.Fatalf("empty range should visit exactly the root leaf, got %d pages", len(pages))
	}
}

func TestInsertLookupDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%04d", i)
		if _, added, _ := tr.Insert(k, k+"v"); !added {
			t.Fatalf("insert %s reported not-added", k)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tr.Len())
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%04d", i)
		v, ok, _ := tr.Lookup(k, nil)
		if !ok || v != k+"v" {
			t.Fatalf("lookup %s = %q, %v", k, v, ok)
		}
	}
	// Overwrite does not add.
	if _, added, _ := tr.Insert("k0000", "new"); added {
		t.Fatal("overwrite must not report added")
	}
	if v, _, _ := tr.Lookup("k0000", nil); v != "new" {
		t.Fatalf("overwrite lost: %q", v)
	}
	// Delete half.
	for i := 0; i < 500; i += 2 {
		k := fmt.Sprintf("k%04d", i)
		if _, removed := tr.Delete(k); !removed {
			t.Fatalf("delete %s failed", k)
		}
	}
	if tr.Len() != 250 {
		t.Fatalf("Len = %d, want 250", tr.Len())
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("invariant violated after deletes: %s", msg)
	}
}

func TestRangeOrderAndBounds(t *testing.T) {
	tr := New()
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("%04d", i*2)
		tr.Insert(k, "")
	}
	var got []string
	tr.Range("0100", "0200", nil, func(k, _ string) bool {
		got = append(got, k)
		return true
	})
	var want []string
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("%04d", i*2)
		if k >= "0100" && k < "0200" {
			want = append(want, k)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("range returned %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("range[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("range results not sorted")
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(fmt.Sprintf("%03d", i), "")
	}
	n := 0
	tr.Range("", "", nil, func(string, string) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("scan visited %d keys, want 10", n)
	}
}

func TestOnPageCallbackCoversVisitedLeaves(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(fmt.Sprintf("%05d", i), "")
	}
	var cbPages []PageID
	retPages := tr.Range("", "", func(p PageID) { cbPages = append(cbPages, p) }, func(string, string) bool { return true })
	if len(cbPages) != len(retPages) {
		t.Fatalf("callback saw %d pages, return value has %d", len(cbPages), len(retPages))
	}
	for i := range cbPages {
		if cbPages[i] != retPages[i] {
			t.Fatalf("page %d mismatch: %d vs %d", i, cbPages[i], retPages[i])
		}
	}
	if len(retPages) < 2 {
		t.Fatalf("1000 keys should span multiple leaves, got %d", len(retPages))
	}
}

func TestSplitsReported(t *testing.T) {
	tr := New()
	seenSplit := false
	pageOf := map[string]PageID{}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("%05d", i)
		page, _, splits := tr.Insert(k, "")
		pageOf[k] = page
		for _, sp := range splits {
			seenSplit = true
			if sp.Left == sp.Right {
				t.Fatal("split with identical pages")
			}
			// Update our view of key → page for moved keys.
			for kk := range pageOf {
				_, ok2, lp := tr.Lookup(kk, nil)
				if !ok2 {
					t.Fatalf("key %s lost after split", kk)
				}
				pageOf[kk] = lp
			}
		}
	}
	if !seenSplit {
		t.Fatal("2000 sequential inserts should split leaves")
	}
	// Reported page must match the lookup's view.
	for k, p := range pageOf {
		if _, _, lp := tr.Lookup(k, nil); lp != p {
			t.Fatalf("key %s: tracked page %d, lookup page %d", k, p, lp)
		}
	}
}

func TestAllPages(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i++ {
		tr.Insert(fmt.Sprintf("%04d", i), "")
	}
	pages := tr.AllPages()
	scanned := tr.Range("", "", nil, func(string, string) bool { return true })
	if len(pages) != len(scanned) {
		t.Fatalf("AllPages %d != full scan pages %d", len(pages), len(scanned))
	}
}

// Property: after arbitrary inserts and deletes, the tree agrees with a
// reference map and keeps its structural invariants.
func TestQuickTreeMatchesReferenceMap(t *testing.T) {
	f := func(seed uint64, opCount uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		tr := New()
		ref := map[string]string{}
		n := int(opCount)*4 + 50
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("%03d", rng.IntN(200))
			switch rng.IntN(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", i)
				tr.Insert(k, v)
				ref[k] = v
			case 2:
				tr.Delete(k)
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		if tr.CheckInvariants() != "" {
			return false
		}
		for k, v := range ref {
			got, ok, _ := tr.Lookup(k, nil)
			if !ok || got != v {
				return false
			}
		}
		// Full scan returns exactly the reference keys, sorted.
		var keys []string
		tr.Range("", "", nil, func(k, v string) bool {
			if ref[k] != v {
				return false
			}
			keys = append(keys, k)
			return true
		})
		return len(keys) == len(ref) && sort.StringsAreSorted(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every range query agrees with the reference map.
func TestQuickRangeMatchesReference(t *testing.T) {
	tr := New()
	ref := map[string]bool{}
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("%05d", rng.IntN(10000))
		tr.Insert(k, "")
		ref[k] = true
	}
	f := func(a, b uint16) bool {
		lo := fmt.Sprintf("%05d", int(a)%10000)
		hi := fmt.Sprintf("%05d", int(b)%10000)
		if hi < lo {
			lo, hi = hi, lo
		}
		want := 0
		for k := range ref {
			if k >= lo && k < hi {
				want++
			}
		}
		got := 0
		tr.Range(lo, hi, nil, func(string, string) bool { got++; return true })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
