package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand/v2"
	"strings"
	"testing"

	"pgssi"
)

// sampleRequests covers every opcode with non-trivial field values.
func sampleRequests() []Request {
	return []Request{
		{Op: OpBegin, Isolation: pgssi.Serializable, Flags: FlagReadOnly | FlagDeferrable},
		{Op: OpBegin, Isolation: pgssi.SerializableS2PL},
		{Op: OpGet, Handle: 7, Table: "kv", Key: "alpha"},
		{Op: OpPut, Handle: 1 << 40, Table: "kv", Key: "k", Value: []byte{0, 1, 2, 0xff}},
		{Op: OpInsert, Handle: 2, Table: "t", Key: "", Value: []byte{}},
		{Op: OpUpdate, Handle: 3, Table: "t", Key: "k\x00weird", Value: []byte("v")},
		{Op: OpDelete, Handle: 4, Table: "t", Key: "k"},
		{Op: OpScan, Handle: 5, Table: "kv", Key: "a", Hi: "z", Limit: 128},
		{Op: OpCommit, Handle: 6},
		{Op: OpRollback, Handle: 8},
		{Op: OpSavepoint, Handle: 9, Key: "sp1"},
		{Op: OpReleaseSavepoint, Handle: 9, Key: "sp1"},
		{Op: OpRollbackToSavepoint, Handle: 9, Key: "sp1"},
		{Op: OpCreateTable, Table: "newtable"},
		{Op: OpPing},
	}
}

func sampleResponses() []Response {
	return []Response{
		{Status: pgssi.StatusOK},
		{Status: pgssi.StatusOK, Handle: 42},
		{Status: pgssi.StatusOK, Value: []byte("hello"), Found: true},
		{Status: pgssi.StatusNotFound},
		{Status: pgssi.StatusSerializationFailure},
		{Status: pgssi.StatusOK, Rows: []pgssi.KV{}},
		{Status: pgssi.StatusOK, Rows: []pgssi.KV{{Key: "a", Value: []byte("1")}, {Key: "b", Value: []byte{}}}},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range sampleRequests() {
		body := AppendRequest(nil, &req)
		got, err := DecodeRequest(body)
		if err != nil {
			t.Fatalf("%v: decode: %v", req.Op, err)
		}
		// Encode normalizes nil vs empty Value; compare re-encoded.
		if !bytes.Equal(AppendRequest(nil, &got), body) {
			t.Fatalf("%v: round trip mismatch:\n in: %+v\nout: %+v", req.Op, req, got)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for i, resp := range sampleResponses() {
		body := AppendResponse(nil, &resp)
		got, err := DecodeResponse(body)
		if err != nil {
			t.Fatalf("resp %d: decode: %v", i, err)
		}
		if got.Status != resp.Status || got.Handle != resp.Handle || got.Found != resp.Found ||
			!bytes.Equal(got.Value, resp.Value) || len(got.Rows) != len(resp.Rows) {
			t.Fatalf("resp %d mismatch:\n in: %+v\nout: %+v", i, resp, got)
		}
		for j := range resp.Rows {
			if got.Rows[j].Key != resp.Rows[j].Key || !bytes.Equal(got.Rows[j].Value, resp.Rows[j].Value) {
				t.Fatalf("resp %d row %d mismatch", i, j)
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{{}, {1}, []byte(strings.Repeat("x", 4096))}
	for _, b := range bodies {
		if err := WriteFrame(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for _, want := range bodies {
		got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: got %d bytes want %d", len(got), len(want))
		}
		scratch = got[:0]
	}
}

// TestFrameCorruption flips every byte position of a framed message and
// requires ReadFrame to reject the change (or, for length-field edits
// that still parse, to not return the original body as valid) — and
// never to panic.
func TestFrameCorruption(t *testing.T) {
	var buf bytes.Buffer
	body := AppendRequest(nil, &Request{Op: OpPut, Handle: 9, Table: "kv", Key: "key", Value: []byte("value")})
	if err := WriteFrame(&buf, body); err != nil {
		t.Fatal(err)
	}
	framed := buf.Bytes()
	for pos := 0; pos < len(framed); pos++ {
		for _, delta := range []byte{0x01, 0x80, 0xff} {
			corrupt := append([]byte(nil), framed...)
			corrupt[pos] ^= delta
			got, err := ReadFrame(bytes.NewReader(corrupt), nil)
			if err == nil && bytes.Equal(got, body) {
				t.Fatalf("corruption at byte %d (^%#x) went undetected", pos, delta)
			}
		}
	}
}

// TestFrameLimits exercises the length-field edges: a huge advertised
// length must fail fast without attempting the allocation, and a length
// below the header overhead must fail.
func TestFrameLimits(t *testing.T) {
	var hdr [9]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(MaxFrame+1))
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), nil); err != ErrFrameTooLarge {
		t.Fatalf("oversized frame: got %v", err)
	}
	binary.BigEndian.PutUint32(hdr[0:4], 4) // < frame overhead
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), nil); err != ErrTruncated {
		t.Fatalf("undersized frame: got %v", err)
	}
	binary.BigEndian.PutUint32(hdr[0:4], 100) // truncated stream
	hdr[4] = Version
	stream := append(append([]byte(nil), hdr[:]...), 'x') // partial body
	if _, err := ReadFrame(bytes.NewReader(stream), nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: got %v", err)
	}
	hdr2 := [9]byte{}
	binary.BigEndian.PutUint32(hdr2[0:4], 5)
	hdr2[4] = Version + 1
	if _, err := ReadFrame(bytes.NewReader(hdr2[:]), nil); err == nil {
		t.Fatal("wrong version accepted")
	}
}

// TestDecodeMalformedNoPanic drives the message decoders with random
// mutations of valid bodies and pure noise; any outcome but a panic is
// acceptable, and errors must be returned (not swallowed) for truncated
// prefixes of valid messages.
func TestDecodeMalformedNoPanic(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	var seeds [][]byte
	for _, req := range sampleRequests() {
		seeds = append(seeds, AppendRequest(nil, &req))
	}
	for _, resp := range sampleResponses() {
		seeds = append(seeds, AppendResponse(nil, &resp))
	}
	for iter := 0; iter < 20000; iter++ {
		var b []byte
		switch iter % 3 {
		case 0: // mutate a valid body
			src := seeds[rng.IntN(len(seeds))]
			b = append([]byte(nil), src...)
			for n := rng.IntN(4) + 1; n > 0 && len(b) > 0; n-- {
				b[rng.IntN(len(b))] ^= byte(1 << rng.IntN(8))
			}
		case 1: // truncate a valid body
			src := seeds[rng.IntN(len(seeds))]
			b = src[:rng.IntN(len(src)+1)]
		default: // noise
			b = make([]byte, rng.IntN(64))
			for i := range b {
				b[i] = byte(rng.Uint32())
			}
		}
		DecodeRequest(b)  // must not panic
		DecodeResponse(b) // must not panic
	}
	// Truncated prefixes of valid messages must error.
	full := AppendRequest(nil, &Request{Op: OpScan, Handle: 1, Table: "t", Key: "a", Hi: "b", Limit: 10})
	for i := 1; i < len(full); i++ {
		if _, err := DecodeRequest(full[:i]); err == nil {
			t.Fatalf("truncated request prefix of length %d decoded without error", i)
		}
	}
}

func FuzzDecodeRequest(f *testing.F) {
	for _, req := range sampleRequests() {
		f.Add(AppendRequest(nil, &req))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRequest(body)
		if err != nil {
			return
		}
		// A decodable request must re-encode decodably (round-trip
		// stability), still without panicking.
		if _, err := DecodeRequest(AppendRequest(nil, &req)); err != nil {
			t.Fatalf("re-encode of decoded request failed: %v", err)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	for _, resp := range sampleResponses() {
		f.Add(AppendResponse(nil, &resp))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := DecodeResponse(body)
		if err != nil {
			return
		}
		if _, err := DecodeResponse(AppendResponse(nil, &resp)); err != nil {
			t.Fatalf("re-encode of decoded response failed: %v", err)
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, []byte("hello"))
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 5, 1, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, stream []byte) {
		ReadFrame(bytes.NewReader(stream), nil) // must not panic
	})
}
