package wire

import (
	"bufio"
	"net"
	"sync"
	"time"

	"pgssi"
)

// Client is a remote session: it speaks the wire protocol to a
// cmd/pgssid server and exposes the same handle-based, Status-coded
// method set as pgssi.Session, so callers (the open-loop load driver in
// particular) can run against either interchangeably.
//
// A Client multiplexes nothing: requests on one connection are strictly
// synchronous (one in flight), serialized by an internal mutex. Open
// several clients for parallelism, as cmd/pgload's connection pool
// does. Transport failures poison the client: the failing call and
// every later one return StatusNetwork, and Err reports the underlying
// error.
type Client struct {
	mu    sync.Mutex //ssi:lock level=20 name=wire.client
	conn  net.Conn
	br    *bufio.Reader
	buf   []byte // encode scratch
	frame []byte // decode scratch
	err   error

	// Timeout bounds each round trip (write + read deadlines); zero
	// means no deadline.
	timeout time.Duration
}

// DialOptions configure Dial.
type DialOptions struct {
	// Timeout bounds connection establishment and, afterwards, each
	// request round trip. Zero means no deadline.
	Timeout time.Duration
}

// Dial connects to a pgssid server.
func Dial(addr string, opts DialOptions) (*Client, error) {
	var d net.Dialer
	d.Timeout = opts.Timeout
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, opts), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn, opts DialOptions) *Client {
	return &Client{
		conn:    conn,
		br:      bufio.NewReader(conn),
		timeout: opts.Timeout,
	}
}

// Err returns the sticky transport error, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close closes the connection. Open server-side transactions are rolled
// back by the server's connection cleanup.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends req and decodes the response. Transport and protocol
// failures are folded into StatusNetwork with the error latched.
func (c *Client) roundTrip(req *Request) Response {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return Response{Status: pgssi.StatusNetwork}
	}
	fail := func(err error) Response {
		c.err = err
		c.conn.Close()
		return Response{Status: pgssi.StatusNetwork}
	}
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	c.buf = AppendRequest(c.buf[:0], req)
	if err := WriteFrame(c.conn, c.buf); err != nil {
		return fail(err)
	}
	body, err := ReadFrame(c.br, c.frame)
	if err != nil {
		return fail(err)
	}
	c.frame = body[:0]
	resp, err := DecodeResponse(body)
	if err != nil {
		return fail(err)
	}
	return resp
}

// Begin starts a transaction on the server and returns its handle.
func (c *Client) Begin(level pgssi.IsolationLevel, readOnly, deferrable bool) (pgssi.Handle, pgssi.Status) {
	var flags uint8
	if readOnly {
		flags |= FlagReadOnly
	}
	if deferrable {
		flags |= FlagDeferrable
	}
	resp := c.roundTrip(&Request{Op: OpBegin, Isolation: level, Flags: flags})
	return resp.Handle, resp.Status
}

// Get returns the value of key in table.
func (c *Client) Get(h pgssi.Handle, table, key string) ([]byte, pgssi.Status) {
	resp := c.roundTrip(&Request{Op: OpGet, Handle: h, Table: table, Key: key})
	return resp.Value, resp.Status
}

// Put upserts key in table.
func (c *Client) Put(h pgssi.Handle, table, key string, value []byte) pgssi.Status {
	return c.roundTrip(&Request{Op: OpPut, Handle: h, Table: table, Key: key, Value: value}).Status
}

// Insert adds a new row.
func (c *Client) Insert(h pgssi.Handle, table, key string, value []byte) pgssi.Status {
	return c.roundTrip(&Request{Op: OpInsert, Handle: h, Table: table, Key: key, Value: value}).Status
}

// Update replaces an existing row.
func (c *Client) Update(h pgssi.Handle, table, key string, value []byte) pgssi.Status {
	return c.roundTrip(&Request{Op: OpUpdate, Handle: h, Table: table, Key: key, Value: value}).Status
}

// Delete removes the visible version of key.
func (c *Client) Delete(h pgssi.Handle, table, key string) pgssi.Status {
	return c.roundTrip(&Request{Op: OpDelete, Handle: h, Table: table, Key: key}).Status
}

// Scan returns up to limit rows with lo <= key < hi.
func (c *Client) Scan(h pgssi.Handle, table, lo, hi string, limit int) ([]pgssi.KV, pgssi.Status) {
	var lim uint32
	if limit > 0 {
		lim = uint32(limit)
	}
	resp := c.roundTrip(&Request{Op: OpScan, Handle: h, Table: table, Key: lo, Hi: hi, Limit: lim})
	return resp.Rows, resp.Status
}

// Commit finishes the transaction.
func (c *Client) Commit(h pgssi.Handle) pgssi.Status {
	return c.roundTrip(&Request{Op: OpCommit, Handle: h}).Status
}

// Rollback aborts the transaction.
func (c *Client) Rollback(h pgssi.Handle) pgssi.Status {
	return c.roundTrip(&Request{Op: OpRollback, Handle: h}).Status
}

// Savepoint establishes a savepoint.
func (c *Client) Savepoint(h pgssi.Handle, name string) pgssi.Status {
	return c.roundTrip(&Request{Op: OpSavepoint, Handle: h, Key: name}).Status
}

// ReleaseSavepoint releases a savepoint.
func (c *Client) ReleaseSavepoint(h pgssi.Handle, name string) pgssi.Status {
	return c.roundTrip(&Request{Op: OpReleaseSavepoint, Handle: h, Key: name}).Status
}

// RollbackToSavepoint rolls back to a savepoint.
func (c *Client) RollbackToSavepoint(h pgssi.Handle, name string) pgssi.Status {
	return c.roundTrip(&Request{Op: OpRollbackToSavepoint, Handle: h, Key: name}).Status
}

// CreateTable creates a table.
func (c *Client) CreateTable(name string) pgssi.Status {
	return c.roundTrip(&Request{Op: OpCreateTable, Table: name}).Status
}

// Ping round-trips an empty request.
func (c *Client) Ping() pgssi.Status {
	return c.roundTrip(&Request{Op: OpPing}).Status
}

// ReplicaStatus reports the server's replication position: the applied
// and safe-snapshot commit sequence numbers. A primary reports its
// current commit sequence for both (it is trivially "caught up" with
// itself), so lag-aware routers can poll every fleet member uniformly.
func (c *Client) ReplicaStatus() (applied, safe uint64, st pgssi.Status) {
	resp := c.roundTrip(&Request{Op: OpReplicaStatus})
	return resp.AppliedSeq, resp.SafeSeq, resp.Status
}
