package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"pgssi"
	"pgssi/internal/mvcc"
	"pgssi/internal/wal"
)

// ReplicaSource is a network-backed wal.Stream: each subscription dials
// a pgssid master, issues OpReplicate with the resume position, and
// decodes the resulting stream of record frames. It is the source a
// replica-mode pgssid (or an in-process pgssi.NewReplica) attaches to.
//
// Transient failure handling is deliberately dumb: a dial, protocol, or
// decode failure just closes the subscription channel (optionally noted
// via Logf). The consumer (pgssi.Replica) treats a closed channel as
// "re-subscribe from the applied position with backoff", so
// reconnect-and-catch-up logic lives in exactly one place and a flaky
// network looks the same as a slow subscriber being dropped by the
// fan-out. The one exception is a primary that answers the handshake
// with StatusNoReplication — it has no WAL stream and can never feed a
// replica, so retrying is futile: that refusal is recorded and exposed
// through PermanentErr (wal.SourceErrorer), which pgssi.Replica halts
// on instead of retrying forever while looking healthy.
type ReplicaSource struct {
	// Addr is the master's TCP address.
	Addr string
	// DialTimeout bounds connection establishment and the OpReplicate
	// handshake; zero means no deadline. No read deadline applies to
	// the stream itself — an idle stream is a quiet master, not a
	// failure.
	DialTimeout time.Duration
	// Logf, if non-nil, receives a line per failed subscription attempt
	// (transient and permanent alike), so an operator can see why a
	// replica is not advancing.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	permErr error
}

func (s *ReplicaSource) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// PermanentErr implements wal.SourceErrorer: it reports the recorded
// permanent refusal (the primary answered StatusNoReplication), or nil
// if every failure so far has been transient.
func (s *ReplicaSource) PermanentErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.permErr
}

var _ wal.SourceErrorer = (*ReplicaSource)(nil)

// Subscribe implements wal.Stream (full replay).
func (s *ReplicaSource) Subscribe() (<-chan wal.Record, func()) {
	return s.SubscribeFrom(0)
}

// SubscribeFrom implements wal.Stream: it streams records after the
// given commit sequence (per the Stream.SubscribeFrom filter contract,
// which the master's log applies server-side). The cancel function
// closes the connection, which ends the channel.
func (s *ReplicaSource) SubscribeFrom(after mvcc.SeqNo) (<-chan wal.Record, func()) {
	out := make(chan wal.Record, 64)
	var d net.Dialer
	d.Timeout = s.DialTimeout
	conn, err := d.Dial("tcp", s.Addr)
	if err != nil {
		s.logf("replication subscribe %s: %v", s.Addr, err)
		close(out)
		return out, func() {}
	}

	// Handshake: one OpReplicate request, one OK response, then the
	// connection carries only record frames until either side closes.
	if s.DialTimeout > 0 {
		conn.SetDeadline(time.Now().Add(s.DialTimeout))
	}
	req := AppendRequest(nil, &Request{Op: OpReplicate, AfterSeq: uint64(after)})
	if err := WriteFrame(conn, req); err != nil {
		s.logf("replication subscribe %s: handshake write: %v", s.Addr, err)
		conn.Close()
		close(out)
		return out, func() {}
	}
	br := bufio.NewReader(conn)
	body, err := ReadFrame(br, nil)
	if err != nil {
		s.logf("replication subscribe %s: handshake read: %v", s.Addr, err)
		conn.Close()
		close(out)
		return out, func() {}
	}
	resp, err := DecodeResponse(body)
	if err != nil || resp.Status != pgssi.StatusOK {
		if err == nil && resp.Status == pgssi.StatusNoReplication {
			// The primary exists and answered: it has no WAL stream.
			// No amount of retrying changes that — record the refusal
			// so the consumer can halt instead of spinning.
			perr := fmt.Errorf("wire: primary %s refused replication: it emits no WAL stream", s.Addr)
			s.mu.Lock()
			s.permErr = perr
			s.mu.Unlock()
			s.logf("%v", perr)
		} else {
			s.logf("replication subscribe %s: handshake response: status=%v err=%v", s.Addr, resp.Status, err)
		}
		conn.Close()
		close(out)
		return out, func() {}
	}
	conn.SetDeadline(time.Time{})

	done := make(chan struct{})
	go func() {
		defer close(out)
		defer conn.Close()
		var buf []byte
		for {
			body, err := ReadFrame(br, buf)
			if err != nil {
				return
			}
			rec, err := wal.DecodeRecordBody(body)
			if err != nil {
				return
			}
			buf = body[:0]
			select {
			case out <- rec:
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			close(done)
			// Unblock a reader parked in ReadFrame.
			conn.Close()
		})
	}
	return out, cancel
}
