package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"pgssi"
	"pgssi/internal/mvcc"
	"pgssi/internal/wal"
)

// ReplicaSource is a network-backed wal.Stream: each subscription dials
// a pgssid master, issues OpReplicate with the resume position, and
// decodes the resulting stream of record frames. It is the source a
// replica-mode pgssid (or an in-process pgssi.NewReplica) attaches to.
//
// Transient failure handling is deliberately dumb: a dial, protocol, or
// decode failure just closes the subscription channel (optionally noted
// via Logf). The consumer (pgssi.Replica) treats a closed channel as
// "re-subscribe from the applied position with backoff", so
// reconnect-and-catch-up logic lives in exactly one place and a flaky
// network looks the same as a slow subscriber being dropped by the
// fan-out. The one exception is a primary that answers the handshake
// with StatusNoReplication — it has no WAL stream and can never feed a
// replica, so retrying is futile: that refusal is recorded and exposed
// through PermanentErr (wal.SourceErrorer), which pgssi.Replica halts
// on instead of retrying forever while looking healthy.
type ReplicaSource struct {
	// Addr is the master's TCP address.
	Addr string
	// DialTimeout bounds connection establishment and the OpReplicate
	// handshake; zero means no deadline. No read deadline applies to
	// the stream itself — an idle stream is a quiet master, not a
	// failure.
	DialTimeout time.Duration
	// Logf, if non-nil, receives a line per failed subscription attempt
	// (transient and permanent alike), so an operator can see why a
	// replica is not advancing.
	Logf func(format string, args ...any)

	mu      sync.Mutex //ssi:lock level=10 name=wire.replicaSource
	permErr error
}

func (s *ReplicaSource) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// PermanentErr implements wal.SourceErrorer: it reports the recorded
// permanent refusal (the primary answered StatusNoReplication), or nil
// if every failure so far has been transient.
func (s *ReplicaSource) PermanentErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.permErr
}

var _ wal.SourceErrorer = (*ReplicaSource)(nil)

// Subscribe implements wal.Stream (full replay).
func (s *ReplicaSource) Subscribe() (<-chan wal.Record, func()) {
	return s.SubscribeFrom(0)
}

// SubscribeFrom implements wal.Stream: it streams records after the
// given commit sequence (per the Stream.SubscribeFrom filter contract,
// which the master's log applies server-side). The cancel function
// closes the connection, which ends the channel. Failures — including a
// truncated resume position — just close the channel; use
// SubscribeFromChecked to distinguish them.
func (s *ReplicaSource) SubscribeFrom(after mvcc.SeqNo) (<-chan wal.Record, func()) {
	ch, cancel, err := s.SubscribeFromChecked(after)
	if err != nil {
		out := make(chan wal.Record)
		close(out)
		return out, func() {}
	}
	return ch, cancel
}

// SubscribeFromChecked implements wal.CheckedStream: like SubscribeFrom,
// but a handshake the primary answers with StatusSeqTruncated — the
// resume position fell below its checkpoint GC floor — is reported as
// wal.ErrSeqTruncated, so the consumer can re-seed from a checkpoint
// (ReplayCheckpoint) instead of retrying a gap that can never fill.
// Transient failures (dial, protocol) are returned as ordinary errors.
func (s *ReplicaSource) SubscribeFromChecked(after mvcc.SeqNo) (<-chan wal.Record, func(), error) {
	conn, br, err := s.handshake(&Request{Op: OpReplicate, AfterSeq: uint64(after)}, "replication subscribe")
	if err != nil {
		return nil, nil, err
	}

	out := make(chan wal.Record, 64)
	done := make(chan struct{})
	go func() {
		defer close(out)
		defer conn.Close()
		var buf []byte
		for {
			body, err := ReadFrame(br, buf)
			if err != nil {
				return
			}
			rec, err := wal.DecodeRecordBody(body)
			if err != nil {
				return
			}
			buf = body[:0]
			select {
			case out <- rec:
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			close(done)
			// Unblock a reader parked in ReadFrame.
			conn.Close()
		})
	}
	return out, cancel, nil
}

var _ wal.CheckedStream = (*ReplicaSource)(nil)
var _ wal.CheckpointSource = (*ReplicaSource)(nil)

// handshake dials the primary and issues one stream-hijacking request
// (OpReplicate or OpFetchCheckpoint), returning the connection with its
// deadline cleared once the primary acknowledged StatusOK. Refusals map
// to the sentinel errors the consumer branches on: StatusNoReplication
// is recorded as the permanent error, StatusSeqTruncated becomes
// wal.ErrSeqTruncated, StatusNotFound becomes wal.ErrNoCheckpoint.
func (s *ReplicaSource) handshake(req *Request, what string) (net.Conn, *bufio.Reader, error) {
	var d net.Dialer
	d.Timeout = s.DialTimeout
	conn, err := d.Dial("tcp", s.Addr)
	if err != nil {
		s.logf("%s %s: %v", what, s.Addr, err)
		return nil, nil, err
	}
	if s.DialTimeout > 0 {
		conn.SetDeadline(time.Now().Add(s.DialTimeout))
	}
	if err := WriteFrame(conn, AppendRequest(nil, req)); err != nil {
		s.logf("%s %s: handshake write: %v", what, s.Addr, err)
		conn.Close()
		return nil, nil, err
	}
	br := bufio.NewReader(conn)
	body, err := ReadFrame(br, nil)
	if err != nil {
		s.logf("%s %s: handshake read: %v", what, s.Addr, err)
		conn.Close()
		return nil, nil, err
	}
	resp, err := DecodeResponse(body)
	if err != nil || resp.Status != pgssi.StatusOK {
		conn.Close()
		switch {
		case err == nil && resp.Status == pgssi.StatusNoReplication:
			// The primary exists and answered: it has no WAL stream.
			// No amount of retrying changes that — record the refusal
			// so the consumer can halt instead of spinning.
			perr := fmt.Errorf("wire: primary %s refused replication: it emits no WAL stream", s.Addr)
			s.mu.Lock()
			s.permErr = perr
			s.mu.Unlock()
			s.logf("%v", perr)
			return nil, nil, perr
		case err == nil && resp.Status == pgssi.StatusSeqTruncated:
			s.logf("%s %s: resume position truncated by checkpoint GC", what, s.Addr)
			return nil, nil, fmt.Errorf("wire: primary %s: %w", s.Addr, wal.ErrSeqTruncated)
		case err == nil && resp.Status == pgssi.StatusNotFound:
			s.logf("%s %s: primary has no checkpoint", what, s.Addr)
			return nil, nil, fmt.Errorf("wire: primary %s: %w", s.Addr, wal.ErrNoCheckpoint)
		default:
			s.logf("%s %s: handshake response: status=%v err=%v", what, s.Addr, resp.Status, err)
			return nil, nil, fmt.Errorf("wire: %s %s: status=%v err=%v", what, s.Addr, resp.Status, err)
		}
	}
	conn.SetDeadline(time.Time{})
	return conn, br, nil
}

// ReplayCheckpoint implements wal.CheckpointSource over the network: it
// fetches the primary's newest checkpoint (OpFetchCheckpoint) and feeds
// each record through fn. The stream is complete only when the
// safe-snapshot terminator arrives (its sequence is the checkpoint
// sequence); a connection that ends before it is a torn transfer and is
// reported as an error, never as a short checkpoint.
func (s *ReplicaSource) ReplayCheckpoint(fn func(wal.Record) error) (wal.CheckpointInfo, error) {
	conn, br, err := s.handshake(&Request{Op: OpFetchCheckpoint}, "checkpoint fetch")
	if err != nil {
		return wal.CheckpointInfo{}, err
	}
	defer conn.Close()
	var buf []byte
	var info wal.CheckpointInfo
	for {
		body, err := ReadFrame(br, buf)
		if err != nil {
			return wal.CheckpointInfo{}, fmt.Errorf("wire: checkpoint stream from %s ended before terminator: %w", s.Addr, err)
		}
		rec, err := wal.DecodeRecordBody(body)
		if err != nil {
			return wal.CheckpointInfo{}, fmt.Errorf("wire: checkpoint stream from %s: %w", s.Addr, err)
		}
		buf = body[:0]
		if rec.SafeSnapshot {
			info.Seq = rec.Seq
			return info, nil
		}
		info.Records++
		if err := fn(rec); err != nil {
			return wal.CheckpointInfo{}, err
		}
	}
}
