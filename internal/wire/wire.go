// Package wire implements pgssi's client/server protocol: a
// length-prefixed binary framing with a protocol version byte and a
// CRC-32 integrity check, carrying the session layer's handle-based
// request/response messages (pgssi.Session; see docs/protocol.md for
// the normative format description).
//
// The encoder/decoder here is shared by the server (internal/server,
// cmd/pgssid) and the client (Client in this package). Decoding is
// defensive end to end: a malformed, truncated, corrupted, or oversized
// frame yields an error, never a panic and never an allocation sized by
// attacker-controlled lengths beyond MaxFrame.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"pgssi"
)

// Version is the protocol version carried in every frame header.
const Version = 1

// MaxFrame bounds a frame's payload (version byte + CRC + body). Frames
// advertising more are rejected before any allocation.
const MaxFrame = 16 << 20

// Framing errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrBadVersion    = errors.New("wire: unsupported protocol version")
	ErrBadCRC        = errors.New("wire: frame CRC mismatch")
	ErrTruncated     = errors.New("wire: truncated message")
	ErrBadMessage    = errors.New("wire: malformed message")
)

// Frame layout:
//
//	+--------------+-----------+-----------+------------------+
//	| length: u32  | ver: u8   | crc: u32  | body: length-5 B |
//	+--------------+-----------+-----------+------------------+
//
// length counts everything after itself (version + crc + body), so the
// minimum legal value is 5. All integers are big-endian. crc is the
// IEEE CRC-32 of body alone.
const frameOverhead = 5

// WriteFrame writes body as one frame.
func WriteFrame(w io.Writer, body []byte) error {
	if len(body)+frameOverhead > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4 + frameOverhead]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)+frameOverhead))
	hdr[4] = Version
	binary.BigEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(body))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame and returns its body, reusing buf when it
// is large enough. Errors are framing-fatal: the stream position is
// unknown afterwards and the connection should be closed.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4 + frameOverhead]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n < frameOverhead {
		return nil, ErrTruncated
	}
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return nil, err
	}
	if hdr[4] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, hdr[4])
	}
	want := binary.BigEndian.Uint32(hdr[5:9])
	bodyLen := int(n) - frameOverhead
	if cap(buf) < bodyLen {
		buf = make([]byte, bodyLen)
	}
	body := buf[:bodyLen]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(body) != want {
		return nil, ErrBadCRC
	}
	return body, nil
}

// Op is a request opcode.
//
//ssi:enum
type Op uint8

// Request opcodes. Values are wire-stable.
const (
	OpBegin Op = iota + 1
	OpGet
	OpPut
	OpInsert
	OpUpdate
	OpDelete
	OpScan
	OpCommit
	OpRollback
	OpSavepoint
	OpReleaseSavepoint
	OpRollbackToSavepoint
	OpCreateTable
	OpPing
	OpReplicate
	OpReplicaStatus
	OpFetchCheckpoint
	opMax
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpBegin:
		return "Begin"
	case OpGet:
		return "Get"
	case OpPut:
		return "Put"
	case OpInsert:
		return "Insert"
	case OpUpdate:
		return "Update"
	case OpDelete:
		return "Delete"
	case OpScan:
		return "Scan"
	case OpCommit:
		return "Commit"
	case OpRollback:
		return "Rollback"
	case OpSavepoint:
		return "Savepoint"
	case OpReleaseSavepoint:
		return "ReleaseSavepoint"
	case OpRollbackToSavepoint:
		return "RollbackToSavepoint"
	case OpCreateTable:
		return "CreateTable"
	case OpPing:
		return "Ping"
	case OpReplicate:
		return "Replicate"
	case OpReplicaStatus:
		return "ReplicaStatus"
	case OpFetchCheckpoint:
		return "FetchCheckpoint"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Begin flag bits.
const (
	FlagReadOnly   = 1 << 0
	FlagDeferrable = 1 << 1
)

// Request is one session-layer request. Which fields are meaningful
// depends on Op (see docs/protocol.md); decode leaves the rest zero.
type Request struct {
	Op     Op
	Handle pgssi.Handle

	// Begin.
	Isolation pgssi.IsolationLevel
	Flags     uint8

	// Data operations.
	Table string
	Key   string // also savepoint name, and Scan's lo bound
	Hi    string // Scan's exclusive hi bound
	Value []byte
	Limit uint32 // Scan row cap (0 = unlimited)

	// Replicate: resume the WAL stream after this commit sequence
	// number (0 = from the start of the log).
	AfterSeq uint64
}

// Response is one session-layer response. Status is always meaningful;
// Handle is set by Begin, Value by Get, Rows by Scan.
type Response struct {
	Status pgssi.Status
	Handle pgssi.Handle
	Value  []byte
	Found  bool // Get: distinguishes empty value from absent row
	Rows   []pgssi.KV

	// ReplicaStatus: the responder's applied and safe-snapshot commit
	// sequence numbers (on a primary both report the current commit
	// sequence). Present iff the seqs flag bit is set.
	HasSeqs    bool
	AppliedSeq uint64
	SafeSeq    uint64
}

// ---- body encoding helpers -------------------------------------------

// enc appends primitive values to a buffer.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) bytes(v []byte) {
	e.b = binary.AppendUvarint(e.b, uint64(len(v)))
	e.b = append(e.b, v...)
}
func (e *enc) str(v string) {
	e.b = binary.AppendUvarint(e.b, uint64(len(v)))
	e.b = append(e.b, v...)
}

// dec consumes primitive values from a buffer, latching the first
// error; every accessor is safe to call after a failure.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) bytes() []byte {
	if d.err != nil {
		return nil
	}
	n, sz := binary.Uvarint(d.b)
	if sz <= 0 || n > uint64(len(d.b)-sz) {
		d.fail()
		return nil
	}
	v := d.b[sz : sz+int(n)]
	d.b = d.b[sz+int(n):]
	return v
}

func (d *dec) str() string { return string(d.bytes()) }

// done reports decoding success and rejects trailing garbage.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(d.b))
	}
	return nil
}

// ---- request ---------------------------------------------------------

// AppendRequest encodes req into buf's body format (no framing).
func AppendRequest(buf []byte, req *Request) []byte {
	e := enc{b: buf}
	e.u8(uint8(req.Op))
	switch req.Op {
	case OpBegin:
		e.u8(uint8(req.Isolation))
		e.u8(req.Flags)
	case OpGet, OpDelete:
		e.u64(uint64(req.Handle))
		e.str(req.Table)
		e.str(req.Key)
	case OpPut, OpInsert, OpUpdate:
		e.u64(uint64(req.Handle))
		e.str(req.Table)
		e.str(req.Key)
		e.bytes(req.Value)
	case OpScan:
		e.u64(uint64(req.Handle))
		e.str(req.Table)
		e.str(req.Key)
		e.str(req.Hi)
		e.u32(req.Limit)
	case OpCommit, OpRollback:
		e.u64(uint64(req.Handle))
	case OpSavepoint, OpReleaseSavepoint, OpRollbackToSavepoint:
		e.u64(uint64(req.Handle))
		e.str(req.Key)
	case OpCreateTable:
		e.str(req.Table)
	case OpPing, OpReplicaStatus, OpFetchCheckpoint:
	case OpReplicate:
		e.u64(req.AfterSeq)
	default:
		// A new opcode must be given an encoding here; silently
		// emitting an empty body would desynchronize the stream.
		panic(fmt.Sprintf("wire: AppendRequest: unhandled op %d", uint8(req.Op)))
	}
	return e.b
}

// DecodeRequest parses a request body. The returned request aliases
// body's memory for its string/byte fields only via copies (strings are
// copied by conversion; Value is copied explicitly), so body may be
// reused afterwards.
func DecodeRequest(body []byte) (Request, error) {
	d := dec{b: body}
	var req Request
	req.Op = Op(d.u8())
	if d.err == nil && (req.Op == 0 || req.Op >= opMax) {
		return Request{}, fmt.Errorf("%w: unknown op %d", ErrBadMessage, uint8(req.Op))
	}
	switch req.Op {
	case OpBegin:
		req.Isolation = pgssi.IsolationLevel(d.u8())
		req.Flags = d.u8()
	case OpGet, OpDelete:
		req.Handle = pgssi.Handle(d.u64())
		req.Table = d.str()
		req.Key = d.str()
	case OpPut, OpInsert, OpUpdate:
		req.Handle = pgssi.Handle(d.u64())
		req.Table = d.str()
		req.Key = d.str()
		req.Value = append([]byte(nil), d.bytes()...)
	case OpScan:
		req.Handle = pgssi.Handle(d.u64())
		req.Table = d.str()
		req.Key = d.str()
		req.Hi = d.str()
		req.Limit = d.u32()
	case OpCommit, OpRollback:
		req.Handle = pgssi.Handle(d.u64())
	case OpSavepoint, OpReleaseSavepoint, OpRollbackToSavepoint:
		req.Handle = pgssi.Handle(d.u64())
		req.Key = d.str()
	case OpCreateTable:
		req.Table = d.str()
	case OpPing, OpReplicaStatus, OpFetchCheckpoint:
	case OpReplicate:
		req.AfterSeq = d.u64()
	default:
		// Unreachable while the range guard above tracks opMax, but a
		// decoder must never fall through silently on a wire value.
		return Request{}, fmt.Errorf("%w: unknown op %d", ErrBadMessage, uint8(req.Op))
	}
	if err := d.done(); err != nil {
		return Request{}, err
	}
	return req, nil
}

// ---- response --------------------------------------------------------

// Response body flag bits (second byte).
const (
	respHasHandle = 1 << 0
	respHasValue  = 1 << 1
	respHasRows   = 1 << 2
	respFound     = 1 << 3
	respHasSeqs   = 1 << 4
)

// AppendResponse encodes resp into buf's body format (no framing).
func AppendResponse(buf []byte, resp *Response) []byte {
	e := enc{b: buf}
	e.u8(uint8(resp.Status))
	var flags uint8
	if resp.Handle != 0 {
		flags |= respHasHandle
	}
	if resp.Value != nil {
		flags |= respHasValue
	}
	if resp.Rows != nil {
		flags |= respHasRows
	}
	if resp.Found {
		flags |= respFound
	}
	if resp.HasSeqs {
		flags |= respHasSeqs
	}
	e.u8(flags)
	if flags&respHasHandle != 0 {
		e.u64(uint64(resp.Handle))
	}
	if flags&respHasValue != 0 {
		e.bytes(resp.Value)
	}
	if flags&respHasRows != 0 {
		e.u32(uint32(len(resp.Rows)))
		for i := range resp.Rows {
			e.str(resp.Rows[i].Key)
			e.bytes(resp.Rows[i].Value)
		}
	}
	if flags&respHasSeqs != 0 {
		e.u64(resp.AppliedSeq)
		e.u64(resp.SafeSeq)
	}
	return e.b
}

// DecodeResponse parses a response body.
func DecodeResponse(body []byte) (Response, error) {
	d := dec{b: body}
	var resp Response
	resp.Status = pgssi.Status(d.u8())
	flags := d.u8()
	if flags&respHasHandle != 0 {
		resp.Handle = pgssi.Handle(d.u64())
	}
	if flags&respHasValue != 0 {
		resp.Value = append([]byte(nil), d.bytes()...)
	}
	if flags&respHasRows != 0 {
		n := d.u32()
		// A row costs at least 2 bytes encoded; reject counts the
		// remaining body cannot possibly hold before allocating.
		if d.err == nil && uint64(n) > uint64(len(d.b)/2)+1 {
			return Response{}, fmt.Errorf("%w: implausible row count %d", ErrBadMessage, n)
		}
		if d.err == nil && n > 0 {
			resp.Rows = make([]pgssi.KV, 0, n)
			for i := uint32(0); i < n && d.err == nil; i++ {
				k := d.str()
				v := append([]byte(nil), d.bytes()...)
				resp.Rows = append(resp.Rows, pgssi.KV{Key: k, Value: v})
			}
		}
	}
	if flags&respHasSeqs != 0 {
		resp.HasSeqs = true
		resp.AppliedSeq = d.u64()
		resp.SafeSeq = d.u64()
	}
	resp.Found = flags&respFound != 0
	if err := d.done(); err != nil {
		return Response{}, err
	}
	return resp, nil
}
