package graphcheck

import "testing"

func rd(key string, saw Version) Op { return Op{Key: key, Saw: saw} }
func wr(key string) Op              { return Op{Key: key, Write: true} }
func rmw(key string, saw Version) []Op {
	return []Op{rd(key, saw), wr(key)}
}

func TestSerialHistoryIsAcyclic(t *testing.T) {
	g, err := Build([]Txn{
		{ID: 1, Ops: rmw("a", 0)},
		{ID: 2, Ops: rmw("a", 1)},
		{ID: 3, Ops: rmw("a", 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cyc := g.Cycle(); cyc != nil {
		t.Fatalf("serial history has cycle %v", cyc)
	}
	order := g.SerialOrder()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("serial order = %v", order)
	}
}

func TestWriteSkewCycleDetected(t *testing.T) {
	// T1 reads a,b writes a; T2 reads a,b writes b; both saw initial
	// versions: classic write skew, rw edges both ways.
	g, err := Build([]Txn{
		{ID: 1, Ops: []Op{rd("a", 0), rd("b", 0), wr("a")}},
		{ID: 2, Ops: []Op{rd("a", 0), rd("b", 0), wr("b")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cyc := g.Cycle()
	if cyc == nil {
		t.Fatal("write skew must produce a cycle")
	}
	if g.SerialOrder() != nil {
		t.Fatal("cyclic graph must have no serial order")
	}
	// Both edges must be rw.
	rwCount := 0
	for _, e := range g.Edges() {
		if e.Kind == RW {
			rwCount++
		}
	}
	if rwCount < 2 {
		t.Fatalf("expected >= 2 rw edges, got %d: %v", rwCount, g.Edges())
	}
}

func TestBatchProcessingCycleDetected(t *testing.T) {
	// Figure 2 as a history: control row "c", receipts row "r".
	// T2 (new-receipt) reads c@0, writes r (over initial).
	// T3 (close-batch) reads c@0, writes c.
	// T1 (report) reads c@3 (sees T3) and r@0 (misses T2).
	g, err := Build([]Txn{
		{ID: 2, Ops: []Op{rd("c", 0), rd("r", 0), wr("r")}},
		{ID: 3, Ops: rmw("c", 0)},
		{ID: 1, Ops: []Op{rd("c", 3), rd("r", 0)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Cycle() == nil {
		t.Fatal("batch-processing anomaly must produce a cycle")
	}
}

func TestEdgeKinds(t *testing.T) {
	g, err := Build([]Txn{
		{ID: 1, Ops: rmw("a", 0)},
		{ID: 2, Ops: []Op{rd("a", 1)}}, // wr: 1 → 2
		{ID: 3, Ops: rmw("a", 1)},      // ww: 1 → 3, rw: 2 → 3
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawWR, sawWW, sawRW bool
	for _, e := range g.Edges() {
		switch {
		case e.Kind == WR && e.From == 1 && e.To == 2:
			sawWR = true
		case e.Kind == WW && e.From == 1 && e.To == 3:
			sawWW = true
		case e.Kind == RW && e.From == 2 && e.To == 3:
			sawRW = true
		}
	}
	if !sawWR || !sawWW || !sawRW {
		t.Fatalf("missing edges: wr=%v ww=%v rw=%v (%v)", sawWR, sawWW, sawRW, g.Edges())
	}
}

func TestBuildRejectsBlindWrites(t *testing.T) {
	if _, err := Build([]Txn{{ID: 1, Ops: []Op{wr("a")}}}); err == nil {
		t.Fatal("blind writes must be rejected (version order would be ambiguous)")
	}
}

func TestBuildRejectsDuplicateIDs(t *testing.T) {
	if _, err := Build([]Txn{{ID: 1, Ops: rmw("a", 0)}, {ID: 1, Ops: rmw("b", 0)}}); err == nil {
		t.Fatal("duplicate IDs must be rejected")
	}
	if _, err := Build([]Txn{{ID: 0}}); err == nil {
		t.Fatal("ID 0 must be rejected")
	}
}

func TestOwnWriteReadCreatesNoEdge(t *testing.T) {
	g, err := Build([]Txn{
		{ID: 1, Ops: []Op{rd("a", 0), wr("a"), rd("a", 1)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		t.Fatalf("unexpected edge %v", e)
	}
}
