// Package graphcheck builds multiversion serialization history graphs
// (Adya et al., §3.1 of the paper) from recorded transaction read/write
// sets and tests them for cycles. It is an *offline oracle*: tests run
// workloads under some isolation level, record every committed
// transaction's reads (key and version observed) and writes, construct
// the wr / ww / rw edges, and check acyclicity. Executions committed
// under SSI must always pass; snapshot isolation executions may fail —
// that difference is exactly what the paper's Serializable level buys.
package graphcheck

import (
	"fmt"
	"sort"
)

// Version identifies a committed version of a key: the transaction that
// wrote it. Version 0 is the initial (pre-history) version.
type Version uint64

// Op is a single read or write in a transaction's history.
type Op struct {
	Key string
	// Write is true for writes (including deletes, modelled as writes
	// of a tombstone version).
	Write bool
	// Saw is the version observed by a read: the ID of the transaction
	// that wrote the value read, 0 for the initial version.
	Saw Version
}

// Txn is one committed transaction's recorded history.
type Txn struct {
	// ID must be unique and nonzero; writes by this transaction
	// produce Version(ID).
	ID uint64
	// Ops in execution order (order only matters for readability).
	Ops []Op
}

// EdgeKind labels a dependency edge.
type EdgeKind int8

// Edge kinds per Adya's model.
const (
	WR EdgeKind = iota // T1 wrote a version T2 read
	WW                 // T1 wrote a version T2 replaced
	RW                 // T1 read a version T2 replaced (antidependency)
)

func (k EdgeKind) String() string {
	switch k {
	case WR:
		return "wr"
	case WW:
		return "ww"
	case RW:
		return "rw"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int8(k))
	}
}

// Edge is a dependency T From → To of kind Kind caused by Key.
type Edge struct {
	From, To uint64
	Kind     EdgeKind
	Key      string
}

// Graph is a serialization history graph.
type Graph struct {
	txns  map[uint64]*Txn
	edges []Edge
	adj   map[uint64][]uint64
}

// Build constructs the graph from committed transactions. The version
// order for each key is derived from the reads: version v2 directly
// follows v1 for a key iff some committed transaction with ID v2 wrote
// the key while having read (or been derived from) version v1. Because
// the engine's write path forbids lost updates (first-updater-wins),
// writers are assumed to replace exactly the version they observed; each
// writing transaction must therefore record a read of the key before its
// write (read-modify-write histories), which is how the property tests
// generate load.
func Build(txns []Txn) (*Graph, error) {
	g := &Graph{txns: make(map[uint64]*Txn), adj: make(map[uint64][]uint64)}
	for i := range txns {
		t := &txns[i]
		if t.ID == 0 {
			return nil, fmt.Errorf("graphcheck: transaction ID 0 is reserved")
		}
		if _, dup := g.txns[t.ID]; dup {
			return nil, fmt.Errorf("graphcheck: duplicate transaction ID %d", t.ID)
		}
		g.txns[t.ID] = t
	}

	// predecessor[key][v2] = v1: version v2 of key replaced v1.
	predecessor := make(map[string]map[Version]Version)
	for _, t := range g.txns {
		saw := make(map[string]Version)
		seen := make(map[string]bool)
		for _, op := range t.Ops {
			if !op.Write {
				saw[op.Key] = op.Saw
				seen[op.Key] = true
				continue
			}
			if !seen[op.Key] {
				return nil, fmt.Errorf("graphcheck: txn %d writes %q without a prior read (record read-modify-write histories)", t.ID, op.Key)
			}
			p := predecessor[op.Key]
			if p == nil {
				p = make(map[Version]Version)
				predecessor[op.Key] = p
			}
			prev, ok := p[Version(t.ID)]
			if ok && prev != saw[op.Key] {
				return nil, fmt.Errorf("graphcheck: txn %d writes %q twice over different versions", t.ID, op.Key)
			}
			p[Version(t.ID)] = saw[op.Key]
			// Subsequent reads of the key see the own write.
			saw[op.Key] = Version(t.ID)
		}
	}

	addEdge := func(from, to uint64, kind EdgeKind, key string) {
		if from == to || from == 0 || to == 0 {
			return
		}
		if _, ok := g.txns[from]; !ok {
			return
		}
		if _, ok := g.txns[to]; !ok {
			return
		}
		g.edges = append(g.edges, Edge{From: from, To: to, Kind: kind, Key: key})
		g.adj[from] = append(g.adj[from], to)
	}

	// ww edges from the version order.
	for key, p := range predecessor {
		for v2, v1 := range p {
			addEdge(uint64(v1), uint64(v2), WW, key)
		}
	}
	// wr and rw edges from the reads.
	for _, t := range g.txns {
		ownWrites := make(map[string]bool)
		for _, op := range t.Ops {
			if op.Write {
				ownWrites[op.Key] = true
			}
		}
		for _, op := range t.Ops {
			if op.Write {
				continue
			}
			// Reading one's own uncommitted write creates no edge.
			if op.Saw == Version(t.ID) {
				continue
			}
			// wr: writer of the version read precedes the reader.
			addEdge(uint64(op.Saw), t.ID, WR, op.Key)
			// rw: the reader precedes whichever transaction wrote
			// the *next* version of the key.
			if p := predecessor[op.Key]; p != nil {
				for v2, v1 := range p {
					if v1 == op.Saw && uint64(v2) != t.ID {
						addEdge(t.ID, uint64(v2), RW, op.Key)
					}
				}
			}
		}
	}
	return g, nil
}

// Edges returns the dependency edges.
func (g *Graph) Edges() []Edge { return g.edges }

// Cycle returns a cycle in the graph as a transaction ID sequence
// (first == last), or nil if the graph is acyclic — in which case the
// execution is serializable and a serial order exists (topological sort).
func (g *Graph) Cycle() []uint64 {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[uint64]int8, len(g.txns))
	parent := make(map[uint64]uint64)

	ids := make([]uint64, 0, len(g.txns))
	for id := range g.txns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var cycleStart, cycleEnd uint64
	var dfs func(u uint64) bool
	dfs = func(u uint64) bool {
		color[u] = gray
		for _, v := range g.adj[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				cycleStart, cycleEnd = v, u
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, id := range ids {
		if color[id] == white && dfs(id) {
			cycle := []uint64{cycleStart}
			for v := cycleEnd; v != cycleStart; v = parent[v] {
				cycle = append(cycle, v)
			}
			cycle = append(cycle, cycleStart)
			// Reverse into forward edge order.
			for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
				cycle[i], cycle[j] = cycle[j], cycle[i]
			}
			return cycle
		}
	}
	return nil
}

// SerialOrder returns a topological order of the transactions, or nil if
// the graph has a cycle.
func (g *Graph) SerialOrder() []uint64 {
	if g.Cycle() != nil {
		return nil
	}
	indeg := make(map[uint64]int, len(g.txns))
	for id := range g.txns {
		indeg[id] = 0
	}
	for _, e := range g.edges {
		indeg[e.To]++
	}
	var queue []uint64
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	var order []uint64
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != len(g.txns) {
		return nil
	}
	return order
}
