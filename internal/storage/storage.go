// Package storage implements a versioned tuple heap in the style of
// PostgreSQL's storage manager. Each logical row is a chain of tuple
// versions; each version carries the transaction ID that created it
// (xmin) and, once deleted or superseded, the transaction that did so
// (xmax). Updates never modify a version in place: they stamp the old
// version's xmax and prepend a new version, exactly the model §5.1 of the
// paper describes.
//
// Tuple-level write locks are represented by an in-progress xmax, reusing
// the tuple header the way PostgreSQL does; a writer that finds an
// in-progress xmax blocks until that transaction finishes, then applies
// snapshot isolation's first-updater-wins rule.
//
// The heap assigns every tuple version a heap page number so the SSI lock
// manager in internal/core can take SIREAD locks at tuple, page, and
// relation granularity and promote between them.
//
// Each table additionally carries a sharded per-page read latch table
// (latch.go), the stand-in for PostgreSQL's buffer content lock in the
// SSI protocol: Table.Read runs its caller's callback — which inserts
// the SIREAD lock — under the latch of the page holding the visible
// version, and Table.Update / Table.Delete stamp xmax and run their
// caller's write check under the latch of the superseded version's
// page. That makes the MVCC visibility check atomic with SIREAD
// registration relative to writers of the same page, closing the
// detection window in which a writer's lock-table probe could run
// between a reader's visibility check and its lock insertion and miss
// the rw-antidependency entirely (§5.2 of the paper; the latch protocol
// and lock ordering are documented in latch.go).
package storage

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"pgssi/internal/mvcc"
	"pgssi/internal/waitgraph"
)

// Errors returned by heap operations.
var (
	// ErrNotFound reports that no version of the key is visible to the
	// snapshot.
	ErrNotFound = errors.New("storage: key not found")
	// ErrDuplicateKey reports an insert of a key that already has a
	// live visible (or committed concurrent) version.
	ErrDuplicateKey = errors.New("storage: duplicate key")
	// ErrWriteConflict reports that snapshot isolation's
	// first-updater-wins rule rejected the write: a concurrent
	// transaction updated or deleted the same tuple and committed.
	ErrWriteConflict = errors.New("storage: concurrent update")
	// ErrDeadlock reports that blocking on a tuple lock would deadlock.
	ErrDeadlock = waitgraph.ErrDeadlock
)

// TuplesPerPage is the number of tuple versions placed on one simulated
// heap page. It only affects lock granularity, not correctness.
const TuplesPerPage = 64

// Tuple is one version of a row. Fields mirror the PostgreSQL tuple
// header bits that matter for visibility and SSI.
type Tuple struct {
	Key   string
	Value []byte
	// Xmin is the transaction that created this version.
	Xmin mvcc.TxID
	// Xmax is the transaction that deleted or superseded this version;
	// zero while the version is live. An in-progress xmax doubles as
	// the tuple write lock.
	Xmax mvcc.TxID
	// SubMin and SubMax are the subtransaction IDs within Xmin / Xmax
	// that performed the write, for savepoint rollback (§7.3).
	SubMin, SubMax int32
	// Page is the simulated heap page this version lives on.
	Page int64
	// Older points to the previous version of the row, or nil.
	Older *Tuple
}

// ReadResult is the outcome of a visibility-checked read.
type ReadResult struct {
	// Tuple is the version visible to the snapshot, or nil if none.
	Tuple *Tuple
	// ConflictOut lists concurrent serializable-relevant transactions
	// whose writes to this row were invisible to the reader: creators
	// of newer versions and in-flight or later-committed deleters.
	// Each entry is an rw-antidependency reader → writer that the SSI
	// layer records (§5.2: "if the write happens first, the conflict
	// can be inferred from the MVCC data").
	ConflictOut []mvcc.TxID
}

// Config controls heap behaviour.
type Config struct {
	// IODelay, if nonzero, simulates a storage device: each heap page
	// access that misses the simulated buffer cache sleeps this long.
	// Used by the disk-bound benchmark configuration (Figure 5b).
	IODelay time.Duration
	// CacheMissRatio is the probability in [0,1] that a page access
	// pays IODelay. Zero means every access is a hit.
	CacheMissRatio float64
	// LatchPartitions is the number of shards in the per-page read
	// latch table (latch.go). Rounded up to a power of two; defaults
	// to 64. Collisions only add mutual exclusion, so this is purely a
	// concurrency knob.
	LatchPartitions int
	// DisableReadLatch disables the per-page read latch, reopening the
	// window between the MVCC visibility check and SIREAD-lock
	// insertion. Test-only ablation: the interleaving harness uses it
	// to demonstrate the missed-antidependency race the latch closes.
	DisableReadLatch bool
	// Hooks injects test-only interleaving hooks (see latch.go).
	Hooks Hooks
}

// Table is a heap of versioned rows keyed by string, sharded for
// concurrency. Ordering and range scans are provided by the B+-tree
// index layered above in internal/btree; the heap itself is unordered.
type Table struct {
	name   string
	cfg    Config
	shards [shardCount]shard
	// latches is the per-page read latch table (latch.go).
	latches *latchTable
	// pageSeq allocates heap page slots; page = seq / TuplesPerPage.
	pageSeq atomic.Int64
	// stats
	ioAccesses atomic.Int64
	ioMisses   atomic.Int64
}

const shardCount = 64

type shard struct {
	mu   sync.Mutex        //ssi:lock level=20 name=storage.shard
	rows map[string]*Tuple // head of version chain (newest first)
}

// NewTable creates an empty heap named name.
func NewTable(name string, cfg Config) *Table {
	t := &Table{name: name, cfg: cfg, latches: newLatchTable(cfg.LatchPartitions)}
	for i := range t.shards {
		t.shards[i].rows = make(map[string]*Tuple)
	}
	return t
}

// Name returns the table's name.
func (t *Table) Name() string { return t.name }

func (t *Table) shardFor(key string) *shard {
	return &t.shards[fnv32(key)%shardCount]
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// allocPage assigns a heap page for a new tuple version.
func (t *Table) allocPage() int64 {
	return t.pageSeq.Add(1) / TuplesPerPage
}

// simulateIO charges one page access against the simulated device.
func (t *Table) simulateIO() {
	if t.cfg.IODelay <= 0 {
		return
	}
	t.ioAccesses.Add(1)
	if t.cfg.CacheMissRatio > 0 && rand.Float64() < t.cfg.CacheMissRatio {
		t.ioMisses.Add(1)
		time.Sleep(t.cfg.IODelay)
	}
}

// IOStats reports simulated page accesses and misses.
func (t *Table) IOStats() (accesses, misses int64) {
	return t.ioAccesses.Load(), t.ioMisses.Load()
}

// Get returns the version of key visible to snap, along with the MVCC
// conflict-out set described on ReadResult. self is the reading
// transaction's xid (InvalidTxID for transactions that have not written).
// Get never takes a page latch: it serves readers that register no
// SIREAD lock (read committed, repeatable read, S2PL, safe snapshots),
// for whom MVCC visibility alone is the contract. Serializable readers
// must use Read with latched=true so their SIREAD registration happens
// under the page latch.
func (t *Table) Get(key string, snap *mvcc.Snapshot, self mvcc.TxID, mgr *mvcc.Manager) ReadResult {
	var out ReadResult
	t.Read(key, snap, self, mgr, false, func(res ReadResult) error {
		out = res
		return nil
	})
	return out
}

// Read performs a visibility-checked read of key and invokes fn with the
// result — if latched is true, while holding the read latch (shared
// mode) of the page containing the visible version. No latch is held
// when no version is visible: the phantom protection for absent keys is
// the index gap lock, which the engine acquires under the index tree
// lock *before* the heap read. fn is where a serializable caller
// inserts its SIREAD lock: doing so under the latch makes the
// visibility check and the lock insertion one atomic step relative to
// Update/Delete, which stamp xmax and probe the SIREAD table under the
// same latch, exclusively. Read returns fn's error.
//
// Callers that register nothing in fn (non-serializable reads) pass
// latched=false and skip the latch entirely — they cannot lose an
// rw-antidependency because they never carry one.
//
// fn must not call back into this table (the latch is not reentrant) and
// must not block on other transactions; lock-manager work (mutex-only)
// is fine per the ordering rules in latch.go.
func (t *Table) Read(key string, snap *mvcc.Snapshot, self mvcc.TxID, mgr *mvcc.Manager, latched bool, fn func(ReadResult) error) error {
	t.simulateIO()
	sh := t.shardFor(key)
	sh.mu.Lock()
	var latch *sync.RWMutex
	var res ReadResult
	for {
		head := pruneAborted(sh, key, mgr)
		res = readChain(head, snap, self, mgr)
		if res.Tuple == nil || !latched || t.cfg.DisableReadLatch {
			if latch != nil {
				latch.RUnlock()
				latch = nil
			}
			break
		}
		// The latch (shared mode: readers only exclude writers) must
		// be held before the shard mutex is released, or a writer
		// could stamp the version between the visibility check and
		// fn. Acquiring it while holding the shard mutex must not
		// block (that would stall every key in the shard behind one
		// contended page), so on contention the latch is awaited
		// without the shard mutex and the read is recomputed: the
		// chain may have changed while the shard was unlocked.
		want := t.latches.latch(res.Tuple.Page)
		if want == latch {
			break
		}
		if latch != nil {
			latch.RUnlock()
			latch = nil
		}
		if want.TryRLock() {
			latch = want
			break
		}
		sh.mu.Unlock()
		want.RLock()
		latch = want
		sh.mu.Lock()
	}
	sh.mu.Unlock()
	if t.cfg.Hooks.OnRead != nil {
		t.cfg.Hooks.OnRead(t.name, key)
	}
	err := fn(res)
	if latch != nil {
		latch.RUnlock()
	}
	return err
}

// readChain walks a version chain newest-first and applies PostgreSQL's
// visibility rules, collecting rw conflict-out transactions on the way.
func readChain(head *Tuple, snap *mvcc.Snapshot, self mvcc.TxID, mgr *mvcc.Manager) ReadResult {
	var res ReadResult
	for v := head; v != nil; v = v.Older {
		if v.Xmin == self {
			// Own write: visible unless we deleted it ourselves.
			if v.Xmax == self {
				return res
			}
			res.Tuple = v
			return res
		}
		st, seq := mgr.Status(v.Xmin)
		switch st {
		case mvcc.StatusAborted:
			continue
		case mvcc.StatusInProgress:
			// Created by a concurrent, still-running transaction:
			// invisible, and an rw conflict out for serializable
			// readers (the reader must precede the writer).
			res.ConflictOut = append(res.ConflictOut, v.Xmin)
			continue
		case mvcc.StatusCommitted:
			if !snap.SeesCommitted(v.Xmin, seq) {
				// Committed after our snapshot: concurrent.
				res.ConflictOut = append(res.ConflictOut, v.Xmin)
				continue
			}
		}
		// v was created by a transaction visible to the snapshot.
		// Check its deletion status.
		if v.Xmax == 0 {
			res.Tuple = v
			return res
		}
		if v.Xmax == self {
			// Deleted by ourselves.
			return res
		}
		xst, xseq := mgr.Status(v.Xmax)
		switch xst {
		case mvcc.StatusAborted:
			res.Tuple = v
			return res
		case mvcc.StatusInProgress:
			res.ConflictOut = append(res.ConflictOut, v.Xmax)
			res.Tuple = v
			return res
		case mvcc.StatusCommitted:
			if snap.SeesCommitted(v.Xmax, xseq) {
				// Deleted before our snapshot: row is gone.
				return res
			}
			// Deleted by a concurrent transaction that committed
			// after our snapshot: still visible to us, and an rw
			// conflict out.
			res.ConflictOut = append(res.ConflictOut, v.Xmax)
			res.Tuple = v
			return res
		}
	}
	return res
}

// pruneAborted drops leading versions created by aborted transactions and
// clears aborted xmax stamps, keeping chains tidy. Caller holds sh.mu.
func pruneAborted(sh *shard, key string, mgr *mvcc.Manager) *Tuple {
	head := sh.rows[key]
	for head != nil {
		st, _ := mgr.Status(head.Xmin)
		if st != mvcc.StatusAborted {
			break
		}
		head = head.Older
	}
	if head == nil {
		delete(sh.rows, key)
		return nil
	}
	if sh.rows[key] != head {
		sh.rows[key] = head
	}
	if head.Xmax != 0 {
		if st, _ := mgr.Status(head.Xmax); st == mvcc.StatusAborted {
			head.Xmax = 0
			head.SubMax = 0
		}
	}
	return head
}

// BatchItem is one key's visibility-checked result within a page group
// delivered by ReadPageBatch. Idx is the key's position in the input
// slice, so callers can map grouped results back to their own per-key
// state in O(1).
type BatchItem struct {
	Key string
	Idx int
	Res ReadResult
}

// ReadPageBatch performs visibility-checked reads of keys (which must be
// free of duplicates), delivering results to fn grouped by the heap page
// of the visible version: fn is invoked once per page with every key
// whose visible version lives on that page, under that page's read
// latch in shared mode when latched is true. Keys with no visible
// version are grouped under page == -1 and delivered without a latch —
// the phantom protection for absent keys is the index gap lock, exactly
// as in Read. fn's first error aborts the batch and is returned.
//
// The grouping is what makes a serializable scan's lock path O(pages)
// instead of O(rows): fn can hand the whole page's surviving tuples to
// the SSI layer as one batched registration (core.AcquireTupleLockBatch)
// while the PR 2 invariant still holds — the registration lands before
// the latch of the page holding the visible versions is released, and a
// batch NEVER spans heap pages, so each fn call is exactly one page's
// {visibility, registration} critical section.
//
// Latched batches run in two passes: an unlatched prediction pass groups
// keys by the page of their currently-visible version, then each group's
// latch is acquired (shared, blocking, with no other lock held — the
// same order as Read's contended-latch retry path) and every key's
// visibility is recomputed under it; the latched result is the
// authoritative one. A key whose visible version moved to a different
// page between the passes falls back to the per-row Read path and is
// delivered as a single-item batch, so every item handed to fn with a
// page >= 0 is guaranteed to live on that page, under that page's latch.
// Unlatched batches (non-tracking readers, who register nothing) take a
// single streaming pass, grouping consecutive same-page results.
func (t *Table) ReadPageBatch(keys []string, snap *mvcc.Snapshot, self mvcc.TxID, mgr *mvcc.Manager, latched bool, fn func(page int64, items []BatchItem) error) error {
	if len(keys) == 0 {
		return nil
	}
	if !latched {
		return t.readBatchUnlatched(keys, snap, self, mgr, fn)
	}

	// Prediction pass: an unlatched peek at each key's visible version,
	// only to choose the page grouping. Results are discarded — the
	// latched pass below recomputes them authoritatively.
	type pageGroup struct {
		page int64
		idx  []int
	}
	var groups []pageGroup
	gidx := make(map[int64]int, 8)
	for i, k := range keys {
		sh := t.shardFor(k)
		sh.mu.Lock()
		res := readChain(pruneAborted(sh, k, mgr), snap, self, mgr)
		sh.mu.Unlock()
		pg := int64(-1)
		if res.Tuple != nil {
			pg = res.Tuple.Page
		}
		g, ok := gidx[pg]
		if !ok {
			g = len(groups)
			gidx[pg] = g
			groups = append(groups, pageGroup{page: pg})
		}
		groups[g].idx = append(groups[g].idx, i)
	}

	var retry []int
	items := make([]BatchItem, 0, TuplesPerPage)
	for _, g := range groups {
		t.simulateIO()
		var latch *sync.RWMutex
		if g.page >= 0 && !t.cfg.DisableReadLatch {
			latch = t.latches.latch(g.page)
			latch.RLock()
		}
		items = items[:0]
		for _, ki := range g.idx {
			k := keys[ki]
			sh := t.shardFor(k)
			sh.mu.Lock()
			res := readChain(pruneAborted(sh, k, mgr), snap, self, mgr)
			sh.mu.Unlock()
			if res.Tuple != nil && res.Tuple.Page != g.page {
				// The visible version moved between the passes (or
				// appeared where none was predicted): this key's
				// latch invariant cannot be met in this group.
				retry = append(retry, ki)
				continue
			}
			if h := t.cfg.Hooks.OnRead; h != nil {
				h(t.name, k)
			}
			items = append(items, BatchItem{Key: k, Idx: ki, Res: res})
		}
		var err error
		if len(items) > 0 {
			err = fn(g.page, items)
		}
		if latch != nil {
			latch.RUnlock()
		}
		if err != nil {
			return err
		}
	}
	// Fallback for keys the prediction mispredicted: the per-row latched
	// read, delivered as single-item batches.
	for _, ki := range retry {
		key, idx := keys[ki], ki
		err := t.Read(key, snap, self, mgr, true, func(res ReadResult) error {
			pg := int64(-1)
			if res.Tuple != nil {
				pg = res.Tuple.Page
			}
			return fn(pg, []BatchItem{{Key: key, Idx: idx, Res: res}})
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// readBatchUnlatched is ReadPageBatch for readers that register no
// SIREAD locks: one streaming pass, flushing a group whenever the
// visible version's page changes (consecutive keys usually share pages,
// so IO is still charged per page run, not per row).
func (t *Table) readBatchUnlatched(keys []string, snap *mvcc.Snapshot, self mvcc.TxID, mgr *mvcc.Manager, fn func(page int64, items []BatchItem) error) error {
	items := make([]BatchItem, 0, TuplesPerPage)
	page := int64(-1)
	flush := func() error {
		if len(items) == 0 {
			return nil
		}
		t.simulateIO()
		err := fn(page, items)
		items = items[:0]
		return err
	}
	for i, k := range keys {
		sh := t.shardFor(k)
		sh.mu.Lock()
		res := readChain(pruneAborted(sh, k, mgr), snap, self, mgr)
		sh.mu.Unlock()
		if h := t.cfg.Hooks.OnRead; h != nil {
			h(t.name, k)
		}
		pg := int64(-1)
		if res.Tuple != nil {
			pg = res.Tuple.Page
		}
		if pg != page {
			if err := flush(); err != nil {
				return err
			}
			page = pg
		}
		items = append(items, BatchItem{Key: k, Idx: i, Res: res})
	}
	return flush()
}

// WriteResult describes a successful write for the benefit of the SSI
// layer: which heap pages are involved so SIREAD locks can be checked and
// the write-lock-drops-SIREAD optimization applied.
type WriteResult struct {
	// OldPage is the heap page of the superseded version (update and
	// delete); readers' tuple-granularity SIREAD locks name this page.
	OldPage int64
	// NewPage is the heap page of the newly created version (insert
	// and update).
	NewPage int64
}

// Insert creates the first live version of key. It fails with
// ErrDuplicateKey if a visible live version exists or a concurrent
// transaction committed one; if a concurrent in-progress transaction
// holds the key, Insert blocks until that transaction finishes, matching
// PostgreSQL's behaviour on unique-index conflicts.
func (t *Table) Insert(key string, value []byte, xid mvcc.TxID, subID int32, snap *mvcc.Snapshot, mgr *mvcc.Manager, wg *waitgraph.Graph) (WriteResult, error) {
	t.simulateIO()
	sh := t.shardFor(key)
	for {
		sh.mu.Lock()
		head := pruneAborted(sh, key, mgr)
		if head == nil {
			nv := &Tuple{Key: key, Value: value, Xmin: xid, SubMin: subID, Page: t.allocPage()}
			sh.rows[key] = nv
			sh.mu.Unlock()
			return WriteResult{OldPage: -1, NewPage: nv.Page}, nil
		}
		// Some version chain exists. Determine whether the newest
		// version is live for us or for a concurrent transaction.
		if head.Xmin == xid && head.Xmax == xid {
			// We deleted our own version earlier; re-inserting is
			// allowed and creates a fresh version.
			nv := &Tuple{Key: key, Value: value, Xmin: xid, SubMin: subID, Page: t.allocPage(), Older: head}
			sh.rows[key] = nv
			sh.mu.Unlock()
			return WriteResult{OldPage: head.Page, NewPage: nv.Page}, nil
		}
		st, seq := mgr.Status(head.Xmin)
		if st == mvcc.StatusInProgress && head.Xmin != xid {
			holder := head.Xmin
			sh.mu.Unlock()
			if err := t.waitFor(xid, holder, mgr, wg); err != nil {
				return WriteResult{}, err
			}
			continue
		}
		// Creator committed (or is us). Is the row currently deleted?
		res := readChain(head, snap, xid, mgr)
		if res.Tuple != nil {
			sh.mu.Unlock()
			return WriteResult{}, ErrDuplicateKey
		}
		if head.Xmax == 0 && st == mvcc.StatusCommitted && !snap.SeesCommitted(head.Xmin, seq) {
			// A concurrent transaction inserted the key and
			// committed: unique violation even though we cannot
			// see the row.
			sh.mu.Unlock()
			return WriteResult{}, ErrDuplicateKey
		}
		if head.Xmax != 0 && head.Xmax != xid {
			if xst, _ := mgr.Status(head.Xmax); xst == mvcc.StatusInProgress {
				holder := head.Xmax
				sh.mu.Unlock()
				if err := t.waitFor(xid, holder, mgr, wg); err != nil {
					return WriteResult{}, err
				}
				continue
			}
		}
		// Row is dead for everyone relevant: safe to create anew.
		nv := &Tuple{Key: key, Value: value, Xmin: xid, SubMin: subID, Page: t.allocPage(), Older: head}
		sh.rows[key] = nv
		sh.mu.Unlock()
		return WriteResult{OldPage: head.Page, NewPage: nv.Page}, nil
	}
}

// Update replaces the visible version of key with a new version holding
// value. It implements snapshot isolation's write protocol: block on an
// in-progress updater, then fail with ErrWriteConflict if a concurrent
// transaction committed a change to the row.
//
// check, if non-nil, runs after the write is applied but before the
// superseded version's page latch is released; serializable callers put
// their SIREAD-table probe (core.CheckWrite) there so the xmax stamp and
// the probe are one atomic step relative to readers of the page (see
// latch.go). A check error is returned as Update's error; the stamp is
// not undone — the caller is expected to abort the transaction, after
// which pruneAborted reclaims the stamp, exactly as when the engine-level
// conflict check failed after a successful write in the unlatched design.
func (t *Table) Update(key string, value []byte, xid mvcc.TxID, subID int32, snap *mvcc.Snapshot, mgr *mvcc.Manager, wg *waitgraph.Graph, check func(WriteResult) error) (WriteResult, error) {
	return t.modify(key, value, false, xid, subID, snap, mgr, wg, check)
}

// Delete stamps the visible version of key as deleted by xid, with the
// same blocking, first-updater-wins, and latched-check behaviour as
// Update.
func (t *Table) Delete(key string, xid mvcc.TxID, subID int32, snap *mvcc.Snapshot, mgr *mvcc.Manager, wg *waitgraph.Graph, check func(WriteResult) error) (WriteResult, error) {
	return t.modify(key, nil, true, xid, subID, snap, mgr, wg, check)
}

func (t *Table) modify(key string, value []byte, del bool, xid mvcc.TxID, subID int32, snap *mvcc.Snapshot, mgr *mvcc.Manager, wg *waitgraph.Graph, check func(WriteResult) error) (WriteResult, error) {
	t.simulateIO()
	sh := t.shardFor(key)
	// held is the exclusive page latch carried across revalidation
	// rounds. Keeping the latch once its blocking acquisition succeeds
	// (instead of releasing and re-trying) is what guarantees writer
	// progress on a read-hot page: a steady stream of shared holders
	// could otherwise win every TryLock race forever. It must be
	// released on every exit and before every wait.
	var held *sync.RWMutex
	release := func() {
		if held != nil {
			held.Unlock()
			held = nil
		}
	}
	for {
		sh.mu.Lock()
		head := pruneAborted(sh, key, mgr)
		if head == nil {
			sh.mu.Unlock()
			release()
			return WriteResult{}, ErrNotFound
		}
		// If the newest version belongs to an in-progress concurrent
		// transaction, that transaction holds the tuple write lock.
		if head.Xmin != xid {
			if st, _ := mgr.Status(head.Xmin); st == mvcc.StatusInProgress {
				holder := head.Xmin
				sh.mu.Unlock()
				release()
				if err := t.waitFor(xid, holder, mgr, wg); err != nil {
					return WriteResult{}, err
				}
				continue
			}
		}
		res := readChain(head, snap, xid, mgr)
		if res.Tuple == nil {
			// Nothing visible. If a concurrent committed
			// transaction owns the newest version, this is a
			// first-updater-wins conflict; otherwise the row is
			// simply absent.
			if st, seq := mgr.Status(head.Xmin); head.Xmin != xid && st == mvcc.StatusCommitted && !snap.SeesCommitted(head.Xmin, seq) {
				sh.mu.Unlock()
				release()
				return WriteResult{}, ErrWriteConflict
			}
			if head.Xmax != 0 && head.Xmax != xid {
				if xst, xseq := mgr.Status(head.Xmax); xst == mvcc.StatusCommitted && !snap.SeesCommitted(head.Xmax, xseq) {
					sh.mu.Unlock()
					release()
					return WriteResult{}, ErrWriteConflict
				}
			}
			sh.mu.Unlock()
			release()
			return WriteResult{}, ErrNotFound
		}
		v := res.Tuple
		if v != head {
			// A newer version exists that we cannot see: it was
			// created by a concurrent transaction. Its creator is
			// committed (in-progress creators were handled above),
			// so first-updater-wins rejects us.
			sh.mu.Unlock()
			release()
			return WriteResult{}, ErrWriteConflict
		}
		if v.Xmax != 0 && v.Xmax != xid {
			xst, _ := mgr.Status(v.Xmax)
			switch xst {
			case mvcc.StatusInProgress:
				holder := v.Xmax
				sh.mu.Unlock()
				release()
				if err := t.waitFor(xid, holder, mgr, wg); err != nil {
					return WriteResult{}, err
				}
				continue
			case mvcc.StatusCommitted:
				// Concurrent delete/update committed while we
				// were deciding: conflict.
				sh.mu.Unlock()
				release()
				return WriteResult{}, ErrWriteConflict
			case mvcc.StatusAborted:
				v.Xmax = 0
				v.SubMax = 0
			}
		}
		// We hold the tuple: latch the superseded version's page
		// exclusively (readers share it), then stamp xmax and (for
		// updates) prepend the new version. The latch is taken while
		// still holding the shard mutex (the fixed shard → latch order
		// of latch.go), so the decision made above cannot be
		// invalidated before the stamp, and it is held across the
		// caller's check so no reader of this page can interleave its
		// visibility check between the stamp and the SIREAD probe.
		// Blocking on a contended latch while holding the shard mutex
		// would stall the whole shard: the latch is awaited unlocked
		// and kept (held) while the write decision is redone.
		if !t.cfg.DisableReadLatch {
			latch := t.latches.latch(v.Page)
			if latch != held {
				release()
				if !latch.TryLock() {
					sh.mu.Unlock()
					latch.Lock()
					held = latch
					continue
				}
				held = latch
			}
		}
		v.Xmax = xid
		v.SubMax = subID
		wr := WriteResult{OldPage: v.Page, NewPage: -1}
		if !del {
			nv := &Tuple{Key: key, Value: value, Xmin: xid, SubMin: subID, Page: t.allocPage(), Older: v}
			sh.rows[key] = nv
			wr.NewPage = nv.Page
		}
		sh.mu.Unlock()
		var err error
		if check != nil {
			err = check(wr)
		}
		release()
		return wr, err
	}
}

// waitFor blocks xid until holder finishes, registering the wait in the
// deadlock graph.
func (t *Table) waitFor(xid, holder mvcc.TxID, mgr *mvcc.Manager, wg *waitgraph.Graph) error {
	if wg != nil {
		if err := wg.Wait(xid, holder); err != nil {
			return err
		}
		defer wg.Done(xid)
	}
	<-mgr.Done(holder)
	return nil
}

// UndoSubxact removes the effects xid made to key at or after subID:
// versions created are unlinked and xmax stamps are cleared. The engine
// calls this for every key written in a rolled-back savepoint scope
// (§7.3). It is a no-op for keys the subtransaction did not touch.
func (t *Table) UndoSubxact(key string, xid mvcc.TxID, subID int32) {
	sh := t.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	head := sh.rows[key]
	// Unlink versions created by (xid, >=subID) from the head of the
	// chain. Only our own uncommitted versions can sit above committed
	// ones, so scanning from the head suffices.
	for head != nil && head.Xmin == xid && head.SubMin >= subID {
		head = head.Older
	}
	if head == nil {
		delete(sh.rows, key)
		return
	}
	sh.rows[key] = head
	if head.Xmax == xid && head.SubMax >= subID {
		head.Xmax = 0
		head.SubMax = 0
	}
}

// ForEach invokes fn for every row visible to snap, shard by shard, in
// unspecified order. It returns the union of conflict-out transactions
// observed. Full-table (sequential) scans go through this path; ordered
// scans go through the B+-tree index instead.
func (t *Table) ForEach(snap *mvcc.Snapshot, self mvcc.TxID, mgr *mvcc.Manager, fn func(tu *Tuple) bool) []mvcc.TxID {
	var conflicts []mvcc.TxID
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		type visible struct{ tu *Tuple }
		var out []visible
		for key, head := range sh.rows {
			_ = key
			res := readChain(head, snap, self, mgr)
			conflicts = append(conflicts, res.ConflictOut...)
			if res.Tuple != nil {
				out = append(out, visible{res.Tuple})
			}
		}
		sh.mu.Unlock()
		for _, v := range out {
			t.simulateIO()
			if !fn(v.tu) {
				return conflicts
			}
		}
	}
	return conflicts
}

// Len returns the number of row chains (live or dead) in the heap.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.rows)
		sh.mu.Unlock()
	}
	return n
}

// Vacuum removes versions that can no longer be seen by any snapshot
// whose visibility horizon is horizonXID: versions superseded by a
// committed transaction below the horizon, and aborted detritus. It
// returns the number of versions removed.
func (t *Table) Vacuum(horizon *mvcc.Snapshot, mgr *mvcc.Manager) int {
	removed := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for key, head := range sh.rows {
			head = pruneAborted(sh, key, mgr)
			if head == nil {
				continue
			}
			// Find the newest version visible to the horizon; all
			// versions older than it are unreachable.
			cut := head
			for cut != nil {
				if mgr.Visible(cut.Xmin, horizon) {
					break
				}
				cut = cut.Older
			}
			if cut != nil && cut.Older != nil {
				for v := cut.Older; v != nil; v = v.Older {
					removed++
				}
				cut.Older = nil
			}
			// If the sole remaining version is a committed delete
			// visible to everyone, drop the row entirely.
			if head.Older == nil && head.Xmax != 0 {
				if st, seq := mgr.Status(head.Xmax); st == mvcc.StatusCommitted && horizon.SeesCommitted(head.Xmax, seq) {
					delete(sh.rows, key)
					removed++
				}
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

// String implements fmt.Stringer for debugging.
func (t *Table) String() string {
	return fmt.Sprintf("table %s (%d rows)", t.name, t.Len())
}
