package storage

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"pgssi/internal/mvcc"
	"pgssi/internal/waitgraph"
)

// Tests for ReadPageBatch, the page-grained scan read entry point: the
// grouping contract (every latched item lives on the delivered page),
// result parity with the per-row Read path, latch exclusion against
// writers of a batched page, and the prediction-miss fallback under
// concurrent updates.

// batchKeys seeds n committed rows and returns their keys in order.
func batchKeys(t *testing.T, h *harness, n int) []string {
	t.Helper()
	seed := h.begin()
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%04d", i)
		if err := h.insert(seed, keys[i], "v"+keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	h.mgr.Commit(seed.xid)
	return keys
}

func TestReadPageBatchParityWithRead(t *testing.T) {
	for _, latched := range []bool{true, false} {
		t.Run(fmt.Sprintf("latched=%v", latched), func(t *testing.T) {
			h := newHarness(t)
			keys := batchKeys(t, h, 150) // spans 3 heap pages
			// Mix in absent keys: they must arrive with Res.Tuple == nil.
			all := append(append([]string(nil), keys...), "zz-absent-1", "zz-absent-2")
			r := h.begin()
			got := make(map[string]string)
			var absent []string
			err := h.tbl.ReadPageBatch(all, r.snap, r.xid, h.mgr, latched, func(page int64, items []BatchItem) error {
				for _, it := range items {
					if all[it.Idx] != it.Key {
						t.Errorf("item %q carries input index %d, which names %q", it.Key, it.Idx, all[it.Idx])
					}
					if it.Res.Tuple == nil {
						absent = append(absent, it.Key)
						continue
					}
					if it.Res.Tuple.Page != page {
						t.Errorf("item %q delivered under page %d but lives on page %d", it.Key, page, it.Res.Tuple.Page)
					}
					if _, dup := got[it.Key]; dup {
						t.Errorf("key %q delivered twice", it.Key)
					}
					got[it.Key] = string(it.Res.Tuple.Value)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range keys {
				want, ok := h.get(r, k)
				if !ok {
					t.Fatalf("per-row read lost %q", k)
				}
				if got[k] != want {
					t.Fatalf("batch read of %q = %q, per-row = %q", k, got[k], want)
				}
			}
			if len(absent) != 2 {
				t.Fatalf("absent keys delivered = %v, want the 2 seeded ones", absent)
			}
		})
	}
}

func TestReadPageBatchGroupsOncePerPage(t *testing.T) {
	h := newHarness(t)
	keys := batchKeys(t, h, 3*TuplesPerPage)
	r := h.begin()
	seen := make(map[int64]int)
	calls := 0
	err := h.tbl.ReadPageBatch(keys, r.snap, r.xid, h.mgr, true, func(page int64, items []BatchItem) error {
		calls++
		seen[page] += len(items)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sequentially inserted rows fill pages in order: one fn call per
	// page, every row accounted for.
	if calls != len(seen) {
		t.Fatalf("%d calls for %d distinct pages: a page was delivered in several batches", calls, len(seen))
	}
	total := 0
	for _, n := range seen {
		total += n
	}
	if total != len(keys) {
		t.Fatalf("delivered %d items, want %d", total, len(keys))
	}
	if calls >= len(keys)/2 {
		t.Fatalf("grouping degenerated: %d calls for %d keys", calls, len(keys))
	}
}

// TestReadPageBatchLatchExcludesWriter parks the batch callback while it
// holds a page's shared latch and asserts a writer superseding a version
// on that page blocks until the callback returns — the batched form of
// the PR 2 invariant (registration can complete before any writer of
// the page stamps a version).
func TestReadPageBatchLatchExcludesWriter(t *testing.T) {
	h := newHarness(t)
	keys := batchKeys(t, h, 2)
	r := h.begin()
	inBatch := make(chan int64, 4)
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		err := h.tbl.ReadPageBatch(keys, r.snap, r.xid, h.mgr, true, func(page int64, items []BatchItem) error {
			inBatch <- page
			<-release
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	<-inBatch

	w := h.begin()
	wrote := make(chan error, 1)
	go func() {
		wrote <- h.update(w, keys[0], "clobbered")
	}()
	select {
	case err := <-wrote:
		t.Fatalf("writer finished (err=%v) while the batch held the page latch", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-wrote; err != nil {
		t.Fatal(err)
	}
	<-done
}

// TestReadPageBatchConcurrentUpdates races whole-range batch reads
// against updaters that continually move rows onto fresh heap pages, so
// prediction misses and the per-row fallback fire constantly. The fn
// invariant — a latched item's visible version lives on the delivered
// page — is asserted on every delivery.
func TestReadPageBatchConcurrentUpdates(t *testing.T) {
	h := newHarness(t)
	keys := batchKeys(t, h, 96)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for wk := 0; wk < 2; wk++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 7))
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := h.begin()
				k := keys[rng.IntN(len(keys))]
				if err := h.update(w, k, "u"); err != nil {
					h.mgr.Abort(w.xid)
					continue
				}
				h.mgr.Commit(w.xid)
			}
		}(uint64(wk + 1))
	}
	for i := 0; i < 40; i++ {
		r := h.begin()
		n := 0
		err := h.tbl.ReadPageBatch(keys, r.snap, r.xid, h.mgr, true, func(page int64, items []BatchItem) error {
			for _, it := range items {
				if it.Res.Tuple != nil {
					n++
					if page >= 0 && it.Res.Tuple.Page != page {
						t.Errorf("latched item %q on page %d delivered under page %d", it.Key, it.Res.Tuple.Page, page)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != len(keys) {
			t.Fatalf("scan %d: %d visible rows, want %d (every key stays live)", i, n, len(keys))
		}
		h.mgr.Abort(r.xid)
	}
	close(stop)
	wg.Wait()
}

// TestReadPageBatchHookRunsUnderLatch pins the OnRead hook's placement
// on the batch path: it must fire with the page latch held (a writer of
// the page cannot complete while a hooked reader is parked), mirroring
// the per-row path's contract the interleaving harness relies on.
func TestReadPageBatchHookRunsUnderLatch(t *testing.T) {
	hooked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cfg := Config{Hooks: Hooks{OnRead: func(_, key string) {
		if key == "k0000" {
			once.Do(func() {
				close(hooked)
				<-release
			})
		}
	}}}
	mgr := mvcc.NewManager()
	tbl := NewTable("t", cfg)
	wg := waitgraph.New()
	seed := mgr.Begin()
	snap := mgr.TakeSnapshot()
	if _, err := tbl.Insert("k0000", []byte("v"), seed, 0, snap, mgr, wg); err != nil {
		t.Fatal(err)
	}
	mgr.Commit(seed)

	r := mgr.Begin()
	rsnap := mgr.TakeSnapshot()
	done := make(chan struct{})
	go func() {
		defer close(done)
		err := tbl.ReadPageBatch([]string{"k0000"}, rsnap, r, mgr, true, func(int64, []BatchItem) error { return nil })
		if err != nil {
			t.Error(err)
		}
	}()
	<-hooked

	w := mgr.Begin()
	wsnap := mgr.TakeSnapshot()
	wrote := make(chan error, 1)
	go func() {
		_, err := tbl.Update("k0000", []byte("x"), w, 0, wsnap, mgr, wg, nil)
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("writer finished (err=%v) while the hooked batch reader held the latch", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-wrote; err != nil {
		t.Fatal(err)
	}
	<-done
}
