package storage

import "sync"

// This file implements the per-heap-page read latch table, the analogue
// of PostgreSQL's buffer content lock in the role it plays for SSI
// (§4.1, §5.2 of the paper): PostgreSQL holds the buffer page lock
// across the MVCC visibility check and the predicate-lock insertion, so
// a writer to the same page cannot slip its CheckForSerializableConflictIn
// probe between the two and miss the rw-antidependency. This engine has
// no buffer manager, so the latch table supplies the equivalent mutual
// exclusion directly.
//
// The table is sharded by page number into Config.LatchPartitions
// mutexes (hash-partitioned like the SIREAD lock table in
// internal/core/partition.go). Collisions between distinct pages only
// add mutual exclusion, never remove it, so the shard count is purely a
// concurrency knob.
//
// Protocol (see also the ordering rules in internal/core/partition.go):
//
//   - A serializable reader (Table.Read with latched=true) computes the
//     visibility result under the row's shard mutex, acquires the latch
//     of the page holding the visible version in shared mode while
//     still holding the shard mutex, releases the shard mutex, and runs
//     the caller's callback — which inserts the SIREAD lock and flags
//     MVCC conflicts — before releasing the latch. Readers that
//     register no SIREAD lock (read committed, repeatable read, S2PL,
//     safe snapshots) pass latched=false and skip the latch: they have
//     no registration to make atomic, so they cannot lose an
//     rw-antidependency to the window.
//   - A writer (Table.Update / Table.Delete) acquires the latch of the
//     page holding the version it is about to supersede in exclusive
//     mode while holding the shard mutex, stamps xmax (and links the
//     new version), releases the shard mutex, and runs the caller's
//     write-check callback — which probes the SIREAD table
//     (core.CheckWrite) — before releasing the latch.
//
// The invariant this buys: a reader of the current HEAD version and a
// writer superseding that same version latch the same page, so their
// critical sections serialize — if the read ran first, the writer's
// probe finds the SIREAD lock; if the write ran first, the reader's
// visibility check sees the stamped xmax and reports the writer in
// ReadResult.ConflictOut. That head-version case is the only one the
// latch needs to close. A reader whose older snapshot sees a non-head
// version V1 latches V1's page, not the head's, and a concurrent writer
// W superseding head V2 is indeed not serialized against it — but that
// reader's rw-antidependency is to V2's creator (the writer of the
// *next* version of what it read), which its chain walk already reports
// in ConflictOut from the MVCC data alone; any cycle through the
// unflagged reader→W path also runs through the flagged reader→creator
// edge and the ww order creator→W, so nothing detectable is lost.
// Either way every rw-antidependency is seen by at least one side,
// which is the property the paper's correctness argument requires.
//
// Lock ordering: shard mutex → page latch → (caller's callback, which
// may take the SSI locks of internal/core). A goroutine holds at most
// one shard mutex and at most one page latch, and no code path acquires
// a storage-layer lock while holding any internal/core lock, so the
// combined order is acyclic. One refinement keeps a contended page from
// stalling its whole shard: while holding a shard mutex a latch may
// only be acquired with TryLock; on failure the shard mutex is released,
// the latch is awaited unlatched, and the operation revalidates (Read
// recomputes the visibility result, modify redoes its write decision).
// Blocking latch acquisition therefore never happens with a shard mutex
// held, which is also what makes the latch-before-shard reacquisition in
// Read's retry path deadlock-free.

// defaultLatchPartitions is the default page-latch shard count per table.
const defaultLatchPartitions = 64

// Hooks are test-only interleaving hooks injected through Config. They
// let a deterministic test park a goroutine inside a critical window
// that normal scheduling would hit only probabilistically.
type Hooks struct {
	// OnRead is invoked by Table.Read after the MVCC visibility check
	// and before the result is delivered to the caller's callback
	// (where the SIREAD lock is inserted). With the page latch enabled
	// the hook runs while the latch is held, so a paused reader
	// excludes writers to the page; with DisableReadLatch it runs in
	// the open detection window the latch exists to close.
	OnRead func(table, key string)
}

// latchTable is one table's page-latch shard array. Latches are
// reader/writer locks, mirroring PostgreSQL's BUFFER_LOCK_SHARE /
// BUFFER_LOCK_EXCLUSIVE discipline: concurrent readers of one page
// (each registering its own SIREAD lock — thread-safe in the
// partitioned lock table) share the latch, while a writer stamping a
// version on the page takes it exclusively. Reader-vs-reader exclusion
// would serialize every read of a 64-tuple page for no correctness
// benefit; only reader-vs-writer interleavings can lose an
// rw-antidependency.
//
// Blocking acquisition order is latch before shard mutex; the reverse
// direction is try-only (TryRLock under shard.mu cannot deadlock).
// ssilint enforces this — both the slice and the latch() getter carry
// the annotation; see docs/invariants.md.
type latchTable struct {
	mask    uint64
	latches []sync.RWMutex //ssi:lock level=10 name=storage.pageLatch
}

func newLatchTable(n int) *latchTable {
	if n <= 0 {
		n = defaultLatchPartitions
	}
	// Round up to a power of two so shard selection is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	return &latchTable{mask: uint64(p - 1), latches: make([]sync.RWMutex, p)}
}

// latch returns the lock guarding page. Pages are allocated
// sequentially, so a Fibonacci multiplicative hash spreads consecutive
// pages across shards.
//
//ssi:lock level=10 name=storage.pageLatch
func (lt *latchTable) latch(page int64) *sync.RWMutex {
	h := uint64(page) * 0x9e3779b97f4a7c15
	return &lt.latches[(h>>32)&lt.mask]
}
