package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"pgssi/internal/mvcc"
	"pgssi/internal/waitgraph"
)

type harness struct {
	t   *testing.T
	mgr *mvcc.Manager
	tbl *Table
	wg  *waitgraph.Graph
}

func newHarness(t *testing.T) *harness {
	return &harness{t: t, mgr: mvcc.NewManager(), tbl: NewTable("t", Config{}), wg: waitgraph.New()}
}

type txn struct {
	xid  mvcc.TxID
	snap *mvcc.Snapshot
}

func (h *harness) begin() *txn {
	xid := h.mgr.Begin()
	return &txn{xid: xid, snap: h.mgr.TakeSnapshot()}
}

func (h *harness) insert(tx *txn, key, val string) error {
	_, err := h.tbl.Insert(key, []byte(val), tx.xid, 0, tx.snap, h.mgr, h.wg)
	return err
}

func (h *harness) update(tx *txn, key, val string) error {
	_, err := h.tbl.Update(key, []byte(val), tx.xid, 0, tx.snap, h.mgr, h.wg)
	return err
}

func (h *harness) get(tx *txn, key string) (string, bool) {
	res := h.tbl.Get(key, tx.snap, tx.xid, h.mgr)
	if res.Tuple == nil {
		return "", false
	}
	return string(res.Tuple.Value), true
}

func TestInsertVisibleAfterCommitOnly(t *testing.T) {
	h := newHarness(t)
	w := h.begin()
	if err := h.insert(w, "a", "1"); err != nil {
		t.Fatal(err)
	}
	// Own write visible to self.
	if v, ok := h.get(w, "a"); !ok || v != "1" {
		t.Fatalf("own write invisible: %q %v", v, ok)
	}
	// Invisible to a concurrent reader.
	r := h.begin()
	if _, ok := h.get(r, "a"); ok {
		t.Fatal("uncommitted insert visible to concurrent snapshot")
	}
	h.mgr.Commit(w.xid)
	// Still invisible to the old snapshot.
	if _, ok := h.get(r, "a"); ok {
		t.Fatal("commit after snapshot must stay invisible")
	}
	// Visible to a new snapshot.
	r2 := h.begin()
	if v, ok := h.get(r2, "a"); !ok || v != "1" {
		t.Fatalf("committed insert invisible: %q %v", v, ok)
	}
}

func TestConflictOutReportsConcurrentWriter(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	if err := h.insert(seed, "a", "1"); err != nil {
		t.Fatal(err)
	}
	h.mgr.Commit(seed.xid)

	r := h.begin()
	w := h.begin()
	if err := h.update(w, "a", "2"); err != nil {
		t.Fatal(err)
	}
	h.mgr.Commit(w.xid)

	res := h.tbl.Get("a", r.snap, r.xid, h.mgr)
	if res.Tuple == nil || string(res.Tuple.Value) != "1" {
		t.Fatalf("reader must still see old version, got %v", res.Tuple)
	}
	found := false
	for _, x := range res.ConflictOut {
		if x == w.xid {
			found = true
		}
	}
	if !found {
		t.Fatalf("conflict-out must name the concurrent writer %d, got %v", w.xid, res.ConflictOut)
	}
}

func TestFirstUpdaterWins(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	_ = h.insert(seed, "a", "1")
	h.mgr.Commit(seed.xid)

	t1 := h.begin()
	t2 := h.begin()
	if err := h.update(t1, "a", "t1"); err != nil {
		t.Fatal(err)
	}
	h.mgr.Commit(t1.xid)
	// t2's snapshot predates t1's commit: first-updater-wins.
	if err := h.update(t2, "a", "t2"); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("want ErrWriteConflict, got %v", err)
	}
}

func TestWriterBlocksOnInProgressHolderThenConflicts(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	_ = h.insert(seed, "a", "1")
	h.mgr.Commit(seed.xid)

	t1 := h.begin()
	t2 := h.begin()
	if err := h.update(t1, "a", "t1"); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		errCh <- h.update(t2, "a", "t2")
	}()
	<-started
	h.mgr.Commit(t1.xid)
	if err := <-errCh; !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("blocked writer must fail after holder commits, got %v", err)
	}
}

func TestWriterProceedsAfterHolderAborts(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	_ = h.insert(seed, "a", "1")
	h.mgr.Commit(seed.xid)

	t1 := h.begin()
	t2 := h.begin()
	if err := h.update(t1, "a", "t1"); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- h.update(t2, "a", "t2") }()
	h.mgr.Abort(t1.xid)
	if err := <-errCh; err != nil {
		t.Fatalf("writer must proceed after holder aborts: %v", err)
	}
	h.mgr.Commit(t2.xid)
	r := h.begin()
	if v, _ := h.get(r, "a"); v != "t2" {
		t.Fatalf("value = %q, want t2", v)
	}
}

func TestDeadlockDetectedOnTupleWaits(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	_ = h.insert(seed, "a", "1")
	_ = h.insert(seed, "b", "1")
	h.mgr.Commit(seed.xid)

	t1 := h.begin()
	t2 := h.begin()
	if err := h.update(t1, "a", "x"); err != nil {
		t.Fatal(err)
	}
	if err := h.update(t2, "b", "x"); err != nil {
		t.Fatal(err)
	}
	// t1 waits for b (held by t2); t2 then waits for a (held by t1):
	// one of them must observe the deadlock.
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); errs <- h.update(t1, "b", "y") }()
	go func() { defer wg.Done(); errs <- h.update(t2, "a", "y") }()
	// One waits forever unless the other is killed: simulate the
	// engine aborting the deadlock victim.
	var sawDeadlock bool
	select {
	case err := <-errs:
		if errors.Is(err, ErrDeadlock) {
			sawDeadlock = true
		}
	}
	if !sawDeadlock {
		t.Fatal("expected a deadlock error from one waiter")
	}
	// Abort both so the remaining waiter wakes.
	h.mgr.Abort(t1.xid)
	h.mgr.Abort(t2.xid)
	wg.Wait()
}

func TestDeleteAndReinsert(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	_ = h.insert(seed, "a", "1")
	h.mgr.Commit(seed.xid)

	d := h.begin()
	if _, err := h.tbl.Delete("a", d.xid, 0, d.snap, h.mgr, h.wg); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.get(d, "a"); ok {
		t.Fatal("own delete must hide the row")
	}
	h.mgr.Commit(d.xid)

	i := h.begin()
	if err := h.insert(i, "a", "2"); err != nil {
		t.Fatalf("re-insert after committed delete: %v", err)
	}
	h.mgr.Commit(i.xid)
	r := h.begin()
	if v, _ := h.get(r, "a"); v != "2" {
		t.Fatalf("value = %q, want 2", v)
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	_ = h.insert(seed, "a", "1")
	h.mgr.Commit(seed.xid)
	w := h.begin()
	if err := h.insert(w, "a", "2"); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("want ErrDuplicateKey, got %v", err)
	}
	// Insert of a key committed by a concurrent txn also fails.
	early := h.begin()
	w2 := h.begin()
	_ = h.insert(w2, "b", "1")
	h.mgr.Commit(w2.xid)
	if err := h.insert(early, "b", "2"); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("concurrent duplicate: want ErrDuplicateKey, got %v", err)
	}
}

func TestUpdateMissingKey(t *testing.T) {
	h := newHarness(t)
	w := h.begin()
	if err := h.update(w, "nope", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestSubxactUndoRestoresPreviousState(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	_ = h.insert(seed, "a", "base")
	h.mgr.Commit(seed.xid)

	tx := h.begin()
	if _, err := h.tbl.Update("a", []byte("sub"), tx.xid, 1, tx.snap, h.mgr, h.wg); err != nil {
		t.Fatal(err)
	}
	if v, _ := h.get(tx, "a"); v != "sub" {
		t.Fatalf("value = %q, want sub", v)
	}
	h.tbl.UndoSubxact("a", tx.xid, 1)
	if v, _ := h.get(tx, "a"); v != "base" {
		t.Fatalf("after undo, value = %q, want base", v)
	}
	// The write lock must be released: another txn can update after we
	// commit nothing on that key.
	h.mgr.Commit(tx.xid)
	o := h.begin()
	if err := h.update(o, "a", "other"); err != nil {
		t.Fatalf("update after undo: %v", err)
	}
}

func TestForEachVisibility(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	for i := 0; i < 20; i++ {
		_ = h.insert(seed, fmt.Sprintf("k%02d", i), "v")
	}
	h.mgr.Commit(seed.xid)
	w := h.begin()
	_ = h.insert(w, "uncommitted", "v")
	r := h.begin()
	n := 0
	h.tbl.ForEach(r.snap, r.xid, h.mgr, func(tu *Tuple) bool { n++; return true })
	if n != 20 {
		t.Fatalf("visible rows = %d, want 20", n)
	}
	h.mgr.Abort(w.xid)
}

func TestVacuumRemovesDeadVersions(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	_ = h.insert(seed, "a", "0")
	h.mgr.Commit(seed.xid)
	for i := 0; i < 10; i++ {
		w := h.begin()
		if err := h.update(w, "a", fmt.Sprintf("%d", i)); err != nil {
			t.Fatal(err)
		}
		h.mgr.Commit(w.xid)
	}
	horizon := h.mgr.TakeSnapshot()
	removed := h.tbl.Vacuum(horizon, h.mgr)
	if removed < 9 {
		t.Fatalf("vacuum removed %d versions, want >= 9", removed)
	}
	r := h.begin()
	if v, _ := h.get(r, "a"); v != "9" {
		t.Fatalf("value after vacuum = %q, want 9", v)
	}
}

func TestPageAssignmentAdvances(t *testing.T) {
	h := newHarness(t)
	w := h.begin()
	pages := map[int64]bool{}
	for i := 0; i < TuplesPerPage*3; i++ {
		wr, err := h.tbl.Insert(fmt.Sprintf("k%04d", i), nil, w.xid, 0, w.snap, h.mgr, h.wg)
		if err != nil {
			t.Fatal(err)
		}
		pages[wr.NewPage] = true
	}
	if len(pages) < 3 {
		t.Fatalf("expected at least 3 heap pages, got %d", len(pages))
	}
}
