package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pgssi/internal/mvcc"
	"pgssi/internal/waitgraph"
)

type harness struct {
	t   *testing.T
	mgr *mvcc.Manager
	tbl *Table
	wg  *waitgraph.Graph
}

func newHarness(t *testing.T) *harness {
	return &harness{t: t, mgr: mvcc.NewManager(), tbl: NewTable("t", Config{}), wg: waitgraph.New()}
}

type txn struct {
	xid  mvcc.TxID
	snap *mvcc.Snapshot
}

func (h *harness) begin() *txn {
	xid := h.mgr.Begin()
	return &txn{xid: xid, snap: h.mgr.TakeSnapshot()}
}

func (h *harness) insert(tx *txn, key, val string) error {
	_, err := h.tbl.Insert(key, []byte(val), tx.xid, 0, tx.snap, h.mgr, h.wg)
	return err
}

func (h *harness) update(tx *txn, key, val string) error {
	_, err := h.tbl.Update(key, []byte(val), tx.xid, 0, tx.snap, h.mgr, h.wg, nil)
	return err
}

func (h *harness) get(tx *txn, key string) (string, bool) {
	res := h.tbl.Get(key, tx.snap, tx.xid, h.mgr)
	if res.Tuple == nil {
		return "", false
	}
	return string(res.Tuple.Value), true
}

func TestInsertVisibleAfterCommitOnly(t *testing.T) {
	h := newHarness(t)
	w := h.begin()
	if err := h.insert(w, "a", "1"); err != nil {
		t.Fatal(err)
	}
	// Own write visible to self.
	if v, ok := h.get(w, "a"); !ok || v != "1" {
		t.Fatalf("own write invisible: %q %v", v, ok)
	}
	// Invisible to a concurrent reader.
	r := h.begin()
	if _, ok := h.get(r, "a"); ok {
		t.Fatal("uncommitted insert visible to concurrent snapshot")
	}
	h.mgr.Commit(w.xid)
	// Still invisible to the old snapshot.
	if _, ok := h.get(r, "a"); ok {
		t.Fatal("commit after snapshot must stay invisible")
	}
	// Visible to a new snapshot.
	r2 := h.begin()
	if v, ok := h.get(r2, "a"); !ok || v != "1" {
		t.Fatalf("committed insert invisible: %q %v", v, ok)
	}
}

func TestConflictOutReportsConcurrentWriter(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	if err := h.insert(seed, "a", "1"); err != nil {
		t.Fatal(err)
	}
	h.mgr.Commit(seed.xid)

	r := h.begin()
	w := h.begin()
	if err := h.update(w, "a", "2"); err != nil {
		t.Fatal(err)
	}
	h.mgr.Commit(w.xid)

	res := h.tbl.Get("a", r.snap, r.xid, h.mgr)
	if res.Tuple == nil || string(res.Tuple.Value) != "1" {
		t.Fatalf("reader must still see old version, got %v", res.Tuple)
	}
	found := false
	for _, x := range res.ConflictOut {
		if x == w.xid {
			found = true
		}
	}
	if !found {
		t.Fatalf("conflict-out must name the concurrent writer %d, got %v", w.xid, res.ConflictOut)
	}
}

func TestFirstUpdaterWins(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	_ = h.insert(seed, "a", "1")
	h.mgr.Commit(seed.xid)

	t1 := h.begin()
	t2 := h.begin()
	if err := h.update(t1, "a", "t1"); err != nil {
		t.Fatal(err)
	}
	h.mgr.Commit(t1.xid)
	// t2's snapshot predates t1's commit: first-updater-wins.
	if err := h.update(t2, "a", "t2"); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("want ErrWriteConflict, got %v", err)
	}
}

func TestWriterBlocksOnInProgressHolderThenConflicts(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	_ = h.insert(seed, "a", "1")
	h.mgr.Commit(seed.xid)

	t1 := h.begin()
	t2 := h.begin()
	if err := h.update(t1, "a", "t1"); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		errCh <- h.update(t2, "a", "t2")
	}()
	<-started
	h.mgr.Commit(t1.xid)
	if err := <-errCh; !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("blocked writer must fail after holder commits, got %v", err)
	}
}

func TestWriterProceedsAfterHolderAborts(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	_ = h.insert(seed, "a", "1")
	h.mgr.Commit(seed.xid)

	t1 := h.begin()
	t2 := h.begin()
	if err := h.update(t1, "a", "t1"); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- h.update(t2, "a", "t2") }()
	h.mgr.Abort(t1.xid)
	if err := <-errCh; err != nil {
		t.Fatalf("writer must proceed after holder aborts: %v", err)
	}
	h.mgr.Commit(t2.xid)
	r := h.begin()
	if v, _ := h.get(r, "a"); v != "t2" {
		t.Fatalf("value = %q, want t2", v)
	}
}

func TestDeadlockDetectedOnTupleWaits(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	_ = h.insert(seed, "a", "1")
	_ = h.insert(seed, "b", "1")
	h.mgr.Commit(seed.xid)

	t1 := h.begin()
	t2 := h.begin()
	if err := h.update(t1, "a", "x"); err != nil {
		t.Fatal(err)
	}
	if err := h.update(t2, "b", "x"); err != nil {
		t.Fatal(err)
	}
	// t1 waits for b (held by t2); t2 then waits for a (held by t1):
	// one of them must observe the deadlock.
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); errs <- h.update(t1, "b", "y") }()
	go func() { defer wg.Done(); errs <- h.update(t2, "a", "y") }()
	// One waits forever unless the other is killed: simulate the
	// engine aborting the deadlock victim.
	var sawDeadlock bool
	select {
	case err := <-errs:
		if errors.Is(err, ErrDeadlock) {
			sawDeadlock = true
		}
	}
	if !sawDeadlock {
		t.Fatal("expected a deadlock error from one waiter")
	}
	// Abort both so the remaining waiter wakes.
	h.mgr.Abort(t1.xid)
	h.mgr.Abort(t2.xid)
	wg.Wait()
}

func TestDeleteAndReinsert(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	_ = h.insert(seed, "a", "1")
	h.mgr.Commit(seed.xid)

	d := h.begin()
	if _, err := h.tbl.Delete("a", d.xid, 0, d.snap, h.mgr, h.wg, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.get(d, "a"); ok {
		t.Fatal("own delete must hide the row")
	}
	h.mgr.Commit(d.xid)

	i := h.begin()
	if err := h.insert(i, "a", "2"); err != nil {
		t.Fatalf("re-insert after committed delete: %v", err)
	}
	h.mgr.Commit(i.xid)
	r := h.begin()
	if v, _ := h.get(r, "a"); v != "2" {
		t.Fatalf("value = %q, want 2", v)
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	_ = h.insert(seed, "a", "1")
	h.mgr.Commit(seed.xid)
	w := h.begin()
	if err := h.insert(w, "a", "2"); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("want ErrDuplicateKey, got %v", err)
	}
	// Insert of a key committed by a concurrent txn also fails.
	early := h.begin()
	w2 := h.begin()
	_ = h.insert(w2, "b", "1")
	h.mgr.Commit(w2.xid)
	if err := h.insert(early, "b", "2"); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("concurrent duplicate: want ErrDuplicateKey, got %v", err)
	}
}

func TestUpdateMissingKey(t *testing.T) {
	h := newHarness(t)
	w := h.begin()
	if err := h.update(w, "nope", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestSubxactUndoRestoresPreviousState(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	_ = h.insert(seed, "a", "base")
	h.mgr.Commit(seed.xid)

	tx := h.begin()
	if _, err := h.tbl.Update("a", []byte("sub"), tx.xid, 1, tx.snap, h.mgr, h.wg, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := h.get(tx, "a"); v != "sub" {
		t.Fatalf("value = %q, want sub", v)
	}
	h.tbl.UndoSubxact("a", tx.xid, 1)
	if v, _ := h.get(tx, "a"); v != "base" {
		t.Fatalf("after undo, value = %q, want base", v)
	}
	// The write lock must be released: another txn can update after we
	// commit nothing on that key.
	h.mgr.Commit(tx.xid)
	o := h.begin()
	if err := h.update(o, "a", "other"); err != nil {
		t.Fatalf("update after undo: %v", err)
	}
}

func TestForEachVisibility(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	for i := 0; i < 20; i++ {
		_ = h.insert(seed, fmt.Sprintf("k%02d", i), "v")
	}
	h.mgr.Commit(seed.xid)
	w := h.begin()
	_ = h.insert(w, "uncommitted", "v")
	r := h.begin()
	n := 0
	h.tbl.ForEach(r.snap, r.xid, h.mgr, func(tu *Tuple) bool { n++; return true })
	if n != 20 {
		t.Fatalf("visible rows = %d, want 20", n)
	}
	h.mgr.Abort(w.xid)
}

func TestVacuumRemovesDeadVersions(t *testing.T) {
	h := newHarness(t)
	seed := h.begin()
	_ = h.insert(seed, "a", "0")
	h.mgr.Commit(seed.xid)
	for i := 0; i < 10; i++ {
		w := h.begin()
		if err := h.update(w, "a", fmt.Sprintf("%d", i)); err != nil {
			t.Fatal(err)
		}
		h.mgr.Commit(w.xid)
	}
	horizon := h.mgr.TakeSnapshot()
	removed := h.tbl.Vacuum(horizon, h.mgr)
	if removed < 9 {
		t.Fatalf("vacuum removed %d versions, want >= 9", removed)
	}
	r := h.begin()
	if v, _ := h.get(r, "a"); v != "9" {
		t.Fatalf("value after vacuum = %q, want 9", v)
	}
}

func TestPageAssignmentAdvances(t *testing.T) {
	h := newHarness(t)
	w := h.begin()
	pages := map[int64]bool{}
	for i := 0; i < TuplesPerPage*3; i++ {
		wr, err := h.tbl.Insert(fmt.Sprintf("k%04d", i), nil, w.xid, 0, w.snap, h.mgr, h.wg)
		if err != nil {
			t.Fatal(err)
		}
		pages[wr.NewPage] = true
	}
	if len(pages) < 3 {
		t.Fatalf("expected at least 3 heap pages, got %d", len(pages))
	}
}

// --- per-page read latch (latch.go) ---

// TestReadLatchExcludesWriter proves the mutual exclusion the latch
// exists for: while a reader's callback is running, a writer of the same
// page cannot stamp the version — its Update completes only after the
// callback returns.
func TestReadLatchExcludesWriter(t *testing.T) {
	h := newHarness(t)
	w := h.begin()
	if err := h.insert(w, "a", "1"); err != nil {
		t.Fatal(err)
	}
	h.mgr.Commit(w.xid)

	r := h.begin()
	inCallback := make(chan struct{})
	releaseReader := make(chan struct{})
	readerDone := make(chan struct{})
	writerDone := make(chan struct{})

	go func() {
		defer close(readerDone)
		h.tbl.Read("a", r.snap, r.xid, h.mgr, true, func(res ReadResult) error {
			if res.Tuple == nil {
				t.Error("reader saw no tuple")
				return nil
			}
			close(inCallback)
			<-releaseReader
			return nil
		})
	}()

	<-inCallback
	u := h.begin()
	go func() {
		defer close(writerDone)
		if err := h.update(u, "a", "2"); err != nil {
			t.Errorf("update: %v", err)
		}
	}()

	// The writer must not complete while the reader holds the latch.
	// (Safe direction: a tardy scheduler can only make the timeout arm
	// win, never the failure arm.)
	select {
	case <-writerDone:
		t.Fatal("writer completed while reader's callback held the page latch")
	case <-time.After(50 * time.Millisecond):
	}
	close(releaseReader)
	<-readerDone
	<-writerDone
}

// TestReadLatchDisabledAdmitsWriter is the ablation: with
// DisableReadLatch a writer runs to completion inside the reader's
// callback window — the exact schedule of the missed-antidependency
// race the engine-level interleaving tests reproduce end to end.
func TestReadLatchDisabledAdmitsWriter(t *testing.T) {
	h := &harness{t: t, mgr: mvcc.NewManager(), tbl: NewTable("t", Config{DisableReadLatch: true}), wg: waitgraph.New()}
	w := h.begin()
	if err := h.insert(w, "a", "1"); err != nil {
		t.Fatal(err)
	}
	h.mgr.Commit(w.xid)

	r := h.begin()
	err := h.tbl.Read("a", r.snap, r.xid, h.mgr, true, func(res ReadResult) error {
		// Single-threaded: the writer completes inside the window.
		u := h.begin()
		return h.update(u, "a", "2")
	})
	if err != nil {
		t.Fatalf("unlatched writer should slip into the window, got %v", err)
	}
}

// TestWriteCheckRunsUnderLatch verifies the write side: the check
// callback observes the already-stamped version, runs before Update
// returns, and excludes readers of the page until it finishes.
func TestWriteCheckRunsUnderLatch(t *testing.T) {
	h := newHarness(t)
	w := h.begin()
	if err := h.insert(w, "a", "1"); err != nil {
		t.Fatal(err)
	}
	h.mgr.Commit(w.xid)

	u := h.begin()
	inCheck := make(chan struct{})
	releaseWriter := make(chan struct{})
	writerDone := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		_, err := h.tbl.Update("a", []byte("2"), u.xid, 0, u.snap, h.mgr, h.wg, func(wr WriteResult) error {
			close(inCheck)
			<-releaseWriter
			return nil
		})
		if err != nil {
			t.Errorf("update: %v", err)
		}
	}()

	<-inCheck
	r := h.begin()
	go func() {
		defer close(readerDone)
		h.tbl.Read("a", r.snap, r.xid, h.mgr, true, func(ReadResult) error { return nil })
	}()
	select {
	case <-readerDone:
		t.Fatal("reader completed while the writer's check held the page latch")
	case <-time.After(50 * time.Millisecond):
	}
	close(releaseWriter)
	<-writerDone
	<-readerDone
	// The reader, having waited out the latch, sees the writer's
	// in-progress stamp and invisible new version: every conflict-out
	// entry names the writer.
	res := h.tbl.Get("a", r.snap, r.xid, h.mgr)
	if res.Tuple == nil || len(res.ConflictOut) == 0 {
		t.Fatalf("post-latch read should report the writer as conflict out, got %+v", res)
	}
	for _, xid := range res.ConflictOut {
		if xid != u.xid {
			t.Fatalf("conflict out names %d, want writer %d", xid, u.xid)
		}
	}
}

// TestWriteCheckErrorPropagates verifies a failing check surfaces as the
// write's error while leaving the stamp for the caller's abort path.
func TestWriteCheckErrorPropagates(t *testing.T) {
	h := newHarness(t)
	w := h.begin()
	if err := h.insert(w, "a", "1"); err != nil {
		t.Fatal(err)
	}
	h.mgr.Commit(w.xid)

	u := h.begin()
	boom := errors.New("boom")
	if _, err := h.tbl.Update("a", []byte("2"), u.xid, 0, u.snap, h.mgr, h.wg, func(WriteResult) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("check error not propagated: %v", err)
	}
	// Aborting the writer reclaims the stamp.
	h.mgr.Abort(u.xid)
	r := h.begin()
	if v, ok := h.get(r, "a"); !ok || v != "1" {
		t.Fatalf("row not restored after aborted checked write: %q %v", v, ok)
	}
}

// TestOnReadHookFires verifies hook placement: between the visibility
// check and the callback.
func TestOnReadHookFires(t *testing.T) {
	var events []string
	cfg := Config{Hooks: Hooks{OnRead: func(table, key string) {
		events = append(events, "hook:"+table+"/"+key)
	}}}
	h := &harness{t: t, mgr: mvcc.NewManager(), tbl: NewTable("t", cfg), wg: waitgraph.New()}
	w := h.begin()
	if err := h.insert(w, "a", "1"); err != nil {
		t.Fatal(err)
	}
	h.mgr.Commit(w.xid)
	r := h.begin()
	h.tbl.Read("a", r.snap, r.xid, h.mgr, true, func(ReadResult) error {
		events = append(events, "callback")
		return nil
	})
	if len(events) != 2 || events[0] != "hook:t/a" || events[1] != "callback" {
		t.Fatalf("unexpected event order: %v", events)
	}
}

// TestLatchTableRounding checks the power-of-two sizing and that
// distinct pages map within bounds.
func TestLatchTableRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, defaultLatchPartitions}, {1, 1}, {3, 4}, {64, 64}, {65, 128}} {
		lt := newLatchTable(tc.in)
		if len(lt.latches) != tc.want {
			t.Fatalf("newLatchTable(%d) = %d shards, want %d", tc.in, len(lt.latches), tc.want)
		}
		for p := int64(0); p < 1000; p++ {
			lt.latch(p).Lock()
			lt.latch(p).Unlock()
		}
	}
}
