package workload

import (
	"fmt"
	"math/rand/v2"
	"strconv"

	"pgssi"
)

// SIBENCH (§8.1, from Cahill's thesis): a single table of N ⟨key, value⟩
// pairs; equal numbers of update transactions (set one random key's
// value) and query transactions (scan the whole table for the key with
// the lowest value). The query/update rw-conflict pattern is the worst
// case for locking and the showcase for SSI's read-only optimizations:
// at larger table sizes, query transactions run long enough to outlive
// the updaters active at their snapshot and drop to safe-snapshot mode.

// SIBench generates and runs the microbenchmark.
type SIBench struct {
	// Rows is the table size N (the x-axis of Figure 4).
	Rows int
	// ScanRows, if nonzero, bounds each query transaction's scan to the
	// first ScanRows keys instead of the whole table, making the
	// scan-heavy mix tunable independently of the table size (the
	// page-grained read path's O(pages) vs O(rows) behaviour is a
	// function of the scanned range, not of N). Zero means full-table
	// scans, the Figure 4 shape.
	ScanRows int
}

const siTable = "sibench"

func sibenchKey(i int) string { return fmt.Sprintf("k%06d", i) }

// Setup creates and populates the table.
func (b SIBench) Setup(db *pgssi.DB) error {
	if err := db.CreateTable(siTable); err != nil {
		return err
	}
	rng := rand.New(rand.NewPCG(11, 7))
	tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	if err != nil {
		return err
	}
	for i := 0; i < b.Rows; i++ {
		v := strconv.Itoa(rng.IntN(1_000_000))
		if err := tx.Insert(siTable, sibenchKey(i), []byte(v)); err != nil {
			tx.Rollback()
			return err
		}
	}
	return tx.Commit()
}

// Mix returns the 50/50 update/query mix.
func (b SIBench) Mix() *Mix {
	return NewMix().
		Add(0.5, Job{Name: "update", Fn: b.update}).
		Add(0.5, Job{Name: "query", ReadOnly: true, Fn: b.query})
}

// update sets one randomly selected key to a new random value.
func (b SIBench) update(tx *pgssi.Tx, rng *rand.Rand) error {
	k := sibenchKey(rng.IntN(b.Rows))
	v := strconv.Itoa(rng.IntN(1_000_000))
	return tx.Update(siTable, k, []byte(v))
}

// query scans the table (bounded by ScanRows when set) to find the key
// with the lowest value.
func (b SIBench) query(tx *pgssi.Tx, _ *rand.Rand) error {
	hi := ""
	if b.ScanRows > 0 && b.ScanRows < b.Rows {
		hi = sibenchKey(b.ScanRows)
	}
	best := ""
	bestVal := 1 << 62
	err := tx.Scan(siTable, "", hi, func(k string, v []byte) bool {
		n, _ := strconv.Atoi(string(v))
		if best == "" || n < bestVal {
			best, bestVal = k, n
		}
		return true
	})
	return err
}

// Run sets up a fresh database with cfg and measures the mix at the
// given isolation level.
func (b SIBench) Run(cfg pgssi.Config, opts RunOptions) (Result, error) {
	db := pgssi.Open(cfg)
	if err := b.Setup(db); err != nil {
		return Result{}, err
	}
	return RunClosedLoop(db, b.Mix(), opts), nil
}

// SIBenchSeries holds normalized throughput for the Figure 4 series.
type SIBenchSeries struct {
	Rows    int
	SI      float64 // absolute, txn/s (the 1.0x baseline)
	SSI     float64 // relative to SI
	SSINoRO float64 // relative to SI, read-only opts disabled
	S2PL    float64 // relative to SI
}

// Figure4 runs the full SIBENCH sweep and returns one row per table size,
// with SSI / SSI-no-r/o-opt / S2PL throughput normalized to SI — the
// exact series of Figure 4.
func Figure4(rows []int, opts RunOptions) ([]SIBenchSeries, error) {
	return Figure4Cfg(rows, pgssi.Config{}, opts)
}

// Figure4Cfg is Figure4 with a base database configuration applied to
// every series, used to sweep engine knobs (e.g. SIREAD lock-table
// partitions) across the benchmark.
func Figure4Cfg(rows []int, base pgssi.Config, opts RunOptions) ([]SIBenchSeries, error) {
	return Figure4Scan(rows, 0, base, opts)
}

// Figure4Scan is Figure4Cfg with a bounded scan range: scanRows > 0
// caps each query transaction's scan at that many keys (see
// SIBench.ScanRows), which is how cmd/sibench's -scanrows flag makes
// the scan-heavy mix reproducible at a chosen scan length.
func Figure4Scan(rows []int, scanRows int, base pgssi.Config, opts RunOptions) ([]SIBenchSeries, error) {
	var out []SIBenchSeries
	for _, n := range rows {
		b := SIBench{Rows: n, ScanRows: scanRows}
		si, err := b.Run(base, withLevel(opts, pgssi.RepeatableRead))
		if err != nil {
			return nil, err
		}
		ssi, err := b.Run(base, withLevel(opts, pgssi.Serializable))
		if err != nil {
			return nil, err
		}
		noROCfg := base
		noROCfg.DisableReadOnlyOpt = true
		noRO, err := b.Run(noROCfg, withLevel(opts, pgssi.Serializable))
		if err != nil {
			return nil, err
		}
		s2pl, err := b.Run(base, withLevel(opts, pgssi.SerializableS2PL))
		if err != nil {
			return nil, err
		}
		row := SIBenchSeries{Rows: n, SI: si.Throughput}
		if si.Throughput > 0 {
			row.SSI = ssi.Throughput / si.Throughput
			row.SSINoRO = noRO.Throughput / si.Throughput
			row.S2PL = s2pl.Throughput / si.Throughput
		}
		out = append(out, row)
	}
	return out, nil
}

func withLevel(opts RunOptions, level pgssi.IsolationLevel) RunOptions {
	opts.Level = level
	return opts
}
