package workload

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync/atomic"

	"pgssi"
)

// DBT-2++ (§8.2): a TPC-C-style transaction processing workload with the
// five standard transaction types plus the "credit check" transaction
// from Cahill's TPC-C++ variant, which reads a customer's balance and
// recent order history and updates their credit status — the addition
// that makes snapshot isolation anomalies possible (plain TPC-C is
// anomaly-free under SI [Fekete et al. 2005]).
//
// Following the paper's own modifications, warehouse year-to-date totals
// are omitted (a known artificial hotspot) and the read-only item table
// is treated as cacheable.
//
// Key encodings are fixed-width decimal so B+-tree range scans line up
// with TPC-C's access patterns:
//
//	warehouse  w4
//	district   w4|d2
//	customer   w4|d2|c4
//	item       i5
//	stock      w4|i5
//	orders     w4|d2|o7    (value carries the customer id)
//	new_order  w4|d2|o7
//	order_line w4|d2|o7|l2
//	history    w4|d2|c4|h10
type DBT2 struct {
	// Warehouses is the scale factor (25 in-memory / 150 disk-bound in
	// the paper; scale down proportionally for unit-scale runs).
	Warehouses int
	// Districts per warehouse (TPC-C: 10).
	Districts int
	// Customers per district (TPC-C: 3000; scaled down by default).
	Customers int
	// Items in the catalog (TPC-C: 100000; scaled down by default).
	Items int
	// InitialOrders preloaded per district.
	InitialOrders int

	hist atomic.Int64
}

// DefaultDBT2 returns a laptop-scale configuration with the given number
// of warehouses.
func DefaultDBT2(warehouses int) *DBT2 {
	return &DBT2{Warehouses: warehouses, Districts: 10, Customers: 100, Items: 1000, InitialOrders: 10}
}

func wKey(w int) string           { return fmt.Sprintf("%04d", w) }
func dKey(w, d int) string        { return fmt.Sprintf("%04d|%02d", w, d) }
func cKey(w, d, c int) string     { return fmt.Sprintf("%04d|%02d|%04d", w, d, c) }
func iKey(i int) string           { return fmt.Sprintf("%05d", i) }
func sKey(w, i int) string        { return fmt.Sprintf("%04d|%05d", w, i) }
func oKey(w, d, o int) string     { return fmt.Sprintf("%04d|%02d|%07d", w, d, o) }
func olKey(w, d, o, l int) string { return fmt.Sprintf("%04d|%02d|%07d|%02d", w, d, o, l) }
func hKey(w, d, c int, h int64) string {
	return fmt.Sprintf("%04d|%02d|%04d|%010d", w, d, c, h)
}

// field extracts a "k=v" field from a semicolon-separated record.
func field(rec, key string) string {
	for _, part := range strings.Split(rec, ";") {
		if k, v, ok := strings.Cut(part, "="); ok && k == key {
			return v
		}
	}
	return ""
}

func fieldInt(rec, key string) int {
	n, _ := strconv.Atoi(field(rec, key))
	return n
}

func setField(rec, key, val string) string {
	parts := strings.Split(rec, ";")
	for i, part := range parts {
		if k, _, ok := strings.Cut(part, "="); ok && k == key {
			parts[i] = key + "=" + val
			return strings.Join(parts, ";")
		}
	}
	return rec + ";" + key + "=" + val
}

// Tables returns the schema table names (used by replicas).
func (b *DBT2) Tables() []string {
	return []string{"warehouse", "district", "customer", "item", "stock", "orders", "new_order", "order_line", "history"}
}

// Setup creates the schema and loads initial data.
func (b *DBT2) Setup(db *pgssi.DB) error {
	for _, t := range b.Tables() {
		if err := db.CreateTable(t); err != nil {
			return err
		}
	}
	// Secondary index: orders by customer, for order-status and
	// credit-check lookups of a customer's order history.
	err := db.CreateIndex("orders", "by_cust", func(key string, value []byte) (string, bool) {
		// key = w4|d2|o7, value carries c=cccc.
		c := field(string(value), "c")
		if c == "" || len(key) < 7 {
			return "", false
		}
		return key[:7] + "|" + c, true
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewPCG(99, 1))

	// Items.
	tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	if err != nil {
		return err
	}
	for i := 1; i <= b.Items; i++ {
		rec := fmt.Sprintf("price=%d;name=item%05d", 100+rng.IntN(9900), i)
		if err := tx.Insert("item", iKey(i), []byte(rec)); err != nil {
			tx.Rollback()
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}

	// Per warehouse: warehouse, stock, districts, customers, orders.
	for w := 1; w <= b.Warehouses; w++ {
		tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
		if err != nil {
			return err
		}
		rec := fmt.Sprintf("tax=%d;name=wh%04d", rng.IntN(20), w)
		if err := tx.Insert("warehouse", wKey(w), []byte(rec)); err != nil {
			tx.Rollback()
			return err
		}
		for i := 1; i <= b.Items; i++ {
			srec := fmt.Sprintf("qty=%d", 10+rng.IntN(90))
			if err := tx.Insert("stock", sKey(w, i), []byte(srec)); err != nil {
				tx.Rollback()
				return err
			}
		}
		for d := 1; d <= b.Districts; d++ {
			drec := fmt.Sprintf("next=%d;tax=%d", b.InitialOrders+1, rng.IntN(20))
			if err := tx.Insert("district", dKey(w, d), []byte(drec)); err != nil {
				tx.Rollback()
				return err
			}
			for c := 1; c <= b.Customers; c++ {
				crec := fmt.Sprintf("bal=%d;credit=GC;name=cust%04d", -1000+rng.IntN(2000), c)
				if err := tx.Insert("customer", cKey(w, d, c), []byte(crec)); err != nil {
					tx.Rollback()
					return err
				}
			}
			for o := 1; o <= b.InitialOrders; o++ {
				c := 1 + rng.IntN(b.Customers)
				cnt := 5 + rng.IntN(11)
				orec := fmt.Sprintf("c=%04d;cnt=%d;carrier=0", c, cnt)
				if err := tx.Insert("orders", oKey(w, d, o), []byte(orec)); err != nil {
					tx.Rollback()
					return err
				}
				for l := 1; l <= cnt; l++ {
					item := 1 + rng.IntN(b.Items)
					olrec := fmt.Sprintf("i=%05d;qty=%d;amt=%d", item, 1+rng.IntN(10), 100+rng.IntN(9900))
					if err := tx.Insert("order_line", olKey(w, d, o, l), []byte(olrec)); err != nil {
						tx.Rollback()
						return err
					}
				}
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// NewOrder is the TPC-C new-order transaction.
func (b *DBT2) NewOrder(tx *pgssi.Tx, rng *rand.Rand) error {
	w := 1 + rng.IntN(b.Warehouses)
	d := 1 + rng.IntN(b.Districts)
	c := 1 + rng.IntN(b.Customers)

	if _, err := tx.Get("warehouse", wKey(w)); err != nil {
		return err
	}
	drecRaw, err := tx.Get("district", dKey(w, d))
	if err != nil {
		return err
	}
	drec := string(drecRaw)
	o := fieldInt(drec, "next")
	if err := tx.Update("district", dKey(w, d), []byte(setField(drec, "next", strconv.Itoa(o+1)))); err != nil {
		return err
	}
	if _, err := tx.Get("customer", cKey(w, d, c)); err != nil {
		return err
	}
	cnt := 5 + rng.IntN(11)
	for l := 1; l <= cnt; l++ {
		item := 1 + rng.IntN(b.Items)
		irec, err := tx.Get("item", iKey(item))
		if err != nil {
			return err
		}
		price := fieldInt(string(irec), "price")
		srecRaw, err := tx.Get("stock", sKey(w, item))
		if err != nil {
			return err
		}
		srec := string(srecRaw)
		qty := fieldInt(srec, "qty")
		order := 1 + rng.IntN(10)
		newQty := qty - order
		if newQty < 10 {
			newQty += 91
		}
		if err := tx.Update("stock", sKey(w, item), []byte(setField(srec, "qty", strconv.Itoa(newQty)))); err != nil {
			return err
		}
		olrec := fmt.Sprintf("i=%05d;qty=%d;amt=%d", item, order, price*order)
		if err := tx.Insert("order_line", olKey(w, d, o, l), []byte(olrec)); err != nil {
			return err
		}
	}
	orec := fmt.Sprintf("c=%04d;cnt=%d;carrier=0", c, cnt)
	if err := tx.Insert("orders", oKey(w, d, o), []byte(orec)); err != nil {
		return err
	}
	return tx.Insert("new_order", oKey(w, d, o), nil)
}

// Payment is the TPC-C payment transaction (without the warehouse and
// district year-to-date hotspots, per §8.2).
func (b *DBT2) Payment(tx *pgssi.Tx, rng *rand.Rand) error {
	w := 1 + rng.IntN(b.Warehouses)
	d := 1 + rng.IntN(b.Districts)
	c := 1 + rng.IntN(b.Customers)
	amt := 100 + rng.IntN(4900)

	if _, err := tx.Get("district", dKey(w, d)); err != nil {
		return err
	}
	crecRaw, err := tx.Get("customer", cKey(w, d, c))
	if err != nil {
		return err
	}
	crec := string(crecRaw)
	bal := fieldInt(crec, "bal") - amt
	if err := tx.Update("customer", cKey(w, d, c), []byte(setField(crec, "bal", strconv.Itoa(bal)))); err != nil {
		return err
	}
	h := b.hist.Add(1)
	return tx.Insert("history", hKey(w, d, c, h), []byte(strconv.Itoa(amt)))
}

// OrderStatus is the read-only TPC-C order-status transaction: a
// customer's most recent order and its lines.
func (b *DBT2) OrderStatus(tx *pgssi.Tx, rng *rand.Rand) error {
	w := 1 + rng.IntN(b.Warehouses)
	d := 1 + rng.IntN(b.Districts)
	c := 1 + rng.IntN(b.Customers)
	if _, err := tx.Get("customer", cKey(w, d, c)); err != nil {
		return err
	}
	prefix := fmt.Sprintf("%04d|%02d|%04d", w, d, c)
	lastOrder := ""
	err := tx.ScanIndex("orders", "by_cust", prefix, prefix+"\xff", func(key string, _ []byte) bool {
		lastOrder = key
		return true
	})
	if err != nil {
		return err
	}
	if lastOrder == "" {
		return nil
	}
	return tx.Scan("order_line", lastOrder+"|", lastOrder+"|\xff", func(string, []byte) bool { return true })
}

// Delivery is the TPC-C delivery transaction: per district, deliver the
// oldest undelivered order.
func (b *DBT2) Delivery(tx *pgssi.Tx, rng *rand.Rand) error {
	w := 1 + rng.IntN(b.Warehouses)
	for d := 1; d <= b.Districts; d++ {
		prefix := fmt.Sprintf("%04d|%02d|", w, d)
		oldest := ""
		err := tx.Scan("new_order", prefix, prefix+"\xff", func(key string, _ []byte) bool {
			oldest = key
			return false // first key is the oldest order id
		})
		if err != nil {
			return err
		}
		if oldest == "" {
			continue
		}
		if err := tx.Delete("new_order", oldest); err != nil {
			return err
		}
		orecRaw, err := tx.Get("orders", oldest)
		if err != nil {
			return err
		}
		orec := string(orecRaw)
		if err := tx.Update("orders", oldest, []byte(setField(orec, "carrier", strconv.Itoa(1+rng.IntN(10))))); err != nil {
			return err
		}
		total := 0
		err = tx.Scan("order_line", oldest+"|", oldest+"|\xff", func(_ string, v []byte) bool {
			total += fieldInt(string(v), "amt")
			return true
		})
		if err != nil {
			return err
		}
		c := fieldInt(orec, "c")
		crecRaw, err := tx.Get("customer", cKey(w, d, c))
		if err != nil {
			return err
		}
		crec := string(crecRaw)
		bal := fieldInt(crec, "bal") + total
		if err := tx.Update("customer", cKey(w, d, c), []byte(setField(crec, "bal", strconv.Itoa(bal)))); err != nil {
			return err
		}
	}
	return nil
}

// StockLevel is the read-only TPC-C stock-level transaction: items from
// the district's last 20 orders with stock below a threshold.
func (b *DBT2) StockLevel(tx *pgssi.Tx, rng *rand.Rand) error {
	w := 1 + rng.IntN(b.Warehouses)
	d := 1 + rng.IntN(b.Districts)
	threshold := 10 + rng.IntN(11)
	drec, err := tx.Get("district", dKey(w, d))
	if err != nil {
		return err
	}
	next := fieldInt(string(drec), "next")
	lo := next - 20
	if lo < 1 {
		lo = 1
	}
	items := map[int]bool{}
	loKey := fmt.Sprintf("%04d|%02d|%07d", w, d, lo)
	hiKey := fmt.Sprintf("%04d|%02d|%07d", w, d, next)
	err = tx.Scan("order_line", loKey, hiKey, func(_ string, v []byte) bool {
		items[fieldInt(string(v), "i")] = true
		return true
	})
	if err != nil {
		return err
	}
	low := 0
	for i := range items {
		srec, err := tx.Get("stock", sKey(w, i))
		if err != nil {
			if err == pgssi.ErrNotFound {
				continue
			}
			return err
		}
		if fieldInt(string(srec), "qty") < threshold {
			low++
		}
	}
	return nil
}

// CreditCheck is Cahill's TPC-C++ addition: read a customer's balance
// and recent order totals, then update their credit status. Its
// read-orders / write-customer footprint is what creates dependency
// cycles with NewOrder and Delivery under snapshot isolation.
func (b *DBT2) CreditCheck(tx *pgssi.Tx, rng *rand.Rand) error {
	w := 1 + rng.IntN(b.Warehouses)
	d := 1 + rng.IntN(b.Districts)
	c := 1 + rng.IntN(b.Customers)
	crecRaw, err := tx.Get("customer", cKey(w, d, c))
	if err != nil {
		return err
	}
	crec := string(crecRaw)
	bal := fieldInt(crec, "bal")

	prefix := fmt.Sprintf("%04d|%02d|%04d", w, d, c)
	var orders []string
	err = tx.ScanIndex("orders", "by_cust", prefix, prefix+"\xff", func(key string, _ []byte) bool {
		orders = append(orders, key)
		return true
	})
	if err != nil {
		return err
	}
	if len(orders) > 5 {
		orders = orders[len(orders)-5:]
	}
	total := 0
	for _, o := range orders {
		err := tx.Scan("order_line", o+"|", o+"|\xff", func(_ string, v []byte) bool {
			total += fieldInt(string(v), "amt")
			return true
		})
		if err != nil {
			return err
		}
	}
	credit := "GC"
	if total-bal > 50000 {
		credit = "BC"
	}
	return tx.Update("customer", cKey(w, d, c), []byte(setField(crec, "credit", credit)))
}

// Mix builds the DBT-2++ mix with the given read-only fraction (the
// x-axis of Figure 5). The standard TPC-C proportions are kept among the
// read/write transactions (NewOrder 45 : Payment 43 : Delivery 4 plus
// CreditCheck 4), and OrderStatus/StockLevel split the read-only share
// equally. roFraction = 0.08 approximates the standard mix.
func (b *DBT2) Mix(roFraction float64) *Mix {
	rw := 1 - roFraction
	return NewMix().
		Add(rw*45/96, Job{Name: "new_order", Fn: b.NewOrder}).
		Add(rw*43/96, Job{Name: "payment", Fn: b.Payment}).
		Add(rw*4/96, Job{Name: "delivery", Fn: b.Delivery}).
		Add(rw*4/96, Job{Name: "credit_check", Fn: b.CreditCheck}).
		Add(roFraction/2, Job{Name: "order_status", ReadOnly: true, Fn: b.OrderStatus}).
		Add(roFraction/2, Job{Name: "stock_level", ReadOnly: true, Fn: b.StockLevel})
}

// Figure5Row is one point of a Figure 5 sweep.
type Figure5Row struct {
	ROFraction float64
	SI         float64 // absolute txn/s
	SSI        float64 // relative to SI
	SSINoRO    float64 // relative to SI (in-memory config only)
	S2PL       float64 // relative to SI
	SSIFailPct float64 // serialization failure % under SSI
}

// Figure5 sweeps the read-only fraction and measures each concurrency
// control regime, returning normalized throughput per the figure. cfg
// selects the storage configuration: zero for the in-memory run (5a), a
// nonzero IODelay for the disk-bound run (5b). includeNoRO adds the
// "SSI (no r/o opt)" series shown only in 5a.
func (b *DBT2) Figure5(cfg pgssi.Config, fractions []float64, opts RunOptions, includeNoRO bool) ([]Figure5Row, error) {
	var out []Figure5Row
	for _, f := range fractions {
		run := func(c pgssi.Config, level pgssi.IsolationLevel) (Result, error) {
			db := pgssi.Open(c)
			fresh := &DBT2{
				Warehouses:    b.Warehouses,
				Districts:     b.Districts,
				Customers:     b.Customers,
				Items:         b.Items,
				InitialOrders: b.InitialOrders,
			}
			if err := fresh.Setup(db); err != nil {
				return Result{}, err
			}
			return RunClosedLoop(db, fresh.Mix(f), withLevel(opts, level)), nil
		}
		si, err := run(cfg, pgssi.RepeatableRead)
		if err != nil {
			return nil, err
		}
		ssi, err := run(cfg, pgssi.Serializable)
		if err != nil {
			return nil, err
		}
		s2pl, err := run(cfg, pgssi.SerializableS2PL)
		if err != nil {
			return nil, err
		}
		row := Figure5Row{ROFraction: f, SI: si.Throughput, SSIFailPct: 100 * ssi.FailureRate}
		if si.Throughput > 0 {
			row.SSI = ssi.Throughput / si.Throughput
			row.S2PL = s2pl.Throughput / si.Throughput
		}
		if includeNoRO {
			noCfg := cfg
			noCfg.DisableReadOnlyOpt = true
			noRO, err := run(noCfg, pgssi.Serializable)
			if err != nil {
				return nil, err
			}
			if si.Throughput > 0 {
				row.SSINoRO = noRO.Throughput / si.Throughput
			}
		}
		out = append(out, row)
	}
	return out, nil
}
