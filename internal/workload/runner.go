// Package workload implements the paper's three evaluation workloads —
// the SIBENCH microbenchmark (§8.1), the DBT-2++ transaction-processing
// benchmark (TPC-C plus Cahill's "credit check" transaction, §8.2), and
// the RUBiS auction-site bidding mix (§8.3) — together with a closed-loop
// measurement harness and the deferrable-transaction latency probe
// (§8.4).
package workload

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pgssi"
)

// Job is one transaction type in a workload mix.
type Job struct {
	// Name labels the job in per-type statistics.
	Name string
	// ReadOnly declares the transaction READ ONLY at Begin, enabling
	// the §4 optimizations under Serializable.
	ReadOnly bool
	// Fn executes the transaction body. It is retried (in a fresh
	// transaction) on serialization failures.
	Fn func(tx *pgssi.Tx, rng *rand.Rand) error
}

// Mix selects jobs with fixed weights.
type Mix struct {
	jobs    []Job
	weights []float64
	total   float64
}

// NewMix builds a weighted mix. Weights need not sum to 1.
func NewMix() *Mix { return &Mix{} }

// Add appends a job with the given weight and returns the mix.
func (m *Mix) Add(weight float64, job Job) *Mix {
	if weight <= 0 {
		return m
	}
	m.jobs = append(m.jobs, job)
	m.total += weight
	m.weights = append(m.weights, m.total)
	return m
}

// Pick selects a job.
func (m *Mix) Pick(rng *rand.Rand) *Job {
	x := rng.Float64() * m.total
	for i, w := range m.weights {
		if x < w {
			return &m.jobs[i]
		}
	}
	return &m.jobs[len(m.jobs)-1]
}

// ReadOnlyFraction returns the weight fraction of read-only jobs.
func (m *Mix) ReadOnlyFraction() float64 {
	prev := 0.0
	ro := 0.0
	for i, w := range m.weights {
		if m.jobs[i].ReadOnly {
			ro += w - prev
		}
		prev = w
	}
	if m.total == 0 {
		return 0
	}
	return ro / m.total
}

// Result is the outcome of a closed-loop run.
type Result struct {
	Level      pgssi.IsolationLevel
	Duration   time.Duration
	Committed  int64
	Aborted    int64 // serialization failures (each retry attempt counts)
	Errors     int64 // non-retryable errors (should be zero)
	Throughput float64
	// FailureRate is Aborted / (Committed + Aborted).
	FailureRate float64
	// PerJob maps job name → committed count.
	PerJob map[string]int64
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("%-20s %8.0f txn/s  committed=%d aborted=%d (%.3f%% failures)",
		r.Level, r.Throughput, r.Committed, r.Aborted, 100*r.FailureRate)
}

// RunOptions configure a closed-loop run.
type RunOptions struct {
	Level    pgssi.IsolationLevel
	Workers  int
	Duration time.Duration
	// MaxRetries bounds retries per logical transaction (0 = retry
	// until it commits, like the paper's middleware).
	MaxRetries int
	// Seed makes the run reproducible.
	Seed uint64
}

// RunClosedLoop drives Workers goroutines, each executing transactions
// drawn from mix with no think time, for the configured duration — the
// measurement methodology of §8. Serialization failures are retried and
// counted; the transaction rate counts commits only, matching the
// paper's "throughput in committed transactions per second".
func RunClosedLoop(db *pgssi.DB, mix *Mix, opts RunOptions) Result {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	var committed, aborted, hardErrors atomic.Int64
	perJob := make(map[string]*atomic.Int64, 8)
	var perJobMu sync.Mutex
	jobCounter := func(name string) *atomic.Int64 {
		perJobMu.Lock()
		defer perJobMu.Unlock()
		c := perJob[name]
		if c == nil {
			c = &atomic.Int64{}
			perJob[name] = c
		}
		return c
	}

	deadline := time.Now().Add(opts.Duration)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(opts.Seed+1, uint64(w)))
			for time.Now().Before(deadline) {
				job := mix.Pick(rng)
				counter := jobCounter(job.Name)
				retries := 0
				for {
					tx, err := db.Begin(pgssi.TxOptions{Isolation: opts.Level, ReadOnly: job.ReadOnly})
					if err != nil {
						hardErrors.Add(1)
						break
					}
					err = job.Fn(tx, rng)
					if err == nil {
						err = tx.Commit()
					} else {
						tx.Rollback()
					}
					if err == nil {
						committed.Add(1)
						counter.Add(1)
						break
					}
					if !pgssi.IsSerializationFailure(err) {
						hardErrors.Add(1)
						break
					}
					aborted.Add(1)
					retries++
					if opts.MaxRetries > 0 && retries >= opts.MaxRetries {
						break
					}
					if !time.Now().Before(deadline) {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()

	res := Result{
		Level:     opts.Level,
		Duration:  opts.Duration,
		Committed: committed.Load(),
		Aborted:   aborted.Load(),
		Errors:    hardErrors.Load(),
		PerJob:    make(map[string]int64, len(perJob)),
	}
	res.Throughput = float64(res.Committed) / opts.Duration.Seconds()
	if total := res.Committed + res.Aborted; total > 0 {
		res.FailureRate = float64(res.Aborted) / float64(total)
	}
	perJobMu.Lock()
	for name, c := range perJob {
		res.PerJob[name] = c.Load()
	}
	perJobMu.Unlock()
	return res
}

// Percentile returns the p-th percentile (0..100) of durations.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}
