package workload

import (
	"math/rand/v2"

	"pgssi"
)

// Lifecycle microbenchmark: transactions that begin and commit without
// reading or writing anything, so every cost measured is transaction
// lifecycle — snapshot acquisition, SSI registration, the pre-commit
// check, and commit processing. After the SIREAD lock table was
// partitioned (PR 1) and the read path moved under page latches (PR 2),
// Begin/Commit serialization on the SSI manager was the dominant
// residual contention; this mix tracks it the way SIBENCH tracks lock
// contention.

// LifecycleMix returns a mix of empty transactions. roFraction of them
// are declared READ ONLY, exercising the fenced begin path and the §4.2
// safe-snapshot machinery; the rest take the unfenced registry path and
// the conflict-free commit fast path.
func LifecycleMix(roFraction float64) *Mix {
	m := NewMix()
	noop := func(tx *pgssi.Tx, _ *rand.Rand) error { return nil }
	if roFraction < 1 {
		m.Add(1-roFraction, Job{Name: "lifecycle-rw", Fn: noop})
	}
	if roFraction > 0 {
		m.Add(roFraction, Job{Name: "lifecycle-ro", ReadOnly: true, Fn: noop})
	}
	return m
}
