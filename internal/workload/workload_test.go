package workload

import (
	"math/rand/v2"
	"testing"
	"time"

	"pgssi"
)

func shortOpts(level pgssi.IsolationLevel) RunOptions {
	return RunOptions{Level: level, Workers: 4, Duration: 300 * time.Millisecond, Seed: 42}
}

func TestMixWeightsAndPick(t *testing.T) {
	m := NewMix().
		Add(0.75, Job{Name: "a", ReadOnly: true}).
		Add(0.25, Job{Name: "b"})
	if got := m.ReadOnlyFraction(); got != 0.75 {
		t.Fatalf("ReadOnlyFraction = %v, want 0.75", got)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[m.Pick(rng).Name]++
	}
	if counts["a"] < 7000 || counts["a"] > 8000 {
		t.Fatalf("weighted pick skewed: %v", counts)
	}
}

func TestSIBenchRunsCleanAtAllLevels(t *testing.T) {
	for _, level := range []pgssi.IsolationLevel{
		pgssi.RepeatableRead, pgssi.Serializable, pgssi.SerializableS2PL,
	} {
		b := SIBench{Rows: 50}
		res, err := b.Run(pgssi.Config{}, shortOpts(level))
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if res.Errors != 0 {
			t.Fatalf("%v: %d hard errors", level, res.Errors)
		}
		if res.Committed == 0 {
			t.Fatalf("%v: no transactions committed", level)
		}
	}
}

func TestSIBenchNoROOptStillCorrect(t *testing.T) {
	b := SIBench{Rows: 30}
	res, err := b.Run(pgssi.Config{DisableReadOnlyOpt: true}, shortOpts(pgssi.Serializable))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d hard errors", res.Errors)
	}
}

func TestDBT2RunsCleanAtAllLevels(t *testing.T) {
	for _, level := range []pgssi.IsolationLevel{
		pgssi.RepeatableRead, pgssi.Serializable, pgssi.SerializableS2PL,
	} {
		db := pgssi.Open(pgssi.Config{})
		b := DefaultDBT2(1)
		b.Customers = 30
		b.Items = 100
		if err := b.Setup(db); err != nil {
			t.Fatal(err)
		}
		res := RunClosedLoop(db, b.Mix(0.08), shortOpts(level))
		if res.Errors != 0 {
			t.Fatalf("%v: %d hard errors", level, res.Errors)
		}
		if res.Committed == 0 {
			t.Fatalf("%v: nothing committed", level)
		}
	}
}

func TestDBT2AllTransactionTypesExecute(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	b := DefaultDBT2(1)
	b.Customers = 20
	b.Items = 50
	if err := b.Setup(db); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 3))
	for name, fn := range map[string]func(*pgssi.Tx, *rand.Rand) error{
		"new_order":    b.NewOrder,
		"payment":      b.Payment,
		"order_status": b.OrderStatus,
		"delivery":     b.Delivery,
		"stock_level":  b.StockLevel,
		"credit_check": b.CreditCheck,
	} {
		for attempt := 0; ; attempt++ {
			tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.Serializable})
			if err != nil {
				t.Fatal(err)
			}
			err = fn(tx, rng)
			if err == nil {
				err = tx.Commit()
			} else {
				tx.Rollback()
			}
			if err == nil {
				break
			}
			if !pgssi.IsSerializationFailure(err) || attempt > 10 {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestDBT2SerializationFailureRateIsLow(t *testing.T) {
	// §8.2: "in all cases, the serialization failure rate was under
	// 0.25%" on the paper's disk-bound runs; the in-memory standard
	// mix stays well under 1%. Allow slack for a tiny dataset (much
	// hotter than 25 warehouses): typical runs sit around 1–2%, but
	// under the race detector's ~10x slowdown transactions overlap far
	// more and 4–5.5% is routine (measured across PRs 4–5), so the
	// bound guards against an order-of-magnitude regression, not
	// scheduler noise.
	db := pgssi.Open(pgssi.Config{})
	b := DefaultDBT2(2)
	if err := b.Setup(db); err != nil {
		t.Fatal(err)
	}
	res := RunClosedLoop(db, b.Mix(0.08), RunOptions{
		Level: pgssi.Serializable, Workers: 4, Duration: time.Second, Seed: 7,
	})
	if res.Errors != 0 {
		t.Fatalf("%d hard errors", res.Errors)
	}
	if res.FailureRate > 0.10 {
		t.Fatalf("serialization failure rate %.2f%% unexpectedly high", 100*res.FailureRate)
	}
}

func TestRUBiSRunsCleanAtAllLevels(t *testing.T) {
	for _, level := range []pgssi.IsolationLevel{
		pgssi.RepeatableRead, pgssi.Serializable, pgssi.SerializableS2PL,
	} {
		db := pgssi.Open(pgssi.Config{})
		r := &RUBiS{Users: 100, Items: 200, Categories: 5}
		if err := r.Setup(db); err != nil {
			t.Fatal(err)
		}
		res := RunClosedLoop(db, r.Mix(), shortOpts(level))
		if res.Errors != 0 {
			t.Fatalf("%v: %d hard errors", level, res.Errors)
		}
		if res.Committed == 0 {
			t.Fatalf("%v: nothing committed", level)
		}
	}
}

func TestDeferrableProbeUnderLoad(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	b := DefaultDBT2(1)
	b.Customers = 30
	b.Items = 100
	if err := b.Setup(db); err != nil {
		t.Fatal(err)
	}
	res, bg := MeasureDeferrable(db, b.Mix(0.08), RunOptions{
		Level: pgssi.Serializable, Workers: 4, Duration: 800 * time.Millisecond, Seed: 9,
	}, 50*time.Millisecond, func(tx *pgssi.Tx) error {
		_, err := tx.Get("warehouse", wKey(1))
		return err
	})
	if bg.Errors != 0 {
		t.Fatalf("%d hard errors in background load", bg.Errors)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no deferrable samples collected")
	}
	if res.Max > 5*time.Second {
		t.Fatalf("deferrable latency unreasonable: %v", res.Max)
	}
}

func TestIODelayConfigurationSlowsRuns(t *testing.T) {
	fast := SIBench{Rows: 40}
	fres, err := fast.Run(pgssi.Config{}, shortOpts(pgssi.RepeatableRead))
	if err != nil {
		t.Fatal(err)
	}
	slow := SIBench{Rows: 40}
	sres, err := slow.Run(pgssi.Config{IODelay: 200 * time.Microsecond, CacheMissRatio: 0.5},
		shortOpts(pgssi.RepeatableRead))
	if err != nil {
		t.Fatal(err)
	}
	if sres.Throughput >= fres.Throughput {
		t.Fatalf("simulated I/O should reduce throughput: fast=%.0f slow=%.0f",
			fres.Throughput, sres.Throughput)
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{5, 1, 3, 2, 4}
	if p := Percentile(ds, 50); p != 3 {
		t.Fatalf("median = %v, want 3", p)
	}
	if p := Percentile(ds, 100); p != 5 {
		t.Fatalf("max = %v, want 5", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("empty percentile = %v, want 0", p)
	}
}

func TestLifecycleMixRunsEmptyTransactions(t *testing.T) {
	m := LifecycleMix(0.25)
	if f := m.ReadOnlyFraction(); f < 0.24 || f > 0.26 {
		t.Fatalf("read-only fraction = %v, want 0.25", f)
	}
	db := pgssi.Open(pgssi.Config{})
	res := RunClosedLoop(db, m, RunOptions{
		Level: pgssi.Serializable, Workers: 4, Duration: 50 * time.Millisecond, Seed: 99,
	})
	if res.Errors > 0 {
		t.Fatalf("%d hard errors from empty lifecycle transactions", res.Errors)
	}
	if res.Committed == 0 {
		t.Fatal("no lifecycle transactions committed")
	}
	if res.Aborted > 0 {
		t.Fatalf("empty transactions can never conflict, got %d serialization failures", res.Aborted)
	}
}
