package workload

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync/atomic"

	"pgssi"
)

// RUBiS (§8.3): an auction site modelled on eBay, run with the standard
// "bidding" mix of 85% read-only and 15% read/write interactions. The
// workload's signature conflict, called out in the paper, is between
// queries that list the current bids on all items in a category and
// requests to bid on those items.
//
// Keys:
//
//	users    u6                           rating, nbComments
//	items    i7                           category, seller, price, nbBids
//	bids     i7|b6                        bidder, amount
//	comments u6|m6                        from, text
//
// A secondary index on items by category serves category browsing.
type RUBiS struct {
	// Users is the number of registered users.
	Users int
	// Items is the number of active auctions.
	Items int
	// Categories partitions the items.
	Categories int

	nextUser atomic.Int64
	nextItem atomic.Int64
	nextBid  atomic.Int64
	nextCmt  atomic.Int64
}

// DefaultRUBiS returns a laptop-scale configuration.
func DefaultRUBiS() *RUBiS {
	return &RUBiS{Users: 1000, Items: 2000, Categories: 20}
}

func uKey(u int64) string      { return fmt.Sprintf("%06d", u) }
func itKey(i int64) string     { return fmt.Sprintf("%07d", i) }
func bidKey(i, b int64) string { return fmt.Sprintf("%07d|%06d", i, b) }
func cmtKey(u, m int64) string { return fmt.Sprintf("%06d|%06d", u, m) }

// Tables returns the schema table names.
func (r *RUBiS) Tables() []string { return []string{"users", "items", "bids", "comments"} }

// Setup creates the schema and loads users and items.
func (r *RUBiS) Setup(db *pgssi.DB) error {
	for _, t := range r.Tables() {
		if err := db.CreateTable(t); err != nil {
			return err
		}
	}
	err := db.CreateIndex("items", "by_cat", func(_ string, value []byte) (string, bool) {
		c := field(string(value), "cat")
		if c == "" {
			return "", false
		}
		return c, true
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewPCG(5, 5))
	tx, err := db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead})
	if err != nil {
		return err
	}
	for u := int64(1); u <= int64(r.Users); u++ {
		rec := fmt.Sprintf("rating=%d;nbc=0", rng.IntN(100))
		if err := tx.Insert("users", uKey(u), []byte(rec)); err != nil {
			tx.Rollback()
			return err
		}
	}
	for i := int64(1); i <= int64(r.Items); i++ {
		cat := rng.IntN(r.Categories)
		seller := 1 + rng.Int64N(int64(r.Users))
		rec := fmt.Sprintf("cat=%03d;seller=%06d;price=%d;nb=0", cat, seller, 100+rng.IntN(900))
		if err := tx.Insert("items", itKey(i), []byte(rec)); err != nil {
			tx.Rollback()
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	r.nextUser.Store(int64(r.Users))
	r.nextItem.Store(int64(r.Items))
	return nil
}

func (r *RUBiS) randItem(rng *rand.Rand) string {
	n := r.nextItem.Load()
	if n == 0 {
		n = 1
	}
	return itKey(1 + rng.Int64N(n))
}

func (r *RUBiS) randUser(rng *rand.Rand) string {
	n := r.nextUser.Load()
	if n == 0 {
		n = 1
	}
	return uKey(1 + rng.Int64N(n))
}

func catRange(cat int) (string, string) {
	return fmt.Sprintf("%03d", cat), fmt.Sprintf("%03d\xff", cat)
}

// ViewItem reads an item and its bid history (read-only).
func (r *RUBiS) ViewItem(tx *pgssi.Tx, rng *rand.Rand) error {
	item := r.randItem(rng)
	if _, err := tx.Get("items", item); err != nil && err != pgssi.ErrNotFound {
		return err
	}
	return tx.Scan("bids", item+"|", item+"|\xff", func(string, []byte) bool { return true })
}

// BrowseCategory lists the items (with current prices) in one category —
// the query the paper singles out as conflicting with PlaceBid.
func (r *RUBiS) BrowseCategory(tx *pgssi.Tx, rng *rand.Rand) error {
	lo, hi := catRange(rng.IntN(r.Categories))
	return tx.ScanIndex("items", "by_cat", lo, hi, func(string, []byte) bool { return true })
}

// ViewUserInfo reads a user and their comments (read-only).
func (r *RUBiS) ViewUserInfo(tx *pgssi.Tx, rng *rand.Rand) error {
	u := r.randUser(rng)
	if _, err := tx.Get("users", u); err != nil && err != pgssi.ErrNotFound {
		return err
	}
	return tx.Scan("comments", u+"|", u+"|\xff", func(string, []byte) bool { return true })
}

// PlaceBid reads an item, inserts a bid, and updates the item's current
// price and bid count.
func (r *RUBiS) PlaceBid(tx *pgssi.Tx, rng *rand.Rand) error {
	item := r.randItem(rng)
	recRaw, err := tx.Get("items", item)
	if err != nil {
		if err == pgssi.ErrNotFound {
			return nil
		}
		return err
	}
	rec := string(recRaw)
	price := fieldInt(rec, "price")
	nb := fieldInt(rec, "nb")
	bid := price + 1 + rng.IntN(50)
	b := r.nextBid.Add(1)
	bidder := r.randUser(rng)
	if err := tx.Insert("bids", item+"|"+fmt.Sprintf("%06d", b), []byte("bidder="+bidder+";amt="+strconv.Itoa(bid))); err != nil {
		return err
	}
	rec = setField(rec, "price", strconv.Itoa(bid))
	rec = setField(rec, "nb", strconv.Itoa(nb+1))
	return tx.Update("items", item, []byte(rec))
}

// RegisterItem creates a new auction.
func (r *RUBiS) RegisterItem(tx *pgssi.Tx, rng *rand.Rand) error {
	i := r.nextItem.Add(1)
	cat := rng.IntN(r.Categories)
	rec := fmt.Sprintf("cat=%03d;seller=%s;price=%d;nb=0", cat, r.randUser(rng), 100+rng.IntN(900))
	return tx.Insert("items", itKey(i), []byte(rec))
}

// RegisterUser creates a new user.
func (r *RUBiS) RegisterUser(tx *pgssi.Tx, _ *rand.Rand) error {
	u := r.nextUser.Add(1)
	return tx.Insert("users", uKey(u), []byte("rating=0;nbc=0"))
}

// LeaveComment inserts a comment and bumps the target user's comment
// count and rating.
func (r *RUBiS) LeaveComment(tx *pgssi.Tx, rng *rand.Rand) error {
	u := r.randUser(rng)
	recRaw, err := tx.Get("users", u)
	if err != nil {
		if err == pgssi.ErrNotFound {
			return nil
		}
		return err
	}
	rec := string(recRaw)
	m := r.nextCmt.Add(1)
	if err := tx.Insert("comments", cmtKey(parseID(u), m), []byte("from="+r.randUser(rng)+";text=c")); err != nil {
		return err
	}
	rec = setField(rec, "nbc", strconv.Itoa(fieldInt(rec, "nbc")+1))
	rec = setField(rec, "rating", strconv.Itoa(fieldInt(rec, "rating")+1))
	return tx.Update("users", u, []byte(rec))
}

func parseID(key string) int64 {
	n, _ := strconv.ParseInt(key, 10, 64)
	return n
}

// Mix returns the standard bidding mix: 85% read-only, 15% read/write.
func (r *RUBiS) Mix() *Mix {
	return NewMix().
		// Read-only 85%.
		Add(0.30, Job{Name: "view_item", ReadOnly: true, Fn: r.ViewItem}).
		Add(0.30, Job{Name: "browse_category", ReadOnly: true, Fn: r.BrowseCategory}).
		Add(0.25, Job{Name: "view_user", ReadOnly: true, Fn: r.ViewUserInfo}).
		// Read/write 15%.
		Add(0.08, Job{Name: "place_bid", Fn: r.PlaceBid}).
		Add(0.03, Job{Name: "register_item", Fn: r.RegisterItem}).
		Add(0.02, Job{Name: "register_user", Fn: r.RegisterUser}).
		Add(0.02, Job{Name: "leave_comment", Fn: r.LeaveComment})
}

// Figure6Row is one line of the Figure 6 table.
type Figure6Row struct {
	Level      pgssi.IsolationLevel
	Throughput float64
	FailurePct float64
}

// Figure6 measures the bidding mix under SI, SSI, and S2PL, reproducing
// the paper's Figure 6 table (throughput and serialization failures).
func Figure6(base *RUBiS, opts RunOptions) ([]Figure6Row, error) {
	var out []Figure6Row
	for _, level := range []pgssi.IsolationLevel{pgssi.RepeatableRead, pgssi.Serializable, pgssi.SerializableS2PL} {
		db := pgssi.Open(pgssi.Config{})
		r := &RUBiS{Users: base.Users, Items: base.Items, Categories: base.Categories}
		if err := r.Setup(db); err != nil {
			return nil, err
		}
		res := RunClosedLoop(db, r.Mix(), withLevel(opts, level))
		out = append(out, Figure6Row{Level: level, Throughput: res.Throughput, FailurePct: 100 * res.FailureRate})
	}
	return out, nil
}
