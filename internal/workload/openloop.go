package workload

import (
	"fmt"
	"io"
	"math/bits"
	mrand "math/rand"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"pgssi"
)

// This file implements the open-loop measurement harness. The
// closed-loop Runner (runner.go) has each worker issue its next
// transaction only after the previous one finishes, so when the engine
// slows down the offered load politely slows down with it — queueing
// collapse is structurally invisible and latency percentiles are
// meaningless. Real traffic does not wait: arrivals follow their own
// process (here Poisson or fixed-rate), latency is measured from the
// scheduled arrival time (queueing delay included), and overload shows
// up exactly where it should — in p99/p999 and, past saturation, in
// dropped arrivals.

// Session is the handle-based transactional surface the open-loop
// driver and the standard key-value transaction body run against. It is
// the method set shared by pgssi.Session (in process) and wire.Client
// (over TCP) — the session layer is what makes the harness
// transport-agnostic.
type Session interface {
	Begin(level pgssi.IsolationLevel, readOnly, deferrable bool) (pgssi.Handle, pgssi.Status)
	Get(h pgssi.Handle, table, key string) ([]byte, pgssi.Status)
	Put(h pgssi.Handle, table, key string, value []byte) pgssi.Status
	Commit(h pgssi.Handle) pgssi.Status
	Rollback(h pgssi.Handle) pgssi.Status
}

// Arrival selects the inter-arrival process of an open-loop run.
type Arrival int

// Arrival processes.
const (
	// ArrivalPoisson draws exponential inter-arrival gaps (a Poisson
	// process at the configured rate) — the standard open-system model.
	ArrivalPoisson Arrival = iota
	// ArrivalFixed spaces arrivals deterministically at 1/rate.
	ArrivalFixed
)

// String implements fmt.Stringer.
func (a Arrival) String() string {
	if a == ArrivalFixed {
		return "fixed"
	}
	return "poisson"
}

// OpenLoopOptions configure RunOpenLoop.
type OpenLoopOptions struct {
	// Rate is the offered arrival rate in transactions per second.
	Rate float64
	// Duration is how long arrivals are generated.
	Duration time.Duration
	// Arrival selects the inter-arrival process.
	Arrival Arrival
	// MaxPending caps transactions in flight (dispatched, not yet
	// finished). An arrival past the cap is dropped and counted — the
	// queueing-collapse signal — instead of accumulating goroutines
	// without bound. 0 defaults to 4096.
	MaxPending int
	// MaxRetries is how many times one arrival's transaction is retried
	// on serialization failure before it counts as failed. Retries are
	// part of the arrival's latency. 0 means no retries.
	MaxRetries int
	// Seed makes the run reproducible (arrival times and per-arrival
	// rngs derive from it).
	Seed uint64
}

// OpenLoopResult is the outcome of an open-loop run.
type OpenLoopResult struct {
	Options  OpenLoopOptions
	Elapsed  time.Duration
	Offered  int64 // arrivals generated
	Complete int64 // transactions that committed
	Failed   int64 // arrivals whose transaction never committed
	Dropped  int64 // arrivals shed at MaxPending
	Retries  int64 // serialization-failure retries across all arrivals
	Errors   int64 // non-retryable errors (subset of Failed)
	// Hist is the commit latency histogram (scheduled arrival →
	// completion, so queueing delay counts).
	Hist *Histogram
}

// Throughput returns committed transactions per second of elapsed time.
func (r OpenLoopResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Complete) / r.Elapsed.Seconds()
}

// FailureRate returns (Failed+Dropped) / Offered.
func (r OpenLoopResult) FailureRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Failed+r.Dropped) / float64(r.Offered)
}

// String renders the result compactly.
func (r OpenLoopResult) String() string {
	return fmt.Sprintf(
		"open-loop %s rate=%.0f/s dur=%s: offered=%d completed=%d failed=%d dropped=%d retries=%d (fail%%=%.3f)\n"+
			"  throughput=%.1f txn/s  latency p50=%s p99=%s p999=%s max=%s",
		r.Options.Arrival, r.Options.Rate, r.Elapsed.Round(time.Millisecond),
		r.Offered, r.Complete, r.Failed, r.Dropped, r.Retries, 100*r.FailureRate(),
		r.Throughput(),
		r.Hist.Quantile(0.50), r.Hist.Quantile(0.99), r.Hist.Quantile(0.999), r.Hist.Max())
}

// RunOpenLoop generates arrivals at the configured rate and runs txn for
// each on its own goroutine. txn receives a per-arrival deterministic
// rng; it should execute one complete transaction (begin..commit) and
// report the outcome as an error (nil = committed, a value for which
// pgssi.IsSerializationFailure is true = retryable; see Status.Err).
func RunOpenLoop(opts OpenLoopOptions, txn func(rng *rand.Rand) error) OpenLoopResult {
	if opts.Rate <= 0 {
		opts.Rate = 1000
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = 4096
	}

	res := OpenLoopResult{Options: opts, Hist: NewHistogram()}
	var complete, failed, dropped, retries, hardErrors atomic.Int64
	var pending atomic.Int64
	var wg sync.WaitGroup

	arrivalRng := rand.New(rand.NewPCG(opts.Seed, 0x9e3779b97f4a7c15))
	gap := func() time.Duration {
		mean := float64(time.Second) / opts.Rate
		if opts.Arrival == ArrivalFixed {
			return time.Duration(mean)
		}
		return time.Duration(arrivalRng.ExpFloat64() * mean)
	}

	start := time.Now()
	deadline := start.Add(opts.Duration)
	next := start
	var offered int64
	for {
		next = next.Add(gap())
		if next.After(deadline) {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		offered++
		if pending.Load() >= int64(opts.MaxPending) {
			dropped.Add(1)
			continue
		}
		pending.Add(1)
		wg.Add(1)
		scheduled := next
		seq := offered
		go func() {
			defer wg.Done()
			defer pending.Add(-1)
			rng := rand.New(rand.NewPCG(opts.Seed+1, uint64(seq)))
			var err error
			for attempt := 0; ; attempt++ {
				err = txn(rng)
				if err == nil || !pgssi.IsSerializationFailure(err) || attempt >= opts.MaxRetries {
					break
				}
				retries.Add(1)
			}
			switch {
			case err == nil:
				complete.Add(1)
				res.Hist.Record(time.Since(scheduled))
			case pgssi.IsSerializationFailure(err):
				failed.Add(1)
			default:
				failed.Add(1)
				hardErrors.Add(1)
			}
		}()
	}
	wg.Wait()

	res.Elapsed = time.Since(start)
	res.Offered = offered
	res.Complete = complete.Load()
	res.Failed = failed.Load()
	res.Dropped = dropped.Load()
	res.Retries = retries.Load()
	res.Errors = hardErrors.Load()
	return res
}

// ---- standard key-value transaction body -----------------------------

// LoadKey formats the i-th preload key. cmd/pgssid's preloader and
// cmd/pgload's key chooser must agree on this format.
func LoadKey(i int) string { return fmt.Sprintf("k%08d", i) }

// KVJob describes the standard open-loop key-value transaction: Reads
// gets plus Writes puts against zipfian-skewed keys in one transaction.
type KVJob struct {
	Table string
	// Keys is the keyspace size (LoadKey(0) .. LoadKey(Keys-1)).
	Keys int
	// ZipfS is the zipfian skew exponent; values <= 1 select a uniform
	// key distribution.
	ZipfS float64
	// Reads and Writes are the operations per transaction.
	Reads, Writes int
	// ValueSize is the written value's length in bytes.
	ValueSize int
	Isolation pgssi.IsolationLevel
	// Deferrable begins the transaction deferrable. Meaningful for
	// read-only serializable jobs aimed at a replica: the begin waits
	// for a safe snapshot instead of failing when the replica is
	// between markers.
	Deferrable bool
}

// Txn returns an open-loop transaction body running the job over sess.
// The returned function is safe for concurrent calls iff sess is (both
// pgssi.Session and a dedicated-per-call wire.Client qualify).
func (j KVJob) Txn(sess Session) func(rng *rand.Rand) error {
	value := make([]byte, max(j.ValueSize, 1))
	for i := range value {
		value[i] = 'v'
	}
	return func(rng *rand.Rand) error {
		chooser := j.chooser(rng)
		h, st := sess.Begin(j.Isolation, j.Writes == 0, j.Deferrable)
		if !st.OK() {
			return st.Err()
		}
		for i := 0; i < j.Reads; i++ {
			if _, st := sess.Get(h, j.Table, LoadKey(chooser())); !st.OK() && st != pgssi.StatusNotFound {
				sess.Rollback(h)
				return st.Err()
			}
		}
		for i := 0; i < j.Writes; i++ {
			if st := sess.Put(h, j.Table, LoadKey(chooser()), value); !st.OK() {
				sess.Rollback(h)
				return st.Err()
			}
		}
		return sess.Commit(h).Err()
	}
}

// chooser returns a key index generator over [0, Keys): zipfian when
// ZipfS > 1 (rank 0 hottest), uniform otherwise.
func (j KVJob) chooser(rng *rand.Rand) func() int {
	n := max(j.Keys, 1)
	if j.ZipfS <= 1 {
		return func() int { return rng.IntN(n) }
	}
	// math/rand/v2 has no Zipf generator; bridge the v2 rng into the v1
	// rejection-inversion implementation. Zipf ranks are scattered over
	// the keyspace with a multiplicative hash so the hot set is not one
	// contiguous (same-page) run of keys.
	z := mrand.NewZipf(mrand.New(mrand.NewSource(int64(rng.Uint64()))), j.ZipfS, 1, uint64(n-1))
	return func() int {
		rank := z.Uint64()
		return int((rank * 0x9e3779b97f4a7c15) % uint64(n))
	}
}

// ---- latency histogram -----------------------------------------------

// Histogram is an HDR-style log-linear latency histogram: 64 linear
// sub-buckets per power-of-two decade of nanoseconds, i.e. ≤1.6%
// relative error, covering 1ns to ~150000s in a fixed 4096-counter
// array. Recording is lock-free (one atomic add); it is safe for
// concurrent use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
	max    atomic.Int64
}

const (
	histSubBits = 6 // 64 sub-buckets per decade
	histSub     = 1 << histSubBits
	histBuckets = 64 * histSub
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a latency to its bucket index.
func bucketOf(d time.Duration) int {
	v := uint64(d)
	if d < 0 {
		v = 0
	}
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - histSubBits - 1
	idx := exp*histSub + int(v>>uint(exp))
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest value mapping to bucket i.
func bucketLow(i int) time.Duration {
	if i < histSub {
		return time.Duration(i)
	}
	exp := i/histSub - 1
	sub := i - exp*histSub
	return time.Duration(uint64(sub) << uint(exp))
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Max returns the largest recorded value.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the q-th quantile (0..1) as the lower bound of the
// bucket holding it, clamped to Max for the tail.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	want := uint64(q * float64(total))
	if want >= total {
		want = total - 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen > want {
			v := bucketLow(i)
			if m := h.Max(); v > m {
				return m
			}
			return v
		}
	}
	return h.Max()
}

// Mean returns the mean of the recorded observations (bucket lower
// bounds, so slightly pessimistic toward zero).
func (h *Histogram) Mean() time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < histBuckets; i++ {
		if c := h.counts[i].Load(); c != 0 {
			sum += float64(bucketLow(i)) * float64(c)
		}
	}
	return time.Duration(sum / float64(total))
}

// WriteTo dumps the non-empty buckets as "lo_ns count" lines preceded
// by a summary header — the archived-artifact format of the nightly
// open-loop smoke.
func (h *Histogram) WriteTo(w io.Writer) (int64, error) {
	var written int64
	n, err := fmt.Fprintf(w, "# count=%d max_ns=%d p50_ns=%d p99_ns=%d p999_ns=%d\n",
		h.Count(), int64(h.Max()), int64(h.Quantile(0.5)), int64(h.Quantile(0.99)), int64(h.Quantile(0.999)))
	written += int64(n)
	if err != nil {
		return written, err
	}
	for i := 0; i < histBuckets; i++ {
		if c := h.counts[i].Load(); c != 0 {
			n, err := fmt.Fprintf(w, "%d %d\n", int64(bucketLow(i)), c)
			written += int64(n)
			if err != nil {
				return written, err
			}
		}
	}
	return written, nil
}
