package workload

import (
	"math/rand/v2"
	"testing"
	"time"

	"pgssi"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000 ns uniformly: quantiles should land near their rank within
	// the histogram's ≤1.6% bucket error.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	checks := []struct {
		q    float64
		want float64
	}{{0.50, 500}, {0.99, 990}, {0.999, 999}}
	for _, c := range checks {
		got := float64(h.Quantile(c.q))
		if got < c.want*0.95 || got > c.want*1.05 {
			t.Errorf("p%g = %v, want ~%v", c.q*100, got, c.want)
		}
	}
	if h.Max() < 1000*15/16 || h.Max() > 1024 {
		t.Errorf("max = %v", h.Max())
	}

	// Values below the sub-bucket resolution are exact.
	var small Histogram
	small.Record(7)
	if small.Quantile(0.5) != 7 {
		t.Errorf("small-value quantile = %v", small.Quantile(0.5))
	}

	// Wide range: relative error stays bounded at every magnitude.
	var wide Histogram
	for _, v := range []time.Duration{1, 1 << 10, 1 << 20, 1 << 30, 1 << 40} {
		wide.Record(v)
	}
	if q := wide.Quantile(1.0); q < 1<<40 || q > (1<<40)+(1<<40)/32 {
		t.Errorf("p100 of widely spread values = %v", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram: count=%d p50=%v max=%v mean=%v", h.Count(), h.Quantile(0.5), h.Max(), h.Mean())
	}
}

// TestZipfChooser: with s>1 the hot key set must be heavily skewed, and
// every produced index must stay in range.
func TestZipfChooser(t *testing.T) {
	job := KVJob{Keys: 1_000_000, ZipfS: 1.1}
	rng := rand.New(rand.NewPCG(7, 7))
	choose := job.chooser(rng)
	counts := map[int]int{}
	const draws = 100_000
	for i := 0; i < draws; i++ {
		k := choose()
		if k < 0 || k >= job.Keys {
			t.Fatalf("key index %d out of range", k)
		}
		counts[k]++
	}
	// Zipf with s=1.1 concentrates mass: the single hottest key should
	// take a few percent of draws, and far fewer distinct keys than
	// draws should appear.
	hottest := 0
	for _, c := range counts {
		if c > hottest {
			hottest = c
		}
	}
	if hottest < draws/100 {
		t.Errorf("hottest key got %d/%d draws; zipf skew looks broken", hottest, draws)
	}
	if len(counts) > draws/2 {
		t.Errorf("%d distinct keys in %d draws; distribution looks uniform", len(counts), draws)
	}

	// Uniform mode (s<=1): the hottest key should NOT dominate.
	uni := KVJob{Keys: 1000, ZipfS: 0}
	chooseU := uni.chooser(rng)
	countsU := map[int]int{}
	for i := 0; i < draws; i++ {
		countsU[chooseU()]++
	}
	for k, c := range countsU {
		if c > draws/100 {
			t.Fatalf("uniform chooser: key %d got %d/%d draws", k, c, draws)
		}
	}
}

// TestRunOpenLoopInProcess runs a short fixed-rate open loop against an
// in-process session and checks the accounting adds up.
func TestRunOpenLoopInProcess(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	if err := db.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	const keys = 1000
	if err := db.RunTx(pgssi.TxOptions{Isolation: pgssi.ReadCommitted}, func(tx *pgssi.Tx) error {
		for i := 0; i < keys; i++ {
			if err := tx.Insert("kv", LoadKey(i), []byte("v")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	job := KVJob{Table: "kv", Keys: keys, ZipfS: 1.1, Reads: 2, Writes: 1, ValueSize: 8, Isolation: pgssi.Serializable}
	txn := job.Txn(db.NewSession())
	res := RunOpenLoop(OpenLoopOptions{
		Rate:       2000,
		Duration:   300 * time.Millisecond,
		Arrival:    ArrivalFixed,
		MaxRetries: 3,
		Seed:       1,
	}, txn)

	if res.Offered == 0 {
		t.Fatal("no arrivals were offered")
	}
	if res.Complete+res.Failed+res.Dropped != res.Offered {
		t.Fatalf("accounting mismatch: offered=%d complete=%d failed=%d dropped=%d",
			res.Offered, res.Complete, res.Failed, res.Dropped)
	}
	if res.Errors != 0 {
		t.Fatalf("%d non-retryable errors", res.Errors)
	}
	if res.Complete == 0 {
		t.Fatal("nothing completed")
	}
	if got := int64(res.Hist.Count()); got != res.Complete {
		t.Fatalf("histogram count %d != complete %d", got, res.Complete)
	}
	if res.Hist.Quantile(0.5) <= 0 {
		t.Fatal("zero p50")
	}
	if res.Throughput() <= 0 || res.FailureRate() < 0 || res.FailureRate() > 1 {
		t.Fatalf("throughput=%v failrate=%v", res.Throughput(), res.FailureRate())
	}
	if res.String() == "" {
		t.Fatal("empty summary")
	}
}

// TestRunOpenLoopPoisson: the Poisson arrival process offers a count in
// the right ballpark of rate*duration.
func TestRunOpenLoopPoisson(t *testing.T) {
	res := RunOpenLoop(OpenLoopOptions{
		Rate:     5000,
		Duration: 200 * time.Millisecond,
		Arrival:  ArrivalPoisson,
		Seed:     42,
	}, func(rng *rand.Rand) error { return nil })
	want := 5000 * 0.2
	if float64(res.Offered) < want/2 || float64(res.Offered) > want*2 {
		t.Fatalf("offered %d arrivals, want ~%v", res.Offered, want)
	}
	if res.Complete != res.Offered {
		t.Fatalf("complete=%d offered=%d", res.Complete, res.Offered)
	}
}

// TestRunOpenLoopDrops: with MaxPending 1 and a txn that blocks longer
// than the whole run, arrivals beyond the first must be dropped, not
// queued invisibly.
func TestRunOpenLoopDrops(t *testing.T) {
	block := make(chan struct{})
	// Unblock after the run window so RunOpenLoop's final wait for
	// in-flight transactions can finish.
	timer := time.AfterFunc(200*time.Millisecond, func() { close(block) })
	defer timer.Stop()
	res := RunOpenLoop(OpenLoopOptions{
		Rate:       1000,
		Duration:   150 * time.Millisecond,
		Arrival:    ArrivalFixed,
		MaxPending: 1,
		Seed:       1,
	}, func(rng *rand.Rand) error {
		<-block
		return nil
	})
	if res.Dropped == 0 {
		t.Fatalf("expected drops under saturation: %+v", res)
	}
	if res.Complete+res.Failed+res.Dropped != res.Offered {
		t.Fatalf("accounting mismatch: %+v", res)
	}
}

// TestRunOpenLoopRetries: serialization failures are retried up to
// MaxRetries, then counted as Failed (not Errors).
func TestRunOpenLoopRetries(t *testing.T) {
	res := RunOpenLoop(OpenLoopOptions{
		Rate:       500,
		Duration:   100 * time.Millisecond,
		Arrival:    ArrivalFixed,
		MaxRetries: 2,
		Seed:       1,
	}, func(rng *rand.Rand) error { return pgssi.ErrSerialization })
	if res.Failed != res.Offered-res.Dropped {
		t.Fatalf("failed=%d offered=%d dropped=%d", res.Failed, res.Offered, res.Dropped)
	}
	if res.Errors != 0 {
		t.Fatalf("serialization failures miscounted as errors: %+v", res)
	}
	if res.Retries == 0 {
		t.Fatal("no retries recorded")
	}
}

func TestLoadKeyFormat(t *testing.T) {
	if LoadKey(0) != "k00000000" || LoadKey(12345678) != "k12345678" {
		t.Fatalf("LoadKey format changed: %q %q — pgssid preload and pgload must agree", LoadKey(0), LoadKey(12345678))
	}
}
