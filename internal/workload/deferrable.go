package workload

import (
	"sync"
	"time"

	"pgssi"
)

// Deferrable-transaction latency probe (§8.4): while a DBT-2++ workload
// runs, repeatedly start a SERIALIZABLE READ ONLY DEFERRABLE transaction,
// run a trivial query, and measure how long acquiring a safe snapshot
// took. The paper reports a 1.98 s median, 6 s p90, 20 s max against its
// disk-bound configuration; the interesting reproduction target is that
// the latency is of the order of a few transaction lifetimes and bounded,
// not its absolute value.

// DeferrableResult summarizes the latency distribution.
type DeferrableResult struct {
	Samples []time.Duration
	Median  time.Duration
	P90     time.Duration
	Max     time.Duration
}

// MeasureDeferrable runs the given background mix for the configured
// duration while sampling deferrable-transaction latency every interval.
func MeasureDeferrable(db *pgssi.DB, mix *Mix, opts RunOptions, interval time.Duration, trivial func(tx *pgssi.Tx) error) (DeferrableResult, Result) {
	var res DeferrableResult
	var mu sync.Mutex
	stop := make(chan struct{})
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(interval):
			}
			start := time.Now()
			tx, err := db.Begin(pgssi.TxOptions{
				Isolation:  pgssi.Serializable,
				ReadOnly:   true,
				Deferrable: true,
			})
			wait := time.Since(start)
			if err != nil {
				continue
			}
			if trivial != nil {
				_ = trivial(tx)
			}
			_ = tx.Commit()
			mu.Lock()
			res.Samples = append(res.Samples, wait)
			mu.Unlock()
		}
	}()
	bg := RunClosedLoop(db, mix, opts)
	close(stop)
	probeWG.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(res.Samples) > 0 {
		res.Median = Percentile(res.Samples, 50)
		res.P90 = Percentile(res.Samples, 90)
		res.Max = Percentile(res.Samples, 100)
	}
	return res, bg
}
