package server

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pgssi"
	"pgssi/internal/mvcc"
	"pgssi/internal/wal"
	"pgssi/internal/wire"
)

// replicationSoak is the wall-clock budget for TestReplicationSoak. The
// PR gate runs the default; the nightly job raises it (see
// .github/workflows/nightly.yml).
var replicationSoak = flag.Duration("replication-soak", 1500*time.Millisecond,
	"duration of the replication soak's write workload")

// severableProxy is a TCP relay whose live connections can be cut while
// the listener keeps accepting — a network partition the replica must
// ride out by reconnecting.
type severableProxy struct {
	l      net.Listener
	target string
	refuse atomic.Bool // accepted connections are closed immediately
	mu     sync.Mutex
	conns  []net.Conn
}

func newSeverableProxy(t *testing.T, target string) *severableProxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &severableProxy{l: l, target: target}
	go func() {
		for {
			in, err := l.Accept()
			if err != nil {
				return
			}
			if p.refuse.Load() {
				in.Close()
				continue
			}
			out, err := net.Dial("tcp", target)
			if err != nil {
				in.Close()
				continue
			}
			p.mu.Lock()
			p.conns = append(p.conns, in, out)
			p.mu.Unlock()
			go func() { io.Copy(out, in); out.Close() }()
			go func() { io.Copy(in, out); in.Close() }()
		}
	}()
	return p
}

// sever cuts every live relayed connection; new dials still go through.
func (p *severableProxy) sever() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

func (p *severableProxy) Close() {
	p.l.Close()
	p.sever()
}

// TestReplicationSoak runs a primary under a write-skew-prone workload
// with two streaming replicas — one of which has its connection cut
// mid-run and must reconnect — and checks the two ISSUE invariants:
// serializable replica reads NEVER observe write skew (every read is on
// a safe snapshot and the pair invariant holds), and after the workload
// drains both replicas converge to exactly the primary's state.
//
// The workload is the classic two-account skew: each pair (aN, bN)
// starts at 100/100 and a writer may withdraw 150 from one side iff the
// pair's sum covers it. Under snapshot isolation two concurrent
// withdrawals both see sum 200 and drive the sum to -100; under SSI one
// of them aborts, so sum >= 0 is the no-write-skew oracle.
func TestReplicationSoak(t *testing.T) {
	const pairs = 8
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	if err := db.CreateTable("acct"); err != nil {
		t.Fatal(err)
	}
	walLog := wal.NewLog()
	db.AttachWAL(walLog)

	err := db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
		for i := 0; i < pairs; i++ {
			if err := tx.Insert("acct", fmt.Sprintf("a%d", i), []byte("100")); err != nil {
				return err
			}
			if err := tx.Insert("acct", fmt.Sprintf("b%d", i), []byte("100")); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	srv, _ := startServer(t, db, Config{})
	defer srv.Shutdown()

	// Replica 1 streams straight from the server; replica 2 streams
	// through the severable proxy.
	rep1, err := pgssi.NewReplica(&wire.ReplicaSource{Addr: srv.addr, DialTimeout: 5 * time.Second}, []string{"acct"})
	if err != nil {
		t.Fatal(err)
	}
	defer rep1.Close()
	proxy := newSeverableProxy(t, srv.addr)
	defer proxy.Close()
	rep2, err := pgssi.NewReplica(&wire.ReplicaSource{Addr: proxy.l.Addr().String(), DialTimeout: 5 * time.Second}, []string{"acct"})
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var skews atomic.Int64 // writer-observed: committed withdrawals that broke the invariant

	// Writers: withdraw-if-covered, refill when drained.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(pairs)
				ka, kb := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
				victim := ka
				if rng.Intn(2) == 0 {
					victim = kb
				}
				db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
					a, err := readInt(tx, ka)
					if err != nil {
						return err
					}
					b, err := readInt(tx, kb)
					if err != nil {
						return err
					}
					if a+b < 150 {
						// Drained: refill so the workload keeps contending.
						if err := tx.Put("acct", ka, []byte("100")); err != nil {
							return err
						}
						return tx.Put("acct", kb, []byte("100"))
					}
					cur := a
					if victim == kb {
						cur = b
					}
					return tx.Put("acct", victim, []byte(strconv.Itoa(cur-150)))
				})
			}
		}(int64(w))
	}

	// Replica readers: every serializable deferrable read must land on a
	// safe snapshot and must never observe a pair sum below zero.
	var reads [2]atomic.Int64
	readLoop := func(idx int, rep *pgssi.Replica) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx, err := rep.BeginReadOnly(pgssi.ReplicaTxOptions{Serializable: true, WaitSafe: true})
			if err != nil {
				// The replica may be mid-reconnect; back off, never halt the loop.
				time.Sleep(time.Millisecond)
				continue
			}
			if !tx.OnSafeSnapshot() {
				skews.Add(1 << 32) // flag separately from sum violations
				tx.Rollback()
				continue
			}
			for i := 0; i < pairs; i++ {
				a, erra := readInt(tx, fmt.Sprintf("a%d", i))
				b, errb := readInt(tx, fmt.Sprintf("b%d", i))
				if erra != nil || errb != nil {
					continue
				}
				if a+b < 0 {
					skews.Add(1)
				}
			}
			tx.Rollback()
			reads[idx].Add(1)
		}
	}
	wg.Add(2)
	go readLoop(0, rep1)
	go readLoop(1, rep2)

	// Mid-run: cut replica 2's network and make sure it reconnects and
	// resumes applying.
	time.Sleep(*replicationSoak / 3)
	before, _ := rep2.AppliedRecords()
	proxy.sever()
	time.Sleep(*replicationSoak * 2 / 3)
	close(stop)
	wg.Wait()

	if n := skews.Load(); n != 0 {
		t.Fatalf("replica serializable reads observed %d invariant violations (write skew or unsafe snapshot)", n)
	}
	if reads[0].Load() == 0 || reads[1].Load() == 0 {
		t.Fatalf("replica read loops starved: %d / %d reads", reads[0].Load(), reads[1].Load())
	}
	if rep2.Err() != nil {
		t.Fatalf("replica 2 halted instead of reconnecting: %v", rep2.Err())
	}

	// Convergence: with the writers stopped, both replicas must reach
	// the primary's commit-sequence position and match its state row for
	// row. Convergence is judged by sequence position, not record count:
	// across a reconnect the boundary dedup means a replica's applied
	// COUNT need not equal the log length, but commits are delivered
	// exactly once, so reaching the primary's seq means all data applied.
	// (The last transaction to finish emitted a marker, so SafeSeq
	// reaches the same position.)
	want := uint64(db.CurrentSeq())
	for i, rep := range []*pgssi.Replica{rep1, rep2} {
		rep := rep
		waitFor(t, 10*time.Second, func() bool {
			return rep.AppliedSeq() == want && rep.SafeSeq() == want
		}, fmt.Sprintf("replica %d to converge to seq %d", i+1, want))
	}
	after, _ := rep2.AppliedRecords()
	if after <= before {
		t.Fatalf("replica 2 made no progress after the partition (%d -> %d records)", before, after)
	}

	wantRows := tableDump(t, func() (*pgssi.Tx, error) {
		return db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead, ReadOnly: true})
	})
	for i, rep := range []*pgssi.Replica{rep1, rep2} {
		got := tableDump(t, func() (*pgssi.Tx, error) {
			return rep.BeginReadOnly(pgssi.ReplicaTxOptions{Serializable: true, WaitSafe: true})
		})
		if len(got) != len(wantRows) {
			t.Fatalf("replica %d diverged: %d rows vs primary's %d", i+1, len(got), len(wantRows))
		}
		for k, v := range wantRows {
			if got[k] != v {
				t.Fatalf("replica %d diverged at %q: %q vs primary's %q", i+1, k, got[k], v)
			}
		}
	}
	t.Logf("soak: %d records at seq %d, reads %d/%d, primary rows %d",
		walLog.Len(), want, reads[0].Load(), reads[1].Load(), len(wantRows))
}

// TestReplicationReseedAfterGC is the truncation edge of the soak: a
// streaming replica is partitioned, the primary checkpoints and GCs the
// WAL segments the replica still needs, and on reconnect the resume
// position falls below the GC floor. The primary must answer with the
// truncated-resume status (never a silent gap), and the replica must
// re-seed itself from a fetched checkpoint and converge row for row.
func TestReplicationReseedAfterGC(t *testing.T) {
	dir := t.TempDir()
	db, err := pgssi.OpenDir(dir, pgssi.Config{
		FsyncMode:      pgssi.FsyncBatch,
		WALSegmentSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("acct"); err != nil {
		t.Fatal(err)
	}
	put := func(key, val string) {
		t.Helper()
		err := db.RunTx(pgssi.TxOptions{Isolation: pgssi.RepeatableRead}, func(tx *pgssi.Tx) error {
			return tx.Put("acct", key, []byte(val))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		put(fmt.Sprintf("k%03d", i), "before-partition")
	}

	srv, _ := startServer(t, db, Config{})
	defer srv.Shutdown()
	proxy := newSeverableProxy(t, srv.addr)
	defer proxy.Close()

	rep, err := pgssi.NewReplica(&wire.ReplicaSource{Addr: proxy.l.Addr().String(), DialTimeout: 5 * time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	waitFor(t, 10*time.Second, func() bool {
		return rep.AppliedSeq() == uint64(db.CurrentSeq())
	}, "replica to catch up before the partition")

	// Partition the replica, then move the primary far enough that a
	// checkpoint GCs every segment holding the replica's resume position.
	proxy.refuse.Store(true)
	proxy.sever()
	behind := rep.AppliedSeq()
	for i := 0; i < 80; i++ {
		put(fmt.Sprintf("k%03d", i%60), "after-partition")
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.WALStats()
	if st.GCFloorSeq <= behind {
		t.Fatalf("GC floor %d did not pass the replica's position %d: the reseed path won't trigger", st.GCFloorSeq, behind)
	}

	// A direct resume below the floor must be refused loudly.
	direct := &wire.ReplicaSource{Addr: srv.addr, DialTimeout: 5 * time.Second}
	if _, _, err := direct.SubscribeFromChecked(mvcc.SeqNo(behind)); !errors.Is(err, wal.ErrSeqTruncated) {
		t.Fatalf("SubscribeFromChecked below the floor = %v, want wal.ErrSeqTruncated", err)
	}

	// Heal the network: the replica's next resume attempt sees the
	// truncation, fetches the checkpoint, and follows the live stream.
	proxy.refuse.Store(false)
	waitFor(t, 15*time.Second, func() bool {
		return rep.Err() == nil && rep.AppliedSeq() == uint64(db.CurrentSeq())
	}, "replica to re-seed from the checkpoint and converge")
	if rep.Err() != nil {
		t.Fatalf("replica halted instead of re-seeding: %v", rep.Err())
	}
	if rep.AppliedSeq() < st.CheckpointSeq {
		t.Fatalf("replica applied seq %d below the checkpoint %d it should have seeded from", rep.AppliedSeq(), st.CheckpointSeq)
	}

	// And it still follows live commits after the swap.
	for i := 0; i < 10; i++ {
		put(fmt.Sprintf("live%d", i), "after-reseed")
	}
	waitFor(t, 10*time.Second, func() bool {
		return rep.AppliedSeq() == uint64(db.CurrentSeq()) && rep.SafeSeq() == uint64(db.CurrentSeq())
	}, "replica to follow the live stream past the reseed")

	wantRows := tableDump(t, func() (*pgssi.Tx, error) {
		return db.Begin(pgssi.TxOptions{Isolation: pgssi.RepeatableRead, ReadOnly: true})
	})
	got := tableDump(t, func() (*pgssi.Tx, error) {
		return rep.BeginReadOnly(pgssi.ReplicaTxOptions{Serializable: true, WaitSafe: true})
	})
	if len(got) != len(wantRows) {
		t.Fatalf("reseeded replica has %d rows, primary %d", len(got), len(wantRows))
	}
	for k, v := range wantRows {
		if got[k] != v {
			t.Fatalf("reseeded replica diverged at %q: %q vs primary's %q", k, got[k], v)
		}
	}
}

func readInt(tx *pgssi.Tx, key string) (int, error) {
	v, err := tx.Get("acct", key)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(string(v))
}

func tableDump(t *testing.T, begin func() (*pgssi.Tx, error)) map[string]string {
	t.Helper()
	tx, err := begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	out := make(map[string]string)
	if err := tx.Scan("acct", "", "", func(k string, v []byte) bool {
		out[k] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}
