package server

import (
	"net"
	"sync"
	"syscall"
	"testing"
	"time"

	"pgssi"
	"pgssi/internal/wire"
)

// testServer bundles a running server with its address and Serve's
// result channel.
type testServer struct {
	*Server
	addr     string
	serveErr <-chan error
}

// startServer launches a server on a loopback port and returns it plus
// a dialer.
func startServer(t *testing.T, db *pgssi.DB, cfg Config) (*testServer, func() *wire.Client) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv := New(db, cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	addr := l.Addr().String()
	dial := func() *wire.Client {
		c, err := wire.Dial(addr, wire.DialOptions{Timeout: 10 * time.Second})
		if err != nil {
			t.Fatalf("dial %s: %v", addr, err)
		}
		return c
	}
	return &testServer{Server: srv, addr: addr, serveErr: serveErr}, dial
}

// TestEndToEnd drives the basic request repertoire over a real TCP
// connection.
func TestEndToEnd(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	srv, dial := startServer(t, db, Config{})
	defer srv.Shutdown()
	c := dial()
	defer c.Close()

	if st := c.Ping(); !st.OK() {
		t.Fatalf("ping: %v", st)
	}
	if st := c.CreateTable("kv"); !st.OK() {
		t.Fatalf("create table: %v", st)
	}

	h, st := c.Begin(pgssi.Serializable, false, false)
	if !st.OK() {
		t.Fatalf("begin: %v", st)
	}
	if st := c.Insert(h, "kv", "a", []byte("1")); !st.OK() {
		t.Fatalf("insert: %v", st)
	}
	if st := c.Insert(h, "kv", "b", []byte("2")); !st.OK() {
		t.Fatalf("insert: %v", st)
	}
	if st := c.Insert(h, "kv", "a", []byte("dup")); st != pgssi.StatusDuplicateKey {
		t.Fatalf("duplicate insert: got %v", st)
	}
	if st := c.Commit(h); !st.OK() {
		t.Fatalf("commit: %v", st)
	}

	h, st = c.Begin(pgssi.RepeatableRead, true, false)
	if !st.OK() {
		t.Fatalf("begin ro: %v", st)
	}
	v, st := c.Get(h, "kv", "a")
	if !st.OK() || string(v) != "1" {
		t.Fatalf("get a: %q, %v", v, st)
	}
	if _, st := c.Get(h, "kv", "missing"); st != pgssi.StatusNotFound {
		t.Fatalf("get missing: got %v", st)
	}
	rows, st := c.Scan(h, "kv", "", "", 0)
	if !st.OK() || len(rows) != 2 || rows[0].Key != "a" || rows[1].Key != "b" {
		t.Fatalf("scan: %v rows=%v", st, rows)
	}
	if _, st := c.Get(h, "notable", "a"); st != pgssi.StatusNoTable {
		t.Fatalf("get from missing table: got %v", st)
	}
	if st := c.Commit(h); !st.OK() {
		t.Fatalf("commit ro: %v", st)
	}

	// Stale/invalid handles are status errors, not connection killers.
	if st := c.Commit(h); st != pgssi.StatusInvalidHandle {
		t.Fatalf("commit stale handle: got %v", st)
	}
	if st := c.Commit(99999); st != pgssi.StatusInvalidHandle {
		t.Fatalf("commit bogus handle: got %v", st)
	}
	if st := c.Ping(); !st.OK() {
		t.Fatalf("ping after handle errors: %v", st)
	}
}

// TestSavepointsOverWire exercises the savepoint opcodes end to end.
func TestSavepointsOverWire(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	srv, dial := startServer(t, db, Config{})
	defer srv.Shutdown()
	c := dial()
	defer c.Close()

	if st := c.CreateTable("kv"); !st.OK() {
		t.Fatal(st)
	}
	h, st := c.Begin(pgssi.Serializable, false, false)
	if !st.OK() {
		t.Fatal(st)
	}
	if st := c.Insert(h, "kv", "keep", []byte("1")); !st.OK() {
		t.Fatal(st)
	}
	if st := c.Savepoint(h, "sp"); !st.OK() {
		t.Fatalf("savepoint: %v", st)
	}
	if st := c.Insert(h, "kv", "discard", []byte("2")); !st.OK() {
		t.Fatal(st)
	}
	if st := c.RollbackToSavepoint(h, "sp"); !st.OK() {
		t.Fatalf("rollback to savepoint: %v", st)
	}
	if st := c.RollbackToSavepoint(h, "nope"); st != pgssi.StatusNoSavepoint {
		t.Fatalf("rollback to unknown savepoint: got %v", st)
	}
	if st := c.Commit(h); !st.OK() {
		t.Fatal(st)
	}

	h, _ = c.Begin(pgssi.ReadCommitted, true, false)
	if _, st := c.Get(h, "kv", "keep"); !st.OK() {
		t.Fatalf("keep missing after savepoint rollback: %v", st)
	}
	if _, st := c.Get(h, "kv", "discard"); st != pgssi.StatusNotFound {
		t.Fatalf("discard survived savepoint rollback: %v", st)
	}
	c.Commit(h)
}

// TestWriteSkewOverTCP runs the canonical SSI write-skew pair over two
// real TCP connections and asserts exactly one transaction aborts with
// a serialization failure — the wire layer must not weaken the
// serializability guarantee.
func TestWriteSkewOverTCP(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	srv, dial := startServer(t, db, Config{})
	defer srv.Shutdown()

	setup := dial()
	if st := setup.CreateTable("oncall"); !st.OK() {
		t.Fatal(st)
	}
	h, _ := setup.Begin(pgssi.ReadCommitted, false, false)
	setup.Insert(h, "oncall", "alice", []byte("on"))
	setup.Insert(h, "oncall", "bob", []byte("on"))
	if st := setup.Commit(h); !st.OK() {
		t.Fatal(st)
	}
	setup.Close()

	c1, c2 := dial(), dial()
	defer c1.Close()
	defer c2.Close()

	// Both transactions read both rows, then each writes the row the
	// other read: the classic dangerous structure. Interleave strictly so
	// both reads happen before either write commits.
	h1, st := c1.Begin(pgssi.Serializable, false, false)
	if !st.OK() {
		t.Fatal(st)
	}
	h2, st := c2.Begin(pgssi.Serializable, false, false)
	if !st.OK() {
		t.Fatal(st)
	}
	for _, k := range []string{"alice", "bob"} {
		if _, st := c1.Get(h1, "oncall", k); !st.OK() {
			t.Fatalf("c1 get %s: %v", k, st)
		}
		if _, st := c2.Get(h2, "oncall", k); !st.OK() {
			t.Fatalf("c2 get %s: %v", k, st)
		}
	}
	st1 := c1.Update(h1, "oncall", "alice", []byte("off"))
	st2 := c2.Update(h2, "oncall", "bob", []byte("off"))
	if st1.OK() {
		st1 = c1.Commit(h1)
	} else {
		c1.Rollback(h1)
	}
	if st2.OK() {
		st2 = c2.Commit(h2)
	} else {
		c2.Rollback(h2)
	}

	failures := 0
	for _, st := range []pgssi.Status{st1, st2} {
		switch st {
		case pgssi.StatusOK:
		case pgssi.StatusSerializationFailure:
			failures++
		default:
			t.Fatalf("unexpected status: %v / %v", st1, st2)
		}
	}
	if failures != 1 {
		t.Fatalf("write skew: want exactly 1 serialization failure, got %d (st1=%v st2=%v)", failures, st1, st2)
	}

	// The surviving write must be visible; both off would be the anomaly.
	check := dial()
	defer check.Close()
	h, _ = check.Begin(pgssi.ReadCommitted, true, false)
	va, _ := check.Get(h, "oncall", "alice")
	vb, _ := check.Get(h, "oncall", "bob")
	check.Commit(h)
	if string(va) == "off" && string(vb) == "off" {
		t.Fatal("write skew admitted: both rows updated")
	}
	if string(va) == "on" && string(vb) == "on" {
		t.Fatal("no update survived")
	}
}

// TestDrainOnSIGTERM sends this process a real SIGTERM and asserts the
// full drain contract: the in-flight transaction finishes its commit,
// a late Begin is refused with StatusShuttingDown, and Serve returns
// ErrServerClosed.
func TestDrainOnSIGTERM(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	srv, dial := startServer(t, db, Config{DrainTimeout: 5 * time.Second})
	srv.DrainOnSignal(syscall.SIGUSR1) // not SIGTERM: the test runner owns that

	setup := dial()
	if st := setup.CreateTable("kv"); !st.OK() {
		t.Fatal(st)
	}
	setup.Close()

	// Open a transaction and leave it in flight across the signal.
	inflight := dial()
	defer inflight.Close()
	h, st := inflight.Begin(pgssi.Serializable, false, false)
	if !st.OK() {
		t.Fatal(st)
	}
	if st := inflight.Insert(h, "kv", "survivor", []byte("v")); !st.OK() {
		t.Fatal(st)
	}
	// A second connection with no open transaction: the drain should
	// close it without it having to do anything.
	idle := dial()
	defer idle.Close()
	if st := idle.Ping(); !st.OK() {
		t.Fatal(st)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.DrainStarted():
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not start after signal")
	}

	// Late Begin on the in-flight connection is refused…
	if _, st := inflight.Begin(pgssi.Serializable, false, false); st != pgssi.StatusShuttingDown {
		t.Fatalf("late begin: want StatusShuttingDown, got %v", st)
	}
	// …but the in-flight transaction may still finish.
	if st := inflight.Put(h, "kv", "survivor", []byte("v2")); !st.OK() {
		t.Fatalf("in-flight write during drain: %v", st)
	}
	if st := inflight.Commit(h); !st.OK() {
		t.Fatalf("in-flight commit during drain: %v", st)
	}

	select {
	case err := <-srv.serveErr:
		if err != ErrServerClosed {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}

	// New connections are refused once the listener is down.
	if _, err := net.DialTimeout("tcp", srv.addr, time.Second); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}

	// The committed write survived the drain.
	sess := db.NewSession()
	h2, st := sess.Begin(pgssi.ReadCommitted, true, false)
	if !st.OK() {
		t.Fatal(st)
	}
	v, st := sess.Get(h2, "kv", "survivor")
	if !st.OK() || string(v) != "v2" {
		t.Fatalf("survivor after drain: %q, %v", v, st)
	}
	sess.Commit(h2)
}

// TestDrainForceClosesStragglers: a transaction that never finishes is
// force-closed (and rolled back) once the drain timeout expires.
func TestDrainForceClosesStragglers(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	srv, dial := startServer(t, db, Config{DrainTimeout: 100 * time.Millisecond})

	setup := dial()
	setup.CreateTable("kv")
	setup.Close()

	straggler := dial()
	defer straggler.Close()
	h, st := straggler.Begin(pgssi.Serializable, false, false)
	if !st.OK() {
		t.Fatal(st)
	}
	if st := straggler.Insert(h, "kv", "doomed", []byte("v")); !st.OK() {
		t.Fatal(st)
	}

	done := make(chan struct{})
	go func() { srv.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not honor the drain timeout")
	}
	select {
	case err := <-srv.serveErr:
		if err != ErrServerClosed {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return")
	}

	// The straggler's transaction was rolled back, not committed.
	sess := db.NewSession()
	h2, _ := sess.Begin(pgssi.ReadCommitted, true, false)
	if _, st := sess.Get(h2, "kv", "doomed"); st != pgssi.StatusNotFound {
		t.Fatalf("straggler write survived force-close: %v", st)
	}
	sess.Commit(h2)
}

// TestConnectionLimit: connections beyond MaxConns are closed instead
// of served.
func TestConnectionLimit(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	srv, dial := startServer(t, db, Config{MaxConns: 2})
	defer srv.Shutdown()

	c1, c2 := dial(), dial()
	defer c1.Close()
	defer c2.Close()
	if st := c1.Ping(); !st.OK() {
		t.Fatal(st)
	}
	if st := c2.Ping(); !st.OK() {
		t.Fatal(st)
	}

	// The third connection must fail fast (refused at accept time). The
	// TCP dial itself may succeed before the server closes it, so probe
	// with a request.
	c3, err := wire.Dial(srv.addr, wire.DialOptions{Timeout: 2 * time.Second})
	if err != nil {
		return // refused outright: also acceptable
	}
	defer c3.Close()
	if st := c3.Ping(); st != pgssi.StatusNetwork {
		t.Fatalf("over-limit connection served: %v", st)
	}

	// Closing one frees a slot.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c4, err := wire.Dial(srv.addr, wire.DialOptions{Timeout: 2 * time.Second})
		if err == nil {
			if st := c4.Ping(); st.OK() {
				c4.Close()
				return
			}
			c4.Close()
		}
		if time.Now().After(deadline) {
			t.Fatal("slot was not freed after close")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGarbageInput writes non-protocol bytes at a server and asserts it
// survives (closes that connection, keeps serving others).
func TestGarbageInput(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	srv, dial := startServer(t, db, Config{})
	defer srv.Shutdown()

	payloads := [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0}, // absurd length prefix
		{0, 0, 0, 5, 99, 0, 0, 0, 0},            // bad version
		{0, 0, 0, 9, 1, 0, 0, 0, 0, 1, 2, 3, 4}, // bad CRC
	}
	for i, p := range payloads {
		nc, err := net.Dial("tcp", srv.addr)
		if err != nil {
			t.Fatal(err)
		}
		nc.Write(p)
		// The server must close the connection rather than hang or crash.
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 64)
		for {
			if _, err := nc.Read(buf); err != nil {
				break
			}
		}
		nc.Close()
		// And keep serving well-formed clients.
		c := dial()
		if st := c.Ping(); !st.OK() {
			t.Fatalf("payload %d broke the server: %v", i, st)
		}
		c.Close()
	}

	// A well-framed but undecodable message gets StatusInvalidRequest
	// before the connection is dropped.
	nc, err := net.Dial("tcp", srv.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteFrame(nc, []byte{0xEE, 0xEE, 0xEE}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	body, err := wire.ReadFrame(nc, nil)
	if err != nil {
		t.Fatalf("no response to undecodable message: %v", err)
	}
	resp, err := wire.DecodeResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != pgssi.StatusInvalidRequest {
		t.Fatalf("undecodable message: want StatusInvalidRequest, got %v", resp.Status)
	}
}

// TestConcurrentWireLoad hammers the server from several connections at
// once under -race; correctness of totals is asserted via a final scan.
func TestConcurrentWireLoad(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	srv, dial := startServer(t, db, Config{})
	defer srv.Shutdown()

	setup := dial()
	if st := setup.CreateTable("acct"); !st.OK() {
		t.Fatal(st)
	}
	h, _ := setup.Begin(pgssi.ReadCommitted, false, false)
	for _, k := range []string{"x", "y"} {
		setup.Insert(h, "acct", k, []byte("100"))
	}
	if st := setup.Commit(h); !st.OK() {
		t.Fatal(st)
	}
	setup.Close()

	const workers, iters = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := dial()
			defer c.Close()
			for i := 0; i < iters; i++ {
				h, st := c.Begin(pgssi.Serializable, false, false)
				if !st.OK() {
					continue
				}
				if _, st = c.Get(h, "acct", "x"); !st.OK() {
					c.Rollback(h)
					continue
				}
				if st = c.Put(h, "acct", "y", []byte("w")); !st.OK() {
					c.Rollback(h)
					continue
				}
				c.Commit(h)
			}
			if err := c.Err(); err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
}
