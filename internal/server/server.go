// Package server implements pgssid's TCP front-end: one pgssi.Session
// per connection, served over the length-prefixed wire protocol
// (internal/wire, docs/protocol.md).
//
// The server owns the transport concerns the engine does not: read and
// write deadlines, a connection limit, and graceful drain. Shutdown
// (typically SIGTERM via DrainOnSignal) stops accepting, refuses new
// Begin requests with StatusShuttingDown, lets connections with
// in-flight transactions keep issuing requests until they commit or
// roll back, and force-closes whatever remains after the drain timeout
// (open transactions are rolled back by the connection cleanup).
package server

import (
	"errors"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pgssi"
	"pgssi/internal/mvcc"
	"pgssi/internal/wal"
	"pgssi/internal/wire"
)

// ErrServerClosed is returned by Serve after a graceful Shutdown.
var ErrServerClosed = errors.New("server: closed")

// Config configures a Server. The zero value serves with no connection
// limit, a 5-minute idle timeout, and a 10-second drain timeout.
type Config struct {
	// MaxConns caps concurrently served connections; further accepts
	// are closed immediately. 0 means unlimited.
	MaxConns int
	// IdleTimeout is the per-request read deadline: a connection that
	// sends nothing for this long is closed (its open transactions are
	// rolled back). 0 defaults to 5 minutes; negative disables.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write. 0 defaults to 30s;
	// negative disables.
	WriteTimeout time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight transactions.
	// 0 defaults to 10s.
	DrainTimeout time.Duration
	// Logf, if non-nil, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server serves a pgssi.DB (primary mode) or a pgssi.Replica (replica
// mode) over TCP. Replica mode serves the same protocol restricted to
// read-only traffic: Begin requires the read-only flag, serializable
// begins run on safe snapshots (deferrable = wait for one), DDL is
// refused, and OpReplicate reports StatusNoReplication (cascading
// replication is not supported).
type Server struct {
	db  *pgssi.DB      // nil in replica mode
	rep *pgssi.Replica // nil in primary mode
	cfg Config

	mu       sync.Mutex //ssi:lock level=10 name=server.conns
	listener net.Listener
	conns    map[*conn]struct{}
	wg       sync.WaitGroup

	draining     atomic.Bool
	drainStarted chan struct{}
	done         chan struct{}
	shutdownOnce sync.Once
}

// conn is one served connection.
type conn struct {
	net.Conn
	sess *pgssi.Session
}

// New returns a server over db.
func New(db *pgssi.DB, cfg Config) *Server {
	return &Server{
		db:           db,
		cfg:          cfg.withDefaults(),
		conns:        make(map[*conn]struct{}),
		drainStarted: make(chan struct{}),
		done:         make(chan struct{}),
	}
}

// NewReplicaServer returns a server over a replica: the read tier's
// front-end. Sessions come from Replica.NewSession, and OpReplicaStatus
// reports the replica's applied/safe positions (with
// StatusReplicaHalted once the apply loop has halted on an error — a
// router must stop sending traffic here, not serve stale data).
func NewReplicaServer(rep *pgssi.Replica, cfg Config) *Server {
	return &Server{
		rep:          rep,
		cfg:          cfg.withDefaults(),
		conns:        make(map[*conn]struct{}),
		drainStarted: make(chan struct{}),
		done:         make(chan struct{}),
	}
}

// newSession opens a session on whichever store the server fronts.
func (s *Server) newSession() *pgssi.Session {
	if s.rep != nil {
		return s.rep.NewSession()
	}
	return s.db.NewSession()
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// DrainStarted is closed when a shutdown begins (observability for
// tests and operators).
func (s *Server) DrainStarted() <-chan struct{} { return s.drainStarted }

// Serve accepts connections on l until Shutdown, then returns
// ErrServerClosed once the drain completes. Accept errors other than
// listener closure are returned as-is.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	var active atomic.Int64
	for {
		nc, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				<-s.done
				return ErrServerClosed
			}
			return err
		}
		if s.cfg.MaxConns > 0 && active.Load() >= int64(s.cfg.MaxConns) {
			s.cfg.Logf("server: connection limit (%d) reached, refusing %v", s.cfg.MaxConns, nc.RemoteAddr())
			nc.Close()
			continue
		}
		c := &conn{Conn: nc, sess: s.newSession()}
		s.mu.Lock()
		if s.draining.Load() {
			// Raced a concurrent Shutdown's conn sweep: don't serve.
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		active.Add(1)
		go func() {
			defer active.Add(-1)
			s.serveConn(c)
		}()
	}
}

// removeConn untracks a finished connection.
func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// serveConn runs one connection's request loop.
func (s *Server) serveConn(c *conn) {
	defer s.wg.Done()
	defer s.removeConn(c)
	// Rolling back open transactions is the last thing that happens, so
	// a force-closed connection cannot leak transactions (or their
	// SIREAD locks past the reclaimer's horizon).
	defer c.sess.Close()
	defer c.Close()

	var frame, out []byte
	for {
		if s.cfg.IdleTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		body, err := wire.ReadFrame(c.Conn, frame)
		if err != nil {
			// EOF, deadline, forced close, or a framing error (after
			// which the stream offset is unknown): drop the connection.
			return
		}
		frame = body[:0]
		req, derr := wire.DecodeRequest(body)
		if derr == nil && req.Op == wire.OpReplicate {
			// Replicate hijacks the connection: one response frame, then
			// a one-way stream of record frames until either side closes.
			s.serveReplication(c, req.AfterSeq, out)
			return
		}
		if derr == nil && req.Op == wire.OpFetchCheckpoint {
			// FetchCheckpoint hijacks the connection the same way: one
			// response frame, then the checkpoint's record frames ending
			// with a safe-snapshot terminator, then the connection closes.
			s.serveCheckpoint(c, out)
			return
		}
		var resp wire.Response
		fatal := false
		if derr != nil {
			// The frame itself was well-formed, so framing is still
			// synchronized; report the bad message, then close anyway —
			// a client that builds undecodable requests is broken.
			resp = wire.Response{Status: pgssi.StatusInvalidRequest}
			fatal = true
		} else {
			resp = s.dispatch(c.sess, &req)
		}
		if s.cfg.WriteTimeout > 0 {
			c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		out = wire.AppendResponse(out[:0], &resp)
		if err := wire.WriteFrame(c.Conn, out); err != nil {
			return
		}
		if fatal {
			return
		}
		// During a drain, a connection is closed as soon as it has no
		// transaction in flight; one that does keeps being served so it
		// can finish (commit or roll back), up to the drain timeout.
		if s.draining.Load() && c.sess.Open() == 0 {
			return
		}
	}
}

// serveReplication turns c into a WAL stream: it subscribes to the
// primary's log from the requested position and forwards each record as
// one frame carrying the record body (the WAL's own body encoding —
// docs/wal.md — inside the wire framing). The stream ends when the
// subscription is dropped (the replica fell behind the fan-out buffer),
// the log closes, the write fails, or a drain force-closes the
// connection; the replica then reconnects from its applied position.
func (s *Server) serveReplication(c *conn, afterSeq uint64, out []byte) {
	var stream wal.Stream
	if s.db != nil {
		stream = s.db.WALStream()
	}
	respond := func(resp wire.Response) bool {
		if s.cfg.WriteTimeout > 0 {
			c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		out = wire.AppendResponse(out[:0], &resp)
		return wire.WriteFrame(c.Conn, out) == nil
	}
	if stream == nil {
		respond(wire.Response{Status: pgssi.StatusNoReplication})
		return
	}
	// Subscribe before acknowledging: a resume position below the log's
	// checkpoint GC floor is refused with StatusSeqTruncated — the
	// records are gone, and the replica must fetch a checkpoint instead
	// of waiting for a gap that can never fill.
	var ch <-chan wal.Record
	var cancel func()
	if cs, ok := stream.(wal.CheckedStream); ok {
		var serr error
		ch, cancel, serr = cs.SubscribeFromChecked(mvcc.SeqNo(afterSeq))
		if serr != nil {
			st := pgssi.StatusInternal
			if errors.Is(serr, wal.ErrSeqTruncated) {
				st = pgssi.StatusSeqTruncated
			}
			respond(wire.Response{Status: st})
			return
		}
	} else {
		ch, cancel = stream.SubscribeFrom(mvcc.SeqNo(afterSeq))
	}
	defer cancel()
	if !respond(wire.Response{Status: pgssi.StatusOK}) {
		return
	}
	// The request loop is done with this connection: no further reads,
	// so the idle deadline set before OpReplicate must not fire mid-
	// stream.
	c.SetReadDeadline(time.Time{})

	// The replica never sends another byte, so a completed read — EOF,
	// a stray write, or the drain sweep force-closing the socket — means
	// this stream is over. Without this sentinel the loop below would
	// park on an idle WAL channel forever and Shutdown could never
	// finish its wg.Wait.
	gone := make(chan struct{})
	go func() {
		var b [1]byte
		c.Conn.Read(b[:])
		close(gone)
	}()
	for {
		var rec wal.Record
		var ok bool
		select {
		case rec, ok = <-ch:
			if !ok {
				return
			}
		case <-gone:
			return
		}
		body, err := wal.EncodeRecordBody(rec)
		if err != nil {
			// Unencodable records cannot exist in a log that accepted
			// them; treat as a poisoned stream.
			s.cfg.Logf("server: replication encode: %v", err)
			return
		}
		if s.cfg.WriteTimeout > 0 {
			c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		if err := wire.WriteFrame(c.Conn, body); err != nil {
			return
		}
	}
}

// serveCheckpoint streams the primary's newest checkpoint over c: one
// StatusOK response, then each checkpoint record as a frame carrying the
// record body, terminated by a safe-snapshot marker frame whose sequence
// is the checkpoint sequence (the client resumes replication from it). A
// client that sees the stream end without the terminator must treat the
// checkpoint as torn and retry. StatusNotFound reports that the primary
// has never checkpointed; StatusNoReplication that it emits no WAL
// stream at all (replica mode, or no checkpoint-capable log).
func (s *Server) serveCheckpoint(c *conn, out []byte) {
	var stream wal.Stream
	if s.db != nil {
		stream = s.db.WALStream()
	}
	respond := func(resp wire.Response) bool {
		if s.cfg.WriteTimeout > 0 {
			c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		out = wire.AppendResponse(out[:0], &resp)
		return wire.WriteFrame(c.Conn, out) == nil
	}
	cs, ok := stream.(wal.CheckpointSource)
	if stream == nil || !ok {
		respond(wire.Response{Status: pgssi.StatusNoReplication})
		return
	}
	// Probe before acknowledging, so "no checkpoint yet" is a clean
	// status instead of a torn stream. Checkpoints only ever advance, so
	// a positive probe cannot race to nothing below.
	if ci, ok := cs.(interface {
		CheckpointInfo() (wal.CheckpointInfo, bool)
	}); ok {
		if _, have := ci.CheckpointInfo(); !have {
			respond(wire.Response{Status: pgssi.StatusNotFound})
			return
		}
	}
	if !respond(wire.Response{Status: pgssi.StatusOK}) {
		return
	}
	c.SetReadDeadline(time.Time{})
	writeRec := func(rec wal.Record) error {
		body, err := wal.EncodeRecordBody(rec)
		if err != nil {
			return err
		}
		if s.cfg.WriteTimeout > 0 {
			c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		return wire.WriteFrame(c.Conn, body)
	}
	info, err := cs.ReplayCheckpoint(writeRec)
	if err != nil {
		// Read failure on the checkpoint file or a dead connection: drop
		// without the terminator; the client discards the torn seed.
		s.cfg.Logf("server: checkpoint stream: %v", err)
		return
	}
	if err := writeRec(wal.Record{Seq: info.Seq, SafeSnapshot: true}); err != nil {
		s.cfg.Logf("server: checkpoint terminator: %v", err)
	}
}

// dispatch executes one decoded request against the connection's
// session.
func (s *Server) dispatch(sess *pgssi.Session, req *wire.Request) wire.Response {
	switch req.Op {
	case wire.OpBegin:
		if s.draining.Load() {
			return wire.Response{Status: pgssi.StatusShuttingDown}
		}
		h, st := sess.Begin(req.Isolation, req.Flags&wire.FlagReadOnly != 0, req.Flags&wire.FlagDeferrable != 0)
		return wire.Response{Status: st, Handle: h}
	case wire.OpGet:
		v, st := sess.Get(req.Handle, req.Table, req.Key)
		return wire.Response{Status: st, Value: v, Found: st.OK()}
	case wire.OpPut:
		return wire.Response{Status: sess.Put(req.Handle, req.Table, req.Key, req.Value)}
	case wire.OpInsert:
		return wire.Response{Status: sess.Insert(req.Handle, req.Table, req.Key, req.Value)}
	case wire.OpUpdate:
		return wire.Response{Status: sess.Update(req.Handle, req.Table, req.Key, req.Value)}
	case wire.OpDelete:
		return wire.Response{Status: sess.Delete(req.Handle, req.Table, req.Key)}
	case wire.OpScan:
		rows, st := sess.Scan(req.Handle, req.Table, req.Key, req.Hi, int(req.Limit))
		if rows == nil {
			rows = []pgssi.KV{}
		}
		return wire.Response{Status: st, Rows: rows}
	case wire.OpCommit:
		return wire.Response{Status: sess.Commit(req.Handle)}
	case wire.OpRollback:
		return wire.Response{Status: sess.Rollback(req.Handle)}
	case wire.OpSavepoint:
		return wire.Response{Status: sess.Savepoint(req.Handle, req.Key)}
	case wire.OpReleaseSavepoint:
		return wire.Response{Status: sess.ReleaseSavepoint(req.Handle, req.Key)}
	case wire.OpRollbackToSavepoint:
		return wire.Response{Status: sess.RollbackToSavepoint(req.Handle, req.Key)}
	case wire.OpCreateTable:
		return wire.Response{Status: sess.CreateTable(req.Table)}
	case wire.OpPing:
		return wire.Response{Status: pgssi.StatusOK}
	case wire.OpReplicaStatus:
		if s.rep != nil {
			resp := wire.Response{
				Status:     pgssi.StatusOK,
				HasSeqs:    true,
				AppliedSeq: s.rep.AppliedSeq(),
				SafeSeq:    s.rep.SafeSeq(),
			}
			if s.rep.Err() != nil {
				resp.Status = pgssi.StatusReplicaHalted
			}
			return resp
		}
		// A primary is trivially caught up with itself.
		seq := s.db.CurrentSeq()
		return wire.Response{Status: pgssi.StatusOK, HasSeqs: true, AppliedSeq: seq, SafeSeq: seq}
	default:
		return wire.Response{Status: pgssi.StatusInvalidRequest}
	}
}

// Shutdown drains the server gracefully: stop accepting, refuse new
// Begins, close idle connections, wait up to DrainTimeout for in-flight
// transactions to finish, then force-close the rest (rolling their
// transactions back). It blocks until the drain completes and is safe
// to call multiple times and from signal handlers.
func (s *Server) Shutdown() {
	s.shutdownOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainStarted)
		s.mu.Lock()
		if s.listener != nil {
			s.listener.Close()
		}
		s.mu.Unlock()

		deadline := time.Now().Add(s.cfg.DrainTimeout)
		for {
			s.mu.Lock()
			remaining := 0
			for c := range s.conns {
				if c.sess.Open() == 0 {
					// Quiescent: unblock its read loop. The handler
					// also self-closes after its next response, so
					// this only shortens the wait for idle readers.
					c.Close()
				} else {
					remaining++
				}
			}
			s.mu.Unlock()
			if remaining == 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}

		// Force whatever is left; serveConn's cleanup rolls back.
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
		close(s.done)
	})
	<-s.done
}

// DrainOnSignal installs a handler that calls Shutdown on the first of
// sigs (default: SIGTERM and SIGINT) and returns. A second signal
// force-exits the process.
func (s *Server) DrainOnSignal(sigs ...os.Signal) {
	if len(sigs) == 0 {
		sigs = []os.Signal{syscall.SIGTERM, syscall.SIGINT}
	}
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, sigs...)
	go func() {
		sig := <-ch
		s.cfg.Logf("server: received %v, draining", sig)
		go func() {
			<-ch
			log.Fatal("server: second signal, forcing exit")
		}()
		s.Shutdown()
	}()
}
