package server

import (
	"errors"
	"net"
	"testing"
	"time"

	"pgssi"
	"pgssi/internal/wal"
	"pgssi/internal/wire"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReplicationOverTCP streams a primary's WAL to a replica through a
// real server connection and serves serializable reads from it.
func TestReplicationOverTCP(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	if err := db.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	db.AttachWAL(wal.NewLog())

	srv, _ := startServer(t, db, Config{})
	defer srv.Shutdown()

	for i := 0; i < 3; i++ {
		err := db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
			return tx.Insert("kv", "k"+string(rune('a'+i)), []byte{byte(i)})
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	src := &wire.ReplicaSource{Addr: srv.addr, DialTimeout: 5 * time.Second}
	rep, err := pgssi.NewReplica(src, []string{"kv"})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	// 3 commits + 3 safe markers (no concurrency on the master).
	if err := rep.WaitApplied(6); err != nil {
		t.Fatal(err)
	}
	tx, err := rep.BeginReadOnly(pgssi.ReplicaTxOptions{Serializable: true, WaitSafe: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if !tx.OnSafeSnapshot() {
		t.Fatal("replica serializable read not on a safe snapshot")
	}
	n := 0
	if err := tx.Scan("kv", "", "", func(string, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replica saw %d rows, want 3", n)
	}
	if seq := rep.AppliedSeq(); seq == 0 || seq != rep.SafeSeq() {
		t.Fatalf("positions: applied seq %d, safe seq %d", seq, rep.SafeSeq())
	}
}

// TestReplicaServerServesReadOnly fronts a replica with its own server
// and checks the read-only session contract over the wire.
func TestReplicaServerServesReadOnly(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	if err := db.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	db.AttachWAL(wal.NewLog())
	srv, _ := startServer(t, db, Config{})
	defer srv.Shutdown()

	if err := db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
		return tx.Insert("kv", "k", []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}

	rep, err := pgssi.NewReplica(&wire.ReplicaSource{Addr: srv.addr, DialTimeout: 5 * time.Second}, []string{"kv"})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if err := rep.WaitApplied(2); err != nil {
		t.Fatal(err)
	}

	rsrv := NewReplicaServer(rep, Config{Logf: t.Logf})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rsrv.Serve(l)
	defer rsrv.Shutdown()

	c, err := wire.Dial(l.Addr().String(), wire.DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Writes and DDL are refused.
	if _, st := c.Begin(pgssi.Serializable, false, false); st != pgssi.StatusReadOnlyTx {
		t.Fatalf("read-write begin on replica: %v, want read-only refusal", st)
	}
	if st := c.CreateTable("other"); st != pgssi.StatusReadOnlyTx {
		t.Fatalf("ddl on replica: %v, want read-only refusal", st)
	}

	// A deferrable serializable read-only txn serves from the safe
	// snapshot.
	h, st := c.Begin(pgssi.Serializable, true, true)
	if !st.OK() {
		t.Fatalf("serializable read-only begin: %v", st)
	}
	v, st := c.Get(h, "kv", "k")
	if !st.OK() || string(v) != "v" {
		t.Fatalf("replica get = %q, %v", v, st)
	}
	if st := c.Put(h, "kv", "k", []byte("w")); st != pgssi.StatusReadOnlyTx {
		t.Fatalf("put in read-only txn: %v", st)
	}
	if st := c.Commit(h); !st.OK() {
		t.Fatalf("commit: %v", st)
	}

	// Status reports positions; primary reports its own seq for both.
	applied, safe, st := c.ReplicaStatus()
	if !st.OK() || applied == 0 || applied != safe {
		t.Fatalf("replica status = %d/%d, %v", applied, safe, st)
	}
}

// TestReplicateWithoutWAL: a primary with no WAL refuses replication
// with a typed status, and ReplicaSource surfaces it as a closed
// subscription.
func TestReplicateWithoutWAL(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	srv, _ := startServer(t, db, Config{})
	defer srv.Shutdown()

	conn, err := net.Dial("tcp", srv.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := wire.AppendRequest(nil, &wire.Request{Op: wire.OpReplicate})
	if err := wire.WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	body, err := wire.ReadFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != pgssi.StatusNoReplication {
		t.Fatalf("replicate on WAL-less primary: %v, want StatusNoReplication", resp.Status)
	}

	ch, cancel := (&wire.ReplicaSource{Addr: srv.addr, DialTimeout: 5 * time.Second}).Subscribe()
	defer cancel()
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("got a record from a WAL-less primary")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription to WAL-less primary did not close")
	}
}

// TestReplicaHaltsOnNoReplication: a replica attached to a primary that
// refuses replication outright (no WAL stream) must halt with the
// refusal surfaced — not retry forever while looking healthy at seq 0.
func TestReplicaHaltsOnNoReplication(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	srv, _ := startServer(t, db, Config{})
	defer srv.Shutdown()

	src := &wire.ReplicaSource{Addr: srv.addr, DialTimeout: 5 * time.Second}
	rep, err := pgssi.NewReplica(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	waitFor(t, 5*time.Second, func() bool { return rep.Err() != nil }, "halt on refused replication")
	if !errors.Is(rep.Err(), pgssi.ErrReplicaHalted) {
		t.Fatalf("halt error = %v, want ErrReplicaHalted", rep.Err())
	}
	if src.PermanentErr() == nil {
		t.Fatal("ReplicaSource recorded no permanent error for StatusNoReplication")
	}
	if _, err := rep.BeginReadOnly(pgssi.ReplicaTxOptions{Serializable: true}); !errors.Is(err, pgssi.ErrReplicaHalted) {
		t.Fatalf("begin on halted replica = %v, want ErrReplicaHalted", err)
	}
}

// TestReplicaCatchesUpAcrossMasterRestart: a durable master is stopped
// and reopened on the same address while a replica is attached. The
// replica must reconnect, resume from its applied position, and apply
// the new records exactly once.
func TestReplicaCatchesUpAcrossMasterRestart(t *testing.T) {
	dir := t.TempDir()
	db, err := pgssi.OpenDir(dir, pgssi.Config{FsyncMode: pgssi.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	srv, _ := startServer(t, db, Config{})

	put := func(d *pgssi.DB, k, v string) {
		t.Helper()
		if err := d.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
			return tx.Put("kv", k, []byte(v))
		}); err != nil {
			t.Fatal(err)
		}
	}
	put(db, "a", "1")
	put(db, "b", "2")

	rep, err := pgssi.NewReplica(&wire.ReplicaSource{Addr: srv.addr, DialTimeout: 5 * time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	// Durable stream: schema record + 2 commits + 2 markers.
	if err := rep.WaitApplied(5); err != nil {
		t.Fatal(err)
	}
	applied1, err := rep.AppliedRecords()
	if err != nil {
		t.Fatal(err)
	}
	seq1 := rep.AppliedSeq()

	// Restart the master on the same address.
	srv.Shutdown()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := pgssi.OpenDir(dir, pgssi.Config{FsyncMode: pgssi.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	l, err := net.Listen("tcp", srv.addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", srv.addr, err)
	}
	srv2 := New(db2, Config{Logf: t.Logf})
	go srv2.Serve(l)
	defer srv2.Shutdown()

	put(db2, "c", "3")

	waitFor(t, 10*time.Second, func() bool {
		if err := rep.Err(); err != nil {
			t.Fatalf("replica halted during catch-up: %v", err)
		}
		return rep.AppliedSeq() > seq1
	}, "replica to catch up past the restart")

	tx, err := rep.BeginReadOnly(pgssi.ReplicaTxOptions{Serializable: true, WaitSafe: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		v, err := tx.Get("kv", k)
		if err != nil || string(v) != want {
			t.Fatalf("after catch-up, %s = %q (%v), want %q", k, v, err, want)
		}
	}
	// Exactly once: the reconnect resumed after seq1, so the total
	// applied count grows only by the new records (1 commit + markers),
	// never re-applying the prefix.
	applied2, err := rep.AppliedRecords()
	if err != nil {
		t.Fatal(err)
	}
	grown := applied2 - applied1
	if grown <= 0 || grown > 4 {
		t.Fatalf("applied count grew by %d across restart (was %d, now %d): prefix re-applied?", grown, applied1, applied2)
	}
}

// TestReplicaHaltReportedOverWire: a replica that halts on an apply
// error reports StatusReplicaHalted from both Begin and ReplicaStatus —
// it must never quietly serve stale snapshots.
func TestReplicaHaltReportedOverWire(t *testing.T) {
	log := wal.NewLog()
	rep, err := pgssi.NewReplica(log, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	// A commit against a table the replica does not have: apply fails.
	log.Append(wal.Record{Seq: 1, Xid: 1, Ops: []wal.Op{{Table: "nope", Key: "k", Value: []byte("v")}}})
	waitFor(t, 5*time.Second, func() bool { return rep.Err() != nil }, "replica halt")
	if !errors.Is(rep.Err(), pgssi.ErrReplicaHalted) {
		t.Fatalf("halt error = %v", rep.Err())
	}

	rsrv := NewReplicaServer(rep, Config{Logf: t.Logf})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rsrv.Serve(l)
	defer rsrv.Shutdown()
	c, err := wire.Dial(l.Addr().String(), wire.DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, st := c.ReplicaStatus(); st != pgssi.StatusReplicaHalted {
		t.Fatalf("status on halted replica: %v, want StatusReplicaHalted", st)
	}
	if _, st := c.Begin(pgssi.Serializable, true, false); st != pgssi.StatusReplicaHalted {
		t.Fatalf("begin on halted replica: %v, want StatusReplicaHalted", st)
	}
}
