// Package router implements lag-aware read routing over a replication
// fleet: one primary plus any number of safe-snapshot replicas
// (pgssi.Replica behind a replica-mode pgssid, or in process).
//
// The router sends read-only traffic to replicas whose safe-snapshot
// position is within a staleness bound of the primary's current commit
// sequence, round-robining among the eligible ones, and everything else
// (writes, and reads when every replica is stale or down) to the
// primary. Serializable read-only transactions routed to a replica are
// begun deferrable — they land exactly on a safe snapshot (§4.2), so
// write skew stays impossible on replica reads without any SSI
// tracking there. A begin the replica refuses (halted, shutting down,
// raced past the lag gate) falls back to the primary rather than
// failing the caller.
package router

import (
	"sync"
	"time"

	"pgssi"
)

// Backend is the handle-based transactional surface a fleet member
// serves: the method set shared by pgssi.Session, pgssi.Replica
// sessions, and wire.Client, and the subset internal/workload's
// open-loop driver needs. Router sessions satisfy it too, so a router
// drops into any harness a single session fits.
type Backend interface {
	Begin(level pgssi.IsolationLevel, readOnly, deferrable bool) (pgssi.Handle, pgssi.Status)
	Get(h pgssi.Handle, table, key string) ([]byte, pgssi.Status)
	Put(h pgssi.Handle, table, key string, value []byte) pgssi.Status
	Commit(h pgssi.Handle) pgssi.Status
	Rollback(h pgssi.Handle) pgssi.Status
}

// StatusFunc reports a member's replication position: the applied and
// safe-snapshot commit sequence numbers, and whether the member is
// serviceable at all (a halted or unreachable member reports ok=false
// and receives no traffic). wire.Client.ReplicaStatus adapts directly:
//
//	func() (uint64, uint64, bool) { a, s, st := c.ReplicaStatus(); return a, s, st.OK() }
type StatusFunc func() (applied, safe uint64, ok bool)

// Member is one routable fleet member.
type Member struct {
	// Name labels the member in stats and diagnostics.
	Name string
	// Backend serves the member's transactions.
	Backend Backend
	// Status polls the member's replication position. For the primary
	// it reports the current commit sequence (the lag reference point).
	Status StatusFunc
}

// Config configures a Router.
type Config struct {
	// MaxLag is the staleness bound: a replica is eligible for reads
	// only while primarySeq - safeSeq <= MaxLag. 0 demands replicas
	// exactly at the primary's position.
	MaxLag uint64
	// PollInterval is the status-poll cadence. 0 defaults to 5ms.
	PollInterval time.Duration
	// WaitSafe bounds how long a read-only begin waits for some replica
	// to become eligible before falling back to the primary — the
	// DEFERRABLE-style "wait for a safe snapshot, then read cheaply"
	// trade. 0 falls back immediately.
	WaitSafe time.Duration
}

// Stats counts routing decisions.
type Stats struct {
	// ReplicaBegins is the number of begins served by a replica.
	ReplicaBegins uint64
	// PrimaryBegins is the number served by the primary (writes plus
	// fallbacks).
	PrimaryBegins uint64
	// Fallbacks is how many read-only begins wanted a replica but fell
	// back: none eligible within WaitSafe, or the chosen replica
	// refused the begin.
	Fallbacks uint64
}

// pos is a polled member position.
type pos struct {
	applied, safe uint64
	ok            bool
}

// Router routes transactions across one primary and N replicas.
type Router struct {
	cfg      Config
	primary  Member
	replicas []Member

	mu         sync.Mutex //ssi:lock level=20 name=router.fleet
	cond       *sync.Cond
	primarySeq uint64
	primaryOK  bool
	positions  []pos
	rr         uint64
	stats      Stats
	stopped    bool

	stopCh chan struct{}
	done   chan struct{}
}

// New starts a router over the fleet. The primary's StatusFunc supplies
// the lag reference; replicas without one are never eligible. Close
// stops the poller.
func New(primary Member, replicas []Member, cfg Config) *Router {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	r := &Router{
		cfg:       cfg,
		primary:   primary,
		replicas:  replicas,
		positions: make([]pos, len(replicas)),
		stopCh:    make(chan struct{}),
		done:      make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	r.pollOnce()
	go r.poll()
	return r
}

// Close stops the status poller. Member backends are not closed — the
// router does not own them.
func (r *Router) Close() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.cond.Broadcast()
	r.mu.Unlock()
	close(r.stopCh)
	<-r.done
}

// poll refreshes member positions until Close.
func (r *Router) poll() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-t.C:
			r.pollOnce()
		}
	}
}

// pollOnce polls every member once. Status calls run outside the lock —
// they may be network round trips.
func (r *Router) pollOnce() {
	var pseq uint64
	pok := false
	if r.primary.Status != nil {
		_, pseq, pok = r.primary.Status()
	}
	fresh := make([]pos, len(r.replicas))
	for i, m := range r.replicas {
		if m.Status == nil {
			continue
		}
		a, s, ok := m.Status()
		fresh[i] = pos{applied: a, safe: s, ok: ok}
	}
	r.mu.Lock()
	r.primarySeq, r.primaryOK = pseq, pok
	copy(r.positions, fresh)
	r.cond.Broadcast()
	r.mu.Unlock()
}

// eligibleLocked returns the index of the next eligible replica
// (round-robin), or -1. Caller holds r.mu.
func (r *Router) eligibleLocked() int {
	n := len(r.replicas)
	if n == 0 || !r.primaryOK {
		// Without a primary position there is no lag reference; refuse
		// to guess and let reads fall back to the primary.
		return -1
	}
	for off := 0; off < n; off++ {
		i := int((r.rr + uint64(off)) % uint64(n))
		p := r.positions[i]
		if !p.ok {
			continue
		}
		if p.safe == 0 && r.primarySeq > 0 {
			// The replica has never seen a safe-snapshot marker (e.g. its
			// feed is broken): a serializable begin there would block until
			// one arrives, so it is not eligible no matter the bound.
			continue
		}
		lag := uint64(0)
		if r.primarySeq > p.safe {
			lag = r.primarySeq - p.safe
		}
		if lag <= r.cfg.MaxLag {
			r.rr = uint64(i) + 1
			return i
		}
	}
	return -1
}

// pickReplica selects an eligible replica for a read-only transaction,
// waiting up to WaitSafe for one to appear. It returns the replica's
// index, or -1 when the caller should use the primary.
func (r *Router) pickReplica() int {
	if len(r.replicas) == 0 {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	deadline := time.Now().Add(r.cfg.WaitSafe)
	for {
		if r.stopped {
			return -1
		}
		if i := r.eligibleLocked(); i >= 0 {
			return i
		}
		if r.cfg.WaitSafe <= 0 || time.Now().After(deadline) {
			return -1
		}
		// The poller broadcasts every PollInterval, so this wakes at
		// poll granularity and rechecks the deadline.
		r.cond.Wait()
	}
}

// Pick chooses the member for one transaction and counts the decision:
// the index of an eligible replica for read-only work (waiting up to
// WaitSafe for one), or -1 meaning the primary. It is the low-level
// API for callers that hold their own per-member connections (cmd/
// pgload's per-slot pools, where a transaction's handles must stay on
// the connection that began it); everyone else should use NewSession.
func (r *Router) Pick(readOnly bool) int {
	if readOnly {
		if i := r.pickReplica(); i >= 0 {
			r.count(func(st *Stats) { st.ReplicaBegins++ })
			return i
		}
		r.count(func(st *Stats) { st.Fallbacks++; st.PrimaryBegins++ })
		return -1
	}
	r.count(func(st *Stats) { st.PrimaryBegins++ })
	return -1
}

// PrimaryStatus adapts an in-process primary: its current commit
// sequence is both positions (a primary is trivially caught up with
// itself), matching what a pgssid primary reports over OpReplicaStatus.
func PrimaryStatus(db *pgssi.DB) StatusFunc {
	return func() (uint64, uint64, bool) {
		s := db.CurrentSeq()
		return s, s, true
	}
}

// ReplicaStatus adapts an in-process replica. A halted replica reports
// ok=false: its positions are frozen at the divergence point and must
// not attract traffic.
func ReplicaStatus(rep *pgssi.Replica) StatusFunc {
	return func() (uint64, uint64, bool) {
		if rep.Err() != nil {
			return 0, 0, false
		}
		return rep.AppliedSeq(), rep.SafeSeq(), true
	}
}

// Stats returns a snapshot of the routing counters.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// NewSession returns a routing session. Each Begin picks a member; the
// returned handles are router-local and remapped per operation, so one
// session can hold transactions on several members at once. Safe for
// concurrent use iff the member backends are.
func (r *Router) NewSession() *Session {
	return &Session{r: r, txs: make(map[pgssi.Handle]binding)}
}

// binding ties a router-local handle to the member transaction behind
// it.
type binding struct {
	b Backend
	h pgssi.Handle
}

// Session is a Backend that routes each transaction to a fleet member.
type Session struct {
	r *Router

	mu   sync.Mutex //ssi:lock level=10 name=router.session
	next pgssi.Handle
	txs  map[pgssi.Handle]binding
}

// Begin routes a transaction: writes to the primary; reads to an
// eligible replica (deferrable there, so serializable reads begin on a
// safe snapshot) with primary fallback.
func (s *Session) Begin(level pgssi.IsolationLevel, readOnly, deferrable bool) (pgssi.Handle, pgssi.Status) {
	if readOnly {
		if i := s.r.pickReplica(); i >= 0 {
			m := &s.r.replicas[i]
			// Always deferrable on the replica leg: the lag gate said
			// the replica is close; waiting for its next marker is what
			// guarantees the snapshot is safe, not merely recent.
			h, st := m.Backend.Begin(level, true, true)
			if st.OK() {
				s.r.count(func(st *Stats) { st.ReplicaBegins++ })
				return s.register(m.Backend, h), st
			}
			// Refused (halted, shutting down, raced): fall through.
		}
		s.r.count(func(st *Stats) { st.Fallbacks++ })
	}
	h, st := s.r.primary.Backend.Begin(level, readOnly, deferrable)
	if !st.OK() {
		return 0, st
	}
	s.r.count(func(st *Stats) { st.PrimaryBegins++ })
	return s.register(s.r.primary.Backend, h), st
}

// count mutates the stats under the router lock.
func (r *Router) count(f func(*Stats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}

// register assigns a router-local handle.
func (s *Session) register(b Backend, h pgssi.Handle) pgssi.Handle {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	local := s.next
	s.txs[local] = binding{b: b, h: h}
	return local
}

// lookup resolves a router-local handle.
func (s *Session) lookup(h pgssi.Handle) (binding, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bd, ok := s.txs[h]
	return bd, ok
}

// release forgets a finished transaction.
func (s *Session) release(h pgssi.Handle) {
	s.mu.Lock()
	delete(s.txs, h)
	s.mu.Unlock()
}

// Get reads key through the member holding h's transaction.
func (s *Session) Get(h pgssi.Handle, table, key string) ([]byte, pgssi.Status) {
	bd, ok := s.lookup(h)
	if !ok {
		return nil, pgssi.StatusInvalidHandle
	}
	return bd.b.Get(bd.h, table, key)
}

// Put writes key through the member holding h's transaction.
func (s *Session) Put(h pgssi.Handle, table, key string, value []byte) pgssi.Status {
	bd, ok := s.lookup(h)
	if !ok {
		return pgssi.StatusInvalidHandle
	}
	return bd.b.Put(bd.h, table, key, value)
}

// Commit finishes h's transaction on its member.
func (s *Session) Commit(h pgssi.Handle) pgssi.Status {
	bd, ok := s.lookup(h)
	if !ok {
		return pgssi.StatusInvalidHandle
	}
	st := bd.b.Commit(bd.h)
	s.release(h)
	return st
}

// Rollback aborts h's transaction on its member.
func (s *Session) Rollback(h pgssi.Handle) pgssi.Status {
	bd, ok := s.lookup(h)
	if !ok {
		return pgssi.StatusInvalidHandle
	}
	st := bd.b.Rollback(bd.h)
	s.release(h)
	return st
}
