package router

import (
	"sync"
	"testing"
	"time"

	"pgssi"
	"pgssi/internal/wal"
)

// fakeBackend counts begins and hands out handles; every other op
// succeeds. Scripted positions come from the member's StatusFunc.
type fakeBackend struct {
	mu     sync.Mutex
	begins int
	next   pgssi.Handle
}

func (f *fakeBackend) Begin(level pgssi.IsolationLevel, readOnly, deferrable bool) (pgssi.Handle, pgssi.Status) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.begins++
	f.next++
	return f.next, pgssi.StatusOK
}

func (f *fakeBackend) Get(h pgssi.Handle, table, key string) ([]byte, pgssi.Status) {
	return nil, pgssi.StatusNotFound
}
func (f *fakeBackend) Put(h pgssi.Handle, table, key string, value []byte) pgssi.Status {
	return pgssi.StatusOK
}
func (f *fakeBackend) Commit(h pgssi.Handle) pgssi.Status   { return pgssi.StatusOK }
func (f *fakeBackend) Rollback(h pgssi.Handle) pgssi.Status { return pgssi.StatusOK }

func (f *fakeBackend) beginCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.begins
}

// static returns a StatusFunc with fixed positions.
func static(applied, safe uint64, ok bool) StatusFunc {
	return func() (uint64, uint64, bool) { return applied, safe, ok }
}

func TestRouterWritesGoToPrimary(t *testing.T) {
	prim, rep := &fakeBackend{}, &fakeBackend{}
	r := New(
		Member{Name: "primary", Backend: prim, Status: static(10, 10, true)},
		[]Member{{Name: "r1", Backend: rep, Status: static(10, 10, true)}},
		Config{MaxLag: 0},
	)
	defer r.Close()
	s := r.NewSession()

	h, st := s.Begin(pgssi.Serializable, false, false)
	if !st.OK() {
		t.Fatalf("begin: %v", st)
	}
	s.Commit(h)
	if prim.beginCount() != 1 || rep.beginCount() != 0 {
		t.Fatalf("write routed to replica (primary=%d replica=%d)", prim.beginCount(), rep.beginCount())
	}
}

func TestRouterRoundRobinsEligibleReplicas(t *testing.T) {
	prim, r1, r2 := &fakeBackend{}, &fakeBackend{}, &fakeBackend{}
	r := New(
		Member{Name: "primary", Backend: prim, Status: static(100, 100, true)},
		[]Member{
			{Name: "r1", Backend: r1, Status: static(99, 98, true)},
			{Name: "r2", Backend: r2, Status: static(100, 99, true)},
		},
		Config{MaxLag: 5},
	)
	defer r.Close()
	s := r.NewSession()

	for i := 0; i < 6; i++ {
		h, st := s.Begin(pgssi.Serializable, true, false)
		if !st.OK() {
			t.Fatalf("begin %d: %v", i, st)
		}
		s.Rollback(h)
	}
	if r1.beginCount() != 3 || r2.beginCount() != 3 {
		t.Fatalf("round robin skew: r1=%d r2=%d", r1.beginCount(), r2.beginCount())
	}
	if prim.beginCount() != 0 {
		t.Fatalf("read leaked to primary (%d begins)", prim.beginCount())
	}
	st := r.Stats()
	if st.ReplicaBegins != 6 || st.PrimaryBegins != 0 || st.Fallbacks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRouterFallsBackWhenAllStale(t *testing.T) {
	prim, rep := &fakeBackend{}, &fakeBackend{}
	r := New(
		Member{Name: "primary", Backend: prim, Status: static(100, 100, true)},
		[]Member{{Name: "r1", Backend: rep, Status: static(50, 40, true)}},
		Config{MaxLag: 5}, // lag 60 > 5: ineligible
	)
	defer r.Close()
	s := r.NewSession()

	h, st := s.Begin(pgssi.Serializable, true, false)
	if !st.OK() {
		t.Fatalf("begin: %v", st)
	}
	s.Rollback(h)
	if rep.beginCount() != 0 || prim.beginCount() != 1 {
		t.Fatalf("stale replica served a read (replica=%d primary=%d)", rep.beginCount(), prim.beginCount())
	}
	if st := r.Stats(); st.Fallbacks != 1 || st.PrimaryBegins != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRouterSkipsNotOKReplica(t *testing.T) {
	prim, dead, live := &fakeBackend{}, &fakeBackend{}, &fakeBackend{}
	r := New(
		Member{Name: "primary", Backend: prim, Status: static(10, 10, true)},
		[]Member{
			{Name: "halted", Backend: dead, Status: static(0, 0, false)},
			{Name: "live", Backend: live, Status: static(10, 10, true)},
		},
		Config{MaxLag: 0},
	)
	defer r.Close()
	s := r.NewSession()

	for i := 0; i < 4; i++ {
		h, st := s.Begin(pgssi.RepeatableRead, true, false)
		if !st.OK() {
			t.Fatalf("begin %d: %v", i, st)
		}
		s.Commit(h)
	}
	if dead.beginCount() != 0 {
		t.Fatalf("halted replica served %d begins", dead.beginCount())
	}
	if live.beginCount() != 4 {
		t.Fatalf("live replica served %d of 4 begins", live.beginCount())
	}
}

func TestRouterWaitSafeUntilEligible(t *testing.T) {
	prim, rep := &fakeBackend{}, &fakeBackend{}
	var mu sync.Mutex
	safe := uint64(0) // starts stale
	r := New(
		Member{Name: "primary", Backend: prim, Status: static(100, 100, true)},
		[]Member{{Name: "r1", Backend: rep, Status: func() (uint64, uint64, bool) {
			mu.Lock()
			defer mu.Unlock()
			return safe, safe, true
		}}},
		Config{MaxLag: 0, PollInterval: time.Millisecond, WaitSafe: 5 * time.Second},
	)
	defer r.Close()

	go func() {
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		safe = 100
		mu.Unlock()
	}()

	s := r.NewSession()
	h, st := s.Begin(pgssi.Serializable, true, true)
	if !st.OK() {
		t.Fatalf("begin: %v", st)
	}
	s.Rollback(h)
	if rep.beginCount() != 1 {
		t.Fatalf("wait-for-safe did not route to the replica (replica=%d primary=%d)", rep.beginCount(), prim.beginCount())
	}
}

func TestSessionUnknownHandle(t *testing.T) {
	prim := &fakeBackend{}
	r := New(Member{Name: "primary", Backend: prim, Status: static(1, 1, true)}, nil, Config{})
	defer r.Close()
	s := r.NewSession()
	if _, st := s.Get(42, "t", "k"); st != pgssi.StatusInvalidHandle {
		t.Fatalf("get on unknown handle: %v", st)
	}
	if st := s.Commit(7); st != pgssi.StatusInvalidHandle {
		t.Fatalf("commit on unknown handle: %v", st)
	}
}

// ---- integration: real replicas, the safety invariant ----------------

// replicaBackend adapts a real pgssi.Replica to Backend the same way
// Replica.NewSession does, but keeps the *pgssi.Tx visible so the test
// can check OnSafeSnapshot on every serializable begin the router
// routes here.
type replicaBackend struct {
	rep *pgssi.Replica

	mu      sync.Mutex
	next    pgssi.Handle
	txs     map[pgssi.Handle]*pgssi.Tx
	serial  int // serializable begins served
	unsafeN int // ...of those, not on a safe snapshot (must stay 0)
}

func newReplicaBackend(rep *pgssi.Replica) *replicaBackend {
	return &replicaBackend{rep: rep, txs: make(map[pgssi.Handle]*pgssi.Tx)}
}

func (b *replicaBackend) Begin(level pgssi.IsolationLevel, readOnly, deferrable bool) (pgssi.Handle, pgssi.Status) {
	if !readOnly {
		return 0, pgssi.StatusReadOnlyTx
	}
	tx, err := b.rep.BeginReadOnly(pgssi.ReplicaTxOptions{
		Serializable: level == pgssi.Serializable,
		WaitSafe:     deferrable,
	})
	if err != nil {
		return 0, pgssi.StatusOf(err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if level == pgssi.Serializable {
		b.serial++
		if !tx.OnSafeSnapshot() {
			b.unsafeN++
		}
	}
	b.next++
	b.txs[b.next] = tx
	return b.next, pgssi.StatusOK
}

func (b *replicaBackend) tx(h pgssi.Handle) *pgssi.Tx {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.txs[h]
}

func (b *replicaBackend) Get(h pgssi.Handle, table, key string) ([]byte, pgssi.Status) {
	tx := b.tx(h)
	if tx == nil {
		return nil, pgssi.StatusInvalidHandle
	}
	v, err := tx.Get(table, key)
	if err != nil {
		return nil, pgssi.StatusOf(err)
	}
	return v, pgssi.StatusOK
}

func (b *replicaBackend) Put(h pgssi.Handle, table, key string, value []byte) pgssi.Status {
	return pgssi.StatusReadOnlyTx
}

func (b *replicaBackend) Commit(h pgssi.Handle) pgssi.Status {
	tx := b.tx(h)
	if tx == nil {
		return pgssi.StatusInvalidHandle
	}
	st := pgssi.StatusOf(tx.Commit())
	b.mu.Lock()
	delete(b.txs, h)
	b.mu.Unlock()
	return st
}

func (b *replicaBackend) Rollback(h pgssi.Handle) pgssi.Status {
	tx := b.tx(h)
	if tx == nil {
		return pgssi.StatusInvalidHandle
	}
	tx.Rollback()
	b.mu.Lock()
	delete(b.txs, h)
	b.mu.Unlock()
	return pgssi.StatusOK
}

// TestRouterServesOnlySafeSnapshots drives a router over real replicas
// while the primary keeps writing, and asserts the core invariant:
// every serializable read the router routes to a replica runs on a safe
// snapshot — write skew is impossible on replica reads by construction.
func TestRouterServesOnlySafeSnapshots(t *testing.T) {
	db := pgssi.Open(pgssi.Config{})
	defer db.Close()
	if err := db.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	log := wal.NewLog()
	db.AttachWAL(log)

	var reps []*pgssi.Replica
	var backs []*replicaBackend
	var members []Member
	for i := 0; i < 2; i++ {
		rep, err := pgssi.NewReplica(log, []string{"kv"})
		if err != nil {
			t.Fatal(err)
		}
		defer rep.Close()
		b := newReplicaBackend(rep)
		reps = append(reps, rep)
		backs = append(backs, b)
		members = append(members, Member{Name: "r", Backend: b, Status: ReplicaStatus(rep)})
	}
	r := New(
		Member{Name: "primary", Backend: db.NewSession(), Status: PrimaryStatus(db)},
		members,
		Config{MaxLag: 1 << 32, PollInterval: time.Millisecond, WaitSafe: 5 * time.Second},
	)
	defer r.Close()

	// Writers keep the log moving while readers route.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			db.RunTx(pgssi.TxOptions{Isolation: pgssi.Serializable}, func(tx *pgssi.Tx) error {
				return tx.Put("kv", "k", []byte{byte(i)})
			})
		}
	}()

	s := r.NewSession()
	for i := 0; i < 50; i++ {
		h, st := s.Begin(pgssi.Serializable, true, true)
		if !st.OK() {
			t.Fatalf("routed begin %d: %v", i, st)
		}
		if _, st := s.Get(h, "kv", "k"); !st.OK() && st != pgssi.StatusNotFound {
			t.Fatalf("routed get %d: %v", i, st)
		}
		if st := s.Commit(h); !st.OK() {
			t.Fatalf("routed commit %d: %v", i, st)
		}
	}
	close(stop)
	wg.Wait()

	stats := r.Stats()
	if stats.ReplicaBegins == 0 {
		t.Fatalf("no reads reached the replicas: %+v", stats)
	}
	served := 0
	for i, b := range backs {
		b.mu.Lock()
		serial, unsafeN := b.serial, b.unsafeN
		b.mu.Unlock()
		served += serial
		if unsafeN != 0 {
			t.Fatalf("replica %d served %d of %d serializable reads off a non-safe snapshot", i, unsafeN, serial)
		}
	}
	if served == 0 {
		t.Fatal("no serializable reads were served by replica backends")
	}
}
