package s2pl

import (
	"errors"
	"testing"
	"time"

	"pgssi/internal/core"
)

func target(key string) core.Target { return core.TupleTarget("t", 0, key) }

func TestCompatibilityMatrix(t *testing.T) {
	cases := []struct {
		a, b Mode
		ok   bool
	}{
		{ModeIS, ModeIS, true}, {ModeIS, ModeIX, true}, {ModeIS, ModeS, true},
		{ModeIS, ModeSIX, true}, {ModeIS, ModeX, false},
		{ModeIX, ModeIX, true}, {ModeIX, ModeS, false}, {ModeIX, ModeSIX, false},
		{ModeIX, ModeX, false},
		{ModeS, ModeS, true}, {ModeS, ModeSIX, false}, {ModeS, ModeX, false},
		{ModeSIX, ModeSIX, false}, {ModeSIX, ModeX, false},
		{ModeX, ModeX, false},
	}
	for _, c := range cases {
		if got := compatible(c.a, c.b); got != c.ok {
			t.Errorf("compatible(%v,%v) = %v, want %v", c.a, c.b, got, c.ok)
		}
		if got := compatible(c.b, c.a); got != c.ok {
			t.Errorf("compatible(%v,%v) = %v, want %v (symmetry)", c.b, c.a, got, c.ok)
		}
	}
}

func TestCombineUpgrades(t *testing.T) {
	if combine(ModeS, ModeIX) != ModeSIX {
		t.Fatal("S + IX must be SIX")
	}
	if combine(ModeIS, ModeX) != ModeX {
		t.Fatal("IS + X must be X")
	}
	if !covers(ModeX, ModeS) || covers(ModeS, ModeX) {
		t.Fatal("covers must be asymmetric for S/X")
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, target("a"), ModeS); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, target("a"), ModeS); err != nil {
		t.Fatal(err)
	}
	if m.LockCount() != 2 {
		t.Fatalf("lock count = %d", m.LockCount())
	}
}

func TestExclusiveBlocksUntilRelease(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, target("a"), ModeS); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- m.Acquire(2, target("a"), ModeX) }()
	select {
	case err := <-acquired:
		t.Fatalf("X lock must block while S held, got %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken on release")
	}
	m.ReleaseAll(2)
}

func TestUpgradeDeadlockDetected(t *testing.T) {
	// Classic S→X upgrade deadlock: both hold S, both want X.
	m := NewManager()
	if err := m.Acquire(1, target("a"), ModeS); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, target("a"), ModeS); err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 2)
	go func() { res <- m.Acquire(1, target("a"), ModeX) }()
	time.Sleep(20 * time.Millisecond)
	go func() { res <- m.Acquire(2, target("a"), ModeX) }()
	first := <-res
	if !errors.Is(first, ErrDeadlock) {
		t.Fatalf("expected a deadlock victim first, got %v", first)
	}
	// The victim aborts and releases; the survivor then acquires. We
	// don't know which transaction was the victim, so release both S
	// locks — the survivor re-blocks only on locks that exist.
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if err := <-res; err != nil {
		t.Fatalf("survivor should acquire after victim release: %v", err)
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
}

func TestIntentionLocksAllowDisjointWriters(t *testing.T) {
	m := NewManager()
	rel := core.RelationTarget("t")
	if err := m.Acquire(1, rel, ModeIX); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, rel, ModeIX); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, target("a"), ModeX); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, target("b"), ModeX); err != nil {
		t.Fatal(err)
	}
	// But a relation S lock conflicts with the IX holders.
	blocked := make(chan error, 1)
	go func() { blocked <- m.Acquire(3, rel, ModeS) }()
	select {
	case err := <-blocked:
		t.Fatalf("relation S must wait for IX holders, got %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
}

func TestPageSplitCopiesHolders(t *testing.T) {
	m := NewManager()
	left := core.PageTarget("idx", 1)
	right := core.PageTarget("idx", 2)
	if err := m.Acquire(1, left, ModeS); err != nil {
		t.Fatal(err)
	}
	m.PageSplit("idx", left, right)
	if m.HeldMode(1, right) != ModeS {
		t.Fatalf("split must copy S lock, got %v", m.HeldMode(1, right))
	}
}

func TestReacquireIsIdempotent(t *testing.T) {
	m := NewManager()
	for i := 0; i < 5; i++ {
		if err := m.Acquire(1, target("a"), ModeS); err != nil {
			t.Fatal(err)
		}
	}
	if m.LockCount() != 1 {
		t.Fatalf("lock count = %d, want 1", m.LockCount())
	}
	st := m.Stats()
	if st.Acquired != 1 {
		t.Fatalf("acquired = %d, want 1", st.Acquired)
	}
}
