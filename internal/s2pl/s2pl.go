// Package s2pl implements the strict two-phase locking baseline used in
// the paper's evaluation (§8): a heavyweight lock manager with classic
// multigranularity modes (IS, IX, S, SIX, X) over the same relation /
// page / tuple targets as the SSI lock manager, blocking lock waits, and
// waits-for deadlock detection.
//
// The paper's S2PL implementation "reuses our SSI lock manager's support
// for index-range and multigranularity locking; rather than acquiring
// SIREAD locks, it instead acquires 'classic' read locks in the
// heavyweight lock manager, as well as the appropriate intention locks."
// This package is that heavyweight lock manager; the engine drives it
// with the same read/write footprints it feeds the SSI layer.
package s2pl

import (
	"fmt"
	"sync"

	"pgssi/internal/core"
	"pgssi/internal/mvcc"
	"pgssi/internal/waitgraph"
)

// Mode is a multigranularity lock mode.
type Mode int8

// Lock modes in increasing strength order (for reporting only; actual
// semantics come from the compatibility matrix).
const (
	ModeNone Mode = iota
	ModeIS        // intention shared
	ModeIX        // intention exclusive
	ModeS         // shared
	ModeSIX       // shared + intention exclusive
	ModeX         // exclusive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeIS:
		return "IS"
	case ModeIX:
		return "IX"
	case ModeS:
		return "S"
	case ModeSIX:
		return "SIX"
	case ModeX:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int8(m))
	}
}

// compatible reports whether two modes held by different transactions can
// coexist on one target (the standard Gray et al. matrix).
func compatible(a, b Mode) bool {
	switch a {
	case ModeNone:
		return true
	case ModeIS:
		return b != ModeX
	case ModeIX:
		return b == ModeNone || b == ModeIS || b == ModeIX
	case ModeS:
		return b == ModeNone || b == ModeIS || b == ModeS
	case ModeSIX:
		return b == ModeNone || b == ModeIS
	case ModeX:
		return b == ModeNone
	default:
		return false
	}
}

// combine returns the weakest single mode that grants both a and b to one
// holder (lock conversion / upgrade).
func combine(a, b Mode) Mode {
	if a == b {
		return a
	}
	if a > b {
		a, b = b, a
	}
	switch {
	case a == ModeNone:
		return b
	case a == ModeIS:
		return b
	case a == ModeIX && b == ModeS:
		return ModeSIX
	case a == ModeIX && b == ModeSIX:
		return ModeSIX
	case a == ModeIX && b == ModeX:
		return ModeX
	case a == ModeS && b == ModeSIX:
		return ModeSIX
	case a == ModeS && b == ModeX:
		return ModeX
	case a == ModeSIX && b == ModeX:
		return ModeX
	default:
		return ModeX
	}
}

// covers reports whether holding a implies the rights of b.
func covers(a, b Mode) bool {
	return combine(a, b) == a
}

// ErrDeadlock is returned to a lock requester chosen as a deadlock
// victim. It aliases waitgraph.ErrDeadlock.
var ErrDeadlock = waitgraph.ErrDeadlock

type entry struct {
	holders map[mvcc.TxID]Mode
}

// Stats are cumulative lock-manager counters.
type Stats struct {
	Acquired  int64
	Waits     int64
	Deadlocks int64
}

// Manager is the heavyweight lock manager. A single mutex plus a single
// broadcast condition variable serialize the lock table; waiters re-check
// after every release.
type Manager struct {
	mu    sync.Mutex //ssi:lock level=10 name=s2pl.table
	cond  *sync.Cond
	locks map[core.Target]*entry
	held  map[mvcc.TxID]map[core.Target]Mode
	wg    *waitgraph.Graph
	stats Stats
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	m := &Manager{
		locks: make(map[core.Target]*entry),
		held:  make(map[mvcc.TxID]map[core.Target]Mode),
		wg:    waitgraph.New(),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Acquire takes (or upgrades to) mode on target for xid, blocking until
// compatible. If blocking would deadlock, the request fails with
// ErrDeadlock and the caller must abort the transaction; held locks stay
// held until ReleaseAll, per strict two-phase locking.
func (m *Manager) Acquire(xid mvcc.TxID, target core.Target, mode Mode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		e := m.locks[target]
		if e == nil {
			e = &entry{holders: make(map[mvcc.TxID]Mode)}
			m.locks[target] = e
		}
		held := e.holders[xid]
		if covers(held, mode) {
			return nil
		}
		want := combine(held, mode)
		var blockers []mvcc.TxID
		for h, hm := range e.holders {
			if h != xid && !compatible(want, hm) {
				blockers = append(blockers, h)
			}
		}
		if len(blockers) == 0 {
			e.holders[xid] = want
			hm := m.held[xid]
			if hm == nil {
				hm = make(map[core.Target]Mode)
				m.held[xid] = hm
			}
			hm[target] = want
			m.stats.Acquired++
			return nil
		}
		m.stats.Waits++
		if err := m.wg.Wait(xid, blockers...); err != nil {
			m.stats.Deadlocks++
			m.wg.Done(xid)
			return err
		}
		m.cond.Wait()
		m.wg.Done(xid)
	}
}

// ReleaseAll drops every lock held by xid and wakes waiters. Called at
// commit or abort (strict 2PL releases nothing earlier).
func (m *Manager) ReleaseAll(xid mvcc.TxID) {
	m.mu.Lock()
	for target := range m.held[xid] {
		if e := m.locks[target]; e != nil {
			delete(e.holders, xid)
			if len(e.holders) == 0 {
				delete(m.locks, target)
			}
		}
	}
	delete(m.held, xid)
	m.mu.Unlock()
	m.wg.Done(xid)
	m.cond.Broadcast()
}

// PageSplit copies every holder's lock mode from the left page target to
// the right one after an index leaf split, so readers' shared page locks
// keep covering entries (and gaps) that moved to the new page. The SSI
// lock manager does the same for SIREAD locks.
func (m *Manager) PageSplit(rel string, left, right core.Target) {
	m.mu.Lock()
	defer m.mu.Unlock()
	le := m.locks[left]
	if le == nil || len(le.holders) == 0 {
		return
	}
	re := m.locks[right]
	if re == nil {
		re = &entry{holders: make(map[mvcc.TxID]Mode)}
		m.locks[right] = re
	}
	for h, hm := range le.holders {
		re.holders[h] = combine(re.holders[h], hm)
		if held := m.held[h]; held != nil {
			held[right] = re.holders[h]
		}
	}
}

// HeldMode returns the mode xid holds on target (ModeNone if none).
func (m *Manager) HeldMode(xid mvcc.TxID, target core.Target) Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.held[xid][target]
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// LockCount returns the number of (target, holder) pairs currently held.
func (m *Manager) LockCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, hm := range m.held {
		n += len(hm)
	}
	return n
}
