// Package lint is ssilint: a suite of static analyzers that
// machine-check the engine's concurrency and resource invariants. The
// multi-level lock order that nine PRs of lock decomposition encoded as
// prose (internal/core/partition.go, internal/storage/latch.go,
// internal/mvcc/mvcc.go, db.go) is read from lightweight //ssi:lock
// annotations and enforced as build-failing diagnostics; the
// constructor-leak bug class fixed twice in PR 9 (an error path
// returning after the resource is live without closing it) and
// non-exhaustive switches over wire-stable enums are checked the same
// way. See docs/invariants.md for the annotation syntax, the canonical
// lock-level table, and how to run the suite.
//
// The package deliberately depends only on the standard library: the
// build environment pins no golang.org/x/tools version, so the
// go/analysis-shaped core (Analyzer, Pass, Diagnostic), the
// `go vet -vettool` unitchecker protocol (cmd/ssilint), and the
// analysistest-style golden harness (linttest) are implemented here
// directly on go/ast and go/types.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one analysis and how to run it. It is the
// stdlib-only analogue of golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package and
// collects its diagnostics. Report applies //ssi:ignore suppression
// before recording anything.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags   *[]Diagnostic
	ignores ignoreIndex
}

// A Diagnostic is one reported problem.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos unless an //ssi:ignore comment
// suppresses it (same line or the line above, matching this analyzer).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.suppresses(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full ssilint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{LockOrder, MustClose, StatusSwitch}
}

// Run runs the given analyzers over one type-checked package and
// returns the surviving (unsuppressed) diagnostics sorted by position.
// Malformed //ssi: annotations are reported as diagnostics themselves,
// so a typo'd level or a reasonless ignore fails the build rather than
// silently weakening the check.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	ignores, annotErrs := buildIgnoreIndex(fset, files)
	diags = append(diags, annotErrs...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
			ignores:   ignores,
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers need
// populated, for callers that type-check packages themselves.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
