package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// ssilint's annotations are ordinary line comments with an "ssi:"
// machine prefix, in the style of go:build / go:generate directives:
//
//	//ssi:lock level=N name=pkg.lockName [multi=under:pkg.outerName]
//	    on a mutex struct field, a (package-level or local) mutex var,
//	    or a function returning a mutex — declares the lock's position
//	    in the engine-wide acquisition order. Levels ascend from
//	    outermost to innermost: a goroutine may only acquire a lock
//	    whose level is strictly greater than every annotated lock it
//	    already holds. multi=under:<name> permits holding several
//	    locks of this one class at once, but only while the named
//	    outer lock is held (the Xact.edgeMu rule from
//	    internal/core/partition.go).
//
//	//ssi:holds pkg.lockName [pkg.lockName...]
//	    on a function declaration — declares the precondition that
//	    callers hold the named locks (the *Locked naming convention,
//	    machine-readable). The body is checked with those locks in the
//	    held set. The precondition itself is trusted, not enforced at
//	    call sites: enforcing it would require annotating every
//	    function on every path to each acquisition.
//
//	//ssi:enum
//	    on a type declaration — declares the type's package-level
//	    constants a closed enum; switches over it must carry a default
//	    arm or cover every member.
//
//	//ssi:ignore reason=<justification> [check=name1,name2]
//	    on (or on the line above) a flagged line — suppresses the
//	    diagnostic. The reason is mandatory; a reasonless ignore is
//	    itself a diagnostic.
//
// The canonical lock-level table and the full syntax live in
// docs/invariants.md.

const (
	directivePrefix = "//ssi:"
	ignoreDirective = "//ssi:ignore"
	lockDirective   = "//ssi:lock"
	enumDirective   = "//ssi:enum"
)

// directiveErrAnalyzer names the pseudo-analyzer that malformed
// directives are reported under.
const directiveErrAnalyzer = "ssidirective"

// lockAnnotation is one parsed //ssi:lock directive.
type lockAnnotation struct {
	Level int
	Name  string
	// MultiUnder, if non-empty, names the outer lock under which
	// several locks of this class may be held at once.
	MultiUnder string
}

// parseKeyVals splits "key=val key=val ..." with the convention that a
// reason= value swallows the rest of the line (justifications are
// prose).
func parseKeyVals(s string) map[string]string {
	out := make(map[string]string)
	if i := strings.Index(s, "reason="); i >= 0 {
		out["reason"] = strings.TrimSpace(s[i+len("reason="):])
		s = s[:i]
	}
	for _, f := range strings.Fields(s) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			out[k] = ""
			continue
		}
		out[k] = v
	}
	return out
}

// parseLockAnnotation parses the text after //ssi:lock. It returns a
// human-readable problem description instead of an annotation when the
// directive is malformed.
func parseLockAnnotation(args string) (lockAnnotation, string) {
	kv := parseKeyVals(args)
	var a lockAnnotation
	lvl, ok := kv["level"]
	if !ok {
		return a, "ssi:lock is missing level=N"
	}
	n, err := strconv.Atoi(lvl)
	if err != nil {
		return a, "ssi:lock level is not an integer: " + lvl
	}
	a.Level = n
	a.Name, ok = kv["name"]
	if !ok || a.Name == "" {
		return a, "ssi:lock is missing name=..."
	}
	if m, ok := kv["multi"]; ok {
		under, found := strings.CutPrefix(m, "under:")
		if !found || under == "" {
			return a, "ssi:lock multi= must be multi=under:<lockname>"
		}
		a.MultiUnder = under
	}
	for k := range kv {
		switch k {
		case "level", "name", "multi":
		default:
			return a, "ssi:lock has unknown key " + k
		}
	}
	return a, ""
}

// ignoreEntry is one parsed //ssi:ignore directive.
type ignoreEntry struct {
	reason string
	checks map[string]bool // nil = all analyzers
}

// ignoreIndex maps filename -> line -> suppressions on that line.
type ignoreIndex map[string]map[int][]ignoreEntry

// suppresses reports whether a diagnostic from the named analyzer at
// position pos is covered by an ignore on the same line or the line
// directly above it.
func (ix ignoreIndex) suppresses(pos token.Position, analyzer string) bool {
	lines := ix[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, e := range lines[line] {
			if e.checks == nil || e.checks[analyzer] {
				return true
			}
		}
	}
	return false
}

// buildIgnoreIndex scans every comment for //ssi: directives, indexes
// the ignores, and reports malformed or unknown directives. //ssi:lock
// and //ssi:enum are validated where they are consumed (lockorder,
// statusswitch); unknown kinds are flagged here so a typo'd directive
// cannot silently check nothing.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) (ignoreIndex, []Diagnostic) {
	ix := make(ignoreIndex)
	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{
			Analyzer: directiveErrAnalyzer,
			Pos:      fset.Position(pos),
			Message:  msg,
		})
	}
	forEachDirective(files, func(c *ast.Comment, kind, args string) {
		switch kind {
		case "ignore":
			kv := parseKeyVals(args)
			e := ignoreEntry{reason: kv["reason"]}
			if e.reason == "" {
				report(c.Pos(), "ssi:ignore requires a justification: reason=...")
				return
			}
			if checks, ok := kv["check"]; ok {
				e.checks = make(map[string]bool)
				for _, name := range strings.Split(checks, ",") {
					e.checks[name] = true
				}
			}
			pos := fset.Position(c.Pos())
			lines := ix[pos.Filename]
			if lines == nil {
				lines = make(map[int][]ignoreEntry)
				ix[pos.Filename] = lines
			}
			lines[pos.Line] = append(lines[pos.Line], e)
		case "lock", "enum", "holds":
			// Validated by their consumers.
		default:
			report(c.Pos(), "unknown ssi: directive //ssi:"+kind)
		}
	})
	return ix, diags
}

// forEachDirective calls fn for every //ssi: comment in files with the
// directive kind ("lock", "enum", "ignore", ...) and its argument text.
func forEachDirective(files []*ast.File, fn func(c *ast.Comment, kind, args string)) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				kind, args, _ := strings.Cut(rest, " ")
				fn(c, kind, strings.TrimSpace(args))
			}
		}
	}
}

// directiveOnLine returns the args of the first directive of the given
// kind whose comment starts on line (used to attach annotations written
// as trailing comments to the declaration they follow). found reports
// whether one exists.
type lineDirectives map[string]map[int]string // filename -> line -> args

// collectLineDirectives indexes every directive of the given kind by
// the line its comment starts on.
func collectLineDirectives(fset *token.FileSet, files []*ast.File, kind string) lineDirectives {
	out := make(lineDirectives)
	forEachDirective(files, func(c *ast.Comment, k, args string) {
		if k != kind {
			return
		}
		pos := fset.Position(c.Pos())
		lines := out[pos.Filename]
		if lines == nil {
			lines = make(map[int]string)
			out[pos.Filename] = lines
		}
		lines[pos.Line] = args
	})
	return out
}

// at returns the directive args on the given file line.
func (ld lineDirectives) at(pos token.Position) (string, bool) {
	args, ok := ld[pos.Filename][pos.Line]
	return args, ok
}
