// Package lockorder is the golden corpus for the lockorder analyzer.
// Every want comment pins a diagnostic the analyzer must produce; the
// un-annotated shapes pin what it must stay silent on. The lock
// hierarchy mirrors the engine's: ssi (outermost, the Manager.mu
// analogue), txn, then partition (innermost), plus an edge class with
// the multi=under rule and a latch class behind a getter.
package lockorder

import "sync"

type engine struct {
	ssi       sync.Mutex   //ssi:lock level=10 name=fix.ssi
	txn       sync.Mutex   //ssi:lock level=20 name=fix.txn
	partition sync.RWMutex //ssi:lock level=30 name=fix.partition
	edge      sync.Mutex   //ssi:lock level=20 name=fix.edge multi=under:fix.ssi
	plain     sync.Mutex   // unannotated: invisible to the analyzer
}

// orderedOK walks the hierarchy outermost to innermost: silent.
func orderedOK(e *engine) {
	e.ssi.Lock()
	e.txn.Lock()
	e.partition.RLock()
	e.partition.RUnlock()
	e.txn.Unlock()
	e.ssi.Unlock()
}

// ssiAfterPartition is the Manager.mu-after-partition inversion: the
// innermost lock is held when the outermost is acquired.
func ssiAfterPartition(e *engine) {
	e.partition.RLock()
	e.ssi.Lock() // want `acquires fix\.ssi \(level 10\) while holding fix\.partition \(level 30\)`
	e.ssi.Unlock()
	e.partition.RUnlock()
}

func reacquire(e *engine) {
	e.txn.Lock()
	e.txn.Lock() // want `re-acquires fix\.txn \(level 20\) already held`
	e.txn.Unlock()
	e.txn.Unlock()
}

// sameLevel holds two distinct level-20 classes at once.
func sameLevel(e, f *engine) {
	e.txn.Lock()
	f.edge.Lock() // want `acquires fix\.edge while holding same-level fix\.txn \(level 20\)`
	f.edge.Unlock()
	e.txn.Unlock()
}

// multiUnderOK holds two edge locks under the sanctioning outer lock:
// silent (the several-edge-locks-under-Manager.mu rule).
func multiUnderOK(e, x, y *engine) {
	e.ssi.Lock()
	x.edge.Lock()
	y.edge.Lock()
	y.edge.Unlock()
	x.edge.Unlock()
	e.ssi.Unlock()
}

// multiUnderViolation holds a second edge lock WITHOUT the outer lock —
// the conflict-free fast path's one-edge-lock rule.
func multiUnderViolation(x, y *engine) {
	x.edge.Lock()
	y.edge.Lock() // want `acquires a second fix\.edge \(level 20\) without holding fix\.ssi`
	y.edge.Unlock()
	x.edge.Unlock()
}

// acquiresSSI exists to be called while a later-level lock is held.
func acquiresSSI(e *engine) {
	e.ssi.Lock()
	e.ssi.Unlock()
}

// interproc violates the order through a package-local call: the callee
// transitively acquires the outermost lock.
func interproc(e *engine) {
	e.txn.Lock()
	defer e.txn.Unlock()
	acquiresSSI(e) // want `call to acquiresSSI acquires fix\.ssi \(level 10\) while holding fix\.txn`
}

// tryReverse try-acquires out of order: silent, a try cannot deadlock
// (the storage latch-under-shard-mutex pattern). What is acquired under
// the successful try is still checked against it.
func tryReverse(e *engine) {
	e.txn.Lock()
	if e.ssi.TryLock() {
		e.partition.RLock()
		e.partition.RUnlock()
		e.ssi.Unlock()
	}
	e.txn.Unlock()
}

// tryHoldChecked shows a successful try entering the held set: the
// blocking acquisition under it is checked and flagged.
func tryHoldChecked(e, f *engine) {
	if e.txn.TryLock() {
		f.ssi.Lock() // want `acquires fix\.ssi \(level 10\) while holding fix\.txn`
		f.ssi.Unlock()
		e.txn.Unlock()
	}
}

// tryNegated: the negated-condition early-return shape holds the lock
// on the fallthrough path. Silent.
func tryNegated(e *engine) {
	if !e.ssi.TryLock() {
		return
	}
	e.txn.Lock()
	e.txn.Unlock()
	e.ssi.Unlock()
}

// underSSILocked declares the caller-holds precondition; the body is
// checked with fix.ssi held, so the inner acquisition is fine.
//
//ssi:holds fix.ssi
func underSSILocked(e *engine) {
	e.txn.Lock()
	e.txn.Unlock()
}

// underTxnLocked declares fix.txn held, so acquiring the outermost lock
// is an inversion even though this body acquires nothing else.
//
//ssi:holds fix.txn
func underTxnLocked(e *engine) {
	e.ssi.Lock() // want `acquires fix\.ssi \(level 10\) while holding fix\.txn`
	e.ssi.Unlock()
}

// A holds precondition naming an undeclared class is itself flagged.
//
// want+2 `ssi:holds names fix\.nosuch, which no ssi:lock annotation`
//
//ssi:holds fix.nosuch
func holdsTypo() {}

// goroutineIndependent: the spawned goroutine starts with nothing held.
// Silent.
func goroutineIndependent(e *engine) {
	e.txn.Lock()
	go func() {
		e.ssi.Lock()
		e.ssi.Unlock()
	}()
	e.txn.Unlock()
}

// deferKeepsHeld: a deferred Unlock means the lock stays held to the
// end of the function, so the later acquisition is still an inversion.
func deferKeepsHeld(e *engine) {
	e.txn.Lock()
	defer e.txn.Unlock()
	e.ssi.Lock() // want `acquires fix\.ssi \(level 10\) while holding fix\.txn`
	e.ssi.Unlock()
}

// branchMerge: a lock held on only one branch is not held after the
// merge. Silent.
func branchMerge(e *engine, c bool) {
	if c {
		e.txn.Lock()
		e.txn.Unlock()
	}
	e.ssi.Lock()
	e.ssi.Unlock()
}

// unannotatedInvisible: the plain mutex imposes no ordering. Silent.
func unannotatedInvisible(e *engine) {
	e.plain.Lock()
	e.ssi.Lock()
	e.ssi.Unlock()
	e.plain.Unlock()
}

// suppressed: a justified ignore silences the inversion, on the same
// line or the line above.
func suppressed(e *engine) {
	e.txn.Lock()
	e.ssi.Lock() //ssi:ignore reason=fixture: demonstrating a justified same-line suppression
	e.ssi.Unlock()
	//ssi:ignore reason=fixture: demonstrating the line-above form
	e.ssi.Lock()
	e.ssi.Unlock()
	e.txn.Unlock()
}

// wrongCheckIgnored: an ignore scoped to another analyzer does not
// suppress lockorder.
//
// want+3 `acquires fix\.ssi \(level 10\) while holding fix\.txn`
func wrongCheckIgnored(e *engine) {
	e.txn.Lock()
	e.ssi.Lock() //ssi:ignore check=mustclose reason=fixture: scoped to the wrong analyzer
	e.ssi.Unlock()
	e.txn.Unlock()
}

// reasonlessIgnore: an ignore without a justification is itself a
// diagnostic (and suppresses nothing).
//
// want+2 `ssi:ignore requires a justification`
func reasonlessIgnore(e *engine) {
	e.ssi.Lock() //ssi:ignore
	e.ssi.Unlock()
}

// A typo'd directive kind cannot silently check nothing.
//
// want+2 `unknown ssi: directive //ssi:frobnicate`
//
//ssi:frobnicate
func typoDirective() {}

// latchTable mirrors storage's getter-shaped latch access: both the
// slice and the getter carry the annotation, and a local alias of the
// getter's result resolves to the same class.
type latchTable struct {
	latches []sync.RWMutex //ssi:lock level=30 name=fix.latch
}

//ssi:lock level=30 name=fix.latch
func (lt *latchTable) latch(i int) *sync.RWMutex { return &lt.latches[i] }

func aliasGetter(lt *latchTable, e *engine) {
	l := lt.latch(0)
	l.RLock()
	e.txn.Lock() // want `acquires fix\.txn \(level 20\) while holding fix\.latch \(level 30\)`
	e.txn.Unlock()
	l.RUnlock()
}
