// Package mustclose is the golden corpus for the mustclose analyzer:
// the PR 9 OpenDir leak shape must be flagged, and the standard
// cleanup/handoff shapes must stay silent.
package mustclose

import (
	"errors"
	"os"
)

var errBad = errors.New("bad")

type dir struct{ f *os.File }

func (d *dir) Close() error { return d.f.Close() }

// OpenDir is the PR 9 leak: the file is live once its birth error has
// been checked, a later step fails, and the early return abandons it.
// Note f.Stat() is a method call on the tracked resource — that is
// exactly what a constructor does to something it still owns, not an
// ownership transfer.
func OpenDir(name string) (*dir, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	if _, err := f.Stat(); err != nil {
		return nil, err // want `return without closing f \(constructed at`
	}
	return &dir{f: f}, nil
}

// openChecked closes on the failure path: silent.
func openChecked(name string) (*dir, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	if _, err := f.Stat(); err != nil {
		f.Close()
		return nil, err
	}
	return &dir{f: f}, nil
}

// deferProtected installs the usual guarded-cleanup defer: silent.
func deferProtected(name string) (*dir, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			f.Close()
		}
	}()
	if _, err := f.Stat(); err != nil {
		return nil, err
	}
	ok = true
	return &dir{f: f}, nil
}

// handoff returns the resource: the caller owns it. Silent.
func handoff(name string) (*os.File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// methodUse flags the leak even though the resource's methods and
// fields were used in between (receiver use keeps ownership).
func methodUse(name string) (*os.File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	if f.Name() == "" {
		return nil, errBad // want `return without closing f`
	}
	return f, nil
}

func register(f *os.File) {}

// registered passes the resource to a call: ownership has (at least
// potentially) moved, so the later return is silent.
func registered(name string) (*os.File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	register(f)
	if name == "" {
		return nil, errBad
	}
	return f, nil
}

// compositeNotTracked: a bare composite literal holds no external
// resources at birth (the DurableLog shape) and is not tracked. Silent.
func compositeNotTracked(f *os.File) (*dir, error) {
	d := &dir{f: f}
	if f == nil {
		return nil, errBad
	}
	return d, nil
}

// probe is not a candidate (no Close()-bearing result): constructor
// calls inside it are nobody's leak here. Silent.
func probe(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// suppressedLeak carries a justified ignore on the flagged return.
func suppressedLeak(name string) (*os.File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	if name == "" {
		return nil, errBad //ssi:ignore reason=fixture: contrived shape closed elsewhere
	}
	return f, nil
}
