// Package statusswitch is the golden corpus for the statusswitch
// analyzer, using a locally //ssi:enum-annotated type.
package statusswitch

//ssi:enum
type Status uint8

const (
	StatusOK Status = iota
	StatusNotFound
	StatusBusy
)

// nonExhaustive misses a member and has no default.
func nonExhaustive(s Status) int {
	switch s { // want `switch over Status has no default and is not exhaustive: missing StatusBusy`
	case StatusOK:
		return 0
	case StatusNotFound:
		return 1
	}
	return 2
}

// exhaustive covers every member: silent without a default.
func exhaustive(s Status) int {
	switch s {
	case StatusOK:
		return 0
	case StatusNotFound:
		return 1
	case StatusBusy:
		return 2
	}
	return 3
}

// defaulted has a default arm: silent regardless of coverage.
func defaulted(s Status) int {
	switch s {
	case StatusOK:
		return 0
	default:
		return 1
	}
}

// plainInt switches over an unannotated type: silent.
func plainInt(n int) int {
	switch n {
	case 0:
		return 0
	case 1:
		return 1
	}
	return 2
}

// suppressed carries a justified ignore on the line above the switch.
func suppressed(s Status) int {
	//ssi:ignore reason=fixture: legacy switch predating StatusBusy
	switch s {
	case StatusOK:
		return 0
	case StatusNotFound:
		return 1
	}
	return 2
}
