// Package wireuse switches non-exhaustively over an enum imported from
// another fixture package. The diagnostic below only fires when the
// golden test registers fix/wireop.Op in lint.DefaultEnums — proving
// cross-package member enumeration via export data, the mechanism that
// checks switches over pgssi.Status and wire.Op engine-wide.
package wireuse

import "fix/wireop"

func route(op wireop.Op) int {
	switch op { // want `switch over Op has no default and is not exhaustive: missing OpC`
	case wireop.OpA:
		return 1
	case wireop.OpB:
		return 2
	}
	return 0
}
