// Package wireop declares a closed enum WITHOUT an //ssi:enum
// directive: directives are comments and do not cross package
// boundaries, so switches over this type in other packages are only
// checked when the type is registered in lint.DefaultEnums (as the real
// pgssi.Status and wire.Op are). The wireuse fixture plus the
// DefaultEnums golden test prove that registration enumerates the
// members through export data alone.
package wireop

type Op uint8

const (
	OpA Op = iota + 1
	OpB
	OpC
)
