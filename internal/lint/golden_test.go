package lint_test

import (
	"testing"

	"pgssi/internal/lint"
	"pgssi/internal/lint/linttest"
	"pgssi/internal/lint/load"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata", "./lockorder", lint.LockOrder)
}

func TestMustClose(t *testing.T) {
	linttest.Run(t, "testdata", "./mustclose", lint.MustClose)
}

func TestStatusSwitch(t *testing.T) {
	linttest.Run(t, "testdata", "./statusswitch", lint.StatusSwitch)
}

// TestDefaultEnumAcrossPackages proves that a DefaultEnums-registered
// enum is checked in importing packages through export data alone —
// the mechanism behind the engine-wide pgssi.Status / wire.Op checks.
func TestDefaultEnumAcrossPackages(t *testing.T) {
	const key = "fix/wireop.Op"
	lint.DefaultEnums[key] = true
	defer delete(lint.DefaultEnums, key)
	linttest.Run(t, "testdata", "./wireuse", lint.StatusSwitch)
}

// TestRepoClean runs the full suite over the engine itself: the tree's
// non-test files must produce zero unsuppressed diagnostics. CI's
// `go vet -vettool` run additionally covers the _test.go variants.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	pkgs, err := load.Packages("../..", "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	for _, p := range pkgs {
		diags, err := lint.Run(lint.Analyzers(), p.Fset, p.Files, p.Types, p.Info)
		if err != nil {
			t.Fatalf("%s: %v", p.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
