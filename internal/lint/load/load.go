// Package load type-checks the packages named by go list patterns
// using only the standard library: package and dependency metadata come
// from `go list -deps -export -json`, dependencies are imported from
// the compiler's export data, and the target packages themselves are
// parsed and type-checked from source (analyzers need syntax and
// comments, which export data does not carry).
//
// This is the standalone path used by `go run ./cmd/ssilint ./...` and
// by the golden-corpus tests; under `go vet -vettool` the equivalent
// inputs arrive pre-computed in the vet config file instead
// (cmd/ssilint).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"pgssi/internal/lint"
)

// A Package is one type-checked target package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output we consume.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Packages loads and type-checks the packages matching patterns in dir
// (the module to analyze; "" means the current directory).
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			cp := p
			targets = append(targets, &cp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, runtime.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", t.ImportPath)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := lint.NewTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: t.ImportPath,
			Dir:     t.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}
