// Package linttest is the golden-corpus harness for the ssilint
// analyzers, in the style of golang.org/x/tools' analysistest (which
// the build deliberately does not depend on): fixture packages under
// internal/lint/testdata declare the diagnostics they must produce
// with // want comments, and Run compares both ways.
//
//	e.inner.Lock() // want `re-acquires fix\.inner`
//
// A want comment holds one or more back- or double-quoted regular
// expressions, each of which must match a distinct "analyzer: message"
// diagnostic on the comment's line. The want+N form pins the
// diagnostic N lines below the comment instead — for diagnostics that
// land on a line already consumed by an //ssi: directive comment,
// where no second comment fits. Diagnostics with no matching want and
// wants with no matching diagnostic both fail the test.
package linttest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"pgssi/internal/lint"
	"pgssi/internal/lint/load"
)

var (
	wantRe    = regexp.MustCompile(`^//\s*want(\+\d+)?\s+(.*)$`)
	wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run loads pattern from the fixture module rooted at dir, runs the
// analyzers over every matched package, and compares the diagnostics
// against the fixtures' want comments.
func Run(t *testing.T, dir, pattern string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkgs, err := load.Packages(dir, pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages match %s", pattern)
	}
	for _, p := range pkgs {
		diags, err := lint.Run(analyzers, p.Fset, p.Files, p.Types, p.Info)
		if err != nil {
			t.Fatalf("%s: %v", p.PkgPath, err)
		}
		wants := collectWants(t, p)
		for _, d := range diags {
			if !meet(wants, d) {
				t.Errorf("%s: unexpected diagnostic: %s: %s", d.Pos, d.Analyzer, d.Message)
			}
		}
		for _, w := range wants {
			if !w.met {
				t.Errorf("%s:%d: no diagnostic matching %s", w.file, w.line, w.raw)
			}
		}
	}
}

// collectWants parses every want comment in the package's files.
func collectWants(t *testing.T, p *load.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					n, err := strconv.Atoi(m[1][1:])
					if err != nil {
						t.Fatalf("%s: bad want offset %q", pos, m[1])
					}
					line += n
				}
				args := wantArgRe.FindAllString(m[2], -1)
				if len(args) == 0 {
					t.Fatalf("%s: want comment has no quoted pattern: %s", pos, c.Text)
				}
				for _, a := range args {
					pat, err := unquote(a)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, a, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", pos, a, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: line, re: re, raw: a})
				}
			}
		}
	}
	return out
}

func unquote(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		return strings.Trim(s, "`"), nil
	}
	return strconv.Unquote(s)
}

// meet marks the first unmet expectation on the diagnostic's line whose
// pattern matches, and reports whether one was found.
func meet(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.met || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Analyzer + ": " + d.Message) {
			w.met = true
			return true
		}
	}
	return false
}
