package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// StatusSwitch flags non-exhaustive switch statements over the
// engine's closed enums — pgssi.Status and the wire opcodes, whose
// numeric values are wire-stable and mirrored in docs/protocol.md — so
// adding a status or opcode without updating every switch (or giving it
// a default arm) fails the build instead of silently misrouting.
//
// A type is a checked enum if its declaration carries //ssi:enum (seen
// when its own package is analyzed) or its qualified name is listed in
// DefaultEnums (which lets switches in OTHER packages over an enum be
// checked too: annotations are comments, and only export data crosses
// package boundaries under `go vet`). A switch over a checked enum must
// have a default clause or cover every package-level constant of the
// type.
var StatusSwitch = &Analyzer{
	Name: "statusswitch",
	Doc:  "check switches over closed enums (pgssi.Status, wire opcodes) for exhaustiveness or a default",
	Run:  runStatusSwitch,
}

// DefaultEnums lists enums checked in every package, as
// "import/path.TypeName". It mirrors the //ssi:enum annotations on the
// declarations themselves (session.go, internal/wire/wire.go).
var DefaultEnums = map[string]bool{
	"pgssi.Status":           true,
	"pgssi/internal/wire.Op": true,
}

func runStatusSwitch(pass *Pass) error {
	local := localEnums(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sw.Tag]
			if !ok {
				return true
			}
			named := namedType(tv.Type)
			if named == nil {
				return true
			}
			if !local[named.Obj()] && !DefaultEnums[qualifiedName(named)] {
				return true
			}
			checkEnumSwitch(pass, sw, named)
			return true
		})
	}
	return nil
}

// localEnums collects the //ssi:enum-annotated type declarations of
// this package.
func localEnums(pass *Pass) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	byLine := collectLineDirectives(pass.Fset, pass.Files, "enum")
	mark := func(name *ast.Ident) {
		if tn, ok := pass.TypesInfo.Defs[name].(*types.TypeName); ok {
			out[tn] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gd, ok := n.(*ast.GenDecl)
			if !ok {
				return true
			}
			declAnnotated := hasDirective(gd.Doc, "enum")
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if declAnnotated || hasDirective(ts.Doc, "enum") || hasDirective(ts.Comment, "enum") {
					mark(ts.Name)
					continue
				}
				if _, ok := byLine.at(pass.Fset.Position(ts.Pos())); ok {
					mark(ts.Name)
				}
			}
			return true
		})
	}
	return out
}

func hasDirective(g *ast.CommentGroup, kind string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if _, ok := cutDirective(c.Text, kind); ok {
			return true
		}
	}
	return false
}

func namedType(t types.Type) *types.Named {
	named, _ := t.(*types.Named)
	return named
}

func qualifiedName(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// enumMembers returns the package-level constants of the enum type,
// from its defining package's scope (available through export data for
// imported enums).
func enumMembers(named *types.Named) []*types.Const {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	var out []*types.Const
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	return out
}

func checkEnumSwitch(pass *Pass, sw *ast.SwitchStmt, named *types.Named) {
	covered := make(map[string]bool)
	for _, cl := range sw.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // has a default arm: fine
		}
		for _, e := range cc.List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	members := enumMembers(named)
	if len(members) == 0 {
		return
	}
	var missing []string
	seen := make(map[string]bool)
	for _, m := range members {
		v := m.Val().ExactString()
		if covered[v] || seen[v] {
			continue
		}
		seen[v] = true
		missing = append(missing, m.Name())
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(), "switch over %s has no default and is not exhaustive: missing %s",
		named.Obj().Name(), strings.Join(missing, ", "))
}
