package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// MustClose flags the constructor-leak bug class fixed twice in PR 9:
// a constructor/open function builds a Close()-bearing resource, a
// later step fails, and the error return abandons the live resource
// without closing it (OpenDir leaking a half-built engine; the Replica
// construction paths).
//
// The analyzer considers functions whose last result is error and whose
// other results include a Close()-bearing type. Inside them it tracks
// local variables bound to freshly-constructed resources: a call to a
// constructor-shaped function (New*/Open*/Create*/Make*/Dial*/Listen*)
// returning a Close()-bearing value. A bare &T{} composite literal is
// deliberately NOT tracked — at birth it holds no external resources
// (wal.OpenDir builds its DurableLog that way and acquires the real
// file handle much later); the resource-bearing event is the
// constructor call. A tracked
// resource stops being the function's problem when it is closed, when a
// defer mentioning it is installed (the usual cleanup shapes), when it
// escapes (stored into a field, map, or another value, or passed to a
// call — ownership moved), or when a return statement returns it (the
// caller owns it now). Any return reached while a tracked resource is
// live, unprotected, and not among the returned values is flagged.
//
// The v, err := Open(...) idiom is understood: until the paired err has
// been checked once, v is not yet considered live, so the immediate
// `if err != nil { return nil, err }` guard does not fire.
var MustClose = &Analyzer{
	Name: "mustclose",
	Doc:  "check that constructor error paths close the resources they have already built",
	Run:  runMustClose,
}

// constructorName matches callees that transfer ownership of their
// result to the caller.
var constructorName = regexp.MustCompile(`^(New|Open|Create|Make|Dial|Listen|new|open|create|make|dial|listen)`)

// hasCloseMethod reports whether T (or *T) has a Close method.
func hasCloseMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Pointer); ok {
		// Already a pointer: look up on it directly.
	} else if _, ok := t.(*types.Pointer); !ok {
		t = types.NewPointer(t)
	}
	obj, _, _ := types.LookupFieldOrMethod(t, false, nil, "Close")
	fn, ok := obj.(*types.Func)
	return ok && fn != nil
}

// closerState tracks one constructed resource variable.
type closerState struct {
	obj types.Object
	pos token.Pos // construction site
	// guard is the error object assigned in the same statement; the
	// resource only becomes live once the guard has been checked (or
	// immediately, if there is no guard).
	guard types.Object
	live  bool
}

type closerSet map[types.Object]*closerState

func (s closerSet) clone() closerSet {
	out := make(closerSet, len(s))
	for k, v := range s {
		cp := *v
		out[k] = &cp
	}
	return out
}

func runMustClose(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !mustCloseCandidate(pass, fd) {
				continue
			}
			w := &closeWalker{pass: pass}
			w.walkStmts(fd.Body.List, make(closerSet))
		}
	}
	return nil
}

// mustCloseCandidate reports whether fd is a constructor-shaped
// function: last result error, and some other result Close()-bearing.
func mustCloseCandidate(pass *Pass, fd *ast.FuncDecl) bool {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	res := sig.Results()
	if res.Len() < 2 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	if named, ok := last.(*types.Named); !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return false
	}
	for i := 0; i < res.Len()-1; i++ {
		if hasCloseMethod(res.At(i).Type()) {
			return true
		}
	}
	return false
}

type closeWalker struct {
	pass *Pass
}

func (w *closeWalker) walkStmts(stmts []ast.Stmt, set closerSet) bool {
	for _, s := range stmts {
		if w.walkStmt(s, set) {
			return true
		}
	}
	return false
}

func (w *closeWalker) walkStmt(s ast.Stmt, set closerSet) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.handleAssign(s, set)
	case *ast.ExprStmt:
		w.scanExpr(s.X, set)
	case *ast.DeferStmt:
		w.handleDefer(s, set)
	case *ast.ReturnStmt:
		w.handleReturn(s, set)
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, set)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, set)
	case *ast.IfStmt:
		return w.walkIf(s, set)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, set)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, set)
		}
		w.walkStmts(s.Body.List, set.clone())
	case *ast.RangeStmt:
		w.scanExpr(s.X, set)
		w.walkStmts(s.Body.List, set.clone())
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkCases(s, set)
	case *ast.GoStmt:
		// A goroutine given the resource owns (or at least shares) it.
		w.scanExpr(s.Call, set)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, set)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.scanExpr(s.Chan, set)
		w.scanExpr(s.Value, set)
	}
	return false
}

func (w *closeWalker) walkIf(s *ast.IfStmt, set closerSet) bool {
	if s.Init != nil {
		w.walkStmt(s.Init, set)
	}
	// If the condition checks a tracked resource's birth guard (the
	// err from v, err := Open(...)), the branches see v as not yet
	// live; after the whole if, the guard is consumed and v is live.
	guarded := w.guardsChecked(s.Cond, set)
	w.scanExpr(s.Cond, set)

	thenSet := set.clone()
	elseSet := set.clone()
	for _, st := range guarded {
		thenSet[st.obj].live = false
		elseSet[st.obj].live = false
	}
	thenTerm := w.walkStmts(s.Body.List, thenSet)
	elseTerm := false
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		elseTerm = w.walkStmts(e.List, elseSet)
	case *ast.IfStmt:
		elseTerm = w.walkStmt(e, elseSet)
	}
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		replaceCloserSet(set, elseSet)
	case elseTerm:
		replaceCloserSet(set, thenSet)
	default:
		// Keep a resource tracked if either branch still tracks it;
		// closed-on-every-path resources were deleted in both.
		merged := make(closerSet)
		for k, v := range thenSet {
			if _, ok := elseSet[k]; ok {
				merged[k] = v
			}
		}
		replaceCloserSet(set, merged)
	}
	// The guard has now been checked on the surviving path.
	for _, st := range guarded {
		if cur, ok := set[st.obj]; ok {
			cur.guard = nil
			cur.live = true
		}
	}
	return false
}

func replaceCloserSet(dst, src closerSet) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func (w *closeWalker) walkCases(s ast.Stmt, set closerSet) bool {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, set)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, set)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, set)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	allTerm := len(body.List) > 0
	for _, cl := range body.List {
		h := set.clone()
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				w.scanExpr(e, h)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				w.walkStmt(cl.Comm, h)
			}
			stmts = cl.Body
		}
		if !w.walkStmts(stmts, h) {
			allTerm = false
		}
	}
	return allTerm
}

// handleAssign starts tracking constructor results and treats stores of
// tracked resources into anything non-local as ownership transfer.
func (w *closeWalker) handleAssign(s *ast.AssignStmt, set closerSet) {
	// Any tracked resource appearing on the RHS (or indexed/selected on
	// the LHS) escapes.
	for _, r := range s.Rhs {
		w.scanExpr(r, set)
	}
	for _, l := range s.Lhs {
		if _, ok := l.(*ast.Ident); !ok {
			w.scanExpr(l, set)
		}
	}

	// Single call RHS: v, err := Open(...) / v := New(...).
	if len(s.Rhs) == 1 {
		if construct, ok := w.constructed(s.Rhs[0]); ok {
			var errObj types.Object
			if len(s.Lhs) == 2 {
				errObj = w.lhsObj(s.Lhs[1])
			}
			if obj := w.lhsObj(s.Lhs[0]); obj != nil && hasCloseMethod(obj.Type()) {
				set[obj] = &closerState{obj: obj, pos: construct, guard: errObj, live: errObj == nil}
			}
			return
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, r := range s.Rhs {
			if construct, ok := w.constructed(r); ok {
				if obj := w.lhsObj(s.Lhs[i]); obj != nil && hasCloseMethod(obj.Type()) {
					set[obj] = &closerState{obj: obj, pos: construct, live: true}
				}
			} else if obj := w.lhsObj(s.Lhs[i]); obj != nil {
				// Reassignment of a tracked variable drops the old value.
				delete(set, obj)
			}
		}
	}
}

// constructed reports whether e constructs a new owned resource, and
// returns the construction position.
func (w *closeWalker) constructed(e ast.Expr) (token.Pos, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		var name string
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if constructorName.MatchString(name) {
			return e.Pos(), true
		}
	}
	return token.NoPos, false
}

func (w *closeWalker) lhsObj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return w.pass.TypesInfo.Uses[id]
}

// handleDefer marks every tracked resource mentioned anywhere in the
// deferred call (receiver, argument, or inside a literal body) as
// protected: the standard cleanup shapes — defer v.Close(), and
// defer func() { if !ok { v.Close() } }() — all mention v.
func (w *closeWalker) handleDefer(s *ast.DeferStmt, set closerSet) {
	ast.Inspect(s.Call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := w.pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			if _, tracked := set[obj]; tracked {
				delete(set, obj)
			}
		}
		return true
	})
}

// handleReturn flags live, unreturned resources.
func (w *closeWalker) handleReturn(s *ast.ReturnStmt, set closerSet) {
	returned := make(map[types.Object]bool)
	for _, r := range s.Results {
		ast.Inspect(r, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
					returned[obj] = true
				}
			}
			return true
		})
	}
	for obj, st := range set {
		if !st.live || returned[obj] {
			continue
		}
		w.pass.Reportf(s.Pos(), "return without closing %s (constructed at %s); close it, defer a cleanup, or return it",
			obj.Name(), w.pass.Fset.Position(st.pos))
	}
}

// guardsChecked returns tracked resources whose birth-error guard is
// referenced by cond.
func (w *closeWalker) guardsChecked(cond ast.Expr, set closerSet) []*closerState {
	var out []*closerState
	ast.Inspect(cond, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		for _, st := range set {
			if st.guard != nil && st.guard == obj {
				out = append(out, st)
			}
		}
		return true
	})
	return out
}

// scanExpr handles v.Close() (resource closed) and escapes. Escape —
// ownership leaving this function's hands — is a tracked resource used
// as a plain value: passed as a call argument, stored into a field,
// map, slice, or composite literal, address-taken, or captured by a
// function literal. Method calls on the resource (v.recover(...)) and
// field reads (v.stats) are NOT escapes: they are exactly what a
// constructor does to a resource it still owns and must still close on
// failure (the PR 9 OpenDir shape).
func (w *closeWalker) scanExpr(e ast.Expr, set closerSet) {
	w.visitValue(e, set)
}

// escape untracks a resource used as a plain value.
func (w *closeWalker) escape(id *ast.Ident, set closerSet) {
	if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
		delete(set, obj)
	}
}

// visitValue walks e in value context: bare tracked identifiers escape.
func (w *closeWalker) visitValue(e ast.Expr, set closerSet) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		w.escape(e, set)
	case *ast.ParenExpr:
		w.visitValue(e.X, set)
	case *ast.SelectorExpr:
		// v.field / pkg.Name: reading a field or qualified name does
		// not move ownership of v.
		if _, ok := e.X.(*ast.Ident); !ok {
			w.visitValue(e.X, set)
		}
	case *ast.CallExpr:
		w.visitCall(e, set)
	case *ast.StarExpr:
		w.visitValue(e.X, set)
	case *ast.UnaryExpr:
		w.visitValue(e.X, set)
	case *ast.BinaryExpr:
		w.visitValue(e.X, set)
		w.visitValue(e.Y, set)
	case *ast.IndexExpr:
		w.visitValue(e.X, set)
		w.visitValue(e.Index, set)
	case *ast.SliceExpr:
		w.visitValue(e.X, set)
		w.visitValue(e.Low, set)
		w.visitValue(e.High, set)
		w.visitValue(e.Max, set)
	case *ast.TypeAssertExpr:
		w.visitValue(e.X, set)
	case *ast.KeyValueExpr:
		w.visitValue(e.Key, set)
		w.visitValue(e.Value, set)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.visitValue(el, set)
		}
	case *ast.FuncLit:
		// A closure capturing the resource may own it now.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				w.escape(id, set)
			}
			return true
		})
	}
}

// visitCall handles calls: v.Close() closes, method receivers stay
// owned, arguments escape.
func (w *closeWalker) visitCall(call *ast.CallExpr, set closerSet) {
	if se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := se.X.(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
				if _, tracked := set[obj]; tracked && se.Sel.Name == "Close" {
					delete(set, obj)
				}
				// A non-Close method call on a tracked resource leaves
				// it owned here; nothing to do for the receiver.
			}
		} else {
			w.visitValue(se.X, set)
		}
	} else {
		w.visitValue(call.Fun, set)
	}
	for _, arg := range call.Args {
		w.visitValue(arg, set)
	}
}
