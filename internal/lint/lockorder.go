package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockOrder enforces the engine's multi-level lock acquisition order.
//
// Mutex fields, mutex variables (package-level or local), and functions
// returning a mutex carry //ssi:lock level=N name=... annotations; the
// analyzer tracks, per function and per statement path, which annotated
// locks are held, and flags any acquisition of a lock whose level is
// not strictly greater than every lock already held — both directly and
// through package-local calls (the callee's transitive acquisition set,
// computed to a fixed point over the package call graph). Holding two
// locks of the same level is flagged too, unless the lock's annotation
// carries multi=under:<outer> and the named outer lock is held (the
// several-edge-locks-under-Manager.mu rule), or the site carries a
// justified //ssi:ignore.
//
// TryLock/TryRLock acquisitions are exempt from the order check: a try
// cannot block, so it cannot deadlock — the storage read path relies on
// exactly that, try-acquiring a page latch (which blocking acquirers
// take BEFORE the heap shard mutex) while holding the shard mutex. A
// successful try still enters the held set on the guarded branch, so
// everything acquired under it is checked against it.
//
// Unannotated mutexes are invisible to the analyzer: the annotations in
// internal/core, internal/mvcc, internal/storage, internal/wal, and the
// root package are the machine-readable form of the ordering rules
// documented in internal/core/partition.go and docs/invariants.md.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "check annotated mutex acquisitions against the engine's lock-level order",
	Run:  runLockOrder,
}

// acquireMethods classifies the sync.Mutex / sync.RWMutex method names
// the analyzer understands.
var (
	lockMethods    = map[string]bool{"Lock": true, "RLock": true}
	tryLockMethods = map[string]bool{"TryLock": true, "TryRLock": true}
	unlockMethods  = map[string]bool{"Unlock": true, "RUnlock": true}
)

// heldLock records one currently-held annotated lock and where it was
// acquired.
type heldLock struct {
	ann lockAnnotation
	pos token.Pos
}

// heldSet maps annotation name -> held lock. The name is the lock's
// identity: the engine's discipline allows at most one lock per class
// at a time (multi=under excepted), so a set keyed by class suffices.
type heldSet map[string]heldLock

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// intersect keeps only locks held in both sets (used to merge branch
// exits: a lock is held after a branch only if every falling-through
// path holds it).
func (h heldSet) intersect(other heldSet) heldSet {
	out := make(heldSet)
	for k, v := range h {
		if _, ok := other[k]; ok {
			out[k] = v
		}
	}
	return out
}

type lockChecker struct {
	pass  *Pass
	annot map[types.Object]lockAnnotation // annotated fields, vars, getter funcs
	names map[string]lockAnnotation       // declared lock classes by name
	decls map[*types.Func]*ast.FuncDecl   // package-local functions with bodies
	// holds maps a function to the locks its //ssi:holds precondition
	// declares held by every caller (the *Locked convention).
	holds map[*types.Func][]lockAnnotation
	// aliases maps a local variable object to the annotation of the
	// lock it was assigned from (latch := lt.latch(page)).
	aliases map[types.Object]lockAnnotation
	// direct and trans are the per-function directly-acquired and
	// transitively-acquired (via package-local calls) lock sets.
	direct map[*types.Func]map[string]lockAnnotation
	calls  map[*types.Func]map[*types.Func]bool
	trans  map[*types.Func]map[string]lockAnnotation
}

func runLockOrder(pass *Pass) error {
	c := &lockChecker{
		pass:    pass,
		annot:   make(map[types.Object]lockAnnotation),
		names:   make(map[string]lockAnnotation),
		decls:   make(map[*types.Func]*ast.FuncDecl),
		holds:   make(map[*types.Func][]lockAnnotation),
		aliases: make(map[types.Object]lockAnnotation),
		direct:  make(map[*types.Func]map[string]lockAnnotation),
		calls:   make(map[*types.Func]map[*types.Func]bool),
		trans:   make(map[*types.Func]map[string]lockAnnotation),
	}
	c.collectAnnotations()
	c.collectDecls()
	c.collectHolds()
	c.collectAliases()
	c.buildSummaries()

	// Checking pass: walk every function body tracking held locks,
	// starting from the //ssi:holds precondition (if any).
	for fn, decl := range c.decls {
		held := make(heldSet)
		for _, ann := range c.holds[fn] {
			held[ann.Name] = heldLock{ann: ann, pos: decl.Pos()}
		}
		w := &lockWalker{c: c, report: true}
		w.walkBody(decl.Body, held)
	}
	return nil
}

// collectHolds binds //ssi:holds preconditions to their functions. The
// directive lists lock class names declared by //ssi:lock annotations in
// this package; an unknown name is a diagnostic (a typo would otherwise
// silently weaken every check in the function).
func (c *lockChecker) collectHolds() {
	pass := c.pass
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, cm := range fd.Doc.List {
				args, ok := cutDirective(cm.Text, "holds")
				if !ok {
					continue
				}
				fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				if args == "" {
					pass.Reportf(cm.Pos(), "ssi:holds needs at least one lock name")
					continue
				}
				for _, name := range strings.Fields(args) {
					ann, known := c.names[name]
					if !known {
						pass.Reportf(cm.Pos(), "ssi:holds names %s, which no ssi:lock annotation in this package declares", name)
						continue
					}
					c.holds[fn] = append(c.holds[fn], ann)
				}
			}
		}
	}
}

// collectAnnotations finds every //ssi:lock directive and binds it to
// the declared object it annotates: a struct field, a var (package
// level or local), or a function returning a lock.
func (c *lockChecker) collectAnnotations() {
	pass := c.pass
	byLine := collectLineDirectives(pass.Fset, pass.Files, "lock")

	bind := func(obj types.Object, args string, at token.Pos) {
		if obj == nil {
			return
		}
		ann, problem := parseLockAnnotation(args)
		if problem != "" {
			pass.Reportf(at, "%s", problem)
			return
		}
		if prev, ok := c.names[ann.Name]; ok && prev.Level != ann.Level {
			pass.Reportf(at, "ssi:lock name %s redeclared at level %d (previously level %d); one class, one level", ann.Name, ann.Level, prev.Level)
			return
		}
		c.names[ann.Name] = ann
		c.annot[obj] = ann
	}

	// argsFor extracts a lock directive attached to a node: in its doc
	// or trailing comment group, or written on the same source line.
	argsFor := func(pos token.Pos, groups ...*ast.CommentGroup) (string, token.Pos, bool) {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, cm := range g.List {
				if rest, ok := cutDirective(cm.Text, "lock"); ok {
					return rest, cm.Pos(), true
				}
			}
		}
		if args, ok := byLine.at(pass.Fset.Position(pos)); ok {
			return args, pos, true
		}
		return "", token.NoPos, false
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					args, at, ok := argsFor(field.Pos(), field.Doc, field.Comment)
					if !ok {
						continue
					}
					for _, name := range field.Names {
						bind(pass.TypesInfo.Defs[name], args, at)
					}
				}
			case *ast.ValueSpec:
				args, at, ok := argsFor(n.Pos(), n.Doc, n.Comment)
				if !ok {
					return true
				}
				for _, name := range n.Names {
					bind(pass.TypesInfo.Defs[name], args, at)
				}
			case *ast.FuncDecl:
				args, at, ok := argsFor(n.Pos(), n.Doc)
				if !ok {
					return true
				}
				bind(pass.TypesInfo.Defs[n.Name], args, at)
			}
			return true
		})
	}
}

// cutDirective returns the args of text if it is an //ssi:<kind> comment.
func cutDirective(text, kind string) (string, bool) {
	rest, ok := strings.CutPrefix(text, directivePrefix+kind)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. //ssi:lockfoo
	}
	return strings.TrimSpace(rest), true
}

func (c *lockChecker) collectDecls() {
	for _, f := range c.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[fn] = fd
			}
		}
	}
}

// collectAliases records local variables assigned from an annotated
// lock (latch := lt.latch(page); l := &m.parts[i].mu), so later
// l.Lock() calls resolve. Iterates to a small fixed point so an alias
// of an alias resolves too.
func (c *lockChecker) collectAliases() {
	for range 3 {
		changed := false
		for _, decl := range c.decls {
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i, lhs := range n.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok {
							continue
						}
						obj := c.pass.TypesInfo.Defs[id]
						if obj == nil {
							obj = c.pass.TypesInfo.Uses[id]
						}
						if obj == nil {
							continue
						}
						if _, done := c.aliases[obj]; done {
							continue
						}
						if ann, ok := c.resolveLock(n.Rhs[i]); ok {
							c.aliases[obj] = ann
							changed = true
						}
					}
				case *ast.ValueSpec:
					for i, name := range n.Names {
						if i >= len(n.Values) {
							break
						}
						obj := c.pass.TypesInfo.Defs[name]
						if obj == nil {
							continue
						}
						if _, done := c.aliases[obj]; done {
							continue
						}
						if ann, ok := c.resolveLock(n.Values[i]); ok {
							c.aliases[obj] = ann
							changed = true
						}
					}
				}
				return true
			})
		}
		if !changed {
			break
		}
	}
}

// resolveLock maps an expression denoting a mutex to its annotation:
// a selector to an annotated field, a use of an annotated var or alias,
// an index into an annotated slice, or a call of an annotated getter.
func (c *lockChecker) resolveLock(e ast.Expr) (lockAnnotation, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.resolveLock(e.X)
	case *ast.StarExpr:
		return c.resolveLock(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.resolveLock(e.X)
		}
	case *ast.IndexExpr:
		return c.resolveLock(e.X)
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[e]; ok {
			if ann, ok := c.annot[sel.Obj()]; ok {
				return ann, true
			}
			return lockAnnotation{}, false
		}
		if obj := c.pass.TypesInfo.Uses[e.Sel]; obj != nil {
			ann, ok := c.annot[obj]
			return ann, ok
		}
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return lockAnnotation{}, false
		}
		if ann, ok := c.annot[obj]; ok {
			return ann, true
		}
		if ann, ok := c.aliases[obj]; ok {
			return ann, true
		}
	case *ast.CallExpr:
		if fn := c.callee(e); fn != nil {
			ann, ok := c.annot[fn]
			return ann, ok
		}
	}
	return lockAnnotation{}, false
}

// callee resolves the static callee of a call, if it is a named
// function or method (of any package).
func (c *lockChecker) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := c.pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// localCallee resolves a call to a function declared (with a body) in
// this package.
func (c *lockChecker) localCallee(call *ast.CallExpr) *types.Func {
	fn := c.callee(call)
	if fn == nil {
		return nil
	}
	if _, ok := c.decls[fn]; !ok {
		return nil
	}
	return fn
}

// buildSummaries computes, for every package function, the set of
// annotated locks it acquires directly (including inside non-goroutine
// function literals) and then the transitive set through package-local
// calls, to a fixed point.
func (c *lockChecker) buildSummaries() {
	for fn, decl := range c.decls {
		acq := make(map[string]lockAnnotation)
		callees := make(map[*types.Func]bool)
		var scan func(n ast.Node) bool
		scan = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				// A spawned goroutine's acquisitions are not held on
				// the caller's path; exclude the whole statement.
				return false
			case *ast.CallExpr:
				if se, ok := n.Fun.(*ast.SelectorExpr); ok {
					// Try-acquisitions are excluded: they cannot block, so
					// they impose no ordering obligation on callers.
					if lockMethods[se.Sel.Name] {
						if ann, ok := c.resolveLock(se.X); ok {
							acq[ann.Name] = ann
						}
					}
				}
				if g := c.localCallee(n); g != nil && g != fn {
					callees[g] = true
				}
			}
			return true
		}
		ast.Inspect(decl.Body, scan)
		c.direct[fn] = acq
		c.calls[fn] = callees
	}
	for fn := range c.decls {
		t := make(map[string]lockAnnotation, len(c.direct[fn]))
		for k, v := range c.direct[fn] {
			t[k] = v
		}
		c.trans[fn] = t
	}
	for changed := true; changed; {
		changed = false
		for fn := range c.decls {
			t := c.trans[fn]
			for g := range c.calls[fn] {
				for name, ann := range c.trans[g] {
					if _, ok := t[name]; !ok {
						t[name] = ann
						changed = true
					}
				}
			}
		}
	}
}

// checkAcquire reports any ordering violation of acquiring ann while
// holding held. via is empty for a direct acquisition, or the name of
// the called function whose body (transitively) acquires it.
func (c *lockChecker) checkAcquire(held heldSet, ann lockAnnotation, pos token.Pos, via string) {
	for _, h := range held {
		switch {
		case ann.Level > h.ann.Level:
			continue
		case ann.Level == h.ann.Level && ann.Name == h.ann.Name && ann.MultiUnder != "":
			if _, outer := held[ann.MultiUnder]; outer {
				continue // multi-hold sanctioned under the named outer lock
			}
			c.reportAcquire(pos, via, "acquires a second %s (level %d) without holding %s (its multi=under lock)", ann.Name, ann.Level, ann.MultiUnder)
		case ann.Level == h.ann.Level && ann.Name == h.ann.Name:
			c.reportAcquire(pos, via, "re-acquires %s (level %d) already held", ann.Name, ann.Level)
		case ann.Level == h.ann.Level:
			c.reportAcquire(pos, via, "acquires %s while holding same-level %s (level %d); the discipline allows one lock per level at a time", ann.Name, h.ann.Name, ann.Level)
		default:
			c.reportAcquire(pos, via, "acquires %s (level %d) while holding %s (level %d); annotated locks must be acquired in strictly increasing level order", ann.Name, ann.Level, h.ann.Name, h.ann.Level)
		}
	}
}

func (c *lockChecker) reportAcquire(pos token.Pos, via string, format string, args ...any) {
	if via != "" {
		format = "call to " + via + " " + format
	}
	c.pass.Reportf(pos, format, args...)
}

// lockWalker walks one function body in source order, maintaining the
// held-lock set with branch-sensitive merging.
type lockWalker struct {
	c      *lockChecker
	report bool
}

// walkBody walks a block, returning true if every path through it
// terminates (returns or panics).
func (w *lockWalker) walkBody(body *ast.BlockStmt, held heldSet) bool {
	if body == nil {
		return false
	}
	return w.walkStmts(body.List, held)
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt, held heldSet) bool {
	for _, s := range stmts {
		if w.walkStmt(s, held) {
			return true
		}
	}
	return false
}

// walkStmt processes one statement, mutating held; it returns true if
// the statement terminates the current path.
func (w *lockWalker) walkStmt(s ast.Stmt, held heldSet) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.scanExpr(s.X, held)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.scanExpr(r, held)
		}
		for _, l := range s.Lhs {
			w.scanExpr(l, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.scanExpr(s.Chan, held)
		w.scanExpr(s.Value, held)
	case *ast.IncDecStmt:
		w.scanExpr(s.X, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r, held)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave this path; treat as terminated for
		// merge purposes (conservative: held state after the construct
		// comes from falling-through paths).
		return true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		return w.walkIf(s, held)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, held)
		}
		body := held.clone()
		w.walkBody(s.Body, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		w.walkBody(s.Body, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, held)
		}
		return w.walkCases(s.Body, held, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		return w.walkCases(s.Body, held, false)
	case *ast.SelectStmt:
		return w.walkCases(s.Body, held, true)
	case *ast.DeferStmt:
		w.walkDefer(s, held)
	case *ast.GoStmt:
		// The goroutine runs concurrently: check its body against an
		// empty held set.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkBody(lit.Body, make(heldSet))
		}
		for _, arg := range s.Call.Args {
			w.scanExpr(arg, held)
		}
	}
	return false
}

// walkIf handles if/else with held-set merging, including the
// latch.TryLock() / !latch.TryLock() conditional-acquisition shapes.
func (w *lockWalker) walkIf(s *ast.IfStmt, held heldSet) bool {
	if s.Init != nil {
		w.walkStmt(s.Init, held)
	}
	negated := false
	if ue, ok := s.Cond.(*ast.UnaryExpr); ok && ue.Op == token.NOT {
		negated = true
	}
	condAcqs := w.scanExpr(s.Cond, held)

	thenHeld := held.clone()
	elseHeld := held.clone()
	// A successful TryLock holds the lock on the true branch.
	for _, a := range condAcqs {
		if negated {
			elseHeld[a.ann.Name] = a
		} else {
			thenHeld[a.ann.Name] = a
		}
	}
	thenTerm := w.walkBody(s.Body, thenHeld)
	elseTerm := false
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		elseTerm = w.walkStmts(e.List, elseHeld)
	case *ast.IfStmt:
		elseTerm = w.walkStmt(e, elseHeld)
	case nil:
		// fallthrough path keeps elseHeld
	}
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		replace(held, elseHeld)
	case elseTerm:
		replace(held, thenHeld)
	default:
		replace(held, thenHeld.intersect(elseHeld))
	}
	return false
}

func replace(dst, src heldSet) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// walkCases walks a switch/select body: each clause starts from the
// entry held set; the exit is the intersection of non-terminating
// clauses.
func (w *lockWalker) walkCases(body *ast.BlockStmt, held heldSet, isSelect bool) bool {
	var exits []heldSet
	sawDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		h := held.clone()
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				w.scanExpr(e, h)
			}
			if cl.List == nil {
				sawDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				w.walkStmt(cl.Comm, h)
			} else {
				sawDefault = true
			}
			stmts = cl.Body
		}
		if !w.walkStmts(stmts, h) {
			exits = append(exits, h)
		}
	}
	if len(exits) == 0 && len(body.List) > 0 && (sawDefault || isSelect) {
		return true
	}
	if len(exits) > 0 {
		merged := exits[0]
		for _, e := range exits[1:] {
			merged = merged.intersect(e)
		}
		replace(held, merged)
	}
	// Without a default, the zero-case fallthrough keeps the entry set;
	// intersecting with it can only shrink, which we already did if any
	// clause falls through; if none did, held is unchanged.
	return false
}

// walkDefer handles defer statements. A deferred Unlock keeps the lock
// held for the rest of the function (correct for ordering). A deferred
// function literal is walked against the current held set.
func (w *lockWalker) walkDefer(s *ast.DeferStmt, held heldSet) {
	if se, ok := s.Call.Fun.(*ast.SelectorExpr); ok && unlockMethods[se.Sel.Name] {
		if _, ok := w.c.resolveLock(se.X); ok {
			return // release at return: stays held until then
		}
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		w.walkBody(lit.Body, held.clone())
		return
	}
	for _, arg := range s.Call.Args {
		w.scanExpr(arg, held)
	}
}

// scanExpr scans an expression in source order for lock events and
// package-local calls, mutating held. It returns conditional
// acquisitions (TryLock calls) for the enclosing if to apply to the
// right branch.
func (w *lockWalker) scanExpr(e ast.Expr, held heldSet) []heldLock {
	var condAcqs []heldLock
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal not (detectably) invoked here: check its body
			// independently; we cannot know the caller's held set.
			w.walkBody(n.Body, make(heldSet))
			return false
		case *ast.CallExpr:
			// Immediately-invoked literal runs under the current set.
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				for _, arg := range n.Args {
					ast.Inspect(arg, visit)
				}
				w.walkBody(lit.Body, held)
				return false
			}
			if se, ok := n.Fun.(*ast.SelectorExpr); ok {
				name := se.Sel.Name
				if lockMethods[name] || tryLockMethods[name] || unlockMethods[name] {
					if ann, ok := w.c.resolveLock(se.X); ok {
						// Scan the lock expression itself first (it may
						// contain calls, e.g. lt.latch(p).RLock()).
						ast.Inspect(se.X, visit)
						switch {
						case unlockMethods[name]:
							delete(held, ann.Name)
						case lockMethods[name]:
							w.check(held, ann, n.Pos(), "")
							held[ann.Name] = heldLock{ann: ann, pos: n.Pos()}
						default: // TryLock: no order check (cannot block),
							// but a success holds the lock on the guarded
							// branch.
							condAcqs = append(condAcqs, heldLock{ann: ann, pos: n.Pos()})
						}
						return false
					}
				}
			}
			if g := w.c.localCallee(n); g != nil {
				if w.report {
					for _, ann := range w.c.trans[g] {
						w.check(held, ann, n.Pos(), g.Name())
					}
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(e, visit)
	return condAcqs
}

func (w *lockWalker) check(held heldSet, ann lockAnnotation, pos token.Pos, via string) {
	if !w.report {
		return
	}
	w.c.checkAcquire(held, ann, pos, via)
}
