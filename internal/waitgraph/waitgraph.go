// Package waitgraph maintains a transaction waits-for graph and detects
// deadlocks by cycle checking. It is shared by the storage layer's tuple
// write-lock waits (snapshot isolation's first-updater-wins blocking) and
// by the strict two-phase locking baseline in internal/s2pl, which — like
// PostgreSQL's heavyweight lock manager — must detect deadlocks among
// blocked lock requests.
package waitgraph

import (
	"errors"
	"sync"

	"pgssi/internal/mvcc"
)

// ErrDeadlock is returned when registering an edge would close a cycle in
// the waits-for graph. The caller (the would-be waiter) should abort.
var ErrDeadlock = errors.New("deadlock detected")

// Graph is a concurrency-safe waits-for graph. Each waiter has at most
// one outstanding wait edge at a time (a transaction blocks on a single
// lock), but a holder may be waited on by many transactions.
type Graph struct {
	mu sync.Mutex //ssi:lock level=10 name=waitgraph.graph
	// waitsFor maps a waiting transaction to the set of transactions it
	// is waiting on. S2PL lock waits can target several holders of a
	// shared lock at once.
	waitsFor map[mvcc.TxID]map[mvcc.TxID]struct{}
}

// New returns an empty waits-for graph.
func New() *Graph {
	return &Graph{waitsFor: make(map[mvcc.TxID]map[mvcc.TxID]struct{})}
}

// Wait registers that waiter blocks on each of holders. If adding these
// edges would create a cycle, no edge is added and ErrDeadlock is
// returned; the waiter is the chosen deadlock victim, matching
// PostgreSQL's policy of aborting the transaction that ran the detector.
func (g *Graph) Wait(waiter mvcc.TxID, holders ...mvcc.TxID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, h := range holders {
		if h == waiter {
			continue
		}
		if g.reachableLocked(h, waiter) {
			return ErrDeadlock
		}
	}
	set := g.waitsFor[waiter]
	if set == nil {
		set = make(map[mvcc.TxID]struct{}, len(holders))
		g.waitsFor[waiter] = set
	}
	for _, h := range holders {
		if h != waiter {
			set[h] = struct{}{}
		}
	}
	return nil
}

// Done removes all wait edges originating at waiter. It must be called
// once the waiter stops blocking, whether it acquired the lock or gave up.
func (g *Graph) Done(waiter mvcc.TxID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.waitsFor, waiter)
}

// reachableLocked reports whether target is reachable from start by
// following waits-for edges. Caller holds g.mu.
func (g *Graph) reachableLocked(start, target mvcc.TxID) bool {
	if start == target {
		return true
	}
	seen := map[mvcc.TxID]struct{}{start: {}}
	stack := []mvcc.TxID{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range g.waitsFor[n] {
			if next == target {
				return true
			}
			if _, ok := seen[next]; !ok {
				seen[next] = struct{}{}
				stack = append(stack, next)
			}
		}
	}
	return false
}

// Waiters returns the number of transactions currently blocked.
func (g *Graph) Waiters() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.waitsFor)
}
