package waitgraph

import (
	"errors"
	"testing"

	"pgssi/internal/mvcc"
)

func TestNoFalseDeadlock(t *testing.T) {
	g := New()
	if err := g.Wait(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(3, 2); err != nil {
		t.Fatal(err)
	}
	if g.Waiters() != 2 {
		t.Fatalf("waiters = %d, want 2", g.Waiters())
	}
	g.Done(1)
	g.Done(3)
	if g.Waiters() != 0 {
		t.Fatalf("waiters = %d, want 0", g.Waiters())
	}
}

func TestDirectCycleDetected(t *testing.T) {
	g := New()
	if err := g.Wait(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(2, 1); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	// The failed wait added no edge: 2 can wait on someone else.
	if err := g.Wait(2, 3); err != nil {
		t.Fatal(err)
	}
}

func TestTransitiveCycleDetected(t *testing.T) {
	g := New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Wait(1, 2))
	must(g.Wait(2, 3))
	must(g.Wait(3, 4))
	if err := g.Wait(4, 1); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock on 4→1, got %v", err)
	}
}

func TestMultiHolderWaits(t *testing.T) {
	g := New()
	if err := g.Wait(1, 2, 3, 4); err != nil {
		t.Fatal(err)
	}
	// Any holder closing a cycle triggers detection.
	if err := g.Wait(3, 1); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
}

func TestSelfEdgeIgnored(t *testing.T) {
	g := New()
	if err := g.Wait(1, 1); err != nil {
		t.Fatalf("self wait should be ignored, got %v", err)
	}
}

func TestDoneBreaksCycleRisk(t *testing.T) {
	g := New()
	_ = g.Wait(1, 2)
	g.Done(1)
	if err := g.Wait(2, 1); err != nil {
		t.Fatalf("after Done(1) no cycle exists: %v", err)
	}
}

func TestManyDisjointChainsNoDeadlock(t *testing.T) {
	g := New()
	for i := mvcc.TxID(1); i < 100; i++ {
		if err := g.Wait(i, i+1000); err != nil {
			t.Fatal(err)
		}
	}
	if g.Waiters() != 99 {
		t.Fatalf("waiters = %d", g.Waiters())
	}
}
