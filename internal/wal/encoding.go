// On-disk record encoding for the durable WAL. The framing reuses the
// discipline of internal/wire (docs/protocol.md): a length prefix
// covering a version byte, a CRC-32 of the body, and the body itself,
// with every length validated against a hard cap before any allocation.
// See docs/wal.md for the normative format description.
//
//	+--------------+-----------+-----------+------------------+
//	| length: u32  | ver: u8   | crc: u32  | body: length-5 B |
//	+--------------+-----------+-----------+------------------+
//
// length counts everything after itself (version + crc + body), so the
// minimum legal value is 5. All integers are big-endian. crc is the IEEE
// CRC-32 of body alone. The body is:
//
//	kind: u8 | seq: u64 | xid: u64 | payload
//
// kind 1 (commit):       nops: u32, then per op:
//
//	                      tlen:u32 table klen:u32 key flags:u8 vlen:u32 value
//	                      (flags bit0 = delete; deletes carry vlen 0)
//	kind 2 (safe marker):  empty payload
//	kind 3 (create table): nlen: u32 | name
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"pgssi/internal/mvcc"
)

// FormatVersion is the segment/record format version byte.
const FormatVersion = 1

// MaxRecordSize bounds one record's frame payload (version byte + CRC +
// body). Frames advertising more are rejected before any allocation.
const MaxRecordSize = 16 << 20

// Record kinds (wire-stable).
const (
	recCommit       = 1
	recSafeSnapshot = 2
	recCreateTable  = 3
)

const (
	// frameOverhead is what the length prefix covers beyond the body.
	frameOverhead = 5
	// frameHeaderSize is the full fixed prefix: length + version + crc.
	frameHeaderSize = 4 + frameOverhead
	// bodyFixedSize is the fixed body prefix: kind + seq + xid.
	bodyFixedSize = 1 + 8 + 8
)

// Record decode/validation errors. Recovery treats any of them (and any
// short read) as the damage point: the log ends at the previous record.
var (
	ErrRecordTooLarge = errors.New("wal: record exceeds maximum size")
	ErrBadVersion     = errors.New("wal: unsupported format version")
	ErrBadCRC         = errors.New("wal: record CRC mismatch")
	ErrTruncated      = errors.New("wal: truncated record")
	ErrBadRecord      = errors.New("wal: malformed record")
)

// frameBodySize returns the body size encodeFrame would produce for
// rec. PrepareRecord uses it to reject oversize records before the
// frame is allocated: MaxRecordSize is a write-side contract as much as
// a read-side one — a frame larger than readFrame accepts must never be
// written, or recovery would treat the acknowledged record as damage
// and truncate the log there.
func frameBodySize(rec Record) int {
	size := bodyFixedSize
	switch {
	case rec.SafeSnapshot:
	case rec.CreateTable != "":
		size += 4 + len(rec.CreateTable)
	default:
		size += 4
		for _, op := range rec.Ops {
			size += 4 + len(op.Table) + 4 + len(op.Key) + 1 + 4 + len(op.Value)
		}
	}
	return size
}

// ValidateRecord reports whether rec can ever be logged: a record whose
// frame would exceed MaxRecordSize is rejected with ErrRecordTooLarge,
// without encoding anything. Callers that must not fail after a point
// of no return (e.g. two-phase Prepare) validate up front.
func ValidateRecord(rec Record) error {
	if frameBodySize(rec)+frameOverhead > MaxRecordSize {
		return ErrRecordTooLarge
	}
	return nil
}

// encodeFrame encodes rec as one full frame (header + body).
func encodeFrame(rec Record) []byte {
	size := frameBodySize(rec)
	kind := byte(recCommit)
	switch {
	case rec.SafeSnapshot:
		kind = recSafeSnapshot
	case rec.CreateTable != "":
		kind = recCreateTable
	}
	frame := make([]byte, frameHeaderSize+size)
	body := frame[frameHeaderSize:]
	body[0] = kind
	binary.BigEndian.PutUint64(body[1:9], uint64(rec.Seq))
	binary.BigEndian.PutUint64(body[9:17], uint64(rec.Xid))
	off := bodyFixedSize
	putBytes := func(b []byte) {
		binary.BigEndian.PutUint32(body[off:], uint32(len(b)))
		off += 4
		off += copy(body[off:], b)
	}
	switch kind {
	case recCreateTable:
		putBytes([]byte(rec.CreateTable))
	case recCommit:
		binary.BigEndian.PutUint32(body[off:], uint32(len(rec.Ops)))
		off += 4
		for _, op := range rec.Ops {
			putBytes([]byte(op.Table))
			putBytes([]byte(op.Key))
			if op.Delete {
				body[off] = 1
				off++
				putBytes(nil)
			} else {
				body[off] = 0
				off++
				putBytes(op.Value)
			}
		}
	}
	binary.BigEndian.PutUint32(frame[0:4], uint32(size+frameOverhead))
	frame[4] = FormatVersion
	binary.BigEndian.PutUint32(frame[5:9], crc32.ChecksumIEEE(body))
	return frame
}

// EncodeRecordBody encodes rec as a bare frame body (kind | seq | xid |
// payload, no length/version/CRC prefix) for transports that supply
// their own framing — the wire protocol's replication stream carries
// exactly these bodies inside wire frames, so both layers share one
// record codec. Oversize records are rejected with ErrRecordTooLarge.
func EncodeRecordBody(rec Record) ([]byte, error) {
	if err := ValidateRecord(rec); err != nil {
		return nil, err
	}
	return encodeFrame(rec)[frameHeaderSize:], nil
}

// DecodeRecordBody decodes a frame body produced by EncodeRecordBody
// (or extracted from an on-disk frame). The Record does not alias body.
func DecodeRecordBody(body []byte) (Record, error) {
	return decodeRecord(body)
}

// patchSeq stamps the commit sequence number into an already-encoded
// frame and refreshes its CRC. The engine encodes a commit's record
// before the commit-sequence assignment and patches the CSN in at its
// log-position reservation, inside the MVCC publication critical
// section.
func patchSeq(frame []byte, seq uint64) {
	body := frame[frameHeaderSize:]
	binary.BigEndian.PutUint64(body[1:9], seq)
	binary.BigEndian.PutUint32(frame[5:9], crc32.ChecksumIEEE(body))
}

// readFrame reads one frame from r and returns its body, reusing buf
// when it is large enough. A clean end of input yields io.EOF; a partial
// frame yields ErrTruncated (wrapping the underlying unexpected-EOF);
// any other non-nil error marks damage or a real I/O failure.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n < frameOverhead {
		return nil, ErrBadRecord
	}
	if n > MaxRecordSize {
		return nil, ErrRecordTooLarge
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if hdr[4] != FormatVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, hdr[4])
	}
	want := binary.BigEndian.Uint32(hdr[5:9])
	bodyLen := int(n) - frameOverhead
	if cap(buf) < bodyLen {
		buf = make([]byte, bodyLen)
	}
	body := buf[:bodyLen]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if crc32.ChecksumIEEE(body) != want {
		return nil, ErrBadCRC
	}
	return body, nil
}

// decodeRecord decodes a frame body. Every length is validated against
// the remaining body before any slice is taken; values are copied so the
// Record does not alias the read buffer.
func decodeRecord(body []byte) (Record, error) {
	var rec Record
	if len(body) < bodyFixedSize {
		return rec, ErrBadRecord
	}
	kind := body[0]
	rec.Seq = mvcc.SeqNo(binary.BigEndian.Uint64(body[1:9]))
	rec.Xid = mvcc.TxID(binary.BigEndian.Uint64(body[9:17]))
	rest := body[bodyFixedSize:]
	take := func() ([]byte, error) {
		if len(rest) < 4 {
			return nil, ErrBadRecord
		}
		n := int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
		if n < 0 || n > len(rest) {
			return nil, ErrBadRecord
		}
		b := rest[:n]
		rest = rest[n:]
		return b, nil
	}
	switch kind {
	case recSafeSnapshot:
		rec.SafeSnapshot = true
	case recCreateTable:
		name, err := take()
		if err != nil {
			return rec, err
		}
		if len(name) == 0 {
			return rec, ErrBadRecord
		}
		rec.CreateTable = string(name)
	case recCommit:
		if len(rest) < 4 {
			return rec, ErrBadRecord
		}
		nops := int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
		// Each op needs at least its three length prefixes and the
		// flags byte; cap the allocation by what the body could hold.
		if nops < 0 || nops > len(rest)/13+1 {
			return rec, ErrBadRecord
		}
		rec.Ops = make([]Op, 0, nops)
		for i := 0; i < nops; i++ {
			table, err := take()
			if err != nil {
				return rec, err
			}
			key, err := take()
			if err != nil {
				return rec, err
			}
			if len(rest) < 1 {
				return rec, ErrBadRecord
			}
			flags := rest[0]
			rest = rest[1:]
			if flags > 1 {
				return rec, ErrBadRecord
			}
			value, err := take()
			if err != nil {
				return rec, err
			}
			op := Op{Table: string(table), Key: string(key), Delete: flags == 1}
			if !op.Delete {
				op.Value = append([]byte(nil), value...)
			} else if len(value) != 0 {
				return rec, ErrBadRecord
			}
			rec.Ops = append(rec.Ops, op)
		}
	default:
		return rec, fmt.Errorf("%w: unknown kind %d", ErrBadRecord, kind)
	}
	if len(rest) != 0 {
		return rec, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(rest))
	}
	return rec, nil
}
