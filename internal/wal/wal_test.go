package wal

import (
	"testing"
	"time"
)

func TestAppendAndRecords(t *testing.T) {
	l := NewLog()
	l.Append(Record{Seq: 1, Ops: []Op{{Table: "t", Key: "a", Value: []byte("1")}}})
	l.Append(Record{Seq: 1, SafeSnapshot: true})
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	recs := l.Records()
	if len(recs) != 2 || recs[1].SafeSnapshot != true || recs[0].Ops[0].Key != "a" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestSubscribeReplaysBacklogThenStreams(t *testing.T) {
	l := NewLog()
	l.Append(Record{Seq: 1})
	l.Append(Record{Seq: 2})
	ch, cancel := l.Subscribe()
	defer cancel()
	if r := <-ch; r.Seq != 1 {
		t.Fatalf("first = %+v", r)
	}
	if r := <-ch; r.Seq != 2 {
		t.Fatalf("second = %+v", r)
	}
	go l.Append(Record{Seq: 3})
	select {
	case r := <-ch:
		if r.Seq != 3 {
			t.Fatalf("streamed = %+v", r)
		}
	case <-time.After(time.Second):
		t.Fatal("streamed record not delivered")
	}
}

func TestCancelDetaches(t *testing.T) {
	l := NewLog()
	ch, cancel := l.Subscribe()
	cancel()
	// Appends after cancel must not block even if nobody reads ch.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 2000; i++ {
			l.Append(Record{Seq: 1})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("append blocked after subscriber cancelled")
	}
	_ = ch
}

func TestMultipleSubscribersSeeSameStream(t *testing.T) {
	l := NewLog()
	a, cancelA := l.Subscribe()
	b, cancelB := l.Subscribe()
	defer cancelA()
	defer cancelB()
	go func() {
		for i := 1; i <= 5; i++ {
			l.Append(Record{Seq: 1})
		}
	}()
	for i := 0; i < 5; i++ {
		<-a
		<-b
	}
}
