package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pgssi/internal/mvcc"
)

// FuzzRecoverSegment feeds arbitrary bytes to segment recovery. The
// invariants, regardless of input: recovery never panics and never
// errors on damaged content (damage truncates, it does not fail); every
// record it does accept decodes cleanly, with sequence numbers carried
// through; and the recovered log is appendable and survives a clean
// close/reopen with exactly the accepted records plus the new one.
func FuzzRecoverSegment(f *testing.F) {
	// Seed corpus: a healthy segment, then the damage taxonomy —
	// truncations at every structural boundary, a bit flip, garbage,
	// wrong version, huge advertised length.
	healthy := encodeSegHeader(1)
	healthy = append(healthy, encodeFrame(Record{Seq: 1, Xid: 1, Ops: []Op{{Table: "t", Key: "a", Value: []byte("v1")}}})...)
	healthy = append(healthy, encodeFrame(Record{Seq: 2, SafeSnapshot: true})...)
	healthy = append(healthy, encodeFrame(Record{Seq: 3, CreateTable: "u"})...)
	healthy = append(healthy, encodeFrame(Record{Seq: 4, Xid: 4, Ops: []Op{{Table: "u", Key: "b", Delete: true}}})...)
	f.Add(healthy)
	f.Add(healthy[:0])
	f.Add(healthy[:segmentHeaderSize-3])        // torn header
	f.Add(healthy[:segmentHeaderSize])          // empty segment
	f.Add(healthy[:segmentHeaderSize+2])        // torn length prefix
	f.Add(healthy[:len(healthy)-1])             // torn final record
	f.Add(append([]byte(nil), healthy[:40]...)) // mid-frame cut
	f.Add(bytes.Repeat([]byte{0xa5}, 64))       // garbage
	flipped := append([]byte(nil), healthy...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	badver := append([]byte(nil), healthy...)
	badver[8] = 99
	f.Add(badver)
	huge := encodeSegHeader(1)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, FormatVersion)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := OpenDir(dir, Config{Fsync: FsyncAlways})
		if err != nil {
			// Damage is never an error; only real I/O failures are, and
			// a fresh tempdir should have none.
			t.Fatalf("OpenDir errored on damaged input: %v", err)
		}
		accepted := l.RecoveredRecords()
		var recs []Record
		if err := l.Replay(func(r Record) error {
			recs = append(recs, r)
			return nil
		}); err != nil {
			t.Fatalf("replay of recovered log failed: %v", err)
		}
		if len(recs) != accepted {
			t.Fatalf("replay yielded %d records, recovery reported %d", len(recs), accepted)
		}
		// The recovered log must be appendable...
		if err := l.Append(Record{Seq: 99, Xid: 99, Ops: []Op{{Table: "t", Key: "post", Value: []byte("recovery")}}}).Wait(); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		// ...and a reopen must see the accepted prefix plus the append.
		l2, err := OpenDir(dir, Config{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		if got := l2.RecoveredRecords(); got != accepted+1 {
			t.Fatalf("reopen recovered %d records, want %d", got, accepted+1)
		}
		var last Record
		if err := l2.Replay(func(r Record) error {
			last = r
			return nil
		}); err != nil {
			t.Fatalf("replay after reopen: %v", err)
		}
		if last.Seq != mvcc.SeqNo(99) || len(last.Ops) != 1 || last.Ops[0].Key != "post" {
			t.Fatalf("appended record did not survive reopen: %+v", last)
		}
	})
}
