// Checkpoints bound the log. WriteCheckpoint captures the engine's
// state at a safe-snapshot marker into a checkpoint file, records it in
// the CHECKPOINT manifest, and garbage-collects every segment whose
// records all fall at or below the checkpoint sequence. Recovery then
// loads the checkpoint and replays only the post-checkpoint suffix of
// the log (docs/wal.md, "Checkpoints and log truncation").
//
// A checkpoint file is named by the 16-digit zero-padded checkpoint
// sequence with the .ckpt extension and framed exactly like a segment:
// a 17-byte header (magic "PGSSICKP", version, seq), then CRC-framed
// records — schema records first, then row-image commit records, all
// stamped with the checkpoint sequence — terminated by a safe-snapshot
// footer frame carrying the same sequence. The footer is the
// completeness witness: a checkpoint whose last decodable frame is not
// that footer is torn and discarded at open, exactly like a torn
// record. There is no rename on the FS surface, so the footer plays the
// role an atomic rename would.
//
// The CHECKPOINT manifest is one CRC frame whose body is the magic
// "PGSSICKM", the checkpoint seq, and the GC floor seq. It is written
// only after the checkpoint file AND the log through the checkpoint seq
// are durable, and segments are removed only after the manifest is
// durable — so a crash at any point leaves either the previous
// checkpoint (with its segments intact) or the new one, never a state
// that needs records the disk no longer holds.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"strconv"
	"strings"

	"pgssi/internal/mvcc"
)

const (
	ckptMagic     = "PGSSICKP"
	manifestMagic = "PGSSICKM"
	// ManifestName is the checkpoint manifest's file name.
	ManifestName = "CHECKPOINT"

	ckptHeaderSize   = 8 + 1 + 8 // magic + version + seq
	manifestBodySize = 8 + 8 + 8 // magic + ckpt seq + floor seq
)

func ckptName(seq uint64) string { return fmt.Sprintf("%016d.ckpt", seq) }

func parseCkptName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, ".ckpt")
	if !ok || len(base) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(base, 10, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

func encodeCkptHeader(seq uint64) []byte {
	hdr := make([]byte, ckptHeaderSize)
	copy(hdr, ckptMagic)
	hdr[8] = FormatVersion
	binary.BigEndian.PutUint64(hdr[9:17], seq)
	return hdr
}

// readCkptHeader validates a checkpoint header against the sequence
// encoded in the file's name.
func readCkptHeader(r io.Reader, wantSeq uint64) error {
	var hdr [ckptHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%w: checkpoint header: %v", ErrTruncated, err)
	}
	if string(hdr[:8]) != ckptMagic {
		return fmt.Errorf("%w: bad checkpoint magic", ErrBadRecord)
	}
	if hdr[8] != FormatVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, hdr[8])
	}
	if seq := binary.BigEndian.Uint64(hdr[9:17]); seq != wantSeq {
		return fmt.Errorf("%w: checkpoint header seq %d, file name says %d", ErrBadRecord, seq, wantSeq)
	}
	return nil
}

// encodeRawFrame frames an arbitrary body with the shared length +
// version + CRC prefix (the manifest is a raw frame, not a record).
func encodeRawFrame(body []byte) []byte {
	frame := make([]byte, frameHeaderSize+len(body))
	copy(frame[frameHeaderSize:], body)
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(body)+frameOverhead))
	frame[4] = FormatVersion
	binary.BigEndian.PutUint32(frame[5:9], crc32.ChecksumIEEE(body))
	return frame
}

// writeManifest durably replaces the CHECKPOINT manifest. The caller
// must already have made the checkpoint file and the log through
// ckptSeq durable: once the manifest lands, recovery trusts the new
// checkpoint.
func writeManifest(fs FS, dir string, ckptSeq, floorSeq uint64) error {
	body := make([]byte, manifestBodySize)
	copy(body, manifestMagic)
	binary.BigEndian.PutUint64(body[8:16], ckptSeq)
	binary.BigEndian.PutUint64(body[16:24], floorSeq)
	f, err := fs.Create(filepath.Join(dir, ManifestName))
	if err != nil {
		return err
	}
	_, err = f.Write(encodeRawFrame(body))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

// readManifest reads the CHECKPOINT manifest. A missing, torn, or
// otherwise undecodable manifest is not an error — it simply reports
// no manifest, and recovery falls back to the newest complete
// checkpoint file (damage is never an OpenDir failure).
func readManifest(fs FS, dir string) (ckptSeq, floorSeq uint64, ok bool) {
	f, err := fs.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return 0, 0, false
	}
	defer f.Close()
	body, err := readFrame(f, nil)
	if err != nil || len(body) != manifestBodySize || string(body[:8]) != manifestMagic {
		return 0, 0, false
	}
	return binary.BigEndian.Uint64(body[8:16]), binary.BigEndian.Uint64(body[16:24]), true
}

// scanCheckpoint validates one checkpoint file: it is complete iff the
// header is valid and every frame decodes cleanly through a final
// safe-snapshot footer whose sequence matches the header, with nothing
// after it. Returns the data-record count. Like scanSegment, content
// problems are incompleteness, never errors.
func scanCheckpoint(fs FS, path string, seq uint64) (nrecs int, complete bool) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	if err := readCkptHeader(f, seq); err != nil {
		return 0, false
	}
	var buf []byte
	sawFooter := false
	for {
		body, err := readFrame(f, buf)
		if err == io.EOF {
			return nrecs, sawFooter
		}
		if err != nil {
			return nrecs, false
		}
		rec, err := decodeRecord(body)
		if err != nil || sawFooter {
			return nrecs, false
		}
		buf = body
		if rec.SafeSnapshot {
			if uint64(rec.Seq) != seq {
				return nrecs, false
			}
			sawFooter = true
			continue
		}
		nrecs++
	}
}

// readCheckpointRecords streams a validated checkpoint's data records
// (not the footer) through fn. Unlike scanCheckpoint this treats damage
// as an error: callers only read checkpoints recovery has validated.
func readCheckpointRecords(fs FS, path string, seq uint64, fn func(Record) error) (int, error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if err := readCkptHeader(f, seq); err != nil {
		return 0, err
	}
	var buf []byte
	n := 0
	for {
		body, err := readFrame(f, buf)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("wal: checkpoint %s: %w", filepath.Base(path), err)
		}
		rec, err := decodeRecord(body)
		if err != nil {
			return n, fmt.Errorf("wal: checkpoint %s: %w", filepath.Base(path), err)
		}
		buf = body
		if rec.SafeSnapshot {
			continue
		}
		if err := fn(rec); err != nil {
			return n, err
		}
		n++
	}
}

// WriteCheckpoint captures a snapshot-consistent image of the database
// at the safe-snapshot commit sequence seq. fill streams the image —
// schema records first, then row-image commit records, all batched by
// the caller under MaxRecordSize — through emit; it runs on the calling
// goroutine against the caller's marker-pinned read-only transaction,
// so the primary keeps serving while the checkpoint streams out.
//
// Durability ordering: the checkpoint file is written, fsynced, and its
// directory entry made durable first; then SyncBarrier proves the log
// itself is durable through seq (and not poisoned); then the GC set —
// the longest prefix of sealed segments whose records all fall at or
// below seq — is recorded in a durable manifest; and only then are
// those segments removed. The in-memory GC floor is raised before the
// files vanish, so no new subscription can start below the floor while
// its segments disappear; a subscriber already reading a removed
// segment gets a closed stream (loud), never a silent gap.
func (l *DurableLog) WriteCheckpoint(seq mvcc.SeqNo, fill func(emit func(Record) error) error) (CheckpointInfo, error) {
	var info CheckpointInfo
	if seq == 0 {
		return info, fmt.Errorf("wal: checkpoint at sequence 0")
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return info, ErrClosed
	}
	if err := l.flushErr; err != nil {
		l.mu.Unlock()
		return info, err
	}
	if uint64(seq) <= l.ckptSeq {
		prev := l.ckptSeq
		l.mu.Unlock()
		return info, fmt.Errorf("wal: checkpoint seq %d not beyond previous checkpoint %d", seq, prev)
	}
	l.mu.Unlock()

	path := filepath.Join(l.dir, ckptName(uint64(seq)))
	f, err := l.fs.Create(path)
	if err != nil {
		return info, err
	}
	nrecs := 0
	werr := func() error {
		if _, err := f.Write(encodeCkptHeader(uint64(seq))); err != nil {
			return err
		}
		emit := func(rec Record) error {
			if rec.SafeSnapshot {
				return fmt.Errorf("wal: checkpoint data record cannot be a marker")
			}
			rec.Seq = seq
			if err := ValidateRecord(rec); err != nil {
				return err
			}
			if _, err := f.Write(encodeFrame(rec)); err != nil {
				return err
			}
			nrecs++
			return nil
		}
		if err := fill(emit); err != nil {
			return err
		}
		// The footer is the completeness witness; without it the file is
		// torn and recovery discards it.
		if _, err := f.Write(encodeFrame(Record{Seq: seq, SafeSnapshot: true})); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		l.fs.Remove(path)
		return info, werr
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return info, err
	}

	// The checkpoint is durable. Before anything at or below seq may be
	// GC'd, the log itself must be durable through seq — the barrier
	// also surfaces a poisoned log before any segment is touched.
	if err := l.SyncBarrier(); err != nil {
		return info, err
	}

	// GC set: the longest prefix of sealed segments whose records all
	// fall at or below seq. Sealed segments' lastSeq is exact (rotate
	// publishes it at seal time); the current segment is never taken.
	l.mu.Lock()
	var gc []segMeta
	for i := 0; i+1 < len(l.segs); i++ {
		if l.segs[i].lastSeq > uint64(seq) {
			break
		}
		gc = append(gc, l.segs[i])
	}
	floor := l.floorSeq
	for _, s := range gc {
		if s.lastSeq > floor {
			floor = s.lastSeq
		}
	}
	oldCkpt := l.ckptPath
	l.mu.Unlock()

	if err := writeManifest(l.fs, l.dir, uint64(seq), floor); err != nil {
		return info, err
	}

	// Raise the floor and drop the GC'd metas before touching the
	// files: no new subscription can start below the floor while its
	// segments vanish.
	l.mu.Lock()
	gcSet := make(map[uint64]bool, len(gc))
	for _, s := range gc {
		gcSet[s.index] = true
	}
	keep := make([]segMeta, 0, len(l.segs))
	for _, s := range l.segs {
		if !gcSet[s.index] {
			keep = append(keep, s)
		}
	}
	l.segs = keep
	l.floorSeq = floor
	l.ckptSeq = uint64(seq)
	l.ckptPath = path
	l.ckptRecords = nrecs
	l.stats.Checkpoints++
	l.stats.SegmentsGCed += int64(len(gc))
	l.mu.Unlock()

	for _, s := range gc {
		if err := l.fs.Remove(s.path); err != nil {
			return info, fmt.Errorf("wal: GC segment %s: %w", filepath.Base(s.path), err)
		}
	}
	if oldCkpt != "" && oldCkpt != path {
		if err := l.fs.Remove(oldCkpt); err != nil {
			return info, fmt.Errorf("wal: removing superseded checkpoint: %w", err)
		}
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return info, err
	}
	info = CheckpointInfo{Seq: seq, Records: nrecs}
	return info, nil
}

// CheckpointInfo reports the newest checkpoint the log holds, if any.
func (l *DurableLog) CheckpointInfo() (CheckpointInfo, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ckptPath == "" {
		return CheckpointInfo{}, false
	}
	return CheckpointInfo{Seq: mvcc.SeqNo(l.ckptSeq), Records: l.ckptRecords}, true
}

// ReplayCheckpoint implements CheckpointSource: it streams the newest
// checkpoint's data records through fn. ErrNoCheckpoint if the log has
// never checkpointed.
func (l *DurableLog) ReplayCheckpoint(fn func(Record) error) (CheckpointInfo, error) {
	l.mu.Lock()
	path, seq := l.ckptPath, l.ckptSeq
	l.mu.Unlock()
	if path == "" {
		return CheckpointInfo{}, ErrNoCheckpoint
	}
	n, err := readCheckpointRecords(l.fs, path, seq, fn)
	if err != nil {
		return CheckpointInfo{}, err
	}
	return CheckpointInfo{Seq: mvcc.SeqNo(seq), Records: n}, nil
}
