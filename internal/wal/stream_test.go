package wal

import (
	"bytes"
	"testing"
	"time"

	"pgssi/internal/mvcc"
)

// collect drains ch until it would block for longer than the grace
// period, returning what was received.
func collect(t *testing.T, ch <-chan Record, want int) []Record {
	t.Helper()
	var out []Record
	for len(out) < want {
		select {
		case r, ok := <-ch:
			if !ok {
				t.Fatalf("stream closed after %d records, want %d", len(out), want)
			}
			out = append(out, r)
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out after %d records, want %d", len(out), want)
		}
	}
	return out
}

func seqs(recs []Record) []mvcc.SeqNo {
	out := make([]mvcc.SeqNo, len(recs))
	for i, r := range recs {
		out[i] = r.Seq
	}
	return out
}

func TestLogSubscribeFromFiltersBacklog(t *testing.T) {
	l := NewLog()
	l.Append(Record{Seq: 0, CreateTable: "t"})
	l.Append(commitRec(1, "a", "1"))
	l.Append(commitRec(2, "b", "2"))
	l.Append(Record{Seq: 2, SafeSnapshot: true})
	l.Append(commitRec(3, "c", "3"))

	// Resuming after seq 2: commit 3 is new; the marker at seq 2 sits on
	// the boundary and must be redelivered (it may postdate the
	// subscriber's copy of commit 2), but commits 1 and 2 must not be.
	ch, cancel := l.SubscribeFrom(2)
	defer cancel()
	got := collect(t, ch, 2)
	if !got[0].SafeSnapshot || got[0].Seq != 2 {
		t.Fatalf("first resumed record = %+v, want marker at seq 2", got[0])
	}
	if got[1].Seq != 3 || len(got[1].Ops) != 1 {
		t.Fatalf("second resumed record = %+v, want commit 3", got[1])
	}

	// Live records stream through the same filter.
	l.Append(commitRec(4, "d", "4"))
	live := collect(t, ch, 1)
	if live[0].Seq != 4 {
		t.Fatalf("live record = %+v, want commit 4", live[0])
	}
}

func TestLogSubscribeFromZeroIsFullReplay(t *testing.T) {
	l := NewLog()
	l.Append(Record{Seq: 0, CreateTable: "t"})
	l.Append(commitRec(1, "a", "1"))
	l.Append(Record{Seq: 1, SafeSnapshot: true})
	ch, cancel := l.SubscribeFrom(0)
	defer cancel()
	got := collect(t, ch, 3)
	if got[0].CreateTable != "t" || got[1].Seq != 1 || !got[2].SafeSnapshot {
		t.Fatalf("full replay = %v", seqs(got))
	}
}

func TestDurableSubscribeFromSkipsAppliedPrefix(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, Record{Seq: 0, CreateTable: "t"})
	for i := 1; i <= 5; i++ {
		mustAppend(t, l, commitRec(uint64(i), "k", "v"))
	}
	mustAppend(t, l, Record{Seq: 5, SafeSnapshot: true})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the disk backlog holds seqs 0..5 + marker. Resume after 3.
	l2, err := OpenDir(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	ch, cancel := l2.SubscribeFrom(3)
	defer cancel()
	got := collect(t, ch, 3)
	want := []mvcc.SeqNo{4, 5, 5}
	for i, s := range want {
		if got[i].Seq != s {
			t.Fatalf("resumed seqs = %v, want %v", seqs(got), want)
		}
	}
	if !got[2].SafeSnapshot {
		t.Fatalf("last resumed record should be the marker: %+v", got[2])
	}

	// New appends past the resume point stream live.
	mustAppend(t, l2, commitRec(6, "k", "v6"))
	live := collect(t, ch, 1)
	if live[0].Seq != 6 {
		t.Fatalf("live record = %+v", live[0])
	}
}

func TestDurableSubscribeFromExactlyOnceUnderAppends(t *testing.T) {
	// SubscribeFrom must not double-deliver a commit that is moving
	// through pending -> inflight -> disk while the snapshot is taken.
	dir := t.TempDir()
	l, err := OpenDir(dir, Config{Fsync: FsyncBatch, GroupWindow: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= n; i++ {
			l.Append(commitRec(uint64(i), "k", "v"))
		}
	}()
	ch, cancel := l.SubscribeFrom(20)
	defer cancel()
	<-done
	got := collect(t, ch, n-20)
	seen := map[mvcc.SeqNo]int{}
	for _, r := range got {
		seen[r.Seq]++
	}
	for s := mvcc.SeqNo(21); s <= n; s++ {
		if seen[s] != 1 {
			t.Fatalf("seq %d delivered %d times", s, seen[s])
		}
	}
	if len(seen) != n-20 {
		t.Fatalf("saw %d distinct seqs, want %d", len(seen), n-20)
	}
}

func TestRecordBodyRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 0, CreateTable: "accounts"},
		{Seq: 7, Xid: 9, Ops: []Op{
			{Table: "t", Key: "a", Value: []byte("v")},
			{Table: "t", Key: "b", Delete: true},
		}},
		{Seq: 7, SafeSnapshot: true},
	}
	for _, rec := range recs {
		body, err := EncodeRecordBody(rec)
		if err != nil {
			t.Fatalf("encode %+v: %v", rec, err)
		}
		got, err := DecodeRecordBody(body)
		if err != nil {
			t.Fatalf("decode %+v: %v", rec, err)
		}
		if got.Seq != rec.Seq || got.Xid != rec.Xid ||
			got.SafeSnapshot != rec.SafeSnapshot || got.CreateTable != rec.CreateTable ||
			len(got.Ops) != len(rec.Ops) {
			t.Fatalf("round trip: got %+v, want %+v", got, rec)
		}
		for i, op := range rec.Ops {
			g := got.Ops[i]
			if g.Table != op.Table || g.Key != op.Key || g.Delete != op.Delete || !bytes.Equal(g.Value, op.Value) {
				t.Fatalf("op %d: got %+v, want %+v", i, g, op)
			}
		}
	}
}

func TestEncodeRecordBodyRejectsOversize(t *testing.T) {
	rec := Record{Seq: 1, Ops: []Op{{Table: "t", Key: "k", Value: make([]byte, MaxRecordSize)}}}
	if _, err := EncodeRecordBody(rec); err != ErrRecordTooLarge {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
}
