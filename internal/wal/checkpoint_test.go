package wal

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"pgssi/internal/mvcc"
)

// ckptFill returns a WriteCheckpoint fill that emits one schema record
// and one row image per key in [1, rows].
func ckptFill(rows int) func(emit func(Record) error) error {
	return func(emit func(Record) error) error {
		if err := emit(Record{CreateTable: "t"}); err != nil {
			return err
		}
		for i := 1; i <= rows; i++ {
			rec := Record{Ops: []Op{{Table: "t", Key: fmt.Sprintf("k%03d", i), Value: []byte("img")}}}
			if err := emit(rec); err != nil {
				return err
			}
		}
		return nil
	}
}

func listFiles(t *testing.T, dir, suffix string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), suffix) {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestCheckpointGCAndSuffixRecovery is the tentpole's round trip: force
// several segment rotations, checkpoint at a marker, and verify (a) the
// covered segments are gone from disk, (b) resuming below the GC floor
// is a loud ErrSeqTruncated, and (c) a reopened log recovers from the
// checkpoint plus only the suffix of the WAL.
func TestCheckpointGCAndSuffixRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, Config{Fsync: FsyncAlways, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, Record{CreateTable: "t"})
	const total, ckptAt = 30, 20
	for i := 1; i <= total; i++ {
		mustAppend(t, l, commitRec(uint64(i), fmt.Sprintf("k%03d", i), "value-payload"))
		if i == ckptAt {
			mustAppend(t, l, Record{Seq: ckptAt, SafeSnapshot: true})
		}
	}
	segsBefore := len(listFiles(t, dir, ".wal"))
	if segsBefore < 4 {
		t.Fatalf("want >= 4 segments before checkpoint, got %d", segsBefore)
	}

	info, err := l.WriteCheckpoint(ckptAt, ckptFill(ckptAt))
	if err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if info.Seq != ckptAt || info.Records != ckptAt+1 {
		t.Fatalf("checkpoint info = %+v, want seq %d, %d records", info, ckptAt, ckptAt+1)
	}
	st := l.Stats()
	if st.Checkpoints != 1 || st.SegmentsGCed == 0 {
		t.Fatalf("stats after checkpoint: %+v", st)
	}
	if st.CheckpointSeq != ckptAt || st.GCFloorSeq == 0 || st.GCFloorSeq > ckptAt {
		t.Fatalf("checkpoint seq/floor: %+v", st)
	}
	segsAfter := len(listFiles(t, dir, ".wal"))
	if int64(segsBefore-segsAfter) != st.SegmentsGCed {
		t.Fatalf("disk lost %d segments, stats say %d", segsBefore-segsAfter, st.SegmentsGCed)
	}
	if got := listFiles(t, dir, ".ckpt"); len(got) != 1 {
		t.Fatalf("want exactly one .ckpt file, got %v", got)
	}

	// Below the floor: loud truncation error, and the unchecked variant
	// degrades to a closed channel, never a silent gap.
	if _, _, err := l.SubscribeFromChecked(mvcc.SeqNo(st.GCFloorSeq - 1)); !errors.Is(err, ErrSeqTruncated) {
		t.Fatalf("SubscribeFromChecked below floor: %v, want ErrSeqTruncated", err)
	}
	ch, cancel := l.SubscribeFrom(mvcc.SeqNo(st.GCFloorSeq - 1))
	if _, ok := <-ch; ok {
		t.Fatal("unchecked SubscribeFrom below floor delivered a record")
	}
	cancel()

	// At the checkpoint seq: the suffix arrives complete and in order.
	ch, cancel, err = l.SubscribeFromChecked(ckptAt)
	if err != nil {
		t.Fatalf("SubscribeFromChecked at checkpoint seq: %v", err)
	}
	next := uint64(ckptAt)
	for next < total {
		rec := <-ch
		if rec.SafeSnapshot {
			continue
		}
		if uint64(rec.Seq) != next+1 {
			t.Fatalf("suffix out of order: got seq %d after %d", rec.Seq, next)
		}
		next = uint64(rec.Seq)
	}
	cancel()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: checkpoint + suffix-only replay.
	l2, err := OpenDir(dir, Config{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	ci, ok := l2.CheckpointInfo()
	if !ok || ci.Seq != ckptAt || ci.Records != ckptAt+1 {
		t.Fatalf("recovered checkpoint info = %+v ok=%v", ci, ok)
	}
	var ckptRecs []Record
	if _, err := l2.ReplayCheckpoint(func(r Record) error {
		ckptRecs = append(ckptRecs, r)
		return nil
	}); err != nil {
		t.Fatalf("ReplayCheckpoint: %v", err)
	}
	if len(ckptRecs) != ckptAt+1 || ckptRecs[0].CreateTable != "t" {
		t.Fatalf("checkpoint records: %d, first %+v", len(ckptRecs), ckptRecs[0])
	}
	for _, r := range ckptRecs {
		if r.Seq != ckptAt {
			t.Fatalf("checkpoint record not stamped with checkpoint seq: %+v", r)
		}
	}
	suffix := replayAll(t, l2)
	for _, r := range suffix {
		if !r.SafeSnapshot && uint64(r.Seq) <= ckptAt {
			t.Fatalf("replay delivered pre-checkpoint commit seq %d", r.Seq)
		}
	}
	if got := l2.RecoveredRecords(); got >= total {
		t.Fatalf("recovered %d records, want only the post-checkpoint suffix (< %d)", got, total)
	}
	if got := l2.RecoveredMaxSeq(); got != total {
		t.Fatalf("RecoveredMaxSeq = %d, want %d", got, total)
	}
	if st := l2.Stats(); st.CheckpointSeq != ckptAt || st.GCFloorSeq == 0 {
		t.Fatalf("reopened stats lost checkpoint state: %+v", st)
	}
	// Appending continues past the recovered history.
	mustAppend(t, l2, commitRec(total+1, "after-reopen", "v"))
}

// TestCheckpointRejectsBadSequences pins the guard rails: no checkpoint
// at seq 0, none at or below the previous checkpoint.
func TestCheckpointRejectsBadSequences(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.WriteCheckpoint(0, ckptFill(0)); err == nil {
		t.Fatal("checkpoint at seq 0 accepted")
	}
	mustAppend(t, l, commitRec(1, "a", "1"))
	mustAppend(t, l, commitRec(2, "b", "2"))
	if _, err := l.WriteCheckpoint(2, ckptFill(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.WriteCheckpoint(2, ckptFill(2)); err == nil {
		t.Fatal("duplicate checkpoint seq accepted")
	}
	if _, err := l.WriteCheckpoint(1, ckptFill(1)); err == nil {
		t.Fatal("checkpoint below previous accepted")
	}
}

// TestCheckpointFillErrorLeavesLogUsable: a failed fill must not leave a
// torn .ckpt behind or disturb the log.
func TestCheckpointFillErrorLeavesLogUsable(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, commitRec(1, "a", "1"))
	boom := errors.New("fill failed")
	if _, err := l.WriteCheckpoint(1, func(emit func(Record) error) error {
		if err := emit(Record{Ops: []Op{{Table: "t", Key: "a", Value: []byte("1")}}}); err != nil {
			return err
		}
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("WriteCheckpoint: %v, want fill error", err)
	}
	if got := listFiles(t, dir, ".ckpt"); len(got) != 0 {
		t.Fatalf("aborted checkpoint left files: %v", got)
	}
	if _, ok := l.CheckpointInfo(); ok {
		t.Fatal("aborted checkpoint recorded in CheckpointInfo")
	}
	mustAppend(t, l, commitRec(2, "b", "2"))
	if _, err := l.WriteCheckpoint(2, ckptFill(2)); err != nil {
		t.Fatalf("retry after failed fill: %v", err)
	}
}

// TestTornCheckpointDiscardedAtCrash is the lying-disk edge: the
// checkpoint "succeeds" and GCs segments, but none of it was ever
// synced. After the crash the torn checkpoint must be discarded, the
// unlinked segments restored, and recovery must replay the full durable
// history — the crash loses the checkpoint, never committed data.
func TestTornCheckpointDiscardedAtCrash(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	l, err := OpenDir(dir, Config{Fsync: FsyncAlways, SegmentSize: 256, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	const total = 20
	for i := 1; i <= total; i++ {
		mustAppend(t, l, commitRec(uint64(i), fmt.Sprintf("k%03d", i), "value-payload"))
	}
	// Everything so far is durable. From here on the disk lies: writes
	// and unlinks appear to succeed but nothing reaches the platter.
	ffs.DropFutureSyncs()
	info, err := l.WriteCheckpoint(total, ckptFill(total))
	if err != nil || info.Seq != total {
		t.Fatalf("WriteCheckpoint on lying disk: %+v, %v", info, err)
	}
	if st := l.Stats(); st.SegmentsGCed == 0 {
		t.Fatalf("checkpoint GC'd nothing: %+v", st)
	}
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenDir(dir, Config{SegmentSize: 256, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, ok := l2.CheckpointInfo(); ok {
		t.Fatal("torn checkpoint survived the crash")
	}
	recs := replayAll(t, l2)
	var commits int
	for _, r := range recs {
		if !r.SafeSnapshot {
			commits++
		}
	}
	if commits != total {
		t.Fatalf("recovered %d commits, want all %d (GC'd segments must resurrect)", commits, total)
	}
}

// TestCrashDuringCheckpointKeepsPrevious: with an older durable
// checkpoint in place, a torn successor must not dislodge it.
func TestCrashDuringCheckpointKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	l, err := OpenDir(dir, Config{Fsync: FsyncAlways, SegmentSize: 256, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		mustAppend(t, l, commitRec(uint64(i), fmt.Sprintf("k%03d", i), "value-payload"))
	}
	if _, err := l.WriteCheckpoint(10, ckptFill(10)); err != nil {
		t.Fatal(err)
	}
	for i := 11; i <= 20; i++ {
		mustAppend(t, l, commitRec(uint64(i), fmt.Sprintf("k%03d", i), "value-payload"))
	}
	ffs.DropFutureSyncs()
	if _, err := l.WriteCheckpoint(20, ckptFill(20)); err != nil {
		t.Fatalf("WriteCheckpoint on lying disk: %v", err)
	}
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenDir(dir, Config{SegmentSize: 256, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	ci, ok := l2.CheckpointInfo()
	if !ok || ci.Seq != 10 {
		t.Fatalf("recovered checkpoint = %+v ok=%v, want the previous one at seq 10", ci, ok)
	}
	// The torn seq-20 checkpoint file must be gone from the directory.
	for _, name := range listFiles(t, dir, ".ckpt") {
		if name != ckptName(10) {
			t.Fatalf("stray checkpoint file %s survived", name)
		}
	}
	// The checkpoint plus the replayed suffix still covers seqs 11..20.
	recs := replayAll(t, l2)
	seen := map[uint64]bool{}
	for _, r := range recs {
		if !r.SafeSnapshot {
			seen[uint64(r.Seq)] = true
		}
	}
	for i := uint64(11); i <= 20; i++ {
		if !seen[i] {
			t.Fatalf("suffix missing seq %d after crash: %v", i, seen)
		}
	}
}

// TestCheckpointOnPoisonedLogRefused: a poisoned log must refuse to
// checkpoint (and above all must not GC anything).
func TestCheckpointOnPoisonedLogRefused(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	l, err := OpenDir(dir, Config{Fsync: FsyncAlways, SegmentSize: 256, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 10; i++ {
		mustAppend(t, l, commitRec(uint64(i), fmt.Sprintf("k%03d", i), "value-payload"))
	}
	ffs.FailSyncs(errors.New("disk on fire"))
	l.Append(commitRec(11, "k", "boom")).Wait()
	if l.PoisonErr() == nil {
		t.Fatal("log not poisoned after failed fsync")
	}
	ffs.FailSyncs(nil)
	if _, err := l.WriteCheckpoint(11, ckptFill(11)); err == nil {
		t.Fatal("poisoned log accepted a checkpoint")
	}
	if st := l.Stats(); st.SegmentsGCed != 0 || st.Checkpoints != 0 {
		t.Fatalf("poisoned checkpoint attempt touched the log: %+v", st)
	}
}
